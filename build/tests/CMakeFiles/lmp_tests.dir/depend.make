# Empty dependencies file for lmp_tests.
# This may be replaced when dependencies are built.
