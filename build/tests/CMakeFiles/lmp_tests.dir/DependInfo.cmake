
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_atoms.cpp" "tests/CMakeFiles/lmp_tests.dir/test_atoms.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_atoms.cpp.o.d"
  "/root/repo/tests/test_border_bins.cpp" "tests/CMakeFiles/lmp_tests.dir/test_border_bins.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_border_bins.cpp.o.d"
  "/root/repo/tests/test_box.cpp" "tests/CMakeFiles/lmp_tests.dir/test_box.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_box.cpp.o.d"
  "/root/repo/tests/test_comm_integration.cpp" "tests/CMakeFiles/lmp_tests.dir/test_comm_integration.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_comm_integration.cpp.o.d"
  "/root/repo/tests/test_decomposition.cpp" "tests/CMakeFiles/lmp_tests.dir/test_decomposition.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_decomposition.cpp.o.d"
  "/root/repo/tests/test_directions.cpp" "tests/CMakeFiles/lmp_tests.dir/test_directions.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_directions.cpp.o.d"
  "/root/repo/tests/test_dispatcher.cpp" "tests/CMakeFiles/lmp_tests.dir/test_dispatcher.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_dispatcher.cpp.o.d"
  "/root/repo/tests/test_eam.cpp" "tests/CMakeFiles/lmp_tests.dir/test_eam.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_eam.cpp.o.d"
  "/root/repo/tests/test_eam_table.cpp" "tests/CMakeFiles/lmp_tests.dir/test_eam_table.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_eam_table.cpp.o.d"
  "/root/repo/tests/test_ghost_algebra.cpp" "tests/CMakeFiles/lmp_tests.dir/test_ghost_algebra.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_ghost_algebra.cpp.o.d"
  "/root/repo/tests/test_input_script.cpp" "tests/CMakeFiles/lmp_tests.dir/test_input_script.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_input_script.cpp.o.d"
  "/root/repo/tests/test_integrate.cpp" "tests/CMakeFiles/lmp_tests.dir/test_integrate.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_integrate.cpp.o.d"
  "/root/repo/tests/test_lattice.cpp" "tests/CMakeFiles/lmp_tests.dir/test_lattice.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_lattice.cpp.o.d"
  "/root/repo/tests/test_lj.cpp" "tests/CMakeFiles/lmp_tests.dir/test_lj.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_lj.cpp.o.d"
  "/root/repo/tests/test_load_balance.cpp" "tests/CMakeFiles/lmp_tests.dir/test_load_balance.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_load_balance.cpp.o.d"
  "/root/repo/tests/test_minimpi.cpp" "tests/CMakeFiles/lmp_tests.dir/test_minimpi.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_minimpi.cpp.o.d"
  "/root/repo/tests/test_msg_codec.cpp" "tests/CMakeFiles/lmp_tests.dir/test_msg_codec.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_msg_codec.cpp.o.d"
  "/root/repo/tests/test_neighbor.cpp" "tests/CMakeFiles/lmp_tests.dir/test_neighbor.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_neighbor.cpp.o.d"
  "/root/repo/tests/test_netmodel.cpp" "tests/CMakeFiles/lmp_tests.dir/test_netmodel.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_netmodel.cpp.o.d"
  "/root/repo/tests/test_netsim.cpp" "tests/CMakeFiles/lmp_tests.dir/test_netsim.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_netsim.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/lmp_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/lmp_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/lmp_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scaling.cpp" "tests/CMakeFiles/lmp_tests.dir/test_scaling.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_scaling.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/lmp_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_spline.cpp" "tests/CMakeFiles/lmp_tests.dir/test_spline.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_spline.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/lmp_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_stepmodel.cpp" "tests/CMakeFiles/lmp_tests.dir/test_stepmodel.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_stepmodel.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/lmp_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_table_printer.cpp" "tests/CMakeFiles/lmp_tests.dir/test_table_printer.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_table_printer.cpp.o.d"
  "/root/repo/tests/test_thermo.cpp" "tests/CMakeFiles/lmp_tests.dir/test_thermo.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_thermo.cpp.o.d"
  "/root/repo/tests/test_threadpool.cpp" "tests/CMakeFiles/lmp_tests.dir/test_threadpool.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_threadpool.cpp.o.d"
  "/root/repo/tests/test_timer.cpp" "tests/CMakeFiles/lmp_tests.dir/test_timer.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_timer.cpp.o.d"
  "/root/repo/tests/test_tofu_coords.cpp" "tests/CMakeFiles/lmp_tests.dir/test_tofu_coords.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_tofu_coords.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/lmp_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_utofu.cpp" "tests/CMakeFiles/lmp_tests.dir/test_utofu.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_utofu.cpp.o.d"
  "/root/repo/tests/test_vec3.cpp" "tests/CMakeFiles/lmp_tests.dir/test_vec3.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_vec3.cpp.o.d"
  "/root/repo/tests/test_velocity.cpp" "tests/CMakeFiles/lmp_tests.dir/test_velocity.cpp.o" "gcc" "tests/CMakeFiles/lmp_tests.dir/test_velocity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lmp_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/lmp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/lmp_md.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/lmp_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/tofu/CMakeFiles/lmp_tofu.dir/DependInfo.cmake"
  "/root/repo/build/src/threadpool/CMakeFiles/lmp_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/lmp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
