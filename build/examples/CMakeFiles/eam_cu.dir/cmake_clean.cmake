file(REMOVE_RECURSE
  "CMakeFiles/eam_cu.dir/eam_cu.cpp.o"
  "CMakeFiles/eam_cu.dir/eam_cu.cpp.o.d"
  "eam_cu"
  "eam_cu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eam_cu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
