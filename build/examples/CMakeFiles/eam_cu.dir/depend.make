# Empty dependencies file for eam_cu.
# This may be replaced when dependencies are built.
