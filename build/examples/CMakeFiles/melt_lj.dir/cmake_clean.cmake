file(REMOVE_RECURSE
  "CMakeFiles/melt_lj.dir/melt_lj.cpp.o"
  "CMakeFiles/melt_lj.dir/melt_lj.cpp.o.d"
  "melt_lj"
  "melt_lj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/melt_lj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
