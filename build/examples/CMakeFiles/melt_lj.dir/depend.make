# Empty dependencies file for melt_lj.
# This may be replaced when dependencies are built.
