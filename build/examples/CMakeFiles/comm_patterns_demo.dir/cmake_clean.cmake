file(REMOVE_RECURSE
  "CMakeFiles/comm_patterns_demo.dir/comm_patterns_demo.cpp.o"
  "CMakeFiles/comm_patterns_demo.dir/comm_patterns_demo.cpp.o.d"
  "comm_patterns_demo"
  "comm_patterns_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_patterns_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
