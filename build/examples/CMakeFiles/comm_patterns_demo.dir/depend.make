# Empty dependencies file for comm_patterns_demo.
# This may be replaced when dependencies are built.
