file(REMOVE_RECURSE
  "CMakeFiles/lmp_cli.dir/lmp_cli.cpp.o"
  "CMakeFiles/lmp_cli.dir/lmp_cli.cpp.o.d"
  "lmp_cli"
  "lmp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
