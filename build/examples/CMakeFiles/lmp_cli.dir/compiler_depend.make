# Empty compiler generated dependencies file for lmp_cli.
# This may be replaced when dependencies are built.
