file(REMOVE_RECURSE
  "CMakeFiles/table1_comm_analysis.dir/table1_comm_analysis.cpp.o"
  "CMakeFiles/table1_comm_analysis.dir/table1_comm_analysis.cpp.o.d"
  "table1_comm_analysis"
  "table1_comm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_comm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
