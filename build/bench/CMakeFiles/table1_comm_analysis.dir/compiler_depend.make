# Empty compiler generated dependencies file for table1_comm_analysis.
# This may be replaced when dependencies are built.
