file(REMOVE_RECURSE
  "CMakeFiles/ablation_border_bins.dir/ablation_border_bins.cpp.o"
  "CMakeFiles/ablation_border_bins.dir/ablation_border_bins.cpp.o.d"
  "ablation_border_bins"
  "ablation_border_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_border_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
