# Empty dependencies file for ablation_border_bins.
# This may be replaced when dependencies are built.
