# Empty dependencies file for fig15_extended_neighbors.
# This may be replaced when dependencies are built.
