file(REMOVE_RECURSE
  "CMakeFiles/fig15_extended_neighbors.dir/fig15_extended_neighbors.cpp.o"
  "CMakeFiles/fig15_extended_neighbors.dir/fig15_extended_neighbors.cpp.o.d"
  "fig15_extended_neighbors"
  "fig15_extended_neighbors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_extended_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
