file(REMOVE_RECURSE
  "CMakeFiles/fig14_weak_scaling.dir/fig14_weak_scaling.cpp.o"
  "CMakeFiles/fig14_weak_scaling.dir/fig14_weak_scaling.cpp.o.d"
  "fig14_weak_scaling"
  "fig14_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
