# Empty dependencies file for fig14_weak_scaling.
# This may be replaced when dependencies are built.
