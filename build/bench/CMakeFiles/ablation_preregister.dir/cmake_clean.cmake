file(REMOVE_RECURSE
  "CMakeFiles/ablation_preregister.dir/ablation_preregister.cpp.o"
  "CMakeFiles/ablation_preregister.dir/ablation_preregister.cpp.o.d"
  "ablation_preregister"
  "ablation_preregister.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preregister.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
