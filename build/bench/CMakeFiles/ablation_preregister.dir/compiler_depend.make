# Empty compiler generated dependencies file for ablation_preregister.
# This may be replaced when dependencies are built.
