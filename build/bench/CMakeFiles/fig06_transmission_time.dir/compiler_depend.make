# Empty compiler generated dependencies file for fig06_transmission_time.
# This may be replaced when dependencies are built.
