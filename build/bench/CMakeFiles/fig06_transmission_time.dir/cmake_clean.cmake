file(REMOVE_RECURSE
  "CMakeFiles/fig06_transmission_time.dir/fig06_transmission_time.cpp.o"
  "CMakeFiles/fig06_transmission_time.dir/fig06_transmission_time.cpp.o.d"
  "fig06_transmission_time"
  "fig06_transmission_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_transmission_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
