# Empty dependencies file for fig08_message_rate.
# This may be replaced when dependencies are built.
