file(REMOVE_RECURSE
  "CMakeFiles/fig08_message_rate.dir/fig08_message_rate.cpp.o"
  "CMakeFiles/fig08_message_rate.dir/fig08_message_rate.cpp.o.d"
  "fig08_message_rate"
  "fig08_message_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_message_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
