file(REMOVE_RECURSE
  "CMakeFiles/fig12_step_by_step.dir/fig12_step_by_step.cpp.o"
  "CMakeFiles/fig12_step_by_step.dir/fig12_step_by_step.cpp.o.d"
  "fig12_step_by_step"
  "fig12_step_by_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_step_by_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
