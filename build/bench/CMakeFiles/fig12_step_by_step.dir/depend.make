# Empty dependencies file for fig12_step_by_step.
# This may be replaced when dependencies are built.
