file(REMOVE_RECURSE
  "CMakeFiles/ablation_load_balance.dir/ablation_load_balance.cpp.o"
  "CMakeFiles/ablation_load_balance.dir/ablation_load_balance.cpp.o.d"
  "ablation_load_balance"
  "ablation_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
