
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_strong_scaling.cpp" "bench/CMakeFiles/fig13_strong_scaling.dir/fig13_strong_scaling.cpp.o" "gcc" "bench/CMakeFiles/fig13_strong_scaling.dir/fig13_strong_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lmp_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/lmp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/lmp_md.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/lmp_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/tofu/CMakeFiles/lmp_tofu.dir/DependInfo.cmake"
  "/root/repo/build/src/threadpool/CMakeFiles/lmp_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/lmp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
