
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threadpool/forkjoin.cpp" "src/threadpool/CMakeFiles/lmp_pool.dir/forkjoin.cpp.o" "gcc" "src/threadpool/CMakeFiles/lmp_pool.dir/forkjoin.cpp.o.d"
  "/root/repo/src/threadpool/spin_pool.cpp" "src/threadpool/CMakeFiles/lmp_pool.dir/spin_pool.cpp.o" "gcc" "src/threadpool/CMakeFiles/lmp_pool.dir/spin_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
