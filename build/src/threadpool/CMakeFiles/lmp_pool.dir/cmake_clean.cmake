file(REMOVE_RECURSE
  "CMakeFiles/lmp_pool.dir/forkjoin.cpp.o"
  "CMakeFiles/lmp_pool.dir/forkjoin.cpp.o.d"
  "CMakeFiles/lmp_pool.dir/spin_pool.cpp.o"
  "CMakeFiles/lmp_pool.dir/spin_pool.cpp.o.d"
  "liblmp_pool.a"
  "liblmp_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
