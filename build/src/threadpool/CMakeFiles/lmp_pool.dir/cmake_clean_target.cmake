file(REMOVE_RECURSE
  "liblmp_pool.a"
)
