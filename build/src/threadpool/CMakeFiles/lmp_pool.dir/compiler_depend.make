# Empty compiler generated dependencies file for lmp_pool.
# This may be replaced when dependencies are built.
