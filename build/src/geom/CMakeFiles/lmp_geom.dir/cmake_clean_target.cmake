file(REMOVE_RECURSE
  "liblmp_geom.a"
)
