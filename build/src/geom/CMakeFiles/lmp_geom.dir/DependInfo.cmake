
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/box.cpp" "src/geom/CMakeFiles/lmp_geom.dir/box.cpp.o" "gcc" "src/geom/CMakeFiles/lmp_geom.dir/box.cpp.o.d"
  "/root/repo/src/geom/decomposition.cpp" "src/geom/CMakeFiles/lmp_geom.dir/decomposition.cpp.o" "gcc" "src/geom/CMakeFiles/lmp_geom.dir/decomposition.cpp.o.d"
  "/root/repo/src/geom/ghost_algebra.cpp" "src/geom/CMakeFiles/lmp_geom.dir/ghost_algebra.cpp.o" "gcc" "src/geom/CMakeFiles/lmp_geom.dir/ghost_algebra.cpp.o.d"
  "/root/repo/src/geom/lattice.cpp" "src/geom/CMakeFiles/lmp_geom.dir/lattice.cpp.o" "gcc" "src/geom/CMakeFiles/lmp_geom.dir/lattice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
