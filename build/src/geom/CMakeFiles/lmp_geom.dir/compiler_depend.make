# Empty compiler generated dependencies file for lmp_geom.
# This may be replaced when dependencies are built.
