file(REMOVE_RECURSE
  "CMakeFiles/lmp_geom.dir/box.cpp.o"
  "CMakeFiles/lmp_geom.dir/box.cpp.o.d"
  "CMakeFiles/lmp_geom.dir/decomposition.cpp.o"
  "CMakeFiles/lmp_geom.dir/decomposition.cpp.o.d"
  "CMakeFiles/lmp_geom.dir/ghost_algebra.cpp.o"
  "CMakeFiles/lmp_geom.dir/ghost_algebra.cpp.o.d"
  "CMakeFiles/lmp_geom.dir/lattice.cpp.o"
  "CMakeFiles/lmp_geom.dir/lattice.cpp.o.d"
  "liblmp_geom.a"
  "liblmp_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
