
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tofu/coords.cpp" "src/tofu/CMakeFiles/lmp_tofu.dir/coords.cpp.o" "gcc" "src/tofu/CMakeFiles/lmp_tofu.dir/coords.cpp.o.d"
  "/root/repo/src/tofu/network.cpp" "src/tofu/CMakeFiles/lmp_tofu.dir/network.cpp.o" "gcc" "src/tofu/CMakeFiles/lmp_tofu.dir/network.cpp.o.d"
  "/root/repo/src/tofu/topology.cpp" "src/tofu/CMakeFiles/lmp_tofu.dir/topology.cpp.o" "gcc" "src/tofu/CMakeFiles/lmp_tofu.dir/topology.cpp.o.d"
  "/root/repo/src/tofu/utofu.cpp" "src/tofu/CMakeFiles/lmp_tofu.dir/utofu.cpp.o" "gcc" "src/tofu/CMakeFiles/lmp_tofu.dir/utofu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lmp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/lmp_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
