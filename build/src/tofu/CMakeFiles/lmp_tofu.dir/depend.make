# Empty dependencies file for lmp_tofu.
# This may be replaced when dependencies are built.
