file(REMOVE_RECURSE
  "CMakeFiles/lmp_tofu.dir/coords.cpp.o"
  "CMakeFiles/lmp_tofu.dir/coords.cpp.o.d"
  "CMakeFiles/lmp_tofu.dir/network.cpp.o"
  "CMakeFiles/lmp_tofu.dir/network.cpp.o.d"
  "CMakeFiles/lmp_tofu.dir/topology.cpp.o"
  "CMakeFiles/lmp_tofu.dir/topology.cpp.o.d"
  "CMakeFiles/lmp_tofu.dir/utofu.cpp.o"
  "CMakeFiles/lmp_tofu.dir/utofu.cpp.o.d"
  "liblmp_tofu.a"
  "liblmp_tofu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_tofu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
