file(REMOVE_RECURSE
  "liblmp_tofu.a"
)
