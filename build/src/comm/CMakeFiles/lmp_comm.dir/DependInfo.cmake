
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/border_bins.cpp" "src/comm/CMakeFiles/lmp_comm.dir/border_bins.cpp.o" "gcc" "src/comm/CMakeFiles/lmp_comm.dir/border_bins.cpp.o.d"
  "/root/repo/src/comm/comm_brick.cpp" "src/comm/CMakeFiles/lmp_comm.dir/comm_brick.cpp.o" "gcc" "src/comm/CMakeFiles/lmp_comm.dir/comm_brick.cpp.o.d"
  "/root/repo/src/comm/comm_p2p.cpp" "src/comm/CMakeFiles/lmp_comm.dir/comm_p2p.cpp.o" "gcc" "src/comm/CMakeFiles/lmp_comm.dir/comm_p2p.cpp.o.d"
  "/root/repo/src/comm/comm_p2p_mpi.cpp" "src/comm/CMakeFiles/lmp_comm.dir/comm_p2p_mpi.cpp.o" "gcc" "src/comm/CMakeFiles/lmp_comm.dir/comm_p2p_mpi.cpp.o.d"
  "/root/repo/src/comm/directions.cpp" "src/comm/CMakeFiles/lmp_comm.dir/directions.cpp.o" "gcc" "src/comm/CMakeFiles/lmp_comm.dir/directions.cpp.o.d"
  "/root/repo/src/comm/load_balance.cpp" "src/comm/CMakeFiles/lmp_comm.dir/load_balance.cpp.o" "gcc" "src/comm/CMakeFiles/lmp_comm.dir/load_balance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lmp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/lmp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/tofu/CMakeFiles/lmp_tofu.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/lmp_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/threadpool/CMakeFiles/lmp_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/lmp_md.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
