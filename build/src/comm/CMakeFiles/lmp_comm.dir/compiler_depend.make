# Empty compiler generated dependencies file for lmp_comm.
# This may be replaced when dependencies are built.
