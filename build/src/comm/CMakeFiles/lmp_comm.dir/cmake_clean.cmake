file(REMOVE_RECURSE
  "CMakeFiles/lmp_comm.dir/border_bins.cpp.o"
  "CMakeFiles/lmp_comm.dir/border_bins.cpp.o.d"
  "CMakeFiles/lmp_comm.dir/comm_brick.cpp.o"
  "CMakeFiles/lmp_comm.dir/comm_brick.cpp.o.d"
  "CMakeFiles/lmp_comm.dir/comm_p2p.cpp.o"
  "CMakeFiles/lmp_comm.dir/comm_p2p.cpp.o.d"
  "CMakeFiles/lmp_comm.dir/comm_p2p_mpi.cpp.o"
  "CMakeFiles/lmp_comm.dir/comm_p2p_mpi.cpp.o.d"
  "CMakeFiles/lmp_comm.dir/directions.cpp.o"
  "CMakeFiles/lmp_comm.dir/directions.cpp.o.d"
  "CMakeFiles/lmp_comm.dir/load_balance.cpp.o"
  "CMakeFiles/lmp_comm.dir/load_balance.cpp.o.d"
  "liblmp_comm.a"
  "liblmp_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
