file(REMOVE_RECURSE
  "liblmp_comm.a"
)
