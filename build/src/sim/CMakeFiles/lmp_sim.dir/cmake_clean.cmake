file(REMOVE_RECURSE
  "CMakeFiles/lmp_sim.dir/input_script.cpp.o"
  "CMakeFiles/lmp_sim.dir/input_script.cpp.o.d"
  "CMakeFiles/lmp_sim.dir/simulation.cpp.o"
  "CMakeFiles/lmp_sim.dir/simulation.cpp.o.d"
  "liblmp_sim.a"
  "liblmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
