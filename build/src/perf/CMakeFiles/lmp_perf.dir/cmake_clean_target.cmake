file(REMOVE_RECURSE
  "liblmp_perf.a"
)
