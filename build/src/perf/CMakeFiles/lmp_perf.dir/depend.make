# Empty dependencies file for lmp_perf.
# This may be replaced when dependencies are built.
