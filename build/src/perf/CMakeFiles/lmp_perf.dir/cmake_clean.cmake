file(REMOVE_RECURSE
  "CMakeFiles/lmp_perf.dir/netmodel.cpp.o"
  "CMakeFiles/lmp_perf.dir/netmodel.cpp.o.d"
  "CMakeFiles/lmp_perf.dir/netsim.cpp.o"
  "CMakeFiles/lmp_perf.dir/netsim.cpp.o.d"
  "CMakeFiles/lmp_perf.dir/scaling.cpp.o"
  "CMakeFiles/lmp_perf.dir/scaling.cpp.o.d"
  "CMakeFiles/lmp_perf.dir/stepmodel.cpp.o"
  "CMakeFiles/lmp_perf.dir/stepmodel.cpp.o.d"
  "liblmp_perf.a"
  "liblmp_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
