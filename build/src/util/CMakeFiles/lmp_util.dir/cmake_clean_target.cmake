file(REMOVE_RECURSE
  "liblmp_util.a"
)
