file(REMOVE_RECURSE
  "CMakeFiles/lmp_util.dir/stats.cpp.o"
  "CMakeFiles/lmp_util.dir/stats.cpp.o.d"
  "CMakeFiles/lmp_util.dir/table_printer.cpp.o"
  "CMakeFiles/lmp_util.dir/table_printer.cpp.o.d"
  "CMakeFiles/lmp_util.dir/timer.cpp.o"
  "CMakeFiles/lmp_util.dir/timer.cpp.o.d"
  "liblmp_util.a"
  "liblmp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
