# Empty compiler generated dependencies file for lmp_util.
# This may be replaced when dependencies are built.
