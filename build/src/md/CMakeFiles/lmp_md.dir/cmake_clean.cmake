file(REMOVE_RECURSE
  "CMakeFiles/lmp_md.dir/atoms.cpp.o"
  "CMakeFiles/lmp_md.dir/atoms.cpp.o.d"
  "CMakeFiles/lmp_md.dir/config.cpp.o"
  "CMakeFiles/lmp_md.dir/config.cpp.o.d"
  "CMakeFiles/lmp_md.dir/eam.cpp.o"
  "CMakeFiles/lmp_md.dir/eam.cpp.o.d"
  "CMakeFiles/lmp_md.dir/eam_table.cpp.o"
  "CMakeFiles/lmp_md.dir/eam_table.cpp.o.d"
  "CMakeFiles/lmp_md.dir/integrate.cpp.o"
  "CMakeFiles/lmp_md.dir/integrate.cpp.o.d"
  "CMakeFiles/lmp_md.dir/lj.cpp.o"
  "CMakeFiles/lmp_md.dir/lj.cpp.o.d"
  "CMakeFiles/lmp_md.dir/neighbor.cpp.o"
  "CMakeFiles/lmp_md.dir/neighbor.cpp.o.d"
  "CMakeFiles/lmp_md.dir/spline.cpp.o"
  "CMakeFiles/lmp_md.dir/spline.cpp.o.d"
  "CMakeFiles/lmp_md.dir/thermo.cpp.o"
  "CMakeFiles/lmp_md.dir/thermo.cpp.o.d"
  "CMakeFiles/lmp_md.dir/velocity.cpp.o"
  "CMakeFiles/lmp_md.dir/velocity.cpp.o.d"
  "liblmp_md.a"
  "liblmp_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
