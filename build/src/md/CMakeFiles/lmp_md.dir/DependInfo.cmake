
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/atoms.cpp" "src/md/CMakeFiles/lmp_md.dir/atoms.cpp.o" "gcc" "src/md/CMakeFiles/lmp_md.dir/atoms.cpp.o.d"
  "/root/repo/src/md/config.cpp" "src/md/CMakeFiles/lmp_md.dir/config.cpp.o" "gcc" "src/md/CMakeFiles/lmp_md.dir/config.cpp.o.d"
  "/root/repo/src/md/eam.cpp" "src/md/CMakeFiles/lmp_md.dir/eam.cpp.o" "gcc" "src/md/CMakeFiles/lmp_md.dir/eam.cpp.o.d"
  "/root/repo/src/md/eam_table.cpp" "src/md/CMakeFiles/lmp_md.dir/eam_table.cpp.o" "gcc" "src/md/CMakeFiles/lmp_md.dir/eam_table.cpp.o.d"
  "/root/repo/src/md/integrate.cpp" "src/md/CMakeFiles/lmp_md.dir/integrate.cpp.o" "gcc" "src/md/CMakeFiles/lmp_md.dir/integrate.cpp.o.d"
  "/root/repo/src/md/lj.cpp" "src/md/CMakeFiles/lmp_md.dir/lj.cpp.o" "gcc" "src/md/CMakeFiles/lmp_md.dir/lj.cpp.o.d"
  "/root/repo/src/md/neighbor.cpp" "src/md/CMakeFiles/lmp_md.dir/neighbor.cpp.o" "gcc" "src/md/CMakeFiles/lmp_md.dir/neighbor.cpp.o.d"
  "/root/repo/src/md/spline.cpp" "src/md/CMakeFiles/lmp_md.dir/spline.cpp.o" "gcc" "src/md/CMakeFiles/lmp_md.dir/spline.cpp.o.d"
  "/root/repo/src/md/thermo.cpp" "src/md/CMakeFiles/lmp_md.dir/thermo.cpp.o" "gcc" "src/md/CMakeFiles/lmp_md.dir/thermo.cpp.o.d"
  "/root/repo/src/md/velocity.cpp" "src/md/CMakeFiles/lmp_md.dir/velocity.cpp.o" "gcc" "src/md/CMakeFiles/lmp_md.dir/velocity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lmp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/lmp_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
