# Empty dependencies file for lmp_md.
# This may be replaced when dependencies are built.
