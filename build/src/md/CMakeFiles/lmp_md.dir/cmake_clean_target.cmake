file(REMOVE_RECURSE
  "liblmp_md.a"
)
