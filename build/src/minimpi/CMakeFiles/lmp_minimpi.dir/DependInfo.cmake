
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/runtime.cpp" "src/minimpi/CMakeFiles/lmp_minimpi.dir/runtime.cpp.o" "gcc" "src/minimpi/CMakeFiles/lmp_minimpi.dir/runtime.cpp.o.d"
  "/root/repo/src/minimpi/world.cpp" "src/minimpi/CMakeFiles/lmp_minimpi.dir/world.cpp.o" "gcc" "src/minimpi/CMakeFiles/lmp_minimpi.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
