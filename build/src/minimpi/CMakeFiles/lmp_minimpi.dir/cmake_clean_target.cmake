file(REMOVE_RECURSE
  "liblmp_minimpi.a"
)
