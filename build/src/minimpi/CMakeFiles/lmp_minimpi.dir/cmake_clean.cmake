file(REMOVE_RECURSE
  "CMakeFiles/lmp_minimpi.dir/runtime.cpp.o"
  "CMakeFiles/lmp_minimpi.dir/runtime.cpp.o.d"
  "CMakeFiles/lmp_minimpi.dir/world.cpp.o"
  "CMakeFiles/lmp_minimpi.dir/world.cpp.o.d"
  "liblmp_minimpi.a"
  "liblmp_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
