# Empty compiler generated dependencies file for lmp_minimpi.
# This may be replaced when dependencies are built.
