#!/usr/bin/env bash
# Tier-1 CI: warnings-as-errors build + full test suite, then the same
# suite under AddressSanitizer/UBSan (catches the buffer-discipline bugs
# the zero-copy RDMA paths are prone to).
#
#   ./ci.sh            # both passes
#   ./ci.sh --fast     # skip the sanitizer pass
set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}

# Kill-and-restart smoke: run the restart example to completion while
# checkpointing every 20 steps, then pretend the job died after step 40
# and resume from that checkpoint. The resumed trajectory must be
# bitwise-identical to the uninterrupted one.
run_restart_smoke() {
  local build_dir="$1"
  echo "--- restart smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  "${build_dir}/examples/lmp_cli" examples/in.restart.lj \
      --checkpoint-path "${work}/ck" --dump-final "${work}/full.dump"
  test -f "${work}/ck.40" || { echo "restart smoke: ck.40 missing"; return 1; }
  "${build_dir}/examples/lmp_cli" examples/in.restart.lj \
      --restart "${work}/ck.40" --dump-final "${work}/resumed.dump"
  diff "${work}/full.dump" "${work}/resumed.dump" \
      || { echo "restart smoke: resumed run diverged"; return 1; }
  echo "restart smoke: bitwise-identical after restart from step 40"
}

# Trace smoke: run the melt example (on the 6tni_p2p variant, whose
# ghost exchange goes through the put/notice path that carries flow IDs)
# with tracing + report enabled and validate the artifacts — the trace
# must parse as Chrome trace-event JSON with at least one span per stage
# per rank and causally consistent flow events (every flow start "s"
# matched by a finish "f"), the report as the versioned run-report schema
# with the v2 link-utilization section populated.
run_trace_smoke() {
  local build_dir="$1"
  echo "--- trace smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  "${build_dir}/examples/lmp_cli" examples/in.melt.lj 6tni_p2p \
      --trace "${work}/melt.trace.json" --report "${work}/melt.report.json" \
      > /dev/null
  python3 - "${work}/melt.trace.json" "${work}/melt.report.json" <<'EOF'
import json, sys, collections
trace = json.load(open(sys.argv[1])); report = json.load(open(sys.argv[2]))
spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
stages = {"stage:Pair", "stage:Neigh", "stage:Comm", "stage:Modify", "stage:Other"}
per_rank = collections.defaultdict(set)
for e in spans:
    if e["name"] in stages:
        per_rank[e["pid"]].add(e["name"])
ranks = sorted(p for p in per_rank if p >= 0)
assert ranks, "no rank emitted stage spans"
for r in ranks:
    missing = stages - per_rank[r]
    assert not missing, f"rank {r} missing spans: {missing}"
starts = [e for e in trace["traceEvents"] if e.get("ph") == "s"]
finishes = [e for e in trace["traceEvents"] if e.get("ph") == "f"]
start_ids = {e["id"] for e in starts}
finish_ids = {e["id"] for e in finishes}
assert starts, "no flow events in a 6tni_p2p trace"
assert start_ids <= finish_ids, f"flows started but never finished: {sorted(start_ids - finish_ids)[:5]}"
keyed = [(e["ts"], e.get("pid", 0), e.get("tid", 0)) for e in trace["traceEvents"] if e.get("ph") != "M"]
assert keyed == sorted(keyed), "trace events not sorted by (ts, pid, tid)"
assert report["schema"] == "lmp-run-report" and report["version"] == 2
total = report["stages"]["total_seconds"]
sum_s = sum(v["seconds"] for k, v in report["stages"].items() if k != "total_seconds")
assert abs(sum_s - total) < 1e-9, (sum_s, total)
lu = report["link_utilization"]
assert lu["puts_charged"] > 0 and lu["total_bytes"] > 0, lu
assert lu["links_used"] >= len(lu["top_links"]) > 0, lu
print(f"trace smoke: {len(spans)} spans, {len(starts)} flows (all finished) "
      f"across ranks {ranks}; report v2 consistent")
EOF
}

# Bench-compare smoke: regenerate the fig13 record in quick mode and gate
# it against the committed baseline. A missing baseline only warns (that
# is how a new bench seeds its first record); a tolerance breach fails CI.
run_bench_compare_smoke() {
  local build_dir="$1"
  echo "--- bench-compare smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  LMP_BENCH_QUICK=1 LMP_BENCH_DIR="${work}" \
      "${build_dir}/bench/fig13_strong_scaling" > /dev/null
  "${build_dir}/bench/bench_compare" \
      bench/baselines/BENCH_fig13_strong_scaling.json \
      "${work}/BENCH_fig13_strong_scaling.json"
}

echo "=== pass 1: -Werror build + ctest ==="
cmake -B build-ci -S . -DLMP_WERROR=ON
cmake --build build-ci -j "${JOBS}"
ctest --test-dir build-ci --output-on-failure -j "${JOBS}"
run_restart_smoke build-ci
run_trace_smoke build-ci
run_bench_compare_smoke build-ci

if [[ "${1:-}" == "--fast" ]]; then
  echo "ci.sh: --fast: skipping sanitizer pass"
  exit 0
fi

echo "=== pass 2: ASan+UBSan build + ctest ==="
cmake -B build-ci-asan -S . -DLMP_WERROR=ON -DLMP_SANITIZE=address,undefined
cmake --build build-ci-asan -j "${JOBS}"
ctest --test-dir build-ci-asan --output-on-failure -j "${JOBS}"
run_restart_smoke build-ci-asan
run_trace_smoke build-ci-asan

echo "=== pass 3: LMP_TRACE=OFF build (instrumentation compiles out) ==="
cmake -B build-ci-notrace -S . -DLMP_WERROR=ON -DLMP_TRACE=OFF
cmake --build build-ci-notrace -j "${JOBS}"
ctest --test-dir build-ci-notrace --output-on-failure -j "${JOBS}"

echo "ci.sh: all passes green"
