#!/usr/bin/env bash
# Tier-1 CI: warnings-as-errors build + full test suite, then the same
# suite under AddressSanitizer/UBSan (catches the buffer-discipline bugs
# the zero-copy RDMA paths are prone to).
#
#   ./ci.sh            # both passes
#   ./ci.sh --fast     # skip the sanitizer pass
set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}

# Kill-and-restart smoke: run the restart example to completion while
# checkpointing every 20 steps, then pretend the job died after step 40
# and resume from that checkpoint. The resumed trajectory must be
# bitwise-identical to the uninterrupted one.
run_restart_smoke() {
  local build_dir="$1"
  echo "--- restart smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  "${build_dir}/examples/lmp_cli" examples/in.restart.lj \
      --checkpoint-path "${work}/ck" --dump-final "${work}/full.dump"
  test -f "${work}/ck.40" || { echo "restart smoke: ck.40 missing"; return 1; }
  "${build_dir}/examples/lmp_cli" examples/in.restart.lj \
      --restart "${work}/ck.40" --dump-final "${work}/resumed.dump"
  diff "${work}/full.dump" "${work}/resumed.dump" \
      || { echo "restart smoke: resumed run diverged"; return 1; }
  echo "restart smoke: bitwise-identical after restart from step 40"
}

echo "=== pass 1: -Werror build + ctest ==="
cmake -B build-ci -S . -DLMP_WERROR=ON
cmake --build build-ci -j "${JOBS}"
ctest --test-dir build-ci --output-on-failure -j "${JOBS}"
run_restart_smoke build-ci

if [[ "${1:-}" == "--fast" ]]; then
  echo "ci.sh: --fast: skipping sanitizer pass"
  exit 0
fi

echo "=== pass 2: ASan+UBSan build + ctest ==="
cmake -B build-ci-asan -S . -DLMP_WERROR=ON -DLMP_SANITIZE=address,undefined
cmake --build build-ci-asan -j "${JOBS}"
ctest --test-dir build-ci-asan --output-on-failure -j "${JOBS}"
run_restart_smoke build-ci-asan

echo "ci.sh: all passes green"
