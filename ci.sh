#!/usr/bin/env bash
# Tier-1 CI: warnings-as-errors build + full test suite, then the same
# suite under AddressSanitizer/UBSan (catches the buffer-discipline bugs
# the zero-copy RDMA paths are prone to).
#
#   ./ci.sh            # both passes
#   ./ci.sh --fast     # skip the sanitizer pass
set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}

# Kill-and-restart smoke: run the restart example to completion while
# checkpointing every 20 steps, then pretend the job died after step 40
# and resume from that checkpoint. The resumed trajectory must be
# bitwise-identical to the uninterrupted one.
run_restart_smoke() {
  local build_dir="$1"
  echo "--- restart smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  "${build_dir}/examples/lmp_cli" examples/in.restart.lj \
      --checkpoint-path "${work}/ck" --dump-final "${work}/full.dump"
  test -f "${work}/ck.40" || { echo "restart smoke: ck.40 missing"; return 1; }
  "${build_dir}/examples/lmp_cli" examples/in.restart.lj \
      --restart "${work}/ck.40" --dump-final "${work}/resumed.dump"
  diff "${work}/full.dump" "${work}/resumed.dump" \
      || { echo "restart smoke: resumed run diverged"; return 1; }
  echo "restart smoke: bitwise-identical after restart from step 40"
}

# Trace smoke: run the melt example (on the 6tni_p2p variant, whose
# ghost exchange goes through the put/notice path that carries flow IDs)
# with tracing + report enabled and validate the artifacts — the trace
# must parse as Chrome trace-event JSON with at least one span per stage
# per rank and causally consistent flow events (every flow start "s"
# matched by a finish "f"), the report as the versioned run-report schema
# with the v2 link-utilization section populated.
run_trace_smoke() {
  local build_dir="$1"
  echo "--- trace smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  "${build_dir}/examples/lmp_cli" examples/in.melt.lj 6tni_p2p \
      --trace "${work}/melt.trace.json" --report "${work}/melt.report.json" \
      > /dev/null
  python3 - "${work}/melt.trace.json" "${work}/melt.report.json" <<'EOF'
import json, sys, collections
trace = json.load(open(sys.argv[1])); report = json.load(open(sys.argv[2]))
spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
stages = {"stage:Pair", "stage:Neigh", "stage:Comm", "stage:Modify", "stage:Other"}
per_rank = collections.defaultdict(set)
for e in spans:
    if e["name"] in stages:
        per_rank[e["pid"]].add(e["name"])
ranks = sorted(p for p in per_rank if p >= 0)
assert ranks, "no rank emitted stage spans"
for r in ranks:
    missing = stages - per_rank[r]
    assert not missing, f"rank {r} missing spans: {missing}"
starts = [e for e in trace["traceEvents"] if e.get("ph") == "s"]
finishes = [e for e in trace["traceEvents"] if e.get("ph") == "f"]
start_ids = {e["id"] for e in starts}
finish_ids = {e["id"] for e in finishes}
assert starts, "no flow events in a 6tni_p2p trace"
assert start_ids <= finish_ids, f"flows started but never finished: {sorted(start_ids - finish_ids)[:5]}"
keyed = [(e["ts"], e.get("pid", 0), e.get("tid", 0)) for e in trace["traceEvents"] if e.get("ph") != "M"]
assert keyed == sorted(keyed), "trace events not sorted by (ts, pid, tid)"
assert report["schema"] == "lmp-run-report" and report["version"] == 4
total = report["stages"]["total_seconds"]
sum_s = sum(v["seconds"] for k, v in report["stages"].items() if k != "total_seconds")
assert abs(sum_s - total) < 1e-9, (sum_s, total)
lu = report["link_utilization"]
assert lu["puts_charged"] > 0 and lu["total_bytes"] > 0, lu
assert lu["links_used"] >= len(lu["top_links"]) > 0, lu
integ = report["integrity"]
assert integ["detections"] == 0 and integ["rollbacks"] == 0, integ
print(f"trace smoke: {len(spans)} spans, {len(starts)} flows (all finished) "
      f"across ranks {ranks}; report v4 consistent")
EOF
}

# Serve smoke: boot the job server on a workload that exercises every
# admission outcome (two good jobs, a 1 ms deadline that must be missed,
# and a banned tenant whose submit must draw a structured quota
# rejection), SIGKILL the server once the long job has checkpointed a
# few slices, then rerun the identical command. The rerun must recover
# the journal (all three journaled jobs visible, the in-flight one
# requeued), re-attach idempotently to the existing jobs, finish the
# long job from its durable checkpoint, and emit a schema-valid run
# report per completed job.
run_serve_smoke() {
  local build_dir="$1"
  echo "--- serve smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  mkdir -p "${work}/wd"
  local script
  for script in quick:10 long:1000 ; do
    cat > "${work}/in.${script%%:*}.lj" <<EOF
units lj
lattice fcc 0.8442
region box block 0 4 0 4 0 4
create_box 1 box
create_atoms 1 box
mass 1 1.0
velocity all create 1.44 87287
pair_style lj/cut 2.5
pair_coeff 1 1 1.0 1.0
neighbor 0.3 bin
neigh_modify every 5 check no
fix 1 all nve
timestep 0.005
thermo 10
comm_variant ref
run ${script##*:}
EOF
  done
  cat > "${work}/jobs.txt" <<EOF
acme quick ${work}/in.quick.lj          # finishes before the kill
acme long ${work}/in.long.lj            # killed mid-flight, must resume
acme slow ${work}/in.long.lj 1          # 1 ms deadline: must be missed
banned probe ${work}/in.quick.lj        # tenant quota 0 running: rejected
EOF
  local serve_cmd=("${build_dir}/examples/lmp_serve"
      --journal "${work}/journal.bin" --workdir "${work}/wd"
      --jobs "${work}/jobs.txt" --workers 1 --slice 20
      --quota banned=0,0 --chunks)

  "${serve_cmd[@]}" > "${work}/run1.log" 2>&1 &
  local pid=$!
  # Kill once the long job (id 2) has a few durable checkpoints behind
  # it — mid-flight, with ~95% of its steps still to go.
  local waited=0
  while ! ls "${work}"/wd/job-2.ck.4? > /dev/null 2>&1; do
    if ! kill -0 "${pid}" 2>/dev/null; then
      echo "serve smoke: server exited before the kill window"
      cat "${work}/run1.log"
      return 1
    fi
    sleep 0.02
    waited=$((waited + 1))
    if [[ ${waited} -gt 3000 ]]; then
      echo "serve smoke: job 2 never checkpointed"
      kill -9 "${pid}" 2>/dev/null || true
      return 1
    fi
  done
  kill -9 "${pid}" 2>/dev/null || true
  wait "${pid}" 2>/dev/null || true

  # Identical command after the crash: recovery + idempotent re-submit.
  "${serve_cmd[@]}" > "${work}/run2.log" 2>&1 \
      || { echo "serve smoke: post-crash run failed"; cat "${work}/run2.log"; return 1; }
  local check
  for check in \
      '^journal: 3 jobs, [1-9] requeued' \
      'rejected reason=tenant-running-quota' \
      '(already known)' \
      '^job 1 acme/quick state=done' \
      '^job 2 acme/long state=done' \
      '^job 3 acme/slow state=failed .*deadline' ; do
    grep -Eq -- "${check}" "${work}/run2.log" || {
      echo "serve smoke: missing '${check}' in post-crash output"
      cat "${work}/run2.log"
      return 1
    }
  done
  python3 - "${work}/wd/job-1.report.json" "${work}/wd/job-2.report.json" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    r = json.load(open(path))
    assert r["schema"] == "lmp-run-report" and r["version"] == 4, path
    total = r["stages"]["total_seconds"]
    sum_s = sum(v["seconds"] for k, v in r["stages"].items() if k != "total_seconds")
    assert abs(sum_s - total) < 1e-9, (path, sum_s, total)
    mem = r["memory"]
    assert mem["rss_bytes"] > 0, (path, mem)
    if mem["tracked"]:
        assert mem["heap_high_water_bytes"] > 0, (path, mem)
print(f"serve smoke: survived kill -9; {len(sys.argv) - 1} job reports valid")
EOF
  # Bitwise proof: the resumed job's streamed thermo (which restarts
  # from the checkpointed history, so the post-crash incarnation always
  # streams the complete series) must equal the stream of an
  # uninterrupted server run of the same script at the same cadence.
  echo "acme long ${work}/in.long.lj" > "${work}/jobs-ref.txt"
  mkdir -p "${work}/wd-ref"
  "${build_dir}/examples/lmp_serve" --journal "${work}/journal-ref.bin" \
      --workdir "${work}/wd-ref" --jobs "${work}/jobs-ref.txt" \
      --workers 1 --slice 20 --chunks > "${work}/ref.log" 2>&1 \
      || { echo "serve smoke: reference run failed"; cat "${work}/ref.log"; return 1; }
  awk '/^job 2 acme\/long /{f=1;next} /^job /{f=0} f && /^[0-9]+ /' \
      "${work}/run2.log" > "${work}/thermo.resumed"
  awk '/^job 1 acme\/long /{f=1;next} /^job /{f=0} f && /^[0-9]+ /' \
      "${work}/ref.log" > "${work}/thermo.ref"
  [[ -s "${work}/thermo.resumed" ]] \
      || { echo "serve smoke: resumed job streamed no thermo"; return 1; }
  diff "${work}/thermo.ref" "${work}/thermo.resumed" \
      || { echo "serve smoke: recovered thermo stream diverged"; return 1; }
  echo "serve smoke: recovered thermo bitwise-identical ($(wc -l < "${work}/thermo.resumed") samples)"
}

# Integrity smoke: the silent-corruption guards against the restart
# example. A transient velocity bit flip at a guard step must be
# detected within one cadence, rolled back, and recomputed — the run
# exits 0, reports the rollback, and its final dump is bitwise-identical
# to a fault-free guarded run. The same flip marked persistent re-fires
# on the recompute, which must terminate the run with the structured
# persistent-corruption error instead of emitting a corrupt trajectory.
run_integrity_smoke() {
  local build_dir="$1"
  echo "--- integrity smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  "${build_dir}/examples/lmp_cli" examples/in.restart.lj \
      --integrity 10 --dump-final "${work}/clean.dump" \
      > "${work}/clean.log" \
      || { echo "integrity smoke: fault-free guarded run failed"; return 1; }
  "${build_dir}/examples/lmp_cli" examples/in.restart.lj \
      --integrity 10 --flip 30:0:vel:7:62 \
      --dump-final "${work}/healed.dump" > "${work}/transient.log" \
      || { echo "integrity smoke: transient flip was not healed"
           cat "${work}/transient.log"; return 1; }
  grep -q "integrity rollback at step 30" "${work}/transient.log" \
      || { echo "integrity smoke: rollback not reported"
           cat "${work}/transient.log"; return 1; }
  diff "${work}/clean.dump" "${work}/healed.dump" \
      || { echo "integrity smoke: healed trajectory diverged"; return 1; }
  if "${build_dir}/examples/lmp_cli" examples/in.restart.lj \
      --integrity 10 --flip 30:0:vel:7:62:persistent \
      > "${work}/persistent.log" 2>&1; then
    echo "integrity smoke: persistent fault did not terminate the run"
    return 1
  fi
  grep -q "persistent corruption" "${work}/persistent.log" \
      || { echo "integrity smoke: persistent fault lacks structured error"
           cat "${work}/persistent.log"; return 1; }
  echo "integrity smoke: transient flip healed bitwise, persistent flip escalated"
}

# Executor smoke: the async task-graph executor must reproduce the
# barrier executor's trajectory bit for bit on the golden melt (the
# 6tni_p2p engine, whose per-direction forward channels the step DAG
# genuinely overlaps with interior force groups), and its traced
# notice_wait attribution must come in below the barrier run's — the
# overlap fills dispatcher-wait time with interior force work. Wait
# times are wall-clock on a shared host, so a near-tie gets ONE retry
# before it counts as a regression.
run_executor_smoke() {
  local build_dir="$1"
  echo "--- executor smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  local attempt
  for attempt in 1 2; do
    "${build_dir}/examples/lmp_cli" examples/in.melt.lj 6tni_p2p \
        --executor barrier --dump-final "${work}/barrier.dump" \
        --trace "${work}/barrier.trace.json" \
        --report "${work}/barrier.report.json" > /dev/null
    "${build_dir}/examples/lmp_cli" examples/in.melt.lj 6tni_p2p \
        --executor async --dump-final "${work}/async.dump" \
        --trace "${work}/async.trace.json" \
        --report "${work}/async.report.json" > /dev/null
    diff "${work}/barrier.dump" "${work}/async.dump" \
        || { echo "executor smoke: async trajectory diverged from barrier"; return 1; }
    if python3 - "${work}/barrier.report.json" "${work}/async.report.json" <<'EOF'
import json, sys
waits = []
for path in sys.argv[1:]:
    cp = json.load(open(path)).get("critical_path", {})
    assert "notice_wait" in cp, f"{path}: traced report lacks notice_wait"
    waits.append(cp["notice_wait"]["seconds"])
b, a = waits
print(f"executor smoke: trajectories bitwise-identical; notice_wait "
      f"barrier={b*1e3:.2f}ms async={a*1e3:.2f}ms "
      f"({'below' if a < b else 'NOT below'})")
sys.exit(0 if a < b else 1)
EOF
    then
      return 0
    fi
    echo "executor smoke: async notice_wait not below barrier (attempt ${attempt})"
  done
  return 1
}

# Telemetry smoke: boot lmp_serve with the stream endpoint on a
# two-tenant workload — acme on the utofu_3stage fabric (so the per-TNI
# series carry real bytes) and beta with a 1 ms deadline that must be
# missed — then drive the `stats` verb over the socket with lmp_top
# --once --json while the server lingers. The snapshot must parse, carry
# a nonzero step-rate series, both tenants' SLO windows with beta in
# deadline breach, at least one TNI with traffic, and the breach
# transition as a structured event; the rendered dashboard must show the
# breach tag, and the server's final stats table must count the breach.
run_telemetry_smoke() {
  local build_dir="$1"
  echo "--- telemetry smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  mkdir -p "${work}/wd"
  cat > "${work}/in.fabric.lj" <<EOF
units lj
lattice fcc 0.8442
region box block 0 6 0 6 0 6
create_box 1 box
create_atoms 1 box
mass 1 1.0
velocity all create 1.44 87287
pair_style lj/cut 2.5
pair_coeff 1 1 1.0 1.0
neighbor 0.3 bin
neigh_modify every 5 check no
fix 1 all nve
timestep 0.005
thermo 10
processors 2 2 1
comm_variant utofu_3stage
run 100
EOF
  cat > "${work}/in.quick.lj" <<EOF
units lj
lattice fcc 0.8442
region box block 0 4 0 4 0 4
create_box 1 box
create_atoms 1 box
mass 1 1.0
velocity all create 1.44 87287
pair_style lj/cut 2.5
pair_coeff 1 1 1.0 1.0
neighbor 0.3 bin
neigh_modify every 5 check no
fix 1 all nve
timestep 0.005
thermo 10
comm_variant ref
run 200
EOF
  cat > "${work}/jobs.txt" <<EOF
acme fabric ${work}/in.fabric.lj        # drives the TNI byte series
beta late ${work}/in.quick.lj 1         # 1 ms deadline: must breach SLO
EOF
  "${build_dir}/examples/lmp_serve" --journal "${work}/journal.bin" \
      --workdir "${work}/wd" --jobs "${work}/jobs.txt" --workers 2 \
      --slice 20 --listen "${work}/lmp.sock" --telemetry-ms 50 \
      --linger-ms 20000 > "${work}/serve.log" 2>&1 &
  local pid=$!
  # The workload drained once the server announces its linger window.
  local waited=0
  while ! grep -q '^lingering' "${work}/serve.log" 2>/dev/null; do
    if ! kill -0 "${pid}" 2>/dev/null; then
      echo "telemetry smoke: server exited before the workload drained"
      cat "${work}/serve.log"
      return 1
    fi
    sleep 0.05
    waited=$((waited + 1))
    if [[ ${waited} -gt 1200 ]]; then
      echo "telemetry smoke: workload never drained"
      kill -9 "${pid}" 2>/dev/null || true
      return 1
    fi
  done
  "${build_dir}/examples/lmp_top" --connect "${work}/lmp.sock" --once --json \
      > "${work}/snap.json" \
      || { echo "telemetry smoke: lmp_top --once --json failed"
           kill -9 "${pid}" 2>/dev/null || true; return 1; }
  "${build_dir}/examples/lmp_top" --connect "${work}/lmp.sock" --once \
      > "${work}/dash.txt" \
      || { echo "telemetry smoke: lmp_top dashboard render failed"
           kill -9 "${pid}" 2>/dev/null || true; return 1; }
  kill "${pid}" 2>/dev/null || true
  wait "${pid}" 2>/dev/null || true
  python3 - "${work}/snap.json" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["schema"] == "lmp-telemetry-snapshot" and snap["version"] == 2
assert snap["ticks"] > 0
mem = snap["memory"]
assert mem["rss_bytes"] > 0, mem
assert len(mem["rss_series"]) > 0 and any(v > 0 for _, v in mem["rss_series"])
if mem["tracked"]:
    assert mem["heap_high_water_bytes"] > 0, mem
    assert any(v > 0 for _, v in mem["heap_live_series"]), mem
srv = snap["server"]
assert srv["steps_in_window"] > 0, srv["steps_in_window"]
assert len(srv["step_series"]) > 0 and any(v > 0 for _, v in srv["step_series"])
tenants = {t["tenant"]: t for t in snap["tenants"]}
assert set(tenants) == {"acme", "beta"}, sorted(tenants)
assert not tenants["acme"]["breached"], tenants["acme"]
beta = tenants["beta"]
assert beta["breached"] and beta["breach_deadline"], beta
assert beta["deadline_misses"] >= 1 and "deadline-hit-rate" in beta["detail"]
busy = [t for t in snap["tnis"] if t["bytes_total"] > 0]
assert busy, "utofu_3stage job charged no TNI bytes"
assert any(len(t["bytes_series"]) > 0 for t in busy), "no TNI byte series"
entered = [e for e in snap["slo_events"] if e["entered"]]
assert entered and entered[0]["tenant"] == "beta", snap["slo_events"]
states = {j["name"]: j["state"] for j in snap["jobs"]}
assert states.get("fabric") == "done" and states.get("late") == "failed", states
print(f"telemetry smoke: snapshot valid — {srv['steps_in_window']:.0f} steps "
      f"in window, {len(busy)} busy TNI(s), beta in deadline breach")
EOF
  grep -q 'BREACH' "${work}/dash.txt" \
      || { echo "telemetry smoke: dashboard lacks the breach tag"
           cat "${work}/dash.txt"; return 1; }
  grep -Eq 'slo_breaches *\| *[1-9]' "${work}/serve.log" \
      || { echo "telemetry smoke: final stats table did not count the breach"
           cat "${work}/serve.log"; return 1; }
  echo "telemetry smoke: dashboard rendered breach; server counted it"
}

# Alloc smoke: the memory observability plane end to end. A traced run
# of the golden melt must emit a v4 report whose memory section carries
# nonzero per-stage allocation counts that sum exactly to the global
# counter (the "(unattributed)" slot guarantees the identity). Then the
# same workload under --alloc-guard must FAIL today — the step loop
# still allocates — with exit code 3 and a per-scope attribution table;
# the guard passing silently would mean it stopped watching.
run_alloc_smoke() {
  local build_dir="$1"
  echo "--- alloc smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  "${build_dir}/examples/lmp_cli" examples/in.melt.lj 6tni_p2p \
      --report "${work}/melt.report.json" \
      --trace "${work}/melt.trace.json" --trace-alloc > /dev/null
  python3 - "${work}/melt.report.json" "${work}/melt.trace.json" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[2]))
insts = [e for e in trace["traceEvents"]
         if e.get("ph") == "i" and e.get("name") == "alloc"]
assert insts, "--trace-alloc recorded no allocation instants"
r = json.load(open(sys.argv[1]))
assert r["schema"] == "lmp-run-report" and r["version"] == 4
mem = r["memory"]
assert mem["tracked"], "build should carry LMP_ALLOC_TRACE=ON"
assert mem["total_allocs"] > 0 and mem["total_bytes"] > 0, mem
assert mem["heap_high_water_bytes"] > 0 and mem["rss_bytes"] > 0, mem
scopes = mem["scopes"]
staged = [k for k in scopes if k.startswith("stage:")]
assert staged, f"no per-stage attribution in {sorted(scopes)}"
assert all(scopes[k]["allocs"] > 0 for k in staged), scopes
sum_allocs = sum(s["allocs"] for s in scopes.values())
assert sum_allocs == mem["total_allocs"], (sum_allocs, mem["total_allocs"])
print(f"alloc smoke: report v4 memory consistent — {mem['total_allocs']} "
      f"allocs across {len(scopes)} scopes ({len(staged)} stages), "
      f"{len(insts)} trace instants, heap high water "
      f"{mem['heap_high_water_bytes']} bytes")
EOF
  local rc=0
  "${build_dir}/examples/lmp_cli" examples/in.melt.lj 6tni_p2p \
      --alloc-guard > "${work}/guard.log" 2>&1 || rc=$?
  if [[ ${rc} -ne 3 ]]; then
    echo "alloc smoke: --alloc-guard exited ${rc}, want 3 (steady state"
    echo "still allocates today; a pass means the guard went blind)"
    cat "${work}/guard.log"
    return 1
  fi
  grep -q 'alloc guard:.*FAIL' "${work}/guard.log" \
      || { echo "alloc smoke: guard verdict line missing"
           cat "${work}/guard.log"; return 1; }
  grep -Eq 'stage:[A-Za-z]+' "${work}/guard.log" \
      || { echo "alloc smoke: guard failure lacks per-stage attribution"
           cat "${work}/guard.log"; return 1; }
  echo "alloc smoke: guard failed with attribution, exit 3 as expected"
}

# Bench-compare smoke: regenerate the fig13 and overlap records in quick
# mode and gate them against the committed baselines. A missing baseline
# only warns (that is how a new bench seeds its first record); a
# tolerance breach fails CI. The overlap gate runs wide open (50%):
# its metric is a wall-clock ratio of two runs on a shared host.
run_bench_compare_smoke() {
  local build_dir="$1"
  echo "--- bench-compare smoke (${build_dir}) ---"
  local work
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' RETURN
  LMP_BENCH_QUICK=1 LMP_BENCH_DIR="${work}" \
      "${build_dir}/bench/fig13_strong_scaling" > /dev/null
  "${build_dir}/bench/bench_compare" \
      bench/baselines/BENCH_fig13_strong_scaling.json \
      "${work}/BENCH_fig13_strong_scaling.json"
  LMP_BENCH_QUICK=1 LMP_BENCH_DIR="${work}" \
      "${build_dir}/bench/bench_overlap" > /dev/null
  "${build_dir}/bench/bench_compare" \
      bench/baselines/BENCH_overlap.json \
      "${work}/BENCH_overlap.json" --tol 50
  # Same wide-open gate for the telemetry overhead ratio: it compares
  # two wall-clock runs on a shared host, only a sampler that lands on
  # the step path would move it past 50%.
  LMP_BENCH_QUICK=1 LMP_BENCH_DIR="${work}" \
      "${build_dir}/bench/bench_telemetry" > /dev/null
  "${build_dir}/bench/bench_compare" \
      bench/baselines/BENCH_telemetry.json \
      "${work}/BENCH_telemetry.json" --tol 50
  # Alloc bench: the on/off wall ratio gets the same wide shared-host
  # gate; steady_state_step_allocs is the ratchet — deterministic
  # per-step counting, so the tolerance only absorbs small step-count
  # phase effects, and driving it to zero can only tighten the baseline.
  LMP_BENCH_QUICK=1 LMP_BENCH_DIR="${work}" \
      "${build_dir}/bench/bench_alloc" > /dev/null
  "${build_dir}/bench/bench_compare" \
      bench/baselines/BENCH_alloc.json \
      "${work}/BENCH_alloc.json" --tol 50
}

echo "=== pass 1: -Werror build + ctest ==="
cmake -B build-ci -S . -DLMP_WERROR=ON
cmake --build build-ci -j "${JOBS}"
ctest --test-dir build-ci --output-on-failure -j "${JOBS}"
run_restart_smoke build-ci
run_trace_smoke build-ci
run_integrity_smoke build-ci
run_executor_smoke build-ci
run_serve_smoke build-ci
run_telemetry_smoke build-ci
run_alloc_smoke build-ci
run_bench_compare_smoke build-ci

if [[ "${1:-}" == "--fast" ]]; then
  echo "ci.sh: --fast: skipping sanitizer pass"
  exit 0
fi

echo "=== pass 2: ASan+UBSan build + ctest ==="
cmake -B build-ci-asan -S . -DLMP_WERROR=ON -DLMP_SANITIZE=address,undefined
cmake --build build-ci-asan -j "${JOBS}"
ctest --test-dir build-ci-asan --output-on-failure -j "${JOBS}"
run_restart_smoke build-ci-asan
run_trace_smoke build-ci-asan
run_integrity_smoke build-ci-asan
run_executor_smoke build-ci-asan
run_serve_smoke build-ci-asan
run_telemetry_smoke build-ci-asan
run_alloc_smoke build-ci-asan

echo "=== pass 2b: TSan build + concurrency test slice ==="
# TSan cannot share a process with ASan, so it gets its own tree; the
# slice covers the code that actually shares memory across threads —
# the spin/fork-join pools, the task-graph scheduler, the notice
# dispatcher (the async executor's moving parts), and the telemetry
# plane's sampler/series/SLO/stream machinery (admission-only servers,
# so the slice never races a real simulation under TSan).
cmake -B build-ci-tsan -S . -DLMP_WERROR=ON -DLMP_SANITIZE=thread
cmake --build build-ci-tsan -j "${JOBS}" --target lmp_tests
ctest --test-dir build-ci-tsan --output-on-failure -j "${JOBS}" \
    -R 'TaskGraph|SpinThreadPool|ForkJoin|NoticeDispatcher|TimeSeries|SloAccountant|TelemetrySampler|StreamWatch|AllocTracker'

echo "=== pass 3: LMP_TRACE=OFF LMP_ALLOC_TRACE=OFF build (instrumentation compiles out) ==="
cmake -B build-ci-notrace -S . -DLMP_WERROR=ON -DLMP_TRACE=OFF \
    -DLMP_ALLOC_TRACE=OFF
cmake --build build-ci-notrace -j "${JOBS}"
ctest --test-dir build-ci-notrace --output-on-failure -j "${JOBS}"
# Observability must be free AND inert: the stripped build's golden melt
# trajectory must be bitwise-identical to the fully instrumented one.
golden_dir=$(mktemp -d)
trap 'rm -rf "${golden_dir}"' EXIT
build-ci/examples/lmp_cli examples/in.melt.lj 6tni_p2p \
    --dump-final "${golden_dir}/instrumented.dump" > /dev/null
build-ci-notrace/examples/lmp_cli examples/in.melt.lj 6tni_p2p \
    --dump-final "${golden_dir}/stripped.dump" > /dev/null
diff "${golden_dir}/instrumented.dump" "${golden_dir}/stripped.dump" \
    || { echo "pass 3: stripped build's trajectory diverged"; exit 1; }
echo "pass 3: stripped-build trajectory bitwise-identical to instrumented"

echo "ci.sh: all passes green"
