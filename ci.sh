#!/usr/bin/env bash
# Tier-1 CI: warnings-as-errors build + full test suite, then the same
# suite under AddressSanitizer/UBSan (catches the buffer-discipline bugs
# the zero-copy RDMA paths are prone to).
#
#   ./ci.sh            # both passes
#   ./ci.sh --fast     # skip the sanitizer pass
set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}

echo "=== pass 1: -Werror build + ctest ==="
cmake -B build-ci -S . -DLMP_WERROR=ON
cmake --build build-ci -j "${JOBS}"
ctest --test-dir build-ci --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--fast" ]]; then
  echo "ci.sh: --fast: skipping sanitizer pass"
  exit 0
fi

echo "=== pass 2: ASan+UBSan build + ctest ==="
cmake -B build-ci-asan -S . -DLMP_WERROR=ON -DLMP_SANITIZE=address,undefined
cmake --build build-ci-asan -j "${JOBS}"
ctest --test-dir build-ci-asan --output-on-failure -j "${JOBS}"

echo "ci.sh: all passes green"
