#pragma once

#include <vector>

#include "md/eam_table.h"
#include "md/potential.h"
#include "md/spline.h"

namespace lmp::md {

/// Embedded-atom-method potential over a funcfl table (LAMMPS
/// `pair_style eam` with `Cu_u3.eam`-style input) — the paper's second
/// workload.
///
///   E = sum_i F(rho_i) + 1/2 sum_{i != j} phi(r_ij),
///   rho_i = sum_j rho(r_ij)
///
/// Evaluation is the two-pass LAMMPS flow. With Newton's law on, ghost
/// atoms accumulate partial densities that must be *reverse-added* to
/// their owners, and the embedding derivative fp = F'(rho) must then be
/// *forwarded* back out to the ghosts — the "two additional
/// communications during the pair stage" the paper measures for EAM.
class Eam final : public Potential {
 public:
  explicit Eam(const EamTable& table);

  ForceResult compute(Atoms& atoms, const NeighborList& list, bool newton,
                      GhostDataComm* ghost_comm) override;

  double cutoff() const override { return cutoff_; }
  bool needs_mid_comm() const override { return true; }

  /// Tabulated functions (exposed for tests).
  double rho_of_r(double r) const { return rhor_.value(r); }
  double phi_of_r(double r) const { return z2r_.value(r) / r; }
  double embed(double rho) const { return frho_.value(rho); }

  /// Scratch sized on first compute; exposed so tests can inspect the
  /// densities of the last evaluation.
  const std::vector<double>& last_rho() const { return rho_; }

  // Staged split evaluation: pass 0 accumulates per-group densities,
  // split_join(0) reduces them canonically and runs the two mid-pair
  // communications (rho reverse-add, fp forward) plus the embedding
  // term; pass 1 accumulates per-group forces reading the shared fp.
  int split_passes() const override { return 2; }
  void split_begin(Atoms& atoms, const NeighborList& list, bool newton,
                   const ForceGroups* groups) override;
  void split_group(int pass, int g) override;
  void split_join(int pass, GhostDataComm* ghost_comm) override;
  ForceResult split_finish() override;

 private:
  /// compute()'s density-pass body over an explicit row set, into a
  /// group-private density buffer.
  void rho_rows(const std::vector<int>& rows, const double* x, double* rho,
                const NeighborList& list, bool newton, int nlocal) const;
  /// compute()'s force-pass body over an explicit row set, into a
  /// group-private force buffer; reads the shared fp_ (read-only here).
  void force_rows(const std::vector<int>& rows, const double* x, double* f,
                  const NeighborList& list, bool newton, int nlocal,
                  ForceResult& out) const;

  double cutoff_;
  double cut2_;
  UniformSpline frho_;
  UniformSpline rhor_;
  UniformSpline z2r_;
  std::vector<double> rho_;
  std::vector<double> fp_;

  // Split-evaluation state (bound by split_begin, valid for one step).
  Atoms* satoms_ = nullptr;
  const NeighborList* slist_ = nullptr;
  const ForceGroups* sgroups_ = nullptr;
  bool snewton_ = true;
  std::vector<std::vector<double>> grho_;    ///< per group, ntotal
  std::vector<std::vector<double>> gforce_;  ///< per group, 3*ntotal
  std::vector<ForceResult> gpartial_;
  ForceResult stotal_;
};

}  // namespace lmp::md
