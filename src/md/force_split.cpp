#include "md/force_split.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace lmp::md {

ForceGroups ForceGroups::build(const Atoms& atoms, const geom::Box& sub,
                               double rc) {
  if (rc <= 0) throw std::invalid_argument("ForceGroups: rc must be > 0");
  ForceGroups out;
  out.nlocal = atoms.nlocal();
  const double* x = atoms.x();

  // 64 possible masks (each axis: none/low/high/both); bucket indices,
  // then emit non-empty buckets in ascending mask order. Ascending local
  // index within a bucket falls out of the forward scan.
  std::array<std::vector<int>, 64> buckets;
  for (int i = 0; i < out.nlocal; ++i) {
    const double xi = x[3 * i], yi = x[3 * i + 1], zi = x[3 * i + 2];
    int mask = 0;
    if (xi < sub.lo.x + rc) mask |= kLowX;
    if (xi > sub.hi.x - rc) mask |= kHighX;
    if (yi < sub.lo.y + rc) mask |= kLowY;
    if (yi > sub.hi.y - rc) mask |= kHighY;
    if (zi < sub.lo.z + rc) mask |= kLowZ;
    if (zi > sub.hi.z - rc) mask |= kHighZ;
    buckets[static_cast<std::size_t>(mask)].push_back(i);
  }
  for (int m = 0; m < 64; ++m) {
    if (buckets[static_cast<std::size_t>(m)].empty()) continue;
    out.groups.push_back({m, std::move(buckets[static_cast<std::size_t>(m)])});
  }
  return out;
}

bool group_reads_dir(int mask, int dx, int dy, int dz) {
  if (dx == -1 && !(mask & kLowX)) return false;
  if (dx == +1 && !(mask & kHighX)) return false;
  if (dy == -1 && !(mask & kLowY)) return false;
  if (dy == +1 && !(mask & kHighY)) return false;
  if (dz == -1 && !(mask & kLowZ)) return false;
  if (dz == +1 && !(mask & kHighZ)) return false;
  return true;
}

}  // namespace lmp::md
