#pragma once

#include <vector>

#include "md/atoms.h"

namespace lmp::md {

/// Which pairs a *half* list keeps when ghosts are present.
enum class HalfRule {
  /// Ghost pairs filtered by the LAMMPS coordinate tie-break (z, then y,
  /// then x greater than mine). Needed when ghosts surround the sub-box
  /// on all 26 sides (3-stage comm): both owners see the pair and exactly
  /// one must keep it.
  kCoordTieBreak,
  /// Keep every local-ghost pair. Correct for the p2p half-shell exchange
  /// (paper Fig. 5): ghosts only come from the upper 13 directions, so a
  /// cross-rank pair exists on exactly one rank by construction.
  kAllGhosts,
};

/// CSR neighbor list: neighbors of local atom i are
/// `neigh[offsets[i] .. offsets[i+1])`.
struct NeighborList {
  bool full = false;
  std::vector<int> offsets;
  std::vector<int> neigh;

  int count(int i) const { return offsets[i + 1] - offsets[i]; }
  long total_pairs() const { return static_cast<long>(neigh.size()); }
};

/// Spatial-binning neighbor-list builder over one rank's local + ghost
/// atoms. Bin size >= the neighbor cutoff (cutoff + skin), so candidate
/// pairs live in the surrounding 27 bins.
///
/// Each atom's row is sorted canonically (by neighbor tag, coordinates
/// breaking ties between periodic images), so the pair-force summation
/// order — and therefore the trajectory — does not depend on the ghost
/// placement order of the comm variant that built the halo.
class NeighborBuilder {
 public:
  explicit NeighborBuilder(double neighbor_cutoff);

  /// Half list (Newton's 3rd law on): local-local pairs once (i < j),
  /// local-ghost pairs per `rule`.
  NeighborList build_half(const Atoms& atoms, HalfRule rule) const;

  /// Full list (Newton off / many-body potentials): every neighbor of
  /// every local atom, both directions of local-local pairs.
  NeighborList build_full(const Atoms& atoms) const;

 private:
  struct Bins;
  NeighborList build(const Atoms& atoms, bool full, HalfRule rule) const;

  double cutoff_;
};

}  // namespace lmp::md
