#include "md/lj.h"

#include <stdexcept>

namespace lmp::md {

LennardJones::LennardJones(double epsilon, double sigma, double cutoff)
    : epsilon_(epsilon), sigma_(sigma), cutoff_(cutoff), cut2_(cutoff * cutoff) {
  if (epsilon <= 0 || sigma <= 0 || cutoff <= 0) {
    throw std::invalid_argument("LJ parameters must be positive");
  }
  const double s6 = sigma * sigma * sigma * sigma * sigma * sigma;
  // Same coefficient grouping as LAMMPS pair_lj_cut:
  //   fpair = (lj1/r^12 - lj2/r^6) / r^2,  e = lj3/r^12 - lj4/r^6
  lj1_ = 48.0 * epsilon * s6 * s6;
  lj2_ = 24.0 * epsilon * s6;
  lj3_ = 4.0 * epsilon * s6 * s6;
  lj4_ = 4.0 * epsilon * s6;
}

double LennardJones::pair_energy(double r) const {
  const double r2 = r * r;
  const double inv6 = 1.0 / (r2 * r2 * r2);
  return lj3_ * inv6 * inv6 - lj4_ * inv6;
}

double LennardJones::pair_force_over_r(double r) const {
  const double r2 = r * r;
  const double inv2 = 1.0 / r2;
  const double inv6 = inv2 * inv2 * inv2;
  return (lj1_ * inv6 * inv6 - lj2_ * inv6) * inv2;
}

ForceResult LennardJones::compute(Atoms& atoms, const NeighborList& list,
                                  bool newton, GhostDataComm*) {
  const double* x = atoms.x();
  double* f = atoms.f();
  const int nlocal = atoms.nlocal();
  ForceResult out;

  // Half list with newton: apply to both partners (ghost forces are
  // reverse-communicated by the caller). Full list without newton:
  // i-side only, 0.5-weighted tallies.
  const double pair_weight = list.full ? 0.5 : 1.0;

  for (int i = 0; i < nlocal; ++i) {
    const double xi = x[3 * i], yi = x[3 * i + 1], zi = x[3 * i + 2];
    double fxi = 0, fyi = 0, fzi = 0;
    for (int k = list.offsets[i]; k < list.offsets[i + 1]; ++k) {
      const int j = list.neigh[static_cast<std::size_t>(k)];
      const double dx = xi - x[3 * j];
      const double dy = yi - x[3 * j + 1];
      const double dz = zi - x[3 * j + 2];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cut2_) continue;
      const double inv2 = 1.0 / r2;
      const double inv6 = inv2 * inv2 * inv2;
      const double fpair = (lj1_ * inv6 * inv6 - lj2_ * inv6) * inv2;
      fxi += dx * fpair;
      fyi += dy * fpair;
      fzi += dz * fpair;
      if (!list.full && (newton || j < nlocal)) {
        f[3 * j] -= dx * fpair;
        f[3 * j + 1] -= dy * fpair;
        f[3 * j + 2] -= dz * fpair;
      }
      out.energy += pair_weight * (lj3_ * inv6 * inv6 - lj4_ * inv6);
      out.virial += pair_weight * r2 * fpair;
    }
    f[3 * i] += fxi;
    f[3 * i + 1] += fyi;
    f[3 * i + 2] += fzi;
  }
  return out;
}

void LennardJones::force_rows(const std::vector<int>& rows, const double* x,
                              double* f, const NeighborList& list, bool newton,
                              int nlocal, ForceResult& out) const {
  const double pair_weight = list.full ? 0.5 : 1.0;
  for (const int i : rows) {
    const double xi = x[3 * i], yi = x[3 * i + 1], zi = x[3 * i + 2];
    double fxi = 0, fyi = 0, fzi = 0;
    for (int k = list.offsets[i]; k < list.offsets[i + 1]; ++k) {
      const int j = list.neigh[static_cast<std::size_t>(k)];
      const double dx = xi - x[3 * j];
      const double dy = yi - x[3 * j + 1];
      const double dz = zi - x[3 * j + 2];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cut2_) continue;
      const double inv2 = 1.0 / r2;
      const double inv6 = inv2 * inv2 * inv2;
      const double fpair = (lj1_ * inv6 * inv6 - lj2_ * inv6) * inv2;
      fxi += dx * fpair;
      fyi += dy * fpair;
      fzi += dz * fpair;
      if (!list.full && (newton || j < nlocal)) {
        f[3 * j] -= dx * fpair;
        f[3 * j + 1] -= dy * fpair;
        f[3 * j + 2] -= dz * fpair;
      }
      out.energy += pair_weight * (lj3_ * inv6 * inv6 - lj4_ * inv6);
      out.virial += pair_weight * r2 * fpair;
    }
    f[3 * i] += fxi;
    f[3 * i + 1] += fyi;
    f[3 * i + 2] += fzi;
  }
}

void LennardJones::split_begin(Atoms& atoms, const NeighborList& list,
                               bool newton, const ForceGroups* groups) {
  if (groups == nullptr) {
    throw std::invalid_argument("LJ split_begin: null ForceGroups");
  }
  satoms_ = &atoms;
  slist_ = &list;
  sgroups_ = groups;
  snewton_ = newton;
  stotal_ = {};
  const auto ng = static_cast<std::size_t>(groups->ngroups());
  const auto n3 = static_cast<std::size_t>(3) * atoms.ntotal();
  gforce_.resize(ng);
  gpartial_.assign(ng, {});
  for (auto& buf : gforce_) buf.assign(n3, 0.0);
}

void LennardJones::split_group(int pass, int g) {
  if (pass != 0) throw std::logic_error("LJ split: pass out of range");
  const auto gi = static_cast<std::size_t>(g);
  force_rows(sgroups_->groups[gi].atoms, satoms_->x(), gforce_[gi].data(),
             *slist_, snewton_, satoms_->nlocal(), gpartial_[gi]);
}

void LennardJones::split_join(int pass, GhostDataComm*) {
  if (pass != 0) throw std::logic_error("LJ split: pass out of range");
  // Canonical reduction: groups in ascending mask order, elementwise.
  // This fixed order is the whole determinism argument — it never
  // depends on which worker finished first.
  double* f = satoms_->f();
  const auto n3 = static_cast<std::size_t>(3) * satoms_->ntotal();
  for (std::size_t gi = 0; gi < gforce_.size(); ++gi) {
    const double* buf = gforce_[gi].data();
    for (std::size_t k = 0; k < n3; ++k) f[k] += buf[k];
    stotal_.energy += gpartial_[gi].energy;
    stotal_.virial += gpartial_[gi].virial;
  }
}

ForceResult LennardJones::split_finish() { return stotal_; }

}  // namespace lmp::md
