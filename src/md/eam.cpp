#include "md/eam.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace lmp::md {

Eam::Eam(const EamTable& t)
    : cutoff_(t.cutoff),
      cut2_(t.cutoff * t.cutoff),
      frho_(0.0, t.drho, t.frho),
      rhor_(t.dr, t.dr, t.rhor),
      z2r_(t.dr, t.dr, t.z2r) {
  if (t.cutoff <= 0) throw std::invalid_argument("EAM cutoff must be > 0");
}

ForceResult Eam::compute(Atoms& atoms, const NeighborList& list, bool newton,
                         GhostDataComm* ghost_comm) {
  const int nlocal = atoms.nlocal();
  const int ntotal = atoms.ntotal();
  const double* x = atoms.x();
  double* f = atoms.f();
  ForceResult out;

  rho_.assign(static_cast<std::size_t>(ntotal), 0.0);
  fp_.assign(static_cast<std::size_t>(ntotal), 0.0);

  // ---- pass 1: electron density ------------------------------------
  for (int i = 0; i < nlocal; ++i) {
    for (int k = list.offsets[i]; k < list.offsets[i + 1]; ++k) {
      const int j = list.neigh[static_cast<std::size_t>(k)];
      const double dx = x[3 * i] - x[3 * j];
      const double dy = x[3 * i + 1] - x[3 * j + 1];
      const double dz = x[3 * i + 2] - x[3 * j + 2];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cut2_) continue;
      const double r = std::sqrt(r2);
      const double rho_r = rhor_.value(r);
      rho_[static_cast<std::size_t>(i)] += rho_r;
      if (!list.full && (newton || j < nlocal)) {
        rho_[static_cast<std::size_t>(j)] += rho_r;
      }
    }
  }

  // Mid-pair communication #1: ghost density contributions -> owners.
  if (newton && ghost_comm != nullptr) {
    ghost_comm->reverse_add(rho_.data());
  }

  // ---- embedding energy and its derivative --------------------------
  for (int i = 0; i < nlocal; ++i) {
    double emb, deriv;
    frho_.eval(rho_[static_cast<std::size_t>(i)], emb, deriv);
    out.energy += emb;
    fp_[static_cast<std::size_t>(i)] = deriv;
  }

  // Mid-pair communication #2: fp of owners -> their ghost copies.
  if (ghost_comm != nullptr) {
    ghost_comm->forward(fp_.data());
  }

  // ---- pass 2: forces -------------------------------------------------
  const double pair_weight = list.full ? 0.5 : 1.0;
  for (int i = 0; i < nlocal; ++i) {
    double fxi = 0, fyi = 0, fzi = 0;
    for (int k = list.offsets[i]; k < list.offsets[i + 1]; ++k) {
      const int j = list.neigh[static_cast<std::size_t>(k)];
      const double dx = x[3 * i] - x[3 * j];
      const double dy = x[3 * i + 1] - x[3 * j + 1];
      const double dz = x[3 * i + 2] - x[3 * j + 2];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cut2_) continue;
      const double r = std::sqrt(r2);

      double rho_r, rhop;
      rhor_.eval(r, rho_r, rhop);
      double z2, z2p;
      z2r_.eval(r, z2, z2p);
      const double recip = 1.0 / r;
      const double phi = z2 * recip;
      const double phip = z2p * recip - phi * recip;

      const double psip = fp_[static_cast<std::size_t>(i)] * rhop +
                          fp_[static_cast<std::size_t>(j)] * rhop + phip;
      const double fpair = -psip * recip;

      fxi += dx * fpair;
      fyi += dy * fpair;
      fzi += dz * fpair;
      if (!list.full && (newton || j < nlocal)) {
        f[3 * j] -= dx * fpair;
        f[3 * j + 1] -= dy * fpair;
        f[3 * j + 2] -= dz * fpair;
      }
      out.energy += pair_weight * phi;
      out.virial += pair_weight * r2 * fpair;
    }
    f[3 * i] += fxi;
    f[3 * i + 1] += fyi;
    f[3 * i + 2] += fzi;
  }
  return out;
}

}  // namespace lmp::md
