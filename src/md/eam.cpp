#include "md/eam.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace lmp::md {

Eam::Eam(const EamTable& t)
    : cutoff_(t.cutoff),
      cut2_(t.cutoff * t.cutoff),
      frho_(0.0, t.drho, t.frho),
      rhor_(t.dr, t.dr, t.rhor),
      z2r_(t.dr, t.dr, t.z2r) {
  if (t.cutoff <= 0) throw std::invalid_argument("EAM cutoff must be > 0");
}

ForceResult Eam::compute(Atoms& atoms, const NeighborList& list, bool newton,
                         GhostDataComm* ghost_comm) {
  const int nlocal = atoms.nlocal();
  const int ntotal = atoms.ntotal();
  const double* x = atoms.x();
  double* f = atoms.f();
  ForceResult out;

  rho_.assign(static_cast<std::size_t>(ntotal), 0.0);
  fp_.assign(static_cast<std::size_t>(ntotal), 0.0);

  // ---- pass 1: electron density ------------------------------------
  for (int i = 0; i < nlocal; ++i) {
    for (int k = list.offsets[i]; k < list.offsets[i + 1]; ++k) {
      const int j = list.neigh[static_cast<std::size_t>(k)];
      const double dx = x[3 * i] - x[3 * j];
      const double dy = x[3 * i + 1] - x[3 * j + 1];
      const double dz = x[3 * i + 2] - x[3 * j + 2];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cut2_) continue;
      const double r = std::sqrt(r2);
      const double rho_r = rhor_.value(r);
      rho_[static_cast<std::size_t>(i)] += rho_r;
      if (!list.full && (newton || j < nlocal)) {
        rho_[static_cast<std::size_t>(j)] += rho_r;
      }
    }
  }

  // Mid-pair communication #1: ghost density contributions -> owners.
  if (newton && ghost_comm != nullptr) {
    ghost_comm->reverse_add(rho_.data());
  }

  // ---- embedding energy and its derivative --------------------------
  for (int i = 0; i < nlocal; ++i) {
    double emb, deriv;
    frho_.eval(rho_[static_cast<std::size_t>(i)], emb, deriv);
    out.energy += emb;
    fp_[static_cast<std::size_t>(i)] = deriv;
  }

  // Mid-pair communication #2: fp of owners -> their ghost copies.
  if (ghost_comm != nullptr) {
    ghost_comm->forward(fp_.data());
  }

  // ---- pass 2: forces -------------------------------------------------
  const double pair_weight = list.full ? 0.5 : 1.0;
  for (int i = 0; i < nlocal; ++i) {
    double fxi = 0, fyi = 0, fzi = 0;
    for (int k = list.offsets[i]; k < list.offsets[i + 1]; ++k) {
      const int j = list.neigh[static_cast<std::size_t>(k)];
      const double dx = x[3 * i] - x[3 * j];
      const double dy = x[3 * i + 1] - x[3 * j + 1];
      const double dz = x[3 * i + 2] - x[3 * j + 2];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cut2_) continue;
      const double r = std::sqrt(r2);

      double rho_r, rhop;
      rhor_.eval(r, rho_r, rhop);
      double z2, z2p;
      z2r_.eval(r, z2, z2p);
      const double recip = 1.0 / r;
      const double phi = z2 * recip;
      const double phip = z2p * recip - phi * recip;

      const double psip = fp_[static_cast<std::size_t>(i)] * rhop +
                          fp_[static_cast<std::size_t>(j)] * rhop + phip;
      const double fpair = -psip * recip;

      fxi += dx * fpair;
      fyi += dy * fpair;
      fzi += dz * fpair;
      if (!list.full && (newton || j < nlocal)) {
        f[3 * j] -= dx * fpair;
        f[3 * j + 1] -= dy * fpair;
        f[3 * j + 2] -= dz * fpair;
      }
      out.energy += pair_weight * phi;
      out.virial += pair_weight * r2 * fpair;
    }
    f[3 * i] += fxi;
    f[3 * i + 1] += fyi;
    f[3 * i + 2] += fzi;
  }
  return out;
}

void Eam::rho_rows(const std::vector<int>& rows, const double* x, double* rho,
                   const NeighborList& list, bool newton, int nlocal) const {
  for (const int i : rows) {
    for (int k = list.offsets[i]; k < list.offsets[i + 1]; ++k) {
      const int j = list.neigh[static_cast<std::size_t>(k)];
      const double dx = x[3 * i] - x[3 * j];
      const double dy = x[3 * i + 1] - x[3 * j + 1];
      const double dz = x[3 * i + 2] - x[3 * j + 2];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cut2_) continue;
      const double r = std::sqrt(r2);
      const double rho_r = rhor_.value(r);
      rho[i] += rho_r;
      if (!list.full && (newton || j < nlocal)) {
        rho[j] += rho_r;
      }
    }
  }
}

void Eam::force_rows(const std::vector<int>& rows, const double* x, double* f,
                     const NeighborList& list, bool newton, int nlocal,
                     ForceResult& out) const {
  const double pair_weight = list.full ? 0.5 : 1.0;
  for (const int i : rows) {
    double fxi = 0, fyi = 0, fzi = 0;
    for (int k = list.offsets[i]; k < list.offsets[i + 1]; ++k) {
      const int j = list.neigh[static_cast<std::size_t>(k)];
      const double dx = x[3 * i] - x[3 * j];
      const double dy = x[3 * i + 1] - x[3 * j + 1];
      const double dz = x[3 * i + 2] - x[3 * j + 2];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cut2_) continue;
      const double r = std::sqrt(r2);

      double rho_r, rhop;
      rhor_.eval(r, rho_r, rhop);
      double z2, z2p;
      z2r_.eval(r, z2, z2p);
      const double recip = 1.0 / r;
      const double phi = z2 * recip;
      const double phip = z2p * recip - phi * recip;

      const double psip = fp_[static_cast<std::size_t>(i)] * rhop +
                          fp_[static_cast<std::size_t>(j)] * rhop + phip;
      const double fpair = -psip * recip;

      fxi += dx * fpair;
      fyi += dy * fpair;
      fzi += dz * fpair;
      if (!list.full && (newton || j < nlocal)) {
        f[3 * j] -= dx * fpair;
        f[3 * j + 1] -= dy * fpair;
        f[3 * j + 2] -= dz * fpair;
      }
      out.energy += pair_weight * phi;
      out.virial += pair_weight * r2 * fpair;
    }
    f[3 * i] += fxi;
    f[3 * i + 1] += fyi;
    f[3 * i + 2] += fzi;
  }
}

void Eam::split_begin(Atoms& atoms, const NeighborList& list, bool newton,
                      const ForceGroups* groups) {
  if (groups == nullptr) {
    throw std::invalid_argument("EAM split_begin: null ForceGroups");
  }
  satoms_ = &atoms;
  slist_ = &list;
  sgroups_ = groups;
  snewton_ = newton;
  stotal_ = {};
  const auto ng = static_cast<std::size_t>(groups->ngroups());
  const auto n = static_cast<std::size_t>(atoms.ntotal());
  rho_.assign(n, 0.0);
  fp_.assign(n, 0.0);
  grho_.resize(ng);
  gforce_.resize(ng);
  gpartial_.assign(ng, {});
  for (auto& buf : grho_) buf.assign(n, 0.0);
  for (auto& buf : gforce_) buf.assign(3 * n, 0.0);
}

void Eam::split_group(int pass, int g) {
  const auto gi = static_cast<std::size_t>(g);
  const auto& rows = sgroups_->groups[gi].atoms;
  if (pass == 0) {
    rho_rows(rows, satoms_->x(), grho_[gi].data(), *slist_, snewton_,
             satoms_->nlocal());
  } else if (pass == 1) {
    force_rows(rows, satoms_->x(), gforce_[gi].data(), *slist_, snewton_,
               satoms_->nlocal(), gpartial_[gi]);
  } else {
    throw std::logic_error("EAM split: pass out of range");
  }
}

void Eam::split_join(int pass, GhostDataComm* ghost_comm) {
  if (pass == 0) {
    // Canonical density reduction, then the two mid-pair comms and the
    // embedding term — exactly the monolithic mid-section, with rho
    // summed group-by-group in ascending mask order.
    const int nlocal = satoms_->nlocal();
    const auto n = static_cast<std::size_t>(satoms_->ntotal());
    for (std::size_t gi = 0; gi < grho_.size(); ++gi) {
      const double* buf = grho_[gi].data();
      for (std::size_t k = 0; k < n; ++k) rho_[k] += buf[k];
    }
    if (snewton_ && ghost_comm != nullptr) {
      ghost_comm->reverse_add(rho_.data());
    }
    for (int i = 0; i < nlocal; ++i) {
      double emb, deriv;
      frho_.eval(rho_[static_cast<std::size_t>(i)], emb, deriv);
      stotal_.energy += emb;
      fp_[static_cast<std::size_t>(i)] = deriv;
    }
    if (ghost_comm != nullptr) {
      ghost_comm->forward(fp_.data());
    }
  } else if (pass == 1) {
    double* f = satoms_->f();
    const auto n3 = static_cast<std::size_t>(3) * satoms_->ntotal();
    for (std::size_t gi = 0; gi < gforce_.size(); ++gi) {
      const double* buf = gforce_[gi].data();
      for (std::size_t k = 0; k < n3; ++k) f[k] += buf[k];
      stotal_.energy += gpartial_[gi].energy;
      stotal_.virial += gpartial_[gi].virial;
    }
  } else {
    throw std::logic_error("EAM split: pass out of range");
  }
}

ForceResult Eam::split_finish() { return stotal_; }

}  // namespace lmp::md
