#include "md/thermo.h"

namespace lmp::md {

ThermoPartials local_thermo(const Atoms& atoms, double mass, double pe_share,
                            double virial_share) {
  ThermoPartials p;
  const double* v = atoms.v();
  double s = 0.0;
  const int n3 = 3 * atoms.nlocal();
  for (int i = 0; i < n3; ++i) s += v[i] * v[i];
  p.ke_sum = mass * s;
  p.pe = pe_share;
  p.virial = virial_share;
  p.natoms = atoms.nlocal();
  return p;
}

ThermoState reduce_thermo(const ThermoPartials& g, const Units& units,
                          double volume) {
  ThermoState t;
  const double mv2 = units.mvv2e * g.ke_sum;
  t.kinetic = 0.5 * mv2;
  t.potential = g.pe;
  const double dof = 3.0 * static_cast<double>(g.natoms) - 3.0;
  if (dof > 0) t.temperature = mv2 / (dof * units.boltz);
  if (volume > 0) {
    t.pressure = (mv2 + g.virial) / (3.0 * volume) * units.nktv2p;
  }
  return t;
}

}  // namespace lmp::md
