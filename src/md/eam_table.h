#pragma once

#include <string>
#include <vector>

namespace lmp::md {

/// A funcfl-layout EAM table (the format of the paper's `Cu_u3.eam`):
/// the embedding function F on a uniform rho grid, and the density
/// function rho(r) and scaled pair term z2(r) = r * phi(r) on a uniform
/// r grid. LAMMPS splines exactly these three arrays; we do the same.
struct EamTable {
  std::string element = "Cu";
  double mass = 63.550;

  int nrho = 0;
  double drho = 0.0;
  std::vector<double> frho;  ///< F(rho), nrho samples from rho = 0

  int nr = 0;
  double dr = 0.0;
  double cutoff = 0.0;
  std::vector<double> rhor;  ///< rho(r), nr samples from r = 0
  std::vector<double> z2r;   ///< r * phi(r), nr samples from r = 0
};

/// Generate a Cu-like analytic EAM in funcfl layout.
///
/// The real `Cu_u3.eam` (Foiles/Daw universal-3 fit) is proprietary data
/// we do not ship; instead we tabulate a Morse pair term plus a
/// Finnis-Sinclair square-root embedding with an exponential density,
/// smoothly tapered to zero at the cutoff:
///
///   phi(r) = D [e^{-2 a (r-r0)} - 2 e^{-a (r-r0)}] s(r)
///   rho(r) = fe e^{-beta (r - re)} s(r)
///   F(rho) = -A sqrt(rho)
///
/// with Cu Morse constants (D = 0.3429 eV, a = 1.3588 1/A, r0 = 2.866 A)
/// and re = a0/sqrt(2) for a0 = 3.615 A. This preserves everything the
/// paper's evaluation exercises: the tabulated-spline code path, the
/// mid-pair-stage rho/fp communications, and a stable fcc copper crystal
/// under NVE at the paper's cutoff of 4.95 A.
EamTable make_cu_like_table(int nr = 2000, int nrho = 2000,
                            double cutoff = 4.95);

/// Serialize/parse the table in the DYNAMO funcfl text format so the
/// file-I/O code path is exercised too (LAMMPS reads Cu_u3.eam this way).
std::string to_funcfl(const EamTable& t);
EamTable parse_funcfl(const std::string& text);

}  // namespace lmp::md
