#pragma once

#include <span>
#include <vector>

namespace lmp::md {

/// Natural cubic spline over a *uniform* grid — the interpolation engine
/// behind the tabulated EAM functionals (LAMMPS interpolates funcfl
/// tables the same way, with uniform dr/drho spacing).
class UniformSpline {
 public:
  UniformSpline() = default;

  /// Build from samples y[i] = f(x0 + i*dx). Needs >= 3 points.
  UniformSpline(double x0, double dx, std::span<const double> y);

  double x_min() const { return x0_; }
  double x_max() const { return x0_ + dx_ * static_cast<double>(n_ - 1); }

  /// Interpolated value; clamps to the table ends (matching LAMMPS'
  /// behaviour of clamping rho beyond the tabulated range).
  double value(double x) const;

  /// Interpolated derivative, clamped likewise.
  double derivative(double x) const;

  /// Value and derivative in one lookup (the EAM hot path).
  void eval(double x, double& val, double& deriv) const;

 private:
  int segment(double x, double& t) const;

  double x0_ = 0.0;
  double dx_ = 1.0;
  int n_ = 0;
  std::vector<double> y_;
  std::vector<double> m_;  ///< second derivatives at the knots
};

}  // namespace lmp::md
