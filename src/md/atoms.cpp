#include "md/atoms.h"

#include <algorithm>
#include <stdexcept>

namespace lmp::md {

void Atoms::reserve_capacity(int max_atoms) {
  if (max_atoms < capacity_) return;
  capacity_ = max_atoms;
  x_.resize(static_cast<std::size_t>(3) * max_atoms);
  v_.resize(static_cast<std::size_t>(3) * max_atoms);
  f_.resize(static_cast<std::size_t>(3) * max_atoms);
  tag_.resize(static_cast<std::size_t>(max_atoms));
}

void Atoms::check_capacity(int needed) const {
  if (needed > capacity_) {
    throw std::length_error(
        "Atoms capacity exceeded — reserve_capacity was sized too small "
        "(the pre-registered arrays must never reallocate mid-run)");
  }
}

void Atoms::add_local(const Vec3& pos, const Vec3& vel, std::int64_t tag) {
  if (nghost_ != 0) {
    throw std::logic_error("cannot add locals while ghosts exist");
  }
  check_capacity(nlocal_ + 1);
  const int i = nlocal_++;
  set_pos(i, pos);
  set_vel(i, vel);
  tag_[static_cast<std::size_t>(i)] = tag;
}

void Atoms::remove_locals(std::span<const int> sorted_indices) {
  if (nghost_ != 0) {
    throw std::logic_error("clear ghosts before removing locals");
  }
  if (sorted_indices.empty()) return;
  std::size_t k = 0;  // next victim
  int dst = sorted_indices[0];
  for (int src = dst; src < nlocal_; ++src) {
    if (k < sorted_indices.size() && sorted_indices[k] == src) {
      ++k;
      continue;
    }
    if (dst != src) {
      for (int d = 0; d < 3; ++d) {
        x_[3 * dst + d] = x_[3 * src + d];
        v_[3 * dst + d] = v_[3 * src + d];
        f_[3 * dst + d] = f_[3 * src + d];
      }
      tag_[static_cast<std::size_t>(dst)] = tag_[static_cast<std::size_t>(src)];
    }
    ++dst;
  }
  if (k != sorted_indices.size()) {
    throw std::out_of_range("remove_locals: index beyond nlocal or unsorted");
  }
  nlocal_ = dst;
}

void Atoms::clear_ghosts() { nghost_ = 0; }

int Atoms::add_ghost(const Vec3& pos, std::int64_t tag) {
  check_capacity(ntotal() + 1);
  const int i = nlocal_ + nghost_++;
  set_pos(i, pos);
  tag_[static_cast<std::size_t>(i)] = tag;
  return i;
}

int Atoms::add_ghost_slots(int n) {
  check_capacity(ntotal() + n);
  const int first = ntotal();
  nghost_ += n;
  return first;
}

void Atoms::zero_forces() {
  std::fill(f_.begin(), f_.begin() + static_cast<std::ptrdiff_t>(3) * ntotal(), 0.0);
}

Vec3 Atoms::net_force() const {
  Vec3 s;
  for (int i = 0; i < nlocal_; ++i) {
    s.x += f_[3 * i];
    s.y += f_[3 * i + 1];
    s.z += f_[3 * i + 2];
  }
  return s;
}

}  // namespace lmp::md
