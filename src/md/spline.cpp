#include "md/spline.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lmp::md {

UniformSpline::UniformSpline(double x0, double dx, std::span<const double> y)
    : x0_(x0), dx_(dx), n_(static_cast<int>(y.size())), y_(y.begin(), y.end()) {
  if (n_ < 3) throw std::invalid_argument("spline needs >= 3 samples");
  if (dx <= 0) throw std::invalid_argument("spline spacing must be > 0");

  // Solve the tridiagonal natural-spline system for second derivatives.
  // Uniform spacing collapses the coefficients to constants.
  m_.assign(static_cast<std::size_t>(n_), 0.0);
  std::vector<double> c(static_cast<std::size_t>(n_), 0.0);  // scratch
  std::vector<double> d(static_cast<std::size_t>(n_), 0.0);
  // Interior equations: m[i-1] + 4 m[i] + m[i+1] = 6 (y[i-1]-2y[i]+y[i+1])/dx^2
  for (int i = 1; i < n_ - 1; ++i) {
    d[static_cast<std::size_t>(i)] =
        6.0 * (y_[static_cast<std::size_t>(i - 1)] - 2.0 * y_[static_cast<std::size_t>(i)] +
               y_[static_cast<std::size_t>(i + 1)]) /
        (dx_ * dx_);
  }
  // Thomas algorithm with natural BCs (m[0] = m[n-1] = 0).
  for (int i = 1; i < n_ - 1; ++i) {
    const double w = 4.0 - (i > 1 ? c[static_cast<std::size_t>(i - 1)] : 0.0);
    c[static_cast<std::size_t>(i)] = 1.0 / w;
    d[static_cast<std::size_t>(i)] =
        (d[static_cast<std::size_t>(i)] - (i > 1 ? d[static_cast<std::size_t>(i - 1)] : 0.0)) / w;
  }
  for (int i = n_ - 2; i >= 1; --i) {
    m_[static_cast<std::size_t>(i)] =
        d[static_cast<std::size_t>(i)] -
        c[static_cast<std::size_t>(i)] * m_[static_cast<std::size_t>(i + 1)];
  }
}

int UniformSpline::segment(double x, double& t) const {
  // Clamp into the table range, then locate the knot interval.
  const double xc = std::clamp(x, x_min(), x_max());
  int i = static_cast<int>((xc - x0_) / dx_);
  i = std::clamp(i, 0, n_ - 2);
  t = (xc - (x0_ + dx_ * i)) / dx_;
  return i;
}

double UniformSpline::value(double x) const {
  double v, dv;
  eval(x, v, dv);
  return v;
}

double UniformSpline::derivative(double x) const {
  double v, dv;
  eval(x, v, dv);
  return dv;
}

void UniformSpline::eval(double x, double& val, double& deriv) const {
  double t;
  const int i = segment(x, t);
  const auto iu = static_cast<std::size_t>(i);
  const double a = 1.0 - t;
  const double h2 = dx_ * dx_;
  val = a * y_[iu] + t * y_[iu + 1] +
        (h2 / 6.0) * ((a * a * a - a) * m_[iu] + (t * t * t - t) * m_[iu + 1]);
  deriv = (y_[iu + 1] - y_[iu]) / dx_ +
          (dx_ / 6.0) * ((3.0 * t * t - 1.0) * m_[iu + 1] - (3.0 * a * a - 1.0) * m_[iu]);
}

}  // namespace lmp::md
