#pragma once

#include <cstdint>
#include <vector>

#include "md/units.h"
#include "util/vec3.h"

namespace lmp::md {

/// Deterministic full-system velocity initialization (LAMMPS `velocity
/// all create T seed`): per-atom Gaussian draws seeded by the atom's
/// global tag, net momentum removed, then rescaled to the exact target
/// temperature.
///
/// Seeding by *tag* (not by draw order) makes the result independent of
/// the rank decomposition — every rank can generate the same global
/// velocity field locally, which is how the functional track checks that
/// 1-rank and N-rank runs follow the same trajectory.
std::vector<util::Vec3> create_velocities(std::size_t natoms, double t_target,
                                          double mass, const Units& units,
                                          std::uint64_t seed);

}  // namespace lmp::md
