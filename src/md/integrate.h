#pragma once

#include "md/atoms.h"

namespace lmp::md {

/// Velocity-Verlet integrator for the microcanonical ensemble (LAMMPS
/// `fix nve`) — the only fix both paper workloads use (Table 2).
class VerletNve {
 public:
  /// `dtf_scale` folds the unit system's mvv2e conversion into the force
  /// term: dv = dt/2 * f / m / mvv2e (LAMMPS `force->ftm2v`).
  VerletNve(double dt, double mass, double ftm2v = 1.0);

  /// First half-kick + drift: v += dt/2 * f/m ; x += dt * v.
  void initial_integrate(Atoms& atoms) const;

  /// Second half-kick: v += dt/2 * f/m.
  void final_integrate(Atoms& atoms) const;

  double dt() const { return dt_; }

 private:
  double dt_;
  double dtf_;  ///< dt/2 * ftm2v / mass
};

}  // namespace lmp::md
