#pragma once

#include <vector>

#include "geom/box.h"
#include "md/atoms.h"

namespace lmp::md {

/// Band-mask bit layout for the interior/border force partition: two
/// bits per axis, set when the atom sits within `rc` of that face of the
/// owning sub-box. An atom with mask 0 is *interior*: since the neighbor
/// list admits pairs strictly under rc and every ghost lies at least rc
/// away from the interior band on some axis, an interior atom's rows can
/// never reference a ghost — its force task needs no ghost exchange.
enum BandBit : int {
  kLowX = 1 << 0,
  kHighX = 1 << 1,
  kLowY = 1 << 2,
  kHighY = 1 << 3,
  kLowZ = 1 << 4,
  kHighZ = 1 << 5,
};

/// One force task's atom set: the local atoms sharing a band mask, in
/// ascending local index order (which is ascending build order, so the
/// in-group accumulation order is deterministic).
struct ForceGroup {
  int mask = 0;
  std::vector<int> atoms;
};

/// Comm-scheme-independent partition of the local atoms for the split
/// force path. Groups are held in ascending mask order — that order IS
/// the canonical reduction order both executors use, so the partition
/// (and therefore the arithmetic) is identical across comm variants and
/// executors: it depends only on positions at rebuild, the sub-box, and
/// the neighbor cutoff.
struct ForceGroups {
  std::vector<ForceGroup> groups;  ///< ascending mask; interior first when present
  int nlocal = 0;                  ///< atom count at build time

  /// Classify by position against the sub-box bands of width `rc`
  /// (`rc` = neighbor cutoff = pair cutoff + skin, the same width the
  /// border stage uses to select ghosts). Call at every neighbor
  /// rebuild: group membership must match the epoch's neighbor list.
  static ForceGroups build(const Atoms& atoms, const geom::Box& sub,
                           double rc);

  int ngroups() const { return static_cast<int>(groups.size()); }
};

/// True when a group with band mask `mask` can have neighbor-list rows
/// that reference ghosts imported from the direction (dx, dy, dz),
/// components in {-1, 0, +1}. A ghost on the +x side satisfies
/// x >= sub.hi.x, so a local partner must sit in the high-x band; axes
/// with a zero component impose no constraint. The sim layer uses this
/// to wire border force tasks to the forward-completion task of exactly
/// the directions they read.
bool group_reads_dir(int mask, int dx, int dy, int dz);

}  // namespace lmp::md
