#pragma once

#include "md/atoms.h"
#include "md/units.h"

namespace lmp::md {

/// Per-rank thermodynamic partial sums; combine across ranks with an
/// allreduce before converting to intensive quantities.
struct ThermoPartials {
  double ke_sum = 0.0;    ///< sum of m v^2 (NOT halved yet)
  double pe = 0.0;        ///< potential energy share
  double virial = 0.0;    ///< sum r_ij . f_ij share
  long natoms = 0;

  ThermoPartials& operator+=(const ThermoPartials& o) {
    ke_sum += o.ke_sum;
    pe += o.pe;
    virial += o.virial;
    natoms += o.natoms;
    return *this;
  }
};

/// Global thermodynamic state in the configured unit system.
struct ThermoState {
  double temperature = 0.0;
  double pressure = 0.0;
  double kinetic = 0.0;    ///< total KE
  double potential = 0.0;  ///< total PE
  double total() const { return kinetic + potential; }
};

/// Local kinetic contributions of one rank (mass * v^2 summed).
ThermoPartials local_thermo(const Atoms& atoms, double mass, double pe_share,
                            double virial_share);

/// Convert globally-reduced partials to T and P:
///   T = mvv2e * sum(m v^2) / (dof * boltz),  dof = 3N - 3
///   P = (mvv2e * sum(m v^2) + virial) / (3 V) * nktv2p
ThermoState reduce_thermo(const ThermoPartials& global, const Units& units,
                          double volume);

}  // namespace lmp::md
