#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/vec3.h"

namespace lmp::md {

using util::Vec3;

/// Structure-of-arrays atom storage for one rank: `nlocal` owned atoms
/// followed by `nghost` ghost copies, exactly as LAMMPS lays them out
/// (paper Fig. 9 relies on this: ghost positions live at a fixed offset
/// `recv_ptr` inside the contiguous position array, so remote ranks can
/// RDMA-write straight into it).
///
/// Positions/velocities/forces are interleaved xyz triples so that a
/// ghost block is one contiguous byte range — the unit of RDMA transfer.
///
/// Capacity discipline: `reserve_capacity` sizes the arrays once (the
/// pre-registration optimization registers them with the NIC afterwards);
/// growth beyond capacity throws rather than silently reallocating, which
/// would invalidate the registered STADDs.
class Atoms {
 public:
  Atoms() = default;

  /// Size all arrays for at most `max_atoms` atoms (local + ghost).
  /// May only grow. Existing contents are preserved.
  void reserve_capacity(int max_atoms);
  int capacity() const { return capacity_; }

  int nlocal() const { return nlocal_; }
  int nghost() const { return nghost_; }
  int ntotal() const { return nlocal_ + nghost_; }

  /// Append an owned atom. Ghosts must not exist yet (they follow locals).
  void add_local(const Vec3& pos, const Vec3& vel, std::int64_t tag);

  /// Remove owned atoms by index (sorted ascending, unique). Ghosts must
  /// already be cleared. Remaining atoms are compacted preserving order.
  void remove_locals(std::span<const int> sorted_indices);

  /// Drop all ghost atoms (start of a border rebuild).
  void clear_ghosts();

  /// Append one ghost atom; returns its index. Velocity is not stored for
  /// ghosts (never needed by the paper's potentials).
  int add_ghost(const Vec3& pos, std::int64_t tag);

  /// Reserve `n` ghost slots without writing positions yet — the RDMA
  /// forward path writes them remotely. Returns the first index.
  int add_ghost_slots(int n);

  // --- per-atom accessors ---------------------------------------------
  Vec3 pos(int i) const { return {x_[3 * i], x_[3 * i + 1], x_[3 * i + 2]}; }
  void set_pos(int i, const Vec3& p) {
    x_[3 * i] = p.x;
    x_[3 * i + 1] = p.y;
    x_[3 * i + 2] = p.z;
  }
  Vec3 vel(int i) const { return {v_[3 * i], v_[3 * i + 1], v_[3 * i + 2]}; }
  void set_vel(int i, const Vec3& p) {
    v_[3 * i] = p.x;
    v_[3 * i + 1] = p.y;
    v_[3 * i + 2] = p.z;
  }
  Vec3 force(int i) const { return {f_[3 * i], f_[3 * i + 1], f_[3 * i + 2]}; }
  std::int64_t tag(int i) const { return tag_[i]; }

  /// Raw arrays (length 3*capacity). The comm layer registers these with
  /// the simulated NIC and packs/unpacks directly.
  double* x() { return x_.data(); }
  const double* x() const { return x_.data(); }
  double* v() { return v_.data(); }
  const double* v() const { return v_.data(); }
  double* f() { return f_.data(); }
  const double* f() const { return f_.data(); }
  std::int64_t* tags() { return tag_.data(); }

  std::size_t array_bytes() const { return x_.size() * sizeof(double); }

  void zero_forces();

  /// Sum of force triples over owned atoms (diagnostics; should be ~0 for
  /// a periodic system after reverse communication).
  Vec3 net_force() const;

 private:
  void check_capacity(int needed) const;

  int capacity_ = 0;
  int nlocal_ = 0;
  int nghost_ = 0;
  std::vector<double> x_;
  std::vector<double> v_;
  std::vector<double> f_;
  std::vector<std::int64_t> tag_;
};

}  // namespace lmp::md
