#include "md/integrate.h"

#include <stdexcept>

namespace lmp::md {

VerletNve::VerletNve(double dt, double mass, double ftm2v)
    : dt_(dt), dtf_(0.5 * dt * ftm2v / mass) {
  if (dt <= 0 || mass <= 0) throw std::invalid_argument("dt and mass must be > 0");
}

void VerletNve::initial_integrate(Atoms& atoms) const {
  double* v = atoms.v();
  double* x = atoms.x();
  const double* f = atoms.f();
  const int n3 = 3 * atoms.nlocal();
  for (int i = 0; i < n3; ++i) {
    v[i] += dtf_ * f[i];
    x[i] += dt_ * v[i];
  }
}

void VerletNve::final_integrate(Atoms& atoms) const {
  double* v = atoms.v();
  const double* f = atoms.f();
  const int n3 = 3 * atoms.nlocal();
  for (int i = 0; i < n3; ++i) {
    v[i] += dtf_ * f[i];
  }
}

}  // namespace lmp::md
