#include "md/neighbor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lmp::md {

namespace {

/// Is ghost atom j "greater" than local atom i under the LAMMPS
/// coordinate tie-break used by half lists with full-shell ghosts?
inline bool ghost_wins(const double* x, int i, int j) {
  const double zi = x[3 * i + 2], zj = x[3 * j + 2];
  if (zj > zi) return true;
  if (zj < zi) return false;
  const double yi = x[3 * i + 1], yj = x[3 * j + 1];
  if (yj > yi) return true;
  if (yj < yi) return false;
  return x[3 * j] > x[3 * i];
}

}  // namespace

struct NeighborBuilder::Bins {
  util::Int3 dims;
  util::Vec3 lo;
  double inv_size[3];
  std::vector<int> head;   // first atom in bin, -1 if empty
  std::vector<int> next;   // linked list through atoms

  int index(int bx, int by, int bz) const {
    return bx + dims.x * (by + dims.y * bz);
  }
  util::Int3 of(const double* x, int i) const {
    util::Int3 b;
    for (int d = 0; d < 3; ++d) {
      b[d] = static_cast<int>((x[3 * i + d] - lo[static_cast<std::size_t>(d)]) *
                              inv_size[d]);
      b[d] = std::clamp(b[d], 0, dims[d] - 1);
    }
    return b;
  }
};

NeighborBuilder::NeighborBuilder(double neighbor_cutoff) : cutoff_(neighbor_cutoff) {
  if (neighbor_cutoff <= 0) throw std::invalid_argument("cutoff must be > 0");
}

NeighborList NeighborBuilder::build_half(const Atoms& atoms, HalfRule rule) const {
  return build(atoms, /*full=*/false, rule);
}

NeighborList NeighborBuilder::build_full(const Atoms& atoms) const {
  return build(atoms, /*full=*/true, HalfRule::kCoordTieBreak);
}

NeighborList NeighborBuilder::build(const Atoms& atoms, bool full,
                                    HalfRule rule) const {
  const int ntotal = atoms.ntotal();
  const int nlocal = atoms.nlocal();
  const double* x = atoms.x();

  NeighborList list;
  list.full = full;
  list.offsets.assign(static_cast<std::size_t>(nlocal) + 1, 0);
  if (nlocal == 0) return list;

  // Bin extents cover every atom (ghosts stick out past the sub-box).
  util::Vec3 lo = atoms.pos(0);
  util::Vec3 hi = lo;
  for (int i = 1; i < ntotal; ++i) {
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], x[3 * i + d]);
      hi[d] = std::max(hi[d], x[3 * i + d]);
    }
  }

  Bins bins;
  bins.lo = lo;
  for (int d = 0; d < 3; ++d) {
    const double extent = std::max(hi[d] - lo[d], 1e-12);
    bins.dims[d] = std::max(1, static_cast<int>(extent / cutoff_));
    bins.inv_size[d] = bins.dims[d] / extent * (1.0 - 1e-12);
  }
  bins.head.assign(static_cast<std::size_t>(bins.dims.x) * bins.dims.y * bins.dims.z, -1);
  bins.next.assign(static_cast<std::size_t>(ntotal), -1);
  for (int i = 0; i < ntotal; ++i) {
    const util::Int3 b = bins.of(x, i);
    const int bi = bins.index(b.x, b.y, b.z);
    bins.next[static_cast<std::size_t>(i)] = bins.head[static_cast<std::size_t>(bi)];
    bins.head[static_cast<std::size_t>(bi)] = i;
  }

  const double cut2 = cutoff_ * cutoff_;
  list.neigh.reserve(static_cast<std::size_t>(nlocal) * 32);

  for (int i = 0; i < nlocal; ++i) {
    const util::Int3 bi = bins.of(x, i);
    const std::size_t start = list.neigh.size();
    for (int dz = -1; dz <= 1; ++dz) {
      const int bz = bi.z + dz;
      if (bz < 0 || bz >= bins.dims.z) continue;
      for (int dy = -1; dy <= 1; ++dy) {
        const int by = bi.y + dy;
        if (by < 0 || by >= bins.dims.y) continue;
        for (int dx = -1; dx <= 1; ++dx) {
          const int bx = bi.x + dx;
          if (bx < 0 || bx >= bins.dims.x) continue;
          for (int j = bins.head[static_cast<std::size_t>(bins.index(bx, by, bz))];
               j >= 0; j = bins.next[static_cast<std::size_t>(j)]) {
            if (j == i) continue;
            if (!full) {
              if (j < nlocal) {
                if (j < i) continue;  // local-local: keep i < j once
              } else if (rule == HalfRule::kCoordTieBreak && !ghost_wins(x, i, j)) {
                continue;
              }
            }
            const double ddx = x[3 * i] - x[3 * j];
            const double ddy = x[3 * i + 1] - x[3 * j + 1];
            const double ddz = x[3 * i + 2] - x[3 * j + 2];
            if (ddx * ddx + ddy * ddy + ddz * ddz < cut2) {
              list.neigh.push_back(j);
            }
          }
        }
      }
    }
    // Canonicalize the row: bin traversal visits atoms in insertion
    // order, which depends on how the comm variant happened to place
    // ghosts — a different order sums pair forces in a different FP
    // order. Sorting each row by (tag, then coords — a wrapped atom can
    // appear as several same-tag periodic images) makes the force
    // accumulation order, and therefore the trajectory, bitwise
    // identical across comm variants.
    std::sort(list.neigh.begin() + static_cast<std::ptrdiff_t>(start),
              list.neigh.end(), [&](int a, int b) {
                const std::int64_t ta = atoms.tag(a);
                const std::int64_t tb = atoms.tag(b);
                if (ta != tb) return ta < tb;
                if (x[3 * a + 2] != x[3 * b + 2]) return x[3 * a + 2] < x[3 * b + 2];
                if (x[3 * a + 1] != x[3 * b + 1]) return x[3 * a + 1] < x[3 * b + 1];
                return x[3 * a] < x[3 * b];
              });
    list.offsets[static_cast<std::size_t>(i) + 1] =
        static_cast<int>(list.neigh.size());
  }
  return list;
}

}  // namespace lmp::md
