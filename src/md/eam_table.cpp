#include "md/eam_table.h"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace lmp::md {

namespace {

/// Smooth taper: 1 below rs, cosine-smoothed to 0 at rc.
double taper(double r, double rs, double rc) {
  if (r <= rs) return 1.0;
  if (r >= rc) return 0.0;
  const double t = (r - rs) / (rc - rs);
  return 0.5 * (1.0 + std::cos(std::numbers::pi * t));
}

}  // namespace

EamTable make_cu_like_table(int nr, int nrho, double cutoff) {
  if (nr < 10 || nrho < 10) throw std::invalid_argument("table too small");

  // Morse copper pair term.
  constexpr double kD = 0.3429;    // eV
  constexpr double kAlpha = 1.3588;  // 1/Angstrom
  constexpr double kR0 = 2.866;    // Angstrom
  // Exponential density referenced to the fcc nearest-neighbor distance.
  const double re = 3.615 / std::sqrt(2.0);
  constexpr double kFe = 1.0;
  constexpr double kBeta = 3.0;  // 1/Angstrom
  // Embedding strength.
  constexpr double kA = 0.85;  // eV per sqrt(density unit)

  const double rs = 0.90 * cutoff;

  EamTable t;
  t.nr = nr;
  t.dr = cutoff / nr;
  t.cutoff = cutoff;
  t.rhor.resize(static_cast<std::size_t>(nr));
  t.z2r.resize(static_cast<std::size_t>(nr));
  for (int i = 0; i < nr; ++i) {
    // funcfl grids start at r = dr (index 0 stores r=dr in LAMMPS; we use
    // r = (i+1)*dr so r=0 singularities never enter the table).
    const double r = (i + 1) * t.dr;
    const double s = taper(r, rs, cutoff);
    const double phi =
        kD * (std::exp(-2.0 * kAlpha * (r - kR0)) - 2.0 * std::exp(-kAlpha * (r - kR0))) * s;
    t.rhor[static_cast<std::size_t>(i)] = kFe * std::exp(-kBeta * (r - re)) * s;
    t.z2r[static_cast<std::size_t>(i)] = r * phi;
  }

  // rho range: equilibrium fcc density is ~12 neighbors at re plus the
  // second shell; triple it for headroom under compression.
  const double rho_eq = 12.0 * kFe;  // upper-ish bound of first shell sum
  const double rho_max = 3.0 * rho_eq;
  t.nrho = nrho;
  t.drho = rho_max / nrho;
  t.frho.resize(static_cast<std::size_t>(nrho));
  for (int i = 0; i < nrho; ++i) {
    const double rho = i * t.drho;
    t.frho[static_cast<std::size_t>(i)] = -kA * std::sqrt(rho);
  }
  return t;
}

std::string to_funcfl(const EamTable& t) {
  std::ostringstream out;
  out.precision(16);
  out << "Cu-like analytic EAM (Morse + Finnis-Sinclair), generated\n";
  // funcfl line 2: atomic number, mass, lattice constant, lattice type
  out << 29 << ' ' << t.mass << ' ' << 3.615 << " FCC\n";
  out << t.nrho << ' ' << t.drho << ' ' << t.nr << ' ' << t.dr << ' '
      << t.cutoff << '\n';
  auto dump = [&](const std::vector<double>& v) {
    int col = 0;
    for (double x : v) {
      out << x << ((++col % 5 == 0) ? '\n' : ' ');
    }
    if (col % 5 != 0) out << '\n';
  };
  dump(t.frho);
  dump(t.z2r);
  dump(t.rhor);
  return out.str();
}

EamTable parse_funcfl(const std::string& text) {
  std::istringstream in(text);
  std::string comment;
  std::getline(in, comment);

  EamTable t;
  int atomic_number = 0;
  std::string lattice_type;
  double lattice_constant = 0.0;
  in >> atomic_number >> t.mass >> lattice_constant >> lattice_type;
  in >> t.nrho >> t.drho >> t.nr >> t.dr >> t.cutoff;
  if (!in || t.nrho < 2 || t.nr < 2) {
    throw std::invalid_argument("malformed funcfl header");
  }
  auto slurp = [&](std::vector<double>& v, int n) {
    v.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) in >> v[static_cast<std::size_t>(i)];
  };
  slurp(t.frho, t.nrho);
  slurp(t.z2r, t.nr);
  slurp(t.rhor, t.nr);
  if (!in) throw std::invalid_argument("funcfl table truncated");
  return t;
}

}  // namespace lmp::md
