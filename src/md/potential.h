#pragma once

#include "md/atoms.h"
#include "md/neighbor.h"

namespace lmp::md {

/// This rank's share of global energy/virial sums (reduced by thermo).
struct ForceResult {
  double energy = 0.0;  ///< potential energy contribution
  double virial = 0.0;  ///< sum over pairs of r_ij . f_ij (scalar virial)
};

/// Mid-force-computation ghost communication, implemented by the comm
/// layer. The EAM potential needs two of these per step (paper Sec. 4):
/// a reverse-add of ghost electron densities and a forward copy of the
/// embedding-energy derivatives.
class GhostDataComm {
 public:
  virtual ~GhostDataComm() = default;

  /// Add each ghost atom's value into its owner's entry and zero the
  /// ghost entry. `per_atom` has `ntotal` entries.
  virtual void reverse_add(double* per_atom) = 0;

  /// Copy each owned atom's value to all its ghost copies on other ranks.
  virtual void forward(double* per_atom) = 0;
};

/// A pair-style potential. `newton` selects half-list (true, forces on
/// both partners including ghosts, reverse-communicated afterwards by the
/// caller) or full-list (false, forces on i only) evaluation.
class Potential {
 public:
  virtual ~Potential() = default;

  virtual ForceResult compute(Atoms& atoms, const NeighborList& list,
                              bool newton, GhostDataComm* ghost_comm) = 0;

  virtual double cutoff() const = 0;

  /// True if compute() communicates mid-evaluation (EAM).
  virtual bool needs_mid_comm() const { return false; }
};

}  // namespace lmp::md
