#pragma once

#include "md/atoms.h"
#include "md/force_split.h"
#include "md/neighbor.h"

namespace lmp::md {

/// This rank's share of global energy/virial sums (reduced by thermo).
struct ForceResult {
  double energy = 0.0;  ///< potential energy contribution
  double virial = 0.0;  ///< sum over pairs of r_ij . f_ij (scalar virial)
};

/// Mid-force-computation ghost communication, implemented by the comm
/// layer. The EAM potential needs two of these per step (paper Sec. 4):
/// a reverse-add of ghost electron densities and a forward copy of the
/// embedding-energy derivatives.
class GhostDataComm {
 public:
  virtual ~GhostDataComm() = default;

  /// Add each ghost atom's value into its owner's entry and zero the
  /// ghost entry. `per_atom` has `ntotal` entries.
  virtual void reverse_add(double* per_atom) = 0;

  /// Copy each owned atom's value to all its ghost copies on other ranks.
  virtual void forward(double* per_atom) = 0;
};

/// A pair-style potential. `newton` selects half-list (true, forces on
/// both partners including ghosts, reverse-communicated afterwards by the
/// caller) or full-list (false, forces on i only) evaluation.
class Potential {
 public:
  virtual ~Potential() = default;

  virtual ForceResult compute(Atoms& atoms, const NeighborList& list,
                              bool newton, GhostDataComm* ghost_comm) = 0;

  virtual double cutoff() const = 0;

  /// True if compute() communicates mid-evaluation (EAM).
  virtual bool needs_mid_comm() const { return false; }

  // --- staged split evaluation (asynchronous step runtime) -------------
  //
  // The split contract decomposes one force evaluation into per-group
  // tasks the step DAG can schedule against in-flight ghost exchange:
  //
  //   split_begin(atoms, list, newton, groups)
  //   for pass in [0, split_passes()):
  //     split_group(pass, g)   for every group   (any order / concurrent)
  //     split_join(pass, ghost_comm)             (serial, canonical)
  //   result = split_finish()
  //
  // Each split_group call writes only that group's private accumulation
  // buffer (never atoms.f()), so concurrent groups cannot race;
  // split_join reduces the buffers in ascending group order — a fixed
  // arithmetic order, which is what makes the barrier and async
  // executors bitwise-identical. Interior groups (mask 0) read no ghost
  // data in pass 0 and may run before the forward exchange completes;
  // border groups may run as soon as every direction they read
  // (group_reads_dir) has landed. Executing the sequence above serially
  // is exactly what the barrier executor does.

  /// Number of split passes: 1 for plain pair styles, 2 for EAM (density
  /// then force, with the mid-pair comm inside split_join(0)). 0 means
  /// the potential does not support the split path.
  virtual int split_passes() const { return 0; }

  /// Bind one evaluation's inputs and zero the per-group buffers.
  /// `groups` must outlive the evaluation (rebuilt per neighbor epoch).
  virtual void split_begin(Atoms& /*atoms*/, const NeighborList& /*list*/,
                           bool /*newton*/, const ForceGroups* /*groups*/) {}

  /// Compute group `g`'s contribution to pass `pass` into its private
  /// buffer. Thread-safe across distinct groups of the same pass.
  virtual void split_group(int /*pass*/, int /*g*/) {}

  /// Reduce pass `pass` in ascending group order and run any mid-pass
  /// ghost communication (EAM rho reverse-add / fp forward). Serial.
  virtual void split_join(int /*pass*/, GhostDataComm* /*ghost_comm*/) {}

  /// Energy/virial of the completed evaluation (summed per-group in
  /// ascending group order).
  virtual ForceResult split_finish() { return {}; }
};

}  // namespace lmp::md
