#pragma once

namespace lmp::md {

/// LAMMPS-style unit systems. The paper's two workloads use `lj`
/// (dimensionless) and `metal` (eV / Angstrom / ps / g-mol) units.
enum class UnitStyle { kLj, kMetal };

struct Units {
  UnitStyle style;
  double boltz;   ///< Boltzmann constant in this system's energy/K
  double mvv2e;   ///< converts mass*velocity^2 to energy
  double nktv2p;  ///< converts energy/volume to the pressure unit

  static constexpr Units lj() { return {UnitStyle::kLj, 1.0, 1.0, 1.0}; }
  static constexpr Units metal() {
    // Constants as used by LAMMPS update.cpp for `units metal`.
    return {UnitStyle::kMetal, 8.617343e-5, 1.0364269e-4, 1.6021765e6};
  }
};

}  // namespace lmp::md
