#include "md/config.h"

namespace lmp::md {

SimConfig SimConfig::lj_melt() {
  SimConfig c;
  c.name = "lj-melt";
  c.units = Units::lj();
  c.potential = PotentialKind::kLennardJones;
  c.lattice_arg = 0.8442;  // reduced density
  c.cutoff = 2.5;
  c.skin = 0.3;
  c.dt = 0.005;  // tau
  c.mass = 1.0;
  c.newton = true;
  c.neigh = {20, /*check=*/false};
  c.t_init = 1.44;
  c.sigma = 1.0;
  c.epsilon = 1.0;
  return c;
}

SimConfig SimConfig::eam_copper() {
  SimConfig c;
  c.name = "eam-cu";
  c.units = Units::metal();
  c.potential = PotentialKind::kEam;
  c.lattice_arg = 3.615;  // Angstrom, fcc Cu
  c.cutoff = 4.95;
  c.skin = 1.0;
  c.dt = 0.005;  // ps
  c.mass = 63.550;
  c.newton = true;
  c.neigh = {5, /*check=*/true};
  c.t_init = 800.0;  // K
  return c;
}

}  // namespace lmp::md
