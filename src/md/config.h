#pragma once

#include <string>

#include "md/units.h"

namespace lmp::md {

enum class PotentialKind { kLennardJones, kEam };

/// How often / whether the neighbor list is rebuilt (LAMMPS
/// `neigh_modify every N check yes|no`, paper Table 2).
struct NeighborPolicy {
  int every = 20;
  /// check yes: at a rebuild step, rebuild only if some atom on *any*
  /// rank moved more than half the skin since the last build — decided
  /// by a global logical-or reduction (the extra allreduce the paper
  /// blames for EAM's large "Other" time).
  bool check = false;
};

/// Full description of one of the paper's workloads (Table 2).
struct SimConfig {
  std::string name;
  Units units = Units::lj();
  PotentialKind potential = PotentialKind::kLennardJones;

  double lattice_arg = 0.8442;  ///< reduced density (lj) or constant (metal)
  double cutoff = 2.5;
  double skin = 0.3;
  double dt = 0.005;
  double mass = 1.0;
  bool newton = true;
  NeighborPolicy neigh;

  /// Initial temperature for velocity creation (LAMMPS melt uses 1.44 for
  /// lj; we use a modest metal-units value for EAM copper).
  double t_init = 1.44;

  /// LJ parameters (ignored for EAM).
  double sigma = 1.0;
  double epsilon = 1.0;

  double neighbor_cutoff() const { return cutoff + skin; }

  /// The paper's two benchmark configurations.
  static SimConfig lj_melt();
  static SimConfig eam_copper();
};

}  // namespace lmp::md
