#pragma once

#include <vector>

#include "md/potential.h"

namespace lmp::md {

/// Lennard-Jones 12-6 pair potential with a sharp cutoff (LAMMPS
/// `pair_style lj/cut`), single atom type — the paper's first workload
/// (sigma = epsilon = 1, cutoff 2.5, Table 2).
class LennardJones final : public Potential {
 public:
  LennardJones(double epsilon, double sigma, double cutoff);

  ForceResult compute(Atoms& atoms, const NeighborList& list, bool newton,
                      GhostDataComm* ghost_comm) override;

  double cutoff() const override { return cutoff_; }

  /// Analytic pair energy/force magnitude (for tests).
  double pair_energy(double r) const;
  double pair_force_over_r(double r) const;

  // Staged split evaluation: one force pass over per-group buffers,
  // reduced canonically in split_join(0). See Potential for the contract.
  int split_passes() const override { return 1; }
  void split_begin(Atoms& atoms, const NeighborList& list, bool newton,
                   const ForceGroups* groups) override;
  void split_group(int pass, int g) override;
  void split_join(int pass, GhostDataComm* ghost_comm) override;
  ForceResult split_finish() override;

 private:
  /// The compute() loop body over an explicit row set, accumulating into
  /// `f` (a group's private buffer in the split path). Identical
  /// arithmetic and ordering to compute(), so a single all-atom group
  /// reproduces the monolithic forces bitwise.
  void force_rows(const std::vector<int>& rows, const double* x, double* f,
                  const NeighborList& list, bool newton, int nlocal,
                  ForceResult& out) const;

  double epsilon_;
  double sigma_;
  double cutoff_;
  double cut2_;
  double lj1_, lj2_, lj3_, lj4_;  // precomputed coefficient products

  // Split-evaluation state (bound by split_begin, valid for one step).
  Atoms* satoms_ = nullptr;
  const NeighborList* slist_ = nullptr;
  const ForceGroups* sgroups_ = nullptr;
  bool snewton_ = true;
  std::vector<std::vector<double>> gforce_;  ///< per group, 3*ntotal
  std::vector<ForceResult> gpartial_;
  ForceResult stotal_;
};

}  // namespace lmp::md
