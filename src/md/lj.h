#pragma once

#include "md/potential.h"

namespace lmp::md {

/// Lennard-Jones 12-6 pair potential with a sharp cutoff (LAMMPS
/// `pair_style lj/cut`), single atom type — the paper's first workload
/// (sigma = epsilon = 1, cutoff 2.5, Table 2).
class LennardJones final : public Potential {
 public:
  LennardJones(double epsilon, double sigma, double cutoff);

  ForceResult compute(Atoms& atoms, const NeighborList& list, bool newton,
                      GhostDataComm* ghost_comm) override;

  double cutoff() const override { return cutoff_; }

  /// Analytic pair energy/force magnitude (for tests).
  double pair_energy(double r) const;
  double pair_force_over_r(double r) const;

 private:
  double epsilon_;
  double sigma_;
  double cutoff_;
  double cut2_;
  double lj1_, lj2_, lj3_, lj4_;  // precomputed coefficient products
};

}  // namespace lmp::md
