#include "md/velocity.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace lmp::md {

std::vector<util::Vec3> create_velocities(std::size_t natoms, double t_target,
                                          double mass, const Units& units,
                                          std::uint64_t seed) {
  if (natoms == 0) return {};
  if (t_target < 0 || mass <= 0) {
    throw std::invalid_argument("bad velocity-create arguments");
  }

  std::vector<util::Vec3> v(natoms);
  for (std::size_t i = 0; i < natoms; ++i) {
    util::Rng rng(seed ^ (0x51f9c2e7a8b4d3ULL * (i + 1)));
    v[i] = {rng.normal(), rng.normal(), rng.normal()};
  }

  // Remove net momentum.
  util::Vec3 mean;
  for (const auto& vi : v) mean += vi;
  mean *= 1.0 / static_cast<double>(natoms);
  for (auto& vi : v) vi -= mean;

  if (t_target == 0.0) {
    for (auto& vi : v) vi = {0, 0, 0};
    return v;
  }

  // Rescale to the exact target temperature: T = mvv2e * sum(m v^2) / (dof kB).
  double mv2 = 0.0;
  for (const auto& vi : v) mv2 += mass * norm_sq(vi);
  const double dof = 3.0 * static_cast<double>(natoms) - 3.0;
  const double t_now = units.mvv2e * mv2 / (dof * units.boltz);
  if (t_now <= 0) throw std::logic_error("degenerate velocity draw");
  const double scale = std::sqrt(t_target / t_now);
  for (auto& vi : v) vi *= scale;
  return v;
}

}  // namespace lmp::md
