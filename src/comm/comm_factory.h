#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comm/address_book.h"
#include "comm/comm_base.h"
#include "md/neighbor.h"
#include "minimpi/world.h"
#include "threadpool/spin_pool.h"
#include "tofu/network.h"

namespace lmp::comm {

/// Everything a variant builder may need. The simulation fills this once
/// per rank; each builder picks the substrate it speaks (MPI world vs
/// uTofu network + address book) and ignores the rest.
struct CommBuildInputs {
  CommContext ctx;
  minimpi::World* world = nullptr;
  tofu::Network* net = nullptr;
  AddressBook* book = nullptr;
  /// Ablation switches (forwarded to the p2p engine).
  bool use_border_bins = true;
  bool balanced_assignment = true;
};

/// A built variant plus whatever it needs kept alive. `pool` is non-null
/// only for fine-grained variants that drive one TNI per pool thread;
/// the pool must outlive every comm *call* (the comm's destructor does
/// not use it, so member order is not load-bearing).
struct CommInstance {
  std::unique_ptr<Comm> comm;
  std::unique_ptr<pool::SpinThreadPool> pool;
};

/// One registered comm variant: the paper's name for it, a one-line
/// summary for catalogs, the half-list rule its ghost pattern requires,
/// and the builder.
struct CommVariantInfo {
  std::string name;
  std::string summary;
  /// Brick-style all-26-sides ghosts need the LAMMPS coordinate
  /// tie-break; half-shell p2p ghosts keep every local-ghost pair.
  md::HalfRule half_rule = md::HalfRule::kAllGhosts;
  std::function<CommInstance(const CommBuildInputs&)> build;
};

/// Name -> builder registry for the six paper variants (and any future
/// ones). Drivers self-register from static initializers in their own
/// translation unit, so adding a variant is a one-file change; the
/// simulation, input scripts, benches, and CLIs all resolve variants by
/// string through this table.
class CommFactory {
 public:
  static CommFactory& instance();

  /// Registers (or replaces) a variant under info.name.
  void register_variant(CommVariantInfo info);

  bool known(const std::string& name) const;

  /// Info for `name`; throws std::invalid_argument listing the catalog
  /// for unknown names.
  const CommVariantInfo& at(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// "name1, name2, ..." — for error messages and usage strings.
  std::string catalog() const;

  /// Convenience: at(name).build(inputs).
  CommInstance build(const std::string& name,
                     const CommBuildInputs& inputs) const;

 private:
  CommFactory() = default;
  std::map<std::string, CommVariantInfo> variants_;
};

/// Registers a variant at static-initialization time:
///
///   const CommRegistrar reg{{ "mpi_p2p", "naive p2p over MPI",
///                             md::HalfRule::kAllGhosts, builder }};
///
/// Lives at the bottom of the driver's .cpp, next to the code it
/// constructs. lmp_comm is an OBJECT library so these initializers are
/// never dead-stripped by the archive linker.
struct CommRegistrar {
  explicit CommRegistrar(CommVariantInfo info) {
    CommFactory::instance().register_variant(std::move(info));
  }
};

}  // namespace lmp::comm
