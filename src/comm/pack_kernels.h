#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "md/atoms.h"
#include "util/vec3.h"

namespace lmp::comm {

/// SoA pack/unpack kernels shared by every comm variant. Each payload
/// format is defined exactly once here, so the `x[3*i] + shift` loop and
/// its siblings cannot drift apart between transports:
///
///   border:   shifted position + tag        (4 doubles / atom)
///   forward:  shifted position              (3 doubles / atom)
///   scalar:   one per-atom double           (EAM rho / fp mid-pair comm)
///   exchange: position + velocity + tag     (7 doubles / atom)
///
/// The raw-buffer overloads write into a caller-provided buffer so the
/// zero-copy RDMA path (CommP2p) packs straight into registered memory;
/// the vector overloads size the result up front from the send-list
/// length (no unreserved push_back) for the two-sided transports.

inline constexpr int kBorderDoubles = 4;
inline constexpr int kPositionDoubles = 3;
inline constexpr int kExchangeDoubles = 7;

// --- pack: raw caller-provided buffers (zero-copy path) ----------------
// `out` must hold list.size() * k doubles; each returns doubles written.

std::size_t pack_border(const md::Atoms& atoms, std::span<const int> list,
                        const util::Vec3& shift, double* out);
std::size_t pack_positions(const double* x, std::span<const int> list,
                           const util::Vec3& shift, double* out);
std::size_t pack_scalar(const double* per_atom, std::span<const int> list,
                        double* out);
std::size_t pack_exchange(const md::Atoms& atoms, std::span<const int> list,
                          const util::Vec3& shift, double* out);

// --- pack: sized-up-front vectors (two-sided transports) ---------------

std::vector<double> pack_border(const md::Atoms& atoms,
                                std::span<const int> list,
                                const util::Vec3& shift);
std::vector<double> pack_positions(const double* x, std::span<const int> list,
                                   const util::Vec3& shift);
std::vector<double> pack_scalar(const double* per_atom,
                                std::span<const int> list);
std::vector<double> pack_exchange(const md::Atoms& atoms,
                                  std::span<const int> list,
                                  const util::Vec3& shift);

// --- unpack ------------------------------------------------------------

/// Append the border payload as ghost atoms; returns ghosts added.
int unpack_border(md::Atoms& atoms, std::span<const double> in);

/// Overwrite the ghost block starting at `ghost_start` with forwarded
/// positions.
void unpack_positions(double* x, int ghost_start, std::span<const double> in);

/// Overwrite the per-atom scalar ghost block starting at `ghost_start`.
void unpack_scalar(double* per_atom, int ghost_start,
                   std::span<const double> in);

/// Append every migrated atom in the payload as a local; returns atoms
/// added.
int unpack_exchange(md::Atoms& atoms, std::span<const double> in);

/// Staged-exchange variant: keep only the records whose coordinate on
/// `axis` falls in [lo, hi) — the other broadcast copy lands the rest.
int unpack_exchange_slab(md::Atoms& atoms, std::span<const double> in,
                         int axis, double lo, double hi);

// --- reverse accumulation ----------------------------------------------

/// Add returned ghost forces onto the owners named by the send list.
/// Throws std::logic_error if the payload length does not match.
void add_forces(double* f, std::span<const int> list,
                std::span<const double> in);

/// Same for a per-atom scalar (EAM rho reverse-add).
void add_scalar(double* per_atom, std::span<const int> list,
                std::span<const double> in);

}  // namespace lmp::comm
