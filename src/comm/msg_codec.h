#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace lmp::comm {

/// Message kinds multiplexed over the one-sided channels. Together with
/// the direction index they identify a logical channel; at most one
/// message per (kind, direction, sender) is in flight at a time, which
/// the engine's stage ordering guarantees.
enum class MsgKind : int {
  kBorder = 0,    ///< border stage: ghost atom positions + tags
  kBorderAck,     ///< piggyback reply: ghost offset in receiver's x array
  kForward,       ///< forward stage: updated ghost positions
  kReverse,       ///< reverse stage: ghost forces back to owners
  kScalarFwd,     ///< EAM fp owner -> ghosts
  kScalarRev,     ///< EAM rho ghosts -> owner
  kExchange,      ///< atom migration on rebuild steps
  kRetransmitReq, ///< reliability NACK: "re-send (kind, dir) seq N"
  kCount
};

inline const char* kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::kBorder: return "border";
    case MsgKind::kBorderAck: return "border-ack";
    case MsgKind::kForward: return "forward";
    case MsgKind::kReverse: return "reverse";
    case MsgKind::kScalarFwd: return "scalar-fwd";
    case MsgKind::kScalarRev: return "scalar-rev";
    case MsgKind::kExchange: return "exchange";
    case MsgKind::kRetransmitReq: return "retransmit-req";
    default: return "?";
  }
}

/// 64-bit piggyback descriptor word carried in every put's edata:
///   bits 0..31  value (atom count, or ghost offset for kBorderAck)
///   bits 32..33 ring-buffer slot the payload was written to
///   bits 34..39 direction index (sender's perspective)
///   bits 40..43 message kind
///   bits 44..51 per-channel sequence number (reliability)
///   bits 52..59 CRC-8 over value + payload (reliability)
struct Edata {
  MsgKind kind;
  int dir;
  int slot;
  std::uint32_t value;
  std::uint8_t seq = 0;
  std::uint8_t crc = 0;

  std::uint64_t encode() const {
    return (static_cast<std::uint64_t>(crc) << 52) |
           (static_cast<std::uint64_t>(seq) << 44) |
           (static_cast<std::uint64_t>(kind) << 40) |
           (static_cast<std::uint64_t>(dir) << 34) |
           (static_cast<std::uint64_t>(slot) << 32) | value;
  }
  static Edata decode(std::uint64_t w) {
    return {static_cast<MsgKind>((w >> 40) & 0xF),
            static_cast<int>((w >> 34) & 0x3F), static_cast<int>((w >> 32) & 0x3),
            static_cast<std::uint32_t>(w & 0xFFFFFFFFu),
            static_cast<std::uint8_t>((w >> 44) & 0xFF),
            static_cast<std::uint8_t>((w >> 52) & 0xFF)};
  }
};

/// CRC-8 (poly 0x07, init 0) — cheap enough to run per message, and the
/// injector's single-byte/-bit flips can never cancel out under it.
inline std::uint8_t crc8(std::uint8_t crc, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= p[i];
    for (int b = 0; b < 8; ++b) {
      crc = static_cast<std::uint8_t>((crc << 1) ^ ((crc & 0x80) ? 0x07 : 0));
    }
  }
  return crc;
}

/// Checksum guarding one message: the 32-bit descriptor value (little
/// endian) followed by the payload bytes, if any. Piggyback-only messages
/// pass bytes == 0 and are still protected against value-bit flips.
inline std::uint8_t payload_crc(std::uint32_t value, const void* payload,
                                std::size_t bytes) {
  std::uint8_t le[4] = {static_cast<std::uint8_t>(value),
                        static_cast<std::uint8_t>(value >> 8),
                        static_cast<std::uint8_t>(value >> 16),
                        static_cast<std::uint8_t>(value >> 24)};
  std::uint8_t c = crc8(0, le, sizeof(le));
  if (bytes > 0) c = crc8(c, payload, bytes);
  return c;
}

/// CRC-32 (reflected, poly 0xEDB88320) — the integrity check shared by
/// checkpoint files, the job journal, and wire frames. The classic check
/// value crc32("123456789") == 0xCBF43926 is pinned by tests.
/// `crc32_update` is the streaming form: seed with kCrc32Init, feed byte
/// ranges in order, finish with ~crc.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

inline std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                  std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

inline std::uint32_t crc32(const void* data, std::size_t len) {
  return ~crc32_update(kCrc32Init, data, len);
}

// --- length-prefixed frames ---------------------------------------------
//
// The byte-stream framing used wherever messages travel outside the
// fabric's fixed-slot channels: the job server's request/response
// protocol and the durable job journal. Layout (host-endian, like the
// checkpoint format):
//
//   u32 magic   "LMPF" (0x464D504C little-endian on x86)
//   u16 type    application-defined frame type
//   u16 flags   reserved, must be 0
//   u32 length  payload bytes that follow the header
//   u32 crc     CRC-32 over magic..length header fields + payload
//
// Decoding is structured and total: a truncated or length-corrupted
// frame yields a status, never a read past the buffer.

inline constexpr std::uint32_t kFrameMagic = 0x464D504Cu;  // "LMPF"
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Upper bound on one frame's payload. Anything larger is a corrupted
/// length field (or an abusive peer) — decode refuses it instead of
/// allocating or scanning unbounded memory.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

enum class FrameStatus {
  kOk,        ///< one whole valid frame decoded
  kNeedMore,  ///< prefix of a valid frame; read more bytes and retry
  kBadMagic,  ///< stream out of sync (or not a frame stream at all)
  kOversized, ///< length field exceeds kMaxFramePayload
  kBadCrc,    ///< header+payload checksum mismatch
};

inline const char* frame_status_name(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kNeedMore: return "need-more";
    case FrameStatus::kBadMagic: return "bad-magic";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kBadCrc: return "bad-crc";
  }
  return "?";
}

/// Result of decoding one frame from a byte buffer. `payload` points
/// into the caller's buffer (valid while the buffer lives); `consumed`
/// is how many bytes the frame occupied and is only nonzero for kOk —
/// every error status leaves the stream position untouched so the caller
/// decides whether to resync or give up.
struct FrameView {
  FrameStatus status = FrameStatus::kNeedMore;
  std::uint16_t type = 0;
  const char* payload = nullptr;
  std::size_t payload_len = 0;
  std::size_t consumed = 0;

  bool ok() const { return status == FrameStatus::kOk; }
};

/// Append one frame (header + payload) to `out`.
inline void append_frame(std::vector<char>& out, std::uint16_t type,
                         const void* payload, std::size_t len) {
  char hdr[kFrameHeaderBytes];
  const std::uint32_t magic = kFrameMagic;
  const std::uint16_t flags = 0;
  const auto len32 = static_cast<std::uint32_t>(len);
  std::memcpy(hdr, &magic, 4);
  std::memcpy(hdr + 4, &type, 2);
  std::memcpy(hdr + 6, &flags, 2);
  std::memcpy(hdr + 8, &len32, 4);
  std::uint32_t c = crc32_update(kCrc32Init, hdr, 12);
  c = ~crc32_update(c, payload, len);
  std::memcpy(hdr + 12, &c, 4);
  out.insert(out.end(), hdr, hdr + kFrameHeaderBytes);
  const char* pc = static_cast<const char*>(payload);
  if (len > 0) out.insert(out.end(), pc, pc + len);
}

/// Decode the frame starting at `data`. Total: never reads past
/// `data + len`, whatever the bytes say.
inline FrameView decode_frame(const char* data, std::size_t len) {
  FrameView v;
  if (len < kFrameHeaderBytes) {
    // Not enough bytes to even validate the magic — but if what we do
    // have already disagrees with it, say so instead of stalling a
    // stream that can never become valid.
    std::uint32_t magic_prefix = kFrameMagic;
    std::memcpy(&magic_prefix, data, len < 4 ? len : 4);
    if (len >= 4 && magic_prefix != kFrameMagic) {
      v.status = FrameStatus::kBadMagic;
      return v;
    }
    v.status = FrameStatus::kNeedMore;
    return v;
  }
  std::uint32_t magic, length, stored_crc;
  std::uint16_t type, flags;
  std::memcpy(&magic, data, 4);
  std::memcpy(&type, data + 4, 2);
  std::memcpy(&flags, data + 6, 2);
  std::memcpy(&length, data + 8, 4);
  std::memcpy(&stored_crc, data + 12, 4);
  if (magic != kFrameMagic) {
    v.status = FrameStatus::kBadMagic;
    return v;
  }
  (void)flags;  // reserved; any flip is caught by the CRC
  if (length > kMaxFramePayload) {
    v.status = FrameStatus::kOversized;
    return v;
  }
  if (len < kFrameHeaderBytes + length) {
    v.status = FrameStatus::kNeedMore;
    return v;
  }
  // Recompute the CRC exactly as append_frame produced it: header
  // prefix (magic..length) then payload, one logical byte range.
  std::uint32_t c = crc32_update(kCrc32Init, data, 12);
  c = ~crc32_update(c, data + kFrameHeaderBytes, length);
  if (c != stored_crc) {
    v.status = FrameStatus::kBadCrc;
    return v;
  }
  v.status = FrameStatus::kOk;
  v.type = type;
  v.payload = data + kFrameHeaderBytes;
  v.payload_len = length;
  v.consumed = kFrameHeaderBytes + length;
  return v;
}

/// Bit-cast an int64 tag into a double payload slot and back (`message
/// combine`, Sec. 3.5.1: header fields ride inside the payload so arrays
/// of unknown length need only one message).
inline double tag_to_double(std::int64_t tag) {
  double d;
  std::memcpy(&d, &tag, sizeof(d));
  return d;
}
inline std::int64_t double_to_tag(double d) {
  std::int64_t t;
  std::memcpy(&t, &d, sizeof(t));
  return t;
}

}  // namespace lmp::comm
