#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace lmp::comm {

/// Message kinds multiplexed over the one-sided channels. Together with
/// the direction index they identify a logical channel; at most one
/// message per (kind, direction, sender) is in flight at a time, which
/// the engine's stage ordering guarantees.
enum class MsgKind : int {
  kBorder = 0,    ///< border stage: ghost atom positions + tags
  kBorderAck,     ///< piggyback reply: ghost offset in receiver's x array
  kForward,       ///< forward stage: updated ghost positions
  kReverse,       ///< reverse stage: ghost forces back to owners
  kScalarFwd,     ///< EAM fp owner -> ghosts
  kScalarRev,     ///< EAM rho ghosts -> owner
  kExchange,      ///< atom migration on rebuild steps
  kRetransmitReq, ///< reliability NACK: "re-send (kind, dir) seq N"
  kCount
};

inline const char* kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::kBorder: return "border";
    case MsgKind::kBorderAck: return "border-ack";
    case MsgKind::kForward: return "forward";
    case MsgKind::kReverse: return "reverse";
    case MsgKind::kScalarFwd: return "scalar-fwd";
    case MsgKind::kScalarRev: return "scalar-rev";
    case MsgKind::kExchange: return "exchange";
    case MsgKind::kRetransmitReq: return "retransmit-req";
    default: return "?";
  }
}

/// 64-bit piggyback descriptor word carried in every put's edata:
///   bits 0..31  value (atom count, or ghost offset for kBorderAck)
///   bits 32..33 ring-buffer slot the payload was written to
///   bits 34..39 direction index (sender's perspective)
///   bits 40..43 message kind
///   bits 44..51 per-channel sequence number (reliability)
///   bits 52..59 CRC-8 over value + payload (reliability)
struct Edata {
  MsgKind kind;
  int dir;
  int slot;
  std::uint32_t value;
  std::uint8_t seq = 0;
  std::uint8_t crc = 0;

  std::uint64_t encode() const {
    return (static_cast<std::uint64_t>(crc) << 52) |
           (static_cast<std::uint64_t>(seq) << 44) |
           (static_cast<std::uint64_t>(kind) << 40) |
           (static_cast<std::uint64_t>(dir) << 34) |
           (static_cast<std::uint64_t>(slot) << 32) | value;
  }
  static Edata decode(std::uint64_t w) {
    return {static_cast<MsgKind>((w >> 40) & 0xF),
            static_cast<int>((w >> 34) & 0x3F), static_cast<int>((w >> 32) & 0x3),
            static_cast<std::uint32_t>(w & 0xFFFFFFFFu),
            static_cast<std::uint8_t>((w >> 44) & 0xFF),
            static_cast<std::uint8_t>((w >> 52) & 0xFF)};
  }
};

/// CRC-8 (poly 0x07, init 0) — cheap enough to run per message, and the
/// injector's single-byte/-bit flips can never cancel out under it.
inline std::uint8_t crc8(std::uint8_t crc, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= p[i];
    for (int b = 0; b < 8; ++b) {
      crc = static_cast<std::uint8_t>((crc << 1) ^ ((crc & 0x80) ? 0x07 : 0));
    }
  }
  return crc;
}

/// Checksum guarding one message: the 32-bit descriptor value (little
/// endian) followed by the payload bytes, if any. Piggyback-only messages
/// pass bytes == 0 and are still protected against value-bit flips.
inline std::uint8_t payload_crc(std::uint32_t value, const void* payload,
                                std::size_t bytes) {
  std::uint8_t le[4] = {static_cast<std::uint8_t>(value),
                        static_cast<std::uint8_t>(value >> 8),
                        static_cast<std::uint8_t>(value >> 16),
                        static_cast<std::uint8_t>(value >> 24)};
  std::uint8_t c = crc8(0, le, sizeof(le));
  if (bytes > 0) c = crc8(c, payload, bytes);
  return c;
}

/// Bit-cast an int64 tag into a double payload slot and back (`message
/// combine`, Sec. 3.5.1: header fields ride inside the payload so arrays
/// of unknown length need only one message).
inline double tag_to_double(std::int64_t tag) {
  double d;
  std::memcpy(&d, &tag, sizeof(d));
  return d;
}
inline std::int64_t double_to_tag(double d) {
  std::int64_t t;
  std::memcpy(&t, &d, sizeof(t));
  return t;
}

}  // namespace lmp::comm
