#pragma once

#include <cstdint>
#include <cstring>

namespace lmp::comm {

/// Message kinds multiplexed over the one-sided channels. Together with
/// the direction index they identify a logical channel; at most one
/// message per (kind, direction, sender) is in flight at a time, which
/// the engine's stage ordering guarantees.
enum class MsgKind : int {
  kBorder = 0,    ///< border stage: ghost atom positions + tags
  kBorderAck,     ///< piggyback reply: ghost offset in receiver's x array
  kForward,       ///< forward stage: updated ghost positions
  kReverse,       ///< reverse stage: ghost forces back to owners
  kScalarFwd,     ///< EAM fp owner -> ghosts
  kScalarRev,     ///< EAM rho ghosts -> owner
  kExchange,      ///< atom migration on rebuild steps
  kCount
};

/// 64-bit piggyback descriptor word carried in every put's edata:
///   bits 0..31  value (atom count, or ghost offset for kBorderAck)
///   bits 32..33 ring-buffer slot the payload was written to
///   bits 34..39 direction index (sender's perspective)
///   bits 40..43 message kind
struct Edata {
  MsgKind kind;
  int dir;
  int slot;
  std::uint32_t value;

  std::uint64_t encode() const {
    return (static_cast<std::uint64_t>(kind) << 40) |
           (static_cast<std::uint64_t>(dir) << 34) |
           (static_cast<std::uint64_t>(slot) << 32) | value;
  }
  static Edata decode(std::uint64_t w) {
    return {static_cast<MsgKind>((w >> 40) & 0xF),
            static_cast<int>((w >> 34) & 0x3F), static_cast<int>((w >> 32) & 0x3),
            static_cast<std::uint32_t>(w & 0xFFFFFFFFu)};
  }
};

/// Bit-cast an int64 tag into a double payload slot and back (`message
/// combine`, Sec. 3.5.1: header fields ride inside the payload so arrays
/// of unknown length need only one message).
inline double tag_to_double(std::int64_t tag) {
  double d;
  std::memcpy(&d, &tag, sizeof(d));
  return d;
}
inline std::int64_t double_to_tag(double d) {
  std::int64_t t;
  std::memcpy(&t, &d, sizeof(t));
  return t;
}

}  // namespace lmp::comm
