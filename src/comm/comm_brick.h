#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "comm/address_book.h"
#include "comm/comm_base.h"
#include "comm/dispatcher.h"
#include "comm/ghost_plan.h"
#include "comm/msg_codec.h"
#include "minimpi/world.h"
#include "tofu/utofu.h"

namespace lmp::comm {

/// Transport strategy for the 3-stage pattern: a combined send-toward-
/// channel / receive-on-channel operation between the two face partners
/// of a dimension. `channel` is dim*2 + side (0:-x 1:+x 2:-y 3:+y 4:-z
/// 5:+z); the received message is the one the opposite partner sent on
/// the same channel id.
class BrickTransport {
 public:
  virtual ~BrickTransport() = default;

  /// Collective; `max_channel_doubles` bounds any single payload.
  virtual void setup(const CommContext& ctx, std::size_t max_channel_doubles) = 0;

  virtual std::vector<double> sendrecv(MsgKind kind, int channel, int dst,
                                       int src,
                                       std::span<const double> payload) = 0;
};

/// Two-sided transport over the minimpi stack — the *Ref* baseline.
class MpiBrickTransport final : public BrickTransport {
 public:
  explicit MpiBrickTransport(minimpi::World& world) : world_(&world) {}
  void setup(const CommContext& ctx, std::size_t max_channel_doubles) override;
  std::vector<double> sendrecv(MsgKind kind, int channel, int dst, int src,
                               std::span<const double> payload) override;

 private:
  minimpi::World* world_;
  int rank_ = 0;
};

/// One-sided transport over uTofu (paper's `utofu_3stage` variant): the
/// payload is length-prefixed (message combine, Sec. 3.5.1), put into the
/// partner's pre-registered round-robin ring buffer, and announced via
/// the piggyback descriptor word.
class UtofuBrickTransport final : public BrickTransport {
 public:
  UtofuBrickTransport(tofu::Network& net, AddressBook& book, int tni = 0);
  void setup(const CommContext& ctx, std::size_t max_channel_doubles) override;
  std::vector<double> sendrecv(MsgKind kind, int channel, int dst, int src,
                               std::span<const double> payload) override;

 private:
  tofu::Network* net_;
  AddressBook* book_;
  int tni_;
  int rank_ = 0;
  std::unique_ptr<tofu::UtofuContext> utofu_;
  tofu::RegisteredBuffer send_buf_;
  std::array<tofu::RegisteredBuffer, kRingSlots> rings_[6];
  std::array<int, 6> ring_next_{};
  NoticeDispatcher dispatcher_;
  std::size_t ring_doubles_ = 0;
};

/// The LAMMPS default 3-stage ghost communication (paper Fig. 4): each
/// dimension exchanges with its two face partners in turn, and later
/// stages carry the ghosts of earlier ones, covering all 26 neighbors
/// with 6 messages at the price of strict stage ordering. The exchange
/// plan (channels, shifts, border selection, migration, sizing) lives in
/// GhostPlan; this class only drives its transport over that plan.
class CommBrick final : public Comm {
 public:
  CommBrick(const CommContext& ctx, std::unique_ptr<BrickTransport> transport);

  void setup() override;
  void exchange() override;
  void borders() override;
  void forward_positions() override;
  void reverse_forces() override;

  // md::GhostDataComm (EAM mid-pair scalar comm)
  void forward(double* per_atom) override;
  void reverse_add(double* per_atom) override;

  /// Ghost count received per channel (tests).
  std::array<int, 6> ghosts_per_channel() const;

 private:
  static int side_of(int channel) { return channel % 2; }

  std::unique_ptr<BrickTransport> transport_;
  GhostPlan plan_;
};

}  // namespace lmp::comm
