#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "comm/border_bins.h"
#include "comm/comm_base.h"
#include "comm/directions.h"
#include "comm/msg_codec.h"
#include "util/vec3.h"

namespace lmp::comm {

/// Leavers of one exchange, classified by destination direction. `gone`
/// is ascending (ready for md::Atoms::remove_locals); `by_dir[d]` holds
/// the subset that migrates to neighbor direction d.
struct MigrationPlan {
  std::vector<int> gone;
  std::array<std::vector<int>, kNumDirs> by_dir;
};

/// The transport-invariant half of ghost communication: which channels
/// exist, who is on their far ends, which periodic shift each applies,
/// which atoms each sends, where received ghosts were placed, and how
/// large any payload can get (the Sec. 3.4 preregistration bound).
///
/// Two schemes cover all paper variants:
///
///   kStaged — the LAMMPS 3-stage pattern: 6 channels (dim*2 + side),
///             border atoms selected by plane sweep against a shrinking
///             slab, later stages re-forwarding earlier stages' ghosts;
///             migration runs one dimension at a time on wrapped
///             coordinates.
///   kP2p    — 26 direct neighbor channels (Newton halves them 13/13),
///             border targets from the 3x3x3 border bins of Sec. 3.5.2
///             (or the naive slab scan when geometry disallows bins);
///             migration classifies raw coordinates straight to the
///             destination direction.
///
/// CommBrick / CommP2pMpi / CommP2p are thin transport drivers over this
/// plan plus the pack_kernels: the periodic-shift setup, border
/// selection, and boundary-coordinate scans each live here exactly once.
class GhostPlan {
 public:
  enum class Scheme { kStaged, kP2p };

  GhostPlan() = default;

  /// Build the 6-channel staged plan. Throws std::invalid_argument when
  /// a sub-box side is thinner than the ghost cutoff.
  static GhostPlan staged(const CommContext& ctx);

  /// Build the 26-channel p2p plan; `use_border_bins` enables the binned
  /// target selection where the geometry allows it.
  static GhostPlan p2p(const CommContext& ctx, bool use_border_bins);

  Scheme scheme() const { return scheme_; }
  int nchannels() const { return static_cast<int>(ch_.size()); }

  /// Channels this rank sends border/forward payloads on (all of them
  /// for staged; the lower 13 under Newton for p2p).
  const std::vector<int>& send_channels() const { return send_channels_; }
  /// Channels this rank receives ghosts on.
  const std::vector<int>& recv_channels() const { return recv_channels_; }

  int send_peer(int ch) const { return ch_[static_cast<std::size_t>(ch)].send_peer; }
  int recv_peer(int ch) const { return ch_[static_cast<std::size_t>(ch)].recv_peer; }
  const util::Vec3& shift(int ch) const { return ch_[static_cast<std::size_t>(ch)].shift; }

  // --- border selection -------------------------------------------------

  /// Staged plane sweep: rebuild channel ch's send list from the atoms in
  /// [0, scan_end) lying within the cutoff slab of its face. The caller
  /// controls scan_end per the LAMMPS nlast discipline (both swaps of a
  /// dimension scan the set present before that dimension's first swap).
  void select_staged(int ch, const md::Atoms& atoms, int scan_end);

  /// P2p target selection: rebuild every send channel's list in one pass
  /// over the local atoms (border bins or naive slab scan).
  void build_send_lists(const md::Atoms& atoms);

  const std::vector<int>& send_list(int ch) const {
    return ch_[static_cast<std::size_t>(ch)].sendlist;
  }

  // --- ghost bookkeeping ------------------------------------------------

  void set_ghost_block(int ch, int start, int count) {
    ch_[static_cast<std::size_t>(ch)].ghost_start = start;
    ch_[static_cast<std::size_t>(ch)].ghost_count = count;
  }
  int ghost_start(int ch) const { return ch_[static_cast<std::size_t>(ch)].ghost_start; }
  int ghost_count(int ch) const { return ch_[static_cast<std::size_t>(ch)].ghost_count; }

  // --- migration (exchange stage) ---------------------------------------

  /// Staged: ascending indices of owned atoms outside the sub-box along
  /// `axis` (coordinates must already be wrapped into the global box).
  std::vector<int> migrants_along(const md::Atoms& atoms, int axis) const;

  /// P2p: classify every leaver by destination direction on the raw
  /// coordinates; the channel's periodic shift maps them into the
  /// owner's box.
  MigrationPlan classify_migrants(const md::Atoms& atoms) const;

  // --- buffer upper bounds (Sec. 3.4) -----------------------------------

  /// Theoretical per-channel ghost-atom bound used for preregistration.
  std::size_t max_channel_atoms() const { return max_channel_atoms_; }
  /// Doubles any single payload on any channel may occupy (including the
  /// scheme's framing margin). Transports size rings/buffers from this.
  std::size_t max_payload_doubles() const { return max_payload_doubles_; }

  bool using_border_bins() const { return bins_ != nullptr; }

 private:
  struct Channel {
    int send_peer = -1;
    int recv_peer = -1;
    util::Vec3 shift;
    std::vector<int> sendlist;
    int ghost_start = 0;
    int ghost_count = 0;
  };

  /// Offset of one coordinate relative to the sub-box along `axis`:
  /// -1 below lo, +1 at/above hi, 0 inside. The single home of the
  /// boundary-coordinate scan every exchange path uses.
  int axis_offset(const double* x, int i, int axis) const;

  Scheme scheme_ = Scheme::kStaged;
  geom::Box sub_;
  geom::Box global_;
  double rc_ = 0;
  std::vector<Channel> ch_;
  std::vector<int> send_channels_;
  std::vector<int> recv_channels_;
  std::size_t max_channel_atoms_ = 0;
  std::size_t max_payload_doubles_ = 0;
  std::unique_ptr<BorderBins> bins_;
};

/// Uniform CommCounters accounting for one sent payload: every variant
/// calls this so bytes/msgs are computed identically (piggyback-only
/// control words do not pass through here and are not counted).
void account(CommCounters& counters, MsgKind kind,
             std::size_t payload_doubles);

}  // namespace lmp::comm
