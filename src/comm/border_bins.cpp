#include "comm/border_bins.h"

#include <stdexcept>

#include "comm/directions.h"

namespace lmp::comm {

namespace {

/// Region code per axis: 0 = within rc of the low face, 2 = within rc of
/// the high face, 1 = interior.
inline int axis_region(double v, double lo, double hi, double rc) {
  if (v < lo + rc) return 0;
  if (v > hi - rc) return 2;
  return 1;
}

/// Does an atom in axis-region r need to go toward direction component o?
inline bool region_matches(int r, int o) {
  if (o == -1) return r == 0;
  if (o == 1) return r == 2;
  return true;  // o == 0: any region qualifies
}

}  // namespace

bool BorderBins::applicable(const geom::Box& sub_box, double rc) {
  const geom::Vec3 e = sub_box.extent();
  return e.x >= 2 * rc && e.y >= 2 * rc && e.z >= 2 * rc;
}

BorderBins::BorderBins(const geom::Box& sub_box, double rc,
                       const std::vector<int>& send_dirs)
    : box_(sub_box), rc_(rc) {
  if (!applicable(sub_box, rc)) {
    throw std::invalid_argument("sub-box smaller than 2*rc: bins inapplicable");
  }
  const auto& dirs = all_dirs();
  for (int rz = 0; rz < 3; ++rz) {
    for (int ry = 0; ry < 3; ++ry) {
      for (int rx = 0; rx < 3; ++rx) {
        auto& list = region_targets_[static_cast<std::size_t>(rx + 3 * (ry + 3 * rz))];
        for (const int d : send_dirs) {
          const util::Int3 o = dirs[static_cast<std::size_t>(d)];
          if (region_matches(rx, o.x) && region_matches(ry, o.y) &&
              region_matches(rz, o.z)) {
            list.push_back(d);
          }
        }
      }
    }
  }
}

int BorderBins::region_of(const geom::Vec3& p) const {
  const int rx = axis_region(p.x, box_.lo.x, box_.hi.x, rc_);
  const int ry = axis_region(p.y, box_.lo.y, box_.hi.y, rc_);
  const int rz = axis_region(p.z, box_.lo.z, box_.hi.z, rc_);
  return rx + 3 * (ry + 3 * rz);
}

const std::vector<int>& BorderBins::targets(const geom::Vec3& p) const {
  return region_targets_[static_cast<std::size_t>(region_of(p))];
}

std::vector<int> BorderBins::targets_naive(const geom::Box& sub_box, double rc,
                                           const std::vector<int>& send_dirs,
                                           const geom::Vec3& p) {
  const auto& dirs = all_dirs();
  std::vector<int> out;
  for (const int d : send_dirs) {
    const util::Int3 o = dirs[static_cast<std::size_t>(d)];
    bool inside = true;
    for (int axis = 0; axis < 3 && inside; ++axis) {
      const int oc = o[static_cast<std::size_t>(axis)];
      const double v = p[static_cast<std::size_t>(axis)];
      if (oc == -1) {
        inside = v < sub_box.lo[static_cast<std::size_t>(axis)] + rc;
      } else if (oc == 1) {
        inside = v > sub_box.hi[static_cast<std::size_t>(axis)] - rc;
      }
    }
    if (inside) out.push_back(d);
  }
  return out;
}

}  // namespace lmp::comm
