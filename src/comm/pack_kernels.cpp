#include "comm/pack_kernels.h"

#include <stdexcept>

#include "comm/msg_codec.h"

namespace lmp::comm {

namespace {

/// THE shifted-position copy: every packed position in the comm layer
/// goes through here, so the periodic image arithmetic is bitwise
/// identical across all variants (the cross-variant golden test depends
/// on this). Returns the advanced output cursor.
inline double* put_shifted(const double* x, int i, const util::Vec3& shift,
                           double* out) {
  out[0] = x[3 * i] + shift.x;
  out[1] = x[3 * i + 1] + shift.y;
  out[2] = x[3 * i + 2] + shift.z;
  return out + 3;
}

}  // namespace

// --- pack: raw buffers --------------------------------------------------

std::size_t pack_border(const md::Atoms& atoms, std::span<const int> list,
                        const util::Vec3& shift, double* out) {
  const double* x = atoms.x();
  double* w = out;
  for (const int i : list) {
    w = put_shifted(x, i, shift, w);
    *w++ = tag_to_double(atoms.tag(i));
  }
  return static_cast<std::size_t>(w - out);
}

std::size_t pack_positions(const double* x, std::span<const int> list,
                           const util::Vec3& shift, double* out) {
  double* w = out;
  for (const int i : list) w = put_shifted(x, i, shift, w);
  return static_cast<std::size_t>(w - out);
}

std::size_t pack_scalar(const double* per_atom, std::span<const int> list,
                        double* out) {
  double* w = out;
  for (const int i : list) *w++ = per_atom[i];
  return static_cast<std::size_t>(w - out);
}

std::size_t pack_exchange(const md::Atoms& atoms, std::span<const int> list,
                          const util::Vec3& shift, double* out) {
  const double* x = atoms.x();
  const double* v = atoms.v();
  double* w = out;
  for (const int i : list) {
    w = put_shifted(x, i, shift, w);
    *w++ = v[3 * i];
    *w++ = v[3 * i + 1];
    *w++ = v[3 * i + 2];
    *w++ = tag_to_double(atoms.tag(i));
  }
  return static_cast<std::size_t>(w - out);
}

// --- pack: vectors ------------------------------------------------------

std::vector<double> pack_border(const md::Atoms& atoms,
                                std::span<const int> list,
                                const util::Vec3& shift) {
  std::vector<double> out(list.size() * kBorderDoubles);
  pack_border(atoms, list, shift, out.data());
  return out;
}

std::vector<double> pack_positions(const double* x, std::span<const int> list,
                                   const util::Vec3& shift) {
  std::vector<double> out(list.size() * kPositionDoubles);
  pack_positions(x, list, shift, out.data());
  return out;
}

std::vector<double> pack_scalar(const double* per_atom,
                                std::span<const int> list) {
  std::vector<double> out(list.size());
  pack_scalar(per_atom, list, out.data());
  return out;
}

std::vector<double> pack_exchange(const md::Atoms& atoms,
                                  std::span<const int> list,
                                  const util::Vec3& shift) {
  std::vector<double> out(list.size() * kExchangeDoubles);
  pack_exchange(atoms, list, shift, out.data());
  return out;
}

// --- unpack -------------------------------------------------------------

int unpack_border(md::Atoms& atoms, std::span<const double> in) {
  const int n = static_cast<int>(in.size() / kBorderDoubles);
  for (int k = 0; k < n; ++k) {
    const double* r = in.data() + static_cast<std::size_t>(k) * kBorderDoubles;
    atoms.add_ghost({r[0], r[1], r[2]}, double_to_tag(r[3]));
  }
  return n;
}

void unpack_positions(double* x, int ghost_start, std::span<const double> in) {
  std::copy(in.begin(), in.end(), x + 3 * ghost_start);
}

void unpack_scalar(double* per_atom, int ghost_start,
                   std::span<const double> in) {
  std::copy(in.begin(), in.end(), per_atom + ghost_start);
}

int unpack_exchange(md::Atoms& atoms, std::span<const double> in) {
  const int n = static_cast<int>(in.size() / kExchangeDoubles);
  for (int k = 0; k < n; ++k) {
    const double* r =
        in.data() + static_cast<std::size_t>(k) * kExchangeDoubles;
    atoms.add_local({r[0], r[1], r[2]}, {r[3], r[4], r[5]},
                    double_to_tag(r[6]));
  }
  return n;
}

int unpack_exchange_slab(md::Atoms& atoms, std::span<const double> in,
                         int axis, double lo, double hi) {
  const int n = static_cast<int>(in.size() / kExchangeDoubles);
  int kept = 0;
  for (int k = 0; k < n; ++k) {
    const double* r =
        in.data() + static_cast<std::size_t>(k) * kExchangeDoubles;
    const double v = r[axis];
    if (v < lo || v >= hi) continue;  // not mine; the other copy lands it
    atoms.add_local({r[0], r[1], r[2]}, {r[3], r[4], r[5]},
                    double_to_tag(r[6]));
    ++kept;
  }
  return kept;
}

// --- reverse accumulation -----------------------------------------------

void add_forces(double* f, std::span<const int> list,
                std::span<const double> in) {
  if (in.size() != list.size() * kPositionDoubles) {
    throw std::logic_error("reverse payload does not match send list");
  }
  for (std::size_t k = 0; k < list.size(); ++k) {
    const int i = list[k];
    f[3 * i] += in[3 * k];
    f[3 * i + 1] += in[3 * k + 1];
    f[3 * i + 2] += in[3 * k + 2];
  }
}

void add_scalar(double* per_atom, std::span<const int> list,
                std::span<const double> in) {
  if (in.size() != list.size()) {
    throw std::logic_error("scalar reverse count mismatch");
  }
  for (std::size_t k = 0; k < list.size(); ++k) {
    per_atom[list[k]] += in[k];
  }
}

}  // namespace lmp::comm
