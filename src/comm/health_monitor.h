#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"

namespace lmp::comm {

/// Soft escalation thresholds on the per-rank `CommHealthReport`
/// counters, assessed collectively at every checkpoint step. A value of
/// 0 disables that counter's threshold; `min_tnis` of 0 disables the
/// TNI floor. With everything disabled only *hard* comm errors
/// (CommTimeoutError, UnreachableError) trigger a failover.
struct HealthThresholds {
  std::uint64_t max_nacks = 0;         ///< retransmit requests issued
  std::uint64_t max_retransmits = 0;   ///< replays served to peers
  std::uint64_t max_crc_rejects = 0;   ///< corrupted payloads detected
  std::uint64_t max_duplicates = 0;    ///< stale/dup notices filtered
  int min_tnis = 0;                    ///< fewer surviving TNIs escalates

  bool any() const {
    return max_nacks > 0 || max_retransmits > 0 || max_crc_rejects > 0 ||
           max_duplicates > 0 || min_tnis > 0;
  }
};

/// Outcome of one threshold assessment.
struct EscalationDecision {
  bool escalate = false;
  std::string reason;  ///< which counter tripped, with its value and limit
};

/// Escalation policy: compares a health report against the thresholds
/// and names every exceeded budget. Stateless — the counters themselves
/// accumulate inside the comm layer, so a variant that keeps limping
/// eventually crosses a budget even at a low per-step fault rate.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthThresholds thresholds = {})
      : thr_(thresholds) {}

  const HealthThresholds& thresholds() const { return thr_; }
  bool enabled() const { return thr_.any(); }

  EscalationDecision assess(const util::CommHealthReport& h) const;

 private:
  HealthThresholds thr_;
};

/// One-line counter summary for escalation-event reasons ("nacks=12
/// retransmits=7 ..."), so the health table can tell the recovery story
/// without reprinting a full report per event.
std::string describe_counters(const util::CommHealthReport& h);

/// The paper-ordered degradation ladder: each step gives up fabric
/// parallelism (6 TNIs -> 4 TNIs), then the fabric itself (-> MPI p2p),
/// then the optimized pattern (-> reference brick comm).
std::vector<std::string> default_failover_chain();

/// Full escalation order for a run that starts on `active`: `active`
/// first, then the chain entries after `active`'s position — or, when
/// `active` is not in the chain, the whole chain as fallbacks.
std::vector<std::string> resolve_failover_chain(
    const std::string& active, const std::vector<std::string>& chain);

}  // namespace lmp::comm
