#include "comm/health_monitor.h"

#include <algorithm>
#include <sstream>

namespace lmp::comm {

EscalationDecision HealthMonitor::assess(
    const util::CommHealthReport& h) const {
  EscalationDecision d;
  std::ostringstream os;
  const auto trip = [&](const char* name, std::uint64_t value,
                        std::uint64_t limit) {
    if (limit == 0 || value <= limit) return;
    if (d.escalate) os << ", ";
    os << name << " " << value << " > max " << limit;
    d.escalate = true;
  };
  trip("nacks_sent", h.nacks_sent, thr_.max_nacks);
  trip("retransmits_served", h.retransmits_served, thr_.max_retransmits);
  trip("crc_rejects", h.crc_rejects, thr_.max_crc_rejects);
  trip("duplicates_dropped", h.duplicates_dropped, thr_.max_duplicates);
  if (thr_.min_tnis > 0 && h.tnis_in_use > 0 &&
      h.tnis_in_use < thr_.min_tnis) {
    if (d.escalate) os << ", ";
    os << "tnis_in_use " << h.tnis_in_use << " < min " << thr_.min_tnis;
    d.escalate = true;
  }
  d.reason = os.str();
  return d;
}

std::string describe_counters(const util::CommHealthReport& h) {
  std::ostringstream os;
  os << "nacks=" << h.nacks_sent << " retransmits=" << h.retransmits_served
     << " crc_rejects=" << h.crc_rejects
     << " duplicates=" << h.duplicates_dropped
     << " unreachable_puts=" << h.unreachable_puts
     << " tnis_in_use=" << h.tnis_in_use;
  return os.str();
}

std::vector<std::string> default_failover_chain() {
  return {"6tni_p2p", "4tni_p2p", "mpi_p2p", "ref"};
}

std::vector<std::string> resolve_failover_chain(
    const std::string& active, const std::vector<std::string>& chain) {
  std::vector<std::string> out;
  out.push_back(active);
  const auto it = std::find(chain.begin(), chain.end(), active);
  const auto first = it == chain.end() ? chain.begin() : it + 1;
  for (auto c = first; c != chain.end(); ++c) {
    if (*c != active) out.push_back(*c);
  }
  return out;
}

}  // namespace lmp::comm
