#include "comm/comm_brick.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace lmp::comm {

// ---------------------------------------------------------------------
// MpiBrickTransport
// ---------------------------------------------------------------------

void MpiBrickTransport::setup(const CommContext& ctx, std::size_t) {
  rank_ = ctx.rank;
}

std::vector<double> MpiBrickTransport::sendrecv(MsgKind kind, int channel,
                                                int dst, int src,
                                                std::span<const double> payload) {
  const int tag = static_cast<int>(kind) * 8 + channel;
  const auto bytes = std::as_bytes(payload);
  const std::vector<std::byte> raw = world_->sendrecv(rank_, dst, src, tag, bytes);
  std::vector<double> out(raw.size() / sizeof(double));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

// ---------------------------------------------------------------------
// UtofuBrickTransport
// ---------------------------------------------------------------------

UtofuBrickTransport::UtofuBrickTransport(tofu::Network& net, AddressBook& book,
                                         int tni)
    : net_(&net), book_(&book), tni_(tni) {}

void UtofuBrickTransport::setup(const CommContext& ctx,
                                std::size_t max_channel_doubles) {
  rank_ = ctx.rank;
  ring_doubles_ = max_channel_doubles + 1;  // +1 for the length prefix
  utofu_ = std::make_unique<tofu::UtofuContext>(*net_, rank_);

  // Coarse-grained layout (Sec. 3.2): one VCQ on one TNI per rank.
  const tofu::VcqId vcq = utofu_->create_vcq(tni_, /*cq=*/0);
  dispatcher_ = NoticeDispatcher(net_, vcq);

  RankAddresses& mine = book_->mine(rank_);
  mine.vcq[0] = vcq;
  mine.ring_bytes = ring_doubles_ * sizeof(double);

  send_buf_ = utofu_->make_buffer(mine.ring_bytes);
  for (int c = 0; c < 6; ++c) {
    for (int s = 0; s < kRingSlots; ++s) {
      rings_[c][static_cast<std::size_t>(s)] = utofu_->make_buffer(mine.ring_bytes);
      // Brick uses only 6 channels; store them in the first 6 ring rows.
      mine.ring[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)] =
          rings_[c][static_cast<std::size_t>(s)].stadd();
    }
  }
}

std::vector<double> UtofuBrickTransport::sendrecv(
    MsgKind kind, int channel, int dst, int src,
    std::span<const double> payload) {
  (void)src;  // the incoming channel id identifies the partner
  if (payload.size() + 1 > ring_doubles_) {
    throw std::length_error("brick payload exceeds pre-registered ring size");
  }

  // Message combine (Sec. 3.5.1): first double carries the length, so the
  // receiver never needs a separate size message.
  double* out = send_buf_.as_doubles();
  out[0] = static_cast<double>(payload.size());
  std::copy(payload.begin(), payload.end(), out + 1);

  const int slot = ring_next_[static_cast<std::size_t>(channel)]++ % kRingSlots;
  const RankAddresses& peer = book_->of(dst);
  const Edata ed{kind, channel, slot, static_cast<std::uint32_t>(payload.size())};
  net_->put(dispatcher_.vcq(), peer.vcq[0], send_buf_.stadd(), 0,
            peer.ring[static_cast<std::size_t>(channel)][static_cast<std::size_t>(slot)],
            0, (payload.size() + 1) * sizeof(double), ed.encode());
  dispatcher_.drain_tcq();

  const Edata in = dispatcher_.wait(kind, channel);
  const double* ring =
      rings_[channel][static_cast<std::size_t>(in.slot)].as_doubles();
  const auto count = static_cast<std::size_t>(ring[0]);
  if (count != in.value) {
    throw std::logic_error("length prefix disagrees with descriptor");
  }
  return {ring + 1, ring + 1 + count};
}

// ---------------------------------------------------------------------
// CommBrick
// ---------------------------------------------------------------------

CommBrick::CommBrick(const CommContext& ctx,
                     std::unique_ptr<BrickTransport> transport)
    : Comm(ctx), transport_(std::move(transport)) {}

void CommBrick::setup() {
  const auto& decomp = *ctx_.decomp;
  const util::Int3 me = decomp.coord_of(ctx_.rank);
  const util::Vec3 extent = ctx_.global.extent();

  for (int c = 0; c < 6; ++c) {
    const int d = dim_of(c);
    const int step = side_of(c) == 0 ? -1 : +1;
    util::Int3 to = me;
    to[static_cast<std::size_t>(d)] += step;
    util::Int3 from = me;
    from[static_cast<std::size_t>(d)] -= step;
    send_to_[static_cast<std::size_t>(c)] = decomp.rank_of(to);
    recv_from_[static_cast<std::size_t>(c)] = decomp.rank_of(from);
    util::Vec3 shift;
    const int dest_coord = me[static_cast<std::size_t>(d)] + step;
    if (dest_coord < 0) {
      shift[static_cast<std::size_t>(d)] = extent[static_cast<std::size_t>(d)];
    } else if (dest_coord >= decomp.grid()[static_cast<std::size_t>(d)]) {
      shift[static_cast<std::size_t>(d)] = -extent[static_cast<std::size_t>(d)];
    }
    shift_[static_cast<std::size_t>(c)] = shift;
  }

  const util::Vec3 sub = ctx_.sub.extent();
  for (int d = 0; d < 3; ++d) {
    if (sub[static_cast<std::size_t>(d)] < ctx_.ghost_cutoff) {
      throw std::invalid_argument(
          "sub-box thinner than the ghost cutoff: single-shell 3-stage comm "
          "cannot cover the stencil");
    }
  }

  // Upper bound for one channel: the widest slab is the z stage, which
  // carries the x- and y-ghosts too: (ex+2rc)(ey+2rc)*rc atoms' worth.
  const double rc = ctx_.ghost_cutoff;
  const double slab = (sub.x + 2 * rc) * (sub.y + 2 * rc) * rc;
  const auto max_atoms =
      static_cast<std::size_t>(slab * ctx_.density * 2.0) + 64;
  max_channel_doubles_ = max_atoms * 8;
  transport_->setup(ctx_, max_channel_doubles_);
}

void CommBrick::borders() {
  md::Atoms& atoms = *ctx_.atoms;
  atoms.clear_ghosts();
  const double rc = ctx_.ghost_cutoff;

  int scan_end = 0;
  for (int c = 0; c < 6; ++c) {
    // Both swaps of a dimension scan the atom set present before that
    // dimension's first swap (LAMMPS nlast discipline): the -side ghosts
    // must not bounce straight back on the +side swap.
    if (side_of(c) == 0) scan_end = atoms.ntotal();

    const int d = dim_of(c);
    auto& list = sendlist_[static_cast<std::size_t>(c)];
    list.clear();
    const double* x = atoms.x();
    if (side_of(c) == 0) {
      const double bound = ctx_.sub.lo[static_cast<std::size_t>(d)] + rc;
      for (int i = 0; i < scan_end; ++i) {
        if (x[3 * i + d] < bound) list.push_back(i);
      }
    } else {
      const double bound = ctx_.sub.hi[static_cast<std::size_t>(d)] - rc;
      for (int i = 0; i < scan_end; ++i) {
        if (x[3 * i + d] > bound) list.push_back(i);
      }
    }

    // Pack: shifted position + tag, 4 doubles per atom.
    std::vector<double> payload;
    payload.reserve(list.size() * 4);
    const util::Vec3& sh = shift_[static_cast<std::size_t>(c)];
    for (const int i : list) {
      payload.push_back(x[3 * i] + sh.x);
      payload.push_back(x[3 * i + 1] + sh.y);
      payload.push_back(x[3 * i + 2] + sh.z);
      payload.push_back(tag_to_double(atoms.tag(i)));
    }

    const std::vector<double> in = transport_->sendrecv(
        MsgKind::kBorder, c, send_to_[static_cast<std::size_t>(c)],
        recv_from_[static_cast<std::size_t>(c)], payload);
    counters_.border_msgs += 1;
    counters_.bytes += payload.size() * sizeof(double);

    first_ghost_[static_cast<std::size_t>(c)] = atoms.ntotal();
    const int n = static_cast<int>(in.size() / 4);
    for (int k = 0; k < n; ++k) {
      atoms.add_ghost({in[4 * k], in[4 * k + 1], in[4 * k + 2]},
                      double_to_tag(in[4 * k + 3]));
    }
    nrecv_[static_cast<std::size_t>(c)] = n;
  }
}

void CommBrick::forward_positions() {
  md::Atoms& atoms = *ctx_.atoms;
  double* x = atoms.x();
  for (int c = 0; c < 6; ++c) {
    const auto& list = sendlist_[static_cast<std::size_t>(c)];
    const util::Vec3& sh = shift_[static_cast<std::size_t>(c)];
    std::vector<double> payload;
    payload.reserve(list.size() * 3);
    for (const int i : list) {
      payload.push_back(x[3 * i] + sh.x);
      payload.push_back(x[3 * i + 1] + sh.y);
      payload.push_back(x[3 * i + 2] + sh.z);
    }
    const std::vector<double> in = transport_->sendrecv(
        MsgKind::kForward, c, send_to_[static_cast<std::size_t>(c)],
        recv_from_[static_cast<std::size_t>(c)], payload);
    counters_.forward_msgs += 1;
    counters_.bytes += payload.size() * sizeof(double);
    const int base = first_ghost_[static_cast<std::size_t>(c)];
    const int n = static_cast<int>(in.size() / 3);
    if (n != nrecv_[static_cast<std::size_t>(c)]) {
      throw std::logic_error("forward ghost count changed since borders()");
    }
    std::memcpy(x + 3 * base, in.data(), in.size() * sizeof(double));
  }
}

void CommBrick::reverse_forces() {
  md::Atoms& atoms = *ctx_.atoms;
  double* f = atoms.f();
  // Walk the stages backwards so edge/corner contributions cascade home.
  for (int c = 5; c >= 0; --c) {
    const int base = first_ghost_[static_cast<std::size_t>(c)];
    const int n = nrecv_[static_cast<std::size_t>(c)];
    // Roles swap in reverse: I send my ghost forces to the rank I
    // *received* ghosts from.
    const std::span<const double> payload(f + 3 * base,
                                          static_cast<std::size_t>(3) * n);
    const std::vector<double> in = transport_->sendrecv(
        MsgKind::kReverse, c, recv_from_[static_cast<std::size_t>(c)],
        send_to_[static_cast<std::size_t>(c)], payload);
    counters_.reverse_msgs += 1;
    counters_.bytes += payload.size() * sizeof(double);
    const auto& list = sendlist_[static_cast<std::size_t>(c)];
    if (in.size() != list.size() * 3) {
      throw std::logic_error("reverse payload does not match send list");
    }
    for (std::size_t k = 0; k < list.size(); ++k) {
      const int i = list[k];
      f[3 * i] += in[3 * k];
      f[3 * i + 1] += in[3 * k + 1];
      f[3 * i + 2] += in[3 * k + 2];
    }
  }
}

void CommBrick::forward(double* per_atom) {
  for (int c = 0; c < 6; ++c) {
    const auto& list = sendlist_[static_cast<std::size_t>(c)];
    std::vector<double> payload;
    payload.reserve(list.size());
    for (const int i : list) payload.push_back(per_atom[i]);
    const std::vector<double> in = transport_->sendrecv(
        MsgKind::kScalarFwd, c, send_to_[static_cast<std::size_t>(c)],
        recv_from_[static_cast<std::size_t>(c)], payload);
    counters_.scalar_msgs += 1;
    counters_.bytes += payload.size() * sizeof(double);
    const int base = first_ghost_[static_cast<std::size_t>(c)];
    std::copy(in.begin(), in.end(), per_atom + base);
  }
}

void CommBrick::reverse_add(double* per_atom) {
  for (int c = 5; c >= 0; --c) {
    const int base = first_ghost_[static_cast<std::size_t>(c)];
    const int n = nrecv_[static_cast<std::size_t>(c)];
    const std::span<const double> payload(per_atom + base,
                                          static_cast<std::size_t>(n));
    const std::vector<double> in = transport_->sendrecv(
        MsgKind::kScalarRev, c, recv_from_[static_cast<std::size_t>(c)],
        send_to_[static_cast<std::size_t>(c)], payload);
    counters_.scalar_msgs += 1;
    counters_.bytes += payload.size() * sizeof(double);
    const auto& list = sendlist_[static_cast<std::size_t>(c)];
    for (std::size_t k = 0; k < list.size(); ++k) {
      per_atom[list[k]] += in[k];
    }
  }
}

void CommBrick::exchange() {
  md::Atoms& atoms = *ctx_.atoms;
  if (atoms.nghost() != 0) {
    throw std::logic_error("exchange requires ghosts to be cleared");
  }

  // Wrap all owned atoms into the global periodic box first.
  for (int i = 0; i < atoms.nlocal(); ++i) {
    atoms.set_pos(i, ctx_.global.wrap(atoms.pos(i)));
  }

  // LAMMPS exchange discipline: after the periodic wrap, atom
  // coordinates are global, so a leaver is simply broadcast to both dim
  // neighbors and each receiver keeps the atoms that fall inside its own
  // dim slab. An atom that moved farther than one sub-box between
  // rebuilds would be lost — same constraint (and error) as LAMMPS.
  for (int d = 0; d < 3; ++d) {
    const int nprocs_d = ctx_.decomp->grid()[static_cast<std::size_t>(d)];
    if (nprocs_d == 1) continue;  // wrap already restored ownership

    const double lo = ctx_.sub.lo[static_cast<std::size_t>(d)];
    const double hi = ctx_.sub.hi[static_cast<std::size_t>(d)];
    std::vector<int> gone;
    std::vector<double> payload;
    {
      const double* x = atoms.x();
      for (int i = 0; i < atoms.nlocal(); ++i) {
        const double v = x[3 * i + d];
        if (v < lo || v >= hi) gone.push_back(i);
      }
      for (const int i : gone) {
        const util::Vec3 p = atoms.pos(i);
        const util::Vec3 vel = atoms.vel(i);
        payload.insert(payload.end(), {p.x, p.y, p.z, vel.x, vel.y, vel.z,
                                       tag_to_double(atoms.tag(i))});
      }
    }
    atoms.remove_locals(gone);

    // With 2 ranks in this dim both neighbors are the same rank: send
    // once (LAMMPS special-cases this identically).
    const int nsends = nprocs_d == 2 ? 1 : 2;
    for (int s = 0; s < nsends; ++s) {
      const int c = 2 * d + s;
      const std::vector<double> in = transport_->sendrecv(
          MsgKind::kExchange, c, send_to_[static_cast<std::size_t>(c)],
          recv_from_[static_cast<std::size_t>(c)], payload);
      counters_.exchange_msgs += 1;
      counters_.bytes += payload.size() * sizeof(double);
      const int n = static_cast<int>(in.size() / 7);
      for (int k = 0; k < n; ++k) {
        const double v = in[7 * k + d];
        if (v < lo || v >= hi) continue;  // not mine; the other copy lands it
        atoms.add_local({in[7 * k], in[7 * k + 1], in[7 * k + 2]},
                        {in[7 * k + 3], in[7 * k + 4], in[7 * k + 5]},
                        double_to_tag(in[7 * k + 6]));
      }
    }
  }
}

}  // namespace lmp::comm
