#include "comm/comm_brick.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "comm/comm_factory.h"
#include "comm/pack_kernels.h"

namespace lmp::comm {

// ---------------------------------------------------------------------
// MpiBrickTransport
// ---------------------------------------------------------------------

void MpiBrickTransport::setup(const CommContext& ctx, std::size_t) {
  rank_ = ctx.rank;
}

std::vector<double> MpiBrickTransport::sendrecv(MsgKind kind, int channel,
                                                int dst, int src,
                                                std::span<const double> payload) {
  const int tag = static_cast<int>(kind) * 8 + channel;
  const auto bytes = std::as_bytes(payload);
  const std::vector<std::byte> raw = world_->sendrecv(rank_, dst, src, tag, bytes);
  std::vector<double> out(raw.size() / sizeof(double));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

// ---------------------------------------------------------------------
// UtofuBrickTransport
// ---------------------------------------------------------------------

UtofuBrickTransport::UtofuBrickTransport(tofu::Network& net, AddressBook& book,
                                         int tni)
    : net_(&net), book_(&book), tni_(tni) {}

void UtofuBrickTransport::setup(const CommContext& ctx,
                                std::size_t max_channel_doubles) {
  rank_ = ctx.rank;
  ring_doubles_ = max_channel_doubles + 1;  // +1 for the length prefix
  utofu_ = std::make_unique<tofu::UtofuContext>(*net_, rank_);

  // Coarse-grained layout (Sec. 3.2): one VCQ on one TNI per rank.
  const tofu::VcqId vcq = utofu_->create_vcq(tni_, /*cq=*/0);
  dispatcher_ = NoticeDispatcher(net_, vcq);

  RankAddresses& mine = book_->mine(rank_);
  mine.vcq[0] = vcq;
  mine.ring_bytes = ring_doubles_ * sizeof(double);

  send_buf_ = utofu_->make_buffer(mine.ring_bytes);
  for (int c = 0; c < 6; ++c) {
    for (int s = 0; s < kRingSlots; ++s) {
      rings_[c][static_cast<std::size_t>(s)] = utofu_->make_buffer(mine.ring_bytes);
      // Brick uses only 6 channels; store them in the first 6 ring rows.
      mine.ring[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)] =
          rings_[c][static_cast<std::size_t>(s)].stadd();
    }
  }
}

std::vector<double> UtofuBrickTransport::sendrecv(
    MsgKind kind, int channel, int dst, int src,
    std::span<const double> payload) {
  (void)src;  // the incoming channel id identifies the partner
  if (payload.size() + 1 > ring_doubles_) {
    throw std::length_error("brick payload exceeds pre-registered ring size");
  }

  // Message combine (Sec. 3.5.1): first double carries the length, so the
  // receiver never needs a separate size message.
  double* out = send_buf_.as_doubles();
  out[0] = static_cast<double>(payload.size());
  std::copy(payload.begin(), payload.end(), out + 1);

  const int slot = ring_next_[static_cast<std::size_t>(channel)]++ % kRingSlots;
  const RankAddresses& peer = book_->of(dst);
  const Edata ed{kind, channel, slot, static_cast<std::uint32_t>(payload.size())};
  net_->put(dispatcher_.vcq(), peer.vcq[0], send_buf_.stadd(), 0,
            peer.ring[static_cast<std::size_t>(channel)][static_cast<std::size_t>(slot)],
            0, (payload.size() + 1) * sizeof(double), ed.encode());
  dispatcher_.drain_tcq();

  const Edata in = dispatcher_.wait(kind, channel);
  const double* ring =
      rings_[channel][static_cast<std::size_t>(in.slot)].as_doubles();
  const auto count = static_cast<std::size_t>(ring[0]);
  if (count != in.value) {
    throw std::logic_error("length prefix disagrees with descriptor");
  }
  return {ring + 1, ring + 1 + count};
}

// ---------------------------------------------------------------------
// CommBrick
// ---------------------------------------------------------------------

CommBrick::CommBrick(const CommContext& ctx,
                     std::unique_ptr<BrickTransport> transport)
    : Comm(ctx), transport_(std::move(transport)) {}

void CommBrick::setup() {
  plan_ = GhostPlan::staged(ctx_);
  transport_->setup(ctx_, plan_.max_payload_doubles());
}

std::array<int, 6> CommBrick::ghosts_per_channel() const {
  std::array<int, 6> out{};
  for (int c = 0; c < 6; ++c) out[static_cast<std::size_t>(c)] = plan_.ghost_count(c);
  return out;
}

void CommBrick::borders() {
  md::Atoms& atoms = *ctx_.atoms;
  atoms.clear_ghosts();

  int scan_end = 0;
  for (int c = 0; c < 6; ++c) {
    // Both swaps of a dimension scan the atom set present before that
    // dimension's first swap (LAMMPS nlast discipline): the -side ghosts
    // must not bounce straight back on the +side swap.
    if (side_of(c) == 0) scan_end = atoms.ntotal();
    plan_.select_staged(c, atoms, scan_end);

    const std::vector<double> payload =
        pack_border(atoms, plan_.send_list(c), plan_.shift(c));
    const std::vector<double> in = transport_->sendrecv(
        MsgKind::kBorder, c, plan_.send_peer(c), plan_.recv_peer(c), payload);
    account(counters_, MsgKind::kBorder, payload.size());

    const int start = atoms.ntotal();
    const int n = unpack_border(atoms, in);
    plan_.set_ghost_block(c, start, n);
  }
}

void CommBrick::forward_positions() {
  md::Atoms& atoms = *ctx_.atoms;
  double* x = atoms.x();
  for (int c = 0; c < 6; ++c) {
    const std::vector<double> payload =
        pack_positions(x, plan_.send_list(c), plan_.shift(c));
    const std::vector<double> in = transport_->sendrecv(
        MsgKind::kForward, c, plan_.send_peer(c), plan_.recv_peer(c), payload);
    account(counters_, MsgKind::kForward, payload.size());
    if (static_cast<int>(in.size()) != 3 * plan_.ghost_count(c)) {
      throw std::logic_error("forward ghost count changed since borders()");
    }
    unpack_positions(x, plan_.ghost_start(c), in);
  }
}

void CommBrick::reverse_forces() {
  md::Atoms& atoms = *ctx_.atoms;
  double* f = atoms.f();
  // Walk the stages backwards so edge/corner contributions cascade home.
  for (int c = 5; c >= 0; --c) {
    const int base = plan_.ghost_start(c);
    const int n = plan_.ghost_count(c);
    // Roles swap in reverse: I send my ghost forces to the rank I
    // *received* ghosts from.
    const std::span<const double> payload(f + 3 * base,
                                          static_cast<std::size_t>(3) * n);
    const std::vector<double> in = transport_->sendrecv(
        MsgKind::kReverse, c, plan_.recv_peer(c), plan_.send_peer(c), payload);
    account(counters_, MsgKind::kReverse, payload.size());
    add_forces(f, plan_.send_list(c), in);
  }
}

void CommBrick::forward(double* per_atom) {
  for (int c = 0; c < 6; ++c) {
    const std::vector<double> payload =
        pack_scalar(per_atom, plan_.send_list(c));
    const std::vector<double> in = transport_->sendrecv(
        MsgKind::kScalarFwd, c, plan_.send_peer(c), plan_.recv_peer(c),
        payload);
    account(counters_, MsgKind::kScalarFwd, payload.size());
    unpack_scalar(per_atom, plan_.ghost_start(c), in);
  }
}

void CommBrick::reverse_add(double* per_atom) {
  for (int c = 5; c >= 0; --c) {
    const std::span<const double> payload(
        per_atom + plan_.ghost_start(c),
        static_cast<std::size_t>(plan_.ghost_count(c)));
    const std::vector<double> in = transport_->sendrecv(
        MsgKind::kScalarRev, c, plan_.recv_peer(c), plan_.send_peer(c),
        payload);
    account(counters_, MsgKind::kScalarRev, payload.size());
    add_scalar(per_atom, plan_.send_list(c), in);
  }
}

void CommBrick::exchange() {
  md::Atoms& atoms = *ctx_.atoms;
  if (atoms.nghost() != 0) {
    throw std::logic_error("exchange requires ghosts to be cleared");
  }

  // Wrap all owned atoms into the global periodic box first.
  for (int i = 0; i < atoms.nlocal(); ++i) {
    atoms.set_pos(i, ctx_.global.wrap(atoms.pos(i)));
  }

  // LAMMPS exchange discipline: after the periodic wrap, atom
  // coordinates are global, so a leaver is simply broadcast to both dim
  // neighbors and each receiver keeps the atoms that fall inside its own
  // dim slab. An atom that moved farther than one sub-box between
  // rebuilds would be lost — same constraint (and error) as LAMMPS.
  for (int d = 0; d < 3; ++d) {
    const int nprocs_d = ctx_.decomp->grid()[static_cast<std::size_t>(d)];
    if (nprocs_d == 1) continue;  // wrap already restored ownership

    const double lo = ctx_.sub.lo[static_cast<std::size_t>(d)];
    const double hi = ctx_.sub.hi[static_cast<std::size_t>(d)];
    const std::vector<int> gone = plan_.migrants_along(atoms, d);
    // Coordinates are already global (wrapped), so no shift applies.
    const std::vector<double> payload =
        pack_exchange(atoms, gone, util::Vec3{});
    atoms.remove_locals(gone);

    // With 2 ranks in this dim both neighbors are the same rank: send
    // once (LAMMPS special-cases this identically).
    const int nsends = nprocs_d == 2 ? 1 : 2;
    for (int s = 0; s < nsends; ++s) {
      const int c = 2 * d + s;
      const std::vector<double> in = transport_->sendrecv(
          MsgKind::kExchange, c, plan_.send_peer(c), plan_.recv_peer(c),
          payload);
      account(counters_, MsgKind::kExchange, payload.size());
      unpack_exchange_slab(atoms, in, d, lo, hi);
    }
  }
}

// --- factory registration ----------------------------------------------
// All-26-sides brick ghosts require the coordinate tie-break half rule.

namespace {

const CommRegistrar kRefRegistrar{{
    "ref",
    "baseline LAMMPS 3-stage over MPI",
    md::HalfRule::kCoordTieBreak,
    [](const CommBuildInputs& in) {
      CommInstance out;
      out.comm = std::make_unique<CommBrick>(
          in.ctx, std::make_unique<MpiBrickTransport>(*in.world));
      return out;
    },
}};

const CommRegistrar kUtofu3StageRegistrar{{
    "utofu_3stage",
    "3-stage pattern over uTofu one-sided puts",
    md::HalfRule::kCoordTieBreak,
    [](const CommBuildInputs& in) {
      CommInstance out;
      out.comm = std::make_unique<CommBrick>(
          in.ctx, std::make_unique<UtofuBrickTransport>(*in.net, *in.book));
      return out;
    },
}};

}  // namespace

}  // namespace lmp::comm
