#include "comm/directions.h"

#include <cstdlib>
#include <stdexcept>

namespace lmp::comm {

namespace {

std::array<Int3, kNumDirs> make_dirs() {
  std::array<Int3, kNumDirs> dirs{};
  int n = 0;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        dirs[static_cast<std::size_t>(n++)] = {dx, dy, dz};
      }
    }
  }
  return dirs;
}

}  // namespace

const std::array<Int3, kNumDirs>& all_dirs() {
  static const std::array<Int3, kNumDirs> dirs = make_dirs();
  return dirs;
}

int dir_index(const Int3& offset) {
  if (offset == Int3{0, 0, 0}) throw std::invalid_argument("zero offset");
  if (std::abs(offset.x) > 1 || std::abs(offset.y) > 1 || std::abs(offset.z) > 1) {
    throw std::invalid_argument("offset outside single shell");
  }
  const int linear =
      (offset.x + 1) + 3 * ((offset.y + 1) + 3 * (offset.z + 1));
  // Positions after the skipped center shift down by one.
  return linear < 13 ? linear : linear - 1;
}

int opposite(int dir) {
  const Int3 o = all_dirs()[static_cast<std::size_t>(dir)];
  return dir_index({-o.x, -o.y, -o.z});
}

bool is_upper(int dir) {
  return geom::in_half(all_dirs()[static_cast<std::size_t>(dir)],
                       geom::HalfShell::kUpper);
}

int dir_order(int dir) {
  const Int3 o = all_dirs()[static_cast<std::size_t>(dir)];
  return std::abs(o.x) + std::abs(o.y) + std::abs(o.z);
}

}  // namespace lmp::comm
