#include "comm/comm_p2p.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "comm/comm_factory.h"
#include "comm/msg_codec.h"
#include "comm/pack_kernels.h"
#include "geom/ghost_algebra.h"
#include "obs/tracer.h"

namespace lmp::comm {

CommP2p::CommP2p(const CommContext& ctx, tofu::Network& net, AddressBook& book,
                 const P2pOptions& options, pool::SpinThreadPool* pool)
    : Comm(ctx), net_(&net), book_(&book), opt_(options), pool_(pool) {
  if (opt_.ntnis < 1 || opt_.ntnis > 6) {
    throw std::invalid_argument("ntnis must be in [1, 6]");
  }
  if (opt_.comm_threads < 1 || opt_.comm_threads > 6) {
    throw std::invalid_argument("comm_threads must be in [1, 6]");
  }
  if (opt_.comm_threads > 1) {
    if (opt_.comm_threads != opt_.ntnis) {
      throw std::invalid_argument(
          "fine-grained mode drives one TNI per thread: comm_threads must "
          "equal ntnis");
    }
    if (pool_ == nullptr || pool_->nthreads() < opt_.comm_threads) {
      throw std::invalid_argument("fine-grained mode needs a big-enough pool");
    }
  }
}

CommP2p::~CommP2p() {
  stop_progress_.store(true, std::memory_order_release);
  if (progress_.joinable()) progress_.join();
}

void CommP2p::setup() {
  // The transport-invariant half: channels, peers, shifts, bins, bounds.
  plan_ = GhostPlan::p2p(ctx_, opt_.use_border_bins);

  // Direction -> VCQ/thread slot map. Must be identical on every rank so
  // senders can target the receiving thread's VCQ.
  const util::Vec3 sub = ctx_.sub.extent();
  if (opt_.comm_threads > 1 && opt_.balanced_assignment) {
    // Estimated per-class costs from the ghost algebra of Table 1.
    const double a = std::min({sub.x, sub.y, sub.z});
    const double r = ctx_.ghost_cutoff;
    std::vector<CommTask> tasks;
    tasks.reserve(kNumDirs);
    for (int d = 0; d < kNumDirs; ++d) {
      const int order = dir_order(d);
      const double vol = order == 1 ? a * a * r : (order == 2 ? a * r * r : r * r * r);
      tasks.push_back({d, vol * ctx_.density * 24.0, order});
    }
    const std::vector<int> assign = balance_tasks(tasks, opt_.comm_threads);
    for (int d = 0; d < kNumDirs; ++d) {
      slot_of_dir_[static_cast<std::size_t>(d)] = assign[static_cast<std::size_t>(d)];
    }
  } else {
    const int nslots = opt_.comm_threads > 1 ? opt_.comm_threads : opt_.ntnis;
    for (int d = 0; d < kNumDirs; ++d) {
      slot_of_dir_[static_cast<std::size_t>(d)] = d % nslots;
    }
  }

  // VCQs: one per *logical* TNI slot. Normally slot t lives on TNI t,
  // CQ row 0 (each rank owns its own row in the per-node CQ matrix of
  // Fig. 7; the functional network gives each rank a private TNI
  // namespace so the rows are always free). When the fault plan marks
  // TNIs down, the logical slots re-stripe round-robin across the
  // survivors, moving to higher CQ rows on reuse so hardware CQs stay
  // exclusive — comm_threads and the direction map are untouched, the
  // traffic just shares fewer physical TNIs.
  const tofu::FaultInjector* inj = net_->fault_injector();
  std::vector<int> alive;
  for (int t = 0; t < opt_.ntnis; ++t) {
    if (inj == nullptr || !inj->tni_down(t)) alive.push_back(t);
  }
  if (alive.empty()) {
    throw std::runtime_error(
        "all TNIs of this variant are marked down — cannot re-stripe");
  }
  tnis_in_use_ = static_cast<int>(alive.size());

  utofu_ = std::make_unique<tofu::UtofuContext>(*net_, ctx_.rank);
  RankAddresses& mine = book_->mine(ctx_.rank);
  dispatch_.resize(static_cast<std::size_t>(opt_.ntnis));
  for (int t = 0; t < opt_.ntnis; ++t) {
    const int phys = alive[static_cast<std::size_t>(t % tnis_in_use_)];
    const int row = t / tnis_in_use_;
    vcq_[static_cast<std::size_t>(t)] = utofu_->create_vcq(phys, row);
    mine.vcq[static_cast<std::size_t>(t)] = vcq_[static_cast<std::size_t>(t)];
    dispatch_[static_cast<std::size_t>(t)] =
        NoticeDispatcher(net_, vcq_[static_cast<std::size_t>(t)]);
  }

  // Pre-registered buffers (Sec. 3.4): rings sized from the plan's
  // theoretical ghost upper bound — the face slab is the largest class.
  ring_doubles_ = plan_.max_payload_doubles();
  mine.ring_bytes = ring_doubles_ * sizeof(double);
  for (int d = 0; d < kNumDirs; ++d) {
    dir_[static_cast<std::size_t>(d)].send_buf = utofu_->make_buffer(mine.ring_bytes);
    for (int s = 0; s < kRingSlots; ++s) {
      rings_[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] =
          utofu_->make_buffer(mine.ring_bytes);
      mine.ring[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] =
          rings_[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)].stadd();
    }
  }

  // One-time registration of the position and force arrays themselves —
  // forward puts land directly in x, reverse puts read directly from f.
  md::Atoms& atoms = *ctx_.atoms;
  if (atoms.capacity() == 0) {
    throw std::logic_error("atoms capacity must be reserved before comm setup");
  }
  mine.x_stadd = net_->reg_mem(ctx_.rank, atoms.x(), atoms.array_bytes());
  mine.f_stadd = net_->reg_mem(ctx_.rank, atoms.f(), atoms.array_bytes());

  // Arm the reliability protocol only for fault-injected runs: clean
  // runs keep the zero-overhead fast path (no CRC, no pending copies,
  // no progress thread).
  reliable_ = inj != nullptr && inj->enabled();
  if (reliable_) {
    for (int t = 0; t < opt_.ntnis; ++t) {
      dispatch_[static_cast<std::size_t>(t)].enable_reliability(
          [this](MsgKind kind, int dir) { send_nack(kind, dir); },
          opt_.reliability);
    }
    stop_progress_.store(false, std::memory_order_release);
    progress_ = std::thread([this] { progress_loop(); });
  }
}

void CommP2p::for_dirs(const std::vector<int>& dirs,
                       const std::function<void(int)>& fn) {
  if (opt_.comm_threads == 1) {
    for (const int d : dirs) fn(d);
    return;
  }
  pool_->parallel_static([&](int t) {
    if (t >= opt_.comm_threads) return;
    for (const int d : dirs) {
      if (slot_of_dir_[static_cast<std::size_t>(d)] == t) fn(d);
    }
  });
}

// --- reliability protocol ---------------------------------------------

void CommP2p::record_pending(MsgKind kind, int dir, bool piggyback,
                             const void* payload, std::uint64_t bytes,
                             int peer, int my_slot, int peer_slot,
                             tofu::Stadd dst_stadd, std::uint64_t dst_off,
                             std::uint64_t edata, std::uint64_t flow) {
  std::lock_guard lock(pending_mu_);
  PendingSend& p =
      pending_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(dir)];
  p.valid = true;
  p.piggyback = piggyback;
  p.edata = edata;
  p.flow = flow;
  p.peer = peer;
  p.my_slot = my_slot;
  p.peer_slot = peer_slot;
  p.dst_stadd = dst_stadd;
  p.dst_off = dst_off;
  p.length = bytes;
  if (!piggyback) {
    if (!p.copy.valid() || p.copy.size() < bytes) {
      p.copy = utofu_->make_buffer(std::max<std::size_t>(bytes, 64));
    }
    if (bytes > 0) std::memcpy(p.copy.data(), payload, bytes);
  }
}

void CommP2p::send_nack(MsgKind kind, int dir) {
  const int sender_dir = opposite(dir);
  const int my_slot = slot_of_dir_[static_cast<std::size_t>(dir)];
  const std::uint8_t want =
      dispatch_[static_cast<std::size_t>(my_slot)].expected_seq(kind, dir);
  const RankAddresses& peer = book_->of(plan_.recv_peer(dir));
  // The NACK names the *sender's* channel (their direction index) plus
  // the kind and the sequence number we are missing, packed into value.
  const Edata ed{MsgKind::kRetransmitReq, sender_dir, 0,
                 static_cast<std::uint32_t>(kind) |
                     (static_cast<std::uint32_t>(want) << 8)};
  net_->put_piggyback(
      vcq_[static_cast<std::size_t>(my_slot)],
      peer.vcq[static_cast<std::size_t>(slot_of_dir_[static_cast<std::size_t>(sender_dir)])],
      ed.encode(), tofu::PutMode::kControl);
  nacks_sent_.fetch_add(1, std::memory_order_relaxed);
  LMP_TRACE_INSTANT(obs::TraceCat::kComm, "nack.sent");
}

void CommP2p::serve_retransmit(MsgKind kind, std::uint8_t seq, int dir) {
  if (static_cast<int>(kind) < 0 || static_cast<int>(kind) >= kKindCount ||
      dir < 0 || dir >= kNumDirs) {
    return;
  }
  std::lock_guard lock(pending_mu_);
  const PendingSend& p =
      pending_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(dir)];
  // Serve only the exact message the receiver is missing: if the channel
  // has already advanced (stale NACK) or the message was never sent yet
  // (early NACK), ignore — the receiver re-NACKs with backoff. This is
  // what makes late replays harmless: a replay is only ever issued while
  // the original is still the channel's latest message, so it rewrites
  // bytes identical to those already delivered.
  if (!p.valid || static_cast<std::uint8_t>((p.edata >> 44) & 0xFF) != seq) {
    return;
  }
  retransmits_served_.fetch_add(1, std::memory_order_relaxed);
  LMP_TRACE_INSTANT(obs::TraceCat::kComm, "retransmit.served");
  const RankAddresses& peer = book_->of(p.peer);
  // The replay carries the original flow id: in the trace, the NACKed
  // message and its retransmit read as one flow with several segments.
  if (p.piggyback) {
    net_->put_piggyback(vcq_[static_cast<std::size_t>(p.my_slot)],
                        peer.vcq[static_cast<std::size_t>(p.peer_slot)],
                        p.edata, tofu::PutMode::kRetransmit, p.flow);
  } else {
    net_->put(vcq_[static_cast<std::size_t>(p.my_slot)],
              peer.vcq[static_cast<std::size_t>(p.peer_slot)], p.copy.stadd(),
              0, p.dst_stadd, p.dst_off, p.length, p.edata,
              tofu::PutMode::kRetransmit, p.flow);
  }
}

void CommP2p::progress_loop() {
  // The per-rank progress engine (the software stand-in for an A64FX
  // assistant core): services retransmit requests on every owned VCQ so
  // a sender blocked elsewhere — or already past its last wait — still
  // answers NACKs.
  LMP_TRACE_THREAD(ctx_.rank, 100, "progress");
  while (!stop_progress_.load(std::memory_order_acquire)) {
    bool served = false;
    try {
      for (int t = 0; t < opt_.ntnis; ++t) {
        while (auto n = net_->poll_control(vcq_[static_cast<std::size_t>(t)])) {
          const Edata e = Edata::decode(n->edata);
          if (e.kind == MsgKind::kRetransmitReq) {
            serve_retransmit(static_cast<MsgKind>(e.value & 0xFF),
                             static_cast<std::uint8_t>((e.value >> 8) & 0xFF),
                             e.dir);
            served = true;
          }
        }
      }
    } catch (const std::exception&) {
      // Permanent fault or fabric abort mid-retransmit: the progress
      // engine cannot help any more. The owner thread hits the same
      // condition on its next wait and escalates through the failover
      // path; letting the exception fly here would std::terminate.
      return;
    }
    if (!served) std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

Edata CommP2p::wait_ring(MsgKind kind, int dir) {
  const int slot = slot_of_dir_[static_cast<std::size_t>(dir)];
  for (;;) {
    const Edata e = dispatch_[static_cast<std::size_t>(slot)].wait(kind, dir);
    if (!reliable_) return e;
    const double* ring =
        rings_[static_cast<std::size_t>(dir)][static_cast<std::size_t>(e.slot)]
            .as_doubles();
    if (e.crc == payload_crc(e.value, ring, e.value * sizeof(double))) return e;
    crc_rejects_.fetch_add(1, std::memory_order_relaxed);
    LMP_TRACE_INSTANT(obs::TraceCat::kComm, "crc.rejected");
    dispatch_[static_cast<std::size_t>(slot)].accept_retransmit(kind, dir);
    send_nack(kind, dir);
  }
}

Edata CommP2p::wait_piggyback(MsgKind kind, int dir) {
  const int slot = slot_of_dir_[static_cast<std::size_t>(dir)];
  for (;;) {
    const Edata e = dispatch_[static_cast<std::size_t>(slot)].wait(kind, dir);
    if (!reliable_ || e.crc == payload_crc(e.value, nullptr, 0)) return e;
    crc_rejects_.fetch_add(1, std::memory_order_relaxed);
    LMP_TRACE_INSTANT(obs::TraceCat::kComm, "crc.rejected");
    dispatch_[static_cast<std::size_t>(slot)].accept_retransmit(kind, dir);
    send_nack(kind, dir);
  }
}

util::CommHealthReport CommP2p::health() const {
  util::CommHealthReport h;
  h.nacks_sent = nacks_sent_.load(std::memory_order_relaxed);
  h.retransmits_served = retransmits_served_.load(std::memory_order_relaxed);
  h.crc_rejects = crc_rejects_.load(std::memory_order_relaxed);
  for (const auto& d : dispatch_) {
    h.duplicates_dropped +=
        d.counters().duplicates_dropped.load(std::memory_order_relaxed);
  }
  h.tnis_in_use = tnis_in_use_;
  h.tnis_down = opt_.ntnis - tnis_in_use_;
  return h;
}

// --- data path ---------------------------------------------------------

void CommP2p::check_fits(std::size_t ndoubles) const {
  if (ndoubles > ring_doubles_) {
    throw std::length_error("p2p payload exceeds pre-registered ring size");
  }
}

void CommP2p::send_ring(MsgKind kind, int dir, std::size_t ndoubles) {
  DirState& st = dir_[static_cast<std::size_t>(dir)];
  const int tag = opposite(dir);  // the receiver's view of this channel
  const int slot = st.ring_slot_out++ % kRingSlots;
  const int my_slot = slot_of_dir_[static_cast<std::size_t>(dir)];
  const int peer_slot = slot_of_dir_[static_cast<std::size_t>(tag)];
  const int peer_rank = plan_.send_peer(dir);
  const RankAddresses& peer = book_->of(peer_rank);
  const std::uint64_t bytes = ndoubles * sizeof(double);
  const double* buf = st.send_buf.as_doubles();
  Edata ed{kind, tag, slot, static_cast<std::uint32_t>(ndoubles)};
  const std::uint64_t flow = next_flow();
  if (reliable_) {
    ed.seq = next_seq(kind, dir);
    ed.crc = payload_crc(ed.value, buf, bytes);
    record_pending(kind, dir, false, buf, bytes, peer_rank, my_slot,
                   peer_slot,
                   peer.ring[static_cast<std::size_t>(tag)][static_cast<std::size_t>(slot)],
                   0, ed.encode(), flow);
  }
  net_->put(vcq_[static_cast<std::size_t>(my_slot)],
            peer.vcq[static_cast<std::size_t>(peer_slot)],
            st.send_buf.stadd(), 0,
            peer.ring[static_cast<std::size_t>(tag)][static_cast<std::size_t>(slot)], 0,
            bytes, ed.encode(), tofu::PutMode::kData, flow);
  dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
}

void CommP2p::put_payload(MsgKind kind, int dir, std::span<const double> payload) {
  check_fits(payload.size());
  DirState& st = dir_[static_cast<std::size_t>(dir)];
  std::copy(payload.begin(), payload.end(), st.send_buf.as_doubles());
  send_ring(kind, dir, payload.size());
}

std::span<const double> CommP2p::wait_payload(MsgKind kind, int dir,
                                              std::uint32_t* count) {
  const Edata e = wait_ring(kind, dir);
  if (count != nullptr) *count = e.value;
  const double* ring =
      rings_[static_cast<std::size_t>(dir)][static_cast<std::size_t>(e.slot)]
          .as_doubles();
  return {ring, static_cast<std::size_t>(e.value)};
}

void CommP2p::borders() {
  md::Atoms& atoms = *ctx_.atoms;
  atoms.clear_ghosts();
  plan_.build_send_lists(atoms);

  // Phase A (parallel): pack straight into the registered send buffers
  // and put. Counters are settled serially afterwards — the payload
  // sizes are fully determined by the send lists.
  for_dirs(plan_.send_channels(), [&](int d) {
    const std::vector<int>& list = plan_.send_list(d);
    check_fits(list.size() * kBorderDoubles);
    DirState& st = dir_[static_cast<std::size_t>(d)];
    const std::size_t n = [&] {
      const obs::TraceSpan pack_span(obs::TraceCat::kComm, "pack.border");
      return pack_border(atoms, list, plan_.shift(d), st.send_buf.as_doubles());
    }();
    send_ring(MsgKind::kBorder, d, n);
  });
  for (const int d : plan_.send_channels()) {
    account(counters_, MsgKind::kBorder,
            plan_.send_list(d).size() * kBorderDoubles);
  }

  // Phase B (parallel): learn each incoming count. The ring slot to read
  // later is stashed by re-waiting below, so just collect counts first.
  std::array<std::pair<std::uint32_t, int>, kNumDirs> incoming{};  // count, slot
  for_dirs(plan_.recv_channels(), [&](int u) {
    const Edata e = wait_ring(MsgKind::kBorder, u);
    incoming[static_cast<std::size_t>(u)] = {e.value, e.slot};
  });

  // Phase C (serial): place ghosts in deterministic direction order so
  // every comm implementation yields identical ghost indexing.
  for (const int u : plan_.recv_channels()) {
    const auto [raw, slot] = incoming[static_cast<std::size_t>(u)];
    const double* ring =
        rings_[static_cast<std::size_t>(u)][static_cast<std::size_t>(slot)].as_doubles();
    const int start = atoms.ntotal();
    const int n = unpack_border(
        atoms, std::span<const double>(ring, static_cast<std::size_t>(raw)));
    plan_.set_ghost_block(u, start, n);
  }

  // Phase D (parallel): piggyback the ghost offsets back (Sec. 3.4 —
  // "the receiver informs the sender of the offset of ghost atoms ...
  // only an 8B value, so we use the piggyback mechanism").
  for_dirs(plan_.recv_channels(), [&](int u) {
    const int tag = opposite(u);
    const int my_slot = slot_of_dir_[static_cast<std::size_t>(u)];
    const int peer_slot = slot_of_dir_[static_cast<std::size_t>(tag)];
    const int peer_rank = plan_.recv_peer(u);
    const RankAddresses& peer = book_->of(peer_rank);
    Edata ed{MsgKind::kBorderAck, tag, 0,
             static_cast<std::uint32_t>(plan_.ghost_start(u))};
    const std::uint64_t flow = next_flow();
    if (reliable_) {
      ed.seq = next_seq(MsgKind::kBorderAck, u);
      ed.crc = payload_crc(ed.value, nullptr, 0);
      record_pending(MsgKind::kBorderAck, u, true, nullptr, 0, peer_rank,
                     my_slot, peer_slot, 0, 0, ed.encode(), flow);
    }
    net_->put_piggyback(vcq_[static_cast<std::size_t>(my_slot)],
                        peer.vcq[static_cast<std::size_t>(peer_slot)],
                        ed.encode(), tofu::PutMode::kData, flow);
    dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
  });
  for_dirs(plan_.send_channels(), [&](int d) {
    const Edata e = wait_piggyback(MsgKind::kBorderAck, d);
    dir_[static_cast<std::size_t>(d)].remote_offset = e.value;
  });
}

void CommP2p::forward_positions() {
  forward_begin();
  for_dirs(plan_.recv_channels(), [&](int u) { complete_forward_dir(u); });
}

void CommP2p::forward_begin() {
  md::Atoms& atoms = *ctx_.atoms;

  // Direct writes into the peer's position array are only safe when the
  // reverse stage paces the sender: with Newton's law on, a rank cannot
  // issue its next forward until it has received this step's ghost
  // forces, which the peer only sends after its pair stage has finished
  // reading the ghost positions. Without Newton there is no reverse
  // flow, so a fast neighbor's step-(n+1) forward could overwrite ghost
  // positions mid-pair-stage — those messages must go through the
  // round-robin rings instead (at most 2 in flight per direction, well
  // under the 4-slot depth).
  if (!ctx_.newton) {
    double* x = atoms.x();
    for_dirs(plan_.send_channels(), [&](int d) {
      const std::vector<int>& list = plan_.send_list(d);
      check_fits(list.size() * kPositionDoubles);
      DirState& st = dir_[static_cast<std::size_t>(d)];
      const std::size_t n = [&] {
        const obs::TraceSpan pack_span(obs::TraceCat::kComm, "pack.forward");
        return pack_positions(x, list, plan_.shift(d), st.send_buf.as_doubles());
      }();
      send_ring(MsgKind::kForward, d, n);
    });
    for (const int d : plan_.send_channels()) {
      account(counters_, MsgKind::kForward,
              plan_.send_list(d).size() * kPositionDoubles);
    }
    return;
  }

  for_dirs(plan_.send_channels(), [&](int d) {
    const std::vector<int>& list = plan_.send_list(d);
    check_fits(list.size() * kPositionDoubles);
    DirState& st = dir_[static_cast<std::size_t>(d)];
    // Pack shifted positions, then write them *directly* into the peer's
    // position array at the acked ghost offset (Fig. 9a) — no receive
    // buffer, no unpack on the far side.
    double* out = st.send_buf.as_doubles();
    const std::size_t w = [&] {
      const obs::TraceSpan pack_span(obs::TraceCat::kComm, "pack.forward");
      return pack_positions(atoms.x(), list, plan_.shift(d), out);
    }();
    const int tag = opposite(d);
    const int my_slot = slot_of_dir_[static_cast<std::size_t>(d)];
    const int peer_slot = slot_of_dir_[static_cast<std::size_t>(tag)];
    const int peer_rank = plan_.send_peer(d);
    const RankAddresses& peer = book_->of(peer_rank);
    const std::uint64_t bytes = w * sizeof(double);
    const std::uint64_t dst_off =
        static_cast<std::uint64_t>(st.remote_offset) * 3 * sizeof(double);
    Edata ed{MsgKind::kForward, tag, 0,
             static_cast<std::uint32_t>(list.size())};
    const std::uint64_t flow = next_flow();
    if (reliable_) {
      ed.seq = next_seq(MsgKind::kForward, d);
      ed.crc = payload_crc(ed.value, out, bytes);
      record_pending(MsgKind::kForward, d, false, out, bytes, peer_rank,
                     my_slot, peer_slot, peer.x_stadd, dst_off, ed.encode(),
                     flow);
    }
    net_->put(vcq_[static_cast<std::size_t>(my_slot)],
              peer.vcq[static_cast<std::size_t>(peer_slot)],
              st.send_buf.stadd(), 0, peer.x_stadd, dst_off, bytes,
              ed.encode(), tofu::PutMode::kData, flow);
    dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
  });
  for (const int d : plan_.send_channels()) {
    account(counters_, MsgKind::kForward,
            plan_.send_list(d).size() * kPositionDoubles);
  }
}

void CommP2p::complete_forward_dir(int u) {
  md::Atoms& atoms = *ctx_.atoms;

  if (!ctx_.newton) {
    std::uint32_t n = 0;
    const std::span<const double> in = wait_payload(MsgKind::kForward, u, &n);
    if (static_cast<int>(n) != plan_.ghost_count(u) * 3) {
      throw std::logic_error("forward ghost count changed since borders()");
    }
    unpack_positions(atoms.x(), plan_.ghost_start(u), in);
    return;
  }

  // The data lands in place; we only consume the arrival notice — but
  // under fault injection the landed bytes are CRC-verified against the
  // descriptor before the pair stage may read them.
  const int slot = slot_of_dir_[static_cast<std::size_t>(u)];
  for (;;) {
    const Edata e =
        dispatch_[static_cast<std::size_t>(slot)].wait(MsgKind::kForward, u);
    if (reliable_) {
      const double* region = atoms.x() + 3 * plan_.ghost_start(u);
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(e.value) * 3 * sizeof(double);
      if (e.crc != payload_crc(e.value, region, bytes)) {
        crc_rejects_.fetch_add(1, std::memory_order_relaxed);
        dispatch_[static_cast<std::size_t>(slot)].accept_retransmit(
            MsgKind::kForward, u);
        send_nack(MsgKind::kForward, u);
        continue;
      }
    }
    if (static_cast<int>(e.value) != plan_.ghost_count(u)) {
      throw std::logic_error("forward ghost count changed since borders()");
    }
    break;
  }
}

void CommP2p::forward_complete(int ch) { complete_forward_dir(ch); }

void CommP2p::reverse_forces() {
  if (!ctx_.newton) return;  // full lists never accumulate ghost forces
  md::Atoms& atoms = *ctx_.atoms;
  const RankAddresses& mine = book_->of(ctx_.rank);

  // Send: the ghost block of the force array is contiguous, so the put
  // reads straight out of the registered array — zero-copy (Fig. 9b).
  for_dirs(plan_.recv_channels(), [&](int u) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const int ghost_start = plan_.ghost_start(u);
    const int ghost_count = plan_.ghost_count(u);
    const int tag = opposite(u);
    const int slot = st.ring_slot_out++ % kRingSlots;
    const int my_slot = slot_of_dir_[static_cast<std::size_t>(u)];
    const int peer_slot = slot_of_dir_[static_cast<std::size_t>(tag)];
    const int peer_rank = plan_.recv_peer(u);
    const RankAddresses& peer = book_->of(peer_rank);
    const auto bytes = static_cast<std::uint64_t>(ghost_count) * 3 * sizeof(double);
    const std::uint64_t src_off =
        static_cast<std::uint64_t>(ghost_start) * 3 * sizeof(double);
    Edata ed{MsgKind::kReverse, tag, slot,
             static_cast<std::uint32_t>(ghost_count * 3)};
    const std::uint64_t flow = next_flow();
    if (reliable_) {
      ed.seq = next_seq(MsgKind::kReverse, u);
      ed.crc = payload_crc(ed.value, atoms.f() + 3 * ghost_start, bytes);
      record_pending(MsgKind::kReverse, u, false,
                     atoms.f() + 3 * ghost_start, bytes, peer_rank, my_slot,
                     peer_slot,
                     peer.ring[static_cast<std::size_t>(tag)][static_cast<std::size_t>(slot)],
                     0, ed.encode(), flow);
    }
    net_->put(vcq_[static_cast<std::size_t>(my_slot)],
              peer.vcq[static_cast<std::size_t>(peer_slot)],
              mine.f_stadd, src_off,
              peer.ring[static_cast<std::size_t>(tag)][static_cast<std::size_t>(slot)], 0,
              bytes, ed.encode(), tofu::PutMode::kData, flow);
    dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
  });
  for (const int u : plan_.recv_channels()) {
    account(counters_, MsgKind::kReverse,
            static_cast<std::size_t>(plan_.ghost_count(u)) * 3);
  }

  // Receive: unpack-add into the atoms we sent out as ghosts. Send
  // lists of different directions overlap on edge/corner owners, so
  // with several comm threads the adds must not land in timing order —
  // float addition does not commute bitwise. Phase A settles each
  // payload into its per-direction staging copy in parallel; Phase B
  // accumulates serially in canonical channel order. Single-threaded
  // comm keeps the zero-copy inline add.
  double* f = atoms.f();
  if (opt_.comm_threads == 1) {
    for_dirs(plan_.send_channels(), [&](int d) {
      std::uint32_t n = 0;
      const std::span<const double> in = wait_payload(MsgKind::kReverse, d, &n);
      add_forces(f, plan_.send_list(d), in);
    });
    return;
  }
  for_dirs(plan_.send_channels(), [&](int d) {
    std::uint32_t n = 0;
    const std::span<const double> in = wait_payload(MsgKind::kReverse, d, &n);
    reverse_stage_[static_cast<std::size_t>(d)].assign(in.begin(), in.end());
  });
  for (const int d : plan_.send_channels()) {
    add_forces(f, plan_.send_list(d),
               reverse_stage_[static_cast<std::size_t>(d)]);
  }
}

void CommP2p::forward(double* per_atom) {
  for_dirs(plan_.send_channels(), [&](int d) {
    const std::vector<int>& list = plan_.send_list(d);
    check_fits(list.size());
    DirState& st = dir_[static_cast<std::size_t>(d)];
    const std::size_t n = [&] {
      const obs::TraceSpan pack_span(obs::TraceCat::kComm, "pack.scalar");
      return pack_scalar(per_atom, list, st.send_buf.as_doubles());
    }();
    send_ring(MsgKind::kScalarFwd, d, n);
  });
  for (const int d : plan_.send_channels()) {
    account(counters_, MsgKind::kScalarFwd, plan_.send_list(d).size());
  }
  for_dirs(plan_.recv_channels(), [&](int u) {
    std::uint32_t n = 0;
    const std::span<const double> in = wait_payload(MsgKind::kScalarFwd, u, &n);
    if (static_cast<int>(n) != plan_.ghost_count(u)) {
      throw std::logic_error("scalar forward count mismatch");
    }
    unpack_scalar(per_atom, plan_.ghost_start(u), in);
  });
}

void CommP2p::reverse_add(double* per_atom) {
  if (!ctx_.newton) return;
  for_dirs(plan_.recv_channels(), [&](int u) {
    const std::span<const double> payload(
        per_atom + plan_.ghost_start(u),
        static_cast<std::size_t>(plan_.ghost_count(u)));
    put_payload(MsgKind::kScalarRev, u, payload);
  });
  for (const int u : plan_.recv_channels()) {
    account(counters_, MsgKind::kScalarRev,
            static_cast<std::size_t>(plan_.ghost_count(u)));
  }
  // Same stage-then-settle discipline as reverse_forces: canonical-order
  // accumulation keeps the EAM rho sums bitwise reproducible under
  // multi-threaded comm.
  if (opt_.comm_threads == 1) {
    for_dirs(plan_.send_channels(), [&](int d) {
      std::uint32_t n = 0;
      const std::span<const double> in =
          wait_payload(MsgKind::kScalarRev, d, &n);
      add_scalar(per_atom, plan_.send_list(d), in);
    });
    return;
  }
  for_dirs(plan_.send_channels(), [&](int d) {
    std::uint32_t n = 0;
    const std::span<const double> in = wait_payload(MsgKind::kScalarRev, d, &n);
    reverse_stage_[static_cast<std::size_t>(d)].assign(in.begin(), in.end());
  });
  for (const int d : plan_.send_channels()) {
    add_scalar(per_atom, plan_.send_list(d),
               reverse_stage_[static_cast<std::size_t>(d)]);
  }
}

void CommP2p::exchange() {
  md::Atoms& atoms = *ctx_.atoms;
  if (atoms.nghost() != 0) {
    throw std::logic_error("exchange requires ghosts to be cleared");
  }

  // Classify leavers by destination direction on the *raw* coordinates
  // (plan): the direction offset identifies the owner and the channel's
  // periodic shift maps the coordinate into the owner's box, so no
  // global wrap is needed (and the single-target send requires none).
  const MigrationPlan mig = plan_.classify_migrants(atoms);

  // All 26 channels fire every rebuild (possibly empty) so the expected
  // message counts stay deterministic. Pack before remove_locals — the
  // migration indices refer to the pre-removal atom array.
  static const std::vector<int> all26 = [] {
    std::vector<int> v(kNumDirs);
    for (int d = 0; d < kNumDirs; ++d) v[static_cast<std::size_t>(d)] = d;
    return v;
  }();
  for_dirs(all26, [&](int d) {
    const std::vector<int>& leavers = mig.by_dir[static_cast<std::size_t>(d)];
    check_fits(leavers.size() * kExchangeDoubles);
    DirState& st = dir_[static_cast<std::size_t>(d)];
    const std::size_t n = [&] {
      const obs::TraceSpan pack_span(obs::TraceCat::kComm, "pack.exchange");
      return pack_exchange(atoms, leavers, plan_.shift(d),
                           st.send_buf.as_doubles());
    }();
    send_ring(MsgKind::kExchange, d, n);
  });
  for (const int d : all26) {
    account(counters_, MsgKind::kExchange,
            mig.by_dir[static_cast<std::size_t>(d)].size() * kExchangeDoubles);
  }
  atoms.remove_locals(mig.gone);

  // Collect counts in parallel, append serially (deterministic order).
  std::array<std::pair<std::uint32_t, int>, kNumDirs> incoming{};
  for_dirs(all26, [&](int u) {
    const Edata e = wait_ring(MsgKind::kExchange, u);
    incoming[static_cast<std::size_t>(u)] = {e.value, e.slot};
  });
  for (const int u : all26) {
    const auto [raw, slot] = incoming[static_cast<std::size_t>(u)];
    const double* ring =
        rings_[static_cast<std::size_t>(u)][static_cast<std::size_t>(slot)].as_doubles();
    unpack_exchange(
        atoms, std::span<const double>(ring, static_cast<std::size_t>(raw)));
  }
}

// --- factory registration ----------------------------------------------
// The three p2p variants differ only in TNI count and threading; all use
// the half-shell ghost pattern (kAllGhosts).

namespace {

CommInstance build_p2p(const CommBuildInputs& in, int ntnis, int threads) {
  P2pOptions popt;
  popt.ntnis = ntnis;
  popt.comm_threads = threads;
  popt.use_border_bins = in.use_border_bins;
  popt.balanced_assignment = in.balanced_assignment;
  CommInstance out;
  if (threads > 1) {
    out.pool = std::make_unique<pool::SpinThreadPool>(threads);
  }
  out.comm = std::make_unique<CommP2p>(in.ctx, *in.net, *in.book, popt,
                                       out.pool.get());
  return out;
}

const CommRegistrar k4TniRegistrar{{
    "4tni_p2p",
    "coarse p2p: single thread, 4 TNIs (Sec. 3.2)",
    md::HalfRule::kAllGhosts,
    [](const CommBuildInputs& in) { return build_p2p(in, 4, 1); },
}};

const CommRegistrar k6TniRegistrar{{
    "6tni_p2p",
    "coarse p2p: single thread, 6 TNIs",
    md::HalfRule::kAllGhosts,
    [](const CommBuildInputs& in) { return build_p2p(in, 6, 1); },
}};

const CommRegistrar kOptRegistrar{{
    "opt",
    "fine-grained p2p: 6-thread spin pool over 6 TNIs (Sec. 3.3)",
    md::HalfRule::kAllGhosts,
    [](const CommBuildInputs& in) { return build_p2p(in, 6, 6); },
}};

}  // namespace

}  // namespace lmp::comm
