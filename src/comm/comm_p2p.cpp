#include "comm/comm_p2p.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "comm/msg_codec.h"
#include "geom/ghost_algebra.h"

namespace lmp::comm {

CommP2p::CommP2p(const CommContext& ctx, tofu::Network& net, AddressBook& book,
                 const P2pOptions& options, pool::SpinThreadPool* pool)
    : Comm(ctx), net_(&net), book_(&book), opt_(options), pool_(pool) {
  if (opt_.ntnis < 1 || opt_.ntnis > 6) {
    throw std::invalid_argument("ntnis must be in [1, 6]");
  }
  if (opt_.comm_threads < 1 || opt_.comm_threads > 6) {
    throw std::invalid_argument("comm_threads must be in [1, 6]");
  }
  if (opt_.comm_threads > 1) {
    if (opt_.comm_threads != opt_.ntnis) {
      throw std::invalid_argument(
          "fine-grained mode drives one TNI per thread: comm_threads must "
          "equal ntnis");
    }
    if (pool_ == nullptr || pool_->nthreads() < opt_.comm_threads) {
      throw std::invalid_argument("fine-grained mode needs a big-enough pool");
    }
  }
}

CommP2p::~CommP2p() {
  stop_progress_.store(true, std::memory_order_release);
  if (progress_.joinable()) progress_.join();
}

void CommP2p::setup() {
  const auto& decomp = *ctx_.decomp;
  const util::Int3 me = decomp.coord_of(ctx_.rank);
  const util::Vec3 extent = ctx_.global.extent();
  const auto& dirs = all_dirs();

  // Which directions we send ghosts to / receive ghosts from (Fig. 5):
  // Newton on halves the exchange — ghosts arrive only from the upper
  // 13 neighbors and our atoms travel only to the lower 13.
  for (int d = 0; d < kNumDirs; ++d) {
    if (!ctx_.newton || !is_upper(d)) send_dirs_.push_back(d);
    if (!ctx_.newton || is_upper(d)) recv_dirs_.push_back(d);
  }

  // Peer ranks and periodic shifts.
  for (int d = 0; d < kNumDirs; ++d) {
    const util::Int3 o = dirs[static_cast<std::size_t>(d)];
    dir_[static_cast<std::size_t>(d)].peer = decomp.rank_of(me + o);
    util::Vec3 shift;
    for (int axis = 0; axis < 3; ++axis) {
      const int c = me[static_cast<std::size_t>(axis)] + o[static_cast<std::size_t>(axis)];
      if (c < 0) {
        shift[static_cast<std::size_t>(axis)] = extent[static_cast<std::size_t>(axis)];
      } else if (c >= decomp.grid()[static_cast<std::size_t>(axis)]) {
        shift[static_cast<std::size_t>(axis)] = -extent[static_cast<std::size_t>(axis)];
      }
    }
    dir_[static_cast<std::size_t>(d)].shift = shift;
  }

  const util::Vec3 sub = ctx_.sub.extent();
  for (int axis = 0; axis < 3; ++axis) {
    if (sub[static_cast<std::size_t>(axis)] < ctx_.ghost_cutoff) {
      throw std::invalid_argument(
          "sub-box thinner than the ghost cutoff: single-shell p2p comm "
          "cannot cover the stencil");
    }
  }

  // Direction -> VCQ/thread slot map. Must be identical on every rank so
  // senders can target the receiving thread's VCQ.
  if (opt_.comm_threads > 1 && opt_.balanced_assignment) {
    // Estimated per-class costs from the ghost algebra of Table 1.
    const double a = std::min({sub.x, sub.y, sub.z});
    const double r = ctx_.ghost_cutoff;
    std::vector<CommTask> tasks;
    tasks.reserve(kNumDirs);
    for (int d = 0; d < kNumDirs; ++d) {
      const int order = dir_order(d);
      const double vol = order == 1 ? a * a * r : (order == 2 ? a * r * r : r * r * r);
      tasks.push_back({d, vol * ctx_.density * 24.0, order});
    }
    const std::vector<int> assign = balance_tasks(tasks, opt_.comm_threads);
    for (int d = 0; d < kNumDirs; ++d) {
      slot_of_dir_[static_cast<std::size_t>(d)] = assign[static_cast<std::size_t>(d)];
    }
  } else {
    const int nslots = opt_.comm_threads > 1 ? opt_.comm_threads : opt_.ntnis;
    for (int d = 0; d < kNumDirs; ++d) {
      slot_of_dir_[static_cast<std::size_t>(d)] = d % nslots;
    }
  }

  // VCQs: one per *logical* TNI slot. Normally slot t lives on TNI t,
  // CQ row 0 (each rank owns its own row in the per-node CQ matrix of
  // Fig. 7; the functional network gives each rank a private TNI
  // namespace so the rows are always free). When the fault plan marks
  // TNIs down, the logical slots re-stripe round-robin across the
  // survivors, moving to higher CQ rows on reuse so hardware CQs stay
  // exclusive — comm_threads and the direction map are untouched, the
  // traffic just shares fewer physical TNIs.
  const tofu::FaultInjector* inj = net_->fault_injector();
  std::vector<int> alive;
  for (int t = 0; t < opt_.ntnis; ++t) {
    if (inj == nullptr || !inj->tni_down(t)) alive.push_back(t);
  }
  if (alive.empty()) {
    throw std::runtime_error(
        "all TNIs of this variant are marked down — cannot re-stripe");
  }
  tnis_in_use_ = static_cast<int>(alive.size());

  utofu_ = std::make_unique<tofu::UtofuContext>(*net_, ctx_.rank);
  RankAddresses& mine = book_->mine(ctx_.rank);
  dispatch_.resize(static_cast<std::size_t>(opt_.ntnis));
  for (int t = 0; t < opt_.ntnis; ++t) {
    const int phys = alive[static_cast<std::size_t>(t % tnis_in_use_)];
    const int row = t / tnis_in_use_;
    vcq_[static_cast<std::size_t>(t)] = utofu_->create_vcq(phys, row);
    mine.vcq[static_cast<std::size_t>(t)] = vcq_[static_cast<std::size_t>(t)];
    dispatch_[static_cast<std::size_t>(t)] =
        NoticeDispatcher(net_, vcq_[static_cast<std::size_t>(t)]);
  }

  // Pre-registered buffers (Sec. 3.4): rings sized from the theoretical
  // ghost upper bound — the face slab is the largest class.
  const double r = ctx_.ghost_cutoff;
  const double face_vol = std::max({sub.x * sub.y, sub.y * sub.z, sub.x * sub.z}) * r;
  const auto max_atoms = static_cast<std::size_t>(face_vol * ctx_.density * 2.0) + 64;
  ring_doubles_ = max_atoms * 8 + 8;
  mine.ring_bytes = ring_doubles_ * sizeof(double);
  for (int d = 0; d < kNumDirs; ++d) {
    dir_[static_cast<std::size_t>(d)].send_buf = utofu_->make_buffer(mine.ring_bytes);
    for (int s = 0; s < kRingSlots; ++s) {
      rings_[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] =
          utofu_->make_buffer(mine.ring_bytes);
      mine.ring[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] =
          rings_[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)].stadd();
    }
  }

  // One-time registration of the position and force arrays themselves —
  // forward puts land directly in x, reverse puts read directly from f.
  md::Atoms& atoms = *ctx_.atoms;
  if (atoms.capacity() == 0) {
    throw std::logic_error("atoms capacity must be reserved before comm setup");
  }
  mine.x_stadd = net_->reg_mem(ctx_.rank, atoms.x(), atoms.array_bytes());
  mine.f_stadd = net_->reg_mem(ctx_.rank, atoms.f(), atoms.array_bytes());

  // Border-bin applicability (Sec. 3.5.2).
  bins_active_ = opt_.use_border_bins && BorderBins::applicable(ctx_.sub, r);
  if (bins_active_) {
    bins_ = std::make_unique<BorderBins>(ctx_.sub, r, send_dirs_);
  }

  // Arm the reliability protocol only for fault-injected runs: clean
  // runs keep the zero-overhead fast path (no CRC, no pending copies,
  // no progress thread).
  reliable_ = inj != nullptr && inj->enabled();
  if (reliable_) {
    for (int t = 0; t < opt_.ntnis; ++t) {
      dispatch_[static_cast<std::size_t>(t)].enable_reliability(
          [this](MsgKind kind, int dir) { send_nack(kind, dir); },
          opt_.reliability);
    }
    stop_progress_.store(false, std::memory_order_release);
    progress_ = std::thread([this] { progress_loop(); });
  }
}

void CommP2p::for_dirs(const std::vector<int>& dirs,
                       const std::function<void(int)>& fn) {
  if (opt_.comm_threads == 1) {
    for (const int d : dirs) fn(d);
    return;
  }
  pool_->parallel_static([&](int t) {
    if (t >= opt_.comm_threads) return;
    for (const int d : dirs) {
      if (slot_of_dir_[static_cast<std::size_t>(d)] == t) fn(d);
    }
  });
}

// --- reliability protocol ---------------------------------------------

void CommP2p::record_pending(MsgKind kind, int dir, bool piggyback,
                             const void* payload, std::uint64_t bytes,
                             int peer, int my_slot, int peer_slot,
                             tofu::Stadd dst_stadd, std::uint64_t dst_off,
                             std::uint64_t edata) {
  std::lock_guard lock(pending_mu_);
  PendingSend& p =
      pending_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(dir)];
  p.valid = true;
  p.piggyback = piggyback;
  p.edata = edata;
  p.peer = peer;
  p.my_slot = my_slot;
  p.peer_slot = peer_slot;
  p.dst_stadd = dst_stadd;
  p.dst_off = dst_off;
  p.length = bytes;
  if (!piggyback) {
    if (!p.copy.valid() || p.copy.size() < bytes) {
      p.copy = utofu_->make_buffer(std::max<std::size_t>(bytes, 64));
    }
    if (bytes > 0) std::memcpy(p.copy.data(), payload, bytes);
  }
}

void CommP2p::send_nack(MsgKind kind, int dir) {
  const DirState& st = dir_[static_cast<std::size_t>(dir)];
  const int sender_dir = opposite(dir);
  const int my_slot = slot_of_dir_[static_cast<std::size_t>(dir)];
  const std::uint8_t want =
      dispatch_[static_cast<std::size_t>(my_slot)].expected_seq(kind, dir);
  const RankAddresses& peer = book_->of(st.peer);
  // The NACK names the *sender's* channel (their direction index) plus
  // the kind and the sequence number we are missing, packed into value.
  const Edata ed{MsgKind::kRetransmitReq, sender_dir, 0,
                 static_cast<std::uint32_t>(kind) |
                     (static_cast<std::uint32_t>(want) << 8)};
  net_->put_piggyback(
      vcq_[static_cast<std::size_t>(my_slot)],
      peer.vcq[static_cast<std::size_t>(slot_of_dir_[static_cast<std::size_t>(sender_dir)])],
      ed.encode(), tofu::PutMode::kControl);
  nacks_sent_.fetch_add(1, std::memory_order_relaxed);
}

void CommP2p::serve_retransmit(MsgKind kind, std::uint8_t seq, int dir) {
  if (static_cast<int>(kind) < 0 || static_cast<int>(kind) >= kKindCount ||
      dir < 0 || dir >= kNumDirs) {
    return;
  }
  std::lock_guard lock(pending_mu_);
  const PendingSend& p =
      pending_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(dir)];
  // Serve only the exact message the receiver is missing: if the channel
  // has already advanced (stale NACK) or the message was never sent yet
  // (early NACK), ignore — the receiver re-NACKs with backoff. This is
  // what makes late replays harmless: a replay is only ever issued while
  // the original is still the channel's latest message, so it rewrites
  // bytes identical to those already delivered.
  if (!p.valid || static_cast<std::uint8_t>((p.edata >> 44) & 0xFF) != seq) {
    return;
  }
  retransmits_served_.fetch_add(1, std::memory_order_relaxed);
  const RankAddresses& peer = book_->of(p.peer);
  if (p.piggyback) {
    net_->put_piggyback(vcq_[static_cast<std::size_t>(p.my_slot)],
                        peer.vcq[static_cast<std::size_t>(p.peer_slot)],
                        p.edata, tofu::PutMode::kRetransmit);
  } else {
    net_->put(vcq_[static_cast<std::size_t>(p.my_slot)],
              peer.vcq[static_cast<std::size_t>(p.peer_slot)], p.copy.stadd(),
              0, p.dst_stadd, p.dst_off, p.length, p.edata,
              tofu::PutMode::kRetransmit);
  }
}

void CommP2p::progress_loop() {
  // The per-rank progress engine (the software stand-in for an A64FX
  // assistant core): services retransmit requests on every owned VCQ so
  // a sender blocked elsewhere — or already past its last wait — still
  // answers NACKs.
  while (!stop_progress_.load(std::memory_order_acquire)) {
    bool served = false;
    for (int t = 0; t < opt_.ntnis; ++t) {
      while (auto n = net_->poll_control(vcq_[static_cast<std::size_t>(t)])) {
        const Edata e = Edata::decode(n->edata);
        if (e.kind == MsgKind::kRetransmitReq) {
          serve_retransmit(static_cast<MsgKind>(e.value & 0xFF),
                           static_cast<std::uint8_t>((e.value >> 8) & 0xFF),
                           e.dir);
          served = true;
        }
      }
    }
    if (!served) std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

Edata CommP2p::wait_ring(MsgKind kind, int dir) {
  const int slot = slot_of_dir_[static_cast<std::size_t>(dir)];
  for (;;) {
    const Edata e = dispatch_[static_cast<std::size_t>(slot)].wait(kind, dir);
    if (!reliable_) return e;
    const double* ring =
        rings_[static_cast<std::size_t>(dir)][static_cast<std::size_t>(e.slot)]
            .as_doubles();
    if (e.crc == payload_crc(e.value, ring, e.value * sizeof(double))) return e;
    crc_rejects_.fetch_add(1, std::memory_order_relaxed);
    dispatch_[static_cast<std::size_t>(slot)].accept_retransmit(kind, dir);
    send_nack(kind, dir);
  }
}

Edata CommP2p::wait_piggyback(MsgKind kind, int dir) {
  const int slot = slot_of_dir_[static_cast<std::size_t>(dir)];
  for (;;) {
    const Edata e = dispatch_[static_cast<std::size_t>(slot)].wait(kind, dir);
    if (!reliable_ || e.crc == payload_crc(e.value, nullptr, 0)) return e;
    crc_rejects_.fetch_add(1, std::memory_order_relaxed);
    dispatch_[static_cast<std::size_t>(slot)].accept_retransmit(kind, dir);
    send_nack(kind, dir);
  }
}

util::CommHealthReport CommP2p::health() const {
  util::CommHealthReport h;
  h.nacks_sent = nacks_sent_.load(std::memory_order_relaxed);
  h.retransmits_served = retransmits_served_.load(std::memory_order_relaxed);
  h.crc_rejects = crc_rejects_.load(std::memory_order_relaxed);
  for (const auto& d : dispatch_) {
    h.duplicates_dropped +=
        d.counters().duplicates_dropped.load(std::memory_order_relaxed);
  }
  h.tnis_in_use = tnis_in_use_;
  h.tnis_down = opt_.ntnis - tnis_in_use_;
  return h;
}

// --- data path ---------------------------------------------------------

void CommP2p::put_payload(MsgKind kind, int dir, std::span<const double> payload) {
  DirState& st = dir_[static_cast<std::size_t>(dir)];
  if (payload.size() > ring_doubles_) {
    throw std::length_error("p2p payload exceeds pre-registered ring size");
  }
  std::copy(payload.begin(), payload.end(), st.send_buf.as_doubles());
  const int tag = opposite(dir);  // the receiver's view of this channel
  const int slot = st.ring_slot_out++ % kRingSlots;
  const int my_slot = slot_of_dir_[static_cast<std::size_t>(dir)];
  const int peer_slot = slot_of_dir_[static_cast<std::size_t>(tag)];
  const RankAddresses& peer = book_->of(st.peer);
  const std::uint64_t bytes = payload.size() * sizeof(double);
  Edata ed{kind, tag, slot, static_cast<std::uint32_t>(payload.size())};
  if (reliable_) {
    ed.seq = next_seq(kind, dir);
    ed.crc = payload_crc(ed.value, payload.data(), bytes);
    record_pending(kind, dir, false, payload.data(), bytes, st.peer, my_slot,
                   peer_slot,
                   peer.ring[static_cast<std::size_t>(tag)][static_cast<std::size_t>(slot)],
                   0, ed.encode());
  }
  net_->put(vcq_[static_cast<std::size_t>(my_slot)],
            peer.vcq[static_cast<std::size_t>(peer_slot)],
            st.send_buf.stadd(), 0,
            peer.ring[static_cast<std::size_t>(tag)][static_cast<std::size_t>(slot)], 0,
            bytes, ed.encode());
  dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
  counters_.bytes += bytes;
}

std::span<const double> CommP2p::wait_payload(MsgKind kind, int dir,
                                              std::uint32_t* count) {
  const Edata e = wait_ring(kind, dir);
  if (count != nullptr) *count = e.value;
  const double* ring =
      rings_[static_cast<std::size_t>(dir)][static_cast<std::size_t>(e.slot)]
          .as_doubles();
  return {ring, static_cast<std::size_t>(e.value)};
}

void CommP2p::build_sendlists() {
  md::Atoms& atoms = *ctx_.atoms;
  for (const int d : send_dirs_) dir_[static_cast<std::size_t>(d)].sendlist.clear();

  const double rc = ctx_.ghost_cutoff;
  for (int i = 0; i < atoms.nlocal(); ++i) {
    const util::Vec3 p = atoms.pos(i);
    if (bins_active_) {
      for (const int d : bins_->targets(p)) {
        dir_[static_cast<std::size_t>(d)].sendlist.push_back(i);
      }
    } else {
      for (const int d :
           BorderBins::targets_naive(ctx_.sub, rc, send_dirs_, p)) {
        dir_[static_cast<std::size_t>(d)].sendlist.push_back(i);
      }
    }
  }
}

void CommP2p::borders() {
  md::Atoms& atoms = *ctx_.atoms;
  atoms.clear_ghosts();
  build_sendlists();

  // Phase A (parallel): send border payloads.
  for_dirs(send_dirs_, [&](int d) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    std::vector<double> payload;
    payload.reserve(st.sendlist.size() * 4);
    const double* x = atoms.x();
    for (const int i : st.sendlist) {
      payload.push_back(x[3 * i] + st.shift.x);
      payload.push_back(x[3 * i + 1] + st.shift.y);
      payload.push_back(x[3 * i + 2] + st.shift.z);
      payload.push_back(tag_to_double(atoms.tag(i)));
    }
    put_payload(MsgKind::kBorder, d, payload);
    counters_.border_msgs += 1;
  });

  // Phase B (parallel): learn each incoming count. The ring slot to read
  // later is stashed by re-waiting below, so just collect counts first.
  std::array<std::pair<std::uint32_t, int>, kNumDirs> incoming{};  // count, slot
  for_dirs(recv_dirs_, [&](int u) {
    const Edata e = wait_ring(MsgKind::kBorder, u);
    incoming[static_cast<std::size_t>(u)] = {e.value, e.slot};
  });

  // Phase C (serial): place ghosts in deterministic direction order so
  // every comm implementation yields identical ghost indexing.
  for (const int u : recv_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const auto [raw, slot] = incoming[static_cast<std::size_t>(u)];
    const int n = static_cast<int>(raw / 4);
    st.ghost_start = atoms.ntotal();
    st.ghost_count = n;
    const double* ring =
        rings_[static_cast<std::size_t>(u)][static_cast<std::size_t>(slot)].as_doubles();
    for (int k = 0; k < n; ++k) {
      atoms.add_ghost({ring[4 * k], ring[4 * k + 1], ring[4 * k + 2]},
                      double_to_tag(ring[4 * k + 3]));
    }
  }

  // Phase D (parallel): piggyback the ghost offsets back (Sec. 3.4 —
  // "the receiver informs the sender of the offset of ghost atoms ...
  // only an 8B value, so we use the piggyback mechanism").
  for_dirs(recv_dirs_, [&](int u) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const int tag = opposite(u);
    const int my_slot = slot_of_dir_[static_cast<std::size_t>(u)];
    const int peer_slot = slot_of_dir_[static_cast<std::size_t>(tag)];
    const RankAddresses& peer = book_->of(st.peer);
    Edata ed{MsgKind::kBorderAck, tag, 0,
             static_cast<std::uint32_t>(st.ghost_start)};
    if (reliable_) {
      ed.seq = next_seq(MsgKind::kBorderAck, u);
      ed.crc = payload_crc(ed.value, nullptr, 0);
      record_pending(MsgKind::kBorderAck, u, true, nullptr, 0, st.peer,
                     my_slot, peer_slot, 0, 0, ed.encode());
    }
    net_->put_piggyback(vcq_[static_cast<std::size_t>(my_slot)],
                        peer.vcq[static_cast<std::size_t>(peer_slot)],
                        ed.encode());
    dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
  });
  for_dirs(send_dirs_, [&](int d) {
    const Edata e = wait_piggyback(MsgKind::kBorderAck, d);
    dir_[static_cast<std::size_t>(d)].remote_offset = e.value;
  });
}

void CommP2p::forward_positions() {
  md::Atoms& atoms = *ctx_.atoms;

  // Direct writes into the peer's position array are only safe when the
  // reverse stage paces the sender: with Newton's law on, a rank cannot
  // issue its next forward until it has received this step's ghost
  // forces, which the peer only sends after its pair stage has finished
  // reading the ghost positions. Without Newton there is no reverse
  // flow, so a fast neighbor's step-(n+1) forward could overwrite ghost
  // positions mid-pair-stage — those messages must go through the
  // round-robin rings instead (at most 2 in flight per direction, well
  // under the 4-slot depth).
  if (!ctx_.newton) {
    double* x = atoms.x();
    for_dirs(send_dirs_, [&](int d) {
      DirState& st = dir_[static_cast<std::size_t>(d)];
      std::vector<double> payload;
      payload.reserve(st.sendlist.size() * 3);
      for (const int i : st.sendlist) {
        payload.push_back(x[3 * i] + st.shift.x);
        payload.push_back(x[3 * i + 1] + st.shift.y);
        payload.push_back(x[3 * i + 2] + st.shift.z);
      }
      put_payload(MsgKind::kForward, d, payload);
      counters_.forward_msgs += 1;
    });
    for_dirs(recv_dirs_, [&](int u) {
      std::uint32_t n = 0;
      const std::span<const double> in = wait_payload(MsgKind::kForward, u, &n);
      DirState& st = dir_[static_cast<std::size_t>(u)];
      if (static_cast<int>(n) != st.ghost_count * 3) {
        throw std::logic_error("forward ghost count changed since borders()");
      }
      std::copy(in.begin(), in.end(), x + 3 * st.ghost_start);
    });
    return;
  }

  for_dirs(send_dirs_, [&](int d) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    // Pack shifted positions, then write them *directly* into the peer's
    // position array at the acked ghost offset (Fig. 9a) — no receive
    // buffer, no unpack on the far side.
    double* out = st.send_buf.as_doubles();
    const double* x = atoms.x();
    std::size_t w = 0;
    for (const int i : st.sendlist) {
      out[w++] = x[3 * i] + st.shift.x;
      out[w++] = x[3 * i + 1] + st.shift.y;
      out[w++] = x[3 * i + 2] + st.shift.z;
    }
    const int tag = opposite(d);
    const int my_slot = slot_of_dir_[static_cast<std::size_t>(d)];
    const int peer_slot = slot_of_dir_[static_cast<std::size_t>(tag)];
    const RankAddresses& peer = book_->of(st.peer);
    const std::uint64_t bytes = w * sizeof(double);
    const std::uint64_t dst_off =
        static_cast<std::uint64_t>(st.remote_offset) * 3 * sizeof(double);
    Edata ed{MsgKind::kForward, tag, 0,
             static_cast<std::uint32_t>(st.sendlist.size())};
    if (reliable_) {
      ed.seq = next_seq(MsgKind::kForward, d);
      ed.crc = payload_crc(ed.value, out, bytes);
      record_pending(MsgKind::kForward, d, false, out, bytes, st.peer,
                     my_slot, peer_slot, peer.x_stadd, dst_off, ed.encode());
    }
    net_->put(vcq_[static_cast<std::size_t>(my_slot)],
              peer.vcq[static_cast<std::size_t>(peer_slot)],
              st.send_buf.stadd(), 0, peer.x_stadd, dst_off, bytes,
              ed.encode());
    dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
    counters_.forward_msgs += 1;
    counters_.bytes += bytes;
  });

  // The data lands in place; we only consume the arrival notices — but
  // under fault injection the landed bytes are CRC-verified against the
  // descriptor before the pair stage may read them.
  for_dirs(recv_dirs_, [&](int u) {
    const int slot = slot_of_dir_[static_cast<std::size_t>(u)];
    DirState& st = dir_[static_cast<std::size_t>(u)];
    for (;;) {
      const Edata e =
          dispatch_[static_cast<std::size_t>(slot)].wait(MsgKind::kForward, u);
      if (reliable_) {
        const double* region = atoms.x() + 3 * st.ghost_start;
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(e.value) * 3 * sizeof(double);
        if (e.crc != payload_crc(e.value, region, bytes)) {
          crc_rejects_.fetch_add(1, std::memory_order_relaxed);
          dispatch_[static_cast<std::size_t>(slot)].accept_retransmit(
              MsgKind::kForward, u);
          send_nack(MsgKind::kForward, u);
          continue;
        }
      }
      if (static_cast<int>(e.value) != st.ghost_count) {
        throw std::logic_error("forward ghost count changed since borders()");
      }
      break;
    }
  });
}

void CommP2p::reverse_forces() {
  if (!ctx_.newton) return;  // full lists never accumulate ghost forces
  md::Atoms& atoms = *ctx_.atoms;
  const RankAddresses& mine = book_->of(ctx_.rank);

  // Send: the ghost block of the force array is contiguous, so the put
  // reads straight out of the registered array — zero-copy (Fig. 9b).
  for_dirs(recv_dirs_, [&](int u) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const int tag = opposite(u);
    const int slot = st.ring_slot_out++ % kRingSlots;
    const int my_slot = slot_of_dir_[static_cast<std::size_t>(u)];
    const int peer_slot = slot_of_dir_[static_cast<std::size_t>(tag)];
    const RankAddresses& peer = book_->of(st.peer);
    const auto bytes = static_cast<std::uint64_t>(st.ghost_count) * 3 * sizeof(double);
    const std::uint64_t src_off =
        static_cast<std::uint64_t>(st.ghost_start) * 3 * sizeof(double);
    Edata ed{MsgKind::kReverse, tag, slot,
             static_cast<std::uint32_t>(st.ghost_count * 3)};
    if (reliable_) {
      ed.seq = next_seq(MsgKind::kReverse, u);
      ed.crc = payload_crc(ed.value, atoms.f() + 3 * st.ghost_start, bytes);
      record_pending(MsgKind::kReverse, u, false,
                     atoms.f() + 3 * st.ghost_start, bytes, st.peer, my_slot,
                     peer_slot,
                     peer.ring[static_cast<std::size_t>(tag)][static_cast<std::size_t>(slot)],
                     0, ed.encode());
    }
    net_->put(vcq_[static_cast<std::size_t>(my_slot)],
              peer.vcq[static_cast<std::size_t>(peer_slot)],
              mine.f_stadd, src_off,
              peer.ring[static_cast<std::size_t>(tag)][static_cast<std::size_t>(slot)], 0,
              bytes, ed.encode());
    dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
    counters_.reverse_msgs += 1;
    counters_.bytes += bytes;
  });

  // Receive: unpack-add into the atoms we sent out as ghosts.
  double* f = atoms.f();
  for_dirs(send_dirs_, [&](int d) {
    std::uint32_t n = 0;
    const std::span<const double> in = wait_payload(MsgKind::kReverse, d, &n);
    const auto& list = dir_[static_cast<std::size_t>(d)].sendlist;
    if (n != list.size() * 3) {
      throw std::logic_error("reverse payload does not match send list");
    }
    for (std::size_t k = 0; k < list.size(); ++k) {
      const int i = list[k];
      f[3 * i] += in[3 * k];
      f[3 * i + 1] += in[3 * k + 1];
      f[3 * i + 2] += in[3 * k + 2];
    }
  });
}

void CommP2p::forward(double* per_atom) {
  for_dirs(send_dirs_, [&](int d) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    std::vector<double> payload;
    payload.reserve(st.sendlist.size());
    for (const int i : st.sendlist) payload.push_back(per_atom[i]);
    put_payload(MsgKind::kScalarFwd, d, payload);
    counters_.scalar_msgs += 1;
  });
  for_dirs(recv_dirs_, [&](int u) {
    std::uint32_t n = 0;
    const std::span<const double> in = wait_payload(MsgKind::kScalarFwd, u, &n);
    DirState& st = dir_[static_cast<std::size_t>(u)];
    if (static_cast<int>(n) != st.ghost_count) {
      throw std::logic_error("scalar forward count mismatch");
    }
    std::copy(in.begin(), in.end(), per_atom + st.ghost_start);
  });
}

void CommP2p::reverse_add(double* per_atom) {
  if (!ctx_.newton) return;
  for_dirs(recv_dirs_, [&](int u) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const std::span<const double> payload(per_atom + st.ghost_start,
                                          static_cast<std::size_t>(st.ghost_count));
    put_payload(MsgKind::kScalarRev, u, payload);
    counters_.scalar_msgs += 1;
  });
  for_dirs(send_dirs_, [&](int d) {
    std::uint32_t n = 0;
    const std::span<const double> in = wait_payload(MsgKind::kScalarRev, d, &n);
    const auto& list = dir_[static_cast<std::size_t>(d)].sendlist;
    if (n != list.size()) throw std::logic_error("scalar reverse count mismatch");
    for (std::size_t k = 0; k < list.size(); ++k) per_atom[list[k]] += in[k];
  });
}

void CommP2p::exchange() {
  md::Atoms& atoms = *ctx_.atoms;
  if (atoms.nghost() != 0) {
    throw std::logic_error("exchange requires ghosts to be cleared");
  }

  // Classify leavers by destination direction on the *raw* coordinates:
  // the direction offset identifies the owner and the direction's
  // periodic shift maps the coordinate into the owner's box, so no
  // global wrap is needed (and the single-target send requires none).
  std::array<std::vector<double>, kNumDirs> outbound;
  std::vector<int> gone;
  {
    const double* x = atoms.x();
    for (int i = 0; i < atoms.nlocal(); ++i) {
      util::Int3 off{0, 0, 0};
      for (int axis = 0; axis < 3; ++axis) {
        const double v = x[3 * i + axis];
        if (v < ctx_.sub.lo[static_cast<std::size_t>(axis)]) {
          off[static_cast<std::size_t>(axis)] = -1;
        } else if (v >= ctx_.sub.hi[static_cast<std::size_t>(axis)]) {
          off[static_cast<std::size_t>(axis)] = +1;
        }
      }
      if (off == util::Int3{0, 0, 0}) continue;
      // After the global wrap, a leaver beyond the adjacent sub-box would
      // be unreachable by single-shell exchange — LAMMPS calls this a
      // lost atom; here it cannot happen while rebuilds respect the skin.
      const int d = dir_index(off);
      const util::Vec3 p = atoms.pos(i) + dir_[static_cast<std::size_t>(d)].shift;
      const util::Vec3 v = atoms.vel(i);
      outbound[static_cast<std::size_t>(d)].insert(
          outbound[static_cast<std::size_t>(d)].end(),
          {p.x, p.y, p.z, v.x, v.y, v.z, tag_to_double(atoms.tag(i))});
      gone.push_back(i);
    }
  }
  atoms.remove_locals(gone);

  // All 26 channels fire every rebuild (possibly empty) so the expected
  // message counts stay deterministic.
  static const std::vector<int> all26 = [] {
    std::vector<int> v(kNumDirs);
    for (int d = 0; d < kNumDirs; ++d) v[static_cast<std::size_t>(d)] = d;
    return v;
  }();
  for_dirs(all26, [&](int d) {
    put_payload(MsgKind::kExchange, d, outbound[static_cast<std::size_t>(d)]);
    counters_.exchange_msgs += 1;
  });
  // Collect counts in parallel, append serially (deterministic order).
  std::array<std::pair<std::uint32_t, int>, kNumDirs> incoming{};
  for_dirs(all26, [&](int u) {
    const Edata e = wait_ring(MsgKind::kExchange, u);
    incoming[static_cast<std::size_t>(u)] = {e.value, e.slot};
  });
  for (const int u : all26) {
    const auto [raw, slot] = incoming[static_cast<std::size_t>(u)];
    const int n = static_cast<int>(raw / 7);
    const double* ring =
        rings_[static_cast<std::size_t>(u)][static_cast<std::size_t>(slot)].as_doubles();
    for (int k = 0; k < n; ++k) {
      atoms.add_local({ring[7 * k], ring[7 * k + 1], ring[7 * k + 2]},
                      {ring[7 * k + 3], ring[7 * k + 4], ring[7 * k + 5]},
                      double_to_tag(ring[7 * k + 6]));
    }
  }
}

}  // namespace lmp::comm
