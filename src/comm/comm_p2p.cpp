#include "comm/comm_p2p.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "comm/msg_codec.h"
#include "geom/ghost_algebra.h"

namespace lmp::comm {

CommP2p::CommP2p(const CommContext& ctx, tofu::Network& net, AddressBook& book,
                 const P2pOptions& options, pool::SpinThreadPool* pool)
    : Comm(ctx), net_(&net), book_(&book), opt_(options), pool_(pool) {
  if (opt_.ntnis < 1 || opt_.ntnis > 6) {
    throw std::invalid_argument("ntnis must be in [1, 6]");
  }
  if (opt_.comm_threads < 1 || opt_.comm_threads > 6) {
    throw std::invalid_argument("comm_threads must be in [1, 6]");
  }
  if (opt_.comm_threads > 1) {
    if (opt_.comm_threads != opt_.ntnis) {
      throw std::invalid_argument(
          "fine-grained mode drives one TNI per thread: comm_threads must "
          "equal ntnis");
    }
    if (pool_ == nullptr || pool_->nthreads() < opt_.comm_threads) {
      throw std::invalid_argument("fine-grained mode needs a big-enough pool");
    }
  }
}

void CommP2p::setup() {
  const auto& decomp = *ctx_.decomp;
  const util::Int3 me = decomp.coord_of(ctx_.rank);
  const util::Vec3 extent = ctx_.global.extent();
  const auto& dirs = all_dirs();

  // Which directions we send ghosts to / receive ghosts from (Fig. 5):
  // Newton on halves the exchange — ghosts arrive only from the upper
  // 13 neighbors and our atoms travel only to the lower 13.
  for (int d = 0; d < kNumDirs; ++d) {
    if (!ctx_.newton || !is_upper(d)) send_dirs_.push_back(d);
    if (!ctx_.newton || is_upper(d)) recv_dirs_.push_back(d);
  }

  // Peer ranks and periodic shifts.
  for (int d = 0; d < kNumDirs; ++d) {
    const util::Int3 o = dirs[static_cast<std::size_t>(d)];
    dir_[static_cast<std::size_t>(d)].peer = decomp.rank_of(me + o);
    util::Vec3 shift;
    for (int axis = 0; axis < 3; ++axis) {
      const int c = me[static_cast<std::size_t>(axis)] + o[static_cast<std::size_t>(axis)];
      if (c < 0) {
        shift[static_cast<std::size_t>(axis)] = extent[static_cast<std::size_t>(axis)];
      } else if (c >= decomp.grid()[static_cast<std::size_t>(axis)]) {
        shift[static_cast<std::size_t>(axis)] = -extent[static_cast<std::size_t>(axis)];
      }
    }
    dir_[static_cast<std::size_t>(d)].shift = shift;
  }

  const util::Vec3 sub = ctx_.sub.extent();
  for (int axis = 0; axis < 3; ++axis) {
    if (sub[static_cast<std::size_t>(axis)] < ctx_.ghost_cutoff) {
      throw std::invalid_argument(
          "sub-box thinner than the ghost cutoff: single-shell p2p comm "
          "cannot cover the stencil");
    }
  }

  // Direction -> VCQ/thread slot map. Must be identical on every rank so
  // senders can target the receiving thread's VCQ.
  if (opt_.comm_threads > 1 && opt_.balanced_assignment) {
    // Estimated per-class costs from the ghost algebra of Table 1.
    const double a = std::min({sub.x, sub.y, sub.z});
    const double r = ctx_.ghost_cutoff;
    std::vector<CommTask> tasks;
    tasks.reserve(kNumDirs);
    for (int d = 0; d < kNumDirs; ++d) {
      const int order = dir_order(d);
      const double vol = order == 1 ? a * a * r : (order == 2 ? a * r * r : r * r * r);
      tasks.push_back({d, vol * ctx_.density * 24.0, order});
    }
    const std::vector<int> assign = balance_tasks(tasks, opt_.comm_threads);
    for (int d = 0; d < kNumDirs; ++d) {
      slot_of_dir_[static_cast<std::size_t>(d)] = assign[static_cast<std::size_t>(d)];
    }
  } else {
    const int nslots = opt_.comm_threads > 1 ? opt_.comm_threads : opt_.ntnis;
    for (int d = 0; d < kNumDirs; ++d) {
      slot_of_dir_[static_cast<std::size_t>(d)] = d % nslots;
    }
  }

  // VCQs: one per used TNI, CQ row 0 (each rank owns its own row in the
  // per-node CQ matrix of Fig. 7; the functional network gives each rank
  // a private TNI namespace so row 0 is always free).
  utofu_ = std::make_unique<tofu::UtofuContext>(*net_, ctx_.rank);
  RankAddresses& mine = book_->mine(ctx_.rank);
  dispatch_.resize(static_cast<std::size_t>(opt_.ntnis));
  for (int t = 0; t < opt_.ntnis; ++t) {
    vcq_[static_cast<std::size_t>(t)] = utofu_->create_vcq(t, 0);
    mine.vcq[static_cast<std::size_t>(t)] = vcq_[static_cast<std::size_t>(t)];
    dispatch_[static_cast<std::size_t>(t)] =
        NoticeDispatcher(net_, vcq_[static_cast<std::size_t>(t)]);
  }

  // Pre-registered buffers (Sec. 3.4): rings sized from the theoretical
  // ghost upper bound — the face slab is the largest class.
  const double r = ctx_.ghost_cutoff;
  const double face_vol = std::max({sub.x * sub.y, sub.y * sub.z, sub.x * sub.z}) * r;
  const auto max_atoms = static_cast<std::size_t>(face_vol * ctx_.density * 2.0) + 64;
  ring_doubles_ = max_atoms * 8 + 8;
  mine.ring_bytes = ring_doubles_ * sizeof(double);
  for (int d = 0; d < kNumDirs; ++d) {
    dir_[static_cast<std::size_t>(d)].send_buf = utofu_->make_buffer(mine.ring_bytes);
    for (int s = 0; s < kRingSlots; ++s) {
      rings_[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] =
          utofu_->make_buffer(mine.ring_bytes);
      mine.ring[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] =
          rings_[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)].stadd();
    }
  }

  // One-time registration of the position and force arrays themselves —
  // forward puts land directly in x, reverse puts read directly from f.
  md::Atoms& atoms = *ctx_.atoms;
  if (atoms.capacity() == 0) {
    throw std::logic_error("atoms capacity must be reserved before comm setup");
  }
  mine.x_stadd = net_->reg_mem(ctx_.rank, atoms.x(), atoms.array_bytes());
  mine.f_stadd = net_->reg_mem(ctx_.rank, atoms.f(), atoms.array_bytes());

  // Border-bin applicability (Sec. 3.5.2).
  bins_active_ = opt_.use_border_bins && BorderBins::applicable(ctx_.sub, r);
  if (bins_active_) {
    bins_ = std::make_unique<BorderBins>(ctx_.sub, r, send_dirs_);
  }
}

void CommP2p::for_dirs(const std::vector<int>& dirs,
                       const std::function<void(int)>& fn) {
  if (opt_.comm_threads == 1) {
    for (const int d : dirs) fn(d);
    return;
  }
  pool_->parallel_static([&](int t) {
    if (t >= opt_.comm_threads) return;
    for (const int d : dirs) {
      if (slot_of_dir_[static_cast<std::size_t>(d)] == t) fn(d);
    }
  });
}

void CommP2p::put_payload(MsgKind kind, int dir, std::span<const double> payload) {
  DirState& st = dir_[static_cast<std::size_t>(dir)];
  if (payload.size() > ring_doubles_) {
    throw std::length_error("p2p payload exceeds pre-registered ring size");
  }
  std::copy(payload.begin(), payload.end(), st.send_buf.as_doubles());
  const int tag = opposite(dir);  // the receiver's view of this channel
  const int slot = st.ring_slot_out++ % kRingSlots;
  const int my_slot = slot_of_dir_[static_cast<std::size_t>(dir)];
  const RankAddresses& peer = book_->of(st.peer);
  const Edata ed{kind, tag, slot, static_cast<std::uint32_t>(payload.size())};
  net_->put(vcq_[static_cast<std::size_t>(my_slot)],
            peer.vcq[static_cast<std::size_t>(slot_of_dir_[static_cast<std::size_t>(tag)])],
            st.send_buf.stadd(), 0,
            peer.ring[static_cast<std::size_t>(tag)][static_cast<std::size_t>(slot)], 0,
            payload.size() * sizeof(double), ed.encode());
  dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
  counters_.bytes += payload.size() * sizeof(double);
}

std::span<const double> CommP2p::wait_payload(MsgKind kind, int dir,
                                              std::uint32_t* count) {
  const int slot = slot_of_dir_[static_cast<std::size_t>(dir)];
  const Edata e = dispatch_[static_cast<std::size_t>(slot)].wait(kind, dir);
  if (count != nullptr) *count = e.value;
  const double* ring =
      rings_[static_cast<std::size_t>(dir)][static_cast<std::size_t>(e.slot)]
          .as_doubles();
  return {ring, static_cast<std::size_t>(e.value)};
}

void CommP2p::build_sendlists() {
  md::Atoms& atoms = *ctx_.atoms;
  for (const int d : send_dirs_) dir_[static_cast<std::size_t>(d)].sendlist.clear();

  const double rc = ctx_.ghost_cutoff;
  for (int i = 0; i < atoms.nlocal(); ++i) {
    const util::Vec3 p = atoms.pos(i);
    if (bins_active_) {
      for (const int d : bins_->targets(p)) {
        dir_[static_cast<std::size_t>(d)].sendlist.push_back(i);
      }
    } else {
      for (const int d :
           BorderBins::targets_naive(ctx_.sub, rc, send_dirs_, p)) {
        dir_[static_cast<std::size_t>(d)].sendlist.push_back(i);
      }
    }
  }
}

void CommP2p::borders() {
  md::Atoms& atoms = *ctx_.atoms;
  atoms.clear_ghosts();
  build_sendlists();

  // Phase A (parallel): send border payloads.
  for_dirs(send_dirs_, [&](int d) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    std::vector<double> payload;
    payload.reserve(st.sendlist.size() * 4);
    const double* x = atoms.x();
    for (const int i : st.sendlist) {
      payload.push_back(x[3 * i] + st.shift.x);
      payload.push_back(x[3 * i + 1] + st.shift.y);
      payload.push_back(x[3 * i + 2] + st.shift.z);
      payload.push_back(tag_to_double(atoms.tag(i)));
    }
    put_payload(MsgKind::kBorder, d, payload);
    counters_.border_msgs += 1;
  });

  // Phase B (parallel): learn each incoming count. The ring slot to read
  // later is stashed by re-waiting below, so just collect counts first.
  std::array<std::pair<std::uint32_t, int>, kNumDirs> incoming{};  // count, slot
  for_dirs(recv_dirs_, [&](int u) {
    const int slot = slot_of_dir_[static_cast<std::size_t>(u)];
    const Edata e = dispatch_[static_cast<std::size_t>(slot)].wait(MsgKind::kBorder, u);
    incoming[static_cast<std::size_t>(u)] = {e.value, e.slot};
  });

  // Phase C (serial): place ghosts in deterministic direction order so
  // every comm implementation yields identical ghost indexing.
  for (const int u : recv_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const auto [raw, slot] = incoming[static_cast<std::size_t>(u)];
    const int n = static_cast<int>(raw / 4);
    st.ghost_start = atoms.ntotal();
    st.ghost_count = n;
    const double* ring =
        rings_[static_cast<std::size_t>(u)][static_cast<std::size_t>(slot)].as_doubles();
    for (int k = 0; k < n; ++k) {
      atoms.add_ghost({ring[4 * k], ring[4 * k + 1], ring[4 * k + 2]},
                      double_to_tag(ring[4 * k + 3]));
    }
  }

  // Phase D (parallel): piggyback the ghost offsets back (Sec. 3.4 —
  // "the receiver informs the sender of the offset of ghost atoms ...
  // only an 8B value, so we use the piggyback mechanism").
  for_dirs(recv_dirs_, [&](int u) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const int tag = opposite(u);
    const int my_slot = slot_of_dir_[static_cast<std::size_t>(u)];
    const RankAddresses& peer = book_->of(st.peer);
    const Edata ed{MsgKind::kBorderAck, tag, 0,
                   static_cast<std::uint32_t>(st.ghost_start)};
    net_->put_piggyback(
        vcq_[static_cast<std::size_t>(my_slot)],
        peer.vcq[static_cast<std::size_t>(slot_of_dir_[static_cast<std::size_t>(tag)])],
        ed.encode());
    dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
  });
  for_dirs(send_dirs_, [&](int d) {
    const int slot = slot_of_dir_[static_cast<std::size_t>(d)];
    const Edata e = dispatch_[static_cast<std::size_t>(slot)].wait(MsgKind::kBorderAck, d);
    dir_[static_cast<std::size_t>(d)].remote_offset = e.value;
  });
}

void CommP2p::forward_positions() {
  md::Atoms& atoms = *ctx_.atoms;

  // Direct writes into the peer's position array are only safe when the
  // reverse stage paces the sender: with Newton's law on, a rank cannot
  // issue its next forward until it has received this step's ghost
  // forces, which the peer only sends after its pair stage has finished
  // reading the ghost positions. Without Newton there is no reverse
  // flow, so a fast neighbor's step-(n+1) forward could overwrite ghost
  // positions mid-pair-stage — those messages must go through the
  // round-robin rings instead (at most 2 in flight per direction, well
  // under the 4-slot depth).
  if (!ctx_.newton) {
    double* x = atoms.x();
    for_dirs(send_dirs_, [&](int d) {
      DirState& st = dir_[static_cast<std::size_t>(d)];
      std::vector<double> payload;
      payload.reserve(st.sendlist.size() * 3);
      for (const int i : st.sendlist) {
        payload.push_back(x[3 * i] + st.shift.x);
        payload.push_back(x[3 * i + 1] + st.shift.y);
        payload.push_back(x[3 * i + 2] + st.shift.z);
      }
      put_payload(MsgKind::kForward, d, payload);
      counters_.forward_msgs += 1;
    });
    for_dirs(recv_dirs_, [&](int u) {
      std::uint32_t n = 0;
      const std::span<const double> in = wait_payload(MsgKind::kForward, u, &n);
      DirState& st = dir_[static_cast<std::size_t>(u)];
      if (static_cast<int>(n) != st.ghost_count * 3) {
        throw std::logic_error("forward ghost count changed since borders()");
      }
      std::copy(in.begin(), in.end(), x + 3 * st.ghost_start);
    });
    return;
  }

  for_dirs(send_dirs_, [&](int d) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    // Pack shifted positions, then write them *directly* into the peer's
    // position array at the acked ghost offset (Fig. 9a) — no receive
    // buffer, no unpack on the far side.
    double* out = st.send_buf.as_doubles();
    const double* x = atoms.x();
    std::size_t w = 0;
    for (const int i : st.sendlist) {
      out[w++] = x[3 * i] + st.shift.x;
      out[w++] = x[3 * i + 1] + st.shift.y;
      out[w++] = x[3 * i + 2] + st.shift.z;
    }
    const int tag = opposite(d);
    const int my_slot = slot_of_dir_[static_cast<std::size_t>(d)];
    const RankAddresses& peer = book_->of(st.peer);
    const Edata ed{MsgKind::kForward, tag, 0,
                   static_cast<std::uint32_t>(st.sendlist.size())};
    net_->put(vcq_[static_cast<std::size_t>(my_slot)],
              peer.vcq[static_cast<std::size_t>(slot_of_dir_[static_cast<std::size_t>(tag)])],
              st.send_buf.stadd(), 0, peer.x_stadd,
              static_cast<std::uint64_t>(st.remote_offset) * 3 * sizeof(double),
              w * sizeof(double), ed.encode());
    dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
    counters_.forward_msgs += 1;
    counters_.bytes += w * sizeof(double);
  });

  // The data lands in place; we only consume the arrival notices.
  for_dirs(recv_dirs_, [&](int u) {
    const int slot = slot_of_dir_[static_cast<std::size_t>(u)];
    const Edata e = dispatch_[static_cast<std::size_t>(slot)].wait(MsgKind::kForward, u);
    if (static_cast<int>(e.value) != dir_[static_cast<std::size_t>(u)].ghost_count) {
      throw std::logic_error("forward ghost count changed since borders()");
    }
  });
}

void CommP2p::reverse_forces() {
  if (!ctx_.newton) return;  // full lists never accumulate ghost forces
  md::Atoms& atoms = *ctx_.atoms;
  const RankAddresses& mine = book_->of(ctx_.rank);

  // Send: the ghost block of the force array is contiguous, so the put
  // reads straight out of the registered array — zero-copy (Fig. 9b).
  for_dirs(recv_dirs_, [&](int u) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const int tag = opposite(u);
    const int slot = st.ring_slot_out++ % kRingSlots;
    const int my_slot = slot_of_dir_[static_cast<std::size_t>(u)];
    const RankAddresses& peer = book_->of(st.peer);
    const auto bytes = static_cast<std::uint64_t>(st.ghost_count) * 3 * sizeof(double);
    const Edata ed{MsgKind::kReverse, tag, slot,
                   static_cast<std::uint32_t>(st.ghost_count * 3)};
    net_->put(vcq_[static_cast<std::size_t>(my_slot)],
              peer.vcq[static_cast<std::size_t>(slot_of_dir_[static_cast<std::size_t>(tag)])],
              mine.f_stadd,
              static_cast<std::uint64_t>(st.ghost_start) * 3 * sizeof(double),
              peer.ring[static_cast<std::size_t>(tag)][static_cast<std::size_t>(slot)], 0,
              bytes, ed.encode());
    dispatch_[static_cast<std::size_t>(my_slot)].drain_tcq();
    counters_.reverse_msgs += 1;
    counters_.bytes += bytes;
  });

  // Receive: unpack-add into the atoms we sent out as ghosts.
  double* f = atoms.f();
  for_dirs(send_dirs_, [&](int d) {
    std::uint32_t n = 0;
    const std::span<const double> in = wait_payload(MsgKind::kReverse, d, &n);
    const auto& list = dir_[static_cast<std::size_t>(d)].sendlist;
    if (n != list.size() * 3) {
      throw std::logic_error("reverse payload does not match send list");
    }
    for (std::size_t k = 0; k < list.size(); ++k) {
      const int i = list[k];
      f[3 * i] += in[3 * k];
      f[3 * i + 1] += in[3 * k + 1];
      f[3 * i + 2] += in[3 * k + 2];
    }
  });
}

void CommP2p::forward(double* per_atom) {
  for_dirs(send_dirs_, [&](int d) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    std::vector<double> payload;
    payload.reserve(st.sendlist.size());
    for (const int i : st.sendlist) payload.push_back(per_atom[i]);
    put_payload(MsgKind::kScalarFwd, d, payload);
    counters_.scalar_msgs += 1;
  });
  for_dirs(recv_dirs_, [&](int u) {
    std::uint32_t n = 0;
    const std::span<const double> in = wait_payload(MsgKind::kScalarFwd, u, &n);
    DirState& st = dir_[static_cast<std::size_t>(u)];
    if (static_cast<int>(n) != st.ghost_count) {
      throw std::logic_error("scalar forward count mismatch");
    }
    std::copy(in.begin(), in.end(), per_atom + st.ghost_start);
  });
}

void CommP2p::reverse_add(double* per_atom) {
  if (!ctx_.newton) return;
  for_dirs(recv_dirs_, [&](int u) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const std::span<const double> payload(per_atom + st.ghost_start,
                                          static_cast<std::size_t>(st.ghost_count));
    put_payload(MsgKind::kScalarRev, u, payload);
    counters_.scalar_msgs += 1;
  });
  for_dirs(send_dirs_, [&](int d) {
    std::uint32_t n = 0;
    const std::span<const double> in = wait_payload(MsgKind::kScalarRev, d, &n);
    const auto& list = dir_[static_cast<std::size_t>(d)].sendlist;
    if (n != list.size()) throw std::logic_error("scalar reverse count mismatch");
    for (std::size_t k = 0; k < list.size(); ++k) per_atom[list[k]] += in[k];
  });
}

void CommP2p::exchange() {
  md::Atoms& atoms = *ctx_.atoms;
  if (atoms.nghost() != 0) {
    throw std::logic_error("exchange requires ghosts to be cleared");
  }

  // Classify leavers by destination direction on the *raw* coordinates:
  // the direction offset identifies the owner and the direction's
  // periodic shift maps the coordinate into the owner's box, so no
  // global wrap is needed (and the single-target send requires none).
  std::array<std::vector<double>, kNumDirs> outbound;
  std::vector<int> gone;
  {
    const double* x = atoms.x();
    for (int i = 0; i < atoms.nlocal(); ++i) {
      util::Int3 off{0, 0, 0};
      for (int axis = 0; axis < 3; ++axis) {
        const double v = x[3 * i + axis];
        if (v < ctx_.sub.lo[static_cast<std::size_t>(axis)]) {
          off[static_cast<std::size_t>(axis)] = -1;
        } else if (v >= ctx_.sub.hi[static_cast<std::size_t>(axis)]) {
          off[static_cast<std::size_t>(axis)] = +1;
        }
      }
      if (off == util::Int3{0, 0, 0}) continue;
      // After the global wrap, a leaver beyond the adjacent sub-box would
      // be unreachable by single-shell exchange — LAMMPS calls this a
      // lost atom; here it cannot happen while rebuilds respect the skin.
      const int d = dir_index(off);
      const util::Vec3 p = atoms.pos(i) + dir_[static_cast<std::size_t>(d)].shift;
      const util::Vec3 v = atoms.vel(i);
      outbound[static_cast<std::size_t>(d)].insert(
          outbound[static_cast<std::size_t>(d)].end(),
          {p.x, p.y, p.z, v.x, v.y, v.z, tag_to_double(atoms.tag(i))});
      gone.push_back(i);
    }
  }
  atoms.remove_locals(gone);

  // All 26 channels fire every rebuild (possibly empty) so the expected
  // message counts stay deterministic.
  static const std::vector<int> all26 = [] {
    std::vector<int> v(kNumDirs);
    for (int d = 0; d < kNumDirs; ++d) v[static_cast<std::size_t>(d)] = d;
    return v;
  }();
  for_dirs(all26, [&](int d) {
    put_payload(MsgKind::kExchange, d, outbound[static_cast<std::size_t>(d)]);
    counters_.exchange_msgs += 1;
  });
  // Collect counts in parallel, append serially (deterministic order).
  std::array<std::pair<std::uint32_t, int>, kNumDirs> incoming{};
  for_dirs(all26, [&](int u) {
    const int slot = slot_of_dir_[static_cast<std::size_t>(u)];
    const Edata e = dispatch_[static_cast<std::size_t>(slot)].wait(MsgKind::kExchange, u);
    incoming[static_cast<std::size_t>(u)] = {e.value, e.slot};
  });
  for (const int u : all26) {
    const auto [raw, slot] = incoming[static_cast<std::size_t>(u)];
    const int n = static_cast<int>(raw / 7);
    const double* ring =
        rings_[static_cast<std::size_t>(u)][static_cast<std::size_t>(slot)].as_doubles();
    for (int k = 0; k < n; ++k) {
      atoms.add_local({ring[7 * k], ring[7 * k + 1], ring[7 * k + 2]},
                      {ring[7 * k + 3], ring[7 * k + 4], ring[7 * k + 5]},
                      double_to_tag(ring[7 * k + 6]));
    }
  }
}

}  // namespace lmp::comm
