#pragma once

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/decomposition.h"
#include "md/atoms.h"
#include "md/potential.h"
#include "util/stats.h"

namespace lmp::comm {

/// Everything a communication implementation needs to know about its
/// rank's place in the world. Owned by the per-rank Simulation.
struct CommContext {
  const geom::Decomposition* decomp = nullptr;
  int rank = 0;
  md::Atoms* atoms = nullptr;
  geom::Box sub;           ///< this rank's sub-box
  geom::Box global;        ///< full periodic box
  double ghost_cutoff = 0; ///< cutoff + skin
  bool newton = true;
  double density = 0;      ///< number density, for buffer upper bounds
};

/// Per-run communication counters (tests + ablation benches).
struct CommCounters {
  std::uint64_t border_msgs = 0;
  std::uint64_t forward_msgs = 0;
  std::uint64_t reverse_msgs = 0;
  std::uint64_t scalar_msgs = 0;
  std::uint64_t exchange_msgs = 0;
  std::uint64_t bytes = 0;
};

/// Abstract ghost-region communication — one implementation per paper
/// variant (Ref MPI 3-stage, uTofu 3-stage, coarse p2p, fine-grained
/// parallel p2p). The Simulation calls these in the LAMMPS verlet order:
///
///   rebuild step:  exchange() -> borders() -> neighbor build
///   other steps:   forward_positions()
///   after force:   reverse_forces()            (Newton only)
///   mid-EAM:       reverse_add() / forward()   (GhostDataComm)
class Comm : public md::GhostDataComm {
 public:
  explicit Comm(const CommContext& ctx) : ctx_(ctx) {}

  /// Collective setup: size and register buffers, publish addresses.
  /// Must be called once on every rank before any other operation.
  virtual void setup() = 0;

  /// Migrate owned atoms that left the sub-box to their new owners.
  /// Pre-condition: no ghosts present.
  virtual void exchange() = 0;

  /// Rebuild ghost atoms and the send lists (border stage).
  virtual void borders() = 0;

  /// Push updated owner positions into all ghost copies.
  virtual void forward_positions() = 0;

  // --- split forward exchange (asynchronous step runtime) ---------------
  //
  // forward_begin() issues this step's sends, forward_complete(ch)
  // blocks until receive channel `ch`'s ghost block has landed. The step
  // DAG calls forward_begin() first, then overlaps interior force tasks
  // with one forward_complete() per entry of forward_channels(); border
  // tasks reading a direction depend on that direction's completion.
  //
  // Eager implementations (blocking sendrecv loops, where send and
  // receive cannot be separated) keep the defaults: forward_begin() runs
  // the whole exchange and forward_complete() is a no-op, with
  // forward_channels() empty — the DAG then simply gates every border
  // task on the forward node. forward_begin() + forward_complete(ch) for
  // every listed channel must be exactly equivalent to
  // forward_positions(), counters included.

  /// Start the forward exchange (send side; eager default: all of it).
  virtual void forward_begin() { forward_positions(); }

  /// Complete one receive channel started by forward_begin().
  virtual void forward_complete(int /*ch*/) {}

  /// Receive channels forward_complete() must be called for, in the
  /// canonical (serial) completion order. Empty for eager implementations.
  virtual const std::vector<int>& forward_channels() const {
    static const std::vector<int> kNone;
    return kNone;
  }

  /// Exclusivity key for a channel's completion: completions sharing a
  /// key consume the same underlying queue (e.g. one VCQ's dispatcher)
  /// and must not run concurrently — the DAG chains them in
  /// forward_channels() order. Distinct keys may complete in parallel.
  virtual int forward_channel_key(int ch) const { return ch; }

  /// Send forces accumulated on ghosts back to their owners and add them.
  virtual void reverse_forces() = 0;

  const CommCounters& counters() const { return counters_; }
  const CommContext& context() const { return ctx_; }

  /// Reliability/degradation summary for this rank's comm. The default
  /// (all-zero) report is right for implementations without a reliability
  /// layer (reference MPI, plain uTofu brick).
  virtual util::CommHealthReport health() const { return {}; }

 protected:
  CommContext ctx_;
  CommCounters counters_;
};

}  // namespace lmp::comm
