#pragma once

#include <array>
#include <memory>
#include <vector>

#include "comm/border_bins.h"
#include "comm/comm_base.h"
#include "comm/directions.h"
#include "comm/msg_codec.h"
#include "minimpi/world.h"

namespace lmp::comm {

/// The *naive MPI p2p* implementation of Fig. 6: the peer-to-peer
/// pattern (13/26 direct neighbor messages, Newton-halved ghost volume)
/// but spoken over the two-sided MPI stack instead of uTofu one-sided
/// primitives. The paper measures this variant to show that the pattern
/// alone is not enough — on 65K and 1.7M atoms it *loses* to MPI-3-stage
/// because of the per-message software overhead, which is what motivates
/// the uTofu rewrite (Sec. 3.2).
///
/// Functionally it must of course produce the same trajectory as every
/// other variant; the integration tests hold it to that.
class CommP2pMpi final : public Comm {
 public:
  CommP2pMpi(const CommContext& ctx, minimpi::World& world);

  void setup() override;
  void exchange() override;
  void borders() override;
  void forward_positions() override;
  void reverse_forces() override;

  // md::GhostDataComm (EAM mid-pair scalar comm)
  void forward(double* per_atom) override;
  void reverse_add(double* per_atom) override;

 private:
  struct DirState {
    int peer = -1;
    util::Vec3 shift;
    std::vector<int> sendlist;
    int ghost_start = 0;
    int ghost_count = 0;
  };

  int tag_for(MsgKind kind, int receiver_dir) const {
    return static_cast<int>(kind) * 32 + receiver_dir;
  }
  void build_sendlists();

  minimpi::World* world_;
  std::vector<int> send_dirs_;
  std::vector<int> recv_dirs_;
  std::array<DirState, kNumDirs> dir_{};
  bool bins_active_ = false;
  std::unique_ptr<BorderBins> bins_;
};

}  // namespace lmp::comm
