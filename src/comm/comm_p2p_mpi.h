#pragma once

#include <array>
#include <vector>

#include "comm/comm_base.h"
#include "comm/directions.h"
#include "comm/ghost_plan.h"
#include "comm/msg_codec.h"
#include "minimpi/world.h"

namespace lmp::comm {

/// The *naive MPI p2p* implementation of Fig. 6: the peer-to-peer
/// pattern (13/26 direct neighbor messages, Newton-halved ghost volume)
/// but spoken over the two-sided MPI stack instead of uTofu one-sided
/// primitives. The paper measures this variant to show that the pattern
/// alone is not enough — on 65K and 1.7M atoms it *loses* to MPI-3-stage
/// because of the per-message software overhead, which is what motivates
/// the uTofu rewrite (Sec. 3.2).
///
/// Functionally it must of course produce the same trajectory as every
/// other variant; the integration tests hold it to that. The pattern
/// itself (channels, shifts, send lists, migration) lives in the shared
/// GhostPlan; this class only moves the payloads over minimpi.
class CommP2pMpi final : public Comm {
 public:
  CommP2pMpi(const CommContext& ctx, minimpi::World& world);

  void setup() override;
  void exchange() override;
  void borders() override;
  void forward_positions() override;
  void reverse_forces() override;

  // md::GhostDataComm (EAM mid-pair scalar comm)
  void forward(double* per_atom) override;
  void reverse_add(double* per_atom) override;

 private:
  int tag_for(MsgKind kind, int receiver_dir) const {
    return static_cast<int>(kind) * 32 + receiver_dir;
  }
  void send_payload(MsgKind kind, int dir, const std::vector<double>& payload);
  std::vector<double> recv_payload(MsgKind kind, int dir);

  minimpi::World* world_;
  GhostPlan plan_;
};

}  // namespace lmp::comm
