#include "comm/load_balance.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lmp::comm {

namespace {
double cost_of(const CommTask& t, double hop_penalty) {
  return t.bytes + hop_penalty * t.hops;
}
}  // namespace

std::vector<int> balance_tasks(const std::vector<CommTask>& tasks, int nthreads,
                               double hop_penalty_bytes) {
  if (nthreads < 1) throw std::invalid_argument("nthreads must be >= 1");
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cost_of(tasks[a], hop_penalty_bytes) > cost_of(tasks[b], hop_penalty_bytes);
  });

  std::vector<double> load(static_cast<std::size_t>(nthreads), 0.0);
  std::vector<int> assign(tasks.size(), 0);
  for (const std::size_t i : order) {
    const auto t = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assign[i] = t;
    load[static_cast<std::size_t>(t)] += cost_of(tasks[i], hop_penalty_bytes);
  }
  return assign;
}

std::vector<int> round_robin(const std::vector<CommTask>& tasks, int nthreads) {
  if (nthreads < 1) throw std::invalid_argument("nthreads must be >= 1");
  std::vector<int> assign(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    assign[i] = static_cast<int>(i) % nthreads;
  }
  return assign;
}

double makespan(const std::vector<CommTask>& tasks,
                const std::vector<int>& assignment, int nthreads,
                double hop_penalty_bytes) {
  if (assignment.size() != tasks.size()) {
    throw std::invalid_argument("assignment size mismatch");
  }
  std::vector<double> load(static_cast<std::size_t>(nthreads), 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    load.at(static_cast<std::size_t>(assignment[i])) +=
        cost_of(tasks[i], hop_penalty_bytes);
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace lmp::comm
