#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "comm/directions.h"
#include "tofu/network.h"

namespace lmp::comm {

/// Number of round-robin receive buffers per neighbor direction. The
/// paper (Sec. 3.4, Fig. 10) determined that four buffers suffice for no
/// two in-flight stages to collide on one buffer.
inline constexpr int kRingSlots = 4;

/// Everything one rank publishes about itself during the setup stage
/// (paper Fig. 10: "all the registered addresses of receive buffers and
/// atom position arrays are sent to neighbors"): STADDs of the position
/// and force arrays, its VCQ ids per TNI, and the ring-buffer STADDs per
/// incoming direction.
struct RankAddresses {
  tofu::Stadd x_stadd = 0;
  tofu::Stadd f_stadd = 0;
  std::array<tofu::VcqId, 6> vcq{tofu::kInvalidVcq, tofu::kInvalidVcq,
                                 tofu::kInvalidVcq, tofu::kInvalidVcq,
                                 tofu::kInvalidVcq, tofu::kInvalidVcq};
  std::array<std::array<tofu::Stadd, kRingSlots>, kNumDirs> ring{};
  std::size_t ring_bytes = 0;
};

/// Shared, rank-indexed address directory. Every rank fills `mine()`
/// during setup; a collective barrier then makes `of()` safe to read.
/// (In the real system this exchange is a set of small bootstrap
/// messages; the shared structure models its result.)
class AddressBook {
 public:
  explicit AddressBook(int nranks) : entries_(static_cast<std::size_t>(nranks)) {}

  RankAddresses& mine(int rank) { return entries_[static_cast<std::size_t>(rank)]; }
  const RankAddresses& of(int rank) const {
    return entries_[static_cast<std::size_t>(rank)];
  }
  int nranks() const { return static_cast<int>(entries_.size()); }

 private:
  std::vector<RankAddresses> entries_;
};

}  // namespace lmp::comm
