#pragma once

#include <array>

#include "geom/decomposition.h"
#include "util/vec3.h"

namespace lmp::comm {

using util::Int3;

/// The 26 single-shell neighbor directions in a fixed global enumeration
/// (z outermost, then y, then x — matching geom::Decomposition::neighbors).
/// Every message in the p2p engine is keyed by this direction index, so
/// all ranks agree on channel identities without per-rank negotiation.
inline constexpr int kNumDirs = 26;

const std::array<Int3, kNumDirs>& all_dirs();

/// Index of an offset in all_dirs(); throws for {0,0,0} or out of range.
int dir_index(const Int3& offset);

/// Index of the opposite direction (-offset).
int opposite(int dir);

/// True if the direction lies in the "upper" half-shell (ghost-receiving
/// side under Newton's 3rd law, paper Fig. 5).
bool is_upper(int dir);

/// Classify the direction: 1 = face, 2 = edge, 3 = corner (also equals
/// the logical-torus hop count of Table 1).
int dir_order(int dir);

}  // namespace lmp::comm
