#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "comm/msg_codec.h"
#include "obs/alloc_tracker.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "tofu/network.h"

namespace lmp::comm {

namespace detail {
/// Wait-latency histogram, resolved once (registry lookups lock).
inline obs::Histogram& notice_wait_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::instance().histogram("comm.wait_ns");
  return h;
}

/// Static-storage span name per awaited channel kind (TraceSpan keeps the
/// pointer; the "wait." prefix is what the critical-path analyzer keys on).
inline const char* wait_span_name(MsgKind k) {
  switch (k) {
    case MsgKind::kBorder: return "wait.border";
    case MsgKind::kBorderAck: return "wait.border_ack";
    case MsgKind::kForward: return "wait.forward";
    case MsgKind::kReverse: return "wait.reverse";
    case MsgKind::kScalarFwd: return "wait.scalar_fwd";
    case MsgKind::kScalarRev: return "wait.scalar_rev";
    case MsgKind::kExchange: return "wait.exchange";
    case MsgKind::kRetransmitReq: return "wait.retransmit_req";
    default: return "wait.?";
  }
}
}  // namespace detail

inline constexpr int kKindCount = static_cast<int>(MsgKind::kCount);
inline constexpr int kMaxDirs = 26;

/// Knobs of the receiver-driven reliability protocol (active only when
/// `NoticeDispatcher::enable_reliability` has been called).
struct ReliabilityParams {
  /// Hard ceiling on one logical wait; past it, CommTimeoutError.
  std::chrono::milliseconds wait_deadline{120000};
  /// First NACK after this long without the awaited notice...
  std::chrono::milliseconds nack_after{2};
  /// ...then exponential backoff up to this cap.
  std::chrono::milliseconds nack_max{256};
};

/// Receiver-side reliability counters (per dispatcher; summed per rank).
///
/// Copy and assignment take relaxed snapshots of the atomics. Two
/// distinct situations rely on this: dispatchers are *assigned* into
/// their slot vector during setup (the implicit move falls back to this
/// copy), and `health()` snapshots the counters during failover teardown
/// while the owner thread may still be incrementing them — a plain
/// non-atomic copy there would be a data race.
struct DispatcherCounters {
  std::atomic<std::uint64_t> duplicates_dropped{0};

  DispatcherCounters() = default;
  DispatcherCounters(const DispatcherCounters& o)
      : duplicates_dropped(
            o.duplicates_dropped.load(std::memory_order_relaxed)) {}
  DispatcherCounters& operator=(const DispatcherCounters& o) {
    duplicates_dropped.store(
        o.duplicates_dropped.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }
};

/// Orders the completion notices of one VCQ.
///
/// Notices for different logical channels can interleave on a VCQ (a fast
/// neighbor's forward for step n+1 can land while we still collect
/// reverse notices for step n). The engine's stage ordering guarantees at
/// most ONE outstanding message per (kind, direction, sender), so a
/// single stash slot per (kind, direction) suffices to reorder.
///
/// With reliability enabled (fault-injected runs), the dispatcher also
/// tracks per-channel sequence numbers: stale or duplicate notices are
/// dropped, and a wait that stalls issues NACKs (via the `NackFn`
/// callback, with exponential backoff) asking the sender to replay the
/// missing message. Sequence numbers are 8-bit with wraparound compare —
/// the one-outstanding invariant keeps the window tiny.
///
/// Exactly one thread drives a given dispatcher (it owns the VCQ).
class NoticeDispatcher {
 public:
  /// Called when the awaited (kind, dir) notice is overdue.
  using NackFn = std::function<void(MsgKind kind, int dir)>;

  NoticeDispatcher() { reset_seq(); }
  NoticeDispatcher(tofu::Network* net, tofu::VcqId vcq) : net_(net), vcq_(vcq) {
    reset_seq();
  }

  tofu::VcqId vcq() const { return vcq_; }

  void enable_reliability(NackFn nack, ReliabilityParams params = {}) {
    nack_ = std::move(nack);
    params_ = params;
    reliable_ = true;
  }
  bool reliable() const { return reliable_; }
  void set_wait_deadline(std::chrono::milliseconds d) {
    params_.wait_deadline = d;
  }
  const DispatcherCounters& counters() const { return counters_; }

  /// Re-admit a replay of the last-seen message on (kind, dir): called
  /// after a CRC reject, whose retransmit re-uses the rejected seq.
  void accept_retransmit(MsgKind kind, int dir) {
    auto& last = last_seq_[static_cast<int>(kind)][dir];
    last = static_cast<std::uint8_t>(last - 1);
  }

  /// Sequence number the next (kind, dir) message should carry — what a
  /// NACK asks the sender to replay. Senders start their channels at 1,
  /// so last+1 is right even before the first delivery.
  std::uint8_t expected_seq(MsgKind kind, int dir) const {
    return static_cast<std::uint8_t>(last_seq_[static_cast<int>(kind)][dir] + 1);
  }

  /// Block until a notice with (kind, dir) is available; stash everything
  /// else that arrives meanwhile. Throws CommTimeoutError (naming the
  /// VCQ and channel) once `wait_deadline` is exceeded, and
  /// JobAbortedError as soon as the fabric is aborted by a failing rank.
  Edata wait(MsgKind kind, int dir) {
    // The notice-wait span: what the sender's flow-start visually binds
    // to once the flow-finish below lands inside it. The matching alloc
    // scope pins any heap traffic during the wait (stash bookkeeping,
    // late registrations) on the same per-channel label.
    const obs::TraceSpan wait_span(obs::TraceCat::kComm,
                                   detail::wait_span_name(kind));
    LMP_ALLOC_SCOPE(detail::wait_span_name(kind));
    auto& slot = stash_[static_cast<int>(kind)][dir];
    if (slot) {
      const Edata e = slot->e;
      if (slot->flow != 0) {
        LMP_TRACE_FLOW(obs::TraceCat::kComm, obs::kMsgFlowName, slot->flow,
                       obs::TraceEvent::kFlowFinish);
      }
      slot.reset();
      return e;
    }
    const auto start = std::chrono::steady_clock::now();
    const std::int64_t wait_t0 = obs::metrics_enabled() ? obs::now_ns() : 0;
    auto backoff = params_.nack_after;
    std::chrono::steady_clock::duration next_nack = params_.nack_after;
    for (std::uint64_t spin = 0;; ++spin) {
      if (auto notice = net_->poll_mrq(vcq_)) {
        const Edata e = Edata::decode(notice->edata);
        if (reliable_ && stale_or_dup(e)) {
          counters_.duplicates_dropped.fetch_add(1, std::memory_order_relaxed);
          LMP_TRACE_INSTANT(obs::TraceCat::kComm, "notice.dup_dropped");
          continue;
        }
        if (e.kind == kind && e.dir == dir) {
          bump_seq(e);
          if (obs::metrics_enabled()) {
            detail::notice_wait_hist().record(
                static_cast<std::uint64_t>(obs::now_ns() - wait_t0));
          }
          if (notice->flow_id != 0) {
            LMP_TRACE_FLOW(obs::TraceCat::kComm, obs::kMsgFlowName,
                           notice->flow_id, obs::TraceEvent::kFlowFinish);
          }
          return e;
        }
        auto& other = stash_[static_cast<int>(e.kind)][e.dir];
        if (other) {
          if (reliable_ && other->e.seq == e.seq) {
            // Same message delivered twice with the stash still full —
            // a duplicate that raced past the seq filter via the stash.
            counters_.duplicates_dropped.fetch_add(1,
                                                   std::memory_order_relaxed);
            LMP_TRACE_INSTANT(obs::TraceCat::kComm, "notice.dup_dropped");
            continue;
          }
          throw std::logic_error(
              "two outstanding messages on one (kind, dir) channel — stage "
              "ordering violated");
        }
        bump_seq(e);
        other = Stashed{e, notice->flow_id};
        continue;
      }
      if ((spin & 0x3FF) == 0) {
        // A fabric abort (failover teardown) must unblock this wait
        // promptly — with NACK backoff in flight, spinning out the full
        // deadline against a peer that is already gone would stall every
        // surviving rank for minutes.
        net_->check_aborted();
        const auto waited = std::chrono::steady_clock::now() - start;
        if (waited >= params_.wait_deadline) {
          std::ostringstream os;
          os << "timeout after " << params_.wait_deadline.count()
             << " ms waiting for " << kind_name(kind) << " notice, dir " << dir
             << ", on VCQ " << vcq_;
          throw tofu::CommTimeoutError(os.str());
        }
        if (reliable_ && nack_ && waited >= next_nack) {
          LMP_TRACE_INSTANT(obs::TraceCat::kComm, "nack.issued");
          nack_(kind, dir);
          backoff = (std::min)(backoff * 2, params_.nack_max);
          next_nack = waited + backoff;
        }
      }
      std::this_thread::yield();
    }
  }

  /// Drain the sender-side completion of the most recent put (models the
  /// TCQ poll a real uTofu sender performs before reusing its buffer).
  void drain_tcq() { net_->wait_tcq(vcq_, params_.wait_deadline); }

 private:
  /// Signed wraparound compare: seq at or behind the last accepted one on
  /// this channel means duplicate or stale (e.g. a delayed original whose
  /// replay already arrived).
  bool stale_or_dup(const Edata& e) const {
    const std::uint8_t last = last_seq_[static_cast<int>(e.kind)][e.dir];
    if (!seq_seen_[static_cast<int>(e.kind)][e.dir]) return false;
    return static_cast<std::int8_t>(e.seq - last) <= 0;
  }
  void bump_seq(const Edata& e) {
    if (!reliable_) return;
    last_seq_[static_cast<int>(e.kind)][e.dir] = e.seq;
    seq_seen_[static_cast<int>(e.kind)][e.dir] = true;
  }
  void reset_seq() {
    for (int k = 0; k < kKindCount; ++k) {
      for (int d = 0; d < kMaxDirs; ++d) {
        last_seq_[k][d] = 0;
        seq_seen_[k][d] = false;
      }
    }
  }

  /// A reordered notice parked for a later wait, with the trace flow id
  /// that arrived alongside it (closed when the wait consumes it).
  struct Stashed {
    Edata e;
    std::uint64_t flow = 0;
  };

  tofu::Network* net_ = nullptr;
  tofu::VcqId vcq_ = tofu::kInvalidVcq;
  std::optional<Stashed> stash_[kKindCount][kMaxDirs] = {};
  std::uint8_t last_seq_[kKindCount][kMaxDirs];
  bool seq_seen_[kKindCount][kMaxDirs];
  bool reliable_ = false;
  NackFn nack_;
  ReliabilityParams params_{};
  DispatcherCounters counters_;
};

}  // namespace lmp::comm
