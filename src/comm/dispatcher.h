#pragma once

#include <optional>
#include <stdexcept>
#include <thread>

#include "comm/msg_codec.h"
#include "tofu/network.h"

namespace lmp::comm {

inline constexpr int kKindCount = static_cast<int>(MsgKind::kCount);
inline constexpr int kMaxDirs = 26;

/// Orders the completion notices of one VCQ.
///
/// Notices for different logical channels can interleave on a VCQ (a fast
/// neighbor's forward for step n+1 can land while we still collect
/// reverse notices for step n). The engine's stage ordering guarantees at
/// most ONE outstanding message per (kind, direction, sender), so a
/// single stash slot per (kind, direction) suffices to reorder.
///
/// Exactly one thread drives a given dispatcher (it owns the VCQ).
class NoticeDispatcher {
 public:
  NoticeDispatcher() = default;
  NoticeDispatcher(tofu::Network* net, tofu::VcqId vcq) : net_(net), vcq_(vcq) {}

  tofu::VcqId vcq() const { return vcq_; }

  /// Block until a notice with (kind, dir) is available; stash everything
  /// else that arrives meanwhile.
  Edata wait(MsgKind kind, int dir) {
    auto& slot = stash_[static_cast<int>(kind)][dir];
    if (slot) {
      const Edata e = *slot;
      slot.reset();
      return e;
    }
    for (;;) {
      if (auto notice = net_->poll_mrq(vcq_)) {
        const Edata e = Edata::decode(notice->edata);
        if (e.kind == kind && e.dir == dir) return e;
        auto& other = stash_[static_cast<int>(e.kind)][e.dir];
        if (other) {
          throw std::logic_error(
              "two outstanding messages on one (kind, dir) channel — stage "
              "ordering violated");
        }
        other = e;
      } else {
        std::this_thread::yield();
      }
    }
  }

  /// Drain the sender-side completion of the most recent put (models the
  /// TCQ poll a real uTofu sender performs before reusing its buffer).
  void drain_tcq() { net_->wait_tcq(vcq_); }

 private:
  tofu::Network* net_ = nullptr;
  tofu::VcqId vcq_ = tofu::kInvalidVcq;
  std::optional<Edata> stash_[kKindCount][kMaxDirs] = {};
};

}  // namespace lmp::comm
