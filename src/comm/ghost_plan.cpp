#include "comm/ghost_plan.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace lmp::comm {

namespace {

/// THE periodic-shift computation: the shift a payload crossing from
/// `me` toward `me + offset` must add so its coordinates land in the
/// receiver's frame. Wraps once around the torus in each axis.
util::Vec3 periodic_shift(const geom::Decomposition& decomp,
                          const util::Int3& me, const util::Int3& offset,
                          const util::Vec3& extent) {
  util::Vec3 shift;
  for (int axis = 0; axis < 3; ++axis) {
    const int c = me[static_cast<std::size_t>(axis)] +
                  offset[static_cast<std::size_t>(axis)];
    if (c < 0) {
      shift[static_cast<std::size_t>(axis)] = extent[static_cast<std::size_t>(axis)];
    } else if (c >= decomp.grid()[static_cast<std::size_t>(axis)]) {
      shift[static_cast<std::size_t>(axis)] = -extent[static_cast<std::size_t>(axis)];
    }
  }
  return shift;
}

void check_thickness(const geom::Box& sub, double rc, const char* scheme) {
  const util::Vec3 e = sub.extent();
  for (int axis = 0; axis < 3; ++axis) {
    if (e[static_cast<std::size_t>(axis)] < rc) {
      throw std::invalid_argument(
          std::string("sub-box thinner than the ghost cutoff: single-shell ") +
          scheme + " comm cannot cover the stencil");
    }
  }
}

}  // namespace

GhostPlan GhostPlan::staged(const CommContext& ctx) {
  GhostPlan plan;
  plan.scheme_ = Scheme::kStaged;
  plan.sub_ = ctx.sub;
  plan.global_ = ctx.global;
  plan.rc_ = ctx.ghost_cutoff;
  check_thickness(plan.sub_, plan.rc_, "3-stage");

  const auto& decomp = *ctx.decomp;
  const util::Int3 me = decomp.coord_of(ctx.rank);
  const util::Vec3 extent = ctx.global.extent();
  plan.ch_.resize(6);
  for (int c = 0; c < 6; ++c) {
    const int d = c / 2;
    const int step = c % 2 == 0 ? -1 : +1;
    util::Int3 off{0, 0, 0};
    off[static_cast<std::size_t>(d)] = step;
    util::Int3 to = me;
    to[static_cast<std::size_t>(d)] += step;
    util::Int3 from = me;
    from[static_cast<std::size_t>(d)] -= step;
    Channel& ch = plan.ch_[static_cast<std::size_t>(c)];
    ch.send_peer = decomp.rank_of(to);
    ch.recv_peer = decomp.rank_of(from);
    ch.shift = periodic_shift(decomp, me, off, extent);
    plan.send_channels_.push_back(c);
    plan.recv_channels_.push_back(c);
  }

  // Upper bound for one channel: the widest slab is the z stage, which
  // carries the x- and y-ghosts too: (ex+2rc)(ey+2rc)*rc atoms' worth.
  const util::Vec3 sub = ctx.sub.extent();
  const double rc = ctx.ghost_cutoff;
  const double slab = (sub.x + 2 * rc) * (sub.y + 2 * rc) * rc;
  plan.max_channel_atoms_ =
      static_cast<std::size_t>(slab * ctx.density * 2.0) + 64;
  plan.max_payload_doubles_ = plan.max_channel_atoms_ * 8;
  return plan;
}

GhostPlan GhostPlan::p2p(const CommContext& ctx, bool use_border_bins) {
  GhostPlan plan;
  plan.scheme_ = Scheme::kP2p;
  plan.sub_ = ctx.sub;
  plan.global_ = ctx.global;
  plan.rc_ = ctx.ghost_cutoff;
  check_thickness(plan.sub_, plan.rc_, "p2p");

  const auto& decomp = *ctx.decomp;
  const util::Int3 me = decomp.coord_of(ctx.rank);
  const util::Vec3 extent = ctx.global.extent();
  const auto& dirs = all_dirs();
  plan.ch_.resize(kNumDirs);
  for (int d = 0; d < kNumDirs; ++d) {
    // Newton on halves the exchange (Fig. 5): ghosts travel only to the
    // lower 13 neighbors and arrive only from the upper 13.
    if (!ctx.newton || !is_upper(d)) plan.send_channels_.push_back(d);
    if (!ctx.newton || is_upper(d)) plan.recv_channels_.push_back(d);
    const util::Int3 o = dirs[static_cast<std::size_t>(d)];
    Channel& ch = plan.ch_[static_cast<std::size_t>(d)];
    ch.send_peer = decomp.rank_of(me + o);
    ch.recv_peer = ch.send_peer;  // channel d receives from the d-neighbor
    ch.shift = periodic_shift(decomp, me, o, extent);
  }

  // Pre-registration bound (Sec. 3.4): the face slab is the largest
  // ghost class; +8 doubles of framing margin for ring transports.
  const util::Vec3 sub = ctx.sub.extent();
  const double rc = ctx.ghost_cutoff;
  const double face_vol =
      std::max({sub.x * sub.y, sub.y * sub.z, sub.x * sub.z}) * rc;
  plan.max_channel_atoms_ =
      static_cast<std::size_t>(face_vol * ctx.density * 2.0) + 64;
  plan.max_payload_doubles_ = plan.max_channel_atoms_ * 8 + 8;

  if (use_border_bins && BorderBins::applicable(ctx.sub, rc)) {
    plan.bins_ =
        std::make_unique<BorderBins>(ctx.sub, rc, plan.send_channels_);
  }
  return plan;
}

void GhostPlan::select_staged(int ch, const md::Atoms& atoms, int scan_end) {
  Channel& c = ch_[static_cast<std::size_t>(ch)];
  c.sendlist.clear();
  const int d = ch / 2;
  const double* x = atoms.x();
  if (ch % 2 == 0) {
    const double bound = sub_.lo[static_cast<std::size_t>(d)] + rc_;
    for (int i = 0; i < scan_end; ++i) {
      if (x[3 * i + d] < bound) c.sendlist.push_back(i);
    }
  } else {
    const double bound = sub_.hi[static_cast<std::size_t>(d)] - rc_;
    for (int i = 0; i < scan_end; ++i) {
      if (x[3 * i + d] > bound) c.sendlist.push_back(i);
    }
  }
}

void GhostPlan::build_send_lists(const md::Atoms& atoms) {
  for (const int d : send_channels_) {
    ch_[static_cast<std::size_t>(d)].sendlist.clear();
  }
  for (int i = 0; i < atoms.nlocal(); ++i) {
    const util::Vec3 p = atoms.pos(i);
    if (bins_ != nullptr) {
      for (const int d : bins_->targets(p)) {
        ch_[static_cast<std::size_t>(d)].sendlist.push_back(i);
      }
    } else {
      for (const int d :
           BorderBins::targets_naive(sub_, rc_, send_channels_, p)) {
        ch_[static_cast<std::size_t>(d)].sendlist.push_back(i);
      }
    }
  }
}

int GhostPlan::axis_offset(const double* x, int i, int axis) const {
  const double v = x[3 * i + axis];
  if (v < sub_.lo[static_cast<std::size_t>(axis)]) return -1;
  if (v >= sub_.hi[static_cast<std::size_t>(axis)]) return +1;
  return 0;
}

std::vector<int> GhostPlan::migrants_along(const md::Atoms& atoms,
                                           int axis) const {
  std::vector<int> gone;
  const double* x = atoms.x();
  for (int i = 0; i < atoms.nlocal(); ++i) {
    if (axis_offset(x, i, axis) != 0) gone.push_back(i);
  }
  return gone;
}

MigrationPlan GhostPlan::classify_migrants(const md::Atoms& atoms) const {
  MigrationPlan mig;
  const double* x = atoms.x();
  for (int i = 0; i < atoms.nlocal(); ++i) {
    util::Int3 off{0, 0, 0};
    for (int axis = 0; axis < 3; ++axis) {
      off[static_cast<std::size_t>(axis)] = axis_offset(x, i, axis);
    }
    if (off == util::Int3{0, 0, 0}) continue;
    // A leaver beyond the adjacent sub-box would be unreachable by
    // single-shell exchange — LAMMPS calls this a lost atom; here it
    // cannot happen while rebuilds respect the skin.
    mig.by_dir[static_cast<std::size_t>(dir_index(off))].push_back(i);
    mig.gone.push_back(i);
  }
  return mig;
}

void account(CommCounters& counters, MsgKind kind,
             std::size_t payload_doubles) {
  switch (kind) {
    case MsgKind::kBorder:
      counters.border_msgs += 1;
      break;
    case MsgKind::kForward:
      counters.forward_msgs += 1;
      break;
    case MsgKind::kReverse:
      counters.reverse_msgs += 1;
      break;
    case MsgKind::kScalarFwd:
    case MsgKind::kScalarRev:
      counters.scalar_msgs += 1;
      break;
    case MsgKind::kExchange:
      counters.exchange_msgs += 1;
      break;
    default:
      return;  // acks / control piggybacks carry no payload
  }
  counters.bytes += payload_doubles * sizeof(double);
}

}  // namespace lmp::comm
