#include "comm/comm_p2p_mpi.h"

#include <cstring>
#include <stdexcept>

#include "comm/comm_factory.h"
#include "comm/pack_kernels.h"

namespace lmp::comm {

CommP2pMpi::CommP2pMpi(const CommContext& ctx, minimpi::World& world)
    : Comm(ctx), world_(&world) {}

void CommP2pMpi::setup() { plan_ = GhostPlan::p2p(ctx_, /*use_border_bins=*/true); }

void CommP2pMpi::send_payload(MsgKind kind, int dir,
                              const std::vector<double>& payload) {
  world_->send(ctx_.rank, plan_.send_peer(dir), tag_for(kind, opposite(dir)),
               std::as_bytes(std::span<const double>(payload)));
  account(counters_, kind, payload.size());
}

std::vector<double> CommP2pMpi::recv_payload(MsgKind kind, int dir) {
  const std::vector<std::byte> raw =
      world_->recv(ctx_.rank, plan_.recv_peer(dir), tag_for(kind, dir));
  std::vector<double> out(raw.size() / sizeof(double));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

void CommP2pMpi::borders() {
  md::Atoms& atoms = *ctx_.atoms;
  atoms.clear_ghosts();
  plan_.build_send_lists(atoms);

  for (const int d : plan_.send_channels()) {
    send_payload(MsgKind::kBorder, d,
                 pack_border(atoms, plan_.send_list(d), plan_.shift(d)));
  }
  for (const int u : plan_.recv_channels()) {
    const std::vector<double> in = recv_payload(MsgKind::kBorder, u);
    const int start = atoms.ntotal();
    const int n = unpack_border(atoms, in);
    plan_.set_ghost_block(u, start, n);
  }
}

void CommP2pMpi::forward_positions() {
  md::Atoms& atoms = *ctx_.atoms;
  double* x = atoms.x();
  for (const int d : plan_.send_channels()) {
    send_payload(MsgKind::kForward, d,
                 pack_positions(x, plan_.send_list(d), plan_.shift(d)));
  }
  for (const int u : plan_.recv_channels()) {
    const std::vector<double> in = recv_payload(MsgKind::kForward, u);
    if (static_cast<int>(in.size()) != 3 * plan_.ghost_count(u)) {
      throw std::logic_error("forward ghost count changed since borders()");
    }
    unpack_positions(x, plan_.ghost_start(u), in);
  }
}

void CommP2pMpi::reverse_forces() {
  if (!ctx_.newton) return;
  md::Atoms& atoms = *ctx_.atoms;
  double* f = atoms.f();
  for (const int u : plan_.recv_channels()) {
    const std::vector<double> payload(
        f + 3 * plan_.ghost_start(u),
        f + 3 * (plan_.ghost_start(u) + plan_.ghost_count(u)));
    send_payload(MsgKind::kReverse, u, payload);
  }
  for (const int d : plan_.send_channels()) {
    add_forces(f, plan_.send_list(d), recv_payload(MsgKind::kReverse, d));
  }
}

void CommP2pMpi::forward(double* per_atom) {
  for (const int d : plan_.send_channels()) {
    send_payload(MsgKind::kScalarFwd, d,
                 pack_scalar(per_atom, plan_.send_list(d)));
  }
  for (const int u : plan_.recv_channels()) {
    unpack_scalar(per_atom, plan_.ghost_start(u),
                  recv_payload(MsgKind::kScalarFwd, u));
  }
}

void CommP2pMpi::reverse_add(double* per_atom) {
  if (!ctx_.newton) return;
  for (const int u : plan_.recv_channels()) {
    const std::vector<double> payload(
        per_atom + plan_.ghost_start(u),
        per_atom + plan_.ghost_start(u) + plan_.ghost_count(u));
    send_payload(MsgKind::kScalarRev, u, payload);
  }
  for (const int d : plan_.send_channels()) {
    add_scalar(per_atom, plan_.send_list(d),
               recv_payload(MsgKind::kScalarRev, d));
  }
}

void CommP2pMpi::exchange() {
  md::Atoms& atoms = *ctx_.atoms;
  if (atoms.nghost() != 0) {
    throw std::logic_error("exchange requires ghosts to be cleared");
  }

  const MigrationPlan mig = plan_.classify_migrants(atoms);
  std::array<std::vector<double>, kNumDirs> outbound;
  for (int d = 0; d < kNumDirs; ++d) {
    outbound[static_cast<std::size_t>(d)] = pack_exchange(
        atoms, mig.by_dir[static_cast<std::size_t>(d)], plan_.shift(d));
  }
  atoms.remove_locals(mig.gone);

  for (int d = 0; d < kNumDirs; ++d) {
    send_payload(MsgKind::kExchange, d, outbound[static_cast<std::size_t>(d)]);
  }
  for (int u = 0; u < kNumDirs; ++u) {
    unpack_exchange(atoms, recv_payload(MsgKind::kExchange, u));
  }
}

// --- factory registration ----------------------------------------------
// Half-shell p2p ghosts keep every local-ghost pair.

namespace {

const CommRegistrar kMpiP2pRegistrar{{
    "mpi_p2p",
    "naive p2p over the MPI stack (Fig. 6's cautionary tale)",
    md::HalfRule::kAllGhosts,
    [](const CommBuildInputs& in) {
      CommInstance out;
      out.comm = std::make_unique<CommP2pMpi>(in.ctx, *in.world);
      return out;
    },
}};

}  // namespace

}  // namespace lmp::comm
