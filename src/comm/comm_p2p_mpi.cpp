#include "comm/comm_p2p_mpi.h"

#include <cstring>
#include <stdexcept>

#include "comm/msg_codec.h"

namespace lmp::comm {

namespace {

std::span<const std::byte> as_bytes(const std::vector<double>& v) {
  return std::as_bytes(std::span<const double>(v));
}

std::vector<double> as_doubles(const std::vector<std::byte>& raw) {
  std::vector<double> out(raw.size() / sizeof(double));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

}  // namespace

CommP2pMpi::CommP2pMpi(const CommContext& ctx, minimpi::World& world)
    : Comm(ctx), world_(&world) {}

void CommP2pMpi::setup() {
  const auto& decomp = *ctx_.decomp;
  const util::Int3 me = decomp.coord_of(ctx_.rank);
  const util::Vec3 extent = ctx_.global.extent();
  const auto& dirs = all_dirs();

  for (int d = 0; d < kNumDirs; ++d) {
    if (!ctx_.newton || !is_upper(d)) send_dirs_.push_back(d);
    if (!ctx_.newton || is_upper(d)) recv_dirs_.push_back(d);
    const util::Int3 o = dirs[static_cast<std::size_t>(d)];
    dir_[static_cast<std::size_t>(d)].peer = decomp.rank_of(me + o);
    util::Vec3 shift;
    for (int axis = 0; axis < 3; ++axis) {
      const int c = me[static_cast<std::size_t>(axis)] + o[static_cast<std::size_t>(axis)];
      if (c < 0) {
        shift[static_cast<std::size_t>(axis)] = extent[static_cast<std::size_t>(axis)];
      } else if (c >= decomp.grid()[static_cast<std::size_t>(axis)]) {
        shift[static_cast<std::size_t>(axis)] = -extent[static_cast<std::size_t>(axis)];
      }
    }
    dir_[static_cast<std::size_t>(d)].shift = shift;
  }

  const util::Vec3 sub = ctx_.sub.extent();
  for (int axis = 0; axis < 3; ++axis) {
    if (sub[static_cast<std::size_t>(axis)] < ctx_.ghost_cutoff) {
      throw std::invalid_argument(
          "sub-box thinner than the ghost cutoff: single-shell p2p comm "
          "cannot cover the stencil");
    }
  }

  bins_active_ = BorderBins::applicable(ctx_.sub, ctx_.ghost_cutoff);
  if (bins_active_) {
    bins_ = std::make_unique<BorderBins>(ctx_.sub, ctx_.ghost_cutoff, send_dirs_);
  }
}

void CommP2pMpi::build_sendlists() {
  md::Atoms& atoms = *ctx_.atoms;
  for (const int d : send_dirs_) dir_[static_cast<std::size_t>(d)].sendlist.clear();
  for (int i = 0; i < atoms.nlocal(); ++i) {
    const util::Vec3 p = atoms.pos(i);
    if (bins_active_) {
      for (const int d : bins_->targets(p)) {
        dir_[static_cast<std::size_t>(d)].sendlist.push_back(i);
      }
    } else {
      for (const int d : BorderBins::targets_naive(ctx_.sub, ctx_.ghost_cutoff,
                                                   send_dirs_, p)) {
        dir_[static_cast<std::size_t>(d)].sendlist.push_back(i);
      }
    }
  }
}

void CommP2pMpi::borders() {
  md::Atoms& atoms = *ctx_.atoms;
  atoms.clear_ghosts();
  build_sendlists();

  const double* x = atoms.x();
  for (const int d : send_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    std::vector<double> payload;
    payload.reserve(st.sendlist.size() * 4);
    for (const int i : st.sendlist) {
      payload.push_back(x[3 * i] + st.shift.x);
      payload.push_back(x[3 * i + 1] + st.shift.y);
      payload.push_back(x[3 * i + 2] + st.shift.z);
      payload.push_back(tag_to_double(atoms.tag(i)));
    }
    world_->send(ctx_.rank, st.peer, tag_for(MsgKind::kBorder, opposite(d)),
                 as_bytes(payload));
    counters_.border_msgs += 1;
    counters_.bytes += payload.size() * sizeof(double);
  }
  for (const int u : recv_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const std::vector<double> in = as_doubles(
        world_->recv(ctx_.rank, st.peer, tag_for(MsgKind::kBorder, u)));
    const int n = static_cast<int>(in.size() / 4);
    st.ghost_start = atoms.ntotal();
    st.ghost_count = n;
    for (int k = 0; k < n; ++k) {
      atoms.add_ghost({in[4 * k], in[4 * k + 1], in[4 * k + 2]},
                      double_to_tag(in[4 * k + 3]));
    }
  }
}

void CommP2pMpi::forward_positions() {
  md::Atoms& atoms = *ctx_.atoms;
  double* x = atoms.x();
  for (const int d : send_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    std::vector<double> payload;
    payload.reserve(st.sendlist.size() * 3);
    for (const int i : st.sendlist) {
      payload.push_back(x[3 * i] + st.shift.x);
      payload.push_back(x[3 * i + 1] + st.shift.y);
      payload.push_back(x[3 * i + 2] + st.shift.z);
    }
    world_->send(ctx_.rank, st.peer, tag_for(MsgKind::kForward, opposite(d)),
                 as_bytes(payload));
    counters_.forward_msgs += 1;
    counters_.bytes += payload.size() * sizeof(double);
  }
  for (const int u : recv_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const std::vector<double> in = as_doubles(
        world_->recv(ctx_.rank, st.peer, tag_for(MsgKind::kForward, u)));
    if (static_cast<int>(in.size()) != 3 * st.ghost_count) {
      throw std::logic_error("forward ghost count changed since borders()");
    }
    std::memcpy(x + 3 * st.ghost_start, in.data(), in.size() * sizeof(double));
  }
}

void CommP2pMpi::reverse_forces() {
  if (!ctx_.newton) return;
  md::Atoms& atoms = *ctx_.atoms;
  double* f = atoms.f();
  for (const int u : recv_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const std::vector<double> payload(f + 3 * st.ghost_start,
                                      f + 3 * (st.ghost_start + st.ghost_count));
    world_->send(ctx_.rank, st.peer, tag_for(MsgKind::kReverse, opposite(u)),
                 as_bytes(payload));
    counters_.reverse_msgs += 1;
    counters_.bytes += payload.size() * sizeof(double);
  }
  for (const int d : send_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    const std::vector<double> in = as_doubles(
        world_->recv(ctx_.rank, st.peer, tag_for(MsgKind::kReverse, d)));
    if (in.size() != st.sendlist.size() * 3) {
      throw std::logic_error("reverse payload does not match send list");
    }
    for (std::size_t k = 0; k < st.sendlist.size(); ++k) {
      const int i = st.sendlist[k];
      f[3 * i] += in[3 * k];
      f[3 * i + 1] += in[3 * k + 1];
      f[3 * i + 2] += in[3 * k + 2];
    }
  }
}

void CommP2pMpi::forward(double* per_atom) {
  for (const int d : send_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    std::vector<double> payload;
    payload.reserve(st.sendlist.size());
    for (const int i : st.sendlist) payload.push_back(per_atom[i]);
    world_->send(ctx_.rank, st.peer, tag_for(MsgKind::kScalarFwd, opposite(d)),
                 as_bytes(payload));
    counters_.scalar_msgs += 1;
  }
  for (const int u : recv_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const std::vector<double> in = as_doubles(
        world_->recv(ctx_.rank, st.peer, tag_for(MsgKind::kScalarFwd, u)));
    std::copy(in.begin(), in.end(), per_atom + st.ghost_start);
  }
}

void CommP2pMpi::reverse_add(double* per_atom) {
  if (!ctx_.newton) return;
  for (const int u : recv_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(u)];
    const std::vector<double> payload(per_atom + st.ghost_start,
                                      per_atom + st.ghost_start + st.ghost_count);
    world_->send(ctx_.rank, st.peer, tag_for(MsgKind::kScalarRev, opposite(u)),
                 as_bytes(payload));
    counters_.scalar_msgs += 1;
  }
  for (const int d : send_dirs_) {
    DirState& st = dir_[static_cast<std::size_t>(d)];
    const std::vector<double> in = as_doubles(
        world_->recv(ctx_.rank, st.peer, tag_for(MsgKind::kScalarRev, d)));
    for (std::size_t k = 0; k < st.sendlist.size(); ++k) {
      per_atom[st.sendlist[k]] += in[k];
    }
  }
}

void CommP2pMpi::exchange() {
  md::Atoms& atoms = *ctx_.atoms;
  if (atoms.nghost() != 0) {
    throw std::logic_error("exchange requires ghosts to be cleared");
  }

  std::array<std::vector<double>, kNumDirs> outbound;
  std::vector<int> gone;
  {
    const double* x = atoms.x();
    for (int i = 0; i < atoms.nlocal(); ++i) {
      util::Int3 off{0, 0, 0};
      for (int axis = 0; axis < 3; ++axis) {
        const double v = x[3 * i + axis];
        if (v < ctx_.sub.lo[static_cast<std::size_t>(axis)]) {
          off[static_cast<std::size_t>(axis)] = -1;
        } else if (v >= ctx_.sub.hi[static_cast<std::size_t>(axis)]) {
          off[static_cast<std::size_t>(axis)] = +1;
        }
      }
      if (off == util::Int3{0, 0, 0}) continue;
      const int d = dir_index(off);
      const util::Vec3 p = atoms.pos(i) + dir_[static_cast<std::size_t>(d)].shift;
      const util::Vec3 v = atoms.vel(i);
      outbound[static_cast<std::size_t>(d)].insert(
          outbound[static_cast<std::size_t>(d)].end(),
          {p.x, p.y, p.z, v.x, v.y, v.z, tag_to_double(atoms.tag(i))});
      gone.push_back(i);
    }
  }
  atoms.remove_locals(gone);

  for (int d = 0; d < kNumDirs; ++d) {
    world_->send(ctx_.rank, dir_[static_cast<std::size_t>(d)].peer,
                 tag_for(MsgKind::kExchange, opposite(d)),
                 as_bytes(outbound[static_cast<std::size_t>(d)]));
    counters_.exchange_msgs += 1;
    counters_.bytes += outbound[static_cast<std::size_t>(d)].size() * sizeof(double);
  }
  for (int u = 0; u < kNumDirs; ++u) {
    const std::vector<double> in =
        as_doubles(world_->recv(ctx_.rank, dir_[static_cast<std::size_t>(u)].peer,
                                tag_for(MsgKind::kExchange, u)));
    const int n = static_cast<int>(in.size() / 7);
    for (int k = 0; k < n; ++k) {
      atoms.add_local({in[7 * k], in[7 * k + 1], in[7 * k + 2]},
                      {in[7 * k + 3], in[7 * k + 4], in[7 * k + 5]},
                      double_to_tag(in[7 * k + 6]));
    }
  }
}

}  // namespace lmp::comm
