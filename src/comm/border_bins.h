#pragma once

#include <array>
#include <vector>

#include "geom/box.h"
#include "util/vec3.h"

namespace lmp::comm {

/// Border-bin target selection (paper Sec. 3.5.2).
///
/// To decide which neighbors a local atom must be sent to, the naive path
/// tests the atom against all 13/26 neighbor ghost slabs. Instead we cut
/// the sub-box into 3x3x3 regions with the planes `lo+rc` and `hi-rc` on
/// each axis; an atom's region determines its target-direction set with
/// three comparisons per axis. Each of the 27 regions has a precomputed
/// direction list.
///
/// Requires every sub-box side >= 2*rc so the two planes do not cross
/// (the caller falls back to the naive scan otherwise — exactly the
/// regime Fig. 15 probes, where the cutoff exceeds the sub-box).
class BorderBins {
 public:
  /// `send_dirs`: the directions this rank sends border atoms to (lower
  /// 13 with Newton on, all 26 otherwise).
  BorderBins(const geom::Box& sub_box, double rc,
             const std::vector<int>& send_dirs);

  /// True if the geometry admits binning (all sides >= 2*rc).
  static bool applicable(const geom::Box& sub_box, double rc);

  /// Directions atom position `p` must be sent to.
  const std::vector<int>& targets(const geom::Vec3& p) const;

  /// Naive reference: direction subset of `send_dirs` whose slab contains
  /// `p` (used by tests and the ablation baseline).
  static std::vector<int> targets_naive(const geom::Box& sub_box, double rc,
                                        const std::vector<int>& send_dirs,
                                        const geom::Vec3& p);

 private:
  int region_of(const geom::Vec3& p) const;

  geom::Box box_;
  double rc_;
  std::array<std::vector<int>, 27> region_targets_;
};

}  // namespace lmp::comm
