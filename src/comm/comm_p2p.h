#pragma once

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "comm/address_book.h"
#include "comm/border_bins.h"
#include "comm/comm_base.h"
#include "comm/directions.h"
#include "comm/dispatcher.h"
#include "comm/load_balance.h"
#include "threadpool/spin_pool.h"
#include "tofu/utofu.h"

namespace lmp::comm {

/// Configuration of the p2p engine — one instance per paper variant:
///
///   4tni_p2p : ntnis=4, comm_threads=1   (coarse-grained, Sec. 3.2)
///   6tni_p2p : ntnis=6, comm_threads=1   (single thread over 6 TNIs)
///   opt      : ntnis=6, comm_threads=6   (fine-grained pool, Sec. 3.3)
struct P2pOptions {
  int ntnis = 6;
  int comm_threads = 1;
  /// Border-bin target selection (Sec. 3.5.2); falls back to the naive
  /// per-neighbor slab scan when the geometry disallows bins.
  bool use_border_bins = true;
  /// Size/hop-aware thread assignment (Fig. 10) vs plain round-robin.
  bool balanced_assignment = true;
};

/// Peer-to-peer ghost communication over uTofu one-sided primitives —
/// the paper's contribution. Each rank exchanges directly with its 26
/// neighbors (13 each way under Newton's 3rd law, Fig. 5):
///
///   * border:   ghost atoms -> upper-half neighbors; ghost-offset
///               piggyback acks flow back (Sec. 3.4)
///   * forward:  packed positions RDMA-written straight into the
///               receiver's position array at the acked offset (Fig. 9a)
///   * reverse:  ghost forces put zero-copy from the registered force
///               array into the owner's round-robin ring (Fig. 9b)
///   * scalar:   EAM rho reverse-add and fp forward, mid-pair-stage
///   * exchange: migration messages to all 26 neighbors on rebuild steps
///
/// With comm_threads > 1, directions are assigned to pool threads by the
/// load balancer and each thread drives its own VCQ (one per TNI) —
/// CQ access stays single-threaded, as the hardware requires (Sec. 3.3).
class CommP2p final : public Comm {
 public:
  /// `pool` must outlive this object and have >= options.comm_threads
  /// threads when comm_threads > 1; it may be null for single-threaded
  /// variants.
  CommP2p(const CommContext& ctx, tofu::Network& net, AddressBook& book,
          const P2pOptions& options, pool::SpinThreadPool* pool = nullptr);

  void setup() override;
  void exchange() override;
  void borders() override;
  void forward_positions() override;
  void reverse_forces() override;

  // md::GhostDataComm (EAM mid-pair scalar comm)
  void forward(double* per_atom) override;
  void reverse_add(double* per_atom) override;

  const std::vector<int>& send_dirs() const { return send_dirs_; }
  const std::vector<int>& recv_dirs() const { return recv_dirs_; }
  int vcq_slot(int dir) const { return slot_of_dir_[static_cast<std::size_t>(dir)]; }
  bool using_border_bins() const { return bins_active_; }

 private:
  struct DirState {
    int peer = -1;                ///< neighbor rank for this direction
    util::Vec3 shift;             ///< periodic shift applied when sending
    std::vector<int> sendlist;    ///< my atoms ghosted at the peer
    int ghost_start = 0;          ///< first ghost index received from here
    int ghost_count = 0;
    std::uint32_t remote_offset = 0;  ///< acked ghost offset at the peer
    int ring_slot_out = 0;        ///< round-robin cursor toward the peer
    tofu::RegisteredBuffer send_buf;
  };

  /// Run fn(dir) for every dir in `dirs`, partitioned over the comm
  /// threads by the slot map (or serially for single-thread variants).
  void for_dirs(const std::vector<int>& dirs,
                const std::function<void(int)>& fn);

  void build_sendlists();
  void put_payload(MsgKind kind, int dir, std::span<const double> payload);
  std::span<const double> wait_payload(MsgKind kind, int dir,
                                       std::uint32_t* count);

  tofu::Network* net_;
  AddressBook* book_;
  P2pOptions opt_;
  pool::SpinThreadPool* pool_;

  std::unique_ptr<tofu::UtofuContext> utofu_;
  std::array<tofu::VcqId, 6> vcq_{};
  std::vector<NoticeDispatcher> dispatch_;  ///< one per VCQ
  std::array<int, kNumDirs> slot_of_dir_{};

  std::vector<int> send_dirs_;
  std::vector<int> recv_dirs_;
  std::array<DirState, kNumDirs> dir_{};
  std::array<std::array<tofu::RegisteredBuffer, kRingSlots>, kNumDirs> rings_;
  std::size_t ring_doubles_ = 0;
  bool bins_active_ = false;
  std::unique_ptr<BorderBins> bins_;
};

}  // namespace lmp::comm
