#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "comm/address_book.h"
#include "comm/comm_base.h"
#include "comm/directions.h"
#include "comm/dispatcher.h"
#include "comm/ghost_plan.h"
#include "comm/load_balance.h"
#include "threadpool/spin_pool.h"
#include "tofu/utofu.h"

namespace lmp::comm {

/// Configuration of the p2p engine — one instance per paper variant:
///
///   4tni_p2p : ntnis=4, comm_threads=1   (coarse-grained, Sec. 3.2)
///   6tni_p2p : ntnis=6, comm_threads=1   (single thread over 6 TNIs)
///   opt      : ntnis=6, comm_threads=6   (fine-grained pool, Sec. 3.3)
struct P2pOptions {
  int ntnis = 6;
  int comm_threads = 1;
  /// Border-bin target selection (Sec. 3.5.2); falls back to the naive
  /// per-neighbor slab scan when the geometry disallows bins.
  bool use_border_bins = true;
  /// Size/hop-aware thread assignment (Fig. 10) vs plain round-robin.
  bool balanced_assignment = true;
  /// Timeouts/backoff of the reliability protocol (used only when the
  /// network has a fault injector attached).
  ReliabilityParams reliability{};
};

/// Peer-to-peer ghost communication over uTofu one-sided primitives —
/// the paper's contribution. Each rank exchanges directly with its 26
/// neighbors (13 each way under Newton's 3rd law, Fig. 5):
///
///   * border:   ghost atoms -> upper-half neighbors; ghost-offset
///               piggyback acks flow back (Sec. 3.4)
///   * forward:  packed positions RDMA-written straight into the
///               receiver's position array at the acked offset (Fig. 9a)
///   * reverse:  ghost forces put zero-copy from the registered force
///               array into the owner's round-robin ring (Fig. 9b)
///   * scalar:   EAM rho reverse-add and fp forward, mid-pair-stage
///   * exchange: migration messages to all 26 neighbors on rebuild steps
///
/// The exchange *plan* (channels, peers, shifts, send lists, migration
/// classification, buffer bounds) lives in the shared GhostPlan; the
/// pack kernels write payloads straight into this driver's registered
/// send buffers (zero-copy RDMA). This class contributes only transport
/// and scheduling: VCQ striping, ring slots, piggyback acks, and the
/// reliability protocol.
///
/// With comm_threads > 1, directions are assigned to pool threads by the
/// load balancer and each thread drives its own VCQ (one per TNI) —
/// CQ access stays single-threaded, as the hardware requires (Sec. 3.3).
///
/// ## Reliability under fault injection
///
/// When the shared Network carries a FaultInjector, setup() arms a
/// receiver-driven retransmission protocol: every message is stamped
/// with a per-channel sequence number and a CRC-8 over value + payload;
/// a receiver whose wait stalls sends a `kRetransmitReq` control
/// piggyback (exponential backoff) naming the channel and the expected
/// sequence number, and the sender's *progress thread* — the analogue
/// of Fugaku's assistant cores — replays the pending message from a
/// stable registered copy. Duplicates and stale deliveries are filtered
/// by sequence number; corrupted payloads are CRC-rejected and NACKed.
/// A replay is served only when the pending sequence number matches the
/// request, so a stale NACK can never resurrect a superseded message;
/// an in-window replay rewrites bytes identical to those already
/// delivered, which is why late replays are harmless. When the injector
/// marks TNIs down, setup() re-stripes the logical VCQ slots across the
/// surviving TNIs (distinct CQ rows keep hardware CQs exclusive). With
/// no injector attached none of this machinery is active: no CRC is
/// computed, no pending copies are kept, and no thread is spawned.
class CommP2p final : public Comm {
 public:
  /// `pool` must outlive this object and have >= options.comm_threads
  /// threads when comm_threads > 1; it may be null for single-threaded
  /// variants.
  CommP2p(const CommContext& ctx, tofu::Network& net, AddressBook& book,
          const P2pOptions& options, pool::SpinThreadPool* pool = nullptr);
  ~CommP2p() override;

  void setup() override;
  void exchange() override;
  void borders() override;
  void forward_positions() override;
  void reverse_forces() override;

  // Split forward exchange: the RDMA puts of forward_begin() land
  // directly in the receiver's arrays, so each receive direction can be
  // completed independently as soon as its notice arrives. Channels on
  // the same VCQ share a dispatcher and report vcq_slot() as their key.
  void forward_begin() override;
  void forward_complete(int ch) override;
  const std::vector<int>& forward_channels() const override {
    return plan_.recv_channels();
  }
  int forward_channel_key(int ch) const override { return vcq_slot(ch); }

  // md::GhostDataComm (EAM mid-pair scalar comm)
  void forward(double* per_atom) override;
  void reverse_add(double* per_atom) override;

  util::CommHealthReport health() const override;

  const std::vector<int>& send_dirs() const { return plan_.send_channels(); }
  const std::vector<int>& recv_dirs() const { return plan_.recv_channels(); }
  int vcq_slot(int dir) const { return slot_of_dir_[static_cast<std::size_t>(dir)]; }
  bool using_border_bins() const { return plan_.using_border_bins(); }
  /// Distinct physical TNIs carrying traffic after degradation.
  int tnis_in_use() const { return tnis_in_use_; }
  bool reliability_active() const { return reliable_; }

 private:
  /// Per-direction transport state. The exchange-pattern fields (peer,
  /// shift, send list, ghost block) live in the GhostPlan.
  struct DirState {
    std::uint32_t remote_offset = 0;  ///< acked ghost offset at the peer
    int ring_slot_out = 0;        ///< round-robin cursor toward the peer
    tofu::RegisteredBuffer send_buf;
  };

  /// Sender-side replay state for one (kind, direction) channel: the
  /// last message sent, with its payload captured in a registered copy
  /// so a retransmit writes exactly the original bytes even after the
  /// live send buffer has been reused.
  struct PendingSend {
    bool valid = false;
    bool piggyback = false;
    std::uint64_t edata = 0;      ///< full encoded descriptor word
    int peer = -1;
    int my_slot = 0;              ///< vcq_ index the original went out on
    int peer_slot = 0;            ///< peer vcq index it targeted
    tofu::Stadd dst_stadd = 0;
    std::uint64_t dst_off = 0;
    std::uint64_t length = 0;     ///< payload bytes
    std::uint64_t flow = 0;       ///< trace flow id — replays chain onto it
    tofu::RegisteredBuffer copy;
  };

  /// Run fn(dir) for every dir in `dirs`, partitioned over the comm
  /// threads by the slot map (or serially for single-thread variants).
  void for_dirs(const std::vector<int>& dirs,
                const std::function<void(int)>& fn);

  /// Receive side of the forward exchange for one direction: dispatcher
  /// wait (+ CRC/NACK under reliability) and ghost-count check; ring
  /// unpack on the non-Newton path.
  void complete_forward_dir(int u);

  /// Throws when a payload of `ndoubles` cannot fit the preregistered
  /// rings — checked *before* packing into the registered send buffer.
  void check_fits(std::size_t ndoubles) const;
  /// Announce-and-put the first `ndoubles` of dir's send buffer (already
  /// packed by a kernel) into the peer's ring. The zero-copy send path.
  void send_ring(MsgKind kind, int dir, std::size_t ndoubles);
  /// Copying convenience over send_ring for payloads that are not packed
  /// into the send buffer (contiguous scalar ghost blocks).
  void put_payload(MsgKind kind, int dir, std::span<const double> payload);
  std::span<const double> wait_payload(MsgKind kind, int dir,
                                       std::uint32_t* count);

  // --- reliability protocol -------------------------------------------
  std::uint8_t next_seq(MsgKind kind, int dir) {
    return ++seq_out_[static_cast<int>(kind)][static_cast<std::size_t>(dir)];
  }
  /// Causal-trace flow id for one outgoing message: rank in the high
  /// half, a per-engine counter in the low half — unique across the job
  /// without coordination. 0 (= untraced) when the comm category is off,
  /// so the disabled path neither touches the counter nor perturbs
  /// anything downstream.
  std::uint64_t next_flow() {
    if (!obs::trace_enabled(obs::TraceCat::kComm)) return 0;
    return (static_cast<std::uint64_t>(ctx_.rank + 1) << 32) |
           (flow_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  void record_pending(MsgKind kind, int dir, bool piggyback,
                      const void* payload, std::uint64_t bytes, int peer,
                      int my_slot, int peer_slot, tofu::Stadd dst_stadd,
                      std::uint64_t dst_off, std::uint64_t edata,
                      std::uint64_t flow);
  /// NACK the sender of the (kind, dir) channel this rank receives on.
  void send_nack(MsgKind kind, int dir);
  /// Replay the pending send on (kind, dir) iff its seq matches `seq`.
  void serve_retransmit(MsgKind kind, std::uint8_t seq, int dir);
  void progress_loop();
  /// Dispatcher wait + CRC verification over the ring payload; rejects
  /// and NACKs until a clean copy arrives.
  Edata wait_ring(MsgKind kind, int dir);
  /// Same for piggyback-only channels (CRC over the value alone).
  Edata wait_piggyback(MsgKind kind, int dir);

  tofu::Network* net_;
  AddressBook* book_;
  P2pOptions opt_;
  pool::SpinThreadPool* pool_;

  std::unique_ptr<tofu::UtofuContext> utofu_;
  std::array<tofu::VcqId, 6> vcq_{};
  std::vector<NoticeDispatcher> dispatch_;  ///< one per VCQ
  std::array<int, kNumDirs> slot_of_dir_{};

  GhostPlan plan_;
  std::array<DirState, kNumDirs> dir_{};
  std::array<std::array<tofu::RegisteredBuffer, kRingSlots>, kNumDirs> rings_;
  std::size_t ring_doubles_ = 0;
  /// Per-direction staging copies for multi-threaded reverse receives:
  /// payloads settle here in parallel, then accumulate serially in
  /// canonical channel order so the float sums reproduce bitwise.
  std::array<std::vector<double>, kNumDirs> reverse_stage_;

  bool reliable_ = false;
  int tnis_in_use_ = 0;
  std::uint8_t seq_out_[kKindCount][kNumDirs] = {};
  std::mutex pending_mu_;
  std::array<std::array<PendingSend, kNumDirs>, kKindCount> pending_;
  std::thread progress_;
  std::atomic<bool> stop_progress_{false};
  std::atomic<std::uint64_t> nacks_sent_{0};
  std::atomic<std::uint64_t> retransmits_served_{0};
  std::atomic<std::uint64_t> crc_rejects_{0};
  std::atomic<std::uint64_t> flow_seq_{0};
};

}  // namespace lmp::comm
