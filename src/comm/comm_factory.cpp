#include "comm/comm_factory.h"

#include <stdexcept>

namespace lmp::comm {

CommFactory& CommFactory::instance() {
  static CommFactory factory;
  return factory;
}

void CommFactory::register_variant(CommVariantInfo info) {
  const std::string name = info.name;
  variants_[name] = std::move(info);
}

bool CommFactory::known(const std::string& name) const {
  return variants_.contains(name);
}

const CommVariantInfo& CommFactory::at(const std::string& name) const {
  const auto it = variants_.find(name);
  if (it == variants_.end()) {
    throw std::invalid_argument("unknown comm variant '" + name +
                                "' (registered: " + catalog() + ")");
  }
  return it->second;
}

std::vector<std::string> CommFactory::names() const {
  std::vector<std::string> out;
  out.reserve(variants_.size());
  for (const auto& [name, info] : variants_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::string CommFactory::catalog() const {
  std::string out;
  for (const auto& [name, info] : variants_) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

CommInstance CommFactory::build(const std::string& name,
                                const CommBuildInputs& inputs) const {
  return at(name).build(inputs);
}

}  // namespace lmp::comm
