#pragma once

#include <vector>

namespace lmp::comm {

/// One communication task for the balancer: a direction with its
/// estimated message size and network hop count.
struct CommTask {
  int dir;           ///< direction index
  double bytes;      ///< expected message size
  int hops;          ///< logical-torus hops (1 face / 2 edge / 3 corner)
};

/// Assign directions to communication threads (paper Fig. 10): each rank
/// has at most 6 comm threads but 13 (or 26) neighbors with very uneven
/// costs — faces carry the most data over 1 hop, corners the least over
/// 3 hops. We model per-task cost as
///
///   cost = bytes + hop_penalty_bytes * hops
///
/// and assign tasks to the currently least-loaded thread, largest task
/// first (LPT greedy — within 4/3 of optimal makespan).
///
/// Returns thread index per task (parallel to `tasks`).
std::vector<int> balance_tasks(const std::vector<CommTask>& tasks, int nthreads,
                               double hop_penalty_bytes = 256.0);

/// Round-robin baseline (dir i -> thread i % nthreads) for the ablation.
std::vector<int> round_robin(const std::vector<CommTask>& tasks, int nthreads);

/// Makespan (max per-thread summed cost) of an assignment — the quantity
/// the balancer minimizes; used by tests and the ablation bench.
double makespan(const std::vector<CommTask>& tasks,
                const std::vector<int>& assignment, int nthreads,
                double hop_penalty_bytes = 256.0);

}  // namespace lmp::comm
