#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

#include "obs/alloc_tracker.h"
#include "obs/metrics.h"
#include "util/table_printer.h"

namespace lmp::util {

void merge_escalations(std::vector<EscalationEvent>& into,
                       const std::vector<EscalationEvent>& from) {
  into.insert(into.end(), from.begin(), from.end());
  std::stable_sort(into.begin(), into.end(),
                   [](const EscalationEvent& a, const EscalationEvent& b) {
                     return a.fail_step < b.fail_step;
                   });
  const auto same = [](const EscalationEvent& a, const EscalationEvent& b) {
    return std::tie(a.fail_step, a.from_variant, a.to_variant) ==
           std::tie(b.fail_step, b.from_variant, b.to_variant);
  };
  into.erase(std::unique(into.begin(), into.end(), same), into.end());
}

void merge_integrity_events(std::vector<IntegrityEvent>& into,
                            const std::vector<IntegrityEvent>& from) {
  into.insert(into.end(), from.begin(), from.end());
  std::stable_sort(into.begin(), into.end(),
                   [](const IntegrityEvent& a, const IntegrityEvent& b) {
                     return a.detect_step < b.detect_step;
                   });
  const auto same = [](const IntegrityEvent& a, const IntegrityEvent& b) {
    return std::tie(a.detect_step, a.resume_step, a.verdict) ==
           std::tie(b.detect_step, b.resume_step, b.verdict);
  };
  into.erase(std::unique(into.begin(), into.end(), same), into.end());
}

std::string format_health_table(const CommHealthReport& h) {
  TablePrinter t({"comm health", "count"});
  const auto row = [&t](const char* name, std::uint64_t v) {
    t.add_row({name, std::to_string(v)});
  };
  row("nacks_sent", h.nacks_sent);
  row("retransmits_served", h.retransmits_served);
  row("duplicates_dropped", h.duplicates_dropped);
  row("crc_rejects", h.crc_rejects);
  row("notices_dropped", h.notices_dropped);
  row("notices_delayed", h.notices_delayed);
  row("notices_duplicated", h.notices_duplicated);
  row("payloads_corrupted", h.payloads_corrupted);
  row("tni_drops", h.tni_drops);
  row("retransmit_puts", h.retransmit_puts);
  row("unreachable_puts", h.unreachable_puts);
  row("fabric_puts", h.fabric_puts);
  t.add_row({"tnis_in_use", std::to_string(h.tnis_in_use)});
  t.add_row({"tnis_down", std::to_string(h.tnis_down)});
  row("checkpoints_written", h.checkpoints_written);
  t.add_row({"checkpoint_io_s", TablePrinter::fmt(h.checkpoint_io_seconds, 3)});
  t.add_row({"escalations", std::to_string(h.escalations.size())});
  row("integrity_checks", h.integrity_checks);
  row("integrity_detections", h.integrity_detections);
  row("integrity_rollbacks", h.integrity_rollbacks);
  row("mem_flips_injected", h.mem_flips_injected);
  std::string out = t.to_string();
  // The recovery story: one line per failover, after the counter table.
  for (const EscalationEvent& e : h.escalations) {
    out += "escalation at step " + std::to_string(e.fail_step) + ": " +
           e.from_variant + " -> " + e.to_variant + " (resumed from step " +
           std::to_string(e.resume_step) + "; " + e.reason + ")\n";
  }
  // One line per healed corruption, in the same grep-able style.
  for (const IntegrityEvent& e : h.integrity_events) {
    out += "integrity rollback at step " + std::to_string(e.detect_step) +
           ": resumed from step " + std::to_string(e.resume_step) +
           " (verdict=" + e.verdict + "; " + e.reason + ")\n";
  }
  return out;
}

std::string format_server_table(const ServeStats& s) {
  TablePrinter t({"server", "count"});
  const auto row = [&t](const char* name, std::uint64_t v) {
    t.add_row({name, std::to_string(v)});
  };
  row("submitted", s.submitted);
  row("admitted", s.admitted);
  row("rejected_queue_full", s.rejected_queue_full);
  row("rejected_quota", s.rejected_quota);
  row("rejected_bad_script", s.rejected_bad_script);
  row("rejected_shutdown", s.rejected_shutdown);
  row("duplicate_submits", s.duplicate_submits);
  row("retries", s.retries);
  row("deadline_missed", s.deadline_missed);
  row("completed", s.completed);
  row("failed", s.failed);
  row("cancelled", s.cancelled);
  row("recovered", s.recovered);
  row("journal_torn_bytes", s.journal_torn_bytes);
  row("integrity_checks", s.integrity_checks);
  row("integrity_detections", s.integrity_detections);
  row("integrity_rollbacks", s.integrity_rollbacks);
  row("mem_flips_injected", s.mem_flips_injected);
  t.add_row({"queue_depth", std::to_string(s.queue_depth)});
  t.add_row({"queue_depth_peak", std::to_string(s.queue_depth_peak)});
  t.add_row({"running", std::to_string(s.running)});
  row("slo_breaches", s.slo_breaches);
  t.add_row({"heap_live_bytes", std::to_string(s.heap_live_bytes)});
  t.add_row({"heap_high_water_bytes", std::to_string(s.heap_high_water_bytes)});
  t.add_row({"rss_bytes", std::to_string(s.rss_bytes)});
  row("total_allocs", s.total_allocs);
  return t.to_string();
}

std::string format_latency_table() {
  const auto hists = obs::MetricsRegistry::instance().histograms();
  bool any = false;
  for (const auto& [name, s] : hists) any = any || s.count > 0;
  std::string out;
  if (any) {
    // Full Summary exposure: count and min/max alongside the percentiles,
    // so the curated view no longer hides the extremes behind raw JSON.
    TablePrinter t({"latency (us)", "count", "mean", "p50", "p95", "p99",
                    "min", "max"});
    const auto us = [](double ns) {
      return TablePrinter::fmt(ns / 1000.0, 3);
    };
    for (const auto& [name, s] : hists) {
      if (s.count == 0) continue;
      t.add_row({name, std::to_string(s.count), us(s.mean), us(s.p50),
                 us(s.p95), us(s.p99), us(static_cast<double>(s.min)),
                 us(static_cast<double>(s.max))});
    }
    out = t.to_string();
  }
  // Heap traffic per attribution scope (alloc tracker): the same stage /
  // wait / slice labels as the spans above, plus whatever ran outside
  // any scope. Absent entirely when LMP_ALLOC_TRACE is compiled out.
  const auto scopes = obs::AllocTracker::instance().by_scope();
  if (!scopes.empty()) {
    const obs::AllocTotals tot = obs::AllocTracker::instance().totals();
    TablePrinter a({"alloc scope", "allocs", "frees", "bytes", "freed bytes"});
    for (const obs::AllocSlotStats& s : scopes) {
      a.add_row({s.name, std::to_string(s.allocs), std::to_string(s.frees),
                 std::to_string(s.bytes), std::to_string(s.freed_bytes)});
    }
    a.add_row({"(total)", std::to_string(tot.allocs), std::to_string(tot.frees),
               std::to_string(tot.bytes), std::to_string(tot.freed_bytes)});
    out += a.to_string();
  }
  return out;
}

std::string format_alloc_guard_table(const obs::AllocGuardReport& r) {
  std::string out;
  if (!r.enabled) return out;
  if (!r.tracker_available) {
    return "alloc guard: tracker not compiled in (build with "
           "-DLMP_ALLOC_TRACE=ON) — nothing checked\n";
  }
  out += "alloc guard: warmup " + std::to_string(r.warmup_steps) +
         " steps, checked " + std::to_string(r.steps_checked) + " steps: " +
         (r.passed()
              ? "PASS — zero steady-state allocations\n"
              : "FAIL — " + std::to_string(r.steps_with_allocs) +
                    " steps allocated (first at step " +
                    std::to_string(r.first_alloc_step) + "; " +
                    std::to_string(r.post_warmup_allocs) + " allocs, " +
                    std::to_string(r.post_warmup_bytes) +
                    " bytes past warmup)\n");
  if (!r.rows.empty()) {
    TablePrinter t({"post-warmup scope", "allocs", "frees", "bytes"});
    for (const obs::AllocSlotStats& s : r.rows) {
      t.add_row({s.name, std::to_string(s.allocs), std::to_string(s.frees),
                 std::to_string(s.bytes)});
    }
    out += t.to_string();
  }
  return out;
}

std::string format_metrics_table() {
  const auto counters = obs::MetricsRegistry::instance().counters();
  const auto gauges = obs::MetricsRegistry::instance().gauges();
  const auto hists = obs::MetricsRegistry::instance().histograms();
  std::string out;
  bool any_counter = false;
  for (const auto& [name, v] : counters) any_counter = any_counter || v > 0;
  if (any_counter) {
    TablePrinter t({"counter", "value"});
    for (const auto& [name, v] : counters) t.add_row({name, std::to_string(v)});
    out += t.to_string();
  }
  bool any_gauge = false;
  for (const auto& [name, g] : gauges) any_gauge = any_gauge || g != 0;
  if (any_gauge) {
    TablePrinter t({"gauge", "value"});
    for (const auto& [name, v] : gauges) t.add_row({name, std::to_string(v)});
    out += t.to_string();
  }
  bool any_hist = false;
  for (const auto& [name, s] : hists) any_hist = any_hist || s.count > 0;
  if (any_hist) {
    // Raw units (ns for latencies, entries for depths) — the curated
    // microsecond view is format_latency_table.
    TablePrinter t({"histogram", "count", "mean", "p50", "p95", "p99", "min",
                    "max"});
    for (const auto& [name, s] : hists) {
      if (s.count == 0) continue;
      t.add_row({name, std::to_string(s.count), TablePrinter::fmt(s.mean, 1),
                 TablePrinter::fmt(s.p50, 1), TablePrinter::fmt(s.p95, 1),
                 TablePrinter::fmt(s.p99, 1), std::to_string(s.min),
                 std::to_string(s.max)});
    }
    out += t.to_string();
  }
  return out;
}

void RunningStats::add(double x) {
  if (std::isnan(x)) {
    throw std::invalid_argument("RunningStats: NaN sample rejected");
  }
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  if (std::isnan(p) || p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p outside [0, 100]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  for (double x : sorted) {
    // NaN breaks the sort's strict weak ordering; the order statistics of
    // a sample containing NaN are meaningless anyway.
    if (std::isnan(x)) throw std::invalid_argument("percentile: NaN sample");
  }
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double max_rel_deviation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("series length mismatch");
  constexpr double kEps = 1e-300;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::fabs(a[i]), std::fabs(b[i]), kEps});
    worst = std::max(worst, std::fabs(a[i] - b[i]) / scale);
  }
  return worst;
}

double regression_slope(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("regression needs >=2 paired samples");
  }
  const double mx = mean(x);
  const double my = mean(y);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  if (den == 0.0) throw std::invalid_argument("regression on constant x");
  return num / den;
}

}  // namespace lmp::util
