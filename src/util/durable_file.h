#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lmp::util {

/// True when the platform write path issues real fsync barriers (POSIX).
/// Elsewhere the durable helpers still write correctly — they just
/// cannot promise power-loss semantics, and tests that assert the fsync
/// counter skip.
bool fsync_supported();

/// Total fsync calls issued by the durable-file helpers this process
/// (file data + directory entries). Mirrored into the metrics registry
/// as counter "io.fsyncs"; exposed directly so tests can assert the
/// write path without enabling metrics.
std::uint64_t fsyncs_issued();

/// Write `len` bytes to `path` with power-loss-safe publication:
/// serialize to `path + ".tmp"`, fsync the file, rename over the
/// destination, then fsync the parent directory so the rename itself is
/// on disk. A crash at any point leaves either the old file or the new
/// one under `path` — never a torn mix. Throws std::runtime_error on
/// any I/O failure (the tmp file is removed best-effort).
void write_file_durable(const std::string& path, const void* data,
                        std::size_t len);

/// fsync the directory containing `path` (POSIX; no-op elsewhere).
/// Needed after rename/creat for the directory entry to survive power
/// loss — fsync of the file alone does not cover its name.
void fsync_parent_dir(const std::string& path);

/// Append-only log file with per-record durability — the substrate of
/// the job journal. open() creates the file if missing (and fsyncs the
/// parent directory so the empty log itself survives); append() writes
/// at the end and optionally fsyncs; truncate_to() chops a torn tail
/// found during recovery. All methods throw std::runtime_error on I/O
/// failure.
class AppendLog {
 public:
  AppendLog() = default;
  ~AppendLog();
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  void open(const std::string& path);
  bool is_open() const { return fd_ >= 0; }
  void append(const void* data, std::size_t len, bool sync);
  void truncate_to(std::uint64_t offset);
  std::uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }
  void close();

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
};

}  // namespace lmp::util
