#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/alloc_tracker.h"

namespace lmp::util {

/// One comm-variant escalation: the health monitor (or a hard comm
/// error) retired `from_variant` at `fail_step`, the run rolled back to
/// the checkpoint at `resume_step`, and continued under `to_variant`.
/// `reason` carries the trigger — the typed error text or the exceeded
/// threshold, including the counters that tripped it.
struct EscalationEvent {
  int fail_step = 0;
  int resume_step = 0;
  std::string from_variant;
  std::string to_variant;
  std::string reason;
};

/// Merge `from` into `into`: the union is sorted by fail_step (stable,
/// so same-step events keep their relative order) and events identical
/// in (fail_step, from_variant, to_variant) collapse to the first one.
/// Summing per-rank health reports would otherwise replicate each
/// job-level escalation once per rank and interleave them out of order.
void merge_escalations(std::vector<EscalationEvent>& into,
                       const std::vector<EscalationEvent>& from);

/// One silent-corruption recovery episode: an integrity guard tripped at
/// `detect_step`, the run rolled back to the checkpoint at `resume_step`
/// and recomputed. `verdict` is "transient" for a healed flip (the
/// recompute passed the step clean); a persistent fault never produces
/// an event — it terminates the run with sim::IntegrityError instead.
struct IntegrityEvent {
  int detect_step = 0;
  int resume_step = 0;
  std::string reason;
  std::string verdict;
};

/// Same dedupe-and-sort rationale as merge_escalations, keyed on
/// (detect_step, resume_step, verdict).
void merge_integrity_events(std::vector<IntegrityEvent>& into,
                            const std::vector<IntegrityEvent>& from);

/// End-of-run communication health summary: what the reliability layer
/// and the fault injector saw. All zeros on a clean run — the acceptance
/// bar for "no overhead on the clean path".
struct CommHealthReport {
  // Receiver/sender protocol activity (comm layer).
  std::uint64_t nacks_sent = 0;           ///< retransmit requests issued
  std::uint64_t retransmits_served = 0;   ///< pending sends replayed
  std::uint64_t duplicates_dropped = 0;   ///< stale/dup notices filtered
  std::uint64_t crc_rejects = 0;          ///< checksum mismatches detected
  // Fabric-side injected faults (fault injector view).
  std::uint64_t notices_dropped = 0;
  std::uint64_t notices_delayed = 0;
  std::uint64_t notices_duplicated = 0;
  std::uint64_t payloads_corrupted = 0;
  std::uint64_t tni_drops = 0;            ///< puts swallowed by a dead TNI
  std::uint64_t retransmit_puts = 0;      ///< fabric-level replay puts
  std::uint64_t unreachable_puts = 0;     ///< puts refused on severed routes
  std::uint64_t fabric_puts = 0;          ///< total puts the fabric carried
  // Degradation state.
  int tnis_in_use = 0;
  int tnis_down = 0;
  // Self-healing runtime (checkpoint/restart + failover ladder).
  std::uint64_t checkpoints_written = 0;  ///< checkpoint emissions this run
  double checkpoint_io_seconds = 0.0;     ///< wall time in checkpoint file I/O
  std::vector<EscalationEvent> escalations;  ///< comm-variant failovers, in order
  // Silent-corruption guards (sim/integrity).
  std::uint64_t integrity_checks = 0;      ///< guard evaluations run
  std::uint64_t integrity_detections = 0;  ///< guard verdicts that tripped
  std::uint64_t integrity_rollbacks = 0;   ///< rollback+recompute launched
  std::uint64_t mem_flips_injected = 0;    ///< bit flips the chaos plan landed
  std::vector<IntegrityEvent> integrity_events;  ///< recoveries, in order

  CommHealthReport& operator+=(const CommHealthReport& o) {
    nacks_sent += o.nacks_sent;
    retransmits_served += o.retransmits_served;
    duplicates_dropped += o.duplicates_dropped;
    crc_rejects += o.crc_rejects;
    notices_dropped += o.notices_dropped;
    notices_delayed += o.notices_delayed;
    notices_duplicated += o.notices_duplicated;
    payloads_corrupted += o.payloads_corrupted;
    tni_drops += o.tni_drops;
    retransmit_puts += o.retransmit_puts;
    unreachable_puts += o.unreachable_puts;
    fabric_puts += o.fabric_puts;
    tnis_in_use = tnis_in_use > o.tnis_in_use ? tnis_in_use : o.tnis_in_use;
    tnis_down = tnis_down > o.tnis_down ? tnis_down : o.tnis_down;
    checkpoints_written += o.checkpoints_written;
    checkpoint_io_seconds += o.checkpoint_io_seconds;
    merge_escalations(escalations, o.escalations);
    integrity_checks += o.integrity_checks;
    integrity_detections += o.integrity_detections;
    integrity_rollbacks += o.integrity_rollbacks;
    mem_flips_injected += o.mem_flips_injected;
    merge_integrity_events(integrity_events, o.integrity_events);
    return *this;
  }

  /// True when nothing abnormal happened (degradation state, checkpoint
  /// activity, and guard evaluations ignored — running guards is normal;
  /// a guard *detection* or an injected flip is not).
  bool clean() const {
    return nacks_sent == 0 && retransmits_served == 0 &&
           duplicates_dropped == 0 && crc_rejects == 0 &&
           notices_dropped == 0 && notices_delayed == 0 &&
           notices_duplicated == 0 && payloads_corrupted == 0 &&
           tni_drops == 0 && retransmit_puts == 0 && unreachable_puts == 0 &&
           escalations.empty() && integrity_detections == 0 &&
           integrity_rollbacks == 0 && mem_flips_injected == 0 &&
           integrity_events.empty();
  }
};

/// Render the health report with the standard table layout (one counter
/// per row) for end-of-run printing.
std::string format_health_table(const CommHealthReport& h);

/// End-of-run summary of a job-server session: the admission-control and
/// retry/deadline counters the serving layer accumulates, plus queue
/// gauges. All zeros for an idle server. Rendered by
/// format_server_table in the same style as the health table, so
/// `lmp_serve` output matches the rest of the tooling.
struct ServeStats {
  std::uint64_t submitted = 0;          ///< submissions received (any outcome)
  std::uint64_t admitted = 0;           ///< entered the run queue
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_quota = 0;     ///< per-tenant queued/running quota
  std::uint64_t rejected_bad_script = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t duplicate_submits = 0;  ///< idempotent resubmits answered
  std::uint64_t retries = 0;            ///< attempts re-run after a failure
  std::uint64_t deadline_missed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t recovered = 0;          ///< jobs requeued from the journal
  std::uint64_t journal_torn_bytes = 0; ///< tail truncated during recovery
  // Silent-corruption guards, summed over every slice of every job.
  std::uint64_t integrity_checks = 0;
  std::uint64_t integrity_detections = 0;
  std::uint64_t integrity_rollbacks = 0;
  std::uint64_t mem_flips_injected = 0;
  std::int64_t queue_depth = 0;
  std::int64_t queue_depth_peak = 0;
  std::int64_t running = 0;
  /// Tenant SLO windows that crossed into breach (enter-edges, from the
  /// telemetry plane's rolling-window evaluation).
  std::uint64_t slo_breaches = 0;
  // Memory footprint of the serving process (alloc tracker + /proc RSS;
  // heap numbers are zero when LMP_ALLOC_TRACE is compiled out). What
  // tenant billing records cite alongside step counts.
  std::int64_t heap_live_bytes = 0;
  std::int64_t heap_high_water_bytes = 0;
  std::int64_t rss_bytes = 0;
  std::uint64_t total_allocs = 0;

  std::uint64_t rejected_total() const {
    return rejected_queue_full + rejected_quota + rejected_bad_script +
           rejected_shutdown;
  }
};

/// Render the server section of the end-of-run tables (jobs admitted /
/// rejected / retried / deadline-missed, queue gauges), matching the
/// established fixed-width layout.
std::string format_server_table(const ServeStats& s);

/// Render the latency histograms the metrics registry collected this run
/// (put latency per TNI, notice waits, pool dispatch/run, ...) as a
/// table in microseconds, three decimals — followed, when the alloc
/// tracker saw traffic, by the per-scope allocation table (allocs /
/// frees / bytes per attribution scope). Empty string when no histogram
/// recorded anything and no allocation was tracked.
std::string format_latency_table();

/// Render an alloc-guard verdict: one summary line (PASS / FAIL with
/// the post-warmup totals) plus the per-scope attribution table of the
/// post-warmup window when anything allocated. Empty string when the
/// guard never ran.
std::string format_alloc_guard_table(const obs::AllocGuardReport& r);

/// Render the FULL metrics registry — every counter, gauge (value and
/// high-water mark), and histogram in its raw units — as plain-text
/// tables. The `--metrics` / script `metrics` dump; format_latency_table
/// remains the curated microsecond subset. Empty string when nothing was
/// recorded.
std::string format_metrics_table();

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set (linear interpolation between order stats).
/// `p` must be in [0, 100]; throws std::invalid_argument otherwise, on an
/// empty sample, or when `p` or any sample is NaN. The input span is
/// copied; the original is untouched.
double percentile(std::span<const double> xs, double p);

/// Mean of a sample set; 0 for an empty span.
double mean(std::span<const double> xs);

/// Maximum relative deviation |a-b| / max(|a|,|b|,eps) over paired series.
/// Used by accuracy tests comparing reference and optimized trajectories.
double max_rel_deviation(std::span<const double> a, std::span<const double> b);

/// Linear-regression slope of y against x (least squares).
/// Used to check weak-scaling linearity in fig14.
double regression_slope(std::span<const double> x, std::span<const double> y);

}  // namespace lmp::util
