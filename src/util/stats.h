#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lmp::util {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set (linear interpolation between order stats).
/// `p` in [0, 100]. The input span is copied; the original is untouched.
double percentile(std::span<const double> xs, double p);

/// Mean of a sample set; 0 for an empty span.
double mean(std::span<const double> xs);

/// Maximum relative deviation |a-b| / max(|a|,|b|,eps) over paired series.
/// Used by accuracy tests comparing reference and optimized trajectories.
double max_rel_deviation(std::span<const double> a, std::span<const double> b);

/// Linear-regression slope of y against x (least squares).
/// Used to check weak-scaling linearity in fig14.
double regression_slope(std::span<const double> x, std::span<const double> y);

}  // namespace lmp::util
