#include "util/json_mini.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace lmp::util {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t JsonValue::int_or(std::int64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return static_cast<std::int64_t>(std::llround(number));
}

double JsonValue::get_num(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->num_or(fallback) : fallback;
}

std::int64_t JsonValue::get_int(const std::string& key,
                                std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->int_or(fallback) : fallback;
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->bool_or(fallback) : fallback;
}

std::string JsonValue::get_str(const std::string& key,
                               const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->str_or(fallback) : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("json: " + what + " at offset " +
                         std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': {
        ++pos_;
        v.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        for (;;) {
          skip_ws();
          if (peek() != '"') fail("expected object key string");
          std::string key = string_body();
          skip_ws();
          expect(':');
          v.members.emplace_back(std::move(key), value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        ++pos_;
        v.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        for (;;) {
          v.items.push_back(value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = string_body();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default:
        return number_value();
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — our own writer never emits
          // them; this parser just must not corrupt or crash).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue number_value() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("bad number '" + tok + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace lmp::util
