#pragma once

#include <string>

namespace lmp::util {

/// Which way a benchmark metric is allowed to drift before the
/// regression gate (bench_compare) calls it a regression.
enum class MetricDirection {
  kLowerBetter,   ///< times, bytes, allocation counts
  kHigherBetter,  ///< speedups, rates
  kTwoSided,      ///< ratios pinned near a target (either drift is bad)
};

/// Infer the gate direction from a metric-key suffix. The suffix IS the
/// contract: benches name their metrics so the gate needs no per-metric
/// configuration, and a new bench gets correct gating for free.
///
///   *us_step   lower is better  — per-step wall time
///   *_bytes    lower is better  — memory footprints (heap high water, RSS)
///   *_allocs   lower is better  — allocation counts (steady-state ratchet:
///                                 a zero baseline means any new allocation
///                                 trips the gate)
///   *speedup   higher is better
///   otherwise  two-sided        — regression when |fresh-base| > tol*|base|
inline MetricDirection metric_direction(const std::string& key) {
  const auto ends_with = [&key](const char* suffix) {
    const std::string s(suffix);
    return key.size() >= s.size() &&
           key.compare(key.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with("us_step")) return MetricDirection::kLowerBetter;
  if (ends_with("_bytes")) return MetricDirection::kLowerBetter;
  if (ends_with("_allocs")) return MetricDirection::kLowerBetter;
  if (ends_with("speedup")) return MetricDirection::kHigherBetter;
  return MetricDirection::kTwoSided;
}

}  // namespace lmp::util
