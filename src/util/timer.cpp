#include "util/timer.h"

namespace lmp::util {

std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::kPair:
      return "Pair";
    case Stage::kNeigh:
      return "Neigh";
    case Stage::kComm:
      return "Comm";
    case Stage::kModify:
      return "Modify";
    case Stage::kOther:
      return "Other";
    case Stage::kCount:
      break;
  }
  return "?";
}

const char* stage_trace_name(Stage s) {
  switch (s) {
    case Stage::kPair:
      return "stage:Pair";
    case Stage::kNeigh:
      return "stage:Neigh";
    case Stage::kComm:
      return "stage:Comm";
    case Stage::kModify:
      return "stage:Modify";
    case Stage::kOther:
      return "stage:Other";
    case Stage::kCount:
      break;
  }
  return "stage:?";
}

}  // namespace lmp::util
