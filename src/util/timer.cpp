#include "util/timer.h"

namespace lmp::util {

std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::kPair:
      return "Pair";
    case Stage::kNeigh:
      return "Neigh";
    case Stage::kComm:
      return "Comm";
    case Stage::kModify:
      return "Modify";
    case Stage::kOther:
      return "Other";
    case Stage::kCount:
      break;
  }
  return "?";
}

}  // namespace lmp::util
