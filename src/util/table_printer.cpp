#include "util/table_printer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace lmp::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  // Allow a trailing SI suffix or unit-ish tail of at most 2 chars.
  return end != s.c_str() && (end - s.c_str()) + 2 >= static_cast<long>(s.size());
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match header width");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = width[c] - row[c].size();
      out << "| ";
      if (looks_numeric(row[c])) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
      out << ' ';
    }
    out << "|\n";
  };

  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << '|' << std::string(width[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print() const { std::cout << to_string(); }

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  const double mag = std::fabs(v);
  if (mag >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (mag >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (mag >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", precision, scaled, suffix);
  return buf;
}

}  // namespace lmp::util
