#include "util/durable_file.h"

#include <atomic>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define LMP_HAVE_FSYNC 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace lmp::util {

namespace {

std::atomic<std::uint64_t> g_fsyncs{0};

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("durable_file: " + what + " failed for " + path);
}

void count_fsync() {
  g_fsyncs.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& c = obs::MetricsRegistry::instance().counter("io.fsyncs");
  c.add(1);
}

#ifdef LMP_HAVE_FSYNC
void fsync_fd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) io_fail("fsync", path);
  count_fsync();
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}
#endif

}  // namespace

bool fsync_supported() {
#ifdef LMP_HAVE_FSYNC
  return true;
#else
  return false;
#endif
}

std::uint64_t fsyncs_issued() {
  return g_fsyncs.load(std::memory_order_relaxed);
}

void fsync_parent_dir(const std::string& path) {
#ifdef LMP_HAVE_FSYNC
  const std::string dir = parent_dir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) io_fail("open parent dir", path);
  try {
    fsync_fd(fd, dir);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
#else
  (void)path;
#endif
}

void write_file_durable(const std::string& path, const void* data,
                        std::size_t len) {
  const std::string tmp = path + ".tmp";
#ifdef LMP_HAVE_FSYNC
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) io_fail("open", tmp);
  try {
    const char* p = static_cast<const char*>(data);
    std::size_t left = len;
    while (left > 0) {
      const ::ssize_t n = ::write(fd, p, left);
      if (n < 0) io_fail("write", tmp);
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    // Order matters: the data must be on disk before the rename can
    // publish it — rename-then-fsync can surface a zero-length file
    // after power loss.
    fsync_fd(fd, tmp);
  } catch (...) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    io_fail("close", tmp);
  }
#else
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) io_fail("open", tmp);
  const std::size_t n = len ? std::fwrite(data, 1, len, f) : 0;
  const bool ok = (n == len) && std::fclose(f) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    io_fail("write", tmp);
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    io_fail("rename", path);
  }
  // The rename is only durable once the directory entry is synced.
  fsync_parent_dir(path);
}

AppendLog::~AppendLog() { close(); }

void AppendLog::open(const std::string& path) {
  close();
#ifdef LMP_HAVE_FSYNC
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_APPEND, 0644);
  if (fd_ < 0) io_fail("open", path);
  struct ::stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    io_fail("stat", path);
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  path_ = path;
  if (!existed) fsync_parent_dir(path);
#else
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) io_fail("open", path);
  std::fclose(f);
  // ftell on a freshly opened append stream is implementation-defined
  // before the first write; measure the size with an explicit
  // seek-to-end on a read handle instead.
  std::FILE* r = std::fopen(path.c_str(), "rb");
  if (!r) io_fail("open", path);
  long at = -1;
  if (std::fseek(r, 0, SEEK_END) == 0) at = std::ftell(r);
  std::fclose(r);
  if (at < 0) io_fail("size", path);
  fd_ = 0;  // marker: "open" in the fallback
  size_ = static_cast<std::uint64_t>(at);
  path_ = path;
#endif
}

void AppendLog::append(const void* data, std::size_t len, bool sync) {
  if (!is_open()) throw std::runtime_error("durable_file: append on closed log");
#ifdef LMP_HAVE_FSYNC
  const char* p = static_cast<const char*>(data);
  std::size_t left = len;
  while (left > 0) {
    const ::ssize_t n = ::write(fd_, p, left);
    if (n < 0) io_fail("append", path_);
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (sync) fsync_fd(fd_, path_);
#else
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (!f) io_fail("open", path_);
  const bool ok = std::fwrite(data, 1, len, f) == len && std::fclose(f) == 0;
  if (!ok) io_fail("append", path_);
  (void)sync;
#endif
  size_ += len;
}

void AppendLog::truncate_to(std::uint64_t offset) {
  if (!is_open()) throw std::runtime_error("durable_file: truncate on closed log");
  if (offset >= size_) return;
#ifdef LMP_HAVE_FSYNC
  if (::ftruncate(fd_, static_cast<::off_t>(offset)) != 0) {
    io_fail("truncate", path_);
  }
  fsync_fd(fd_, path_);
#else
  // Portable fallback: rewrite the prefix.
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (!in) io_fail("open", path_);
  std::string keep(offset, '\0');
  const std::size_t got = std::fread(keep.data(), 1, offset, in);
  std::fclose(in);
  if (got != offset) io_fail("read", path_);
  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (!out) io_fail("open", path_);
  const bool ok =
      std::fwrite(keep.data(), 1, offset, out) == offset && std::fclose(out) == 0;
  if (!ok) io_fail("truncate", path_);
#endif
  size_ = offset;
}

void AppendLog::close() {
#ifdef LMP_HAVE_FSYNC
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
  size_ = 0;
  path_.clear();
}

}  // namespace lmp::util
