#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/alloc_tracker.h"
#include "obs/tracer.h"

namespace lmp::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// The five LAMMPS timing stages reported in the paper's Table 3.
///
/// Pair    — pair-force evaluation (incl. mid-pair EAM communication)
/// Neigh   — neighbor-list construction
/// Comm    — ghost exchange: forward, reverse, border, exchange stages
/// Modify  — fixes: NVE position/velocity update
/// Other   — everything else (output, allreduce neighbor checks, ...)
enum class Stage : int { kPair = 0, kNeigh, kComm, kModify, kOther, kCount };

constexpr int kStageCount = static_cast<int>(Stage::kCount);

/// All stages in report order, for range-for iteration — replaces the
/// hand-rolled `static_cast<int>` index loops in sim/bench/examples.
constexpr std::array<Stage, kStageCount> all_stages() {
  return {Stage::kPair, Stage::kNeigh, Stage::kComm, Stage::kModify,
          Stage::kOther};
}

std::string_view stage_name(Stage s);

/// Static-storage trace label for a stage ("stage:Pair", ...). TraceSpan
/// stores name pointers, so labels must outlive every span.
const char* stage_trace_name(Stage s);

/// Accumulates wall (or modeled) seconds per LAMMPS stage.
///
/// The functional track feeds it measured wall time; the performance track
/// feeds it modeled seconds. Both produce the same breakdown report, which
/// is what `bench/table3_breakdown` prints.
class StageTimer {
 public:
  void add(Stage s, double seconds) { acc_[static_cast<int>(s)] += seconds; }
  double get(Stage s) const { return acc_[static_cast<int>(s)]; }
  double total() const {
    double t = 0.0;
    for (double v : acc_) t += v;
    return t;
  }
  /// Percentage of total time spent in stage `s` (0 if nothing recorded).
  /// Recomputes total() per call — when printing a full breakdown, hoist
  /// the denominator once and use the two-argument overload instead.
  double percent(Stage s) const { return percent(s, total()); }

  /// Percentage of `total` spent in stage `s`, with the denominator
  /// supplied by the caller (compute `total()` once per report).
  double percent(Stage s, double total) const {
    return total > 0.0 ? 100.0 * get(s) / total : 0.0;
  }
  void reset() { acc_.fill(0.0); }

  StageTimer& operator+=(const StageTimer& o) {
    for (int i = 0; i < kStageCount; ++i) acc_[i] += o.acc_[i];
    return *this;
  }

 private:
  std::array<double, kStageCount> acc_{};
};

/// RAII helper: measures a scope's wall time into a StageTimer stage.
/// Doubles as a trace span: when the sim trace category is enabled the
/// same scope appears as a "stage:*" span on the owning thread's track,
/// so every existing timing site is a tracing site with no edits. It is
/// also an allocation-attribution scope — with LMP_ALLOC_TRACE on, heap
/// traffic inside the stage lands on the same "stage:*" label in the
/// alloc tracker, which is how the per-stage memory columns and the
/// zero-alloc guard's attribution table get their data for free.
class ScopedStage {
 public:
  ScopedStage(StageTimer& t, Stage s)
      : timer_(t),
        stage_(s),
        span_(obs::TraceCat::kSim, stage_trace_name(s)),
        alloc_scope_(stage_trace_name(s)) {}
  ~ScopedStage() { timer_.add(stage_, watch_.seconds()); }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  StageTimer& timer_;
  Stage stage_;
  obs::TraceSpan span_;
  obs::AllocScope alloc_scope_;
  WallTimer watch_;
};

}  // namespace lmp::util
