#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace lmp::util {

/// The input is not valid JSON; the message carries a byte offset.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Minimal owning JSON document tree — the reading counterpart of
/// obs::JsonWriter (still zero external dependencies). Built for the
/// telemetry snapshot consumers (lmp_top, tests): strict parsing,
/// convenient typed lookups, no mutation API. Objects preserve key
/// order; duplicate keys are kept (find returns the first).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;  ///< kArray elements
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// First member with this key, or nullptr (also for non-objects).
  const JsonValue* find(const std::string& key) const;

  /// Typed accessors with a fallback — the lenient reads a dashboard
  /// wants (a missing field renders as 0/""/false, not a crash).
  double num_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  std::int64_t int_or(std::int64_t fallback) const;
  bool bool_or(bool fallback) const {
    return kind == Kind::kBool ? boolean : fallback;
  }
  const std::string& str_or(const std::string& fallback) const {
    return kind == Kind::kString ? string : fallback;
  }

  /// find + typed access in one step; the fallback also covers "no such
  /// key" and "not an object".
  double get_num(const std::string& key, double fallback = 0.0) const;
  std::int64_t get_int(const std::string& key,
                       std::int64_t fallback = 0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;
  std::string get_str(const std::string& key,
                      const std::string& fallback = {}) const;
};

/// Parse one JSON document (trailing whitespace allowed, trailing junk
/// rejected). Throws JsonParseError. Depth-limited so hostile inputs
/// cannot blow the stack.
JsonValue parse_json(const std::string& text);

}  // namespace lmp::util
