#pragma once

#include <string>
#include <vector>

namespace lmp::util {

/// Fixed-width console table used by every bench binary so that the
/// reproduced tables/figures print with a uniform, diff-friendly layout.
///
///   TablePrinter t({"pattern", "msg_size", "hops", "time(us)"});
///   t.add_row({"3-stage", "a^2 r", "1", "1.23"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render to a string (header, separator, rows), columns padded to the
  /// widest cell. Cells that parse as numbers are right-aligned.
  std::string to_string() const;

  /// Convenience: to_string() to stdout.
  void print() const;

  /// Format helpers shared by benches.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_si(double v, int precision = 3);  // 1.2k / 3.4M / 5.6G

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lmp::util
