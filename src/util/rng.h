#pragma once

#include <cmath>
#include <cstdint>

namespace lmp::util {

/// Deterministic, seedable PRNG (xoshiro256** with splitmix64 seeding).
///
/// All stochastic pieces of the library (velocity initialisation, workload
/// generators, failure injection in tests) draw from this generator so that
/// every experiment is bit-reproducible from its seed. We do not use
/// std::mt19937 because its state layout is implementation-defined for
/// discard() performance and we want identical streams across toolchains.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to fan a 64-bit seed out into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Marsaglia polar method (deterministic given seed).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace lmp::util
