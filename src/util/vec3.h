#pragma once

#include <array>
#include <cmath>
#include <cstddef>

namespace lmp::util {

/// Minimal 3-component double vector used throughout the MD engine.
///
/// Deliberately a plain aggregate (no SIMD wrappers): positions and
/// forces live in structure-of-arrays storage in `md::Atoms`; Vec3 is
/// only used for box extents, per-atom scratch values and geometry math.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr double& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
};

constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }

constexpr double dot(const Vec3& a, const Vec3& b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
constexpr double norm_sq(const Vec3& a) { return dot(a, a); }
inline double norm(const Vec3& a) { return std::sqrt(norm_sq(a)); }

constexpr bool operator==(const Vec3& a, const Vec3& b) {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

/// Integer 3-tuple for rank-grid / bin-grid coordinates.
struct Int3 {
  int x = 0;
  int y = 0;
  int z = 0;

  constexpr int& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr int operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr bool operator==(const Int3&) const = default;
};

constexpr Int3 operator+(Int3 a, const Int3& b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
constexpr Int3 operator-(Int3 a, const Int3& b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }

}  // namespace lmp::util
