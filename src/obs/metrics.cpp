#include "obs/metrics.h"

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace lmp::obs {

Histogram::Summary Histogram::summary() const {
  Summary s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.mean = static_cast<double>(sum_.load(std::memory_order_relaxed)) /
           static_cast<double>(s.count);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);

  const auto quantile = [this, &s](double q) {
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(s.count) + 0.5);
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += buckets_[b].load(std::memory_order_relaxed);
      if (cum >= target && cum > 0) {
        // Upper edge of bucket b ([2^(b-1), 2^b)), clamped to the
        // exact observed range.
        const std::uint64_t upper =
            b == 0 ? 0 : (b >= 63 ? s.max : (1ull << b) - 1);
        const std::uint64_t est =
            upper < s.min ? s.min : (upper > s.max ? s.max : upper);
        return static_cast<double>(est);
      }
    }
    return static_cast<double>(s.max);
  };
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

enum class MetricKind { kCounter, kGauge, kHistogram };

struct Slot {
  MetricKind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct RegistryState {
  mutable std::mutex mu;
  std::map<std::string, Slot> slots;  ///< ordered: snapshots come out sorted
};

RegistryState& state() {
  static RegistryState* s = new RegistryState;  // immortal, like the tracer
  return *s;
}

[[noreturn]] void kind_clash(const std::string& name) {
  throw std::logic_error("metric '" + name +
                         "' already registered as a different kind");
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry r;
  return r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard lock(s.mu);
  Slot& slot = s.slots[name];
  if (slot.counter == nullptr) {
    if (slot.gauge != nullptr || slot.histogram != nullptr) kind_clash(name);
    slot.kind = MetricKind::kCounter;
    slot.counter = std::make_unique<Counter>();
  }
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard lock(s.mu);
  Slot& slot = s.slots[name];
  if (slot.gauge == nullptr) {
    if (slot.counter != nullptr || slot.histogram != nullptr) kind_clash(name);
    slot.kind = MetricKind::kGauge;
    slot.gauge = std::make_unique<Gauge>();
  }
  return *slot.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard lock(s.mu);
  Slot& slot = s.slots[name];
  if (slot.histogram == nullptr) {
    if (slot.counter != nullptr || slot.gauge != nullptr) kind_clash(name);
    slot.kind = MetricKind::kHistogram;
    slot.histogram = std::make_unique<Histogram>();
  }
  return *slot.histogram;
}

void MetricsRegistry::reset_values() {
  RegistryState& s = state();
  std::lock_guard lock(s.mu);
  for (auto& [name, slot] : s.slots) {
    if (slot.counter) slot.counter->reset();
    if (slot.gauge) slot.gauge->reset();
    if (slot.histogram) slot.histogram->reset();
  }
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  RegistryState& s = state();
  std::lock_guard lock(s.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, slot] : s.slots) {
    if (slot.counter) out.emplace_back(name, slot.counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::gauges()
    const {
  RegistryState& s = state();
  std::lock_guard lock(s.mu);
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const auto& [name, slot] : s.slots) {
    if (slot.gauge) out.emplace_back(name, slot.gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Summary>>
MetricsRegistry::histograms() const {
  RegistryState& s = state();
  std::lock_guard lock(s.mu);
  std::vector<std::pair<std::string, Histogram::Summary>> out;
  for (const auto& [name, slot] : s.slots) {
    if (slot.histogram) out.emplace_back(name, slot.histogram->summary());
  }
  return out;
}

}  // namespace lmp::obs
