#include "obs/report.h"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace lmp::obs {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_.back()) out_ += ",";
  first_in_scope_.back() = false;
}

void JsonWriter::escape(const std::string& s) {
  out_ += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out_ += '\\';
      out_ += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out_ += buf;
    } else {
      out_ += c;
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += "{";
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += "}";
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += "[";
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += "]";
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  escape(k);
  out_ += ":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  escape(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // %.17g prints bare "inf"/"nan", which is not JSON — null is.
  for (const char* p = buf; *p != '\0'; ++p) {
    if (*p == 'n' || *p == 'i' || *p == 'N' || *p == 'I') {
      out_ += "null";
      return *this;
    }
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  return n == text.size() && rc == 0;
}

namespace {

/// Shared metrics section: everything the registry accumulated during
/// the run, so reports stay in sync with new instrumentation for free.
/// `section` must differ from the caller's other keys — a BenchRecord
/// already owns "metrics" for its headline numbers.
void append_metrics(JsonWriter& w, const char* section) {
  w.key(section).begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : MetricsRegistry::instance().counters()) {
    w.kv(name, v);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : MetricsRegistry::instance().gauges()) {
    w.kv(name, static_cast<std::int64_t>(v));
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, s] : MetricsRegistry::instance().histograms()) {
    w.key(name).begin_object();
    w.kv("count", s.count);
    w.kv("mean", s.mean);
    w.kv("p50", s.p50);
    w.kv("p95", s.p95);
    w.kv("p99", s.p99);
    w.kv("min", s.count > 0 ? s.min : 0);
    w.kv("max", s.max);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace

std::string RunReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kRunReportSchema);
  w.kv("version", kRunReportVersion);
  w.kv("workload", workload);
  w.kv("comm_requested", comm_requested);
  w.kv("comm_final", comm_final);
  w.kv("nsteps", nsteps);
  w.kv("restart_step", restart_step);
  w.kv("nranks", nranks);
  w.kv("natoms", static_cast<std::int64_t>(natoms));

  w.key("config").begin_object();
  for (const auto& [k, v] : config) w.kv(k, v);
  w.end_object();

  w.key("stages").begin_object();
  for (const ReportStage& s : stages) {
    w.key(s.name).begin_object();
    w.kv("seconds", s.seconds);
    w.kv("percent", s.percent);
    w.end_object();
  }
  w.kv("total_seconds", stage_total_seconds);
  w.end_object();

  w.key("health").begin_object();
  for (const auto& [k, v] : health_counters) w.kv(k, v);
  w.kv("checkpoint_io_seconds", checkpoint_io_seconds);
  w.key("escalations").begin_array();
  for (const ReportEscalation& e : escalations) {
    w.begin_object();
    w.kv("fail_step", e.fail_step);
    w.kv("resume_step", e.resume_step);
    w.kv("from", e.from_variant);
    w.kv("to", e.to_variant);
    w.kv("reason", e.reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("integrity").begin_object();
  w.kv("checks", integrity_checks);
  w.kv("detections", integrity_detections);
  w.kv("rollbacks", integrity_rollbacks);
  w.kv("mem_flips_injected", mem_flips_injected);
  w.key("events").begin_array();
  for (const ReportIntegrityEvent& e : integrity_events) {
    w.begin_object();
    w.kv("detect_step", e.detect_step);
    w.kv("resume_step", e.resume_step);
    w.kv("verdict", e.verdict);
    w.kv("reason", e.reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("link_utilization").begin_object();
  w.kv("total_bytes", fabric_total_bytes);
  w.kv("total_packets", fabric_total_packets);
  w.kv("puts_charged", fabric_puts_charged);
  w.kv("links_used", fabric_links_used);
  w.kv("max_link_bytes", fabric_max_link_bytes);
  w.kv("mean_link_bytes", fabric_mean_link_bytes);
  w.key("top_links").begin_array();
  for (const ReportLink& l : top_links) {
    w.begin_object();
    w.kv("from", l.from);
    w.kv("to", l.to);
    w.kv("axis", l.axis);
    w.kv("bytes", l.bytes);
    w.kv("packets", l.packets);
    w.end_object();
  }
  w.end_array();
  w.key("hop_histogram").begin_array();
  for (const std::uint64_t h : hop_histogram) w.value(h);
  w.end_array();
  w.end_object();

  w.key("critical_path").begin_object();
  for (const ReportStage& s : critical_path) {
    w.key(s.name).begin_object();
    w.kv("seconds", s.seconds);
    w.kv("percent", s.percent);
    w.end_object();
  }
  w.kv("total_seconds", critical_path_total_seconds);
  w.end_object();

  w.key("memory").begin_object();
  w.kv("tracked", mem_tracked);
  w.kv("total_allocs", mem_total_allocs);
  w.kv("total_frees", mem_total_frees);
  w.kv("total_bytes", mem_total_bytes);
  w.kv("live_bytes", mem_live_bytes);
  w.kv("heap_high_water_bytes", mem_high_water_bytes);
  w.kv("rss_bytes", mem_rss_bytes);
  w.key("scopes").begin_object();
  for (const ReportMemoryScope& s : mem_scopes) {
    w.key(s.scope).begin_object();
    w.kv("allocs", s.allocs);
    w.kv("frees", s.frees);
    w.kv("bytes", s.bytes);
    w.end_object();
  }
  w.end_object();
  w.end_object();

  w.key("thermo_first").begin_object();
  for (const auto& [k, v] : thermo_first) w.kv(k, v);
  w.end_object();
  w.key("thermo_last").begin_object();
  for (const auto& [k, v] : thermo_last) w.kv(k, v);
  w.end_object();

  append_metrics(w, "metrics");
  w.end_object();
  return w.str() + "\n";
}

std::string BenchRecord::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kBenchRecordSchema);
  w.kv("version", kBenchRecordVersion);
  w.kv("name", name);
  w.key("labels").begin_object();
  for (const auto& [k, v] : labels) w.kv(k, v);
  w.end_object();
  w.key("metrics").begin_object();
  for (const auto& [k, v] : metrics) w.kv(k, v);
  w.end_object();
  append_metrics(w, "registry");
  w.end_object();
  return w.str() + "\n";
}

}  // namespace lmp::obs
