#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lmp::obs {

/// Subsystem categories for runtime trace gating. Each instrumentation
/// site names one; `set_trace_categories` turns categories on and off
/// per subsystem without rebuilding.
enum class TraceCat : std::uint32_t {
  kSim = 1u << 0,   ///< per-step / per-stage spans (sim/)
  kComm = 1u << 1,  ///< NACK/retransmit/CRC protocol events (comm/)
  kTofu = 1u << 2,  ///< fabric puts and queue depths (tofu/)
  kPool = 1u << 3,  ///< thread-pool dispatch/run (threadpool/)
  kCkpt = 1u << 4,  ///< checkpoint and failover lifecycle (sim/)
  kServe = 1u << 5, ///< job-server lifecycle, sampler ticks, SLO edges
  kAlloc = 1u << 6, ///< heap allocation instants (obs/alloc_tracker)
};

inline constexpr std::uint32_t kAllTraceCats = 0x7Fu;

/// The mask drivers enable for "--trace": everything except kAlloc.
/// Alloc instants fire once per heap allocation — tens of thousands per
/// short run — and a ring flooded with them evicts the flow/span events
/// every downstream consumer (critical path, flow matching) needs, so
/// the allocation timeline is strictly opt-in (lmp_cli --trace-alloc).
inline constexpr std::uint32_t kDefaultTraceCats =
    kAllTraceCats & ~static_cast<std::uint32_t>(TraceCat::kAlloc);

const char* trace_cat_name(TraceCat c);

/// Nanoseconds since the process-wide trace epoch (steady clock).
std::int64_t now_ns();

namespace detail {
extern std::atomic<std::uint32_t> g_trace_cats;
extern std::atomic<bool> g_metrics_on;
}  // namespace detail

/// Hot-path gates: one relaxed atomic load each. Instrumentation sites
/// test these before touching the clock, so a disabled run pays a
/// branch and nothing else.
inline bool trace_enabled(TraceCat c) {
  return (detail::g_trace_cats.load(std::memory_order_relaxed) &
          static_cast<std::uint32_t>(c)) != 0;
}
inline bool metrics_enabled() {
  return detail::g_metrics_on.load(std::memory_order_relaxed);
}

void set_trace_categories(std::uint32_t mask);  ///< OR of TraceCat bits
void set_metrics_enabled(bool on);

/// True when the tree was built with LMP_TRACE=ON (instrumentation
/// macros expand to real code). With LMP_TRACE=OFF the tracer library
/// still exists — it just never receives events.
constexpr bool trace_compiled_in() {
#if defined(LMP_TRACE_ENABLED)
  return true;
#else
  return false;
#endif
}

/// One trace record. `name` must be a string with static storage
/// duration (a literal) — events store the pointer, never a copy, so
/// the hot path performs no allocation.
struct TraceEvent {
  enum Kind : std::uint8_t {
    kSpan,
    kInstant,
    kCounter,
    kFlowStart,   ///< Perfetto flow phase "s" (binds to enclosing span)
    kFlowStep,    ///< phase "t" — e.g. a retransmit on the same flow
    kFlowFinish,  ///< phase "f" with bp:e (binds to enclosing span)
  };
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;  ///< spans only
  const char* name = nullptr;
  TraceCat cat = TraceCat::kSim;
  std::int64_t value = 0;  ///< counters: the sample; flow events: the flow id
  Kind kind = kSpan;
};

/// One exported event with the identity of the thread that recorded it.
/// What `Tracer::snapshot_events` hands to post-run analyzers.
struct CollectedEvent {
  int pid = -1;
  int tid = 0;
  TraceEvent event;
};

/// The one name every message-flow event carries: Perfetto binds flow
/// phases s/t/f together only when id, cat, AND name all match, so the
/// sender (tofu put) and receiver (comm dispatcher) sides must agree.
inline constexpr const char* kMsgFlowName = "msg";

/// Per-rank, per-thread event tracer.
///
/// Every emitting thread owns a private fixed-capacity ring buffer
/// (single writer, no locks on the record path; the ring overwrites its
/// oldest events when full, so a runaway subsystem can never exhaust
/// memory). Threads announce who they are with `set_thread_identity`
/// (pid = simulated rank, tid = worker index) so the exported
/// Chrome/Perfetto `trace_event` JSON shows one process per rank and
/// one track per worker/progress thread.
///
/// Export is not synchronized with live writers: drain only after the
/// emitting threads have joined (the sim joins all rank/pool/progress
/// threads before `run_simulation` returns).
class Tracer {
 public:
  static Tracer& instance();

  /// Bind the calling thread to (pid, tid) with a human-readable track
  /// label. Replaces any previous identity of this thread. Threads that
  /// emit without identifying themselves get pid -1 ("driver").
  void set_thread_identity(int pid, int tid, const char* label);

  /// Rank ("pid") of the calling thread, or -1 when unidentified. Used
  /// to let helper threads (pool workers) inherit their creator's rank.
  int current_pid();

  void record_span(TraceCat c, const char* name, std::int64_t ts_ns,
                   std::int64_t dur_ns);
  void record_instant(TraceCat c, const char* name);
  void record_counter(TraceCat c, const char* name, std::int64_t value);
  /// Flow phase event (`phase` one of kFlowStart/kFlowStep/kFlowFinish).
  /// Emit it while the span it should visually bind to is open on the
  /// calling thread — Perfetto attaches a flow phase to the slice that
  /// encloses its timestamp on (pid, tid).
  void record_flow(TraceCat c, const char* name, std::uint64_t flow_id,
                   TraceEvent::Kind phase);

  /// Ring capacity (events) for buffers registered *after* this call.
  void set_buffer_capacity(std::size_t events);

  /// Drop every buffered event and registration; threads re-register on
  /// their next event. For back-to-back runs in one process (tests).
  void reset();

  /// Every surviving event across all thread buffers, sorted by
  /// (ts_ns, pid, tid) — the stable order the JSON export emits and the
  /// input the critical-path analyzer walks.
  std::vector<CollectedEvent> snapshot_events() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}), one pid per rank
  /// with process/thread-name metadata, "X" spans, "i" instants, "C"
  /// counters, and flow phases "s"/"t"/"f" bound by id; timestamps in
  /// microseconds as the format requires. Events are sorted by
  /// (timestamp, pid, tid) so equal-seed runs produce diffable traces.
  std::string export_chrome_json() const;
  bool export_chrome_json_file(const std::string& path) const;

  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;  ///< overwritten by ring wrap

 private:
  Tracer() = default;
};

/// RAII span: stamps the start on construction (when its category is
/// enabled) and records a complete event on destruction. With
/// LMP_TRACE=OFF this collapses to an empty object.
class TraceSpan {
 public:
#if defined(LMP_TRACE_ENABLED)
  TraceSpan(TraceCat c, const char* name) {
    if (trace_enabled(c)) {
      cat_ = c;
      name_ = name;
      t0_ = now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer::instance().record_span(cat_, name_, t0_, now_ns() - t0_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCat cat_ = TraceCat::kSim;
  const char* name_ = nullptr;
  std::int64_t t0_ = 0;
#else
  constexpr TraceSpan(TraceCat, const char*) {}
#endif
};

// --- instrumentation macros -------------------------------------------
// Compile-time removable: LMP_TRACE=OFF turns every site into nothing.
#if defined(LMP_TRACE_ENABLED)
#define LMP_TRACE_CONCAT_INNER(a, b) a##b
#define LMP_TRACE_CONCAT(a, b) LMP_TRACE_CONCAT_INNER(a, b)
/// Scoped span covering the rest of the enclosing block.
#define LMP_TRACE_SPAN(cat, name)                                      \
  ::lmp::obs::TraceSpan LMP_TRACE_CONCAT(lmp_trace_span_, __COUNTER__)( \
      cat, name)
#define LMP_TRACE_INSTANT(cat, name)                             \
  do {                                                           \
    if (::lmp::obs::trace_enabled(cat))                          \
      ::lmp::obs::Tracer::instance().record_instant(cat, name);  \
  } while (0)
#define LMP_TRACE_COUNTER(cat, name, value)                              \
  do {                                                                   \
    if (::lmp::obs::trace_enabled(cat))                                  \
      ::lmp::obs::Tracer::instance().record_counter(cat, name, value);   \
  } while (0)
#define LMP_TRACE_THREAD(pid, tid, label) \
  ::lmp::obs::Tracer::instance().set_thread_identity(pid, tid, label)
/// Flow phase (s/t/f) with `id`; `phase` is a TraceEvent::Kind flow kind.
#define LMP_TRACE_FLOW(cat, name, id, phase)                                \
  do {                                                                     \
    if (::lmp::obs::trace_enabled(cat))                                     \
      ::lmp::obs::Tracer::instance().record_flow(cat, name, id, phase);     \
  } while (0)
#else
#define LMP_TRACE_SPAN(cat, name) \
  do {                            \
  } while (0)
#define LMP_TRACE_INSTANT(cat, name) \
  do {                               \
  } while (0)
#define LMP_TRACE_COUNTER(cat, name, value) \
  do {                                      \
  } while (0)
#define LMP_TRACE_THREAD(pid, tid, label) \
  do {                                    \
  } while (0)
#define LMP_TRACE_FLOW(cat, name, id, phase) \
  do {                                       \
  } while (0)
#endif

}  // namespace lmp::obs
