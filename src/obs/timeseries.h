#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lmp::obs {

/// One timestamped sample. Timestamps are milliseconds on the tracer's
/// process-wide steady epoch (`now_ns() / 1e6`) so series, spans, and
/// SLO windows all live on the same clock.
struct Sample {
  std::int64_t t_ms = 0;
  double value = 0.0;
};

/// Rolling-window summary of one series: what the `stats` snapshot and
/// the SLO evaluator consume. `rate_per_s` is sum / window-span — the
/// natural reading for delta series (counter increments per tick); for
/// gauge-like series it is just sum-over-window and callers ignore it.
struct WindowAggregate {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double rate_per_s = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Fixed-capacity ring buffer of timestamped samples.
///
/// The telemetry plane's memory contract: a series can never grow past
/// its capacity, whatever the sampling cadence — old samples are
/// overwritten, exactly like the tracer's event rings. One writer (the
/// sampler thread) appends; any thread may snapshot or aggregate
/// concurrently. The internal mutex is uncontended in steady state
/// (sampler ticks every ~100 ms, snapshots are client-driven), so this
/// is nowhere near any hot path — the hot path only ever touches the
/// lock-free counters the sampler delta-reads.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 512);

  void append(std::int64_t t_ms, double value);

  std::size_t capacity() const { return cap_; }
  /// Samples currently held (<= capacity).
  std::size_t size() const;
  /// Samples ever appended (>= size(); the difference was overwritten).
  std::uint64_t total_appended() const;

  /// Surviving samples, oldest first.
  std::vector<Sample> samples() const;
  /// Surviving samples with t_ms >= since_ms, oldest first.
  std::vector<Sample> samples_since(std::int64_t since_ms) const;

  /// Aggregate the window [now_ms - window_ms, now_ms]. An empty window
  /// returns a zero aggregate (count == 0) — never throws.
  WindowAggregate aggregate(std::int64_t now_ms, std::int64_t window_ms) const;

 private:
  mutable std::mutex mu_;
  std::size_t cap_;
  std::vector<Sample> ring_;
  std::size_t head_ = 0;      ///< next write slot once the ring is full
  std::uint64_t count_ = 0;   ///< total appended
};

/// Aggregate an explicit sample set (oldest first) over `window_ms`.
/// The free-function core of TimeSeries::aggregate, exposed so tests can
/// pin the math without building a ring.
WindowAggregate aggregate_samples(const std::vector<Sample>& samples,
                                  std::int64_t window_ms);

/// Delta tracker against a monotonic counter: each `advance(current)`
/// returns how much the counter grew since the last call. The first
/// observation primes the tracker and returns 0 (no interval yet). A
/// counter that went *backwards* — the metrics registry was reset
/// mid-flight — is treated Prometheus-style as a restart from zero: the
/// delta is the current value, never an underflowed wrap.
class CounterDelta {
 public:
  std::uint64_t advance(std::uint64_t current) {
    const std::uint64_t prev = last_;
    last_ = current;
    if (!primed_) {
      primed_ = true;
      return 0;
    }
    return current >= prev ? current - prev : current;
  }

 private:
  std::uint64_t last_ = 0;
  bool primed_ = false;
};

/// Named TimeSeries collection. Unlike the MetricsRegistry this is NOT a
/// process singleton: each job server owns one, so back-to-back servers
/// in one test process never see each other's history. Series references
/// are stable for the registry's lifetime (find-or-create behind a
/// mutex, like the metrics registry).
class SeriesRegistry {
 public:
  explicit SeriesRegistry(std::size_t default_capacity = 512)
      : default_capacity_(default_capacity) {}

  SeriesRegistry(const SeriesRegistry&) = delete;
  SeriesRegistry& operator=(const SeriesRegistry&) = delete;

  /// Find-or-create.
  TimeSeries& series(const std::string& name);
  /// Null when the name was never created.
  const TimeSeries* find(const std::string& name) const;
  /// Sorted names (map order).
  std::vector<std::string> names() const;

 private:
  std::size_t default_capacity_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

}  // namespace lmp::obs
