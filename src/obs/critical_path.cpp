#include "obs/critical_path.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>

#include "util/table_printer.h"

namespace lmp::obs {

namespace {

bool has_prefix(const char* name, const char* prefix) {
  return name != nullptr && std::strncmp(name, prefix, std::strlen(prefix)) == 0;
}

/// One rank-step window with its per-bucket accumulators (nanoseconds).
struct StepWindow {
  std::int64_t ts = 0;
  std::int64_t end = 0;
  std::int64_t pack = 0;
  std::int64_t wait = 0;
  std::int64_t wire = 0;
};

}  // namespace

CriticalPathReport analyze_critical_path(
    const std::vector<CollectedEvent>& events) {
  // Pass 1: the step windows of every rank, and each flow's start time.
  std::map<int, std::vector<StepWindow>> windows;  // pid -> sorted windows
  std::unordered_map<std::uint64_t, std::int64_t> flow_start;
  for (const CollectedEvent& ce : events) {
    const TraceEvent& e = ce.event;
    if (e.kind == TraceEvent::kSpan && e.cat == TraceCat::kSim &&
        e.name != nullptr && std::strcmp(e.name, "step") == 0) {
      windows[ce.pid].push_back({e.ts_ns, e.ts_ns + e.dur_ns, 0, 0, 0});
    } else if (e.kind == TraceEvent::kFlowStart) {
      // Keep the earliest start (a retransmitted flow re-announces via
      // kFlowStep, which never resets the origin).
      flow_start.emplace(static_cast<std::uint64_t>(e.value), e.ts_ns);
    }
  }
  for (auto& [pid, w] : windows) {
    std::sort(w.begin(), w.end(), [](const StepWindow& a, const StepWindow& b) {
      return a.ts < b.ts;
    });
  }

  // The step window of `pid` containing time `t`, or nullptr. Windows of
  // one rank never overlap (the rank thread emits them back to back).
  const auto window_at = [&windows](int pid, std::int64_t t) -> StepWindow* {
    const auto it = windows.find(pid);
    if (it == windows.end()) return nullptr;
    auto& w = it->second;
    auto pos = std::upper_bound(
        w.begin(), w.end(), t,
        [](std::int64_t v, const StepWindow& s) { return v < s.ts; });
    if (pos == w.begin()) return nullptr;
    --pos;
    return t <= pos->end ? &*pos : nullptr;
  };

  // Pass 2: attribute spans and flow finishes to their enclosing window.
  for (const CollectedEvent& ce : events) {
    const TraceEvent& e = ce.event;
    if (e.kind == TraceEvent::kSpan) {
      const bool pack =
          has_prefix(e.name, "pack.") || has_prefix(e.name, "put.tni");
      const bool wait = !pack && has_prefix(e.name, "wait.");
      if (!pack && !wait) continue;
      StepWindow* w = window_at(ce.pid, e.ts_ns + e.dur_ns);
      if (w == nullptr) continue;
      (pack ? w->pack : w->wait) += e.dur_ns;
    } else if (e.kind == TraceEvent::kFlowFinish) {
      const auto s = flow_start.find(static_cast<std::uint64_t>(e.value));
      if (s == flow_start.end() || e.ts_ns < s->second) continue;
      StepWindow* w = window_at(ce.pid, e.ts_ns);
      if (w == nullptr) continue;
      w->wire += e.ts_ns - s->second;
    }
  }

  // Reduce: per-window capping, then job-wide sums.
  CriticalPathReport r;
  std::int64_t step_ns = 0, pack_ns = 0, wait_ns = 0, wire_ns = 0;
  for (const auto& [pid, w] : windows) {
    r.nranks += 1;
    r.nsteps = std::max(r.nsteps, static_cast<int>(w.size()));
    for (const StepWindow& s : w) {
      const std::int64_t dur = s.end - s.ts;
      const std::int64_t wire = std::min(s.wire, s.wait);
      step_ns += dur;
      pack_ns += std::min(s.pack, dur);
      wait_ns += std::min(s.wait, dur);
      wire_ns += wire;
    }
  }
  if (step_ns == 0) return r;

  const double to_s = 1e-9;
  r.step_seconds_total = static_cast<double>(step_ns) * to_s;
  const std::int64_t imb_ns = wait_ns - wire_ns;
  const std::int64_t compute_ns = std::max<std::int64_t>(
      0, step_ns - pack_ns - wait_ns);
  const auto row = [&](const char* name, std::int64_t ns) {
    r.rows.push_back({name, static_cast<double>(ns) * to_s,
                      100.0 * static_cast<double>(ns) /
                          static_cast<double>(step_ns)});
  };
  row("compute", compute_ns);
  row("pack", pack_ns);
  row("wire_transit", wire_ns);
  row("imbalance", imb_ns);
  row("notice_wait", wait_ns);
  return r;
}

std::string format_critical_path_table(const CriticalPathReport& r) {
  if (r.empty() || r.rows.empty()) return "";
  std::string out = "critical path (";
  out += std::to_string(r.nranks);
  out += " ranks x ";
  out += std::to_string(r.nsteps);
  out += " steps, ";
  out += util::TablePrinter::fmt(r.step_seconds_total, 3);
  out += " s summed step time)\n";
  util::TablePrinter t({"bucket", "seconds", "percent"});
  for (const CriticalPathRow& row : r.rows) {
    t.add_row({row.name, util::TablePrinter::fmt(row.seconds, 4),
               util::TablePrinter::fmt(row.percent, 1)});
  }
  out += t.to_string();
  return out;
}

}  // namespace lmp::obs
