#include "obs/slo.h"

#include <cmath>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace lmp::obs {

namespace {

std::string fmt(const char* format, double a, double b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return std::string(buf);
}

}  // namespace

std::string TenantSlo::breach_detail() const {
  std::string out;
  const auto add = [&out](const std::string& part) {
    if (!out.empty()) out += "; ";
    out += part;
  };
  if (breach_queue_wait) {
    add(fmt("queue-wait-p99 %.1fms > %.1fms", queue_wait_p99_ms,
            policy.queue_wait_p99_ms));
  }
  if (breach_deadline) {
    add(fmt("deadline-hit-rate %.3f < %.3f", deadline_hit_rate,
            policy.deadline_hit_rate_min));
  }
  if (breach_step_rate) {
    add(fmt("steps/s %.2f < %.2f", steps_per_sec, policy.steps_per_sec_min));
  }
  if (breach_rollbacks) {
    add(fmt("integrity-rollbacks %.0f over budget %.0f",
            static_cast<double>(integrity_rollbacks),
            static_cast<double>(policy.integrity_rollback_budget)));
  }
  return out;
}

SloAccountant::SloAccountant(SloPolicy default_policy,
                             std::size_t series_capacity)
    : default_policy_(default_policy), series_capacity_(series_capacity) {}

void SloAccountant::set_policy(const std::string& tenant,
                               const SloPolicy& policy) {
  std::lock_guard<std::mutex> lk(mu_);
  policies_[tenant] = policy;
}

SloPolicy SloAccountant::policy_for(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = policies_.find(tenant);
  return it == policies_.end() ? default_policy_ : it->second;
}

SloAccountant::Tenant& SloAccountant::tenant_locked(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, std::make_unique<Tenant>(series_capacity_))
             .first;
  }
  return *it->second;
}

void SloAccountant::record_queue_wait(const std::string& tenant,
                                      std::int64_t t_ms, double wait_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  tenant_locked(tenant).queue_wait_ms.append(t_ms, wait_ms);
}

void SloAccountant::record_deadline(const std::string& tenant,
                                    std::int64_t t_ms, bool hit) {
  std::lock_guard<std::mutex> lk(mu_);
  tenant_locked(tenant).deadline_outcomes.append(t_ms, hit ? 1.0 : 0.0);
}

void SloAccountant::record_steps(const std::string& tenant, std::int64_t t_ms,
                                 double steps) {
  std::lock_guard<std::mutex> lk(mu_);
  tenant_locked(tenant).step_deltas.append(t_ms, steps);
}

void SloAccountant::record_rollbacks(const std::string& tenant,
                                     std::int64_t t_ms, double rollbacks) {
  std::lock_guard<std::mutex> lk(mu_);
  tenant_locked(tenant).rollback_deltas.append(t_ms, rollbacks);
}

std::vector<TenantSlo> SloAccountant::evaluate(
    std::int64_t now_ms, const std::set<std::string>& running_tenants) {
  std::vector<TenantSlo> out;
  std::vector<SloBreachEvent> transitions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.reserve(tenants_.size());
    for (auto& [name, tenant] : tenants_) {
      const auto pit = policies_.find(name);
      const SloPolicy& policy =
          pit == policies_.end() ? default_policy_ : pit->second;

      TenantSlo slo;
      slo.tenant = name;
      slo.window_ms = policy.window_ms;
      slo.active = running_tenants.count(name) > 0;
      slo.policy = policy;

      const WindowAggregate waits =
          tenant->queue_wait_ms.aggregate(now_ms, policy.window_ms);
      slo.queue_wait_samples = waits.count;
      slo.queue_wait_p50_ms = waits.p50;
      slo.queue_wait_p99_ms = waits.p99;
      if (policy.queue_wait_p99_ms > 0.0 && waits.count > 0 &&
          waits.p99 > policy.queue_wait_p99_ms) {
        slo.breach_queue_wait = true;
      }

      const WindowAggregate outcomes =
          tenant->deadline_outcomes.aggregate(now_ms, policy.window_ms);
      if (outcomes.count > 0) {
        // Samples are 1.0 hit / 0.0 miss, so the window sum is the hit
        // count and mean is the hit rate.
        slo.deadline_hits = static_cast<std::uint64_t>(
            std::llround(outcomes.sum));
        slo.deadline_misses = outcomes.count - slo.deadline_hits;
        slo.deadline_hit_rate = outcomes.mean;
        if (policy.deadline_hit_rate_min > 0.0 &&
            slo.deadline_hit_rate < policy.deadline_hit_rate_min) {
          slo.breach_deadline = true;
        }
      }

      const WindowAggregate steps =
          tenant->step_deltas.aggregate(now_ms, policy.window_ms);
      slo.steps_per_sec = steps.rate_per_s;
      if (policy.steps_per_sec_min > 0.0 && slo.active &&
          slo.steps_per_sec < policy.steps_per_sec_min) {
        slo.breach_step_rate = true;
      }

      const WindowAggregate rollbacks =
          tenant->rollback_deltas.aggregate(now_ms, policy.window_ms);
      slo.integrity_rollbacks =
          static_cast<std::uint64_t>(std::llround(rollbacks.sum));
      if (policy.integrity_rollback_budget >= 0 &&
          static_cast<std::int64_t>(slo.integrity_rollbacks) >
              policy.integrity_rollback_budget) {
        slo.breach_rollbacks = true;
      }

      const bool breached = slo.breached();
      if (breached != tenant->in_breach) {
        tenant->in_breach = breached;
        SloBreachEvent ev;
        ev.t_ms = now_ms;
        ev.tenant = name;
        ev.entered = breached;
        ev.detail = breached ? slo.breach_detail() : "recovered";
        if (breached) ++breaches_entered_;
        events_.push_back(ev);
        while (events_.size() > kMaxEvents) events_.pop_front();
        transitions.push_back(std::move(ev));
      }
      out.push_back(std::move(slo));
    }
  }
  // Emit transition instants outside the accountant lock. Tracer names
  // must be static literals; the tenant + detail travel as counters
  // cannot carry strings, so breaches also bump a metric the snapshot
  // and health report expose with full detail from events().
  for (const SloBreachEvent& ev : transitions) {
    if (ev.entered) {
      LMP_TRACE_INSTANT(lmp::obs::TraceCat::kServe, "slo.breach");
      MetricsRegistry::instance().counter("serve.slo_breaches").add(1);
    } else {
      LMP_TRACE_INSTANT(lmp::obs::TraceCat::kServe, "slo.recover");
    }
  }
  return out;
}

std::vector<SloBreachEvent> SloAccountant::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::vector<SloBreachEvent>(events_.begin(), events_.end());
}

std::uint64_t SloAccountant::breaches_entered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return breaches_entered_;
}

std::set<std::string> SloAccountant::breached_tenants() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::set<std::string> out;
  for (const auto& [name, tenant] : tenants_) {
    if (tenant->in_breach) out.insert(name);
  }
  return out;
}

}  // namespace lmp::obs
