#include "obs/tracer.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace lmp::obs {

namespace detail {
std::atomic<std::uint32_t> g_trace_cats{0};
std::atomic<bool> g_metrics_on{false};
}  // namespace detail

void set_trace_categories(std::uint32_t mask) {
  detail::g_trace_cats.store(mask & kAllTraceCats, std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  detail::g_metrics_on.store(on, std::memory_order_relaxed);
}

const char* trace_cat_name(TraceCat c) {
  switch (c) {
    case TraceCat::kSim:
      return "sim";
    case TraceCat::kComm:
      return "comm";
    case TraceCat::kTofu:
      return "tofu";
    case TraceCat::kPool:
      return "pool";
    case TraceCat::kCkpt:
      return "ckpt";
    case TraceCat::kServe:
      return "serve";
    case TraceCat::kAlloc:
      return "alloc";
  }
  return "?";
}

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// One thread's private ring. The owning thread is the only writer;
/// the exporter reads after writers have joined.
struct ThreadBuffer {
  int pid = -1;
  int tid = 0;
  const char* label = "thread";
  std::uint64_t gen = 0;       ///< tracer generation this buffer belongs to
  std::size_t capacity = 0;
  std::vector<TraceEvent> ring;  ///< allocated lazily on first event
  std::size_t head = 0;          ///< next write index
  std::uint64_t count = 0;       ///< total events ever written

  void write(const TraceEvent& e) {
    if (ring.empty()) ring.resize(capacity);
    ring[head] = e;
    head = (head + 1) % ring.size();
    ++count;
  }
};

struct TracerState {
  mutable std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<std::uint64_t> generation{1};
  std::atomic<std::size_t> capacity{16384};
  std::atomic<int> anon_tid{1000};  ///< tids for unidentified threads
};

TracerState& state() {
  static TracerState* s = new TracerState;  // immortal: threads may outlive main
  return *s;
}

struct Tls {
  std::shared_ptr<ThreadBuffer> buf;
};

thread_local Tls tls;

/// The calling thread's buffer for the current tracer generation,
/// registering (or re-registering after a reset) as needed.
ThreadBuffer& current_buffer() {
  TracerState& s = state();
  const std::uint64_t gen = s.generation.load(std::memory_order_acquire);
  if (tls.buf == nullptr || tls.buf->gen != gen) {
    auto buf = std::make_shared<ThreadBuffer>();
    // Carry identity across a reset so long-lived threads keep their
    // track; brand-new threads start unidentified.
    if (tls.buf != nullptr) {
      buf->pid = tls.buf->pid;
      buf->tid = tls.buf->tid;
      buf->label = tls.buf->label;
    } else {
      buf->tid = s.anon_tid.fetch_add(1, std::memory_order_relaxed);
    }
    buf->gen = gen;
    buf->capacity = s.capacity.load(std::memory_order_relaxed);
    {
      std::lock_guard lock(s.mu);
      s.buffers.push_back(buf);
    }
    tls.buf = std::move(buf);
  }
  return *tls.buf;
}

void json_escape_into(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::set_thread_identity(int pid, int tid, const char* label) {
  ThreadBuffer& b = current_buffer();
  b.pid = pid;
  b.tid = tid;
  b.label = label;
}

int Tracer::current_pid() { return current_buffer().pid; }

void Tracer::record_span(TraceCat c, const char* name, std::int64_t ts_ns,
                         std::int64_t dur_ns) {
  TraceEvent e;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.name = name;
  e.cat = c;
  e.kind = TraceEvent::kSpan;
  current_buffer().write(e);
}

void Tracer::record_instant(TraceCat c, const char* name) {
  TraceEvent e;
  e.ts_ns = now_ns();
  e.name = name;
  e.cat = c;
  e.kind = TraceEvent::kInstant;
  current_buffer().write(e);
}

void Tracer::record_counter(TraceCat c, const char* name, std::int64_t value) {
  TraceEvent e;
  e.ts_ns = now_ns();
  e.name = name;
  e.cat = c;
  e.value = value;
  e.kind = TraceEvent::kCounter;
  current_buffer().write(e);
}

void Tracer::record_flow(TraceCat c, const char* name, std::uint64_t flow_id,
                         TraceEvent::Kind phase) {
  TraceEvent e;
  e.ts_ns = now_ns();
  e.name = name;
  e.cat = c;
  e.value = static_cast<std::int64_t>(flow_id);
  e.kind = phase;
  current_buffer().write(e);
}

void Tracer::set_buffer_capacity(std::size_t events) {
  state().capacity.store(events > 0 ? events : 1, std::memory_order_relaxed);
}

void Tracer::reset() {
  TracerState& s = state();
  std::lock_guard lock(s.mu);
  s.buffers.clear();
  s.generation.fetch_add(1, std::memory_order_release);
}

std::uint64_t Tracer::events_recorded() const {
  TracerState& s = state();
  std::lock_guard lock(s.mu);
  std::uint64_t n = 0;
  for (const auto& b : s.buffers) n += b->count;
  return n;
}

std::uint64_t Tracer::events_dropped() const {
  TracerState& s = state();
  std::lock_guard lock(s.mu);
  std::uint64_t n = 0;
  for (const auto& b : s.buffers) {
    if (!b->ring.empty() && b->count > b->ring.size()) {
      n += b->count - b->ring.size();
    }
  }
  return n;
}

std::vector<CollectedEvent> Tracer::snapshot_events() const {
  TracerState& s = state();
  std::lock_guard lock(s.mu);
  std::vector<CollectedEvent> events;
  for (const auto& b : s.buffers) {
    const std::size_t n = std::min<std::uint64_t>(b->count, b->ring.size());
    // Oldest surviving event first: when the ring wrapped, that is the
    // slot the next write would overwrite.
    const std::size_t start = b->count > b->ring.size() ? b->head : 0;
    for (std::size_t i = 0; i < n; ++i) {
      events.push_back({b->pid, b->tid, b->ring[(start + i) % b->ring.size()]});
    }
  }
  // Deterministic export order: registration order of the thread buffers
  // depends on thread scheduling, so sort globally. Stable keeps one
  // thread's equal-timestamp events (e.g. back-to-back instants) in
  // their recorded order.
  std::stable_sort(events.begin(), events.end(),
                   [](const CollectedEvent& a, const CollectedEvent& b) {
                     if (a.event.ts_ns != b.event.ts_ns) {
                       return a.event.ts_ns < b.event.ts_ns;
                     }
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.tid < b.tid;
                   });
  return events;
}

std::string Tracer::export_chrome_json() const {
  const std::vector<CollectedEvent> events = snapshot_events();

  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const std::string& obj) {
    if (!first) out += ",";
    out += "\n";
    out += obj;
    first = false;
  };
  char buf[256];

  // Metadata: one process per rank, one named track per thread. Sorted
  // by (pid, tid) — like the events — so the whole file is diffable.
  struct TrackId {
    int pid;
    int tid;
    const char* label;
  };
  std::vector<TrackId> tracks;
  {
    TracerState& s = state();
    std::lock_guard lock(s.mu);
    for (const auto& b : s.buffers) {
      if (b->count == 0) continue;
      tracks.push_back({b->pid, b->tid, b->label});
    }
  }
  std::sort(tracks.begin(), tracks.end(), [](const TrackId& a, const TrackId& b) {
    return a.pid != b.pid ? a.pid < b.pid : a.tid < b.tid;
  });
  std::vector<int> pids_seen;
  for (const TrackId& t : tracks) {
    if (std::find(pids_seen.begin(), pids_seen.end(), t.pid) ==
        pids_seen.end()) {
      pids_seen.push_back(t.pid);
      std::string name = t.pid >= 0 ? "rank " + std::to_string(t.pid) : "driver";
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                    "\"args\":{\"name\":\"%s\"}}",
                    t.pid, name.c_str());
      emit(buf);
      // Ranks in rank order first, the driver process (server/telemetry
      // threads, pid -1) pinned to the bottom of the Perfetto timeline.
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_sort_index\","
                    "\"args\":{\"sort_index\":%d}}",
                    t.pid, t.pid >= 0 ? t.pid : 1000000);
      emit(buf);
    }
    std::string label;
    json_escape_into(label, t.label);
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"%s %d\"}}",
                  t.pid, t.tid, label.c_str(), t.tid);
    emit(buf);
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                  "\"thread_sort_index\",\"args\":{\"sort_index\":%d}}",
                  t.pid, t.tid, t.tid);
    emit(buf);
  }

  for (const CollectedEvent& ce : events) {
    const TraceEvent& e = ce.event;
    std::string name;
    json_escape_into(name, e.name);
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    switch (e.kind) {
      case TraceEvent::kSpan: {
        const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                      "\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"%s\"}",
                      ce.pid, ce.tid, ts_us, dur_us, name.c_str(),
                      trace_cat_name(e.cat));
        break;
      }
      case TraceEvent::kInstant:
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                      "\"name\":\"%s\",\"cat\":\"%s\",\"s\":\"t\"}",
                      ce.pid, ce.tid, ts_us, name.c_str(),
                      trace_cat_name(e.cat));
        break;
      case TraceEvent::kCounter:
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                      "\"name\":\"%s\",\"cat\":\"%s\",\"args\":{\"value\":"
                      "%" PRId64 "}}",
                      ce.pid, ce.tid, ts_us, name.c_str(),
                      trace_cat_name(e.cat), e.value);
        break;
      case TraceEvent::kFlowStart:
      case TraceEvent::kFlowStep:
      case TraceEvent::kFlowFinish: {
        const char* ph = e.kind == TraceEvent::kFlowStart
                             ? "s"
                             : e.kind == TraceEvent::kFlowStep ? "t" : "f";
        // bp:e on the finish binds it to the enclosing slice (the
        // receiver's notice-wait span) instead of the next slice.
        const char* bind = e.kind == TraceEvent::kFlowFinish ? ",\"bp\":\"e\"" : "";
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"%s\"%s,\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                      "\"name\":\"%s\",\"cat\":\"%s\",\"id\":\"0x%" PRIx64 "\"}",
                      ph, bind, ce.pid, ce.tid, ts_us, name.c_str(),
                      trace_cat_name(e.cat),
                      static_cast<std::uint64_t>(e.value));
        break;
      }
    }
    emit(buf);
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::export_chrome_json_file(const std::string& path) const {
  const std::string json = export_chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  return n == json.size() && rc == 0;
}

}  // namespace lmp::obs
