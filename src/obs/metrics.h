#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lmp::obs {

/// Monotonic named counter (relaxed atomics — hot-path safe).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge with a high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket latency/size histogram: 64 power-of-two buckets (bucket
/// b holds samples with bit_width b, i.e. [2^(b-1), 2^b)). Percentiles
/// are bucket-resolution estimates — a p-quantile answer is the upper
/// edge of the bucket where the cumulative count crosses p, clamped to
/// the exact observed min/max. That is accurate to within a factor of 2,
/// which is the right trade for a lock-free hot path (pMR and friends
/// make the same choice).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  struct Summary {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
  };

  void record(std::uint64_t x) {
    buckets_[bucket_of(x)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(x, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    update_max(x);
    update_min(x);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  Summary summary() const;
  void reset();

  static int bucket_of(std::uint64_t x) {
    const int w = std::bit_width(x);  // 0 for x==0
    return w < kBuckets ? w : kBuckets - 1;
  }

 private:
  void update_max(std::uint64_t x) {
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (x > prev &&
           !max_.compare_exchange_weak(prev, x, std::memory_order_relaxed)) {
    }
  }
  void update_min(std::uint64_t x) {
    std::uint64_t prev = min_.load(std::memory_order_relaxed);
    while (x < prev &&
           !min_.compare_exchange_weak(prev, x, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-wide registry of named metrics. Registration (first lookup
/// of a name) takes a mutex; the returned references are stable for the
/// process lifetime, so hot paths cache them and never look up again.
/// `reset_values` zeroes every metric without invalidating references —
/// the contract that lets back-to-back runs in one process (tests,
/// failover attempts) share instruments.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create. Throws std::logic_error if `name` is already
  /// registered as a different metric kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  void reset_values();

  /// Sorted-by-name snapshots for the report writer / health table.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, std::int64_t>> gauges() const;
  std::vector<std::pair<std::string, Histogram::Summary>> histograms() const;

 private:
  MetricsRegistry() = default;
};

}  // namespace lmp::obs
