#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lmp::obs {

/// True when the tree was built with LMP_ALLOC_TRACE=ON (the global
/// operator new/delete are interposed and LMP_ALLOC_SCOPE expands to a
/// real RAII object). With LMP_ALLOC_TRACE=OFF the tracker library
/// still exists — counters just never move and a golden run is bitwise
/// identical to an uninstrumented build.
constexpr bool alloc_trace_compiled_in() {
#if defined(LMP_ALLOC_TRACE_ENABLED)
  return true;
#else
  return false;
#endif
}

/// Counters for one attribution scope, or a delta between two reads of
/// the same scope. `name` points at static-storage-duration strings
/// (scope-site literals), never a copy — snapshotting allocates nothing.
struct AllocSlotStats {
  const char* name = nullptr;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;        ///< usable bytes allocated
  std::uint64_t freed_bytes = 0;  ///< usable bytes released
};

/// Process-wide totals. `live_bytes` can dip negative transiently when
/// a reader races a free whose matching alloc predates the read — the
/// post-run readers (report, guard) only look after threads joined.
struct AllocTotals {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
  std::uint64_t freed_bytes = 0;
  std::int64_t live_bytes = 0;
  std::int64_t high_water_bytes = 0;
};

namespace alloc_detail {

/// One attribution slot: fixed storage, all-relaxed atomics. Slots are
/// never destroyed or reused, so hot paths cache raw pointers.
struct Slot {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> freed_bytes{0};
  const char* name = nullptr;
};

/// Per-thread attribution state. Trivial members only — reading it from
/// inside operator new must never itself allocate or run constructors.
struct TlsState {
  Slot* current = nullptr;  ///< innermost active scope, null = unattributed
  bool in_hook = false;     ///< re-entrancy guard for the tracer instant
};

/// Accessor instead of a namespace-scope `extern thread_local`: GCC
/// routes cross-TU access to an extern TLS variable through an opaque
/// wrapper call whose result -fsanitize=null then doubts, reporting
/// spurious null-member-access on worker threads. A function-local
/// thread_local with constant initialization (trivial ctor/dtor)
/// compiles to a direct TLS-offset load — no wrapper, no guard.
inline TlsState& tls() {
  static thread_local TlsState s;
  return s;
}

extern std::atomic<bool> g_tracking_on;

}  // namespace alloc_detail

/// Runtime kill switch for the interposed hooks: when off they degrade
/// to plain malloc/free passthrough (one relaxed load). bench_alloc
/// uses this to measure the counting cost inside a single binary.
inline bool alloc_tracking_enabled() {
  return alloc_detail::g_tracking_on.load(std::memory_order_relaxed);
}
void set_alloc_tracking_enabled(bool on);

/// Process-wide allocation tracker. Interposed operator new/delete
/// (alloc_tracker.cpp, compiled under LMP_ALLOC_TRACE) attribute every
/// heap event to the calling thread's innermost AllocScope — per-stage
/// spans, dispatcher waits, serve slices — falling back to the built-in
/// "(unattributed)" slot, so per-scope sums always equal the globals.
///
/// Everything is fixed storage: a static slot table, no allocation on
/// registration or snapshot-into-buffer, which is what lets the hooks
/// run from the first static initializer to the last destructor and
/// lets the zero-alloc guard sample every step without perturbing the
/// thing it measures.
class AllocTracker {
 public:
  static constexpr std::size_t kMaxSlots = 64;

  static AllocTracker& instance();

  /// Find-or-create the slot for `name` (compared by content; `name`
  /// must outlive the process — pass literals). Never fails: when the
  /// table is full the unattributed slot absorbs the overflow.
  alloc_detail::Slot* slot(const char* name);

  alloc_detail::Slot* unattributed() { return &slots_[0]; }

  AllocTotals totals() const;

  /// All registered scopes with nonzero traffic, unattributed first,
  /// then registration order. Allocates — post-run use only.
  std::vector<AllocSlotStats> by_scope() const;

  /// Allocation-free snapshot into caller storage (guard hot loop).
  /// Writes min(slot_count, cap) entries, returns the count written.
  std::size_t snapshot_slots(AllocSlotStats* out, std::size_t cap) const;

  std::size_t slot_count() const {
    return nslots_.load(std::memory_order_acquire);
  }

  /// Zero every counter (registrations survive — cached slot pointers
  /// stay valid). For back-to-back runs in one process.
  void reset_counters();

  // Hook-side accounting (public so the interposed operators can call
  // without friend gymnastics; not for general use).
  void on_alloc(std::size_t usable_bytes);
  void on_free(std::size_t usable_bytes);

 private:
  AllocTracker();

  alloc_detail::Slot slots_[kMaxSlots];
  std::atomic<std::size_t> nslots_{0};
  std::mutex reg_mu_;

  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> freed_bytes_{0};
  std::atomic<std::int64_t> live_{0};
  std::atomic<std::int64_t> high_water_{0};
};

/// RAII attribution scope: allocations by this thread inside the scope
/// land on `name`'s slot. Nests — the innermost scope wins, the
/// destructor restores the outer one. With LMP_ALLOC_TRACE=OFF this is
/// an empty object.
class AllocScope {
 public:
#if defined(LMP_ALLOC_TRACE_ENABLED)
  explicit AllocScope(const char* name)
      : prev_(alloc_detail::tls().current) {
    alloc_detail::tls().current = AllocTracker::instance().slot(name);
  }
  ~AllocScope() { alloc_detail::tls().current = prev_; }
  AllocScope(const AllocScope&) = delete;
  AllocScope& operator=(const AllocScope&) = delete;

 private:
  alloc_detail::Slot* prev_;
#else
  constexpr explicit AllocScope(const char*) {}
#endif
};

#if defined(LMP_ALLOC_TRACE_ENABLED)
#define LMP_ALLOC_CONCAT_INNER(a, b) a##b
#define LMP_ALLOC_CONCAT(a, b) LMP_ALLOC_CONCAT_INNER(a, b)
/// Attribute heap traffic for the rest of the enclosing block to `name`.
#define LMP_ALLOC_SCOPE(name)                                          \
  ::lmp::obs::AllocScope LMP_ALLOC_CONCAT(lmp_alloc_scope_, __COUNTER__)( \
      name)
#else
#define LMP_ALLOC_SCOPE(name) \
  do {                        \
  } while (0)
#endif

/// Result of one steady-state zero-alloc guard run (see AllocGuard).
struct AllocGuardReport {
  bool enabled = false;
  bool tracker_available = false;  ///< false when LMP_ALLOC_TRACE=OFF
  int warmup_steps = 0;
  int steps_checked = 0;
  int steps_with_allocs = 0;
  int first_alloc_step = -1;  ///< 0-based step index, -1 = none
  std::uint64_t post_warmup_allocs = 0;
  std::uint64_t post_warmup_bytes = 0;
  /// Per-scope deltas over the post-warmup window, nonzero rows only.
  std::vector<AllocSlotStats> rows;

  bool passed() const {
    return !enabled || !tracker_available || steps_with_allocs == 0;
  }
};

/// Steady-state zero-alloc guard: arm before the step loop, feed each
/// completed step index, read the verdict after. Steps [0, warmup) are
/// the warmup window; every later step must allocate nothing or the
/// guard fails with a per-scope attribution of the post-warmup window.
/// on_step performs two relaxed loads and integer math — it never
/// allocates, so it cannot trip itself.
class AllocGuard {
 public:
  /// warmup < 0 picks the default: total_steps / 2.
  void arm(int warmup, int total_steps);
  void on_step(int step);  ///< 0-based index of the step just completed
  AllocGuardReport report() const;  ///< allocates; call after the loop

 private:
  void take_baseline();

  bool armed_ = false;
  int warmup_ = 0;
  int steps_checked_ = 0;
  int steps_with_allocs_ = 0;
  int first_alloc_step_ = -1;
  std::uint64_t last_allocs_ = 0;
  std::uint64_t last_bytes_ = 0;
  std::uint64_t post_allocs_ = 0;
  std::uint64_t post_bytes_ = 0;
  bool baseline_taken_ = false;
  AllocSlotStats baseline_[AllocTracker::kMaxSlots];
  std::size_t baseline_n_ = 0;
};

}  // namespace lmp::obs
