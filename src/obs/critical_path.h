#pragma once

#include <string>
#include <vector>

#include "obs/tracer.h"

namespace lmp::obs {

/// One attribution bucket of the per-step time breakdown.
struct CriticalPathRow {
  std::string name;
  double seconds = 0.0;
  double percent = 0.0;  ///< of the summed step time
};

/// Where the timesteps spent their time, summed over every rank's "step"
/// spans. `rows` holds the four disjoint buckets (compute, pack,
/// wire_transit, imbalance) followed by the informational notice_wait
/// row (= wire_transit + imbalance, the part of a step spent inside
/// dispatcher waits).
struct CriticalPathReport {
  std::vector<CriticalPathRow> rows;
  double step_seconds_total = 0.0;  ///< percent denominator
  int nsteps = 0;                   ///< step spans per rank (max over ranks)
  int nranks = 0;                   ///< ranks that recorded step spans

  bool empty() const { return nsteps == 0; }
};

/// Walk spans + flow edges and attribute each rank's step windows:
///
///   pack         = spans named "pack.*" or "put.tni*" inside the window
///   notice_wait  = spans named "wait.*" inside the window
///   wire_transit = flow-finish minus flow-start time, for flows that
///                  finish inside the window, capped at notice_wait (a
///                  wait cannot be *more* than fully explained by wire
///                  time; transit overlapped by compute is free)
///   imbalance    = notice_wait - wire_transit (the sender was late, not
///                  the fabric slow)
///   compute      = step duration - pack - notice_wait, floored at 0
///
/// A span or flow is attributed to the step window of its own pid that
/// contains its end timestamp; events outside any step window (setup,
/// teardown) are ignored. Expects `snapshot_events()` order (sorted by
/// ts, pid, tid).
CriticalPathReport analyze_critical_path(
    const std::vector<CollectedEvent>& events);

/// Render the report with the standard table layout; empty string when
/// no step spans were recorded (tracing off or no sim run).
std::string format_critical_path_table(const CriticalPathReport& r);

}  // namespace lmp::obs
