#include "obs/timeseries.h"

#include <algorithm>

namespace lmp::obs {

TimeSeries::TimeSeries(std::size_t capacity)
    : cap_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(cap_);
}

void TimeSeries::append(std::int64_t t_ms, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.size() < cap_) {
    ring_.push_back({t_ms, value});
  } else {
    ring_[head_] = {t_ms, value};
    head_ = (head_ + 1) % cap_;
  }
  ++count_;
}

std::size_t TimeSeries::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.size();
}

std::uint64_t TimeSeries::total_appended() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

std::vector<Sample> TimeSeries::samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Sample> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, head_ is the oldest surviving slot.
  const std::size_t start = ring_.size() < cap_ ? 0 : head_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<Sample> TimeSeries::samples_since(std::int64_t since_ms) const {
  std::vector<Sample> all = samples();
  std::vector<Sample> out;
  out.reserve(all.size());
  for (const Sample& s : all) {
    if (s.t_ms >= since_ms) out.push_back(s);
  }
  return out;
}

WindowAggregate aggregate_samples(const std::vector<Sample>& samples,
                                  std::int64_t window_ms) {
  WindowAggregate a;
  if (samples.empty()) return a;
  std::vector<double> values;
  values.reserve(samples.size());
  for (const Sample& s : samples) {
    if (a.count == 0) {
      a.min = a.max = s.value;
    } else {
      a.min = std::min(a.min, s.value);
      a.max = std::max(a.max, s.value);
    }
    ++a.count;
    a.sum += s.value;
    values.push_back(s.value);
  }
  a.mean = a.sum / static_cast<double>(a.count);
  if (window_ms > 0) {
    a.rate_per_s = a.sum / (static_cast<double>(window_ms) / 1000.0);
  }
  // Bucketless exact percentiles: the series is already bounded by its
  // ring capacity, so a sort over <= capacity values is cheap and gives
  // the interpolated order statistics directly (unlike the power-of-two
  // approximation the lock-free Histogram trades for).
  std::sort(values.begin(), values.end());
  const auto pct = [&values](double p) {
    const double rank =
        (p / 100.0) * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  a.p50 = pct(50.0);
  a.p95 = pct(95.0);
  a.p99 = pct(99.0);
  return a;
}

WindowAggregate TimeSeries::aggregate(std::int64_t now_ms,
                                      std::int64_t window_ms) const {
  return aggregate_samples(samples_since(now_ms - window_ms), window_ms);
}

TimeSeries& SeriesRegistry::series(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(name, std::make_unique<TimeSeries>(default_capacity_))
             .first;
  }
  return *it->second;
}

const TimeSeries* SeriesRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

std::vector<std::string> SeriesRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

}  // namespace lmp::obs
