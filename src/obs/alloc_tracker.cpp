// Allocation tracker core + (under LMP_ALLOC_TRACE) the interposed
// global operator new/delete.
//
// Interposition strategy: every new forwards to malloc, every delete to
// free, with byte accounting via malloc_usable_size so alloc and free
// sides agree without a size header of our own (glibc guarantees the
// call is valid for malloc/aligned_alloc/posix_memalign memory, and the
// sanitizer runtimes intercept it consistently with their own malloc).
// The hooks touch only fixed storage and relaxed atomics, so they are
// safe from the first static initializer to the last destructor; the
// only code path that could itself allocate — the Perfetto alloc
// instant — is behind a per-thread re-entrancy latch.

#include "obs/alloc_tracker.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "obs/tracer.h"

#if defined(LMP_ALLOC_TRACE_ENABLED)
#include <malloc.h>

#include <cstdlib>
#include <new>
#endif

namespace lmp::obs {

namespace alloc_detail {
std::atomic<bool> g_tracking_on{true};
}  // namespace alloc_detail

void set_alloc_tracking_enabled(bool on) {
  alloc_detail::g_tracking_on.store(on, std::memory_order_relaxed);
}

AllocTracker::AllocTracker() {
  slots_[0].name = "(unattributed)";
  nslots_.store(1, std::memory_order_release);
}

AllocTracker& AllocTracker::instance() {
  // Placement-new into static storage: a heap `new` here would recurse
  // into the hook that called us, and a plain static object would be
  // destroyed while late frees still need the counters. Never dtor'd.
  alignas(AllocTracker) static unsigned char storage[sizeof(AllocTracker)];
  static AllocTracker* t = ::new (static_cast<void*>(storage)) AllocTracker();
  return *t;
}

alloc_detail::Slot* AllocTracker::slot(const char* name) {
  const std::size_t n = nslots_.load(std::memory_order_acquire);
  // Fast path: scope sites pass literals, so pointer equality usually
  // hits; content compare catches the same literal from another TU.
  for (std::size_t i = 0; i < n; ++i) {
    if (slots_[i].name == name) return &slots_[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (std::strcmp(slots_[i].name, name) == 0) return &slots_[i];
  }
  std::lock_guard<std::mutex> lock(reg_mu_);
  const std::size_t m = nslots_.load(std::memory_order_acquire);
  for (std::size_t i = n; i < m; ++i) {
    if (std::strcmp(slots_[i].name, name) == 0) return &slots_[i];
  }
  if (m >= kMaxSlots) return &slots_[0];  // full: overflow is unattributed
  slots_[m].name = name;
  nslots_.store(m + 1, std::memory_order_release);
  return &slots_[m];
}

AllocTotals AllocTracker::totals() const {
  AllocTotals t;
  t.allocs = allocs_.load(std::memory_order_relaxed);
  t.frees = frees_.load(std::memory_order_relaxed);
  t.bytes = bytes_.load(std::memory_order_relaxed);
  t.freed_bytes = freed_bytes_.load(std::memory_order_relaxed);
  t.live_bytes = live_.load(std::memory_order_relaxed);
  t.high_water_bytes = high_water_.load(std::memory_order_relaxed);
  return t;
}

std::size_t AllocTracker::snapshot_slots(AllocSlotStats* out,
                                         std::size_t cap) const {
  const std::size_t n =
      std::min(nslots_.load(std::memory_order_acquire), cap);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].name = slots_[i].name;
    out[i].allocs = slots_[i].allocs.load(std::memory_order_relaxed);
    out[i].frees = slots_[i].frees.load(std::memory_order_relaxed);
    out[i].bytes = slots_[i].bytes.load(std::memory_order_relaxed);
    out[i].freed_bytes =
        slots_[i].freed_bytes.load(std::memory_order_relaxed);
  }
  return n;
}

std::vector<AllocSlotStats> AllocTracker::by_scope() const {
  AllocSlotStats buf[kMaxSlots];
  const std::size_t n = snapshot_slots(buf, kMaxSlots);
  std::vector<AllocSlotStats> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (buf[i].allocs != 0 || buf[i].frees != 0) out.push_back(buf[i]);
  }
  return out;
}

void AllocTracker::reset_counters() {
  const std::size_t n = nslots_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].allocs.store(0, std::memory_order_relaxed);
    slots_[i].frees.store(0, std::memory_order_relaxed);
    slots_[i].bytes.store(0, std::memory_order_relaxed);
    slots_[i].freed_bytes.store(0, std::memory_order_relaxed);
  }
  allocs_.store(0, std::memory_order_relaxed);
  frees_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  freed_bytes_.store(0, std::memory_order_relaxed);
  live_.store(0, std::memory_order_relaxed);
  high_water_.store(0, std::memory_order_relaxed);
}

void AllocTracker::on_alloc(std::size_t usable_bytes) {
  alloc_detail::Slot* s = alloc_detail::tls().current;
  if (s == nullptr) s = &slots_[0];
  s->allocs.fetch_add(1, std::memory_order_relaxed);
  s->bytes.fetch_add(usable_bytes, std::memory_order_relaxed);
  allocs_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(usable_bytes, std::memory_order_relaxed);
  const std::int64_t live =
      live_.fetch_add(static_cast<std::int64_t>(usable_bytes),
                      std::memory_order_relaxed) +
      static_cast<std::int64_t>(usable_bytes);
  std::int64_t prev = high_water_.load(std::memory_order_relaxed);
  while (live > prev && !high_water_.compare_exchange_weak(
                            prev, live, std::memory_order_relaxed)) {
  }
}

void AllocTracker::on_free(std::size_t usable_bytes) {
  alloc_detail::Slot* s = alloc_detail::tls().current;
  if (s == nullptr) s = &slots_[0];
  s->frees.fetch_add(1, std::memory_order_relaxed);
  s->freed_bytes.fetch_add(usable_bytes, std::memory_order_relaxed);
  frees_.fetch_add(1, std::memory_order_relaxed);
  freed_bytes_.fetch_add(usable_bytes, std::memory_order_relaxed);
  live_.fetch_sub(static_cast<std::int64_t>(usable_bytes),
                  std::memory_order_relaxed);
}

// --- steady-state guard -----------------------------------------------

void AllocGuard::arm(int warmup, int total_steps) {
  armed_ = alloc_trace_compiled_in();
  warmup_ = warmup >= 0 ? warmup : total_steps / 2;
  steps_checked_ = 0;
  steps_with_allocs_ = 0;
  first_alloc_step_ = -1;
  post_allocs_ = 0;
  post_bytes_ = 0;
  baseline_taken_ = false;
  baseline_n_ = 0;
  if (!armed_) return;
  const AllocTotals t = AllocTracker::instance().totals();
  last_allocs_ = t.allocs;
  last_bytes_ = t.bytes;
  if (warmup_ == 0) take_baseline();
}

void AllocGuard::take_baseline() {
  baseline_n_ = AllocTracker::instance().snapshot_slots(
      baseline_, AllocTracker::kMaxSlots);
  baseline_taken_ = true;
}

void AllocGuard::on_step(int step) {
  if (!armed_) return;
  const AllocTotals t = AllocTracker::instance().totals();
  if (step < warmup_) {
    last_allocs_ = t.allocs;
    last_bytes_ = t.bytes;
    if (step == warmup_ - 1) take_baseline();
    return;
  }
  if (!baseline_taken_) take_baseline();  // warmup window shorter than run
  const std::uint64_t d_allocs = t.allocs - last_allocs_;
  const std::uint64_t d_bytes = t.bytes - last_bytes_;
  last_allocs_ = t.allocs;
  last_bytes_ = t.bytes;
  ++steps_checked_;
  if (d_allocs != 0) {
    ++steps_with_allocs_;
    if (first_alloc_step_ < 0) first_alloc_step_ = step;
    post_allocs_ += d_allocs;
    post_bytes_ += d_bytes;
  }
}

AllocGuardReport AllocGuard::report() const {
  AllocGuardReport r;
  r.enabled = true;
  r.tracker_available = armed_;
  r.warmup_steps = warmup_;
  r.steps_checked = steps_checked_;
  r.steps_with_allocs = steps_with_allocs_;
  r.first_alloc_step = first_alloc_step_;
  r.post_warmup_allocs = post_allocs_;
  r.post_warmup_bytes = post_bytes_;
  if (!armed_ || !baseline_taken_) return r;
  AllocSlotStats now[AllocTracker::kMaxSlots];
  const std::size_t n =
      AllocTracker::instance().snapshot_slots(now, AllocTracker::kMaxSlots);
  for (std::size_t i = 0; i < n; ++i) {
    AllocSlotStats d = now[i];
    if (i < baseline_n_) {
      d.allocs -= baseline_[i].allocs;
      d.frees -= baseline_[i].frees;
      d.bytes -= baseline_[i].bytes;
      d.freed_bytes -= baseline_[i].freed_bytes;
    }
    if (d.allocs != 0 || d.frees != 0) r.rows.push_back(d);
  }
  return r;
}

}  // namespace lmp::obs

// --- interposed global operators --------------------------------------

#if defined(LMP_ALLOC_TRACE_ENABLED)

namespace {

using lmp::obs::AllocTracker;
using lmp::obs::TraceCat;

void account_alloc(void* p) {
  if (p == nullptr) return;
  AllocTracker::instance().on_alloc(::malloc_usable_size(p));
  // The tracer's record path can itself allocate (first-touch thread
  // buffer registration); the latch stops the recursion at one level.
  lmp::obs::alloc_detail::TlsState& tls = lmp::obs::alloc_detail::tls();
  if (lmp::obs::trace_enabled(TraceCat::kAlloc) && !tls.in_hook) {
    tls.in_hook = true;
    lmp::obs::Tracer::instance().record_instant(TraceCat::kAlloc, "alloc");
    tls.in_hook = false;
  }
}

void account_free(void* p) {
  if (p == nullptr) return;
  AllocTracker::instance().on_free(::malloc_usable_size(p));
}

void* tracked_alloc(std::size_t n) {
  void* p = ::malloc(n != 0 ? n : 1);
  while (p == nullptr) {
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) return nullptr;
    h();
    p = ::malloc(n != 0 ? n : 1);
  }
  if (lmp::obs::alloc_tracking_enabled()) account_alloc(p);
  return p;
}

void* tracked_alloc_aligned(std::size_t n, std::size_t align) {
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  while (::posix_memalign(&p, align, n != 0 ? n : align) != 0) {
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) return nullptr;
    h();
  }
  if (lmp::obs::alloc_tracking_enabled()) account_alloc(p);
  return p;
}

void tracked_free(void* p) {
  if (p == nullptr) return;
  if (lmp::obs::alloc_tracking_enabled()) account_free(p);
  ::free(p);
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = tracked_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = tracked_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return tracked_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return tracked_alloc(n);
}

void* operator new(std::size_t n, std::align_val_t al) {
  void* p = tracked_alloc_aligned(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t al) {
  void* p = tracked_alloc_aligned(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return tracked_alloc_aligned(n, static_cast<std::size_t>(al));
}

void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return tracked_alloc_aligned(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { tracked_free(p); }
void operator delete[](void* p) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  tracked_free(p);
}

#endif  // LMP_ALLOC_TRACE_ENABLED
