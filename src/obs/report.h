#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lmp::obs {

/// Minimal streaming JSON writer (objects, arrays, scalar values) — the
/// one home of JSON syntax for run reports, bench records, and anything
/// else that must be machine-readable without external dependencies.
/// Doubles are printed with %.17g so every value round-trips exactly.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);

  /// key + scalar in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma();
  void escape(const std::string& s);

  std::string out_;
  std::vector<bool> first_in_scope_{true};
  bool after_key_ = false;
};

/// Write `text` to `path` (truncating); false on any I/O failure.
bool write_text_file(const std::string& path, const std::string& text);

// --- run report ---------------------------------------------------------

inline constexpr const char* kRunReportSchema = "lmp-run-report";
/// v2 added the "link_utilization" and "critical_path" sections;
/// v3 added the "integrity" section (silent-corruption guards);
/// v4 added the "memory" section (per-scope allocation totals, heap
/// high-water, RSS — all zero/absent-scopes when LMP_ALLOC_TRACE=OFF).
inline constexpr int kRunReportVersion = 4;

struct ReportStage {
  std::string name;
  double seconds = 0.0;
  double percent = 0.0;
};

struct ReportEscalation {
  int fail_step = 0;
  int resume_step = 0;
  std::string from_variant;
  std::string to_variant;
  std::string reason;
};

/// One healed silent-corruption episode in the v3 integrity section.
struct ReportIntegrityEvent {
  int detect_step = 0;
  int resume_step = 0;
  std::string reason;
  std::string verdict;  ///< "transient" — persistent faults abort the run
};

/// One attribution scope in the v4 memory section.
struct ReportMemoryScope {
  std::string scope;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
};

/// One hot fabric link in the v2 link-utilization section, endpoints
/// already rendered as 6D coordinate strings.
struct ReportLink {
  std::string from;
  std::string to;
  std::string axis;  ///< "X+", "B-", ... (axis and direction)
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
};

/// The full end-of-run picture, ready to serialize. Populated by
/// `sim::build_run_report` (the obs layer stays ignorant of sim types);
/// `to_json()` appends whatever the MetricsRegistry holds at write time
/// (histogram summaries, counters, gauges).
struct RunReport {
  std::string workload;
  std::string comm_requested;
  std::string comm_final;
  int nsteps = 0;
  int restart_step = 0;
  int nranks = 0;
  long natoms = 0;
  /// Config echo: key/value pairs, exactly as the run resolved them.
  std::vector<std::pair<std::string, std::string>> config;
  /// Stage breakdown summed over ranks; `stage_total_seconds` is the
  /// denominator used for every percent (computed once, not per row).
  std::vector<ReportStage> stages;
  double stage_total_seconds = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> health_counters;
  double checkpoint_io_seconds = 0.0;
  std::vector<ReportEscalation> escalations;
  // --- v3: silent-corruption guard results ----------------------------
  std::uint64_t integrity_checks = 0;
  std::uint64_t integrity_detections = 0;
  std::uint64_t integrity_rollbacks = 0;
  std::uint64_t mem_flips_injected = 0;
  std::vector<ReportIntegrityEvent> integrity_events;
  // --- v2: fabric link utilization (all zero when metrics were off) ---
  std::uint64_t fabric_total_bytes = 0;    ///< bytes x hops over all puts
  std::uint64_t fabric_total_packets = 0;  ///< packets x hops
  std::uint64_t fabric_puts_charged = 0;
  std::uint64_t fabric_links_used = 0;
  std::uint64_t fabric_max_link_bytes = 0;
  double fabric_mean_link_bytes = 0.0;
  std::vector<ReportLink> top_links;            ///< hottest first
  std::vector<std::uint64_t> hop_histogram;     ///< index = hop count
  // --- v2: critical-path breakdown (empty when tracing was off) -------
  std::vector<ReportStage> critical_path;
  double critical_path_total_seconds = 0.0;
  // --- v4: memory (alloc tracker totals; scopes empty when untracked) -
  bool mem_tracked = false;  ///< LMP_ALLOC_TRACE compiled in
  std::vector<ReportMemoryScope> mem_scopes;
  std::uint64_t mem_total_allocs = 0;
  std::uint64_t mem_total_frees = 0;
  std::uint64_t mem_total_bytes = 0;
  std::int64_t mem_live_bytes = 0;
  std::int64_t mem_high_water_bytes = 0;
  std::int64_t mem_rss_bytes = 0;  ///< from /proc at report-build time
  /// First/last thermo samples: (step, temperature, total energy).
  std::vector<std::pair<std::string, double>> thermo_first;
  std::vector<std::pair<std::string, double>> thermo_last;

  std::string to_json() const;
};

// --- bench record -------------------------------------------------------

inline constexpr const char* kBenchRecordSchema = "lmp-bench-record";
inline constexpr int kBenchRecordVersion = 1;

/// One BENCH_*.json-compatible result record: a named experiment with
/// string labels (workload, variant, ...) and numeric metrics. The
/// serialized form adds a "registry" section with whatever the
/// MetricsRegistry holds at write time.
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> metrics;

  std::string to_json() const;
};

}  // namespace lmp::obs
