#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace lmp::obs {

/// Per-tenant service-level objectives, all assessed over one rolling
/// window. A zero (or negative, for the rollback budget) threshold
/// disables that objective — the accountant still *measures* the signal,
/// it just never flags it.
struct SloPolicy {
  std::int64_t window_ms = 60000;
  /// Queue wait (admission -> dispatch) p99 must stay below this.
  double queue_wait_p99_ms = 0.0;
  /// Fraction of deadline-carrying jobs that finished inside their
  /// deadline; only evaluated when the window saw at least one outcome.
  /// The default flags any miss in the window (hit-rate floor 0.99
  /// against integer outcomes: one miss among <100 outcomes trips it).
  double deadline_hit_rate_min = 0.99;
  /// Steps/second floor; only evaluated while the tenant has a running
  /// job (an idle tenant never breaches the floor).
  double steps_per_sec_min = 0.0;
  /// Max integrity rollbacks tolerated per window; -1 disables, 0 means
  /// any rollback breaches.
  std::int64_t integrity_rollback_budget = -1;
};

/// One tenant's evaluated SLO window: the measured signals next to their
/// thresholds and the per-objective breach verdicts.
struct TenantSlo {
  std::string tenant;
  std::int64_t window_ms = 0;
  bool active = false;  ///< tenant has a running job right now

  std::uint64_t queue_wait_samples = 0;
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;

  std::uint64_t deadline_hits = 0;
  std::uint64_t deadline_misses = 0;
  double deadline_hit_rate = 1.0;  ///< 1.0 when the window saw no outcomes

  double steps_per_sec = 0.0;
  std::uint64_t integrity_rollbacks = 0;

  bool breach_queue_wait = false;
  bool breach_deadline = false;
  bool breach_step_rate = false;
  bool breach_rollbacks = false;

  /// The thresholds this window was judged against (copied from the
  /// policy so a snapshot is self-describing).
  SloPolicy policy;

  bool breached() const {
    return breach_queue_wait || breach_deadline || breach_step_rate ||
           breach_rollbacks;
  }
  /// "deadline-hit-rate 0.000 < 0.990; ..." — empty when not breached.
  std::string breach_detail() const;
};

/// One breach-state transition. `entered == true` is the tenant crossing
/// into breach, false is the recovery edge. Emitted once per transition,
/// not once per evaluation — a tenant sitting in breach for a thousand
/// sampler ticks produces one event.
struct SloBreachEvent {
  std::int64_t t_ms = 0;
  std::string tenant;
  bool entered = false;
  std::string detail;
};

/// Per-tenant SLO accounting over rolling windows.
///
/// The job server records raw signals as they happen (queue waits at
/// dispatch, deadline outcomes at the terminal transition, step and
/// rollback deltas from the sampler); `evaluate` aggregates each
/// tenant's window against its policy, flags breaches, and records the
/// enter/exit transitions as structured events plus tracer instants.
/// Thread-safe throughout; never called on the simulation hot path.
class SloAccountant {
 public:
  explicit SloAccountant(SloPolicy default_policy = {},
                         std::size_t series_capacity = 1024);

  void set_policy(const std::string& tenant, const SloPolicy& policy);
  SloPolicy policy_for(const std::string& tenant) const;

  // --- signal recording -------------------------------------------------
  void record_queue_wait(const std::string& tenant, std::int64_t t_ms,
                         double wait_ms);
  /// One terminal outcome of a deadline-carrying job.
  void record_deadline(const std::string& tenant, std::int64_t t_ms, bool hit);
  /// Steps completed since the last sample (sampler delta).
  void record_steps(const std::string& tenant, std::int64_t t_ms, double steps);
  /// Integrity rollbacks since the last sample.
  void record_rollbacks(const std::string& tenant, std::int64_t t_ms,
                        double rollbacks);

  // --- evaluation -------------------------------------------------------
  /// Evaluate every known tenant's window ending at `now_ms`.
  /// `running_tenants` names the tenants with a job running right now —
  /// the steps/sec floor is only assessed for them. Breach transitions
  /// are detected against the previous evaluation and recorded.
  std::vector<TenantSlo> evaluate(std::int64_t now_ms,
                                  const std::set<std::string>& running_tenants);

  /// Transition history, oldest first (bounded; oldest dropped past the
  /// cap). `breaches_entered` counts enter-edges for the stats table.
  std::vector<SloBreachEvent> events() const;
  std::uint64_t breaches_entered() const;
  /// Tenants currently in breach (as of the last evaluate).
  std::set<std::string> breached_tenants() const;

 private:
  struct Tenant {
    TimeSeries queue_wait_ms;
    TimeSeries deadline_outcomes;  ///< 1.0 hit, 0.0 miss
    TimeSeries step_deltas;
    TimeSeries rollback_deltas;
    bool in_breach = false;
    Tenant(std::size_t cap)
        : queue_wait_ms(cap),
          deadline_outcomes(cap),
          step_deltas(cap),
          rollback_deltas(cap) {}
  };

  Tenant& tenant_locked(const std::string& name);

  SloPolicy default_policy_;
  std::size_t series_capacity_;
  mutable std::mutex mu_;
  std::map<std::string, SloPolicy> policies_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::deque<SloBreachEvent> events_;
  std::uint64_t breaches_entered_ = 0;

  static constexpr std::size_t kMaxEvents = 256;
};

}  // namespace lmp::obs
