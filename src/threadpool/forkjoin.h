#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lmp::pool {

/// OpenMP-style fork-join runtime: persistent threads parked on a
/// condition variable, woken per parallel region and re-parked at the
/// implicit barrier. This reproduces the *structure* that makes OpenMP
/// regions expensive for the paper's tiny per-step workloads — two OS
/// wake/sleep transitions per region (5.8 us measured on A64FX versus
/// 1.1 us for the spin pool). `bench/micro_overheads` measures both on
/// the host and `perf::Calibration` carries the paper's constants.
class ForkJoinPool {
 public:
  explicit ForkJoinPool(int nthreads);
  ~ForkJoinPool();

  ForkJoinPool(const ForkJoinPool&) = delete;
  ForkJoinPool& operator=(const ForkJoinPool&) = delete;

  int nthreads() const { return nthreads_; }

  /// Run fn(tid) for tid in [0, nthreads) — an `omp parallel` region.
  void parallel(const std::function<void(int)>& fn);

  /// Static-chunked `omp parallel for` over [0, total).
  void parallel_for(int total, const std::function<void(int)>& fn);

 private:
  void worker_loop(int tid);

  int nthreads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* fn_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
};

}  // namespace lmp::pool
