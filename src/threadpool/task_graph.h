#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/tracer.h"

namespace lmp::pool {

class SpinThreadPool;

/// Small deterministic DAG scheduler for the asynchronous step runtime
/// (DESIGN.md §12). Nodes are added once per neighbor-rebuild epoch and
/// the same graph is executed every step: `run()` resets the atomic
/// indegrees from the recorded edges and dispatches ready nodes onto the
/// SpinThreadPool workers (or runs them inline when no pool is given).
///
/// Determinism contract: the graph does NOT promise a deterministic
/// execution interleaving under multiple workers — it promises that any
/// interleaving respects every dependency edge, and ready nodes are
/// always claimed in ascending node-id order. Numeric determinism of
/// the step therefore comes from the node bodies (private per-task
/// buffers + a fixed-order reduction node), not from scheduling. A
/// serial run (`run(nullptr)`) executes the unique smallest-id-first
/// topological order, which is exactly the canonical order the barrier
/// executor uses.
///
/// Exceptions: the first node body that throws wins; the remaining
/// nodes are cancelled (skipped, but still counted down so the run
/// terminates), every worker quiesces, and `run()` rethrows the
/// original exception_ptr — a CommTimeoutError thrown inside a wait
/// node reaches the failover machinery with its type intact.
class TaskGraph {
 public:
  /// Add a node. `name` must have static storage duration (the tracer
  /// stores the pointer, not a copy); every execution of the node emits
  /// a trace span under that name (category kPool). Returns the node id.
  int add(const char* name, std::function<void()> fn);

  /// Declare that `node` cannot start until `prereq` has finished.
  /// Both ids must come from add(); edges must be added before run().
  void depend(int node, int prereq);

  int size() const { return static_cast<int>(nodes_.size()); }

  /// Execute the graph once. `pool` may be null (serial canonical
  /// order). With a pool, all of its workers drain the shared ready
  /// queue. Not reentrant; a graph is owned by one driving thread.
  void run(SpinThreadPool* pool);

  /// Node ids in the order they finished during the last run() — test
  /// hook for the dependency-respecting property.
  const std::vector<int>& completion_order() const { return order_; }

 private:
  struct Node {
    const char* name = nullptr;
    std::function<void()> fn;
    std::vector<int> successors;
    int indegree0 = 0;               ///< static indegree from depend()
    std::atomic<int> indegree{0};    ///< live countdown during a run
    Node(const char* n, std::function<void()> f)
        : name(n), fn(std::move(f)) {}
  };

  void worker_drain();
  void finish_node(int id);
  void validate();

  std::vector<std::unique_ptr<Node>> nodes_;
  /// Ready min-queue + completion order, one lock for both (nodes are
  /// few and coarse; contention is not on this path's critical budget).
  std::mutex mu_;
  std::vector<int> ready_;   ///< sorted descending, pop_back = min id
  std::vector<int> order_;
  std::atomic<int> done_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  bool validated_ = false;
};

}  // namespace lmp::pool
