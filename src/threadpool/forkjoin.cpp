#include "threadpool/forkjoin.h"

#include <algorithm>
#include <stdexcept>

namespace lmp::pool {

ForkJoinPool::ForkJoinPool(int nthreads) : nthreads_(nthreads) {
  if (nthreads < 1) throw std::invalid_argument("pool needs >= 1 thread");
  workers_.reserve(static_cast<std::size_t>(nthreads - 1));
  for (int t = 1; t < nthreads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ForkJoinPool::~ForkJoinPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    ++generation_;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ForkJoinPool::worker_loop(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return generation_ != seen; });
      seen = generation_;
      if (stop_) return;
      fn = fn_;
    }
    (*fn)(tid);
    {
      std::lock_guard lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ForkJoinPool::parallel(const std::function<void(int)>& fn) {
  if (nthreads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard lock(mu_);
    fn_ = &fn;
    remaining_ = nthreads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
}

void ForkJoinPool::parallel_for(int total, const std::function<void(int)>& fn) {
  if (total <= 0) return;
  const int chunk = (total + nthreads_ - 1) / nthreads_;
  parallel([&](int tid) {
    const int lo = tid * chunk;
    const int hi = std::min(total, lo + chunk);
    for (int i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace lmp::pool
