#include "threadpool/task_graph.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "threadpool/spin_pool.h"

namespace lmp::pool {

int TaskGraph::add(const char* name, std::function<void()> fn) {
  nodes_.push_back(std::make_unique<Node>(name, std::move(fn)));
  validated_ = false;
  return static_cast<int>(nodes_.size()) - 1;
}

void TaskGraph::depend(int node, int prereq) {
  if (node < 0 || node >= size() || prereq < 0 || prereq >= size()) {
    throw std::out_of_range("TaskGraph::depend: unknown node id");
  }
  if (node == prereq) {
    throw std::invalid_argument("TaskGraph::depend: node depends on itself");
  }
  nodes_[static_cast<std::size_t>(prereq)]->successors.push_back(node);
  nodes_[static_cast<std::size_t>(node)]->indegree0++;
  validated_ = false;
}

void TaskGraph::finish_node(int id) {
  Node& n = *nodes_[static_cast<std::size_t>(id)];
  {
    std::lock_guard lock(mu_);
    order_.push_back(id);
    for (const int s : n.successors) {
      if (nodes_[static_cast<std::size_t>(s)]->indegree.fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        // Keep ready_ sorted descending so pop_back always yields the
        // smallest ready id — the canonical claim order.
        const auto pos = std::lower_bound(ready_.begin(), ready_.end(), s,
                                          std::greater<int>());
        ready_.insert(pos, s);
      }
    }
  }
  done_.fetch_add(1, std::memory_order_acq_rel);
}

void TaskGraph::worker_drain() {
  const int n = size();
  int polls = 0;
  while (done_.load(std::memory_order_acquire) < n) {
    int id = -1;
    {
      std::lock_guard lock(mu_);
      if (!ready_.empty()) {
        id = ready_.back();
        ready_.pop_back();
      }
    }
    if (id < 0) {
      // Nothing ready right now: either peers are still executing
      // predecessors, or we raced the final countdown. Spin politely.
      if (++polls >= 64) {
        polls = 0;
        std::this_thread::yield();
      }
      continue;
    }
    polls = 0;
    Node& node = *nodes_[static_cast<std::size_t>(id)];
    if (!failed_.load(std::memory_order_acquire)) {
      try {
        const obs::TraceSpan span(obs::TraceCat::kPool, node.name);
        node.fn();
      } catch (...) {
        // First failure wins; keep counting down so run() terminates.
        bool expected = false;
        if (failed_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
          error_ = std::current_exception();
        }
      }
    }
    finish_node(id);
  }
}

void TaskGraph::validate() {
  // Kahn's algorithm over the static indegrees: a cycle would make the
  // live run spin forever, so refuse it up front. Runs once per graph
  // mutation, not per step.
  const int n = size();
  std::vector<int> indeg(static_cast<std::size_t>(n));
  std::vector<int> stack;
  for (int i = 0; i < n; ++i) {
    indeg[static_cast<std::size_t>(i)] =
        nodes_[static_cast<std::size_t>(i)]->indegree0;
    if (indeg[static_cast<std::size_t>(i)] == 0) stack.push_back(i);
  }
  int visited = 0;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    ++visited;
    for (const int s : nodes_[static_cast<std::size_t>(id)]->successors) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) stack.push_back(s);
    }
  }
  if (visited != n) {
    throw std::logic_error("TaskGraph: dependency cycle");
  }
  validated_ = true;
}

void TaskGraph::run(SpinThreadPool* pool) {
  const int n = size();
  if (!validated_) validate();
  order_.clear();
  order_.reserve(static_cast<std::size_t>(n));
  ready_.clear();
  done_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  for (int i = n - 1; i >= 0; --i) {
    Node& node = *nodes_[static_cast<std::size_t>(i)];
    node.indegree.store(node.indegree0, std::memory_order_relaxed);
    if (node.indegree0 == 0) ready_.push_back(i);  // descending by id
  }
  if (n == 0) return;

  if (pool != nullptr && pool->nthreads() > 1) {
    // Static dispatch: every pool worker participates in the drain (a
    // dynamic claim could let one fast thread swallow all the drain
    // slots and serialize the graph).
    pool->parallel_static([this](int) { worker_drain(); });
  } else {
    worker_drain();
  }

  if (error_) std::rethrow_exception(error_);
}

}  // namespace lmp::pool
