#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace lmp::pool {

/// Spin-lock thread pool (paper Sec. 3.3).
///
/// LAMMPS' communication is split into many short stages; OpenMP's
/// fork-join start/sync overhead (measured at 5.8 us on A64FX) dominates
/// them, so the paper keeps a pool of persistently-spinning workers whose
/// dispatch costs only 1.1 us. This class reproduces that design: workers
/// busy-wait on a generation counter; `parallel(n, fn)` publishes a work
/// descriptor, bumps the generation, takes part in the work itself, and
/// spin-waits for the remaining-worker count to hit zero.
///
/// Workers insert `yield` into the spin loop after a bounded number of
/// polls so the pool stays live on hosts with fewer cores than threads.
class SpinThreadPool {
 public:
  /// `nthreads` total workers including the calling thread; so
  /// SpinThreadPool(6) starts 5 background threads.
  explicit SpinThreadPool(int nthreads);
  ~SpinThreadPool();

  SpinThreadPool(const SpinThreadPool&) = delete;
  SpinThreadPool& operator=(const SpinThreadPool&) = delete;

  int nthreads() const { return nthreads_; }

  /// Execute fn(i) for i in [0, nwork). Work items are claimed with an
  /// atomic counter, so uneven item costs self-balance. Returns when all
  /// items are done. Not reentrant.
  void parallel(int nwork, const std::function<void(int)>& fn);

  /// Static variant: thread t runs fn(t) exactly once, t in [0, nthreads).
  /// Used by the fine-grained comm layer where thread->message assignment
  /// is decided by the load balancer, not by work stealing.
  void parallel_static(const std::function<void(int)>& fn);

 private:
  void worker_loop(int tid);
  void run_generation();

  struct alignas(64) Job {
    const std::function<void(int)>* fn = nullptr;
    std::atomic<int> next{0};
    int nwork = 0;
    bool dynamic = true;
    /// Publish timestamp (ns) when metrics are on, else 0. Workers use it
    /// to measure dispatch latency without their own gating decision.
    std::int64_t publish_ns = 0;
  };

  /// Cached per-worker instruments (dispatch-wait and run time per tid),
  /// resolved once at construction so the hot path never touches the
  /// registry mutex. The aggregated "pool.dispatch_wait_ns"/"pool.run_ns"
  /// histograms remain the roll-up view.
  struct WorkerMetrics {
    obs::Histogram* wait = nullptr;
    obs::Histogram* run = nullptr;
  };

  int nthreads_;
  /// Rank of the constructing thread — workers inherit it as their trace
  /// pid so their tracks group under the owning rank's process.
  int creator_pid_ = -1;
  std::vector<WorkerMetrics> per_worker_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> outstanding_{0};
  std::atomic<bool> stop_{false};
  Job job_;
};

}  // namespace lmp::pool
