#include "threadpool/spin_pool.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace lmp::pool {

namespace {

obs::Histogram& dispatch_wait_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::instance().histogram("pool.dispatch_wait_ns");
  return h;
}

obs::Histogram& run_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::instance().histogram("pool.run_ns");
  return h;
}

/// Per-worker views of the same two instruments ("pool.run_ns.w3"),
/// so async-executor idle time is attributable to a specific worker —
/// the aggregated histograms above stay as the roll-up. Registration
/// (mutex) happens once per distinct tid; hot paths use the cached
/// reference handed out here.
obs::Histogram& per_worker_hist(const char* base, int tid) {
  return obs::MetricsRegistry::instance().histogram(
      std::string(base) + ".w" + std::to_string(tid));
}
/// Spin briefly, then yield — the pool must stay responsive even when the
/// host has fewer hardware threads than pool workers.
inline void relax(int& polls) {
  if (++polls < 64) {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  } else {
    polls = 0;
    std::this_thread::yield();
  }
}
}  // namespace

SpinThreadPool::SpinThreadPool(int nthreads) : nthreads_(nthreads) {
  if (nthreads < 1) throw std::invalid_argument("pool needs >= 1 thread");
  if (obs::trace_compiled_in()) {
    creator_pid_ = obs::Tracer::instance().current_pid();
  }
  per_worker_.resize(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    per_worker_[static_cast<std::size_t>(t)] = {
        &per_worker_hist("pool.dispatch_wait_ns", t),
        &per_worker_hist("pool.run_ns", t)};
  }
  workers_.reserve(static_cast<std::size_t>(nthreads - 1));
  for (int t = 1; t < nthreads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

SpinThreadPool::~SpinThreadPool() {
  stop_.store(true, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);
  for (auto& w : workers_) w.join();
}

void SpinThreadPool::worker_loop(int tid) {
  LMP_TRACE_THREAD(creator_pid_, tid, "worker");
  std::uint64_t seen = 0;
  int polls = 0;
  for (;;) {
    while (generation_.load(std::memory_order_acquire) == seen) {
      relax(polls);
    }
    seen = generation_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;

    // publish_ns doubles as the "metrics were on at publish" flag, so
    // every worker of one generation makes the same recording decision.
    const std::int64_t published = job_.publish_ns;
    const std::int64_t run_t0 = published != 0 ? obs::now_ns() : 0;
    if (published != 0) {
      const auto wait_ns = static_cast<std::uint64_t>(run_t0 - published);
      dispatch_wait_hist().record(wait_ns);
      per_worker_[static_cast<std::size_t>(tid)].wait->record(wait_ns);
    }

    if (job_.dynamic) {
      for (;;) {
        const int i = job_.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_.nwork) break;
        (*job_.fn)(i);
      }
    } else if (tid < job_.nwork) {
      (*job_.fn)(tid);
    }
    if (published != 0) {
      const auto ns = static_cast<std::uint64_t>(obs::now_ns() - run_t0);
      run_hist().record(ns);
      per_worker_[static_cast<std::size_t>(tid)].run->record(ns);
    }
    outstanding_.fetch_sub(1, std::memory_order_release);
  }
}

void SpinThreadPool::run_generation() {
  LMP_TRACE_SPAN(obs::TraceCat::kPool, "pool.parallel");
  job_.publish_ns = obs::metrics_enabled() ? obs::now_ns() : 0;
  outstanding_.store(nthreads_ - 1, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);

  // The caller is worker 0.
  const std::int64_t run_t0 = job_.publish_ns != 0 ? obs::now_ns() : 0;
  if (job_.dynamic) {
    for (;;) {
      const int i = job_.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job_.nwork) break;
      (*job_.fn)(i);
    }
  } else if (job_.nwork > 0) {
    (*job_.fn)(0);
  }
  if (job_.publish_ns != 0) {
    const auto ns = static_cast<std::uint64_t>(obs::now_ns() - run_t0);
    run_hist().record(ns);
    per_worker_[0].run->record(ns);  // the caller is worker 0
  }

  int polls = 0;
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    relax(polls);
  }
}

void SpinThreadPool::parallel(int nwork, const std::function<void(int)>& fn) {
  if (nwork <= 0) return;
  job_.fn = &fn;
  job_.next.store(0, std::memory_order_relaxed);
  job_.nwork = nwork;
  job_.dynamic = true;
  run_generation();
}

void SpinThreadPool::parallel_static(const std::function<void(int)>& fn) {
  job_.fn = &fn;
  job_.nwork = nthreads_;
  job_.dynamic = false;
  run_generation();
}

}  // namespace lmp::pool
