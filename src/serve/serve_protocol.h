#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/msg_codec.h"
#include "util/stats.h"

namespace lmp::serve {

/// A request/response payload that does not decode (truncated field,
/// trailing junk, out-of-range enum). The endpoint converts it into a
/// kError reply — a malformed client frame must never take the server
/// down.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --- wire primitives ----------------------------------------------------

/// Append-only little binary writer (host-endian, like the checkpoint
/// format): the payload side of one frame.
class WireWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  const std::vector<char>& bytes() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }
  std::vector<char> buf_;
};

/// Bounds-checked reader over one frame payload. Throws ProtocolError
/// (never reads past the end) on truncation; expect_done() rejects
/// trailing junk.
class WireReader {
 public:
  WireReader(const char* data, std::size_t len, std::string what)
      : p_(data), end_(data + len), what_(std::move(what)) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint16_t u16() { return get<std::uint16_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  double f64() { return get<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(p_, p_ + n);
    p_ += n;
    return s;
  }
  void expect_done() const {
    if (p_ != end_) {
      throw ProtocolError("serve: trailing bytes in " + what_);
    }
  }

 private:
  template <class T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }
  void need(std::uint64_t n) const {
    if (n > static_cast<std::uint64_t>(end_ - p_)) {
      throw ProtocolError("serve: truncated " + what_);
    }
  }
  const char* p_;
  const char* end_;
  std::string what_;
};

// --- job model ----------------------------------------------------------

/// Job state machine:
///   pending -> admitted -> running -> {done, failed, retrying, cancelled}
///   retrying -> pending (requeued after backoff)
/// plus the two edges that never make it into the job table:
///   submit -> rejected   (overload/quota — counted and answered, not stored)
///   pending -> cancelled (cancel before admission)
/// Deadline misses are terminal kFailed with RejectReason-free detail
/// "deadline"; the serve.deadline_missed counter tells them apart.
enum class JobState : std::uint8_t {
  kPending = 0,
  kAdmitted,
  kRunning,
  kRetrying,
  kDone,
  kFailed,
  kCancelled,
  kRejected,  ///< wire-only: the submission never became a job
  kCount
};

inline const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kPending: return "pending";
    case JobState::kAdmitted: return "admitted";
    case JobState::kRunning: return "running";
    case JobState::kRetrying: return "retrying";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kRejected: return "rejected";
    default: return "?";
  }
}

inline bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled || s == JobState::kRejected;
}

/// Why a submission was refused at the door. Structured — the client can
/// tell backpressure (retry later) from quota (stop submitting) from a
/// bad request (fix the script).
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kQueueFull,           ///< bounded admission queue at capacity
  kTenantQueuedQuota,   ///< tenant's max_queued reached
  kTenantRunningQuota,  ///< tenant's max_running reached (and queue refusal)
  kBadScript,           ///< input script does not parse
  kShuttingDown,        ///< server draining; nothing new admitted
  kCount
};

inline const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kTenantQueuedQuota: return "tenant-queued-quota";
    case RejectReason::kTenantRunningQuota: return "tenant-running-quota";
    case RejectReason::kBadScript: return "bad-script";
    case RejectReason::kShuttingDown: return "shutting-down";
    default: return "?";
  }
}

// --- messages -----------------------------------------------------------

/// Frame types of the serving protocol (requests odd concerns, replies
/// paired). The journal uses its own type range (see job_journal.cpp) so
/// a journal file fed to the endpoint is rejected as unknown, not
/// misparsed.
enum class MsgType : std::uint16_t {
  kSubmit = 0x0101,
  kSubmitReply = 0x0102,
  kStatus = 0x0103,
  kStatusReply = 0x0104,
  kFetchChunks = 0x0105,
  kChunksReply = 0x0106,
  kCancel = 0x0107,
  kCancelReply = 0x0108,
  kStats = 0x0109,
  kStatsReply = 0x010A,
  kStatsJson = 0x010B,       ///< one live-telemetry snapshot (JSON)
  kStatsJsonReply = 0x010C,
  kWatch = 0x010D,           ///< stream snapshots every interval_ms
  kError = 0x01FF,
};

struct SubmitRequest {
  std::string tenant;
  std::string name;    ///< unique per tenant; resubmission is idempotent
  std::string script;  ///< LAMMPS-style input script text
  std::uint32_t deadline_ms = 0;   ///< 0 = server default
  std::uint16_t max_attempts = 0;  ///< 0 = server default
};

struct SubmitReply {
  bool accepted = false;
  bool already_known = false;  ///< idempotent resubmit of an existing job
  std::uint64_t job_id = 0;
  JobState state = JobState::kRejected;
  RejectReason reject = RejectReason::kNone;
  std::string detail;
};

struct StatusRequest {
  std::uint64_t job_id = 0;
};

struct JobStatus {
  std::uint64_t job_id = 0;
  std::string tenant;
  std::string name;
  JobState state = JobState::kPending;
  std::uint16_t attempts = 0;
  std::int32_t total_steps = 0;
  std::int32_t completed_steps = 0;
  std::uint32_t chunks_available = 0;
  std::string detail;
};

struct FetchRequest {
  std::uint64_t job_id = 0;
  std::uint32_t from_chunk = 0;
  std::uint32_t max_chunks = 16;
};

struct ChunksReply {
  std::uint64_t job_id = 0;
  std::uint32_t from_chunk = 0;
  std::vector<std::string> chunks;
  JobState state = JobState::kPending;
  bool terminal = false;
};

struct CancelRequest {
  std::uint64_t job_id = 0;
};

struct CancelReply {
  std::uint64_t job_id = 0;
  bool found = false;
  JobState state = JobState::kPending;  ///< state after the cancel attempt
};

/// Start a snapshot stream: the endpoint sends one kStatsJsonReply every
/// `interval_ms` until the client closes (or `max_frames`, when nonzero,
/// have been sent — scripting and tests use it to bound the stream).
/// Against the raw byte endpoint (no connection to stream over) a watch
/// degrades to a single snapshot reply.
struct WatchRequest {
  std::uint32_t interval_ms = 500;
  std::uint32_t max_frames = 0;  ///< 0 = until the client closes
};

struct ErrorReply {
  std::string detail;
};

// Each encode_* appends one whole frame (header + payload) to `out`;
// each decode_* parses one frame payload and throws ProtocolError on
// malformed bytes.

void encode_submit(std::vector<char>& out, const SubmitRequest& m);
SubmitRequest decode_submit(const char* payload, std::size_t len);

void encode_submit_reply(std::vector<char>& out, const SubmitReply& m);
SubmitReply decode_submit_reply(const char* payload, std::size_t len);

void encode_status(std::vector<char>& out, const StatusRequest& m);
StatusRequest decode_status(const char* payload, std::size_t len);

void encode_status_reply(std::vector<char>& out, const JobStatus& m);
JobStatus decode_status_reply(const char* payload, std::size_t len);

void encode_fetch(std::vector<char>& out, const FetchRequest& m);
FetchRequest decode_fetch(const char* payload, std::size_t len);

void encode_chunks_reply(std::vector<char>& out, const ChunksReply& m);
ChunksReply decode_chunks_reply(const char* payload, std::size_t len);

void encode_cancel(std::vector<char>& out, const CancelRequest& m);
CancelRequest decode_cancel(const char* payload, std::size_t len);

void encode_cancel_reply(std::vector<char>& out, const CancelReply& m);
CancelReply decode_cancel_reply(const char* payload, std::size_t len);

void encode_stats(std::vector<char>& out);
void encode_stats_reply(std::vector<char>& out, const util::ServeStats& m);
util::ServeStats decode_stats_reply(const char* payload, std::size_t len);

void encode_stats_json(std::vector<char>& out);
void encode_stats_json_reply(std::vector<char>& out, const std::string& json);
std::string decode_stats_json_reply(const char* payload, std::size_t len);

void encode_watch(std::vector<char>& out, const WatchRequest& m);
WatchRequest decode_watch(const char* payload, std::size_t len);

void encode_error(std::vector<char>& out, const ErrorReply& m);
ErrorReply decode_error(const char* payload, std::size_t len);

/// Range-checked enum casts used by every decoder (and the journal).
JobState to_job_state(std::uint8_t v);
RejectReason to_reject_reason(std::uint8_t v);

}  // namespace lmp::serve
