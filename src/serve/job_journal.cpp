#include "serve/job_journal.h"

#include <fstream>
#include <stdexcept>

namespace lmp::serve {

namespace {

// Journal record types — a private range disjoint from MsgType so a
// journal file handed to the protocol endpoint (or vice versa) is
// refused as unknown instead of misparsed.
constexpr std::uint16_t kRecHeader = 0x4A00;
constexpr std::uint16_t kRecSubmit = 0x4A01;
constexpr std::uint16_t kRecState = 0x4A02;

// v2 added the per-job integrity counters to submit and state records.
constexpr std::uint32_t kJournalVersion = 2;

void encode_job(WireWriter& w, const JournalJob& j) {
  w.u64(j.id);
  w.str(j.tenant);
  w.str(j.name);
  w.str(j.script);
  w.u32(j.deadline_ms);
  w.u16(j.max_attempts);
  w.u8(static_cast<std::uint8_t>(j.state));
  w.u16(j.attempts);
  w.i32(j.completed_steps);
  w.str(j.restart_file);
  w.str(j.detail);
  w.u64(j.integrity_detections);
  w.u64(j.integrity_rollbacks);
}

JournalJob decode_job(const char* payload, std::size_t len) {
  WireReader r(payload, len, "journal submit record");
  JournalJob j;
  j.id = r.u64();
  j.tenant = r.str();
  j.name = r.str();
  j.script = r.str();
  j.deadline_ms = r.u32();
  j.max_attempts = r.u16();
  j.state = to_job_state(r.u8());
  j.attempts = r.u16();
  j.completed_steps = r.i32();
  j.restart_file = r.str();
  j.detail = r.str();
  j.integrity_detections = r.u64();
  j.integrity_rollbacks = r.u64();
  r.expect_done();
  return j;
}

std::vector<char> make_header_record() {
  WireWriter w;
  w.u32(kJournalVersion);
  std::vector<char> out;
  comm::append_frame(out, kRecHeader, w.bytes().data(), w.bytes().size());
  return out;
}

std::vector<char> make_submit_record(const JournalJob& j) {
  WireWriter w;
  encode_job(w, j);
  std::vector<char> out;
  comm::append_frame(out, kRecSubmit, w.bytes().data(), w.bytes().size());
  return out;
}

}  // namespace

void JobJournal::open(const std::string& path) {
  log_.close();
  path_ = path;
  jobs_.clear();
  recovery_ = RecoveryInfo{};

  // Replay the existing log (if any) into the folded table.
  std::vector<char> file;
  {
    std::ifstream is(path, std::ios::binary);
    if (is) {
      file.assign(std::istreambuf_iterator<char>(is),
                  std::istreambuf_iterator<char>());
    }
  }

  if (file.empty()) {
    log_.open(path);
    const std::vector<char> hdr = make_header_record();
    log_.append(hdr.data(), hdr.size(), /*sync=*/true);
    return;
  }

  std::size_t off = 0;
  bool saw_header = false;
  while (off < file.size()) {
    const comm::FrameView f =
        comm::decode_frame(file.data() + off, file.size() - off);
    if (f.status == comm::FrameStatus::kNeedMore) {
      // A crash mid-append leaves exactly one partial record at the
      // tail. Truncate it; everything before it is intact (CRC'd).
      recovery_.torn_bytes = file.size() - off;
      break;
    }
    if (!f.ok()) {
      // Mid-file corruption is not a crash signature — refuse loudly
      // rather than silently dropping jobs.
      throw std::runtime_error("job journal: corrupt record at offset " +
                               std::to_string(off) + " in " + path);
    }
    switch (f.type) {
      case kRecHeader: {
        WireReader r(f.payload, f.payload_len, "journal header");
        const std::uint32_t version = r.u32();
        r.expect_done();
        if (version != kJournalVersion) {
          throw std::runtime_error("job journal: unsupported version " +
                                   std::to_string(version) + " in " + path);
        }
        saw_header = true;
        break;
      }
      case kRecSubmit: {
        const JournalJob j = decode_job(f.payload, f.payload_len);
        jobs_[j.id] = j;
        break;
      }
      case kRecState: {
        WireReader r(f.payload, f.payload_len, "journal state record");
        const std::uint64_t id = r.u64();
        const JobState state = to_job_state(r.u8());
        const std::uint16_t attempts = r.u16();
        const std::int32_t steps = r.i32();
        const std::string restart = r.str();
        const std::string detail = r.str();
        const std::uint64_t detections = r.u64();
        const std::uint64_t rollbacks = r.u64();
        r.expect_done();
        auto it = jobs_.find(id);
        if (it == jobs_.end()) {
          throw std::runtime_error(
              "job journal: state record for unknown job " +
              std::to_string(id) + " in " + path);
        }
        it->second.state = state;
        it->second.attempts = attempts;
        it->second.completed_steps = steps;
        it->second.restart_file = restart;
        it->second.detail = detail;
        it->second.integrity_detections = detections;
        it->second.integrity_rollbacks = rollbacks;
        break;
      }
      default:
        throw std::runtime_error("job journal: unknown record type " +
                                 std::to_string(f.type) + " in " + path);
    }
    off += f.consumed;
  }
  if (!saw_header) {
    throw std::runtime_error("job journal: missing header record in " + path);
  }

  recovery_.jobs_seen = jobs_.size();
  for (auto& [id, j] : jobs_) {
    if (!is_terminal(j.state)) {
      // The server died while this job was queued or mid-run: requeue.
      // Its restart_file still points at the newest durable checkpoint,
      // so the resumed attempt continues instead of starting over.
      j.state = JobState::kPending;
      ++recovery_.requeued;
    }
  }

  compact();
  recovery_.compacted = true;
}

void JobJournal::compact() {
  std::vector<char> out = make_header_record();
  for (auto& [id, j] : jobs_) {
    // Terminal jobs shed their script text — in memory AND on disk, so
    // the folded table always mirrors what a reopen would see.
    if (is_terminal(j.state)) j.script.clear();
    const std::vector<char> rec = make_submit_record(j);
    out.insert(out.end(), rec.begin(), rec.end());
  }
  util::write_file_durable(path_, out.data(), out.size());
  log_.close();
  log_.open(path_);
}

std::uint64_t JobJournal::next_id() const {
  return jobs_.empty() ? 1 : jobs_.rbegin()->first + 1;
}

void JobJournal::record_submit(const JournalJob& job) {
  if (!log_.is_open()) throw std::runtime_error("job journal: not open");
  if (jobs_.count(job.id) != 0) {
    throw std::runtime_error("job journal: duplicate submit for job " +
                             std::to_string(job.id));
  }
  JournalJob j = job;
  j.state = JobState::kPending;
  const std::vector<char> rec = make_submit_record(j);
  log_.append(rec.data(), rec.size(), /*sync=*/true);  // write-ahead
  jobs_[j.id] = j;
}

void JobJournal::record_state(std::uint64_t id, JobState state,
                              std::uint16_t attempts,
                              std::int32_t completed_steps,
                              const std::string& restart_file,
                              const std::string& detail,
                              std::uint64_t integrity_detections,
                              std::uint64_t integrity_rollbacks) {
  if (!log_.is_open()) throw std::runtime_error("job journal: not open");
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::runtime_error("job journal: state change for unknown job " +
                             std::to_string(id));
  }
  WireWriter w;
  w.u64(id);
  w.u8(static_cast<std::uint8_t>(state));
  w.u16(attempts);
  w.i32(completed_steps);
  w.str(restart_file);
  w.str(detail);
  w.u64(integrity_detections);
  w.u64(integrity_rollbacks);
  std::vector<char> frame;
  comm::append_frame(frame, kRecState, w.bytes().data(), w.bytes().size());
  log_.append(frame.data(), frame.size(), /*sync=*/true);  // write-ahead
  it->second.state = state;
  it->second.attempts = attempts;
  it->second.completed_steps = completed_steps;
  it->second.restart_file = restart_file;
  it->second.detail = detail;
  it->second.integrity_detections = integrity_detections;
  it->second.integrity_rollbacks = integrity_rollbacks;
}

}  // namespace lmp::serve
