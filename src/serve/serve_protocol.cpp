#include "serve/serve_protocol.h"

#include <algorithm>
#include <cstring>

namespace lmp::serve {

namespace {

// One helper per direction so every encoder stays a flat field list and
// the frame append (type + CRC) lives in one place.
void finish(std::vector<char>& out, MsgType type, const WireWriter& w) {
  comm::append_frame(out, static_cast<std::uint16_t>(type),
                     w.bytes().data(), w.bytes().size());
}

}  // namespace

JobState to_job_state(std::uint8_t v) {
  if (v >= static_cast<std::uint8_t>(JobState::kCount)) {
    throw ProtocolError("serve: job state out of range: " + std::to_string(v));
  }
  return static_cast<JobState>(v);
}

RejectReason to_reject_reason(std::uint8_t v) {
  if (v >= static_cast<std::uint8_t>(RejectReason::kCount)) {
    throw ProtocolError("serve: reject reason out of range: " +
                        std::to_string(v));
  }
  return static_cast<RejectReason>(v);
}

void encode_submit(std::vector<char>& out, const SubmitRequest& m) {
  WireWriter w;
  w.str(m.tenant);
  w.str(m.name);
  w.str(m.script);
  w.u32(m.deadline_ms);
  w.u16(m.max_attempts);
  finish(out, MsgType::kSubmit, w);
}

SubmitRequest decode_submit(const char* payload, std::size_t len) {
  WireReader r(payload, len, "submit");
  SubmitRequest m;
  m.tenant = r.str();
  m.name = r.str();
  m.script = r.str();
  m.deadline_ms = r.u32();
  m.max_attempts = r.u16();
  r.expect_done();
  return m;
}

void encode_submit_reply(std::vector<char>& out, const SubmitReply& m) {
  WireWriter w;
  w.u8(m.accepted ? 1 : 0);
  w.u8(m.already_known ? 1 : 0);
  w.u64(m.job_id);
  w.u8(static_cast<std::uint8_t>(m.state));
  w.u8(static_cast<std::uint8_t>(m.reject));
  w.str(m.detail);
  finish(out, MsgType::kSubmitReply, w);
}

SubmitReply decode_submit_reply(const char* payload, std::size_t len) {
  WireReader r(payload, len, "submit reply");
  SubmitReply m;
  m.accepted = r.u8() != 0;
  m.already_known = r.u8() != 0;
  m.job_id = r.u64();
  m.state = to_job_state(r.u8());
  m.reject = to_reject_reason(r.u8());
  m.detail = r.str();
  r.expect_done();
  return m;
}

void encode_status(std::vector<char>& out, const StatusRequest& m) {
  WireWriter w;
  w.u64(m.job_id);
  finish(out, MsgType::kStatus, w);
}

StatusRequest decode_status(const char* payload, std::size_t len) {
  WireReader r(payload, len, "status");
  StatusRequest m;
  m.job_id = r.u64();
  r.expect_done();
  return m;
}

void encode_status_reply(std::vector<char>& out, const JobStatus& m) {
  WireWriter w;
  w.u64(m.job_id);
  w.str(m.tenant);
  w.str(m.name);
  w.u8(static_cast<std::uint8_t>(m.state));
  w.u16(m.attempts);
  w.i32(m.total_steps);
  w.i32(m.completed_steps);
  w.u32(m.chunks_available);
  w.str(m.detail);
  finish(out, MsgType::kStatusReply, w);
}

JobStatus decode_status_reply(const char* payload, std::size_t len) {
  WireReader r(payload, len, "status reply");
  JobStatus m;
  m.job_id = r.u64();
  m.tenant = r.str();
  m.name = r.str();
  m.state = to_job_state(r.u8());
  m.attempts = r.u16();
  m.total_steps = r.i32();
  m.completed_steps = r.i32();
  m.chunks_available = r.u32();
  m.detail = r.str();
  r.expect_done();
  return m;
}

void encode_fetch(std::vector<char>& out, const FetchRequest& m) {
  WireWriter w;
  w.u64(m.job_id);
  w.u32(m.from_chunk);
  w.u32(m.max_chunks);
  finish(out, MsgType::kFetchChunks, w);
}

FetchRequest decode_fetch(const char* payload, std::size_t len) {
  WireReader r(payload, len, "fetch");
  FetchRequest m;
  m.job_id = r.u64();
  m.from_chunk = r.u32();
  m.max_chunks = r.u32();
  r.expect_done();
  return m;
}

void encode_chunks_reply(std::vector<char>& out, const ChunksReply& m) {
  WireWriter w;
  w.u64(m.job_id);
  w.u32(m.from_chunk);
  w.u8(static_cast<std::uint8_t>(m.state));
  w.u8(m.terminal ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(m.chunks.size()));
  for (const std::string& c : m.chunks) w.str(c);
  finish(out, MsgType::kChunksReply, w);
}

ChunksReply decode_chunks_reply(const char* payload, std::size_t len) {
  WireReader r(payload, len, "chunks reply");
  ChunksReply m;
  m.job_id = r.u64();
  m.from_chunk = r.u32();
  m.state = to_job_state(r.u8());
  m.terminal = r.u8() != 0;
  const std::uint32_t n = r.u32();
  // Every chunk costs at least its 4-byte length prefix, so a count a
  // forged frame can actually back is bounded by len/4 — clamp the
  // reserve to that instead of trusting the declared count (which could
  // otherwise demand a multi-GB allocation before the per-string bounds
  // checks get to reject the payload).
  m.chunks.reserve(std::min<std::size_t>(n, len / 4));
  for (std::uint32_t i = 0; i < n; ++i) m.chunks.push_back(r.str());
  r.expect_done();
  return m;
}

void encode_cancel(std::vector<char>& out, const CancelRequest& m) {
  WireWriter w;
  w.u64(m.job_id);
  finish(out, MsgType::kCancel, w);
}

CancelRequest decode_cancel(const char* payload, std::size_t len) {
  WireReader r(payload, len, "cancel");
  CancelRequest m;
  m.job_id = r.u64();
  r.expect_done();
  return m;
}

void encode_cancel_reply(std::vector<char>& out, const CancelReply& m) {
  WireWriter w;
  w.u64(m.job_id);
  w.u8(m.found ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(m.state));
  finish(out, MsgType::kCancelReply, w);
}

CancelReply decode_cancel_reply(const char* payload, std::size_t len) {
  WireReader r(payload, len, "cancel reply");
  CancelReply m;
  m.job_id = r.u64();
  m.found = r.u8() != 0;
  m.state = to_job_state(r.u8());
  r.expect_done();
  return m;
}

void encode_stats(std::vector<char>& out) {
  WireWriter w;
  finish(out, MsgType::kStats, w);
}

void encode_stats_reply(std::vector<char>& out, const util::ServeStats& m) {
  WireWriter w;
  w.u64(m.submitted);
  w.u64(m.admitted);
  w.u64(m.rejected_queue_full);
  w.u64(m.rejected_quota);
  w.u64(m.rejected_bad_script);
  w.u64(m.rejected_shutdown);
  w.u64(m.duplicate_submits);
  w.u64(m.retries);
  w.u64(m.deadline_missed);
  w.u64(m.completed);
  w.u64(m.failed);
  w.u64(m.cancelled);
  w.u64(m.recovered);
  w.u64(m.journal_torn_bytes);
  w.i64(m.queue_depth);
  w.i64(m.queue_depth_peak);
  w.i64(m.running);
  w.u64(m.slo_breaches);
  finish(out, MsgType::kStatsReply, w);
}

util::ServeStats decode_stats_reply(const char* payload, std::size_t len) {
  WireReader r(payload, len, "stats reply");
  util::ServeStats m;
  m.submitted = r.u64();
  m.admitted = r.u64();
  m.rejected_queue_full = r.u64();
  m.rejected_quota = r.u64();
  m.rejected_bad_script = r.u64();
  m.rejected_shutdown = r.u64();
  m.duplicate_submits = r.u64();
  m.retries = r.u64();
  m.deadline_missed = r.u64();
  m.completed = r.u64();
  m.failed = r.u64();
  m.cancelled = r.u64();
  m.recovered = r.u64();
  m.journal_torn_bytes = r.u64();
  m.queue_depth = r.i64();
  m.queue_depth_peak = r.i64();
  m.running = r.i64();
  m.slo_breaches = r.u64();
  r.expect_done();
  return m;
}

void encode_stats_json(std::vector<char>& out) {
  WireWriter w;
  finish(out, MsgType::kStatsJson, w);
}

void encode_stats_json_reply(std::vector<char>& out, const std::string& json) {
  WireWriter w;
  w.str(json);
  finish(out, MsgType::kStatsJsonReply, w);
}

std::string decode_stats_json_reply(const char* payload, std::size_t len) {
  WireReader r(payload, len, "stats-json reply");
  std::string json = r.str();
  r.expect_done();
  return json;
}

void encode_watch(std::vector<char>& out, const WatchRequest& m) {
  WireWriter w;
  w.u32(m.interval_ms);
  w.u32(m.max_frames);
  finish(out, MsgType::kWatch, w);
}

WatchRequest decode_watch(const char* payload, std::size_t len) {
  WireReader r(payload, len, "watch request");
  WatchRequest m;
  m.interval_ms = r.u32();
  m.max_frames = r.u32();
  r.expect_done();
  return m;
}

void encode_error(std::vector<char>& out, const ErrorReply& m) {
  WireWriter w;
  w.str(m.detail);
  finish(out, MsgType::kError, w);
}

ErrorReply decode_error(const char* payload, std::size_t len) {
  WireReader r(payload, len, "error reply");
  ErrorReply m;
  m.detail = r.str();
  r.expect_done();
  return m;
}

}  // namespace lmp::serve
