#include "serve/telemetry.h"

#include <algorithm>
#include <chrono>

#include "obs/alloc_tracker.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "serve/job_server.h"
#include "tofu/hardware.h"
#include "tofu/link_telemetry.h"

namespace lmp::serve {

namespace {

std::int64_t steady_ms() { return obs::now_ns() / 1000000; }

/// [[t, v], ...] for every sample inside the window.
void write_series(obs::JsonWriter& j, const obs::TimeSeries* s,
                  std::int64_t now_ms, std::int64_t window_ms) {
  j.begin_array();
  if (s != nullptr) {
    for (const obs::Sample& x : s->samples_since(now_ms - window_ms)) {
      j.begin_array();
      j.value(x.t_ms);
      j.value(x.value);
      j.end_array();
    }
  }
  j.end_array();
}

}  // namespace

TelemetrySampler::TelemetrySampler(JobServer& server, TelemetryConfig cfg)
    : server_(server),
      cfg_(cfg),
      series_(cfg.series_capacity),
      slo_(
          [&cfg] {
            obs::SloPolicy p = cfg.default_slo;
            if (p.window_ms <= 0) p.window_ms = cfg.window_ms;
            return p;
          }(),
          cfg.series_capacity) {
  for (const auto& [tenant, policy] : cfg_.tenant_slo) {
    obs::SloPolicy p = policy;
    if (p.window_ms <= 0) p.window_ms = cfg_.window_ms;
    slo_.set_policy(tenant, p);
  }
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  std::lock_guard<std::mutex> lk(loop_mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { loop(); });
}

void TelemetrySampler::stop() {
  {
    std::lock_guard<std::mutex> lk(loop_mu_);
    stop_requested_ = true;
  }
  loop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TelemetrySampler::loop() {
  LMP_TRACE_THREAD(-1, 90, "telemetry-sampler");
  std::unique_lock<std::mutex> lk(loop_mu_);
  while (!stop_requested_) {
    lk.unlock();
    tick();
    lk.lock();
    loop_cv_.wait_for(lk, std::chrono::milliseconds(cfg_.interval_ms),
                      [this] { return stop_requested_; });
  }
}

void TelemetrySampler::tick() {
  std::lock_guard<std::mutex> lk(tick_mu_);
  tick_locked(steady_ms());
}

void TelemetrySampler::tick_locked(std::int64_t t_ms) {
  LMP_TRACE_SPAN(obs::TraceCat::kServe, "telemetry.tick");

  // (1) Server probe: one brief server-lock acquisition.
  const ServerProbe probe = server_.probe_telemetry();
  last_jobs_ = probe.jobs;
  last_queue_depth_ = probe.queue_depth;
  last_running_ = probe.running;
  series_.series("server.queue_depth").append(t_ms, static_cast<double>(probe.queue_depth));
  series_.series("server.running").append(t_ms, static_cast<double>(probe.running));

  // (2) Per-job step progress deltas -> per-job, per-tenant, and server
  // step series, plus the SLO step/rollback signals. The delta trackers
  // absorb restarts (a recovered job's live step can restart lower).
  std::map<std::string, double> tenant_steps;
  std::map<std::string, double> tenant_rollbacks;
  double server_steps = 0.0;
  for (const JobProgress& jp : probe.jobs) {
    const std::uint64_t delta = job_step_deltas_[jp.id].advance(
        static_cast<std::uint64_t>(std::max<std::int64_t>(jp.steps, 0)));
    if (delta > 0 || jp.state == JobState::kRunning) {
      series_.series("job." + std::to_string(jp.id) + ".steps")
          .append(t_ms, static_cast<double>(delta));
    }
    tenant_steps[jp.tenant] += static_cast<double>(delta);
    server_steps += static_cast<double>(delta);
    tenant_rollbacks[jp.tenant] += 0.0;  // ensure the tenant key exists
  }
  series_.series("server.steps").append(t_ms, server_steps);
  for (const auto& [tenant, steps] : tenant_steps) {
    series_.series("tenant." + tenant + ".steps").append(t_ms, steps);
    slo_.record_steps(tenant, t_ms, steps);
  }

  // Rollbacks ride the probe as journaled totals; delta per tenant.
  {
    std::map<std::string, std::uint64_t> totals;
    for (const JobProgress& jp : probe.jobs) totals[jp.tenant] += jp.rollbacks;
    for (const auto& [tenant, total] : totals) {
      const std::uint64_t d =
          counter_deltas_["slo.rollbacks." + tenant].advance(total);
      if (d > 0) slo_.record_rollbacks(tenant, t_ms, static_cast<double>(d));
    }
  }

  // (3) Metrics-registry counters: delta-snapshot the lock-free values
  // into "counter.<name>" series (the hot path is never locked — only
  // its relaxed atomics are read).
  for (const auto& [name, value] :
       obs::MetricsRegistry::instance().counters()) {
    const std::uint64_t d = counter_deltas_["counter." + name].advance(value);
    series_.series("counter." + name).append(t_ms, static_cast<double>(d));
  }

  // (4) Per-TNI fabric utilization from the live-fabric roll-up
  // (monotonic across per-attempt fabric lifetimes).
  const std::vector<tofu::FabricTniStat> tnis =
      tofu::LiveFabricRegistry::instance().tni_totals();
  for (std::size_t i = 0; i < tnis.size(); ++i) {
    const std::uint64_t db = tni_bytes_deltas_[i].advance(tnis[i].bytes);
    const std::uint64_t dp = tni_packets_deltas_[i].advance(tnis[i].packets);
    series_.series("tni." + std::to_string(i) + ".bytes")
        .append(t_ms, static_cast<double>(db));
    series_.series("tni." + std::to_string(i) + ".packets")
        .append(t_ms, static_cast<double>(dp));
  }

  // (4b) Process memory: heap-live / RSS gauges and the allocation rate
  // (delta of the tracker's global counter). Reading the tracker is a
  // handful of relaxed loads; the /proc read is one tiny file. Heap
  // series sit at zero when LMP_ALLOC_TRACE is compiled out — RSS is
  // real either way.
  {
    const obs::AllocTotals mem = obs::AllocTracker::instance().totals();
    series_.series("mem.heap_live_bytes")
        .append(t_ms, static_cast<double>(mem.live_bytes));
    series_.series("mem.rss_bytes")
        .append(t_ms, static_cast<double>(tofu::probe_rss_bytes()));
    const std::uint64_t da = counter_deltas_["mem.allocs"].advance(mem.allocs);
    series_.series("mem.alloc_rate").append(t_ms, static_cast<double>(da));
  }

  // (5) SLO windows: evaluate every tenant, emit breach transitions.
  last_slo_ = slo_.evaluate(t_ms, probe.running_tenants);

  ticks_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::instance().counter("serve.telemetry_ticks").add();
}

std::string TelemetrySampler::snapshot_json() {
  std::lock_guard<std::mutex> lk(tick_mu_);
  const std::int64_t t_ms = steady_ms();
  tick_locked(t_ms);
  return build_json_locked(t_ms);
}

std::string TelemetrySampler::build_json_locked(std::int64_t t_ms) {
  const std::int64_t window = cfg_.window_ms;
  obs::JsonWriter j;
  j.begin_object();
  j.kv("schema", "lmp-telemetry-snapshot");
  // v2 added the "memory" block (heap-live/RSS/alloc-rate series).
  j.kv("version", 2);
  j.kv("now_ms", t_ms);
  j.kv("interval_ms", static_cast<std::uint64_t>(cfg_.interval_ms));
  j.kv("window_ms", window);
  j.kv("ticks", ticks());

  // --- server -----------------------------------------------------------
  j.key("server");
  j.begin_object();
  j.kv("queue_depth", last_queue_depth_);
  j.kv("running", last_running_);
  j.kv("live_fabrics",
       static_cast<std::uint64_t>(tofu::LiveFabricRegistry::instance().live_count()));
  {
    const obs::TimeSeries* steps = series_.find("server.steps");
    const obs::WindowAggregate a =
        steps != nullptr ? steps->aggregate(t_ms, window) : obs::WindowAggregate{};
    j.kv("step_rate_per_s", a.rate_per_s);
    j.kv("steps_in_window", a.sum);
    j.key("step_series");
    write_series(j, steps, t_ms, window);
    j.key("queue_depth_series");
    write_series(j, series_.find("server.queue_depth"), t_ms, window);
  }
  j.key("counters");
  j.begin_object();
  for (const auto& [name, value] :
       obs::MetricsRegistry::instance().counters()) {
    j.key(name);
    j.begin_object();
    j.kv("total", value);
    const obs::TimeSeries* s = series_.find("counter." + name);
    j.kv("rate_per_s",
         s != nullptr ? s->aggregate(t_ms, window).rate_per_s : 0.0);
    j.end_object();
  }
  j.end_object();
  j.key("histograms");
  j.begin_object();
  for (const auto& [name, sum] :
       obs::MetricsRegistry::instance().histograms()) {
    j.key(name);
    j.begin_object();
    j.kv("count", sum.count);
    j.kv("mean", sum.mean);
    j.kv("p50", sum.p50);
    j.kv("p95", sum.p95);
    j.kv("p99", sum.p99);
    j.kv("min", sum.min);
    j.kv("max", sum.max);
    j.end_object();
  }
  j.end_object();
  j.end_object();  // server

  // --- tenants (SLO windows) ---------------------------------------------
  j.key("tenants");
  j.begin_array();
  for (const obs::TenantSlo& t : last_slo_) {
    j.begin_object();
    j.kv("tenant", t.tenant);
    j.kv("active", t.active);
    j.kv("window_ms", t.window_ms);
    j.kv("queue_wait_samples", t.queue_wait_samples);
    j.kv("queue_wait_p50_ms", t.queue_wait_p50_ms);
    j.kv("queue_wait_p99_ms", t.queue_wait_p99_ms);
    j.kv("deadline_hits", t.deadline_hits);
    j.kv("deadline_misses", t.deadline_misses);
    j.kv("deadline_hit_rate", t.deadline_hit_rate);
    j.kv("steps_per_sec", t.steps_per_sec);
    j.kv("integrity_rollbacks", t.integrity_rollbacks);
    j.kv("breached", t.breached());
    j.kv("breach_queue_wait", t.breach_queue_wait);
    j.kv("breach_deadline", t.breach_deadline);
    j.kv("breach_step_rate", t.breach_step_rate);
    j.kv("breach_rollbacks", t.breach_rollbacks);
    j.kv("detail", t.breach_detail());
    j.end_object();
  }
  j.end_array();

  // --- jobs ---------------------------------------------------------------
  j.key("jobs");
  j.begin_array();
  for (const JobProgress& jp : last_jobs_) {
    j.begin_object();
    j.kv("id", jp.id);
    j.kv("tenant", jp.tenant);
    j.kv("name", jp.name);
    j.kv("state", job_state_name(jp.state));
    j.kv("steps", jp.steps);
    j.kv("total_steps", static_cast<std::int64_t>(jp.total_steps));
    const obs::TimeSeries* s =
        series_.find("job." + std::to_string(jp.id) + ".steps");
    j.kv("rate_per_s",
         s != nullptr ? s->aggregate(t_ms, window).rate_per_s : 0.0);
    j.end_object();
  }
  j.end_array();

  // --- per-TNI utilization ------------------------------------------------
  j.key("tnis");
  j.begin_array();
  {
    const std::vector<tofu::FabricTniStat> tnis =
        tofu::LiveFabricRegistry::instance().tni_totals();
    for (std::size_t i = 0; i < tnis.size(); ++i) {
      j.begin_object();
      j.kv("tni", static_cast<std::uint64_t>(i));
      j.kv("bytes_total", tnis[i].bytes);
      j.kv("packets_total", tnis[i].packets);
      const obs::TimeSeries* sb =
          series_.find("tni." + std::to_string(i) + ".bytes");
      const obs::TimeSeries* sp =
          series_.find("tni." + std::to_string(i) + ".packets");
      j.kv("bytes_per_s",
           sb != nullptr ? sb->aggregate(t_ms, window).rate_per_s : 0.0);
      j.kv("packets_per_s",
           sp != nullptr ? sp->aggregate(t_ms, window).rate_per_s : 0.0);
      j.key("bytes_series");
      write_series(j, sb, t_ms, window);
      j.end_object();
    }
  }
  j.end_array();

  // --- process memory (v2) ------------------------------------------------
  j.key("memory");
  j.begin_object();
  {
    const obs::AllocTotals mem = obs::AllocTracker::instance().totals();
    j.kv("tracked", obs::alloc_trace_compiled_in());
    j.kv("heap_live_bytes", mem.live_bytes);
    j.kv("heap_high_water_bytes", mem.high_water_bytes);
    j.kv("rss_bytes", tofu::probe_rss_bytes());
    j.kv("total_allocs", mem.allocs);
    j.kv("total_bytes", mem.bytes);
    const obs::TimeSeries* rate = series_.find("mem.alloc_rate");
    j.kv("allocs_per_s",
         rate != nullptr ? rate->aggregate(t_ms, window).rate_per_s : 0.0);
    j.key("heap_live_series");
    write_series(j, series_.find("mem.heap_live_bytes"), t_ms, window);
    j.key("rss_series");
    write_series(j, series_.find("mem.rss_bytes"), t_ms, window);
    j.key("alloc_rate_series");
    write_series(j, series_.find("mem.alloc_rate"), t_ms, window);
  }
  j.end_object();

  // --- SLO transition events ----------------------------------------------
  j.key("slo_events");
  j.begin_array();
  for (const obs::SloBreachEvent& ev : slo_.events()) {
    j.begin_object();
    j.kv("t_ms", ev.t_ms);
    j.kv("tenant", ev.tenant);
    j.kv("entered", ev.entered);
    j.kv("detail", ev.detail);
    j.end_object();
  }
  j.end_array();

  j.end_object();
  return j.str();
}

}  // namespace lmp::serve
