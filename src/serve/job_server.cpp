#include "serve/job_server.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "obs/alloc_tracker.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "sim/input_script.h"
#include "sim/simulation.h"
#include "tofu/hardware.h"

namespace lmp::serve {

namespace {

std::string job_key(const std::string& tenant, const std::string& name) {
  return tenant + '\0' + name;
}

/// Slice quantum for a parsed job: the smallest common multiple of the
/// checkpoint and thermo cadences at least `preferred` steps long.
/// Intermediate slice boundaries land only on these multiples, so the
/// boundary thermo sample (run_simulation records `step == nsteps`
/// unconditionally) coincides with the regular `step % thermo_every`
/// schedule — a sliced run's thermo series is bitwise-identical to an
/// uninterrupted one.
///
/// Computed in 64-bit and clamped to `total`: the cadences are
/// client-controlled, and an lcm like lcm(1999999999, 2000000000)
/// overflows int. Any quantum >= total means one full-run slice, which
/// is always correct (the final boundary records thermo regardless).
int slice_quantum(int checkpoint_every, int thermo_every, int preferred,
                  int total) {
  const long long cap = std::max(total, 1);
  const long long l = std::lcm(static_cast<long long>(std::max(1, checkpoint_every)),
                               static_cast<long long>(std::max(1, thermo_every)));
  if (l >= cap) return static_cast<int>(cap);
  const long long q = (std::max(preferred, 1) + l - 1) / l * l;
  return static_cast<int>(std::min(q, cap));
}

std::string format_thermo_chunk(const std::vector<sim::ThermoSample>& thermo,
                                int after_step) {
  std::string out;
  char line[256];
  for (const sim::ThermoSample& s : thermo) {
    if (s.step <= after_step) continue;
    std::snprintf(line, sizeof line, "%d %.17g %.17g %.17g %.17g\n", s.step,
                  s.state.temperature, s.state.pressure, s.state.kinetic,
                  s.state.potential);
    out += line;
  }
  return out;
}

/// Same per-atom text format as lmp_cli's final dump (%.17g round-trips
/// exactly), so server-side and CLI-side trajectories diff directly.
bool write_atom_dump(const std::string& path, const sim::JobResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  for (const auto& a : r.atoms) {
    std::fprintf(f, "%lld %.17g %.17g %.17g %.17g %.17g %.17g\n",
                 static_cast<long long>(a.tag), a.pos.x, a.pos.y, a.pos.z,
                 a.vel.x, a.vel.y, a.vel.z);
  }
  std::fclose(f);
  return true;
}

obs::Counter& metric(const char* name) {
  return obs::MetricsRegistry::instance().counter(name);
}

}  // namespace

JobServer::JobServer(ServerConfig config) : cfg_(std::move(config)) {
  if (cfg_.journal_path.empty() || cfg_.work_dir.empty()) {
    throw std::invalid_argument("JobServer: journal_path and work_dir are "
                                "required");
  }
  if (cfg_.workers < 0) cfg_.workers = 0;
  if (cfg_.queue_capacity < 1) cfg_.queue_capacity = 1;
  if (cfg_.default_max_attempts < 1) cfg_.default_max_attempts = 1;
  if (cfg_.telemetry.interval_ms == 0) cfg_.telemetry.interval_ms = 100;
  if (cfg_.telemetry.window_ms <= 0) cfg_.telemetry.window_ms = 10000;
  if (cfg_.telemetry.series_capacity == 0) cfg_.telemetry.series_capacity = 512;
  if (cfg_.telemetry.enabled) {
    sampler_ = std::make_unique<TelemetrySampler>(*this, cfg_.telemetry);
  }
}

JobServer::~JobServer() { stop(StopMode::kDrain); }

void JobServer::start() {
  std::unique_lock<std::mutex> lk(mu_);
  if (started_) throw std::logic_error("JobServer: already started");

  journal_.open(cfg_.journal_path);
  const Clock::time_point now = Clock::now();
  for (const auto& [id, jj] : journal_.jobs()) {
    Job job;
    job.j = jj;
    job.admitted_at = now;
    job.ready_at = now;
    if (jj.deadline_ms > 0) {
      // Deadlines are wall-clock per incarnation: a recovered job gets
      // its full budget again (the old clock died with the old server).
      job.has_deadline = true;
      job.deadline_at = now + std::chrono::milliseconds(jj.deadline_ms);
    }
    job.total_steps = jj.completed_steps;
    job.live_step = std::make_shared<std::atomic<std::int64_t>>(
        static_cast<std::int64_t>(jj.completed_steps));
    if (!jj.script.empty()) {
      try {
        job.total_steps = sim::parse_input_script(jj.script).run_steps;
      } catch (const std::exception&) {
        // Journaled script no longer parses (version skew): fail it
        // rather than crash-loop the worker on it.
        job.j.state = JobState::kFailed;
        job.j.detail = "journaled script no longer parses";
        journal_.record_state(id, job.j.state, job.j.attempts,
                              job.j.completed_steps, job.j.restart_file,
                              job.j.detail, job.j.integrity_detections,
                              job.j.integrity_rollbacks);
      }
    }
    by_key_[job_key(jj.tenant, jj.name)] = id;
    jobs_.emplace(id, std::move(job));
  }
  stats_.recovered = journal_.recovery().requeued;
  stats_.journal_torn_bytes = journal_.recovery().torn_bytes;
  metric("serve.recovered").add(journal_.recovery().requeued);

  started_ = true;
  accepting_ = true;
  stop_requested_ = false;
  abandon_ = false;
  journal_failed_ = false;
  journal_error_.clear();
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (sampler_) {
    // The per-TNI utilization series rides the fabric link telemetry,
    // which only charges puts while metrics collection is on.
    obs::set_metrics_enabled(true);
    sampler_->start();
  }
}

bool JobServer::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return started_;
}

void JobServer::stop(StopMode mode) {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_) return;
    accepting_ = false;
    stop_requested_ = true;
    abandon_ = mode == StopMode::kAbandon;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& t : workers) t.join();
  // Sampler stops after the workers: the final tick still observes the
  // terminal transitions the drain produced.
  if (sampler_) sampler_->stop();
  std::lock_guard<std::mutex> lk(mu_);
  journal_.close();
  started_ = false;
}

const TenantQuota& JobServer::quota_for(const std::string& tenant) const {
  const auto it = cfg_.tenant_quotas.find(tenant);
  return it != cfg_.tenant_quotas.end() ? it->second : cfg_.default_quota;
}

int JobServer::queue_depth_locked() const {
  int n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.j.state == JobState::kPending ||
        job.j.state == JobState::kRetrying) {
      ++n;
    }
  }
  return n;
}

SubmitReply JobServer::submit(const SubmitRequest& req) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.submitted;
  metric("serve.submitted").add();

  SubmitReply reply;
  const auto reject = [&](RejectReason why, const std::string& detail) {
    reply.accepted = false;
    reply.state = JobState::kRejected;
    reply.reject = why;
    reply.detail = detail;
    metric("serve.rejected").add();
    return reply;
  };

  if (!accepting_) {
    ++stats_.rejected_shutdown;
    return reject(RejectReason::kShuttingDown,
                  journal_failed_
                      ? "journal failed, not accepting jobs: " + journal_error_
                      : "server is shutting down");
  }

  // Idempotent resubmit: same (tenant, name) answers with the existing
  // job, whatever state it reached — a client retrying a submit after a
  // server crash must not duplicate the job.
  const auto known = by_key_.find(job_key(req.tenant, req.name));
  if (known != by_key_.end()) {
    const Job& job = jobs_.at(known->second);
    ++stats_.duplicate_submits;
    reply.accepted = true;
    reply.already_known = true;
    reply.job_id = job.j.id;
    reply.state = job.j.state;
    reply.detail = job.j.detail;
    return reply;
  }

  int run_steps = 0;
  try {
    run_steps = sim::parse_input_script(req.script).run_steps;
  } catch (const std::exception& e) {
    ++stats_.rejected_bad_script;
    return reject(RejectReason::kBadScript, e.what());
  }

  const TenantQuota& q = quota_for(req.tenant);
  if (q.max_running <= 0) {
    ++stats_.rejected_quota;
    return reject(RejectReason::kTenantRunningQuota,
                  "tenant '" + req.tenant + "' has no run slots");
  }
  int tenant_queued = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.j.tenant == req.tenant && (job.j.state == JobState::kPending ||
                                       job.j.state == JobState::kRetrying)) {
      ++tenant_queued;
    }
  }
  if (tenant_queued >= q.max_queued) {
    ++stats_.rejected_quota;
    return reject(RejectReason::kTenantQueuedQuota,
                  "tenant '" + req.tenant + "' already has " +
                      std::to_string(tenant_queued) + " queued jobs");
  }
  if (queue_depth_locked() >= cfg_.queue_capacity) {
    ++stats_.rejected_queue_full;
    return reject(RejectReason::kQueueFull,
                  "admission queue at capacity (" +
                      std::to_string(cfg_.queue_capacity) + ")");
  }

  JournalJob jj;
  jj.id = journal_.next_id();
  jj.tenant = req.tenant;
  jj.name = req.name;
  jj.script = req.script;
  jj.deadline_ms =
      req.deadline_ms > 0 ? req.deadline_ms : cfg_.default_deadline_ms;
  jj.max_attempts =
      req.max_attempts > 0 ? req.max_attempts : cfg_.default_max_attempts;
  try {
    if (cfg_.journal_fault_hook) cfg_.journal_fault_hook();
    journal_.record_submit(jj);  // write-ahead: durable before visible
  } catch (const std::exception& e) {
    journal_io_failed_locked(e);
    ++stats_.rejected_shutdown;
    return reject(RejectReason::kShuttingDown,
                  std::string("journal write failed: ") + e.what());
  }

  Job job;
  job.j = journal_.jobs().at(jj.id);
  job.total_steps = run_steps;
  job.live_step = std::make_shared<std::atomic<std::int64_t>>(0);
  job.admitted_at = Clock::now();
  job.ready_at = job.admitted_at;
  if (jj.deadline_ms > 0) {
    job.has_deadline = true;
    job.deadline_at = job.admitted_at + std::chrono::milliseconds(jj.deadline_ms);
  }
  by_key_[job_key(jj.tenant, jj.name)] = jj.id;
  jobs_.emplace(jj.id, std::move(job));

  ++stats_.admitted;
  metric("serve.admitted").add();
  stats_.queue_depth = queue_depth_locked();
  stats_.queue_depth_peak = std::max(stats_.queue_depth_peak, stats_.queue_depth);
  obs::MetricsRegistry::instance().gauge("serve.queue_depth")
      .set(stats_.queue_depth);
  cv_.notify_one();

  reply.accepted = true;
  reply.job_id = jj.id;
  reply.state = JobState::kPending;
  return reply;
}

JobStatus JobServer::status_of_locked(const Job& job) const {
  JobStatus s;
  s.job_id = job.j.id;
  s.tenant = job.j.tenant;
  s.name = job.j.name;
  s.state = job.j.state;
  s.attempts = job.j.attempts;
  s.total_steps = job.total_steps;
  s.completed_steps = job.j.completed_steps;
  s.chunks_available = static_cast<std::uint32_t>(job.chunks.size());
  s.detail = job.j.detail;
  return s;
}

std::optional<JobStatus> JobServer::status(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return status_of_locked(it->second);
}

ChunksReply JobServer::fetch(const FetchRequest& req) const {
  std::lock_guard<std::mutex> lk(mu_);
  ChunksReply reply;
  reply.job_id = req.job_id;
  reply.from_chunk = req.from_chunk;
  const auto it = jobs_.find(req.job_id);
  if (it == jobs_.end()) {
    reply.state = JobState::kRejected;
    reply.terminal = true;
    return reply;
  }
  const Job& job = it->second;
  const std::size_t n = job.chunks.size();
  std::size_t i = req.from_chunk;
  const std::size_t cap = req.max_chunks == 0 ? 16 : req.max_chunks;
  for (; i < n && reply.chunks.size() < cap; ++i) {
    reply.chunks.push_back(job.chunks[i]);
  }
  reply.state = job.j.state;
  reply.terminal = is_terminal(job.j.state);
  return reply;
}

CancelReply JobServer::cancel(std::uint64_t job_id) {
  std::unique_lock<std::mutex> lk(mu_);
  CancelReply reply;
  reply.job_id = job_id;
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return reply;
  Job& job = it->second;
  reply.found = true;
  if (is_terminal(job.j.state)) {
    reply.state = job.j.state;
    return reply;
  }
  if (job.j.state == JobState::kRunning) {
    // The worker owns the transition: it sees the flag at the next slice
    // boundary and journals kCancelled itself.
    job.cancel_requested = true;
    reply.state = JobState::kRunning;
    return reply;
  }
  finish_terminal(lk, job, JobState::kCancelled, "cancelled before start");
  reply.state = JobState::kCancelled;
  return reply;
}

util::ServeStats JobServer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  util::ServeStats s = stats_;
  s.queue_depth = queue_depth_locked();
  s.queue_depth_peak = std::max(s.queue_depth_peak, s.queue_depth);
  int running = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.j.state == JobState::kRunning) ++running;
  }
  s.running = running;
  if (sampler_) s.slo_breaches = sampler_->slo().breaches_entered();
  // Memory footprint for the billing/summary tables: heap numbers from
  // the alloc tracker (zero when compiled out), RSS live from /proc.
  const obs::AllocTotals mem = obs::AllocTracker::instance().totals();
  s.heap_live_bytes = mem.live_bytes;
  s.heap_high_water_bytes = mem.high_water_bytes;
  s.total_allocs = mem.allocs;
  s.rss_bytes = tofu::probe_rss_bytes();
  return s;
}

std::vector<JobStatus> JobServer::jobs() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(status_of_locked(job));
  return out;
}

bool JobServer::wait_all_terminal(std::uint64_t timeout_ms) const {
  std::unique_lock<std::mutex> lk(mu_);
  const auto all_terminal = [this] {
    for (const auto& [id, job] : jobs_) {
      if (!is_terminal(job.j.state)) return false;
    }
    return true;
  };
  return cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), all_terminal);
}

void JobServer::journal_io_failed_locked(const std::exception& e) {
  if (!journal_failed_) {
    journal_failed_ = true;
    journal_error_ = e.what();
    metric("serve.journal_io_errors").add();
  }
  accepting_ = false;  // further admissions could not be made durable
}

bool JobServer::record_state_locked(const Job& job) {
  if (abandon_ || journal_failed_) return false;
  try {
    if (cfg_.journal_fault_hook) cfg_.journal_fault_hook();
    journal_.record_state(job.j.id, job.j.state, job.j.attempts,
                          job.j.completed_steps, job.j.restart_file,
                          job.j.detail, job.j.integrity_detections,
                          job.j.integrity_rollbacks);
    return true;
  } catch (const std::exception& e) {
    journal_io_failed_locked(e);
    return false;
  }
}

void JobServer::finish_terminal(std::unique_lock<std::mutex>&, Job& job,
                                JobState state, const std::string& detail) {
  job.j.state = state;
  job.j.detail = detail;
  record_state_locked(job);
  switch (state) {
    case JobState::kDone:
      ++stats_.completed;
      metric("serve.completed").add();
      break;
    case JobState::kFailed:
      ++stats_.failed;
      metric("serve.failed").add();
      break;
    case JobState::kCancelled:
      ++stats_.cancelled;
      metric("serve.cancelled").add();
      break;
    default:
      break;
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - job.admitted_at)
                      .count();
  obs::MetricsRegistry::instance().histogram("serve.job_latency_ns")
      .record(static_cast<std::uint64_t>(ns));
  // Deadline SLO outcome: a deadline-carrying job that completes is a
  // hit; one that fails — by the deadline scanner or any other way — is
  // a miss the tenant's hit-rate window sees. Cancellations are the
  // client's own doing and count as neither.
  if (sampler_ && job.has_deadline &&
      (state == JobState::kDone || state == JobState::kFailed)) {
    sampler_->slo().record_deadline(job.j.tenant, obs::now_ns() / 1000000,
                                    state == JobState::kDone);
  }
  cv_.notify_all();
}

std::uint64_t JobServer::pick_and_mark_running(std::unique_lock<std::mutex>& lk,
                                               Clock::time_point& next_wake) {
  const Clock::time_point now = Clock::now();
  next_wake = now + std::chrono::seconds(3600);
  for (auto& [id, job] : jobs_) {
    if (job.j.state != JobState::kPending &&
        job.j.state != JobState::kRetrying) {
      continue;
    }
    if (job.has_deadline && now >= job.deadline_at) {
      ++stats_.deadline_missed;
      metric("serve.deadline_missed").add();
      finish_terminal(lk, job, JobState::kFailed,
                      "deadline missed before start (budget " +
                          std::to_string(job.j.deadline_ms) + " ms)");
      continue;
    }
    if (job.ready_at > now) {
      next_wake = std::min(next_wake, job.ready_at);
      if (job.has_deadline) next_wake = std::min(next_wake, job.deadline_at);
      continue;
    }
    const TenantQuota& q = quota_for(job.j.tenant);
    if (tenant_running_[job.j.tenant] >= q.max_running) continue;

    job.j.state = JobState::kRunning;
    ++job.j.attempts;
    ++tenant_running_[job.j.tenant];
    record_state_locked(job);
    if (sampler_) {
      // Queue-wait SLO sample: admission -> first dispatch of this
      // attempt (a retry's wait restarts at its backoff gate, which is
      // exactly the wait the tenant experiences).
      const double wait_ms =
          std::chrono::duration<double, std::milli>(now - job.admitted_at)
              .count();
      sampler_->slo().record_queue_wait(job.j.tenant, obs::now_ns() / 1000000,
                                        wait_ms);
    }
    stats_.queue_depth = queue_depth_locked();
    obs::MetricsRegistry::instance().gauge("serve.queue_depth")
        .set(stats_.queue_depth);
    return id;
  }
  return 0;
}

void JobServer::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (stop_requested_) return;
    Clock::time_point wake;
    const std::uint64_t id = pick_and_mark_running(lk, wake);
    if (id != 0) {
      lk.unlock();
      run_one(id);
      lk.lock();
      continue;
    }
    cv_.wait_until(lk, wake);
  }
}

void JobServer::run_one(std::uint64_t id) {
  // Snapshot everything the slice loop needs; the lock is only retaken
  // at slice boundaries (progress/cancel/deadline) and at the end.
  std::string script, tenant;
  std::uint16_t attempt = 0, max_attempts = 1;
  int total = 0;
  std::shared_ptr<std::atomic<std::int64_t>> live_step;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const Job& job = jobs_.at(id);
    script = job.j.script;
    tenant = job.j.tenant;
    attempt = job.j.attempts;
    max_attempts = job.j.max_attempts;
    total = job.total_steps;
    live_step = job.live_step;
  }
  const std::string prefix =
      cfg_.work_dir + "/job-" + std::to_string(id) + ".ck";

  bool done = false;
  std::string failure;
  sim::SimOptions final_opts;
  sim::JobResult final_result;
  // Whole-job integrity totals for the report (the final slice's result
  // only covers itself; the job has been accumulating across slices).
  std::uint64_t job_checks = 0, job_detections = 0, job_rollbacks = 0;
  std::uint64_t job_flips = 0;
  try {
    if (cfg_.before_attempt_hook) cfg_.before_attempt_hook(id, attempt);
    sim::ParsedScript parsed = sim::parse_input_script(script);
    const int quantum =
        slice_quantum(parsed.options.checkpoint_every,
                      parsed.options.thermo_every, cfg_.slice_steps, total);
    const int ck = parsed.options.checkpoint_every > 0
                       ? parsed.options.checkpoint_every
                       : quantum;
    for (;;) {
      int from = 0;
      std::string restart;
      {
        std::unique_lock<std::mutex> lk(mu_);
        Job& job = jobs_.at(id);
        if (abandon_) {
          release_lane_locked(tenant);
          return;
        }
        if (job.cancel_requested) {
          finish_terminal(lk, job, JobState::kCancelled,
                          "cancelled at step " +
                              std::to_string(job.j.completed_steps));
          release_lane_locked(tenant);
          return;
        }
        if (job.has_deadline && Clock::now() >= job.deadline_at) {
          ++stats_.deadline_missed;
          metric("serve.deadline_missed").add();
          finish_terminal(lk, job, JobState::kFailed,
                          "deadline missed at step " +
                              std::to_string(job.j.completed_steps) +
                              " (budget " + std::to_string(job.j.deadline_ms) +
                              " ms)");
          release_lane_locked(tenant);
          return;
        }
        from = job.j.completed_steps;
        restart = job.j.restart_file;
      }
      if (from >= total) {
        if (done || total <= 0) break;
        // Recovered job whose last incarnation crashed between the final
        // slice's progress record and the terminal record: the journal
        // says all steps completed, but this incarnation has streamed no
        // thermo and written no artifacts. Fall through with a
        // target == total slice: run_simulation restores the newest
        // checkpoint (a zero-step resume when it sits at `total`, at
        // most the final partial slice otherwise — or a full
        // deterministic re-run when no checkpoint was ever cut) and its
        // result carries the complete thermo history, so kDone is only
        // journaled after the report/dump exist and the full series is
        // fetchable.
      }
      const int target = static_cast<int>(std::min<long long>(
          total, (static_cast<long long>(from) / quantum + 1) *
                     static_cast<long long>(quantum)));

      sim::SimOptions opts = parsed.options;
      opts.checkpoint_every = ck;
      opts.checkpoint_path = prefix;
      opts.restart_file = restart;
      if (opts.checkpoint_keep == 0) opts.checkpoint_keep = cfg_.checkpoint_keep;
      if (opts.integrity.cadence == 0) {
        opts.integrity.cadence = cfg_.integrity_cadence;
      }
      if (cfg_.fault_plan.any_faults()) opts.faults = cfg_.fault_plan;
      opts.progress = live_step.get();
      // Attribute heap traffic from serving-side slice execution (script
      // re-parse, checkpoint resume, result marshalling) separately from
      // the sim stages, which carry their own scopes.
      LMP_ALLOC_SCOPE("serve:slice");
      sim::JobResult result = sim::run_simulation(opts, target);

      std::unique_lock<std::mutex> lk(mu_);
      Job& job = jobs_.at(id);
      const std::string chunk =
          format_thermo_chunk(result.thermo, job.last_thermo_step);
      if (!chunk.empty()) {
        job.chunks.push_back(chunk);
        job.last_thermo_step = result.thermo.back().step;
      }
      job.j.completed_steps = target;
      if (target % ck == 0) {
        job.j.restart_file = prefix + "." + std::to_string(target);
      }
      // Integrity bookkeeping: detections/rollbacks ride the journal
      // (durable per-job history), checks/flips feed stats and reports.
      const util::CommHealthReport& sh = result.health;
      job.j.integrity_detections += sh.integrity_detections;
      job.j.integrity_rollbacks += sh.integrity_rollbacks;
      job.integrity_checks += sh.integrity_checks;
      job.mem_flips_injected += sh.mem_flips_injected;
      stats_.integrity_checks += sh.integrity_checks;
      stats_.integrity_detections += sh.integrity_detections;
      stats_.integrity_rollbacks += sh.integrity_rollbacks;
      stats_.mem_flips_injected += sh.mem_flips_injected;
      metric("serve.integrity_checks").add(sh.integrity_checks);
      metric("serve.integrity_detections").add(sh.integrity_detections);
      metric("serve.integrity_rollbacks").add(sh.integrity_rollbacks);
      metric("serve.mem_flips_injected").add(sh.mem_flips_injected);
      job_checks = job.integrity_checks;
      job_detections = job.j.integrity_detections;
      job_rollbacks = job.j.integrity_rollbacks;
      job_flips = job.mem_flips_injected;
      // Progress WAL: a crash after this point resumes from `target`,
      // not from the attempt's start.
      record_state_locked(job);
      if (target >= total) {
        final_opts = opts;
        final_result = std::move(result);
        done = true;
      }
    }
  } catch (const std::exception& e) {
    failure = e.what();
    if (failure.empty()) failure = "unknown failure";
  }

  if (done) {
    // The report covers the whole job, not just the final slice.
    final_result.health.integrity_checks = job_checks;
    final_result.health.integrity_detections = job_detections;
    final_result.health.integrity_rollbacks = job_rollbacks;
    final_result.health.mem_flips_injected = job_flips;
    // Durable artifacts before the terminal journal record: a report
    // that exists implies the journal says done, never the reverse.
    if (cfg_.write_reports) {
      const obs::RunReport report =
          sim::build_run_report(final_opts, total, final_result);
      obs::write_text_file(
          cfg_.work_dir + "/job-" + std::to_string(id) + ".report.json",
          report.to_json());
    }
    if (cfg_.write_dumps) {
      write_atom_dump(cfg_.work_dir + "/job-" + std::to_string(id) + ".dump",
                      final_result);
    }
  }

  std::unique_lock<std::mutex> lk(mu_);
  Job& job = jobs_.at(id);
  if (abandon_) {
    release_lane_locked(tenant);
    return;
  }
  if (done || job.j.completed_steps >= total) {
    finish_terminal(lk, job, JobState::kDone, "ok");
  } else if (!failure.empty()) {
    if (job.j.attempts >= job.j.max_attempts) {
      finish_terminal(lk, job, JobState::kFailed,
                      "attempt " + std::to_string(job.j.attempts) + "/" +
                          std::to_string(max_attempts) + ": " + failure);
    } else {
      ++stats_.retries;
      metric("serve.retries").add();
      const std::uint32_t shift =
          job.j.attempts > 0 ? job.j.attempts - 1 : 0;
      std::uint64_t backoff = cfg_.retry_backoff_ms;
      backoff <<= std::min<std::uint32_t>(shift, 16);
      backoff = std::min<std::uint64_t>(backoff, cfg_.retry_backoff_max_ms);
      job.j.state = JobState::kRetrying;
      job.j.detail = failure;
      job.ready_at = Clock::now() + std::chrono::milliseconds(backoff);
      record_state_locked(job);
      cv_.notify_all();
    }
  }
  release_lane_locked(tenant);
}

void JobServer::release_lane_locked(const std::string& tenant) {
  auto it = tenant_running_.find(tenant);
  if (it != tenant_running_.end() && it->second > 0) --it->second;
  cv_.notify_all();
}

ServerProbe JobServer::probe_telemetry() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServerProbe p;
  p.queue_depth = queue_depth_locked();
  p.jobs.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    if (job.j.state == JobState::kRunning) {
      ++p.running;
      p.running_tenants.insert(job.j.tenant);
    }
    JobProgress jp;
    jp.id = id;
    jp.tenant = job.j.tenant;
    jp.name = job.j.name;
    jp.state = job.j.state;
    jp.total_steps = job.total_steps;
    jp.rollbacks = job.j.integrity_rollbacks;
    const std::int64_t live =
        job.live_step ? job.live_step->load(std::memory_order_relaxed) : 0;
    jp.steps = std::max<std::int64_t>(live, job.j.completed_steps);
    p.jobs.push_back(std::move(jp));
  }
  return p;
}

std::string JobServer::telemetry_snapshot_json() {
  if (sampler_) return sampler_->snapshot_json();
  obs::JsonWriter j;
  j.begin_object();
  j.kv("schema", "lmp-telemetry-snapshot");
  j.kv("version", 2);
  j.kv("enabled", false);
  j.end_object();
  return j.str();
}

std::vector<char> JobServer::handle_frames(const char* data, std::size_t len,
                                           std::size_t* consumed) {
  std::vector<char> out;
  std::size_t off = 0;
  while (off < len) {
    const comm::FrameView f = comm::decode_frame(data + off, len - off);
    if (!f.ok()) {
      if (f.status != comm::FrameStatus::kNeedMore) {
        ErrorReply err;
        err.detail = f.status == comm::FrameStatus::kBadMagic ? "bad magic"
                     : f.status == comm::FrameStatus::kBadCrc
                         ? "frame CRC mismatch"
                         : "frame too large";
        encode_error(out, err);
      }
      break;  // cannot resync past a broken frame
    }
    try {
      switch (static_cast<MsgType>(f.type)) {
        case MsgType::kSubmit: {
          const SubmitReply r = submit(decode_submit(f.payload, f.payload_len));
          encode_submit_reply(out, r);
          break;
        }
        case MsgType::kStatus: {
          const StatusRequest req = decode_status(f.payload, f.payload_len);
          const std::optional<JobStatus> s = status(req.job_id);
          if (s) {
            encode_status_reply(out, *s);
          } else {
            encode_error(out, ErrorReply{"unknown job " +
                                         std::to_string(req.job_id)});
          }
          break;
        }
        case MsgType::kFetchChunks: {
          encode_chunks_reply(out, fetch(decode_fetch(f.payload,
                                                      f.payload_len)));
          break;
        }
        case MsgType::kCancel: {
          const CancelRequest req = decode_cancel(f.payload, f.payload_len);
          encode_cancel_reply(out, cancel(req.job_id));
          break;
        }
        case MsgType::kStats: {
          WireReader r(f.payload, f.payload_len, "stats request");
          r.expect_done();
          encode_stats_reply(out, stats());
          break;
        }
        case MsgType::kStatsJson: {
          WireReader r(f.payload, f.payload_len, "stats-json request");
          r.expect_done();
          encode_stats_json_reply(out, telemetry_snapshot_json());
          break;
        }
        case MsgType::kWatch: {
          // Transportless degenerate: one snapshot per watch frame. The
          // streaming loop lives in StreamEndpoint, which owns a
          // connection it can pace and tear down; a raw byte endpoint
          // has no connection to stream over.
          decode_watch(f.payload, f.payload_len);
          encode_stats_json_reply(out, telemetry_snapshot_json());
          break;
        }
        default:
          encode_error(out, ErrorReply{"unknown frame type " +
                                       std::to_string(f.type)});
          break;
      }
    } catch (const std::exception& e) {
      // ProtocolError from a malformed payload, or an I/O failure from
      // the journal: the connection gets a structured error, the server
      // stays up.
      encode_error(out, ErrorReply{e.what()});
    }
    off += f.consumed;
  }
  if (consumed != nullptr) *consumed = off;
  return out;
}

}  // namespace lmp::serve
