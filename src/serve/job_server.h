#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_journal.h"
#include "serve/serve_protocol.h"
#include "serve/telemetry.h"
#include "tofu/fault.h"
#include "util/stats.h"

namespace lmp::serve {

/// Per-tenant admission limits. `max_queued` bounds pending + retrying
/// jobs; `max_running` bounds concurrently executing jobs (enforced by
/// the scheduler — the tenant's queued jobs wait, they are not
/// rejected). `max_running == 0` disables the tenant outright:
/// submissions are rejected with kTenantRunningQuota.
struct TenantQuota {
  int max_queued = 8;
  int max_running = 2;
};

/// How stop() leaves the server.
enum class StopMode {
  /// Graceful: stop admitting, let running jobs finish (journaled),
  /// leave queued jobs pending in the journal for the next incarnation.
  kDrain,
  /// Crash rehearsal: workers abandon after the current slice and
  /// nothing further is journaled — the on-disk state is exactly what a
  /// kill -9 would leave. Used by the chaos tests; a real deployment
  /// uses kDrain.
  kAbandon,
};

struct ServerConfig {
  std::string journal_path;  ///< required: the durable job journal
  std::string work_dir;      ///< required: checkpoints/reports/dumps live here
  /// Worker lanes == max concurrent warm fabrics. 0 is valid and means
  /// admission-only (nothing executes): the deterministic mode the
  /// overload tests use to fill the queue without racing the scheduler.
  int workers = 1;
  int queue_capacity = 32;   ///< bounded admission queue (pending+retrying)
  TenantQuota default_quota{};
  std::map<std::string, TenantQuota> tenant_quotas;  ///< overrides by tenant
  std::uint32_t default_deadline_ms = 0;  ///< 0 = no deadline
  std::uint16_t default_max_attempts = 3;
  /// Preferred checkpoint/slice cadence (steps) when the script does not
  /// set `checkpoint`. The actual slice quantum is rounded up to a
  /// common multiple of checkpoint_every and thermo_every so sliced and
  /// uninterrupted runs produce bitwise-identical thermo series.
  int slice_steps = 10;
  /// On-disk checkpoint retention per job: keep only the newest K
  /// checkpoint files (0 = keep everything, the pre-retention behavior).
  int checkpoint_keep = 0;
  /// Server-wide integrity-guard cadence applied to every job whose
  /// script does not set its own (0 = guards off unless the script
  /// asks). See sim::IntegrityOptions.
  int integrity_cadence = 0;
  std::uint32_t retry_backoff_ms = 10;      ///< doubles per retry...
  std::uint32_t retry_backoff_max_ms = 200; ///< ...capped here
  bool write_reports = true;  ///< job-<id>.report.json on completion
  bool write_dumps = false;   ///< job-<id>.dump final atoms on completion
  /// Fault plan applied to every attempt (chaos runs). The seeded,
  /// message-identity-deterministic injector exercises the reliability
  /// protocol and failover ladder inside run_simulation; the default
  /// all-clean plan changes nothing.
  tofu::FaultPlan fault_plan{};
  /// Test hook, called before each attempt starts executing (outside the
  /// server lock). Throwing std::runtime_error injects a transient fault
  /// that exercises the retry path.
  std::function<void(std::uint64_t job_id, int attempt)> before_attempt_hook;
  /// Test hook, called immediately before every post-start journal
  /// append (submit records and state transitions alike). Throwing
  /// simulates a journal I/O failure (disk full, fsync error) and
  /// exercises the degraded mode described on JobServer.
  std::function<void()> journal_fault_hook;
  /// Live telemetry plane: background sampler cadence, rolling windows,
  /// and per-tenant SLO policies. Enabled by default; disable for
  /// byte-deterministic tests that count metrics exactly.
  TelemetryConfig telemetry{};
};

/// Long-lived in-process simulation job server.
///
/// Lifecycle: construct with a config, start() (opens + recovers the
/// journal, spawns workers), then drive it through submit/status/fetch/
/// cancel/stats — or hand it raw protocol bytes via handle_frames().
/// stop(kDrain) for a graceful shutdown, stop(kAbandon) to rehearse a
/// crash. A new JobServer started on the same journal_path continues
/// where the last one stopped: terminal jobs stay terminal, in-flight
/// jobs are requeued and resume from their newest journaled checkpoint
/// to bitwise-identical results.
///
/// Robustness contract: submit() never blocks and never throws on
/// overload — it returns a structured rejection (queue full, quota,
/// bad script, shutting down) in bounded time. Rejections are counted,
/// not stored, so an abusive client cannot grow server memory.
///
/// Journal I/O failure after start() (disk full, fsync error) degrades
/// the server deliberately instead of killing it: the first failed
/// append flips it into a non-accepting mode (new jobs could not be
/// made durable, so submissions get a structured kShuttingDown
/// rejection naming the error), while jobs already admitted run to a
/// terminal state in memory — clients can still drain status, chunks
/// and stats, and stop() still shuts down cleanly. No journal error
/// ever escapes a worker thread (which would std::terminate).
class JobServer {
 public:
  explicit JobServer(ServerConfig config);
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Opens (and recovers) the journal, spawns the worker lanes. Throws
  /// std::runtime_error on journal I/O failure or corruption.
  void start();
  bool running() const;

  /// Stops the server (idempotent). See StopMode.
  void stop(StopMode mode);

  // --- client surface (thread-safe) -------------------------------------
  SubmitReply submit(const SubmitRequest& req);
  std::optional<JobStatus> status(std::uint64_t job_id) const;
  ChunksReply fetch(const FetchRequest& req) const;
  CancelReply cancel(std::uint64_t job_id);
  util::ServeStats stats() const;

  /// All journaled jobs' current status, in id order (for end-of-run
  /// summaries and the chaos test's invariant checks).
  std::vector<JobStatus> jobs() const;

  /// Blocks until every known job is terminal (queue drained, nothing
  /// running) or `timeout_ms` elapsed; true when drained. Pass 0 to
  /// poll.
  bool wait_all_terminal(std::uint64_t timeout_ms) const;

  /// Protocol endpoint: decodes the frames in [data, data+len), applies
  /// them in order, and returns the concatenated reply frames. Malformed
  /// payloads and unknown types get kError replies; an undecodable
  /// stream (bad magic/CRC, truncation) stops processing at the broken
  /// frame. `consumed`, when given, receives how many input bytes were
  /// processed. Never throws on client bytes.
  std::vector<char> handle_frames(const char* data, std::size_t len,
                                  std::size_t* consumed = nullptr);

  const RecoveryInfo& recovery() const { return journal_.recovery(); }

  // --- live telemetry ---------------------------------------------------
  /// Point-in-time progress probe for the telemetry sampler: queue
  /// depth, running lanes/tenants, and per-job live step counts (the
  /// rank-0 progress atomics, which may run ahead of the journaled
  /// completed_steps). One brief lock acquisition.
  ServerProbe probe_telemetry() const;
  /// Fresh "lmp-telemetry-snapshot" JSON (the `stats`/`watch` payload).
  /// A minimal `{"enabled": false}` document when telemetry is off.
  std::string telemetry_snapshot_json();
  /// Null when cfg.telemetry.enabled is false.
  TelemetrySampler* telemetry() { return sampler_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  /// In-memory job: the journaled core plus runtime-only scheduling and
  /// streaming state (lost on restart by design — chunks are transport,
  /// the journal and report files are the durable artifacts).
  struct Job {
    JournalJob j;
    std::int32_t total_steps = 0;  ///< run N from the script (0 if unknown)
    Clock::time_point admitted_at{};
    Clock::time_point ready_at{};    ///< retry backoff gate
    Clock::time_point deadline_at{}; ///< valid when has_deadline
    bool has_deadline = false;
    bool cancel_requested = false;
    std::vector<std::string> chunks;  ///< thermo text, one per slice
    /// Highest thermo step already streamed into `chunks`; -1 so the
    /// first slice after admission OR recovery streams the full series
    /// (a resumed run's result carries its checkpointed history, which
    /// the new incarnation has not streamed yet).
    int last_thermo_step = -1;
    /// Runtime-only integrity accumulators (detections/rollbacks are
    /// journaled in `j`; these two only feed the report and ServeStats).
    std::uint64_t integrity_checks = 0;
    std::uint64_t mem_flips_injected = 0;
    /// Live step progress: rank 0 of a running attempt stores the
    /// just-completed step here (SimOptions::progress); the telemetry
    /// sampler delta-reads it between slice boundaries. shared_ptr so
    /// the attempt keeps it alive independent of map operations.
    std::shared_ptr<std::atomic<std::int64_t>> live_step;
  };

  void worker_loop();
  /// Returns the id of a dispatchable job (marks it running) or 0;
  /// `next_wake` gets the earliest future ready_at when only backoff
  /// holds jobs back. Caller holds mu_.
  std::uint64_t pick_and_mark_running(std::unique_lock<std::mutex>& lk,
                                      Clock::time_point& next_wake);
  void run_one(std::uint64_t id);
  void finish_terminal(std::unique_lock<std::mutex>& lk, Job& job,
                       JobState state, const std::string& detail);
  /// Journals the job's current state (no-op under kAbandon or once the
  /// journal has failed). A throwing append is absorbed here: it flips
  /// the server into the degraded non-accepting mode instead of letting
  /// the exception escape a worker thread. Returns whether the record
  /// was made durable. Caller holds mu_.
  bool record_state_locked(const Job& job);
  /// Marks the journal dead after an append failure. Caller holds mu_.
  void journal_io_failed_locked(const std::exception& e);
  void release_lane_locked(const std::string& tenant);
  JobStatus status_of_locked(const Job& job) const;
  const TenantQuota& quota_for(const std::string& tenant) const;
  int queue_depth_locked() const;

  ServerConfig cfg_;
  JobJournal journal_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<std::uint64_t, Job> jobs_;
  std::map<std::string, std::uint64_t> by_key_;  ///< tenant + '\0' + name -> id
  std::map<std::string, int> tenant_running_;
  util::ServeStats stats_;
  bool started_ = false;
  bool accepting_ = false;
  bool stop_requested_ = false;
  bool abandon_ = false;
  bool journal_failed_ = false;   ///< degraded: appends lost, nothing admitted
  std::string journal_error_;     ///< first append failure (for rejections)
  std::vector<std::thread> workers_;
  std::unique_ptr<TelemetrySampler> sampler_;  ///< null when telemetry off
};

}  // namespace lmp::serve
