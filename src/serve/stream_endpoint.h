#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lmp::serve {

class JobServer;

/// Unix-domain-socket transport for the serve protocol.
///
/// Listens on a filesystem socket path and serves each connection on its
/// own thread: request frames are fed to JobServer::handle_frames and
/// the reply bytes written back — except `watch`, which this endpoint
/// owns: it streams one kStatsJsonReply every `interval_ms` until the
/// client closes (or the requested max_frames have been sent). The raw
/// in-process byte endpoint cannot stream (it has no connection with a
/// lifetime); this class is where the connection lives.
///
/// Scope: a local observability socket for lmp_top and scripts, not an
/// internet-facing server — connections are trusted to the extent the
/// socket file's permissions are.
class StreamEndpoint {
 public:
  StreamEndpoint(JobServer& server, std::string socket_path);
  ~StreamEndpoint();

  StreamEndpoint(const StreamEndpoint&) = delete;
  StreamEndpoint& operator=(const StreamEndpoint&) = delete;

  /// Binds + listens (unlinking a stale socket file first) and spawns
  /// the accept loop. Throws std::runtime_error on socket errors.
  void start();
  /// Stops accepting, shuts every live connection down, joins all
  /// threads, unlinks the socket file. Idempotent.
  void stop();

  const std::string& path() const { return path_; }
  /// Connections accepted over this endpoint's lifetime.
  std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// The watch stream; returns when the client closes, max_frames are
  /// sent, or the endpoint stops.
  void stream_watch(int fd, std::uint32_t interval_ms,
                    std::uint32_t max_frames);

  JobServer& server_;
  std::string path_;
  /// Atomic: stop() retires it from the driver thread while accept_loop
  /// reads it to accept (TSan-clean handoff; exchange makes stop
  /// idempotent under concurrent callers too).
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};

  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace lmp::serve
