#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/serve_protocol.h"
#include "util/durable_file.h"

namespace lmp::serve {

/// One job as reconstructed from (or about to enter) the journal. The
/// journal is the server's source of truth across crashes: everything a
/// restarted server needs to re-admit and resume the job lives here —
/// the script text, retry budget, deadline, accumulated attempts, and
/// the newest checkpoint a resumed attempt should restart from.
struct JournalJob {
  std::uint64_t id = 0;
  std::string tenant;
  std::string name;
  std::string script;
  std::uint32_t deadline_ms = 0;
  std::uint16_t max_attempts = 0;
  JobState state = JobState::kPending;
  std::uint16_t attempts = 0;
  std::int32_t completed_steps = 0;
  std::string restart_file;  ///< newest durable checkpoint ("" = from scratch)
  std::string detail;        ///< terminal outcome / last failure text
  // Per-job silent-corruption history (journal v2), accumulated over
  // every slice of every incarnation: how often the integrity guards
  // tripped and how many rollback+recompute cycles healed the job.
  std::uint64_t integrity_detections = 0;
  std::uint64_t integrity_rollbacks = 0;
};

/// What recovery found when the journal was opened.
struct RecoveryInfo {
  std::uint64_t jobs_seen = 0;        ///< distinct job ids in the log
  std::uint64_t requeued = 0;         ///< non-terminal jobs returned pending
  std::uint64_t torn_bytes = 0;       ///< trailing partial record truncated
  bool compacted = false;             ///< log was rewritten on open
};

/// Durable append-only job journal.
///
/// File format: the msg_codec frame format (magic + CRC per record) with
/// a private type range so protocol frames and journal records can never
/// be confused:
///   0x4A00 header  — format version, written first in every file
///   0x4A01 submit  — full JournalJob at admission (state kPending)
///   0x4A02 state   — {id, state, attempts, completed_steps,
///                     restart_file, detail} transition
/// Every append is fsync'd before the state change it records is acted
/// on (write-ahead). Recovery replays the log, truncates a torn tail
/// (partial final record after a crash mid-append), folds transitions
/// into the submit records, requeues non-terminal jobs as kPending, and
/// compacts: the folded table is rewritten atomically
/// (write_file_durable) and the append log reopened on the compact file,
/// so the journal does not grow without bound across restarts and
/// terminal jobs shed their script text.
class JobJournal {
 public:
  JobJournal() = default;

  /// Opens (creating if absent) and recovers the journal at `path`.
  /// Throws std::runtime_error on I/O failure or an unreadable record
  /// that is not a clean torn tail (mid-file corruption is refused, not
  /// skipped — a journal that lies is worse than one that fails loudly).
  void open(const std::string& path);
  bool is_open() const { return log_.is_open(); }
  const std::string& path() const { return path_; }

  /// Recovery outcome of the most recent open().
  const RecoveryInfo& recovery() const { return recovery_; }

  /// Folded job table, keyed by id, in id order.
  const std::map<std::uint64_t, JournalJob>& jobs() const { return jobs_; }

  /// Smallest id not yet used (max existing + 1; 1 for a fresh journal).
  std::uint64_t next_id() const;

  /// Durably records a new job (write-ahead: returns only after fsync).
  /// The job must have a fresh id; state is forced to kPending.
  void record_submit(const JournalJob& job);

  /// Durably records a transition for an existing id. `restart_file`,
  /// `detail`, and the integrity counters overwrite the stored values
  /// (pass the previous ones to keep them).
  void record_state(std::uint64_t id, JobState state, std::uint16_t attempts,
                    std::int32_t completed_steps,
                    const std::string& restart_file, const std::string& detail,
                    std::uint64_t integrity_detections = 0,
                    std::uint64_t integrity_rollbacks = 0);

  void close() { log_.close(); }

 private:
  void compact();

  util::AppendLog log_;
  std::string path_;
  std::map<std::uint64_t, JournalJob> jobs_;
  RecoveryInfo recovery_;
};

}  // namespace lmp::serve
