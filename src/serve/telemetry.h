#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/slo.h"
#include "obs/timeseries.h"
#include "serve/serve_protocol.h"

namespace lmp::serve {

class JobServer;

/// Sampler + SLO configuration, embedded in ServerConfig.
struct TelemetryConfig {
  bool enabled = true;
  /// Sampling cadence. Each tick delta-reads the lock-free counters,
  /// appends to the ring-buffered series, and re-evaluates SLO windows.
  std::uint32_t interval_ms = 100;
  /// Rolling window the snapshot aggregates (and the default SLO window
  /// when default_slo.window_ms is 0).
  std::int64_t window_ms = 10000;
  /// Ring capacity of every series (samples, not bytes).
  std::size_t series_capacity = 512;
  obs::SloPolicy default_slo{};
  std::map<std::string, obs::SloPolicy> tenant_slo;  ///< overrides by tenant
};

/// One job's live progress as the sampler sees it (steps may be ahead of
/// the journaled completed_steps — it reads the rank-0 progress atomic).
struct JobProgress {
  std::uint64_t id = 0;
  std::string tenant;
  std::string name;
  JobState state = JobState::kPending;
  std::int64_t steps = 0;
  std::int32_t total_steps = 0;
  std::uint64_t rollbacks = 0;  ///< journaled integrity rollbacks so far
};

/// Point-in-time server probe the sampler takes under the server lock
/// (one brief acquisition per tick — the simulation hot path is never
/// touched; it only ever sees relaxed atomic stores).
struct ServerProbe {
  std::int64_t queue_depth = 0;
  std::int64_t running = 0;
  std::set<std::string> running_tenants;
  std::vector<JobProgress> jobs;
};

/// Background telemetry sampler for one JobServer.
///
/// Owns the server's SeriesRegistry and SloAccountant. Every
/// `interval_ms` it (1) probes the server (queue depth, running lanes,
/// per-job live steps), (2) delta-snapshots the lock-free metrics
/// registry counters and the LiveFabricRegistry per-TNI totals, (3)
/// appends everything to ring-buffered series, (4) feeds the per-tenant
/// step/rollback deltas into the SLO accountant and re-evaluates breach
/// windows. `snapshot_json()` runs an extra tick first, so a `stats`
/// request always reflects the present — a deliberately missed deadline
/// flips the breach flag within one request, not one cadence.
class TelemetrySampler {
 public:
  TelemetrySampler(JobServer& server, TelemetryConfig cfg);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  void start();
  void stop();

  /// One sampling pass right now (thread-safe; the background thread and
  /// snapshot requests serialize on an internal mutex).
  void tick();

  /// Fresh snapshot as one JSON document (schema
  /// "lmp-telemetry-snapshot" v1). Ticks first; see class comment.
  std::string snapshot_json();

  obs::SloAccountant& slo() { return slo_; }
  obs::SeriesRegistry& series() { return series_; }
  const TelemetryConfig& config() const { return cfg_; }
  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void loop();
  void tick_locked(std::int64_t t_ms);
  std::string build_json_locked(std::int64_t t_ms);

  JobServer& server_;
  TelemetryConfig cfg_;
  obs::SeriesRegistry series_;
  obs::SloAccountant slo_;

  /// Serializes sampling passes (background thread vs snapshot
  /// requests); never held while the server lock is held.
  std::mutex tick_mu_;
  std::map<std::string, obs::CounterDelta> counter_deltas_;
  std::map<std::uint64_t, obs::CounterDelta> job_step_deltas_;
  std::map<std::size_t, obs::CounterDelta> tni_bytes_deltas_;
  std::map<std::size_t, obs::CounterDelta> tni_packets_deltas_;
  std::vector<obs::TenantSlo> last_slo_;
  std::vector<JobProgress> last_jobs_;
  std::int64_t last_queue_depth_ = 0;
  std::int64_t last_running_ = 0;
  std::atomic<std::uint64_t> ticks_{0};

  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace lmp::serve
