#include "serve/stream_endpoint.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "comm/msg_codec.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "serve/job_server.h"
#include "serve/serve_protocol.h"

namespace lmp::serve {

namespace {

/// Write all of [data, data+len) to fd; false on any error (EPIPE when
/// the client went away — normal for a dashboard that got ^C'd).
bool write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

StreamEndpoint::StreamEndpoint(JobServer& server, std::string socket_path)
    : server_(server), path_(std::move(socket_path)) {
  if (path_.empty()) {
    throw std::invalid_argument("StreamEndpoint: socket path required");
  }
  sockaddr_un addr{};
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("StreamEndpoint: socket path too long: " +
                                path_);
  }
}

StreamEndpoint::~StreamEndpoint() { stop(); }

void StreamEndpoint::start() {
  if (listen_fd_.load(std::memory_order_acquire) >= 0) return;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("StreamEndpoint: socket(): ") +
                             std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path_.c_str());  // stale socket from a crashed predecessor
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("StreamEndpoint: bind/listen on '" + path_ +
                             "': " + err);
  }
  listen_fd_.store(fd, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void StreamEndpoint::stop() {
  if (listen_fd_.load(std::memory_order_acquire) < 0 &&
      !accept_thread_.joinable()) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    // shutdown() wakes the blocked accept(); close alone does not on
    // every platform.
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  ::unlink(path_.c_str());
}

void StreamEndpoint::accept_loop() {
  LMP_TRACE_THREAD(-1, 91, "serve-accept");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // stop() already retired the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::instance().counter("serve.connections").add();
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void StreamEndpoint::serve_connection(int fd) {
  LMP_TRACE_THREAD(-1, 92, "serve-conn");
  std::vector<char> buf;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed (or endpoint shutdown)
    buf.insert(buf.end(), chunk, chunk + n);
    // Drain complete frames; partial tails wait for more bytes.
    std::size_t off = 0;
    bool closed = false;
    while (off < buf.size()) {
      const comm::FrameView f = comm::decode_frame(buf.data() + off,
                                                   buf.size() - off);
      if (f.status == comm::FrameStatus::kNeedMore) break;
      if (!f.ok()) {
        // Undecodable stream: answer with a structured error via the
        // server path (it emits the same kError) and drop the link —
        // there is no way to resync.
        std::size_t consumed = 0;
        const std::vector<char> reply = server_.handle_frames(
            buf.data() + off, buf.size() - off, &consumed);
        write_all(fd, reply.data(), reply.size());
        closed = true;
        break;
      }
      if (static_cast<MsgType>(f.type) == MsgType::kWatch) {
        WatchRequest req;
        try {
          req = decode_watch(f.payload, f.payload_len);
        } catch (const std::exception& e) {
          std::vector<char> reply;
          encode_error(reply, ErrorReply{e.what()});
          write_all(fd, reply.data(), reply.size());
          closed = true;
          break;
        }
        stream_watch(fd, req.interval_ms, req.max_frames);
        closed = true;  // a watch owns the rest of the connection
        break;
      }
      const std::vector<char> reply =
          server_.handle_frames(buf.data() + off, f.consumed);
      if (!write_all(fd, reply.data(), reply.size())) {
        closed = true;
        break;
      }
      off += f.consumed;
    }
    if (closed) break;
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  ::close(fd);
}

void StreamEndpoint::stream_watch(int fd, std::uint32_t interval_ms,
                                  std::uint32_t max_frames) {
  if (interval_ms == 0) interval_ms = 100;
  interval_ms = std::min<std::uint32_t>(interval_ms, 60000);
  std::uint32_t sent = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<char> frame;
    encode_stats_json_reply(frame, server_.telemetry_snapshot_json());
    if (!write_all(fd, frame.data(), frame.size())) return;
    ++sent;
    if (max_frames != 0 && sent >= max_frames) return;
    // Pace AND watch for the client going away: any readable event
    // (bytes or EOF) ends the stream — the watch protocol has no
    // mid-stream requests. stop() shutdown()s the fd, which also makes
    // it readable, so shutdown never waits out an interval.
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, static_cast<int>(interval_ms));
    if (r < 0 && errno != EINTR) return;
    if (r > 0) return;  // client spoke or hung up
  }
}

}  // namespace lmp::serve
