#include "geom/lattice.h"

#include <cmath>
#include <stdexcept>

namespace lmp::geom {

FccLattice FccLattice::from_density(double reduced_density) {
  if (reduced_density <= 0) throw std::invalid_argument("density must be > 0");
  return FccLattice{std::cbrt(4.0 / reduced_density)};
}

FccLattice FccLattice::from_constant(double lattice_constant) {
  if (lattice_constant <= 0) throw std::invalid_argument("cell must be > 0");
  return FccLattice{lattice_constant};
}

std::vector<Vec3> FccLattice::generate(int nx, int ny, int nz) const {
  if (nx < 1 || ny < 1 || nz < 1) throw std::invalid_argument("cells >= 1");
  // FCC basis in cell units.
  static constexpr double basis[4][3] = {
      {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  std::vector<Vec3> out;
  out.reserve(static_cast<std::size_t>(4) * nx * ny * nz);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        for (const auto& b : basis) {
          out.push_back({(i + b[0]) * cell, (j + b[1]) * cell, (k + b[2]) * cell});
        }
      }
    }
  }
  return out;
}

Box FccLattice::box_for(int nx, int ny, int nz) const {
  return Box{{0.0, 0.0, 0.0}, {nx * cell, ny * cell, nz * cell}};
}

int FccLattice::cells_for_atoms(long natoms_min) {
  if (natoms_min < 1) throw std::invalid_argument("natoms_min >= 1");
  int n = 1;
  while (4L * n * n * n < natoms_min) ++n;
  return n;
}

}  // namespace lmp::geom
