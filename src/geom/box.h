#pragma once

#include "util/vec3.h"

namespace lmp::geom {

using util::Vec3;

/// Orthogonal, fully periodic simulation box [lo, hi) in each dimension.
///
/// All systems in the paper (LJ melt, EAM copper) use periodic boundary
/// conditions on an orthogonal cell, so triclinic support is out of scope.
struct Box {
  Vec3 lo;
  Vec3 hi;

  Vec3 extent() const { return hi - lo; }
  double volume() const {
    const Vec3 e = extent();
    return e.x * e.y * e.z;
  }

  /// Wrap a position into [lo, hi) with periodic images.
  Vec3 wrap(Vec3 p) const;

  /// Minimum-image displacement a - b under periodicity.
  Vec3 min_image(const Vec3& a, const Vec3& b) const;

  /// True if `p` lies in [lo, hi) on every axis.
  bool contains(const Vec3& p) const;
};

}  // namespace lmp::geom
