#pragma once

#include <vector>

#include "geom/box.h"
#include "util/vec3.h"

namespace lmp::geom {

using util::Int3;

/// One neighbor of a sub-box in the rank grid.
struct Neighbor {
  Int3 offset;  ///< grid offset in {-shells..shells}^3 \ {0,0,0}
  int rank;     ///< owning rank of that sub-box (periodic wrap)
  int hops;     ///< |dx|+|dy|+|dz| — logical 3D-torus hop count (Table 1)
};

/// Message-size class of a neighbor in the ghost-region algebra.
/// For a single shell: faces share an a*a*r slab, edges an a*r*r bar,
/// corners an r^3 cube (paper Table 1).
enum class NeighborClass { kFace, kEdge, kCorner };

NeighborClass classify(const Int3& offset);

/// Which halves of the neighbor stencil a rank exchanges with when
/// Newton's 3rd law is on (paper Fig. 5): ghost atoms are *received* from
/// the "upper" half (yellow) and own atoms are *sent* to the "lower" half
/// (white); forces flow the opposite way in the reverse stage.
enum class HalfShell { kUpper, kLower };

/// True if `offset` belongs to the requested half under the standard
/// lexicographic rule ((z,y,x) > 0 for upper).
bool in_half(const Int3& offset, HalfShell half);

/// Regular 3D decomposition of a periodic box over px*py*pz MPI ranks.
///
/// Rank order matches LAMMPS comm_brick: x fastest, then y, then z.
class Decomposition {
 public:
  Decomposition(Int3 grid, Box global);

  int nranks() const { return grid_.x * grid_.y * grid_.z; }
  Int3 grid() const { return grid_; }
  const Box& global() const { return global_; }

  Int3 coord_of(int rank) const;
  int rank_of(Int3 coord) const;  ///< periodic wrap on each axis

  /// Sub-box owned by `rank` (half-open on every axis).
  Box sub_box(int rank) const;

  /// Owner rank of a (wrapped) position.
  int owner_of(const Vec3& p) const;

  /// All neighbors of `rank` within `shells` grid cells (26 for shells=1,
  /// 124 for shells=2). Self-offsets that wrap back to `rank` are kept —
  /// on tiny grids a rank can legitimately be its own periodic neighbor.
  std::vector<Neighbor> neighbors(int rank, int shells = 1) const;

  /// Half-stencil neighbors for Newton-on exchange (13 for shells=1,
  /// 62 for shells=2).
  std::vector<Neighbor> half_neighbors(int rank, HalfShell half,
                                       int shells = 1) const;

 private:
  Int3 grid_;
  Box global_;
};

/// Choose a near-cubic process grid for `nranks` ranks in a box with
/// extents `extent` (mirrors LAMMPS' procs2box heuristic: minimize the
/// surface area of a sub-box). Throws if nranks < 1.
Int3 choose_grid(int nranks, const Vec3& extent);

}  // namespace lmp::geom
