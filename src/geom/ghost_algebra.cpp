#include "geom/ghost_algebra.h"

#include <stdexcept>

namespace lmp::geom {

std::vector<MessageClass> GhostAlgebra::three_stage(int shells) const {
  if (shells < 1 || shells > 2) {
    throw std::invalid_argument("ghost algebra supports 1 or 2 shells");
  }
  // The stage ordering matches the paper's Fig. 4: X first (bare face),
  // then Y (face widened by the X ghosts), then Z (face widened by both).
  // For two shells each per-stage slab is split into `shells` chained
  // messages per side; the total carried volume is unchanged.
  const double s = shells;
  return {
      {NeighborClass::kFace, a * a * r / s, 1, 2 * shells},
      {NeighborClass::kFace, (a * a * r + 2 * a * r * r) / s, 1, 2 * shells},
      {NeighborClass::kFace, (a + 2 * r) * (a + 2 * r) * r / s, 1, 2 * shells},
  };
}

std::vector<MessageClass> GhostAlgebra::p2p(bool newton, int shells) const {
  if (shells < 1 || shells > 2) {
    throw std::invalid_argument("ghost algebra supports 1 or 2 shells");
  }
  std::vector<MessageClass> out;
  if (shells == 1) {
    const int f = newton ? 3 : 6;
    const int e = newton ? 6 : 12;
    const int c = newton ? 4 : 8;
    out = {
        {NeighborClass::kFace, a * a * r, 1, f},
        {NeighborClass::kEdge, a * r * r, 2, e},
        {NeighborClass::kCorner, r * r * r, 3, c},
    };
  } else {
    if (r <= a) {
      throw std::invalid_argument(
          "two-shell ghost algebra requires cutoff > sub-box side");
    }
    // Two shells arise when r > a (paper Sec. 4.4): the cutoff slab spans
    // the immediate neighbor entirely (volume a^2*a per inner face, etc.)
    // plus a remainder of thickness r-a in the second shell. We expose the
    // 124-neighbor stencil as: 98 inner-and-outer face/edge/corner classes
    // split by shell with the exact per-class counts of a 5^3-1 stencil.
    const double rr = r - a;  // thickness reaching into the second shell
    const double t1 = a;      // first shell is fully covered
    const int half = newton ? 1 : 2;
    // First shell: full sub-box copies.
    out.push_back({NeighborClass::kFace, a * a * t1, 1, 3 * half});
    out.push_back({NeighborClass::kEdge, a * t1 * t1, 2, 6 * half});
    out.push_back({NeighborClass::kCorner, t1 * t1 * t1, 3, 4 * half});
    // Second shell: slabs of thickness rr. Counts per class for the outer
    // shell of a 5^3 stencil: 6 faces, 24+12=36... enumerate simply:
    // outer shell has 5^3 - 3^3 = 98 members; halved under Newton -> 49.
    // We bucket them by hop count (Chebyshev->Manhattan via |dx|+|dy|+|dz|).
    struct Bucket {
      double volume;
      int hops;
      int count_full;
    };
    const Bucket buckets[] = {
        {a * a * rr, 2, 6},        // (2,0,0) outer faces
        {a * rr * a, 3, 24},       // (2,1,0)-type
        {a * rr * rr, 4, 12},      // (2,2,0)-type
        {a * a * rr, 4, 24},       // (2,1,1)-type
        {a * rr * rr, 5, 24},      // (2,2,1)-type
        {rr * rr * rr, 6, 8},      // (2,2,2) outer corners
    };
    for (const auto& b : buckets) {
      out.push_back({NeighborClass::kCorner, b.volume, b.hops,
                     newton ? b.count_full / 2 : b.count_full});
    }
  }
  return out;
}

double GhostAlgebra::total_volume(const std::vector<MessageClass>& msgs) {
  double v = 0.0;
  for (const auto& m : msgs) v += m.volume * m.count;
  return v;
}

int GhostAlgebra::total_messages(const std::vector<MessageClass>& msgs) {
  int n = 0;
  for (const auto& m : msgs) n += m.count;
  return n;
}

}  // namespace lmp::geom
