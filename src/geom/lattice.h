#pragma once

#include <vector>

#include "geom/box.h"
#include "util/vec3.h"

namespace lmp::geom {

/// FCC lattice builder — the initial condition of both paper workloads
/// (`lattice fcc 0.8442` for LJ, `lattice fcc 3.615` for EAM copper).
struct FccLattice {
  /// Cubic cell side. For LAMMPS `units lj` the lattice argument is a
  /// *reduced density* rho*, hence cell = (4 / rho*)^(1/3); for `units
  /// metal` it is the lattice constant in Angstrom directly.
  double cell;

  static FccLattice from_density(double reduced_density);
  static FccLattice from_constant(double lattice_constant);

  /// Number density of the lattice (4 atoms per cubic cell).
  double density() const { return 4.0 / (cell * cell * cell); }

  /// Generate nx*ny*nz cells (4 atoms each) starting at origin. Positions
  /// are strictly inside [0, n*cell) on each axis so the box is perfectly
  /// periodic.
  std::vector<Vec3> generate(int nx, int ny, int nz) const;

  /// Box enclosing an nx*ny*nz block of cells at the origin.
  Box box_for(int nx, int ny, int nz) const;

  /// Smallest cubic cell count n such that 4*n^3 >= natoms_min.
  static int cells_for_atoms(long natoms_min);
};

}  // namespace lmp::geom
