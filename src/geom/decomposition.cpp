#include "geom/decomposition.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace lmp::geom {

NeighborClass classify(const Int3& offset) {
  const int nz = (offset.x != 0) + (offset.y != 0) + (offset.z != 0);
  switch (nz) {
    case 1:
      return NeighborClass::kFace;
    case 2:
      return NeighborClass::kEdge;
    default:
      return NeighborClass::kCorner;
  }
}

bool in_half(const Int3& offset, HalfShell half) {
  // Lexicographic (z, y, x) ordering; the upper half receives ghosts.
  const bool upper = (offset.z > 0) || (offset.z == 0 && offset.y > 0) ||
                     (offset.z == 0 && offset.y == 0 && offset.x > 0);
  return half == HalfShell::kUpper ? upper : !upper;
}

Decomposition::Decomposition(Int3 grid, Box global)
    : grid_(grid), global_(global) {
  if (grid.x < 1 || grid.y < 1 || grid.z < 1) {
    throw std::invalid_argument("decomposition grid must be >= 1 per axis");
  }
}

Int3 Decomposition::coord_of(int rank) const {
  if (rank < 0 || rank >= nranks()) throw std::out_of_range("rank out of range");
  return {rank % grid_.x, (rank / grid_.x) % grid_.y, rank / (grid_.x * grid_.y)};
}

int Decomposition::rank_of(Int3 c) const {
  auto wrap = [](int v, int n) {
    v %= n;
    return v < 0 ? v + n : v;
  };
  const int x = wrap(c.x, grid_.x);
  const int y = wrap(c.y, grid_.y);
  const int z = wrap(c.z, grid_.z);
  return x + grid_.x * (y + grid_.y * z);
}

Box Decomposition::sub_box(int rank) const {
  const Int3 c = coord_of(rank);
  const Vec3 e = global_.extent();
  Box b;
  for (int d = 0; d < 3; ++d) {
    const double step = e[d] / grid_[d];
    b.lo[d] = global_.lo[d] + step * c[d];
    b.hi[d] = (c[d] == grid_[d] - 1) ? global_.hi[d]
                                     : global_.lo[d] + step * (c[d] + 1);
  }
  return b;
}

int Decomposition::owner_of(const Vec3& p) const {
  const Vec3 q = global_.wrap(p);
  const Vec3 e = global_.extent();
  Int3 c;
  for (int d = 0; d < 3; ++d) {
    const double step = e[d] / grid_[d];
    c[d] = static_cast<int>((q[d] - global_.lo[d]) / step);
    if (c[d] >= grid_[d]) c[d] = grid_[d] - 1;  // hi-edge guard
  }
  return rank_of(c);
}

std::vector<Neighbor> Decomposition::neighbors(int rank, int shells) const {
  if (shells < 1) throw std::invalid_argument("shells must be >= 1");
  const Int3 me = coord_of(rank);
  std::vector<Neighbor> out;
  out.reserve(static_cast<std::size_t>(
      (2 * shells + 1) * (2 * shells + 1) * (2 * shells + 1) - 1));
  for (int dz = -shells; dz <= shells; ++dz) {
    for (int dy = -shells; dy <= shells; ++dy) {
      for (int dx = -shells; dx <= shells; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const Int3 off{dx, dy, dz};
        out.push_back({off, rank_of(me + off),
                       std::abs(dx) + std::abs(dy) + std::abs(dz)});
      }
    }
  }
  return out;
}

std::vector<Neighbor> Decomposition::half_neighbors(int rank, HalfShell half,
                                                    int shells) const {
  std::vector<Neighbor> out;
  for (const Neighbor& n : neighbors(rank, shells)) {
    if (in_half(n.offset, half)) out.push_back(n);
  }
  return out;
}

Int3 choose_grid(int nranks, const Vec3& extent) {
  if (nranks < 1) throw std::invalid_argument("nranks must be >= 1");
  Int3 best{1, 1, nranks};
  double best_surface = std::numeric_limits<double>::max();
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0) continue;
    const int rest = nranks / px;
    for (int py = 1; py <= rest; ++py) {
      if (rest % py != 0) continue;
      const int pz = rest / py;
      const double sx = extent.x / px;
      const double sy = extent.y / py;
      const double sz = extent.z / pz;
      const double surface = sx * sy + sy * sz + sx * sz;
      if (surface < best_surface) {
        best_surface = surface;
        best = {px, py, pz};
      }
    }
  }
  return best;
}

}  // namespace lmp::geom
