#pragma once

#include <vector>

#include "geom/decomposition.h"

namespace lmp::geom {

/// Analytic ghost-region communication algebra of the paper's Table 1.
///
/// A cubic sub-box of side `a` with cutoff `r` exchanges ghost slabs whose
/// volumes depend only on the neighbor class:
///
///   3-stage (Newton on, 6 messages):
///     stage X:  a^2 r            (x2, neighbors 10/16 in Fig. 5)
///     stage Y:  a^2 r + 2 a r^2  (x2, neighbors 12/14 — carries X ghosts)
///     stage Z: (a + 2r)^2 r      (x2, neighbors 4/22 — carries X+Y ghosts)
///     total ghost volume: 8 r^3 + 12 a r^2 + 6 a^2 r
///
///   p2p (Newton on, 13 messages):
///     face:   a^2 r   (x3)    1 hop
///     edge:   a r^2   (x6)    2 hops
///     corner: r^3     (x4)    3 hops
///     total ghost volume: 4 r^3 + 6 a r^2 + 3 a^2 r
///
/// Volumes convert to atoms via number density and to bytes via the
/// per-atom payload of the comm stage (24 B = 3 doubles for forward
/// positions / reverse forces).
struct MessageClass {
  NeighborClass cls;
  double volume;    ///< ghost slab volume for one message
  int hops;         ///< logical 3D-torus hops to the peer
  int count;        ///< how many messages of this class per exchange
};

struct GhostAlgebra {
  double a;  ///< sub-box side
  double r;  ///< cutoff (plus skin, if the caller includes it)

  /// The three 3-stage message classes (X, Y, Z stages), Newton on.
  /// With `shells` = 2 (cutoff exceeding the sub-box, paper Fig. 15) the
  /// per-direction slab spans two sub-boxes: each stage sends `shells`
  /// chained messages per side (the 3-stage scales *linearly* in shells,
  /// versus the p2p pattern's cubic neighbor growth).
  std::vector<MessageClass> three_stage(int shells = 1) const;

  /// The p2p message classes for `shells` neighbor shells.
  /// shells=1, newton=true  -> 13 msgs (3 face + 6 edge + 4 corner)
  /// shells=1, newton=false -> 26 msgs (6 + 12 + 8)
  /// shells=2               -> 62 / 124 msgs (paper Fig. 15)
  std::vector<MessageClass> p2p(bool newton, int shells = 1) const;

  /// Sum of volume*count over a message set.
  static double total_volume(const std::vector<MessageClass>& msgs);
  static int total_messages(const std::vector<MessageClass>& msgs);

  /// Closed forms from Table 1 (used to cross-check the enumerations).
  double three_stage_total_volume() const {
    return 8 * r * r * r + 12 * a * r * r + 6 * a * a * r;
  }
  double p2p_total_volume_newton() const {
    return 4 * r * r * r + 6 * a * r * r + 3 * a * a * r;
  }

  /// Atoms in a slab of volume `v` at number density `rho`.
  static double atoms(double v, double rho) { return v * rho; }

  /// Payload bytes for `n` atoms at `bytes_per_atom` (24 B for x/f).
  static double bytes(double n_atoms, double bytes_per_atom = 24.0) {
    return n_atoms * bytes_per_atom;
  }
};

}  // namespace lmp::geom
