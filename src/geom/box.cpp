#include "geom/box.h"

#include <cmath>

namespace lmp::geom {

Vec3 Box::wrap(Vec3 p) const {
  const Vec3 e = extent();
  for (int d = 0; d < 3; ++d) {
    // floor-based wrap handles positions arbitrarily far outside the box
    // (can happen after many unwrapped integration steps in tests).
    const double rel = (p[d] - lo[d]) / e[d];
    p[d] -= std::floor(rel) * e[d];
    // Guard the hi-edge: floating point can land exactly on hi.
    if (p[d] >= hi[d]) p[d] = lo[d];
  }
  return p;
}

Vec3 Box::min_image(const Vec3& a, const Vec3& b) const {
  Vec3 d = a - b;
  const Vec3 e = extent();
  for (int k = 0; k < 3; ++k) {
    d[k] -= e[k] * std::round(d[k] / e[k]);
  }
  return d;
}

bool Box::contains(const Vec3& p) const {
  for (int d = 0; d < 3; ++d) {
    if (p[d] < lo[d] || p[d] >= hi[d]) return false;
  }
  return true;
}

}  // namespace lmp::geom
