#include "sim/integrity.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace lmp::sim {

namespace {

constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kP3 = 0x165667B19E3779F9ULL;

std::uint64_t rotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

}  // namespace

std::uint64_t hash64(const void* data, std::size_t len, std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed + kP3 + static_cast<std::uint64_t>(len);
  while (len >= 8) {
    std::uint64_t k;
    std::memcpy(&k, p, 8);
    h = rotl(h ^ (rotl(k * kP1, 31) * kP2), 27) * kP1 + kP3;
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    h = rotl(h ^ (static_cast<std::uint64_t>(*p) * kP1), 11) * kP2;
    ++p;
    --len;
  }
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

RankScan scan_atoms(const md::Atoms& atoms, double mass, const geom::Box& box,
                    double margin) {
  RankScan s;
  const auto note = [&s](const std::string& why) {
    if (s.reason.empty()) s.reason = why;
  };
  const auto finite3 = [](const util::Vec3& v) {
    return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
  };
  const auto inside = [&](const util::Vec3& p) {
    return p.x >= box.lo.x - margin && p.x <= box.hi.x + margin &&
           p.y >= box.lo.y - margin && p.y <= box.hi.y + margin &&
           p.z >= box.lo.z - margin && p.z <= box.hi.z + margin;
  };

  // Positions of owned AND ghost atoms: a ghost slab flip (corruption
  // landing after the wire CRC passed) shows up here before it has even
  // contaminated a force.
  for (int i = 0; i < atoms.ntotal(); ++i) {
    const util::Vec3 p = atoms.pos(i);
    const bool ghost = i >= atoms.nlocal();
    if (!finite3(p)) {
      s.nonfinite = true;
      std::ostringstream os;
      os << "nonfinite " << (ghost ? "ghost " : "") << "position at index "
         << i << " (tag " << atoms.tag(i) << ")";
      note(os.str());
    } else if (!inside(p)) {
      s.escaped = true;
      std::ostringstream os;
      os << (ghost ? "ghost " : "") << "position at index " << i << " (tag "
         << atoms.tag(i) << ") escaped box by more than " << margin;
      note(os.str());
    }
  }

  // Velocities and forces exist only for owned atoms.
  for (int i = 0; i < atoms.nlocal(); ++i) {
    const util::Vec3 v = atoms.vel(i);
    if (!finite3(v)) {
      s.nonfinite = true;
      std::ostringstream os;
      os << "nonfinite velocity at index " << i << " (tag " << atoms.tag(i)
         << ")";
      note(os.str());
    }
    const util::Vec3 f = atoms.force(i);
    if (!finite3(f)) {
      s.nonfinite = true;
      std::ostringstream os;
      os << "nonfinite force at index " << i << " (tag " << atoms.tag(i)
         << ")";
      note(os.str());
    }
    s.px += mass * v.x;
    s.py += mass * v.y;
    s.pz += mass * v.z;
  }
  return s;
}

}  // namespace lmp::sim
