#include "sim/simulation.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "comm/comm_factory.h"
#include "comm/directions.h"
#include "geom/lattice.h"
#include "md/eam.h"
#include "md/integrate.h"
#include "md/lj.h"
#include "md/neighbor.h"
#include "md/velocity.h"
#include "minimpi/runtime.h"
#include "obs/alloc_tracker.h"
#include "obs/tracer.h"
#include "sim/checkpoint.h"
#include "tofu/hardware.h"
#include "threadpool/spin_pool.h"
#include "threadpool/task_graph.h"

namespace lmp::sim {

util::StageTimer JobResult::total_stages() const {
  util::StageTimer t;
  for (const auto& r : ranks) t += r.stages;
  return t;
}

namespace {

using util::Stage;

/// Internal control-flow exception: this attempt is over, roll back and
/// try the next variant. Thrown by every rank of a failing attempt (the
/// health allreduce makes the soft path collective; abort/poison fan the
/// hard path out), caught by run_attempt. Never escapes run_simulation.
class FailoverSignal : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Variant of the failover signal raised by a tripped integrity guard.
/// It rides the same teardown/rendezvous machinery (every rank throws
/// after the guard allreduce), but run_simulation classifies it
/// separately: a corruption verdict retries the SAME variant after a
/// rollback — the fabric is healthy, the data was not.
class IntegritySignal : public FailoverSignal {
 public:
  using FailoverSignal::FailoverSignal;
};

/// Shared job state every rank thread sees. One JobShared per *attempt*:
/// a poisoned World / aborted Network is permanent, so each failover
/// builds a fresh fabric instead of trying to scrub the old one.
struct JobShared {
  SimOptions opt;
  std::string variant;                   ///< comm variant of this attempt
  const CheckpointState* restart;        ///< null for a fresh start
  int start_step = 0;                    ///< loop resumes at start_step + 1
  geom::FccLattice lattice{1.0};
  geom::Box global;
  geom::Decomposition decomp{{1, 1, 1}, geom::Box{{0, 0, 0}, {1, 1, 1}}};
  std::vector<util::Vec3> positions;   ///< full system (fresh start only)
  std::vector<util::Vec3> velocities;  ///< full system (fresh start only)
  double density = 0.0;
  long natoms_total = 0;

  minimpi::World world;
  tofu::Network net;
  comm::AddressBook book;

  comm::HealthMonitor monitor;

  std::vector<RankResult> results;
  std::vector<ThermoSample> thermo;  ///< written by rank 0 only

  // --- checkpoint plumbing --------------------------------------------
  /// Per-rank staging area for owned atoms; rank 0 assembles the staged
  /// rows into a CheckpointState between two barriers.
  std::vector<std::vector<AtomState>> ckpt_stage;
  std::shared_ptr<const CheckpointState> last_ckpt;  ///< rollback target
  double ckpt_io_seconds = 0.0;
  std::uint64_t ckpts_written = 0;
  /// Content checksum of `last_ckpt`, recorded at commit and re-verified
  /// before the attempt loop resumes from it (integrity guards only).
  std::uint64_t last_ckpt_hash = 0;

  // --- silent-corruption guards ---------------------------------------
  /// Owned by run_simulation so transient-flip history survives the
  /// rollback/recompute attempts; null when no memory faults are planned.
  tofu::MemFaultInjector* mem = nullptr;
  std::atomic<std::uint64_t> integrity_checks{0};  ///< rank 0 counts guards

  // --- steady-state zero-alloc guard ------------------------------------
  /// Driven by rank 0's step loop when opt.alloc_guard is set. The
  /// counters it reads are process-wide, so the verdict covers every
  /// rank thread of the attempt, not just the sampler's.
  obs::AllocGuard alloc_guard;

  // --- failure rendezvous ---------------------------------------------
  std::atomic<bool> abort_requested{false};
  std::atomic<int> failed_ranks{0};
  std::mutex fail_mu;
  int fail_step = 0;
  std::string fail_reason;
  bool fail_integrity = false;  ///< root cause was a tripped guard
  std::exception_ptr fatal;  ///< genuine bug — rethrown, never failed over

  JobShared(const SimOptions& o, std::string variant_name,
            const CheckpointState* rst, tofu::MemFaultInjector* mem_inj)
      : opt(o),
        variant(std::move(variant_name)),
        restart(rst),
        world(o.rank_grid.x * o.rank_grid.y * o.rank_grid.z),
        net(o.rank_grid.x * o.rank_grid.y * o.rank_grid.z),
        book(o.rank_grid.x * o.rank_grid.y * o.rank_grid.z),
        monitor(o.health),
        mem(mem_inj) {
    if (o.faults.enabled()) {
      net.set_fault_injector(std::make_shared<tofu::FaultInjector>(o.faults));
    }
    const md::SimConfig& cfg = o.config;
    lattice = cfg.units.style == md::UnitStyle::kLj
                  ? geom::FccLattice::from_density(cfg.lattice_arg)
                  : geom::FccLattice::from_constant(cfg.lattice_arg);
    global = lattice.box_for(o.cells.x, o.cells.y, o.cells.z);
    decomp = geom::Decomposition(o.rank_grid, global);
    if (restart) {
      validate_restart();
      start_step = restart->step;
      thermo = restart->thermo;
      natoms_total = restart->natoms;
    } else {
      positions = lattice.generate(o.cells.x, o.cells.y, o.cells.z);
      velocities = md::create_velocities(positions.size(), cfg.t_init,
                                         cfg.mass, cfg.units, o.seed);
      natoms_total = static_cast<long>(positions.size());
    }
    density = static_cast<double>(natoms_total) / global.volume();
    results.resize(static_cast<std::size_t>(decomp.nranks()));
    ckpt_stage.resize(static_cast<std::size_t>(decomp.nranks()));
  }

  /// First failure wins: later notes (aborted/poisoned wakeups on peer
  /// ranks) keep the root cause intact.
  void note_failure(int rank, int step, const std::string& reason) {
    std::lock_guard lock(fail_mu);
    if (!fail_reason.empty()) return;
    fail_step = step;
    fail_reason = "rank " + std::to_string(rank) + ": " + reason;
  }

  /// Like note_failure, but marks the root cause as a corruption
  /// verdict. Ranks with a local violation call this *before* the guard
  /// allreduce, so the detailed reason always beats the generic note
  /// clean peers record afterwards.
  void note_integrity(int rank, int step, const std::string& reason) {
    std::lock_guard lock(fail_mu);
    if (!fail_reason.empty()) return;
    fail_step = step;
    fail_reason = "rank " + std::to_string(rank) + ": " + reason;
    fail_integrity = true;
  }

  void note_fatal(std::exception_ptr ep) {
    std::lock_guard lock(fail_mu);
    if (!fatal) fatal = ep;
  }

  /// Rank 0, between the two barriers of a checkpoint step: freeze the
  /// staged per-rank atoms + thermo into the rollback snapshot and, when
  /// a path is configured, publish it to disk atomically.
  void commit_checkpoint(int step) {
    auto st = std::make_shared<CheckpointState>();
    st->step = step;
    st->checkpoint_every = opt.checkpoint_every;
    st->comm_variant = variant;
    st->seed = opt.seed;
    st->cells = opt.cells;
    st->rank_grid = opt.rank_grid;
    st->natoms = natoms_total;
    st->box = global;
    st->rank_atoms = ckpt_stage;
    st->thermo = thermo;
    if (!opt.checkpoint_path.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      write_checkpoint(opt.checkpoint_path + "." + std::to_string(step), *st);
      prune_checkpoints(opt.checkpoint_path, opt.checkpoint_keep);
      ckpt_io_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    }
    ++ckpts_written;
    // Fingerprint the parked rollback target so a flip landing in the
    // parked state itself is caught before it gets recomputed from.
    last_ckpt_hash = opt.integrity.enabled() ? checkpoint_content_hash(*st) : 0;
    last_ckpt = std::move(st);
    LMP_TRACE_INSTANT(obs::TraceCat::kCkpt, "checkpoint.commit");
  }

 private:
  void validate_restart() {
    const auto mismatch = [](const std::string& what) {
      throw std::runtime_error("restart: checkpoint " + what +
                               " does not match the requested run");
    };
    if (!(restart->cells == opt.cells)) mismatch("cell counts");
    if (!(restart->rank_grid == opt.rank_grid)) mismatch("rank grid");
    if (restart->seed != opt.seed) mismatch("seed");
    if (restart->rank_atoms.size() !=
        static_cast<std::size_t>(opt.rank_grid.x * opt.rank_grid.y *
                                 opt.rank_grid.z)) {
      mismatch("rank count");
    }
    if (restart->box.lo.x != global.lo.x || restart->box.lo.y != global.lo.y ||
        restart->box.lo.z != global.lo.z || restart->box.hi.x != global.hi.x ||
        restart->box.hi.y != global.hi.y || restart->box.hi.z != global.hi.z) {
      mismatch("box");
    }
  }
};

/// One rank's full verlet driver.
class RankSim {
 public:
  RankSim(JobShared& job, int rank) : job_(job), rank_(rank) {
    const md::SimConfig& cfg = job.opt.config;

    // --- atoms: capacity from the theoretical upper bound (Sec. 3.4) ---
    const geom::Box sub = job.decomp.sub_box(rank);
    const util::Vec3 e = sub.extent();
    const double rc = cfg.neighbor_cutoff();
    const double own_vol = sub.volume();
    const double shell_vol =
        (e.x + 2 * rc) * (e.y + 2 * rc) * (e.z + 2 * rc) - own_vol;
    const auto cap = static_cast<int>(
        (own_vol * 1.5 + shell_vol * 2.0) * job.density + 256);
    atoms_.reserve_capacity(cap);

    if (job.restart) {
      // Checkpointed atoms are post-exchange: every row already lives in
      // its owner's sub-box, so the startup exchange migrates nothing and
      // the restarted trajectory stays bitwise-identical.
      const auto& mine =
          job.restart->rank_atoms[static_cast<std::size_t>(rank)];
      for (const AtomState& a : mine) atoms_.add_local(a.pos, a.vel, a.tag);
    } else {
      for (std::size_t i = 0; i < job.positions.size(); ++i) {
        if (job.decomp.owner_of(job.positions[i]) == rank) {
          atoms_.add_local(job.positions[i], job.velocities[i],
                           static_cast<std::int64_t>(i));
        }
      }
    }

    // --- potential ----------------------------------------------------
    if (cfg.potential == md::PotentialKind::kLennardJones) {
      potential_ = std::make_unique<md::LennardJones>(cfg.epsilon, cfg.sigma,
                                                      cfg.cutoff);
    } else {
      // Round-trip through the funcfl text format, as LAMMPS would read
      // the Cu_u3.eam file.
      const md::EamTable table =
          md::parse_funcfl(md::to_funcfl(md::make_cu_like_table(
              2000, 2000, cfg.cutoff)));
      potential_ = std::make_unique<md::Eam>(table);
    }

    // --- communication variant ----------------------------------------
    comm::CommContext cctx;
    cctx.decomp = &job.decomp;
    cctx.rank = rank;
    cctx.atoms = &atoms_;
    cctx.sub = sub;
    cctx.global = job.global;
    cctx.ghost_cutoff = rc;
    cctx.newton = cfg.newton;
    cctx.density = job.density;

    // The factory resolves the variant name to a builder; each builder
    // (registered by the driver's own translation unit) knows which
    // transport to stand up and which neighbor-list half rule its ghost
    // pattern needs.
    const comm::CommVariantInfo& info =
        comm::CommFactory::instance().at(job.variant);
    half_rule_ = info.half_rule;
    comm::CommBuildInputs inputs;
    inputs.ctx = cctx;
    inputs.world = &job.world;
    inputs.net = &job.net;
    inputs.book = &job.book;
    inputs.use_border_bins = job.opt.use_border_bins;
    inputs.balanced_assignment = job.opt.balanced_assignment;
    comm::CommInstance built = info.build(inputs);
    comm_ = std::move(built.comm);
    pool_ = std::move(built.pool);

    neighbor_ = std::make_unique<md::NeighborBuilder>(rc);
    integrator_ = std::make_unique<md::VerletNve>(
        cfg.dt, cfg.mass, 1.0 / cfg.units.mvv2e);

    // --- step executor ------------------------------------------------
    sub_ = sub;
    rc_ = rc;
    exec_async_ =
        job.opt.executor == "async" && potential_->split_passes() > 0;
    if (exec_async_) {
      dag_pool_ = std::make_unique<pool::SpinThreadPool>(
          std::max(1, job.opt.executor_threads));
    }
  }

  int current_step() const { return step_; }
  util::CommHealthReport health() const { return comm_->health(); }

  void run(int nsteps) {
    const md::SimConfig& cfg = job_.opt.config;
    const int ckpt_every = job_.opt.checkpoint_every;
    nsteps_ = nsteps;

    comm_->setup();
    job_.world.barrier(rank_);  // addresses published on every rank

    rebuild();
    compute_forces();

    if (job_.opt.integrity.enabled()) {
      // Collective energy reference for the drift sentinel. The
      // allreduced value is identical on every rank, so the verdict
      // derived from it is too.
      energy_ref_ = reduce_state().total();
      have_energy_ref_ = true;
    }

    // Arm the zero-alloc guard after setup: lattice build, comm setup,
    // and the startup rebuild are allowed to allocate freely — only the
    // steady-state step loop is on trial.
    if (rank_ == 0 && job_.opt.alloc_guard) {
      job_.alloc_guard.arm(job_.opt.alloc_guard_warmup, nsteps);
    }

    for (step_ = job_.start_step + 1; step_ <= nsteps; ++step_) {
      LMP_TRACE_SPAN(obs::TraceCat::kSim, "step");
      {
        util::ScopedStage s(timer_, Stage::kModify);
        integrator_->initial_integrate(atoms_);
      }
      inject_owned(step_);  // planned pos/vel bit flips land here

      // Checkpoint steps force a rebuild (skipping the check-yes
      // allreduce): the snapshot must be post-exchange so a restarted
      // run's startup rebuild reproduces this exact state.
      const bool ckpt_step = ckpt_every > 0 && step_ % ckpt_every == 0;
      bool do_rebuild = ckpt_step;
      if (!do_rebuild && step_ % cfg.neigh.every == 0) {
        if (cfg.neigh.check) {
          util::ScopedStage s(timer_, Stage::kOther);
          // "check yes": everyone learns whether any atom anywhere moved
          // past half the skin (the EAM allreduce the paper highlights).
          do_rebuild = job_.world.allreduce_lor(rank_, moved_too_far());
        } else {
          do_rebuild = true;
        }
      }

      if (do_rebuild) {
        // Rebuild steps exchanged ghosts already; the force evaluation
        // runs serially in canonical order under both executors.
        rebuild();
        inject_ghosts(step_);
        compute_forces();
      } else if (exec_async_) {
        // The step DAG issues the forward exchange itself and overlaps
        // interior force tasks with the in-flight ghost data (ghost
        // flips land via the DAG's task.inject node).
        compute_forces_async();
      } else {
        {
          util::ScopedStage s(timer_, Stage::kComm);
          comm_->forward_positions();
        }
        inject_ghosts(step_);
        compute_forces();
      }
      inject_force(step_);  // planned force flips land here

      {
        util::ScopedStage s(timer_, Stage::kModify);
        integrator_->final_integrate(atoms_);
      }

      if (step_ % job_.opt.thermo_every == 0 || step_ == nsteps) {
        util::ScopedStage s(timer_, Stage::kOther);
        record_thermo(step_);
      }

      // Guards run BEFORE the checkpoint is staged: a state that fails
      // them never becomes a rollback target, which is what makes the
      // transient-recovery recompute bitwise-identical to a clean run.
      if (guard_step(step_)) check_integrity(step_);

      if (ckpt_step) {
        stage_checkpoint(step_);
        check_health(step_);
      }

      // Live-telemetry progress: one relaxed store per step on rank 0
      // only. The sampler thread delta-reads this to derive steps/sec;
      // the clean path without a hook pays one predictable branch.
      if (rank_ == 0 && job_.opt.progress != nullptr) {
        job_.opt.progress->store(step_, std::memory_order_relaxed);
      }

      // Zero-alloc guard sample: two relaxed counter reads on rank 0,
      // nothing allocated — the probe cannot trip itself. 0-based step
      // index so `warmup` counts steps, not step labels.
      if (rank_ == 0 && job_.opt.alloc_guard) {
        job_.alloc_guard.on_step(step_ - 1);
      }
    }

    RankResult& out = job_.results[static_cast<std::size_t>(rank_)];
    out.stages = timer_;
    out.comm = comm_->counters();
    out.health = comm_->health();
    out.nlocal_final = atoms_.nlocal();
    out.atoms.reserve(static_cast<std::size_t>(atoms_.nlocal()));
    for (int i = 0; i < atoms_.nlocal(); ++i) {
      out.atoms.push_back({atoms_.tag(i), atoms_.pos(i), atoms_.vel(i)});
    }
    // Keep RDMA buffers registered until every peer is done with them: a
    // rank that tears down early would yank memory a neighbor's comm
    // layer may still address.
    job_.world.barrier(rank_);
  }

 private:
  void rebuild() {
    {
      util::ScopedStage s(timer_, Stage::kComm);
      atoms_.clear_ghosts();
      comm_->exchange();
      comm_->borders();
    }
    {
      util::ScopedStage s(timer_, Stage::kNeigh);
      const md::SimConfig& cfg = job_.opt.config;
      list_ = cfg.newton ? neighbor_->build_half(atoms_, half_rule_)
                         : neighbor_->build_full(atoms_);
      snapshot_positions();
      // The band partition and the step DAG are functions of the
      // neighbor epoch: atoms keep their group until the next rebuild
      // (the list is frozen, so interior rows cannot grow ghost
      // neighbors mid-epoch).
      if (potential_->split_passes() > 0) {
        groups_ = md::ForceGroups::build(atoms_, sub_, rc_);
        if (exec_async_) build_step_graph();
      }
    }
  }

  void compute_forces() {
    {
      // EAM's mid-pair rho/fp exchanges happen inside the pair stage and
      // are therefore charged to Pair, matching the paper's accounting.
      util::ScopedStage s(timer_, Stage::kPair);
      atoms_.zero_forces();
      if (potential_->split_passes() > 0) {
        // Serial canonical split — the exact task sequence the async
        // DAG runs, executed in its canonical order, which is what
        // makes the two executors bitwise-identical.
        potential_->split_begin(atoms_, list_, job_.opt.config.newton,
                                &groups_);
        for (int pass = 0; pass < potential_->split_passes(); ++pass) {
          for (int g = 0; g < groups_.ngroups(); ++g) {
            potential_->split_group(pass, g);
          }
          potential_->split_join(pass, comm_.get());
        }
        last_force_ = potential_->split_finish();
      } else {
        last_force_ = potential_->compute(atoms_, list_,
                                          job_.opt.config.newton, comm_.get());
      }
      // Same data point as the async DAG's task.guard node, so both
      // executors feed check_integrity an identical verdict.
      if (job_.opt.integrity.enabled()) guard_prescan();
    }
    if (job_.opt.config.newton) {
      // Ghost-force return is a Comm-stage cost in LAMMPS accounting.
      util::ScopedStage r(timer_, Stage::kComm);
      comm_->reverse_forces();
    }
  }

  /// Async non-rebuild step: the DAG carries the forward exchange, so
  /// the whole thing is charged to Pair — overlapped communication is
  /// hidden time by design (the trace spans keep the full attribution;
  /// see DESIGN.md section 12).
  void compute_forces_async() {
    {
      util::ScopedStage s(timer_, Stage::kPair);
      atoms_.zero_forces();
      potential_->split_begin(atoms_, list_, job_.opt.config.newton,
                              &groups_);
      graph_->run(dag_pool_.get());
      last_force_ = potential_->split_finish();
    }
    if (job_.opt.config.newton) {
      util::ScopedStage r(timer_, Stage::kComm);
      comm_->reverse_forces();
    }
  }

  /// Build this epoch's step DAG (async executor). Nodes:
  ///
  ///   task.fwd              forward_begin() — all sends on the wire
  ///   task.wait (xN)        forward_complete(ch), one per recv channel,
  ///                         chained per forward_channel_key (channels
  ///                         sharing a dispatcher must not race)
  ///   task.interior (mask 0) / task.border (per band group), pass 0;
  ///                         border groups gate on the waits of every
  ///                         direction they read (group_reads_dir)
  ///   task.mid / task.reduce  split_join(0): canonical reduction (+ EAM
  ///                         mid-pair comm), after all groups and waits
  ///   task.force (xG)       EAM pass-1 groups, after the mid join
  ///   task.reduce           EAM split_join(1)
  ///
  /// Eager comm variants expose no channels: every border group then
  /// gates directly on task.fwd, which ran the whole blocking exchange.
  void build_step_graph() {
    graph_ = std::make_unique<pool::TaskGraph>();
    const int fwd = graph_->add("task.fwd", [this] { comm_->forward_begin(); });

    const std::vector<int>& chans = comm_->forward_channels();
    std::vector<int> waits;
    waits.reserve(chans.size());
    std::map<int, int> last_of_key;
    for (const int ch : chans) {
      const int w =
          graph_->add("task.wait", [this, ch] { comm_->forward_complete(ch); });
      graph_->depend(w, fwd);
      const int key = comm_->forward_channel_key(ch);
      const auto it = last_of_key.find(key);
      if (it != last_of_key.end()) graph_->depend(w, it->second);
      last_of_key[key] = w;
      waits.push_back(w);
    }

    // Silent-corruption hook: ghost flips must land after ALL forward
    // traffic and before ANY ghost reader — the ordering the barrier
    // executor gets by injecting after its blocking forward. The node
    // (and its overlap cost) exists only when memory faults are planned.
    int inject = -1;
    if (job_.mem && job_.mem->enabled()) {
      inject = graph_->add("task.inject", [this] { inject_ghosts(step_); });
      graph_->depend(inject, fwd);
      for (const int w : waits) graph_->depend(inject, w);
    }

    std::vector<int> pass0;
    pass0.reserve(static_cast<std::size_t>(groups_.ngroups()));
    for (int g = 0; g < groups_.ngroups(); ++g) {
      const int mask = groups_.groups[static_cast<std::size_t>(g)].mask;
      const int node =
          graph_->add(mask == 0 ? "task.interior" : "task.border",
                      [this, g] { potential_->split_group(0, g); });
      if (mask != 0) {
        bool gated = false;
        for (std::size_t i = 0; i < chans.size(); ++i) {
          const util::Int3 d = comm::all_dirs()[static_cast<std::size_t>(chans[i])];
          if (md::group_reads_dir(mask, d.x, d.y, d.z)) {
            graph_->depend(node, waits[i]);
            gated = true;
          }
        }
        // No matching channel (eager comm, or a band whose ghost side
        // never receives under Newton half-shell): gate on the forward
        // node itself — conservative and always correct.
        if (!gated) graph_->depend(node, fwd);
        if (inject >= 0) graph_->depend(node, inject);
      }
      pass0.push_back(node);
    }

    // Every wait feeds the join even when no group reads it: the notice
    // must be consumed this step, and the next step's forward must not
    // start before this one's exchange fully landed.
    const int npasses = potential_->split_passes();
    const int join0 =
        graph_->add(npasses == 2 ? "task.mid" : "task.reduce",
                    [this] { potential_->split_join(0, comm_.get()); });
    for (const int n : pass0) graph_->depend(join0, n);
    for (const int w : waits) graph_->depend(join0, w);
    if (inject >= 0) graph_->depend(join0, inject);

    int final_join = join0;
    if (npasses == 2) {
      std::vector<int> pass1;
      pass1.reserve(static_cast<std::size_t>(groups_.ngroups()));
      for (int g = 0; g < groups_.ngroups(); ++g) {
        const int node = graph_->add(
            "task.force", [this, g] { potential_->split_group(1, g); });
        graph_->depend(node, join0);
        pass1.push_back(node);
      }
      const int join1 = graph_->add(
          "task.reduce", [this] { potential_->split_join(1, comm_.get()); });
      for (const int n : pass1) graph_->depend(join1, n);
      final_join = join1;
    }

    // The guard rides the DAG as its canonical terminal join: the
    // nonfinite-force prescan runs right where the reduced forces are
    // born, and check_integrity consumes its flag after the step.
    if (job_.opt.integrity.enabled()) {
      const int guard = graph_->add("task.guard", [this] { guard_prescan(); });
      graph_->depend(guard, final_join);
    }
  }

  bool moved_too_far() const {
    const double half_skin = 0.5 * job_.opt.config.skin;
    const double lim2 = half_skin * half_skin;
    const double* x = atoms_.x();
    for (int i = 0; i < atoms_.nlocal(); ++i) {
      const double dx = x[3 * i] - hold_[static_cast<std::size_t>(3 * i)];
      const double dy = x[3 * i + 1] - hold_[static_cast<std::size_t>(3 * i + 1)];
      const double dz = x[3 * i + 2] - hold_[static_cast<std::size_t>(3 * i + 2)];
      if (dx * dx + dy * dy + dz * dz > lim2) return true;
    }
    return false;
  }

  void snapshot_positions() {
    hold_.assign(atoms_.x(), atoms_.x() + 3 * atoms_.nlocal());
  }

  /// Collective thermo reduction — every rank returns the same state.
  md::ThermoState reduce_state() {
    const md::ThermoPartials local = md::local_thermo(
        atoms_, job_.opt.config.mass, last_force_.energy, last_force_.virial);
    md::ThermoPartials global;
    global.ke_sum = job_.world.allreduce_sum(rank_, local.ke_sum);
    global.pe = job_.world.allreduce_sum(rank_, local.pe);
    global.virial = job_.world.allreduce_sum(rank_, local.virial);
    global.natoms = job_.world.allreduce_sum(
        rank_, static_cast<std::int64_t>(local.natoms));
    return md::reduce_thermo(global, job_.opt.config.units,
                             job_.global.volume());
  }

  void record_thermo(int step) {
    const md::ThermoState state = reduce_state();
    if (rank_ == 0) job_.thermo.push_back({step, state});
  }

  /// End-of-step checkpoint: stage my owned atoms, then let rank 0
  /// freeze the collective snapshot between two barriers. The first
  /// barrier orders every rank's staging before the commit; the second
  /// keeps the stage buffers stable until the commit is done.
  void stage_checkpoint(int step) {
    util::ScopedStage s(timer_, Stage::kOther);
    auto& mine = job_.ckpt_stage[static_cast<std::size_t>(rank_)];
    mine.clear();
    mine.reserve(static_cast<std::size_t>(atoms_.nlocal()));
    for (int i = 0; i < atoms_.nlocal(); ++i) {
      mine.push_back({atoms_.tag(i), atoms_.pos(i), atoms_.vel(i)});
    }
    job_.world.barrier(rank_);
    if (rank_ == 0) job_.commit_checkpoint(step);
    job_.world.barrier(rank_);
  }

  /// Collective soft-failure assessment at a checkpoint step: any rank
  /// whose counters cross a budget drags everyone into the failover
  /// together (the allreduce makes the decision symmetric, so no rank is
  /// left running against a torn-down fabric).
  void check_health(int step) {
    if (!job_.monitor.enabled()) return;
    util::ScopedStage s(timer_, Stage::kOther);
    const util::CommHealthReport h = comm_->health();
    const comm::EscalationDecision dec = job_.monitor.assess(h);
    if (dec.escalate) {
      job_.note_failure(rank_, step,
                        "health threshold: " + dec.reason + " [" +
                            comm::describe_counters(h) + "]");
    }
    const bool any = job_.world.allreduce_lor(rank_, dec.escalate);
    if (any) throw FailoverSignal("health threshold tripped");
  }

  // --- silent-corruption machinery -------------------------------------

  /// Planned bit flips into the owned position/velocity slabs, right
  /// after the half-kick moved them — the earliest point where this
  /// step's state exists to corrupt.
  void inject_owned(int step) {
    if (!job_.mem) return;
    job_.mem->apply(rank_, step, tofu::MemTarget::kPos, atoms_.x(),
                    static_cast<std::size_t>(3 * atoms_.nlocal()));
    job_.mem->apply(rank_, step, tofu::MemTarget::kVel, atoms_.v(),
                    static_cast<std::size_t>(3 * atoms_.nlocal()));
  }

  /// Flips into the landed ghost block of the position array: received
  /// data corrupted *after* the wire CRC passed. Runs once all forward
  /// traffic for the step has landed (after borders / forward; in the
  /// async executor via the DAG's task.inject node gated on every wait).
  void inject_ghosts(int step) {
    if (!job_.mem || atoms_.nghost() == 0) return;
    job_.mem->apply(rank_, step, tofu::MemTarget::kGhostPos,
                    atoms_.x() + 3 * atoms_.nlocal(),
                    static_cast<std::size_t>(3 * atoms_.nghost()));
  }

  /// Flips into the freshly reduced force slab, before the closing
  /// half-kick consumes it.
  void inject_force(int step) {
    if (!job_.mem) return;
    job_.mem->apply(rank_, step, tofu::MemTarget::kForce, atoms_.f(),
                    static_cast<std::size_t>(3 * atoms_.nlocal()));
  }

  /// Guards run on the cadence, at every checkpoint step (nothing may be
  /// committed unexamined) and at the final step (nothing unexamined may
  /// be returned).
  bool guard_step(int step) const {
    const IntegrityOptions& integ = job_.opt.integrity;
    if (!integ.enabled()) return false;
    if (step % integ.cadence == 0 || step == nsteps_) return true;
    const int every = job_.opt.checkpoint_every;
    return every > 0 && step % every == 0;
  }

  /// Canonical-join guard hook: a cheap nonfinite scan over the reduced
  /// forces, run as the DAG's terminal task.guard node (async) or inline
  /// after the canonical split loop (barrier) — the same data point in
  /// both executors, so the verdicts they feed check_integrity match.
  void guard_prescan() {
    if (!guard_step(step_)) return;
    const double* f = atoms_.f();
    for (int i = 0; i < 3 * atoms_.nlocal(); ++i) {
      if (!std::isfinite(f[i])) {
        prescan_bad_ = true;
        return;
      }
    }
  }

  /// The integrity guard proper: local NaN/box scan, collective momentum
  /// and energy sentinels, then an allreduce'd verdict so every rank
  /// agrees before anyone tears down. Read-only on the physics state —
  /// a guarded clean run is bitwise-identical to an unguarded one.
  void check_integrity(int step) {
    util::ScopedStage s(timer_, Stage::kOther);
    const IntegrityOptions& integ = job_.opt.integrity;
    const md::SimConfig& cfg = job_.opt.config;

    // Legitimate ghosts live up to one neighbor cutoff outside the box;
    // owned atoms drift less than half a skin between rebuilds.
    const RankScan scan = scan_atoms(atoms_, cfg.mass, job_.global,
                                     rc_ + cfg.skin);
    bool bad = scan.tripped();
    std::string reason = scan.reason;
    if (prescan_bad_) {
      bad = true;
      if (reason.empty()) reason = "nonfinite force at the task.guard join";
      prescan_bad_ = false;
    }

    // Total momentum: zeroed at t=0 and conserved by the pair forces to
    // rounding, so the budget scales with system size and mass.
    const double px = job_.world.allreduce_sum(rank_, scan.px);
    const double py = job_.world.allreduce_sum(rank_, scan.py);
    const double pz = job_.world.allreduce_sum(rank_, scan.pz);
    const double pcap = integ.momentum_tol *
                        static_cast<double>(job_.natoms_total) *
                        std::max(cfg.mass, 1.0);
    if (!(std::abs(px) <= pcap && std::abs(py) <= pcap &&
          std::abs(pz) <= pcap)) {  // negated so NaN momentum trips too
      bad = true;
      if (reason.empty()) {
        std::ostringstream os;
        os << "net momentum (" << px << ", " << py << ", " << pz
           << ") exceeds budget " << pcap;
        reason = os.str();
      }
    }

    // Energy drift against the collective reference captured at the
    // start of the attempt. NVE drifts O(dt^2); a flip moves orders of
    // magnitude, so the window separates them with a wide margin.
    const double e_now = reduce_state().total();
    if (have_energy_ref_) {
      const double span = integ.energy_tol *
                          std::max(std::abs(energy_ref_), 1.0);
      if (!(std::abs(e_now - energy_ref_) <= span)) {  // NaN trips
        bad = true;
        if (reason.empty()) {
          std::ostringstream os;
          os << "total energy " << e_now << " drifted from reference "
             << energy_ref_ << " beyond tolerance " << integ.energy_tol;
          reason = os.str();
        }
      }
    }

    if (rank_ == 0) {
      job_.integrity_checks.fetch_add(1, std::memory_order_relaxed);
    }
    // Local detail is noted BEFORE the verdict allreduce, so it always
    // beats the generic note clean peers record afterwards.
    if (bad) job_.note_integrity(rank_, step, "integrity: " + reason);
    const bool any = job_.world.allreduce_lor(rank_, bad);
    if (any) {
      if (!bad) {
        job_.note_integrity(rank_, step, "integrity guard tripped on a peer");
      }
      throw IntegritySignal("integrity guard tripped at step " +
                            std::to_string(step));
    }
  }

  JobShared& job_;
  int rank_;
  int step_ = 0;
  md::Atoms atoms_;
  md::HalfRule half_rule_ = md::HalfRule::kAllGhosts;
  std::unique_ptr<md::Potential> potential_;
  std::unique_ptr<comm::Comm> comm_;
  std::unique_ptr<pool::SpinThreadPool> pool_;
  std::unique_ptr<md::NeighborBuilder> neighbor_;
  std::unique_ptr<md::VerletNve> integrator_;
  md::NeighborList list_;
  md::ForceResult last_force_;
  std::vector<double> hold_;
  util::StageTimer timer_;

  // --- integrity guard state ------------------------------------------
  int nsteps_ = 0;
  double energy_ref_ = 0.0;
  bool have_energy_ref_ = false;
  bool prescan_bad_ = false;  ///< set by the task.guard join node

  // --- step executor state --------------------------------------------
  geom::Box sub_;
  double rc_ = 0.0;
  bool exec_async_ = false;
  md::ForceGroups groups_;                     ///< rebuilt per epoch
  std::unique_ptr<pool::TaskGraph> graph_;     ///< rebuilt per epoch
  std::unique_ptr<pool::SpinThreadPool> dag_pool_;  ///< async only
};

/// Classify a rank failure: failover triggers are the typed comm errors
/// (and our own signal); anything else is a genuine bug that must
/// surface, not be retried on another variant.
bool is_failover_trigger(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const FailoverSignal&) {
    return true;
  } catch (const tofu::UnreachableError&) {
    return true;
  } catch (const tofu::CommTimeoutError&) {
    return true;
  } catch (const tofu::JobAbortedError&) {
    return true;
  } catch (const minimpi::PoisonedError&) {
    return true;
  } catch (...) {
    return false;
  }
}

struct AttemptOutcome {
  bool ok = false;
  int fail_step = 0;
  std::string fail_reason;
  /// The attempt fell to a tripped integrity guard (not a comm fault):
  /// the retry policy is rollback-and-recompute on the SAME variant.
  bool integrity = false;
  std::uint64_t integrity_checks = 0;
  std::shared_ptr<const CheckpointState> last_ckpt;
  std::uint64_t last_ckpt_hash = 0;
  double ckpt_io_seconds = 0.0;
  std::uint64_t ckpts_written = 0;
  /// Fabric-side fault counters of this attempt (also harvested on
  /// failure, so the final health report tells the whole story — the
  /// unreachable puts happened on the *retired* variant's fabric).
  util::CommHealthReport fabric;
  /// Link-utilization totals of this attempt's network (same rationale:
  /// traffic up to the failure crossed real wires).
  tofu::FabricSnapshot links;
  JobResult result;
};

/// Copy the fault-injector and network counters of one attempt's fabric
/// into a health report.
void harvest_fabric_stats(const JobShared& job, util::CommHealthReport& h) {
  if (const tofu::FaultInjector* inj = job.net.fault_injector()) {
    const tofu::FaultStats& fs = inj->stats();
    h.notices_dropped = fs.dropped.load(std::memory_order_relaxed);
    h.notices_delayed = fs.delayed.load(std::memory_order_relaxed);
    h.notices_duplicated = fs.duplicated.load(std::memory_order_relaxed);
    h.payloads_corrupted = fs.corrupted.load(std::memory_order_relaxed);
    h.tni_drops = fs.tni_drops.load(std::memory_order_relaxed);
    h.unreachable_puts = fs.unreachable_puts.load(std::memory_order_relaxed);
    h.fabric_puts = fs.fabric_puts.load(std::memory_order_relaxed);
    h.tnis_down = static_cast<int>(inj->plan().dead_tnis.size());
  }
  h.retransmit_puts =
      job.net.stats().retransmit_puts.load(std::memory_order_relaxed);
}

/// One attempt on one comm variant: run all ranks to completion or to a
/// collective failure. Hard errors on any rank abort the fabric and
/// poison the world so blocked peers wake promptly; every rank then
/// rendezvouses before tearing down its comm layer (RDMA buffers must
/// stay registered while any peer might still address them).
AttemptOutcome run_attempt(const SimOptions& options,
                           const std::string& variant,
                           const std::shared_ptr<const CheckpointState>& from,
                           int nsteps, tofu::MemFaultInjector* mem) {
  JobShared job(options, variant, from.get(), mem);
  const int nranks = job.decomp.nranks();

  const auto rank_main = [&](int rank) {
    LMP_TRACE_THREAD(rank, 0, "rank");
    std::optional<RankSim> sim;
    try {
      sim.emplace(job, rank);
      sim->run(nsteps);
    } catch (...) {
      const std::exception_ptr ep = std::current_exception();
      const bool trigger = is_failover_trigger(ep);
      if (trigger) {
        try {
          std::rethrow_exception(ep);
        } catch (const std::exception& e) {
          job.note_failure(rank, sim ? sim->current_step() : 0, e.what());
        }
      } else {
        job.note_fatal(ep);
      }
      job.abort_requested.store(true, std::memory_order_release);
      job.net.abort_fabric("rank " + std::to_string(rank) + " failed");
      job.world.poison("rank " + std::to_string(rank) + " failed");
      job.failed_ranks.fetch_add(1, std::memory_order_acq_rel);
      // Rendezvous before destroying the comm layer: peers may still be
      // in flight against our registered buffers until their own
      // failure handling starts. The deadline covers a rank that
      // finished cleanly before the poison landed.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(60);
      while (job.failed_ranks.load(std::memory_order_acquire) < nranks &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      sim.reset();
      if (trigger) throw FailoverSignal("attempt failed");
      std::rethrow_exception(ep);
    }
  };

  AttemptOutcome out;
  try {
    minimpi::run_ranks(nranks, rank_main);
  } catch (const FailoverSignal&) {
    // run_ranks rethrows the *first* captured exception; a genuine bug
    // on a slower rank may have been recorded after a peer's signal.
    if (job.fatal) std::rethrow_exception(job.fatal);
    out.ok = false;
    {
      std::lock_guard lock(job.fail_mu);
      out.fail_step = job.fail_step;
      out.fail_reason =
          job.fail_reason.empty() ? "unknown failure" : job.fail_reason;
      out.integrity = job.fail_integrity;
    }
    out.integrity_checks =
        job.integrity_checks.load(std::memory_order_relaxed);
    out.last_ckpt = job.last_ckpt;
    out.last_ckpt_hash = job.last_ckpt_hash;
    out.ckpt_io_seconds = job.ckpt_io_seconds;
    out.ckpts_written = job.ckpts_written;
    harvest_fabric_stats(job, out.fabric);
    out.links = job.net.link_telemetry().snapshot();
    return out;
  }
  if (job.fatal) std::rethrow_exception(job.fatal);

  out.ok = true;
  out.integrity_checks = job.integrity_checks.load(std::memory_order_relaxed);
  out.last_ckpt = job.last_ckpt;
  out.last_ckpt_hash = job.last_ckpt_hash;
  out.ckpt_io_seconds = job.ckpt_io_seconds;
  out.ckpts_written = job.ckpts_written;

  JobResult& res = out.result;
  res.ranks = std::move(job.results);
  res.thermo = std::move(job.thermo);
  res.natoms = job.natoms_total;
  res.volume = job.global.volume();
  res.atoms.reserve(static_cast<std::size_t>(res.natoms));
  for (const auto& r : res.ranks) {
    res.atoms.insert(res.atoms.end(), r.atoms.begin(), r.atoms.end());
  }
  std::sort(res.atoms.begin(), res.atoms.end(),
            [](const AtomState& a, const AtomState& b) { return a.tag < b.tag; });
  for (const auto& r : res.ranks) res.health += r.health;
  if (job.opt.alloc_guard) res.alloc_guard = job.alloc_guard.report();
  harvest_fabric_stats(job, out.fabric);
  out.links = job.net.link_telemetry().snapshot();
  res.health += out.fabric;
  return out;
}

}  // namespace

JobResult run_simulation(const SimOptions& options, int nsteps) {
  SimOptions opt = options;

  if (opt.executor != "barrier" && opt.executor != "async") {
    throw std::runtime_error("unknown executor '" + opt.executor +
                             "' (expected 'barrier' or 'async')");
  }
  if (opt.executor_threads < 1) {
    throw std::runtime_error("executor_threads must be >= 1");
  }
  if (opt.integrity.cadence < 0) {
    throw std::runtime_error("integrity cadence must be >= 0");
  }
  if (opt.integrity.enabled() &&
      (opt.integrity.energy_tol <= 0 || opt.integrity.momentum_tol <= 0 ||
       opt.integrity.max_rollbacks < 0)) {
    throw std::runtime_error("integrity tolerances must be > 0 and "
                             "max_rollbacks >= 0");
  }
  if (opt.checkpoint_keep < 0) {
    throw std::runtime_error("checkpoint_keep must be >= 0");
  }

  // The transient-flip fire history must survive the rollback attempts:
  // one injector outlives every JobShared this call builds.
  std::shared_ptr<tofu::MemFaultInjector> mem;
  if (opt.faults.memory_faults()) {
    mem = std::make_shared<tofu::MemFaultInjector>(opt.faults);
  }

  // Resolve every variant the run might touch up front, so an unknown
  // name fails on the calling thread with the full catalog — not three
  // failovers deep inside a rank thread.
  comm::CommFactory::instance().at(opt.comm);
  const std::vector<std::string> chain = comm::resolve_failover_chain(
      opt.comm, opt.failover_chain.empty() ? comm::default_failover_chain()
                                           : opt.failover_chain);
  for (const std::string& v : chain) comm::CommFactory::instance().at(v);

  std::shared_ptr<const CheckpointState> resume;
  if (!opt.restart_file.empty()) {
    auto st =
        std::make_shared<CheckpointState>(read_checkpoint(opt.restart_file));
    // The emission schedule is part of the trajectory (checkpoint steps
    // force rebuilds), so a restart must run the same schedule.
    if (opt.checkpoint_every == 0) {
      opt.checkpoint_every = st->checkpoint_every;
    } else if (opt.checkpoint_every != st->checkpoint_every) {
      throw std::runtime_error(
          "restart: checkpoint_every " + std::to_string(opt.checkpoint_every) +
          " does not match the checkpoint file's " +
          std::to_string(st->checkpoint_every));
    }
    resume = std::move(st);
  }

  const int max_failovers = opt.max_failovers < 0
                                ? static_cast<int>(chain.size()) - 1
                                : opt.max_failovers;

  std::vector<util::EscalationEvent> events;
  std::vector<util::IntegrityEvent> recoveries;
  util::CommHealthReport carry;  // fabric counters of failed attempts
  tofu::FabricSnapshot link_carry;  // link traffic of failed attempts
  double io_seconds = 0.0;
  std::uint64_t written = 0;
  std::uint64_t checks = 0;
  std::uint64_t resume_hash = 0;
  int rollbacks = 0;
  int last_detect_step = -1;

  std::size_t idx = 0;
  for (;;) {
    const std::string& variant = chain[idx];
    AttemptOutcome at = run_attempt(opt, variant, resume, nsteps, mem.get());
    io_seconds += at.ckpt_io_seconds;
    written += at.ckpts_written;
    checks += at.integrity_checks;
    if (at.ok) {
      JobResult res = std::move(at.result);
      res.restart_step = resume ? resume->step : 0;
      res.final_comm = variant;
      res.fabric = std::move(at.links);
      res.fabric += link_carry;
      res.health += carry;
      res.health.checkpoint_io_seconds += io_seconds;
      res.health.checkpoints_written += written;
      res.health.escalations = std::move(events);
      res.health.integrity_checks += checks;
      res.health.integrity_detections +=
          static_cast<std::uint64_t>(recoveries.size());
      res.health.integrity_rollbacks += static_cast<std::uint64_t>(rollbacks);
      res.health.integrity_events = std::move(recoveries);
      if (mem) {
        res.health.mem_flips_injected +=
            mem->stats().flips_injected.load(std::memory_order_relaxed);
      }
      return res;
    }
    carry += at.fabric;
    link_carry += at.links;

    if (at.integrity) {
      // Corruption verdict: the fabric is fine — roll back to the last
      // guarded checkpoint and recompute on the SAME variant. The
      // trajectory is deterministic, so a recompute that trips at the
      // same step again means the fault is stuck in place, not a
      // one-off flip: escalate to a structured terminal error instead
      // of looping forever (or worse, emitting a corrupt trajectory).
      if (at.fail_step == last_detect_step) {
        throw IntegrityError(
            at.fail_step,
            "persistent corruption: recompute diverged again at step " +
                std::to_string(at.fail_step) + " (" + at.fail_reason + ")");
      }
      if (rollbacks >= opt.integrity.max_rollbacks) {
        throw IntegrityError(
            at.fail_step, "integrity rollback budget (" +
                              std::to_string(opt.integrity.max_rollbacks) +
                              ") exhausted at step " +
                              std::to_string(at.fail_step) + " (" +
                              at.fail_reason + ")");
      }
      // Re-verify the rollback target's content checksum before reuse:
      // recomputing from silently corrupted parked state would launder
      // the corruption into a "clean" trajectory.
      std::shared_ptr<const CheckpointState> target =
          at.last_ckpt ? at.last_ckpt : resume;
      const std::uint64_t want =
          at.last_ckpt ? at.last_ckpt_hash : resume_hash;
      if (target && want != 0 && checkpoint_content_hash(*target) != want) {
        throw IntegrityError(
            at.fail_step,
            "rollback checkpoint of step " + std::to_string(target->step) +
                " failed its content checksum — parked state corrupted");
      }
      resume = std::move(target);
      resume_hash = want;
      ++rollbacks;
      last_detect_step = at.fail_step;
      util::IntegrityEvent ev;
      ev.detect_step = at.fail_step;
      ev.resume_step = resume ? resume->step : 0;
      ev.reason = at.fail_reason;
      ev.verdict = "transient";
      recoveries.push_back(std::move(ev));
      LMP_TRACE_INSTANT(obs::TraceCat::kCkpt, "integrity.rollback");
      continue;  // same variant — this was not the comm layer's fault
    }

    // Roll back to the newest snapshot this attempt produced; without
    // one, resume stays at the previous rollback point (or a fresh
    // start when there has never been a checkpoint).
    if (at.last_ckpt) {
      resume = at.last_ckpt;
      resume_hash = at.last_ckpt_hash;
    }
    if (idx + 1 >= chain.size() ||
        static_cast<int>(events.size()) >= max_failovers) {
      throw std::runtime_error("failover chain exhausted at variant '" +
                               variant + "': " + at.fail_reason);
    }
    LMP_TRACE_INSTANT(obs::TraceCat::kCkpt, "failover.escalate");
    util::EscalationEvent ev;
    ev.fail_step = at.fail_step;
    ev.resume_step = resume ? resume->step : 0;
    ev.from_variant = variant;
    ev.to_variant = chain[idx + 1];
    ev.reason = at.fail_reason;
    events.push_back(std::move(ev));
    ++idx;
  }
}

obs::RunReport build_run_report(const SimOptions& options, int nsteps,
                                const JobResult& result) {
  obs::RunReport rep;
  rep.workload = options.config.name;
  rep.comm_requested = options.comm;
  rep.comm_final = result.final_comm;
  rep.nsteps = nsteps;
  rep.restart_step = result.restart_step;
  rep.nranks = static_cast<int>(result.ranks.size());
  rep.natoms = result.natoms;

  const auto int3 = [](const util::Int3& v) {
    return std::to_string(v.x) + "x" + std::to_string(v.y) + "x" +
           std::to_string(v.z);
  };
  rep.config = {
      {"cells", int3(options.cells)},
      {"rank_grid", int3(options.rank_grid)},
      {"seed", std::to_string(options.seed)},
      {"thermo_every", std::to_string(options.thermo_every)},
      {"checkpoint_every", std::to_string(options.checkpoint_every)},
      {"newton", options.config.newton ? "on" : "off"},
      {"dt", std::to_string(options.config.dt)},
      {"cutoff", std::to_string(options.config.cutoff)},
      {"skin", std::to_string(options.config.skin)},
      {"executor", options.executor},
      {"use_border_bins", options.use_border_bins ? "yes" : "no"},
      {"balanced_assignment", options.balanced_assignment ? "yes" : "no"},
      {"faults", options.faults.any_faults() ? "enabled" : "clean"},
      {"integrity_cadence", std::to_string(options.integrity.cadence)},
      {"checkpoint_keep", std::to_string(options.checkpoint_keep)},
  };

  const util::StageTimer stages = result.total_stages();
  const double total = stages.total();  // one denominator for every row
  rep.stage_total_seconds = total;
  for (const util::Stage s : util::all_stages()) {
    rep.stages.push_back({std::string(util::stage_name(s)), stages.get(s),
                          stages.percent(s, total)});
  }

  const util::CommHealthReport& h = result.health;
  rep.health_counters = {
      {"nacks_sent", h.nacks_sent},
      {"retransmits_served", h.retransmits_served},
      {"duplicates_dropped", h.duplicates_dropped},
      {"crc_rejects", h.crc_rejects},
      {"notices_dropped", h.notices_dropped},
      {"notices_delayed", h.notices_delayed},
      {"notices_duplicated", h.notices_duplicated},
      {"payloads_corrupted", h.payloads_corrupted},
      {"tni_drops", h.tni_drops},
      {"retransmit_puts", h.retransmit_puts},
      {"unreachable_puts", h.unreachable_puts},
      {"fabric_puts", h.fabric_puts},
      {"tnis_in_use", static_cast<std::uint64_t>(h.tnis_in_use)},
      {"tnis_down", static_cast<std::uint64_t>(h.tnis_down)},
      {"checkpoints_written", h.checkpoints_written},
  };
  rep.checkpoint_io_seconds = h.checkpoint_io_seconds;
  for (const util::EscalationEvent& e : h.escalations) {
    rep.escalations.push_back(
        {e.fail_step, e.resume_step, e.from_variant, e.to_variant, e.reason});
  }

  // v3: silent-corruption guard results.
  rep.integrity_checks = h.integrity_checks;
  rep.integrity_detections = h.integrity_detections;
  rep.integrity_rollbacks = h.integrity_rollbacks;
  rep.mem_flips_injected = h.mem_flips_injected;
  for (const util::IntegrityEvent& e : h.integrity_events) {
    rep.integrity_events.push_back(
        {e.detect_step, e.resume_step, e.reason, e.verdict});
  }

  // v2: fabric link utilization. The topology is reconstructed the same
  // way the telemetry built it (linear proc -> node over for_nodes), so
  // node ids resolve to the coordinates the traffic actually crossed.
  const tofu::FabricSnapshot& fs = result.fabric;
  rep.fabric_total_bytes = fs.total_bytes;
  rep.fabric_total_packets = fs.total_packets;
  rep.fabric_puts_charged = fs.puts_charged;
  rep.fabric_links_used = fs.links.size();
  rep.fabric_max_link_bytes = fs.max_link_bytes();
  rep.fabric_mean_link_bytes = fs.mean_link_bytes();
  rep.hop_histogram = fs.hop_histogram;
  if (!fs.links.empty()) {
    const tofu::Topology topo =
        tofu::Topology::for_nodes(std::max(1, rep.nranks));
    const std::size_t top_k = std::min<std::size_t>(10, fs.links.size());
    for (std::size_t i = 0; i < top_k; ++i) {
      const tofu::FabricLinkStat& l = fs.links[i];
      rep.top_links.push_back({topo.coord_of(l.from_node).to_string(),
                               topo.coord_of(l.to_node).to_string(),
                               std::string(tofu::axis_name(l.axis)) +
                                   (l.negative ? "-" : "+"),
                               l.bytes, l.packets});
    }
  }

  // v4: memory. Process-wide alloc-tracker totals at report-build time —
  // the per-scope rows come from the same slot table the hooks bump, so
  // their sum always reconciles with the global counters (CI asserts
  // this on every traced run). RSS is sampled live from /proc.
  rep.mem_tracked = obs::alloc_trace_compiled_in();
  const obs::AllocTotals mem = obs::AllocTracker::instance().totals();
  rep.mem_total_allocs = mem.allocs;
  rep.mem_total_frees = mem.frees;
  rep.mem_total_bytes = mem.bytes;
  rep.mem_live_bytes = mem.live_bytes;
  rep.mem_high_water_bytes = mem.high_water_bytes;
  rep.mem_rss_bytes = tofu::probe_rss_bytes();
  for (const obs::AllocSlotStats& s : obs::AllocTracker::instance().by_scope()) {
    rep.mem_scopes.push_back({s.name, s.allocs, s.frees, s.bytes});
  }

  const auto thermo_kv = [](const ThermoSample& t) {
    return std::vector<std::pair<std::string, double>>{
        {"step", static_cast<double>(t.step)},
        {"temperature", t.state.temperature},
        {"pressure", t.state.pressure},
        {"total_energy", t.state.total()},
    };
  };
  if (!result.thermo.empty()) {
    rep.thermo_first = thermo_kv(result.thermo.front());
    rep.thermo_last = thermo_kv(result.thermo.back());
  }
  return rep;
}

}  // namespace lmp::sim
