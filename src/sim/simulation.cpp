#include "sim/simulation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "comm/comm_factory.h"
#include "geom/lattice.h"
#include "md/eam.h"
#include "md/integrate.h"
#include "md/lj.h"
#include "md/neighbor.h"
#include "md/velocity.h"
#include "minimpi/runtime.h"
#include "threadpool/spin_pool.h"

namespace lmp::sim {

util::StageTimer JobResult::total_stages() const {
  util::StageTimer t;
  for (const auto& r : ranks) t += r.stages;
  return t;
}

namespace {

using util::Stage;

/// Shared, read-only job description every rank thread sees.
struct JobShared {
  SimOptions opt;
  geom::FccLattice lattice{1.0};
  geom::Box global;
  geom::Decomposition decomp{{1, 1, 1}, geom::Box{{0, 0, 0}, {1, 1, 1}}};
  std::vector<util::Vec3> positions;   ///< full system
  std::vector<util::Vec3> velocities;  ///< full system
  double density = 0.0;

  minimpi::World world;
  tofu::Network net;
  comm::AddressBook book;

  std::vector<RankResult> results;
  std::vector<ThermoSample> thermo;  ///< written by rank 0 only

  explicit JobShared(const SimOptions& o)
      : opt(o),
        world(o.rank_grid.x * o.rank_grid.y * o.rank_grid.z),
        net(o.rank_grid.x * o.rank_grid.y * o.rank_grid.z),
        book(o.rank_grid.x * o.rank_grid.y * o.rank_grid.z) {
    if (o.faults.enabled()) {
      net.set_fault_injector(std::make_shared<tofu::FaultInjector>(o.faults));
    }
    const md::SimConfig& cfg = o.config;
    lattice = cfg.units.style == md::UnitStyle::kLj
                  ? geom::FccLattice::from_density(cfg.lattice_arg)
                  : geom::FccLattice::from_constant(cfg.lattice_arg);
    global = lattice.box_for(o.cells.x, o.cells.y, o.cells.z);
    decomp = geom::Decomposition(o.rank_grid, global);
    positions = lattice.generate(o.cells.x, o.cells.y, o.cells.z);
    velocities = md::create_velocities(positions.size(), cfg.t_init, cfg.mass,
                                       cfg.units, o.seed);
    density = static_cast<double>(positions.size()) / global.volume();
    results.resize(static_cast<std::size_t>(decomp.nranks()));
  }
};

/// One rank's full verlet driver.
class RankSim {
 public:
  RankSim(JobShared& job, int rank) : job_(job), rank_(rank) {
    const md::SimConfig& cfg = job.opt.config;

    // --- atoms: capacity from the theoretical upper bound (Sec. 3.4) ---
    const geom::Box sub = job.decomp.sub_box(rank);
    const util::Vec3 e = sub.extent();
    const double rc = cfg.neighbor_cutoff();
    const double own_vol = sub.volume();
    const double shell_vol =
        (e.x + 2 * rc) * (e.y + 2 * rc) * (e.z + 2 * rc) - own_vol;
    const auto cap = static_cast<int>(
        (own_vol * 1.5 + shell_vol * 2.0) * job.density + 256);
    atoms_.reserve_capacity(cap);

    for (std::size_t i = 0; i < job.positions.size(); ++i) {
      if (job.decomp.owner_of(job.positions[i]) == rank) {
        atoms_.add_local(job.positions[i], job.velocities[i],
                         static_cast<std::int64_t>(i));
      }
    }

    // --- potential ----------------------------------------------------
    if (cfg.potential == md::PotentialKind::kLennardJones) {
      potential_ = std::make_unique<md::LennardJones>(cfg.epsilon, cfg.sigma,
                                                      cfg.cutoff);
    } else {
      // Round-trip through the funcfl text format, as LAMMPS would read
      // the Cu_u3.eam file.
      const md::EamTable table =
          md::parse_funcfl(md::to_funcfl(md::make_cu_like_table(
              2000, 2000, cfg.cutoff)));
      potential_ = std::make_unique<md::Eam>(table);
    }

    // --- communication variant ----------------------------------------
    comm::CommContext cctx;
    cctx.decomp = &job.decomp;
    cctx.rank = rank;
    cctx.atoms = &atoms_;
    cctx.sub = sub;
    cctx.global = job.global;
    cctx.ghost_cutoff = rc;
    cctx.newton = cfg.newton;
    cctx.density = job.density;

    // The factory resolves the variant name to a builder; each builder
    // (registered by the driver's own translation unit) knows which
    // transport to stand up and which neighbor-list half rule its ghost
    // pattern needs.
    const comm::CommVariantInfo& info =
        comm::CommFactory::instance().at(job.opt.comm);
    half_rule_ = info.half_rule;
    comm::CommBuildInputs inputs;
    inputs.ctx = cctx;
    inputs.world = &job.world;
    inputs.net = &job.net;
    inputs.book = &job.book;
    inputs.use_border_bins = job.opt.use_border_bins;
    inputs.balanced_assignment = job.opt.balanced_assignment;
    comm::CommInstance built = info.build(inputs);
    comm_ = std::move(built.comm);
    pool_ = std::move(built.pool);

    neighbor_ = std::make_unique<md::NeighborBuilder>(rc);
    integrator_ = std::make_unique<md::VerletNve>(
        cfg.dt, cfg.mass, 1.0 / cfg.units.mvv2e);
  }

  void run(int nsteps) {
    const md::SimConfig& cfg = job_.opt.config;

    comm_->setup();
    job_.world.barrier(rank_);  // addresses published on every rank

    rebuild();
    compute_forces();

    for (int step = 1; step <= nsteps; ++step) {
      {
        util::ScopedStage s(timer_, Stage::kModify);
        integrator_->initial_integrate(atoms_);
      }

      bool do_rebuild = false;
      if (step % cfg.neigh.every == 0) {
        if (cfg.neigh.check) {
          util::ScopedStage s(timer_, Stage::kOther);
          // "check yes": everyone learns whether any atom anywhere moved
          // past half the skin (the EAM allreduce the paper highlights).
          do_rebuild = job_.world.allreduce_lor(rank_, moved_too_far());
        } else {
          do_rebuild = true;
        }
      }

      if (do_rebuild) {
        rebuild();
      } else {
        util::ScopedStage s(timer_, Stage::kComm);
        comm_->forward_positions();
      }

      compute_forces();

      {
        util::ScopedStage s(timer_, Stage::kModify);
        integrator_->final_integrate(atoms_);
      }

      if (step % job_.opt.thermo_every == 0 || step == nsteps) {
        util::ScopedStage s(timer_, Stage::kOther);
        record_thermo(step);
      }
    }

    RankResult& out = job_.results[static_cast<std::size_t>(rank_)];
    out.stages = timer_;
    out.comm = comm_->counters();
    out.health = comm_->health();
    out.nlocal_final = atoms_.nlocal();
    out.atoms.reserve(static_cast<std::size_t>(atoms_.nlocal()));
    for (int i = 0; i < atoms_.nlocal(); ++i) {
      out.atoms.push_back({atoms_.tag(i), atoms_.pos(i), atoms_.vel(i)});
    }
  }

 private:
  void rebuild() {
    {
      util::ScopedStage s(timer_, Stage::kComm);
      atoms_.clear_ghosts();
      comm_->exchange();
      comm_->borders();
    }
    {
      util::ScopedStage s(timer_, Stage::kNeigh);
      const md::SimConfig& cfg = job_.opt.config;
      list_ = cfg.newton ? neighbor_->build_half(atoms_, half_rule_)
                         : neighbor_->build_full(atoms_);
      snapshot_positions();
    }
  }

  void compute_forces() {
    {
      // EAM's mid-pair rho/fp exchanges happen inside compute() and are
      // therefore charged to Pair, matching the paper's accounting.
      util::ScopedStage s(timer_, Stage::kPair);
      atoms_.zero_forces();
      last_force_ = potential_->compute(atoms_, list_, job_.opt.config.newton,
                                        comm_.get());
    }
    if (job_.opt.config.newton) {
      // Ghost-force return is a Comm-stage cost in LAMMPS accounting.
      util::ScopedStage r(timer_, Stage::kComm);
      comm_->reverse_forces();
    }
  }

  bool moved_too_far() const {
    const double half_skin = 0.5 * job_.opt.config.skin;
    const double lim2 = half_skin * half_skin;
    const double* x = atoms_.x();
    for (int i = 0; i < atoms_.nlocal(); ++i) {
      const double dx = x[3 * i] - hold_[static_cast<std::size_t>(3 * i)];
      const double dy = x[3 * i + 1] - hold_[static_cast<std::size_t>(3 * i + 1)];
      const double dz = x[3 * i + 2] - hold_[static_cast<std::size_t>(3 * i + 2)];
      if (dx * dx + dy * dy + dz * dz > lim2) return true;
    }
    return false;
  }

  void snapshot_positions() {
    hold_.assign(atoms_.x(), atoms_.x() + 3 * atoms_.nlocal());
  }

  void record_thermo(int step) {
    const md::ThermoPartials local = md::local_thermo(
        atoms_, job_.opt.config.mass, last_force_.energy, last_force_.virial);
    md::ThermoPartials global;
    global.ke_sum = job_.world.allreduce_sum(rank_, local.ke_sum);
    global.pe = job_.world.allreduce_sum(rank_, local.pe);
    global.virial = job_.world.allreduce_sum(rank_, local.virial);
    global.natoms = job_.world.allreduce_sum(
        rank_, static_cast<std::int64_t>(local.natoms));
    const md::ThermoState state =
        md::reduce_thermo(global, job_.opt.config.units, job_.global.volume());
    if (rank_ == 0) job_.thermo.push_back({step, state});
  }

  JobShared& job_;
  int rank_;
  md::Atoms atoms_;
  md::HalfRule half_rule_ = md::HalfRule::kAllGhosts;
  std::unique_ptr<md::Potential> potential_;
  std::unique_ptr<comm::Comm> comm_;
  std::unique_ptr<pool::SpinThreadPool> pool_;
  std::unique_ptr<md::NeighborBuilder> neighbor_;
  std::unique_ptr<md::VerletNve> integrator_;
  md::NeighborList list_;
  md::ForceResult last_force_;
  std::vector<double> hold_;
  util::StageTimer timer_;
};

}  // namespace

JobResult run_simulation(const SimOptions& options, int nsteps) {
  // Resolve the variant up front so an unknown name fails on the calling
  // thread with the full catalog, not inside a rank thread.
  comm::CommFactory::instance().at(options.comm);

  JobShared job(options);
  minimpi::run_ranks(job.decomp.nranks(), [&](int rank) {
    RankSim sim(job, rank);
    sim.run(nsteps);
  });

  JobResult out;
  out.ranks = std::move(job.results);
  out.thermo = std::move(job.thermo);
  out.natoms = static_cast<long>(job.positions.size());
  out.volume = job.global.volume();
  out.atoms.reserve(static_cast<std::size_t>(out.natoms));
  for (const auto& r : out.ranks) {
    out.atoms.insert(out.atoms.end(), r.atoms.begin(), r.atoms.end());
  }
  std::sort(out.atoms.begin(), out.atoms.end(),
            [](const AtomState& a, const AtomState& b) { return a.tag < b.tag; });
  for (const auto& r : out.ranks) out.health += r.health;
  if (const tofu::FaultInjector* inj = job.net.fault_injector()) {
    const tofu::FaultStats& fs = inj->stats();
    out.health.notices_dropped = fs.dropped.load(std::memory_order_relaxed);
    out.health.notices_delayed = fs.delayed.load(std::memory_order_relaxed);
    out.health.notices_duplicated =
        fs.duplicated.load(std::memory_order_relaxed);
    out.health.payloads_corrupted =
        fs.corrupted.load(std::memory_order_relaxed);
    out.health.tni_drops = fs.tni_drops.load(std::memory_order_relaxed);
    out.health.tnis_down = static_cast<int>(inj->plan().dead_tnis.size());
  }
  out.health.retransmit_puts =
      job.net.stats().retransmit_puts.load(std::memory_order_relaxed);
  return out;
}

}  // namespace lmp::sim
