#include "sim/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "comm/msg_codec.h"
#include "sim/integrity.h"
#include "util/durable_file.h"

namespace lmp::sim {

namespace {

// Section tags. A file is magic + version, then tagged CRC'd sections,
// then the end marker (empty section). Unknown tags are an error — the
// version field, not tag skipping, is the compatibility mechanism.
constexpr std::uint32_t kTagMeta = 1;
constexpr std::uint32_t kTagRanks = 2;
constexpr std::uint32_t kTagThermo = 3;
constexpr std::uint32_t kTagEnd = 0xFFFFFFFFu;

constexpr char kMagic[8] = {'L', 'M', 'P', 'C', 'K', 'P', 'T', '1'};

/// Append-only little binary writer (host-endian raw bytes).
class Encoder {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void vec3(const util::Vec3& v) {
    f64(v.x);
    f64(v.y);
    f64(v.z);
  }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  const std::vector<char>& bytes() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }
  std::vector<char> buf_;
};

/// Bounds-checked reader over one section payload.
class Decoder {
 public:
  Decoder(const char* data, std::size_t len, std::string section)
      : p_(data), end_(data + len), section_(std::move(section)) {}

  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  double f64() { return get<double>(); }
  util::Vec3 vec3() {
    util::Vec3 v;
    v.x = f64();
    v.y = f64();
    v.z = f64();
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(p_, p_ + n);
    p_ += n;
    return s;
  }
  void expect_done() const {
    if (p_ != end_) {
      throw std::runtime_error("checkpoint: trailing bytes in section '" +
                               section_ + "'");
    }
  }

 private:
  template <class T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }
  void need(std::uint64_t n) const {
    if (n > static_cast<std::uint64_t>(end_ - p_)) {
      throw std::runtime_error("checkpoint: truncated section '" + section_ +
                               "'");
    }
  }
  const char* p_;
  const char* end_;
  std::string section_;
};

void encode_meta(Encoder& e, const CheckpointState& st) {
  e.i32(st.step);
  e.i32(st.checkpoint_every);
  e.u64(st.seed);
  e.i64(st.natoms);
  e.i32(st.cells.x);
  e.i32(st.cells.y);
  e.i32(st.cells.z);
  e.i32(st.rank_grid.x);
  e.i32(st.rank_grid.y);
  e.i32(st.rank_grid.z);
  e.vec3(st.box.lo);
  e.vec3(st.box.hi);
  e.i32(static_cast<std::int32_t>(st.rank_atoms.size()));
  e.str(st.comm_variant);
}

void decode_meta(Decoder& d, CheckpointState& st, std::int32_t& nranks) {
  st.step = d.i32();
  st.checkpoint_every = d.i32();
  st.seed = d.u64();
  st.natoms = static_cast<long>(d.i64());
  st.cells.x = d.i32();
  st.cells.y = d.i32();
  st.cells.z = d.i32();
  st.rank_grid.x = d.i32();
  st.rank_grid.y = d.i32();
  st.rank_grid.z = d.i32();
  st.box.lo = d.vec3();
  st.box.hi = d.vec3();
  nranks = d.i32();
  st.comm_variant = d.str();
  d.expect_done();
}

void encode_ranks(Encoder& e, const CheckpointState& st) {
  for (const auto& atoms : st.rank_atoms) {
    e.i64(static_cast<std::int64_t>(atoms.size()));
    for (const AtomState& a : atoms) {
      e.i64(a.tag);
      e.vec3(a.pos);
      e.vec3(a.vel);
    }
  }
}

void decode_ranks(Decoder& d, CheckpointState& st, std::int32_t nranks) {
  if (nranks < 0) throw std::runtime_error("checkpoint: negative rank count");
  st.rank_atoms.resize(static_cast<std::size_t>(nranks));
  for (auto& atoms : st.rank_atoms) {
    const std::int64_t n = d.i64();
    if (n < 0) throw std::runtime_error("checkpoint: negative atom count");
    atoms.resize(static_cast<std::size_t>(n));
    for (AtomState& a : atoms) {
      a.tag = d.i64();
      a.pos = d.vec3();
      a.vel = d.vec3();
    }
  }
  d.expect_done();
}

void encode_thermo(Encoder& e, const CheckpointState& st) {
  e.i64(static_cast<std::int64_t>(st.thermo.size()));
  for (const ThermoSample& s : st.thermo) {
    e.i32(s.step);
    e.f64(s.state.temperature);
    e.f64(s.state.pressure);
    e.f64(s.state.kinetic);
    e.f64(s.state.potential);
  }
}

void decode_thermo(Decoder& d, CheckpointState& st) {
  const std::int64_t n = d.i64();
  if (n < 0) throw std::runtime_error("checkpoint: negative thermo count");
  st.thermo.resize(static_cast<std::size_t>(n));
  for (ThermoSample& s : st.thermo) {
    s.step = d.i32();
    s.state.temperature = d.f64();
    s.state.pressure = d.f64();
    s.state.kinetic = d.f64();
    s.state.potential = d.f64();
  }
  d.expect_done();
}

void append_section(std::vector<char>& out, std::uint32_t tag,
                    const std::vector<char>& payload) {
  Encoder hdr;
  hdr.u32(tag);
  hdr.u64(payload.size());
  out.insert(out.end(), hdr.bytes().begin(), hdr.bytes().end());
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = checkpoint_crc32(payload.data(), payload.size());
  Encoder tail;
  tail.u32(crc);
  out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
}

}  // namespace

std::uint32_t checkpoint_crc32(const void* data, std::size_t len) {
  // One CRC-32 for the whole tree: checkpoints, journal records, and
  // wire frames all share comm::crc32 (same polynomial, same tables).
  return comm::crc32(data, len);
}

std::uint64_t checkpoint_content_hash(const CheckpointState& st) {
  // Chain per-rank atom sections so both the bytes and their section
  // boundaries are covered. AtomState is padding-free (int64 + 6
  // doubles), so hashing the array bytes hashes exactly the physics.
  static_assert(sizeof(AtomState) == sizeof(std::int64_t) + 6 * sizeof(double),
                "AtomState must be padding-free for byte hashing");
  std::uint64_t h = hash64(&st.step, sizeof st.step, 0x1f1a6ULL);
  for (const auto& atoms : st.rank_atoms) {
    const std::uint64_t n = atoms.size();
    h = hash64(&n, sizeof n, h);
    h = hash64(atoms.data(), atoms.size() * sizeof(AtomState), h);
  }
  for (const ThermoSample& s : st.thermo) {
    h = hash64(&s.step, sizeof s.step, h);
    h = hash64(&s.state, sizeof s.state, h);
  }
  return h;
}

int prune_checkpoints(const std::string& prefix, int keep) {
  if (keep <= 0) return 0;
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path pfx(prefix);
  fs::path dir = pfx.parent_path();
  if (dir.empty()) dir = ".";
  const std::string base = pfx.filename().string() + ".";

  // Collect `<prefix>.<digits>` files; anything else (including the
  // atomic-write `.tmp` staging names) is not ours to delete.
  std::vector<std::pair<long long, fs::path>> found;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= base.size() || name.compare(0, base.size(), base) != 0) {
      continue;
    }
    const std::string tail = name.substr(base.size());
    if (tail.find_first_not_of("0123456789") != std::string::npos) continue;
    errno = 0;
    char* endp = nullptr;
    const long long step = std::strtoll(tail.c_str(), &endp, 10);
    if (errno != 0 || endp == tail.c_str() || *endp != '\0') continue;
    found.emplace_back(step, it->path());
  }
  if (static_cast<int>(found.size()) <= keep) return 0;

  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  int removed = 0;
  for (std::size_t i = static_cast<std::size_t>(keep); i < found.size(); ++i) {
    std::error_code rm_ec;
    if (fs::remove(found[i].second, rm_ec) && !rm_ec) ++removed;
  }
  return removed;
}

void write_checkpoint(const std::string& path, const CheckpointState& st) {
  std::vector<char> file;
  file.insert(file.end(), kMagic, kMagic + sizeof kMagic);
  {
    Encoder v;
    v.u32(kCheckpointVersion);
    file.insert(file.end(), v.bytes().begin(), v.bytes().end());
  }
  {
    Encoder e;
    encode_meta(e, st);
    append_section(file, kTagMeta, e.bytes());
  }
  {
    Encoder e;
    encode_ranks(e, st);
    append_section(file, kTagRanks, e.bytes());
  }
  {
    Encoder e;
    encode_thermo(e, st);
    append_section(file, kTagThermo, e.bytes());
  }
  append_section(file, kTagEnd, {});

  // Atomic, durable publish: tmp + fsync + rename + parent-dir fsync,
  // so a checkpoint that the journal (or a restart) points at survives
  // power loss — never a half-written or unlinked file under `path`.
  util::write_file_durable(path, file.data(), file.size());
}

CheckpointState read_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  std::vector<char> file((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());

  const char* p = file.data();
  const char* end = p + file.size();
  const auto need = [&](std::size_t n, const char* what) {
    if (n > static_cast<std::size_t>(end - p)) {
      throw std::runtime_error(std::string("checkpoint: truncated ") + what +
                               " in " + path);
    }
  };

  need(sizeof kMagic, "magic");
  if (std::memcmp(p, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  p += sizeof kMagic;

  need(sizeof(std::uint32_t), "version");
  std::uint32_t version;
  std::memcpy(&version, p, sizeof version);
  p += sizeof version;
  if (version != kCheckpointVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version) + " in " + path);
  }

  CheckpointState st;
  std::int32_t nranks = -1;
  bool saw_meta = false, saw_ranks = false, saw_thermo = false, saw_end = false;
  while (!saw_end) {
    need(sizeof(std::uint32_t) + sizeof(std::uint64_t), "section header");
    std::uint32_t tag;
    std::uint64_t len;
    std::memcpy(&tag, p, sizeof tag);
    p += sizeof tag;
    std::memcpy(&len, p, sizeof len);
    p += sizeof len;
    const char* name = tag == kTagMeta     ? "meta"
                       : tag == kTagRanks  ? "ranks"
                       : tag == kTagThermo ? "thermo"
                       : tag == kTagEnd    ? "end"
                                           : "unknown";
    need(len, name);
    const char* payload = p;
    p += len;
    need(sizeof(std::uint32_t), "section crc");
    std::uint32_t stored;
    std::memcpy(&stored, p, sizeof stored);
    p += sizeof stored;
    if (checkpoint_crc32(payload, len) != stored) {
      throw std::runtime_error(std::string("checkpoint: CRC mismatch in "
                                           "section '") +
                               name + "' of " + path);
    }
    switch (tag) {
      case kTagMeta: {
        Decoder d(payload, len, "meta");
        decode_meta(d, st, nranks);
        saw_meta = true;
        break;
      }
      case kTagRanks: {
        if (!saw_meta) {
          throw std::runtime_error("checkpoint: ranks section before meta in " +
                                   path);
        }
        Decoder d(payload, len, "ranks");
        decode_ranks(d, st, nranks);
        saw_ranks = true;
        break;
      }
      case kTagThermo: {
        Decoder d(payload, len, "thermo");
        decode_thermo(d, st);
        saw_thermo = true;
        break;
      }
      case kTagEnd:
        saw_end = true;
        break;
      default:
        throw std::runtime_error("checkpoint: unknown section tag " +
                                 std::to_string(tag) + " in " + path);
    }
  }
  if (!saw_meta || !saw_ranks || !saw_thermo) {
    throw std::runtime_error("checkpoint: missing required section in " + path);
  }
  return st;
}

}  // namespace lmp::sim
