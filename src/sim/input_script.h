#pragma once

#include <string>

#include "sim/simulation.h"

namespace lmp::sim {

/// Parsed outcome of a LAMMPS-style input script: the job options plus
/// the `run N` step count and optional observability outputs.
struct ParsedScript {
  SimOptions options;
  int run_steps = 0;
  std::string trace_path;   ///< Chrome trace JSON destination ("" = off)
  std::string report_path;  ///< run-report JSON destination ("" = off)
  bool dump_metrics = false;  ///< print the full metrics registry at exit
};

/// Parse a subset of the LAMMPS input-script language — enough to drive
/// both paper workloads the way the artifact's `in.threadpool.lj` /
/// `in.threadpool.eam` scripts do:
///
///   units           lj | metal
///   lattice         fcc <density-or-constant>
///   region          box block 0 <nx> 0 <ny> 0 <nz>       (lattice cells)
///   create_box      1 box
///   create_atoms    1 box
///   mass            1 <m>
///   pair_style      lj/cut <cutoff> | eam
///   pair_coeff      1 1 <eps> <sigma> | * * <file>
///   velocity        all create <T> <seed>
///   neighbor        <skin> bin
///   neigh_modify    every <N> check <yes|no> [delay <D>]
///   newton          on | off
///   fix             <id> all nve
///   timestep        <dt>
///   thermo          <N>
///   processors      <px> <py> <pz>
///   comm_variant    <name>       (any name in the CommFactory catalog,
///                                 e.g. ref, mpi_p2p, utofu_3stage,
///                                 4tni_p2p, 6tni_p2p, opt)       [ext]
///   executor        barrier|async [<nthreads>]  (step runtime: classic
///                                 verlet sequence, or the task-DAG
///                                 runtime that overlaps the ghost
///                                 exchange with interior force work;
///                                 trajectories are bitwise-identical
///                                 either way)                       [ext]
///   checkpoint      <N> [<prefix>] [keep <K>]  (snapshot every N steps;
///                                 with a prefix, also write
///                                 <prefix>.<step>, retaining only the
///                                 newest K files under `keep`)       [ext]
///   integrity       <N> [<tol>]  (silent-corruption guards every N
///                                 steps: NaN/Inf and box-escape scans,
///                                 momentum/energy sentinels, section
///                                 checksums; a trip rolls back to the
///                                 last good checkpoint and recomputes.
///                                 `tol` overrides the relative
///                                 energy-drift window, default 0.05) [ext]
///   restart         <file>       (resume from a checkpoint file)    [ext]
///   failover_chain  <v1> [<v2> ...]  (degradation ladder tried after
///                                 the active variant fails)         [ext]
///   health_threshold <key> <val> [...]  (soft escalation budgets:
///                                 max_nacks, max_retransmits,
///                                 max_crc_rejects, max_duplicates,
///                                 min_tnis)                         [ext]
///   trace           <file>       (write a Chrome/Perfetto trace JSON
///                                 after the run)                    [ext]
///   report          <file>       (write the machine-readable run
///                                 report JSON after the run)        [ext]
///   metrics                      (dump the full metrics registry as a
///                                 plain-text table after the run)   [ext]
///   alloc_guard     [<warmup>]   (steady-state zero-alloc guard: after
///                                 `warmup` steps — default run/2 — any
///                                 step that heap-allocates fails the
///                                 run with a per-scope attribution
///                                 table; needs LMP_ALLOC_TRACE)      [ext]
///   run             <steps>
///
/// Lines starting with `#` and blank lines are ignored; `#` also starts
/// trailing comments. Unknown commands raise std::invalid_argument with
/// the offending line number (fail-fast, unlike LAMMPS's forgiving
/// parser, so typos in experiments cannot silently change a workload).
ParsedScript parse_input_script(const std::string& text);

/// Convenience: read the file at `path` and parse it.
ParsedScript parse_input_file(const std::string& path);

}  // namespace lmp::sim
