#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "geom/box.h"
#include "md/atoms.h"

namespace lmp::sim {

/// Knobs for the silent-corruption guards. With `cadence` 0 the guards
/// never run and the step loop is exactly the pre-guard code path.
struct IntegrityOptions {
  /// Scan every N steps (also at every checkpoint step and the final
  /// step, so no committed checkpoint can carry unexamined state).
  int cadence = 0;
  /// Relative total-energy drift tolerated against the reference energy
  /// captured at the start of the run. NVE leapfrog drifts O(dt^2); an
  /// exponent-bit flip moves energy by orders of magnitude, so a loose
  /// 5% window separates the two with a wide margin.
  double energy_tol = 0.05;
  /// Per-atom momentum budget: the run starts with net momentum zeroed,
  /// and pure pair forces conserve it to rounding, so |sum m*v| must
  /// stay below momentum_tol * natoms.
  double momentum_tol = 1e-8;
  /// Rollback-and-recompute attempts before the job gives up with an
  /// IntegrityError even when each detection lands on a fresh step.
  int max_rollbacks = 4;

  bool enabled() const { return cadence > 0; }
};

/// Terminal verdict: corruption that recompute could not clear (a
/// stuck-at fault, a corrupt rollback target, or an exhausted rollback
/// budget). Carries the detection step so callers can report where the
/// trajectory stopped being trustworthy.
class IntegrityError : public std::runtime_error {
 public:
  IntegrityError(int step, const std::string& msg)
      : std::runtime_error(msg), step_(step) {}
  int step() const { return step_; }

 private:
  int step_;
};

/// xxhash-style 64-bit section checksum over a byte range. Used for the
/// per-array SoA slab checksums recorded at checkpoint commit and
/// re-verified before a rollback reuses the state.
std::uint64_t hash64(const void* data, std::size_t len,
                     std::uint64_t seed = 0);

/// Local (single-rank) guard verdict; the collective verdict ORs the
/// boolean trips and sums the momentum across ranks.
struct RankScan {
  bool nonfinite = false;  ///< NaN/Inf in pos/vel/force
  bool escaped = false;    ///< position outside box +/- margin
  double px = 0.0, py = 0.0, pz = 0.0;  ///< local sum of m*v
  std::string reason;      ///< first violation, empty when locally clean

  bool tripped() const { return nonfinite || escaped; }
};

/// Scan one rank's arrays: NaN/Inf over owned pos/vel/force and ghost
/// positions, box-escape bounds over all positions (`margin` must cover
/// the legitimate ghost halo, i.e. cutoff + skin), and the local
/// momentum partial sums. Pure read-only — a guarded run stays bitwise
/// identical to an unguarded one.
RankScan scan_atoms(const md::Atoms& atoms, double mass, const geom::Box& box,
                    double margin);

}  // namespace lmp::sim
