#include "sim/input_script.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "comm/comm_factory.h"

namespace lmp::sim {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::invalid_argument("input script line " + std::to_string(line) +
                              ": " + msg);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string w;
  while (in >> w) {
    if (w[0] == '#') break;  // trailing comment
    words.push_back(w);
  }
  return words;
}

double to_num(const std::string& w, int line) {
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(w, &used);
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + w + "'");
  }
  if (used != w.size()) fail(line, "trailing junk in number '" + w + "'");
  return v;
}

int to_int(const std::string& w, int line) {
  const double v = to_num(w, line);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v) fail(line, "expected an integer, got '" + w + "'");
  return i;
}

}  // namespace

ParsedScript parse_input_script(const std::string& text) {
  ParsedScript out;
  SimOptions& o = out.options;
  o.config = md::SimConfig::lj_melt();  // overwritten field by field below

  bool saw_units = false;
  bool saw_run = false;

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> w = tokenize(line);
    if (w.empty()) continue;
    const std::string& cmd = w[0];
    const auto need = [&](std::size_t n) {
      if (w.size() < n + 1) fail(lineno, cmd + " needs " + std::to_string(n) + " args");
    };

    if (cmd == "units") {
      need(1);
      if (w[1] == "lj") {
        o.config.units = md::Units::lj();
      } else if (w[1] == "metal") {
        o.config.units = md::Units::metal();
      } else {
        fail(lineno, "unsupported units '" + w[1] + "'");
      }
      saw_units = true;
    } else if (cmd == "lattice") {
      need(2);
      if (w[1] != "fcc") fail(lineno, "only fcc lattices are supported");
      o.config.lattice_arg = to_num(w[2], lineno);
    } else if (cmd == "region") {
      // region box block 0 nx 0 ny 0 nz
      need(8);
      if (w[2] != "block") fail(lineno, "only block regions are supported");
      if (to_num(w[3], lineno) != 0 || to_num(w[5], lineno) != 0 ||
          to_num(w[7], lineno) != 0) {
        fail(lineno, "region must start at the origin");
      }
      o.cells = {to_int(w[4], lineno), to_int(w[6], lineno), to_int(w[8], lineno)};
      if (o.cells.x < 1 || o.cells.y < 1 || o.cells.z < 1) {
        fail(lineno, "region extents must be >= 1 cell");
      }
    } else if (cmd == "create_box" || cmd == "create_atoms") {
      // Geometry comes from `region`; accepted for LAMMPS compatibility.
    } else if (cmd == "mass") {
      need(2);
      o.config.mass = to_num(w[2], lineno);
      if (o.config.mass <= 0) fail(lineno, "mass must be > 0");
    } else if (cmd == "pair_style") {
      need(1);
      if (w[1] == "lj/cut") {
        need(2);
        o.config.potential = md::PotentialKind::kLennardJones;
        o.config.cutoff = to_num(w[2], lineno);
      } else if (w[1] == "eam") {
        o.config.potential = md::PotentialKind::kEam;
        o.config.cutoff = 4.95;  // the generated Cu-like table's cutoff
      } else {
        fail(lineno, "unsupported pair_style '" + w[1] + "'");
      }
    } else if (cmd == "pair_coeff") {
      if (o.config.potential == md::PotentialKind::kLennardJones) {
        need(4);
        o.config.epsilon = to_num(w[3], lineno);
        o.config.sigma = to_num(w[4], lineno);
      }
      // EAM: the table file argument is accepted; the generated Cu-like
      // table stands in for Cu_u3.eam (see DESIGN.md substitutions).
    } else if (cmd == "velocity") {
      // velocity all create T seed
      need(4);
      if (w[1] != "all" || w[2] != "create") {
        fail(lineno, "only 'velocity all create T seed' is supported");
      }
      o.config.t_init = to_num(w[3], lineno);
      o.seed = static_cast<std::uint64_t>(to_int(w[4], lineno));
    } else if (cmd == "neighbor") {
      need(2);
      o.config.skin = to_num(w[1], lineno);
      if (w[2] != "bin") fail(lineno, "only bin neighbor lists are supported");
    } else if (cmd == "neigh_modify") {
      if (w.size() % 2 == 0) fail(lineno, "neigh_modify keyword without value");
      for (std::size_t i = 1; i + 1 < w.size(); i += 2) {
        const std::string& key = w[i];
        const std::string& val = w[i + 1];
        if (key == "every") {
          o.config.neigh.every = to_int(val, lineno);
          if (o.config.neigh.every < 1) fail(lineno, "every must be >= 1");
        } else if (key == "check") {
          if (val != "yes" && val != "no") fail(lineno, "check wants yes|no");
          o.config.neigh.check = val == "yes";
        } else if (key == "delay") {
          // accepted and ignored (we rebuild on the every/check policy)
        } else {
          fail(lineno, "unknown neigh_modify keyword '" + key + "'");
        }
      }
    } else if (cmd == "newton") {
      need(1);
      if (w[1] != "on" && w[1] != "off") fail(lineno, "newton wants on|off");
      o.config.newton = w[1] == "on";
    } else if (cmd == "fix") {
      need(3);
      if (w[3] != "nve") fail(lineno, "only fix nve is supported");
    } else if (cmd == "timestep") {
      need(1);
      o.config.dt = to_num(w[1], lineno);
      if (o.config.dt <= 0) fail(lineno, "timestep must be > 0");
    } else if (cmd == "thermo") {
      need(1);
      o.thermo_every = to_int(w[1], lineno);
      if (o.thermo_every < 1) fail(lineno, "thermo interval must be >= 1");
    } else if (cmd == "processors") {
      need(3);
      o.rank_grid = {to_int(w[1], lineno), to_int(w[2], lineno),
                     to_int(w[3], lineno)};
    } else if (cmd == "comm_variant") {
      need(1);
      // Validate against the factory so the error carries the live
      // catalog (a newly registered variant is accepted with no parser
      // change).
      if (!comm::CommFactory::instance().known(w[1])) {
        fail(lineno, "unknown comm_variant '" + w[1] + "' (registered: " +
                         comm::CommFactory::instance().catalog() + ")");
      }
      o.comm = w[1];
    } else if (cmd == "executor") {
      // executor barrier|async [nthreads] — step-runtime selection.
      need(1);
      if (w[1] != "barrier" && w[1] != "async") {
        fail(lineno, "executor wants barrier|async");
      }
      o.executor = w[1];
      if (w.size() > 2) {
        o.executor_threads = to_int(w[2], lineno);
        if (o.executor_threads < 1) {
          fail(lineno, "executor threads must be >= 1");
        }
      }
    } else if (cmd == "checkpoint") {
      // checkpoint N [prefix] [keep K] — cut a snapshot every N steps;
      // with a prefix, also publish it as <prefix>.<step> on disk,
      // retaining only the newest K files when `keep` is given.
      need(1);
      o.checkpoint_every = to_int(w[1], lineno);
      if (o.checkpoint_every < 1) fail(lineno, "checkpoint interval must be >= 1");
      std::size_t i = 2;
      if (i < w.size() && w[i] != "keep") o.checkpoint_path = w[i++];
      if (i < w.size()) {
        if (w[i] != "keep" || i + 1 >= w.size()) {
          fail(lineno, "checkpoint wants: checkpoint N [prefix] [keep K]");
        }
        o.checkpoint_keep = to_int(w[i + 1], lineno);
        if (o.checkpoint_keep < 1) fail(lineno, "checkpoint keep must be >= 1");
        i += 2;
      }
      if (i < w.size()) fail(lineno, "trailing junk after checkpoint");
    } else if (cmd == "integrity") {
      // integrity N [tol] — run the silent-corruption guards every N
      // steps; `tol` overrides the relative energy-drift window.
      need(1);
      o.integrity.cadence = to_int(w[1], lineno);
      if (o.integrity.cadence < 1) fail(lineno, "integrity cadence must be >= 1");
      if (w.size() > 2) {
        o.integrity.energy_tol = to_num(w[2], lineno);
        if (o.integrity.energy_tol <= 0) {
          fail(lineno, "integrity tolerance must be > 0");
        }
      }
    } else if (cmd == "restart") {
      need(1);
      o.restart_file = w[1];
    } else if (cmd == "failover_chain") {
      need(1);
      o.failover_chain.clear();
      for (std::size_t i = 1; i < w.size(); ++i) {
        if (!comm::CommFactory::instance().known(w[i])) {
          fail(lineno, "unknown failover variant '" + w[i] + "' (registered: " +
                           comm::CommFactory::instance().catalog() + ")");
        }
        o.failover_chain.push_back(w[i]);
      }
    } else if (cmd == "health_threshold") {
      if (w.size() % 2 == 0) fail(lineno, "health_threshold keyword without value");
      for (std::size_t i = 1; i + 1 < w.size(); i += 2) {
        const std::string& key = w[i];
        const int val = to_int(w[i + 1], lineno);
        if (val < 0) fail(lineno, "health threshold must be >= 0");
        if (key == "max_nacks") {
          o.health.max_nacks = static_cast<std::uint64_t>(val);
        } else if (key == "max_retransmits") {
          o.health.max_retransmits = static_cast<std::uint64_t>(val);
        } else if (key == "max_crc_rejects") {
          o.health.max_crc_rejects = static_cast<std::uint64_t>(val);
        } else if (key == "max_duplicates") {
          o.health.max_duplicates = static_cast<std::uint64_t>(val);
        } else if (key == "min_tnis") {
          o.health.min_tnis = val;
        } else {
          fail(lineno, "unknown health_threshold keyword '" + key + "'");
        }
      }
    } else if (cmd == "trace") {
      need(1);
      out.trace_path = w[1];
    } else if (cmd == "report") {
      need(1);
      out.report_path = w[1];
    } else if (cmd == "metrics") {
      out.dump_metrics = true;
    } else if (cmd == "alloc_guard") {
      out.options.alloc_guard = true;
      if (w.size() > 1) {
        out.options.alloc_guard_warmup = to_int(w[1], lineno);
        if (out.options.alloc_guard_warmup < 0) {
          fail(lineno, "alloc_guard warmup must be >= 0");
        }
      }
    } else if (cmd == "run") {
      need(1);
      out.run_steps = to_int(w[1], lineno);
      if (out.run_steps < 0) fail(lineno, "run steps must be >= 0");
      saw_run = true;
    } else {
      fail(lineno, "unknown command '" + cmd + "'");
    }
  }

  if (!saw_units) throw std::invalid_argument("input script: missing 'units'");
  if (!saw_run) throw std::invalid_argument("input script: missing 'run'");
  o.config.name = o.config.potential == md::PotentialKind::kLennardJones
                      ? "lj-script"
                      : "eam-script";
  return out;
}

ParsedScript parse_input_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open input script: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return parse_input_script(buf.str());
}

}  // namespace lmp::sim
