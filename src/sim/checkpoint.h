#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geom/box.h"
#include "sim/simulation.h"
#include "util/vec3.h"

namespace lmp::sim {

/// On-disk format version. Bumped whenever the section layout changes;
/// readers reject any other value instead of guessing.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Everything needed to resume a run bitwise-identically: per-rank owned
/// atoms (no ghosts — they are rebuilt), box/geometry, the RNG seed (the
/// t=0 velocity draw is the only RNG consumer, so the seed IS the stream
/// state), the step counter, the thermo series so far, and the comm
/// variant that was active when the checkpoint was cut.
struct CheckpointState {
  int step = 0;
  int checkpoint_every = 0;  ///< emission schedule; restart must match
  std::string comm_variant;
  std::uint64_t seed = 0;
  util::Int3 cells{0, 0, 0};
  util::Int3 rank_grid{0, 0, 0};
  long natoms = 0;
  geom::Box box{{0, 0, 0}, {0, 0, 0}};
  /// Owned atoms per rank, in each rank's local order at checkpoint time.
  std::vector<std::vector<AtomState>> rank_atoms;
  std::vector<ThermoSample> thermo;  ///< global series up to `step`
};

/// CRC-32 (reflected, poly 0xEDB88320) over `len` bytes — the per-section
/// integrity check of the checkpoint format.
std::uint32_t checkpoint_crc32(const void* data, std::size_t len);

/// 64-bit content checksum over a checkpoint's physics payload (per-rank
/// atom sections chained, then step/thermo), computed with the
/// sim/integrity xxhash-style mixer. Recorded when an in-memory rollback
/// target is committed and re-verified before the attempt loop reuses
/// it, so a bit flip that lands in the parked rollback state itself is
/// detected instead of silently recomputed from corrupt data. (Not
/// serialized: the on-disk sections already carry CRC-32.)
std::uint64_t checkpoint_content_hash(const CheckpointState& st);

/// Best-effort keep-last-K rotation for on-disk checkpoints written as
/// `prefix.<step>`: removes the oldest files (by step number) beyond the
/// newest `keep`. `keep <= 0` disables pruning. In-flight `.tmp` files
/// and unrelated names are never touched; I/O errors are swallowed (a
/// failed cleanup must not fail the run). Returns files removed.
int prune_checkpoints(const std::string& prefix, int keep);

/// Writes `st` to `path` atomically and durably: serialize to
/// `path + ".tmp"`, fsync the file, rename over the destination, fsync
/// the parent directory (util::write_file_durable) — a crash or power
/// loss mid-write never leaves a truncated file under the final name,
/// and a published checkpoint survives the machine dying. Throws
/// std::runtime_error on any I/O failure.
void write_checkpoint(const std::string& path, const CheckpointState& st);

/// Reads and validates a checkpoint: magic, version, per-section CRCs,
/// and payload bounds. Throws std::runtime_error naming the offending
/// section on corruption or truncation.
CheckpointState read_checkpoint(const std::string& path);

}  // namespace lmp::sim
