#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/address_book.h"
#include "comm/comm_base.h"
#include "md/config.h"
#include "md/thermo.h"
#include "minimpi/world.h"
#include "tofu/fault.h"
#include "tofu/network.h"
#include "util/stats.h"
#include "util/timer.h"
#include "util/vec3.h"

namespace lmp::sim {

/// The communication implementations evaluated step by step in the
/// paper's Fig. 12 (and the artifact's five project variants).
enum class CommVariant {
  kRefMpi,       ///< `ref`: baseline LAMMPS 3-stage over MPI
  kMpiP2p,       ///< naive p2p over the MPI stack (Fig. 6's cautionary tale)
  kUtofu3Stage,  ///< `utofu_3stage`
  kP2pCoarse4,   ///< `4tni_p2p`: single thread, 4 TNIs
  kP2pCoarse6,   ///< `6tni_p2p`: single thread, 6 TNIs
  kP2pParallel,  ///< `opt`: thread pool, 6 TNIs
};

const char* variant_name(CommVariant v);

struct SimOptions {
  md::SimConfig config = md::SimConfig::lj_melt();
  util::Int3 cells{5, 5, 5};      ///< fcc cells per axis (4 atoms each)
  util::Int3 rank_grid{1, 1, 1};  ///< MPI-rank decomposition
  CommVariant comm = CommVariant::kP2pParallel;
  std::uint64_t seed = 12345;
  int thermo_every = 10;
  /// Ablation switches (forwarded to the p2p engine).
  bool use_border_bins = true;
  bool balanced_assignment = true;
  /// Fault plan for chaos runs. When enabled() a FaultInjector is
  /// attached to the shared network and the p2p comm layer arms its
  /// reliability protocol; the default (all-clean) plan changes nothing.
  tofu::FaultPlan faults{};
};

/// One thermo sample (identical on every rank after the reduction).
struct ThermoSample {
  int step = 0;
  md::ThermoState state;
};

/// Per-rank outcome of a run.
struct RankResult {
  util::StageTimer stages;
  comm::CommCounters comm;
  util::CommHealthReport health;
  int nlocal_final = 0;
};

/// Whole-job outcome.
struct JobResult {
  std::vector<RankResult> ranks;
  std::vector<ThermoSample> thermo;  ///< global series (rank 0's copy)
  /// Rank-summed reliability counters plus the fabric-side injected
  /// fault totals — what `util::format_health_table` prints.
  util::CommHealthReport health;
  long natoms = 0;
  double volume = 0.0;

  util::StageTimer total_stages() const;
};

/// Runs one MD job: builds the FCC system, decomposes it over
/// rank_grid ranks (each a thread sharing a simulated TofuD network),
/// and integrates `nsteps` with the selected communication variant.
///
/// The LAMMPS verlet loop is followed exactly — initial integrate,
/// neighbor-rebuild decision (`every N check yes|no`, with the global
/// allreduce for `check yes`), exchange/borders/neighbor or forward,
/// pair (with EAM mid-pair comm), reverse, final integrate, thermo.
JobResult run_simulation(const SimOptions& options, int nsteps);

}  // namespace lmp::sim
