#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/address_book.h"
#include "comm/comm_base.h"
#include "comm/health_monitor.h"
#include "md/config.h"
#include "md/thermo.h"
#include "minimpi/world.h"
#include "obs/alloc_tracker.h"
#include "obs/report.h"
#include "sim/integrity.h"
#include "tofu/fault.h"
#include "tofu/link_telemetry.h"
#include "tofu/network.h"
#include "util/stats.h"
#include "util/timer.h"
#include "util/vec3.h"

namespace lmp::sim {

struct SimOptions {
  md::SimConfig config = md::SimConfig::lj_melt();
  util::Int3 cells{5, 5, 5};      ///< fcc cells per axis (4 atoms each)
  util::Int3 rank_grid{1, 1, 1};  ///< MPI-rank decomposition
  /// Communication variant, resolved by name against the CommFactory
  /// catalog (the paper's Fig. 12 ladder: `ref`, `mpi_p2p`,
  /// `utofu_3stage`, `4tni_p2p`, `6tni_p2p`, `opt`). Unknown names make
  /// run_simulation throw with the list of registered variants.
  std::string comm = "opt";
  std::uint64_t seed = 12345;
  int thermo_every = 10;
  /// Ablation switches (forwarded to the p2p engine).
  bool use_border_bins = true;
  bool balanced_assignment = true;
  /// Fault plan for chaos runs. When enabled() a FaultInjector is
  /// attached to the shared network and the p2p comm layer arms its
  /// reliability protocol; the default (all-clean) plan changes nothing.
  tofu::FaultPlan faults{};

  // --- step executor ---------------------------------------------------
  /// `barrier` runs the classic verlet sequence (forward exchange, then
  /// the pair stage); `async` runs each step as a task DAG that overlaps
  /// interior force work with the in-flight ghost exchange. Both use the
  /// same partitioned force evaluation with a canonical reduction order,
  /// so their trajectories are bitwise-identical. Unknown names make
  /// run_simulation throw.
  std::string executor = "barrier";
  /// Worker count of the per-rank DAG pool (async executor only).
  int executor_threads = 2;

  // --- self-healing runtime -------------------------------------------
  /// Cut a checkpoint at the end of every Nth step (0 disables). The
  /// in-memory snapshot always feeds failover rollback; a file is also
  /// written when `checkpoint_path` is set.
  int checkpoint_every = 0;
  /// File prefix for checkpoint emission; the file for step N is
  /// `<prefix>.<N>`, written atomically (tmp + rename). Empty keeps
  /// checkpoints in memory only.
  std::string checkpoint_path;
  /// Resume from this checkpoint file instead of generating the lattice.
  /// Geometry/seed in the file must match the options; `checkpoint_every`
  /// is adopted from the file when the option is 0 and must match when
  /// nonzero (a different schedule breaks bitwise-identical restart).
  std::string restart_file;
  /// Degradation ladder tried in order after the active variant fails.
  /// Empty means `comm::default_failover_chain()`.
  std::vector<std::string> failover_chain;
  /// Soft escalation thresholds, assessed collectively at checkpoint
  /// steps. All-zero (default) means only hard comm errors fail over.
  comm::HealthThresholds health;
  /// Cap on comm-variant failovers; -1 means "rest of the chain".
  int max_failovers = -1;
  /// Keep only the newest K on-disk checkpoints under `checkpoint_path`
  /// (0 = keep everything). Pruned after each successful write.
  int checkpoint_keep = 0;

  // --- silent-corruption guards ---------------------------------------
  /// Cadenced NaN/box/momentum/energy sentinels with an allreduce'd
  /// verdict; a tripped guard rolls back to the last good checkpoint and
  /// recomputes. See IntegrityOptions.
  IntegrityOptions integrity;

  // --- live telemetry ---------------------------------------------------
  /// Step-progress hook for the telemetry sampler: when set, rank 0
  /// stores the just-completed step number here (relaxed) at the end of
  /// every step. One atomic store per step on one rank — the sampler
  /// thread delta-reads it; nothing on the hot path ever locks. The
  /// pointee must outlive the run.
  std::atomic<std::int64_t>* progress = nullptr;

  // --- steady-state zero-alloc guard ------------------------------------
  /// When set, rank 0 delta-reads the process-wide alloc counter after
  /// every step (two relaxed loads — the sample itself allocates
  /// nothing) and the run fails the guard if any step past the warmup
  /// window allocated. The per-scope attribution of the post-warmup
  /// window lands in JobResult::alloc_guard. Requires LMP_ALLOC_TRACE;
  /// without it the guard reports tracker_available=false and passes.
  bool alloc_guard = false;
  /// Steps to ignore before the zero-alloc window opens; negative picks
  /// the default of nsteps / 2.
  int alloc_guard_warmup = -1;
};

/// One thermo sample (identical on every rank after the reduction).
struct ThermoSample {
  int step = 0;
  md::ThermoState state;
};

/// Final state of one atom, identified by its global tag. The job-level
/// list is sorted by tag, so two runs of the same system are comparable
/// atom-by-atom regardless of how ranks ordered them locally — the
/// cross-variant golden test compares these bitwise.
struct AtomState {
  std::int64_t tag = 0;
  util::Vec3 pos;
  util::Vec3 vel;
};

/// Per-rank outcome of a run.
struct RankResult {
  util::StageTimer stages;
  comm::CommCounters comm;
  util::CommHealthReport health;
  int nlocal_final = 0;
  std::vector<AtomState> atoms;  ///< final owned atoms (local order)
};

/// Whole-job outcome.
struct JobResult {
  std::vector<RankResult> ranks;
  std::vector<ThermoSample> thermo;  ///< global series (rank 0's copy)
  std::vector<AtomState> atoms;      ///< whole system, sorted by tag
  /// Rank-summed reliability counters plus the fabric-side injected
  /// fault totals — what `util::format_health_table` prints.
  util::CommHealthReport health;
  long natoms = 0;
  double volume = 0.0;
  /// Step the (final) attempt resumed from: 0 for a fresh start, the
  /// checkpoint step for restarts and post-failover attempts.
  int restart_step = 0;
  /// Variant that actually finished the run — differs from
  /// SimOptions::comm when the degradation ladder was walked.
  std::string final_comm;
  /// Fabric link-utilization totals, accumulated over every attempt's
  /// network (empty when metrics collection was off).
  tofu::FabricSnapshot fabric;
  /// Steady-state zero-alloc verdict for the final attempt (enabled
  /// only when SimOptions::alloc_guard was set).
  obs::AllocGuardReport alloc_guard;

  util::StageTimer total_stages() const;
};

/// Runs one MD job: builds the FCC system, decomposes it over
/// rank_grid ranks (each a thread sharing a simulated TofuD network),
/// and integrates `nsteps` with the selected communication variant.
///
/// The LAMMPS verlet loop is followed exactly — initial integrate,
/// neighbor-rebuild decision (`every N check yes|no`, with the global
/// allreduce for `check yes`), exchange/borders/neighbor or forward,
/// pair (with EAM mid-pair comm), reverse, final integrate, thermo.
///
/// Self-healing: when `checkpoint_every` is set, each checkpoint step
/// forces a neighbor rebuild and snapshots owned atoms + thermo (and
/// writes `<checkpoint_path>.<step>` if a path is given). A hard comm
/// error (timeout, severed route, fabric abort) or a tripped health
/// threshold tears the job down, rolls back to the last checkpoint, and
/// rebuilds on the next variant of the failover chain; every hop is
/// recorded as an EscalationEvent in the returned health report. The
/// chain running dry rethrows the final failure as std::runtime_error.
JobResult run_simulation(const SimOptions& options, int nsteps);

/// Distill a finished job into the machine-readable run report: config
/// echo, stage breakdown (seconds + percent over one hoisted total),
/// health counters, escalation timeline, first/last thermo samples. The
/// metrics section is appended by RunReport::to_json at write time.
obs::RunReport build_run_report(const SimOptions& options, int nsteps,
                                const JobResult& result);

}  // namespace lmp::sim
