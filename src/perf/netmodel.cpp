#include "perf/netmodel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lmp::perf {

namespace {
Calibration g_default;
}

const Calibration& default_calibration() { return g_default; }

CommConfig CommConfig::ref_mpi() {
  CommConfig c;
  c.pattern = PatternKind::kThreeStage;
  c.api = Api::kMpi;
  c.ntnis = 1;
  c.comm_threads = 1;
  c.runtime = Runtime::kOpenMp;
  return c;
}

CommConfig CommConfig::mpi_p2p() {
  CommConfig c;
  c.pattern = PatternKind::kP2p;
  c.api = Api::kMpi;
  c.ntnis = 1;
  c.comm_threads = 1;
  c.runtime = Runtime::kOpenMp;
  return c;
}

CommConfig CommConfig::utofu_3stage() {
  CommConfig c;
  c.pattern = PatternKind::kThreeStage;
  c.api = Api::kUtofu;
  c.ntnis = 1;
  c.comm_threads = 1;
  c.runtime = Runtime::kOpenMp;
  c.direct_write = false;
  return c;
}

CommConfig CommConfig::p2p_4tni() {
  CommConfig c;
  c.pattern = PatternKind::kP2p;
  c.api = Api::kUtofu;
  c.ntnis = 1;  // one exclusive TNI per rank; node uses 4 (Sec. 3.2)
  c.comm_threads = 1;
  c.runtime = Runtime::kOpenMp;
  c.direct_write = true;
  return c;
}

CommConfig CommConfig::p2p_6tni() {
  CommConfig c;
  c.pattern = PatternKind::kP2p;
  c.api = Api::kUtofu;
  c.ntnis = 6;  // all six TNIs, still a single thread
  c.comm_threads = 1;
  c.runtime = Runtime::kOpenMp;
  c.direct_write = true;
  return c;
}

CommConfig CommConfig::p2p_parallel() {
  CommConfig c;
  c.pattern = PatternKind::kP2p;
  c.api = Api::kUtofu;
  c.ntnis = 6;
  c.comm_threads = 6;  // one pool thread per TNI (Sec. 3.3)
  c.runtime = Runtime::kPool;
  c.direct_write = true;
  return c;
}

double NetModel::t_inj(Api api) const {
  return api == Api::kMpi ? cal_.t_inj_mpi : cal_.t_inj_utofu;
}

double NetModel::t_recv(Api api) const {
  return api == Api::kMpi ? cal_.t_recv_mpi : cal_.t_recv_utofu;
}

double NetModel::transit(double bytes, int hops) const {
  return cal_.t_base_latency + (hops > 1 ? (hops - 1) * cal_.t_hop : 0.0) +
         bytes / cal_.link_bw;
}

double NetModel::message_time(Api api, double bytes, int hops) const {
  return t_inj(api) + transit(bytes, hops) + t_recv(api);
}

double NetModel::exchange_time(const CommConfig& cfg,
                               std::span<const MsgSpec> msgs,
                               double extra_recv_bytes_factor) const {
  // How many ranks share each physical TNI. 4 ranks each binding one
  // private TNI: no sharing. 4 ranks each spreading over all 6: 4-way.
  const double share =
      std::max(1.0, static_cast<double>(cfg.ranks_per_node) * cfg.ntnis / 6.0);
  const int nth = cfg.comm_threads;
  const int ntni = std::max(1, cfg.ntnis);
  const bool multiplexed = cfg.comm_threads == 1 && ntni > 1;

  // Expand classes into individual messages.
  struct Msg {
    double bytes;
    int hops;
    int group;  ///< 3-stage sub-stage (barrier between groups) or 0
  };
  std::vector<Msg> all;
  int group = 0;
  for (const MsgSpec& spec : msgs) {
    for (int k = 0; k < spec.count; ++k) all.push_back({spec.bytes, spec.hops, group});
    if (cfg.pattern == PatternKind::kThreeStage) ++group;
  }
  const int ngroups = cfg.pattern == PatternKind::kThreeStage
                          ? group
                          : 1;

  std::vector<double> thr(static_cast<std::size_t>(nth), 0.0);
  std::vector<double> tni(static_cast<std::size_t>(ntni), 0.0);
  double clock = 0.0;

  for (int g = 0; g < ngroups; ++g) {
    for (auto& t : thr) t = std::max(t, clock);

    // Larger messages first on the least-loaded thread (the Fig. 10
    // balancer); hops add a latency-oriented tiebreak.
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i].group == g || ngroups == 1) idx.push_back(i);
    }
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return all[a].bytes + 256.0 * all[a].hops >
             all[b].bytes + 256.0 * all[b].hops;
    });

    std::vector<double> arrival;
    std::vector<std::size_t> marr;
    int rr_tni = 0;
    for (const std::size_t i : idx) {
      const Msg& m = all[i];
      // Thread choice: least available time (work-conserving pool).
      const auto th = static_cast<std::size_t>(
          std::min_element(thr.begin(), thr.end()) - thr.begin());
      double cpu = t_inj(cfg.api) + m.bytes * cal_.t_pack_per_byte;
      if (multiplexed) cpu += cal_.t_vcq_switch;
      const double start = thr[th];
      thr[th] = start + cpu;

      const auto k = static_cast<std::size_t>(nth > 1 ? th % ntni : rr_tni++ % ntni);
      const double occupancy =
          std::max(cal_.t_tni_occupancy, m.bytes / cal_.link_bw) * share;
      const double entry = std::max(thr[th], tni[k]);
      tni[k] = entry + occupancy;

      double arr = tni[k] + cal_.t_base_latency +
                   (m.hops > 1 ? (m.hops - 1) * cal_.t_hop : 0.0);
      if (cfg.api == Api::kMpi && m.bytes > cal_.mpi_eager_bytes) {
        // Rendezvous handshake: one extra round trip before the payload.
        arr += 2.0 * (cal_.t_base_latency + (m.hops - 1) * cal_.t_hop);
      }
      arrival.push_back(arr);
      marr.push_back(i);
    }

    // Receive side (symmetric mirror): the same threads drain the same
    // message set arriving on the same schedule.
    double end = clock;
    for (std::size_t j = 0; j < arrival.size(); ++j) {
      const Msg& m = all[marr[j]];
      const auto th = static_cast<std::size_t>(
          std::min_element(thr.begin(), thr.end()) - thr.begin());
      double cpu = t_recv(cfg.api);
      if (!cfg.direct_write) {
        cpu += m.bytes * extra_recv_bytes_factor * cal_.t_pack_per_byte;
      }
      const double done = std::max(arrival[j], thr[th]) + cpu;
      thr[th] = done;
      end = std::max(end, done);
    }
    for (const double t : thr) end = std::max(end, t);
    clock = end;
  }

  if (cfg.pattern == PatternKind::kThreeStage && ngroups > 1) {
    clock += cal_.t_stage_barrier * (ngroups - 1);
  }
  if (cfg.pattern == PatternKind::kP2p) {
    const double count = static_cast<double>(all.size());
    clock += cal_.t_p2p_poll_quad * count * count;
  }
  // Parallel-region launch cost for multi-threaded communication.
  if (cfg.comm_threads > 1) {
    clock += cfg.runtime == Runtime::kPool ? cal_.pool_region_overhead
                                           : cal_.omp_region_overhead;
  }
  // Dynamic (non-pre-registered) RDMA pays registration on growth; we
  // charge the amortized per-exchange cost for the ablation baseline.
  if (cfg.dynamic_registration) {
    clock += cal_.t_reg_per_call;
  }
  return clock;
}

double NetModel::message_rate(Api api, double bytes, int threads, int ntnis,
                              int ranks_per_node) const {
  if (threads < 1 || ntnis < 1) throw std::invalid_argument("bad rate config");
  const int node_threads = threads * ranks_per_node;
  // 4 ranks * (>=6 TNIs each) oversubscribes the 6 physical TNIs; 4
  // ranks * 1 private TNI uses 4 of them.
  const int node_tnis = std::min(6, ntnis * ranks_per_node);
  const bool multiplexed = threads < ntnis;

  double cpu = t_inj(api) + bytes * cal_.t_pack_per_byte;
  if (multiplexed) cpu += cal_.t_vcq_switch;

  const double cpu_rate = node_threads / cpu;
  const double tni_rate =
      node_tnis / std::max(cal_.t_tni_occupancy, bytes / cal_.link_bw);
  return std::min(cpu_rate, tni_rate);
}

double NetModel::allreduce_time(long ranks) const {
  if (ranks <= 1) return 0.0;
  const double levels = std::ceil(std::log2(static_cast<double>(ranks)));
  return cal_.t_allreduce_per_level * levels;
}

}  // namespace lmp::perf
