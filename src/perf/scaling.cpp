#include "perf/scaling.h"

namespace lmp::perf {

double ScalingModel::perf_per_day(double step_seconds, double dt) {
  const double steps_per_day = 86400.0 / step_seconds;
  return steps_per_day * dt;
}

Workload ScalingModel::workload(PotKind pot, double natoms, long nodes) const {
  return pot == PotKind::kLj ? Workload::lj(natoms, nodes)
                             : Workload::eam(natoms, nodes);
}

std::vector<ScalingPoint> ScalingModel::strong_scaling(
    PotKind pot, double natoms, std::span<const long> nodes) const {
  std::vector<ScalingPoint> out;
  out.reserve(nodes.size());
  const CommConfig origin_cfg = CommConfig::ref_mpi();
  const CommConfig opt_cfg = CommConfig::p2p_parallel();

  for (const long n : nodes) {
    const Workload w = workload(pot, natoms, n);
    ScalingPoint p;
    p.nodes = n;
    p.origin = model_.step_time(w, origin_cfg);
    p.opt = model_.step_time(w, opt_cfg);
    p.speedup = p.origin.total() / p.opt.total();
    p.perf_origin = perf_per_day(p.origin.total(), w.dt);
    p.perf_opt = perf_per_day(p.opt.total(), w.dt);
    out.push_back(p);
  }
  // Parallel efficiency vs the first point: eff = (T1 * N1) / (TN * N).
  if (!out.empty()) {
    const double base_opt = out.front().opt.total() * out.front().nodes;
    const double base_origin = out.front().origin.total() * out.front().nodes;
    for (auto& p : out) {
      p.efficiency_opt = base_opt / (p.opt.total() * p.nodes);
      p.efficiency_origin = base_origin / (p.origin.total() * p.nodes);
    }
  }
  return out;
}

std::vector<WeakPoint> ScalingModel::weak_scaling(
    PotKind pot, double atoms_per_core, std::span<const long> nodes) const {
  std::vector<WeakPoint> out;
  out.reserve(nodes.size());
  const CommConfig opt_cfg = CommConfig::p2p_parallel();
  for (const long n : nodes) {
    const double natoms = atoms_per_core * 48.0 * static_cast<double>(n);
    const Workload w = workload(pot, natoms, n);
    WeakPoint p;
    p.nodes = n;
    p.natoms = natoms;
    p.opt = model_.step_time(w, opt_cfg);
    p.atom_steps_per_sec = natoms / p.opt.total();
    out.push_back(p);
  }
  return out;
}

}  // namespace lmp::perf
