#include "perf/netsim.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "comm/directions.h"
#include "geom/ghost_algebra.h"
#include "perf/des.h"
#include "util/stats.h"

namespace lmp::perf {

NetworkSimulator::NetworkSimulator(const Calibration& cal, long nodes)
    : cal_(cal), topo_(tofu::Topology::for_nodes(nodes)) {
  // MD node grid filling the allocation exactly (Fig. 3's folding), then
  // 4 ranks per node folded 2x2x1 — the paper's rank placement.
  node_grid_ = {2 * topo_.shape().size_of(tofu::Axis::kX),
                3 * topo_.shape().size_of(tofu::Axis::kY),
                2 * topo_.shape().size_of(tofu::Axis::kZ)};
  node_map_ = topo_.map_md_grid(node_grid_);
  rank_grid_ = {2 * node_grid_.x, 2 * node_grid_.y, node_grid_.z};
}

long NetworkSimulator::node_of_rank(int rank) const {
  const int rx = rank % rank_grid_.x;
  const int ry = (rank / rank_grid_.x) % rank_grid_.y;
  const int rz = rank / (rank_grid_.x * rank_grid_.y);
  const int nx = rx / 2;
  const int ny = ry / 2;
  const int nz = rz;
  return node_map_[static_cast<std::size_t>(nx) +
                   static_cast<std::size_t>(node_grid_.x) *
                       (ny + static_cast<std::size_t>(node_grid_.y) * nz)];
}

namespace {

/// Directed link identity: (node, axis, direction).
long link_key(long node, int axis, int positive) {
  return node * 16 + axis * 2 + positive;
}

/// Dimension-order route between two nodes: the sequence of directed
/// links traversed (torus axes take the shorter way around).
void route(const tofu::Topology& topo, long u, long v, std::vector<long>& out) {
  out.clear();
  if (u == v) return;
  tofu::TofuCoord cu = topo.coord_of(u);
  const tofu::TofuCoord cv = topo.coord_of(v);
  for (int ax = 0; ax < tofu::kAxisCount; ++ax) {
    const auto axis = static_cast<tofu::Axis>(ax);
    const int n = topo.shape().size_of(axis);
    while (cu.v[ax] != cv.v[ax]) {
      int d = cv.v[ax] - cu.v[ax];
      if (topo.shape().is_torus(axis) && std::abs(d) > n / 2) {
        d = d > 0 ? d - n : d + n;
      }
      const int step = d > 0 ? 1 : -1;
      out.push_back(link_key(topo.node_of(cu), ax, step > 0 ? 1 : 0));
      cu.v[ax] = ((cu.v[ax] + step) % n + n) % n;
    }
  }
}

struct SimMessage {
  int src_rank;
  int dst_rank;
  double bytes;
  std::vector<long> links;
};

}  // namespace

NetSimResult NetworkSimulator::simulate_exchange(const Workload& w,
                                                 const CommConfig& cfg,
                                                 double bytes_per_atom) const {
  const long nranks = ranks();
  const geom::Decomposition decomp(
      rank_grid_, geom::Box{{0, 0, 0},
                            {static_cast<double>(rank_grid_.x),
                             static_cast<double>(rank_grid_.y),
                             static_cast<double>(rank_grid_.z)}});

  // Per-direction message bytes from the ghost algebra.
  const double a = w.sub_box_side();
  const double r = w.cutoff + w.skin;
  auto bytes_of_dir = [&](int dir) {
    const int order = comm::dir_order(dir);
    const double vol =
        order == 1 ? a * a * r : (order == 2 ? a * r * r : r * r * r);
    return vol * w.density * bytes_per_atom;
  };

  // Stage groups: p2p = one group of 13/26 messages; 3-stage = three
  // barrier-separated groups of 2 (sizes per Fig. 4's carried ghosts).
  struct Group {
    std::vector<SimMessage> msgs;
  };
  std::vector<Group> groups;
  std::vector<long> scratch_route;

  if (cfg.pattern == PatternKind::kP2p) {
    groups.emplace_back();
    for (int rank = 0; rank < nranks; ++rank) {
      const util::Int3 me = decomp.coord_of(rank);
      const long my_node = node_of_rank(rank);
      for (int d = 0; d < comm::kNumDirs; ++d) {
        if (w.newton && comm::is_upper(d)) continue;  // send lower half
        const int peer = decomp.rank_of(me + comm::all_dirs()[static_cast<std::size_t>(d)]);
        SimMessage m;
        m.src_rank = rank;
        m.dst_rank = peer;
        m.bytes = bytes_of_dir(d);
        route(topo_, my_node, node_of_rank(peer), scratch_route);
        m.links = scratch_route;
        groups.back().msgs.push_back(std::move(m));
      }
    }
  } else {
    const geom::GhostAlgebra alg{a, r};
    const auto classes = alg.three_stage();
    for (int stage = 0; stage < 3; ++stage) {
      groups.emplace_back();
      const double bytes =
          classes[static_cast<std::size_t>(stage)].volume * w.density *
          bytes_per_atom;
      for (int rank = 0; rank < nranks; ++rank) {
        const util::Int3 me = decomp.coord_of(rank);
        const long my_node = node_of_rank(rank);
        for (const int step : {-1, +1}) {
          util::Int3 to = me;
          to[static_cast<std::size_t>(stage)] += step;
          SimMessage m;
          m.src_rank = rank;
          m.dst_rank = decomp.rank_of(to);
          m.bytes = bytes;
          route(topo_, my_node, node_of_rank(m.dst_rank), scratch_route);
          m.links = scratch_route;
          groups.back().msgs.push_back(std::move(m));
        }
      }
    }
  }

  // Resources. TNIs are per node and shared by the node's 4 ranks
  // according to the variant's binding (1 exclusive TNI per rank for the
  // 4-TNI binding, all 6 shared otherwise).
  std::unordered_map<long, Resource> links;
  std::vector<Resource> tnis(static_cast<std::size_t>(nodes()) * 6);
  const int nth = cfg.comm_threads;
  std::vector<Resource> threads(static_cast<std::size_t>(nranks) * nth);
  const bool multiplexed = cfg.comm_threads == 1 && cfg.ntnis > 1;

  auto tni_of = [&](int rank, int msg_index) -> Resource& {
    const long node = node_of_rank(rank);
    int k;
    if (cfg.ntnis == 1) {
      k = rank % 4;  // exclusive TNI per rank (4-TNI binding, or MPI)
    } else {
      k = msg_index % 6;  // spread across all six
    }
    return tnis[static_cast<std::size_t>(node) * 6 + static_cast<std::size_t>(k)];
  };

  NetSimResult out;
  std::vector<double> mean_parts;
  double total_mean = 0;
  std::vector<double> completion(static_cast<std::size_t>(nranks), 0.0);
  double clock_base = 0.0;

  for (const Group& group : groups) {
    // Arrival bookkeeping per destination rank.
    std::vector<std::vector<double>> arrivals(static_cast<std::size_t>(nranks));
    EventQueue queue;
    // The per-message `advance` continuations capture their own shared_ptr
    // (they must outlive every hop event); collect them so the
    // self-reference cycle can be broken once the queue has drained.
    std::vector<std::shared_ptr<std::function<void(std::size_t, double)>>>
        continuations;

    // Injection: per source rank, larger messages first to its least
    // loaded thread (the Fig. 10 balancer), then TNI, then the route.
    std::vector<std::vector<const SimMessage*>> per_rank(
        static_cast<std::size_t>(nranks));
    for (const SimMessage& m : group.msgs) {
      per_rank[static_cast<std::size_t>(m.src_rank)].push_back(&m);
    }
    for (int rank = 0; rank < nranks; ++rank) {
      auto& mine = per_rank[static_cast<std::size_t>(rank)];
      std::stable_sort(mine.begin(), mine.end(),
                       [](const SimMessage* x, const SimMessage* y) {
                         return x->bytes > y->bytes;
                       });
      int idx = 0;
      for (const SimMessage* m : mine) {
        // Thread claim (injection software cost).
        auto th_begin = threads.begin() + static_cast<std::ptrdiff_t>(rank) * nth;
        auto th = std::min_element(
            th_begin, th_begin + nth, [](const Resource& x, const Resource& y) {
              return x.free_at() < y.free_at();
            });
        double cpu = (cfg.api == Api::kMpi ? cal_.t_inj_mpi : cal_.t_inj_utofu) +
                     m->bytes * cal_.t_pack_per_byte;
        if (multiplexed) cpu += cal_.t_vcq_switch;
        const Resource::Grant g = th->claim(clock_base, cpu);

        // TNI DMA occupancy.
        const double occ = std::max(cal_.t_tni_occupancy, m->bytes / cal_.link_bw);
        const Resource::Grant t = tni_of(rank, idx++).claim(g.end, occ);

        // Route hop-by-hop as events (store-and-forward serialization).
        const SimMessage* msg = m;
        auto advance = std::make_shared<std::function<void(std::size_t, double)>>();
        continuations.push_back(advance);
        *advance = [&, msg, advance](std::size_t hop, double ready) {
          if (hop == msg->links.size()) {
            const double recv =
                cfg.api == Api::kMpi ? cal_.t_recv_mpi : cal_.t_recv_utofu;
            arrivals[static_cast<std::size_t>(msg->dst_rank)].push_back(
                ready + cal_.t_base_latency + recv);
            return;
          }
          Resource& link = links[msg->links[hop]];
          const Resource::Grant lg =
              link.claim(ready, msg->bytes / cal_.link_bw + cal_.t_hop);
          queue.schedule(lg.end,
                         [advance, hop, lg] { (*advance)(hop + 1, lg.end); });
        };
        queue.schedule(t.end, [advance, t] { (*advance)(0, t.end); });
        ++out.messages;
      }
    }
    queue.run();
    for (auto& c : continuations) *c = nullptr;  // break self-capture cycles

    // Per-rank completion of this group: drain arrivals in order.
    double group_max = clock_base;
    double group_sum = 0;
    for (int rank = 0; rank < nranks; ++rank) {
      auto& in = arrivals[static_cast<std::size_t>(rank)];
      std::sort(in.begin(), in.end());
      double done = clock_base;
      for (const double t : in) done = std::max(done, t);
      completion[static_cast<std::size_t>(rank)] = done;
      group_max = std::max(group_max, done);
      group_sum += done - clock_base;
    }
    total_mean += group_sum / static_cast<double>(nranks);
    // Barrier between 3-stage groups: everyone waits for the slowest.
    clock_base = group_max;
  }

  out.mean_completion = total_mean;
  out.max_completion = clock_base;
  {
    std::vector<double> finals = completion;
    out.p99_completion = util::percentile(finals, 99.0);
  }
  out.links_used = static_cast<long>(links.size());
  double busiest = 0;
  for (const auto& [key, res] : links) {
    (void)key;
    busiest = std::max(busiest, res.busy_time());
  }
  out.max_link_utilization = clock_base > 0 ? busiest / clock_base : 0.0;
  return out;
}

}  // namespace lmp::perf
