#pragma once

namespace lmp::perf {

/// All tunable constants of the performance model, each annotated with
/// the anchor it was calibrated against. Absolute times on the authors'
/// Fugaku testbed are not reproducible on other hardware; these values
/// are chosen so the model reproduces the paper's *ratios and shapes*
/// (speedups, % reductions, crossovers). EXPERIMENTS.md records
/// paper-vs-model numbers for every figure/table.
struct Calibration {
  // --- network software costs (seconds per message) -------------------
  /// MPI per-message injection overhead T_inj: the heavy software stack
  /// (matching, fragmentation) the paper blames for naive MPI-p2p losing
  /// to MPI-3-stage (Fig. 6); magnitude per Zambre et al. [33].
  double t_inj_mpi = 1.70e-6;
  /// uTofu descriptor-write injection overhead (paper: "low communication
  /// overhead and small T_inj").
  double t_inj_utofu = 0.22e-6;
  /// Receive-side software: MPI tag matching + copy-out vs MRQ poll.
  double t_recv_mpi = 1.20e-6;
  double t_recv_utofu = 0.16e-6;
  /// MPI rendezvous threshold and handshake (eager beyond this needs an
  /// RTS/CTS round trip).
  double mpi_eager_bytes = 16 * 1024.0;

  // --- TofuD hardware (paper Sec. 2.2 / [2]) ---------------------------
  double t_base_latency = 0.49e-6;  ///< minimal one-hop put latency
  double t_hop = 0.10e-6;           ///< per additional hop
  double link_bw = 6.8e9;           ///< B/s injection bandwidth per TNI
  /// TNI DMA engine occupancy floor per message (limits small-message
  /// rate per TNI; ~5 Mmsg/s per TNI full-machine class).
  double t_tni_occupancy = 0.12e-6;
  /// Extra software cost when one thread multiplexes several VCQs (the
  /// "significant time overhead ... by the software function call" that
  /// makes single-thread 6-TNI slower than 4-TNI, Sec. 4.2).
  double t_vcq_switch = 0.30e-6;

  // --- memory/pack costs ----------------------------------------------
  double t_pack_per_byte = 0.012e-9;  ///< ~80 GB/s effective pack rate
  double t_reg_per_call = 20e-6;      ///< registration syscall (Sec. 3.4)

  // --- threading runtimes (paper Sec. 3.3 micro-measurement) -----------
  double omp_region_overhead = 5.8e-6;
  double pool_region_overhead = 1.1e-6;
  /// Parallel regions executed per step in the pair+modify path (force
  /// loop, EAM passes, integrate halves, packing).
  double regions_per_step_pair = 4.0;
  double regions_per_step_modify = 2.0;

  // --- compute kernels (per core, A64FX-class) --------------------------
  double t_pair_lj = 28e-9;        ///< s per LJ pair interaction
  double t_pair_eam = 300e-9;      ///< s per EAM pair (two passes, three
                                   ///< spline evaluations, divides)
  double t_neigh_pair = 16e-9;     ///< s per candidate pair at rebuild
  double t_peratom_modify = 3.0e-9;
  double t_peratom_ghost = 25.0e-9; ///< per-atom+ghost pair-stage bookkeeping
                                   ///< (force zeroing, list traversal, pack)

  // --- collectives & synchronization ------------------------------------
  /// Allreduce latency coefficient: t = c * log2(ranks) (the EAM
  /// `check yes` cost the paper measures as "Other", Sec. 4.3.1).
  double t_allreduce_per_level = 12.0e-6;
  /// Straggler/system-noise cost per step, grows with machine size:
  /// t_sync = t_noise_base * log2(ranks). LAMMPS' stage timers account
  /// this where the next blocking call sits (we charge it to Modify and
  /// Other, matching the Table 3 pattern).
  double t_noise_base = 1.2e-6;
  /// Inter-stage synchronization of the 3-stage pattern ("an MPI barrier
  /// is mandatory between stages", Sec. 3.1) — charged per extra stage.
  double t_stage_barrier = 0.8e-6;
  /// Completion-queue polling grows superlinearly with in-flight message
  /// count (the paper's "p2p is an n-squared extension", Sec. 4.4):
  /// charged as t * count^2 for p2p exchanges.
  double t_p2p_poll_quad = 1.2e-9;
  /// Communication straggler amplification: at scale, each step's ghost
  /// exchange waits for the slowest neighbor chain, inflating raw
  /// message time by lambda = 1 + comm_noise_per_level * log2(ranks).
  /// Applied to every variant equally (it is a property of the machine),
  /// so the paper's relative comm reductions survive it.
  double comm_noise_per_level = 0.22;

  // --- workload geometry -------------------------------------------------
  int ranks_per_node = 4;
  int threads_per_rank = 12;
};

/// The default calibration used by every bench.
const Calibration& default_calibration();

}  // namespace lmp::perf
