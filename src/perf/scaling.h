#pragma once

#include <span>
#include <vector>

#include "perf/stepmodel.h"

namespace lmp::perf {

/// One node count of a strong-scaling sweep (Fig. 13).
struct ScalingPoint {
  long nodes = 0;
  StepBreakdown origin;
  StepBreakdown opt;
  double speedup = 0;          ///< origin total / opt total
  double perf_origin = 0;      ///< simulated time units per day
  double perf_opt = 0;
  double efficiency_opt = 0;   ///< parallel efficiency vs the first point
  double efficiency_origin = 0;
};

/// One node count of a weak-scaling sweep (Fig. 14).
struct WeakPoint {
  long nodes = 0;
  double natoms = 0;
  double atom_steps_per_sec = 0;  ///< aggregate throughput, opt variant
  StepBreakdown opt;
};

/// Strong/weak scaling series generator over the step model.
class ScalingModel {
 public:
  explicit ScalingModel(const Calibration& cal) : model_(cal) {}

  /// Simulated-time-per-day for a step duration: steps/day * dt.
  static double perf_per_day(double step_seconds, double dt);

  Workload workload(PotKind pot, double natoms, long nodes) const;

  std::vector<ScalingPoint> strong_scaling(PotKind pot, double natoms,
                                           std::span<const long> nodes) const;

  /// `atoms_per_core` fixed (100K LJ / 72K EAM in the paper); 48 compute
  /// cores per node.
  std::vector<WeakPoint> weak_scaling(PotKind pot, double atoms_per_core,
                                      std::span<const long> nodes) const;

  const StepModel& step_model() const { return model_; }

 private:
  StepModel model_;
};

}  // namespace lmp::perf
