#pragma once

#include <span>
#include <vector>

#include "perf/calibration.h"

namespace lmp::perf {

enum class Api { kMpi, kUtofu };
enum class PatternKind { kThreeStage, kP2p };
enum class Runtime { kOpenMp, kPool };

/// One message class of an exchange (mirrors geom::MessageClass but in
/// bytes, already multiplied out per message).
struct MsgSpec {
  double bytes = 0;
  int hops = 1;
  int count = 1;
};

/// Communication-side configuration of a variant (paper Fig. 12 legend).
struct CommConfig {
  PatternKind pattern = PatternKind::kP2p;
  Api api = Api::kUtofu;
  int ntnis = 6;         ///< TNIs the rank's VCQs are spread over
  int comm_threads = 1;  ///< threads driving communication
  int ranks_per_node = 4;
  Runtime runtime = Runtime::kPool;
  /// Receiver writes land directly in the target array (pre-registered
  /// RDMA, Sec. 3.4) — no unpack copy.
  bool direct_write = false;
  /// Dynamic per-growth registration (the non-pre-registered baseline,
  /// ablation only): adds registration cost per exchange.
  bool dynamic_registration = false;

  static CommConfig ref_mpi();        ///< baseline LAMMPS
  static CommConfig mpi_p2p();        ///< naive MPI p2p (Fig. 6)
  static CommConfig utofu_3stage();
  static CommConfig p2p_4tni();
  static CommConfig p2p_6tni();
  static CommConfig p2p_parallel();   ///< the optimized code
};

/// Point-to-point message timing on the modeled TofuD fabric.
class NetModel {
 public:
  explicit NetModel(const Calibration& cal) : cal_(cal) {}

  double t_inj(Api api) const;
  double t_recv(Api api) const;

  /// Wire transit: base latency + per-hop latency + serialization.
  double transit(double bytes, int hops) const;

  /// Full one-way software+wire time for an isolated message (the T_i of
  /// Table 1's last column).
  double message_time(Api api, double bytes, int hops) const;

  /// Duration of one ghost exchange (forward or reverse direction) for a
  /// rank with the given message set — the discrete-event schedule over
  /// the rank's comm threads and TNIs described in DESIGN.md. 3-stage
  /// patterns insert a completion barrier between the three sub-stages.
  double exchange_time(const CommConfig& cfg, std::span<const MsgSpec> msgs,
                       double extra_recv_bytes_factor = 1.0) const;

  /// Message rate (msg/s) of a node issuing back-to-back puts of `bytes`
  /// (Fig. 8): `threads` CPU threads driving VCQs over `ntnis` TNIs with
  /// `ranks_per_node` ranks contending.
  double message_rate(Api api, double bytes, int threads, int ntnis,
                      int ranks_per_node) const;

  /// Allreduce latency over `ranks` ranks (binary-tree model).
  double allreduce_time(long ranks) const;

  const Calibration& calibration() const { return cal_; }

 private:
  Calibration cal_;
};

}  // namespace lmp::perf
