#pragma once

#include <vector>

#include "perf/netmodel.h"
#include "perf/stepmodel.h"
#include "tofu/topology.h"

namespace lmp::perf {

/// Result of a packet-level exchange simulation.
struct NetSimResult {
  double mean_completion = 0;  ///< mean over ranks of "all my messages in"
  double max_completion = 0;   ///< slowest rank — the step's critical path
  double p99_completion = 0;
  long messages = 0;
  long links_used = 0;
  double max_link_utilization = 0;  ///< busiest link busy-time / makespan
  /// Straggler amplification observed by the simulation: max/mean.
  double straggler_factor() const {
    return mean_completion > 0 ? max_completion / mean_completion : 1.0;
  }
};

/// Packet-level discrete-event simulation of one ghost exchange over the
/// *actual* allocated TofuD array: every rank of the job injects its
/// 13/26 p2p messages (or 6 three-stage messages) simultaneously, routed
/// dimension-order over the 6D topology with per-link serialization,
/// per-TNI DMA occupancy, and per-thread injection — the
/// contention-aware counterpart of NetModel::exchange_time's
/// single-rank closed form.
///
/// This is the validation instrument for the model's straggler factor
/// (Calibration::comm_noise_per_level): the closed form multiplies by a
/// calibrated lambda, the simulation *produces* a lambda from first
/// principles of link sharing.
class NetworkSimulator {
 public:
  NetworkSimulator(const Calibration& cal, long nodes);

  long nodes() const { return topo_.nnodes(); }
  long ranks() const { return 4 * topo_.nnodes(); }

  /// Simulate one forward ghost exchange of workload `w` (which supplies
  /// the per-class message sizes) under communication config `cfg`.
  NetSimResult simulate_exchange(const Workload& w, const CommConfig& cfg,
                                 double bytes_per_atom = 24.0) const;

  /// The MD rank grid used (4 ranks per node, folded 2x2x1 into nodes).
  util::Int3 rank_grid() const { return rank_grid_; }

 private:
  long node_of_rank(int rank) const;

  Calibration cal_;
  tofu::Topology topo_;
  util::Int3 node_grid_;
  util::Int3 rank_grid_;
  std::vector<long> node_map_;  ///< MD node-grid index -> tofu node id
};

}  // namespace lmp::perf
