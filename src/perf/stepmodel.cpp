#include "perf/stepmodel.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geom/ghost_algebra.h"

namespace lmp::perf {

Workload Workload::lj(double natoms, long nodes) {
  Workload w;
  w.pot = PotKind::kLj;
  w.natoms = natoms;
  w.nodes = nodes;
  w.cutoff = 2.5;
  w.skin = 0.3;
  w.density = 0.8442;
  w.dt = 0.005;
  w.neigh_every = 20;
  w.neigh_check = false;
  return w;
}

Workload Workload::eam(double natoms, long nodes) {
  Workload w;
  w.pot = PotKind::kEam;
  w.natoms = natoms;
  w.nodes = nodes;
  w.cutoff = 4.95;
  w.skin = 1.0;
  // fcc copper: 4 atoms / (3.615 A)^3.
  w.density = 4.0 / (3.615 * 3.615 * 3.615);
  w.dt = 0.005;
  w.neigh_every = 5;
  w.neigh_check = true;
  return w;
}

long Workload::ranks() const { return nodes * 4; }

double Workload::atoms_per_rank() const {
  return natoms / static_cast<double>(ranks());
}

double Workload::sub_box_side() const {
  return std::cbrt(atoms_per_rank() / density);
}

std::vector<MsgSpec> StepModel::ghost_messages(const Workload& w,
                                               PatternKind pattern,
                                               double bytes_per_atom) const {
  const geom::GhostAlgebra alg{w.sub_box_side(), w.cutoff + w.skin};
  std::vector<MsgSpec> msgs;
  if (pattern == PatternKind::kThreeStage) {
    // Each entry becomes one barrier-separated sub-stage in the exchange
    // schedule; with two shells the chained hop serializes into an extra
    // sub-stage per dimension.
    for (const auto& c : alg.three_stage(w.shells)) {
      for (int s = 0; s < w.shells; ++s) {
        msgs.push_back({geom::GhostAlgebra::bytes(
                            geom::GhostAlgebra::atoms(c.volume, w.density),
                            bytes_per_atom),
                        c.hops, c.count / w.shells});
      }
    }
  } else {
    for (const auto& c : alg.p2p(w.newton, w.shells)) {
      msgs.push_back({geom::GhostAlgebra::bytes(
                          geom::GhostAlgebra::atoms(c.volume, w.density),
                          bytes_per_atom),
                      c.hops, c.count});
    }
  }
  return msgs;
}

double StepModel::exchange_once(const Workload& w, const CommConfig& cfg,
                                double bytes_per_atom) const {
  const std::vector<MsgSpec> msgs =
      ghost_messages(w, cfg.pattern, bytes_per_atom);
  return net_.exchange_time(cfg, msgs);
}

double StepModel::comm_noise(long ranks) const {
  if (ranks <= 1) return 1.0;
  return 1.0 + cal_.comm_noise_per_level * std::log2(static_cast<double>(ranks));
}

double StepModel::pair_interaction_cost(PotKind pot) const {
  return pot == PotKind::kLj ? cal_.t_pair_lj : cal_.t_pair_eam;
}

StepBreakdown StepModel::step_time(const Workload& w,
                                   const CommConfig& cfg) const {
  if (w.nodes < 1 || w.natoms <= 0) throw std::invalid_argument("bad workload");
  const double n = w.atoms_per_rank();
  const double rc_n = w.cutoff + w.skin;
  const int threads = cal_.threads_per_rank;
  const double region =
      cfg.runtime == Runtime::kPool ? cal_.pool_region_overhead
                                    : cal_.omp_region_overhead;
  const long ranks = w.ranks();
  const double noise = cal_.t_noise_base * std::log2(std::max<double>(2, ranks));
  const double lambda = comm_noise(ranks);

  // Rebuild cadence: `check no` rebuilds exactly every N steps; `check
  // yes` rebuilds when displacements exceed half the skin, empirically a
  // few times the check interval.
  const double rebuild_freq =
      w.neigh_check ? 1.0 / (3.0 * w.neigh_every) : 1.0 / w.neigh_every;

  // Neighbor-list length per atom (half list), in the skin-extended
  // sphere.
  const double sphere =
      4.0 / 3.0 * std::numbers::pi * rc_n * rc_n * rc_n * w.density;
  const double list_len = (w.newton ? 0.5 : 1.0) * sphere;

  // Ghost count per rank = shell volume * density.
  const double a = w.sub_box_side();
  const double ghost_atoms =
      ((a + 2 * rc_n) * (a + 2 * rc_n) * (a + 2 * rc_n) - a * a * a) *
      w.density * (w.newton ? 0.5 : 1.0);

  StepBreakdown out;

  // ---- Pair --------------------------------------------------------
  const double pair_compute =
      n * list_len * pair_interaction_cost(w.pot) / threads +
      (n + ghost_atoms) * cal_.t_peratom_ghost;
  out.pair = cal_.regions_per_step_pair * region + pair_compute;
  if (w.pot == PotKind::kEam) {
    // The two mid-pair scalar exchanges (rho reverse-add + fp forward)
    // ride the same comm machinery and are charged to Pair (Sec. 4.3.1).
    out.pair += 2.0 * exchange_once(w, cfg, 8.0) * lambda;
  }

  // ---- Neigh -------------------------------------------------------
  const double cand_pairs = n * list_len * 2.7;  // bin-scan candidates
  out.neigh = rebuild_freq * (cand_pairs * cal_.t_neigh_pair / threads +
                              (n + ghost_atoms) * cal_.t_peratom_ghost);

  // ---- Comm --------------------------------------------------------
  const double forward = exchange_once(w, cfg, w.bytes_per_atom);
  const double reverse = w.newton ? forward : 0.0;
  // Border: heavier payload (position + tag) plus the offset piggyback
  // round; exchange: a thin migration message set.
  const double border = exchange_once(w, cfg, 32.0) +
                        (cfg.pattern == PatternKind::kP2p
                             ? net_.message_time(cfg.api, 8.0, 1)
                             : 0.0);
  const double migration = exchange_once(w, cfg, 56.0 * 0.05);
  out.comm =
      lambda * (forward + reverse + rebuild_freq * (border + migration));
  if (cfg.dynamic_registration) {
    out.comm += rebuild_freq * 26.0 * cal_.t_reg_per_call;
  }

  // ---- Modify ------------------------------------------------------
  out.modify = cal_.regions_per_step_modify * region +
               2.0 * n * cal_.t_peratom_modify / threads + 0.3 * noise;

  // ---- Other -------------------------------------------------------
  out.other = 5e-6 + noise;
  if (w.neigh_check) {
    // The `check yes` displacement allreduce fires every N steps.
    out.other += net_.allreduce_time(ranks) / w.neigh_every;
  }
  return out;
}

}  // namespace lmp::perf
