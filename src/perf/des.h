#pragma once

#include <functional>
#include <queue>
#include <vector>

namespace lmp::perf {

/// A minimal discrete-event engine: schedule (time, action) pairs,
/// execute in time order. Actions may schedule further events. Ties are
/// broken by insertion order so simulations are fully deterministic.
class EventQueue {
 public:
  using Action = std::function<void()>;

  void schedule(double time, Action action) {
    heap_.push(Event{time, seq_++, std::move(action)});
  }

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t executed() const { return executed_; }

  /// Run until the queue drains; returns the time of the last event.
  double run() {
    while (!heap_.empty()) {
      // Moving out of a priority_queue requires a const_cast dance; take
      // a copy of the action instead (they are small closures).
      const Event& top = heap_.top();
      now_ = top.time;
      Action action = top.action;
      heap_.pop();
      ++executed_;
      action();
    }
    return now_;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
  std::size_t executed_ = 0;
};

/// A serially-reusable resource (a TNI DMA engine, a network link, a CPU
/// thread): claim() returns the interval actually granted, pushing the
/// start past both the requested time and the resource's availability.
class Resource {
 public:
  struct Grant {
    double start;
    double end;
  };

  Grant claim(double ready, double duration) {
    const double start = ready > free_at_ ? ready : free_at_;
    free_at_ = start + duration;
    busy_ += duration;
    return {start, free_at_};
  }

  double free_at() const { return free_at_; }
  double busy_time() const { return busy_; }

 private:
  double free_at_ = 0.0;
  double busy_ = 0.0;
};

}  // namespace lmp::perf
