#pragma once

#include <vector>

#include "perf/netmodel.h"
#include "util/timer.h"

namespace lmp::perf {

enum class PotKind { kLj, kEam };

/// A modeled workload: one row of the paper's evaluation matrix.
struct Workload {
  PotKind pot = PotKind::kLj;
  double natoms = 0;
  long nodes = 0;

  // Physics/config parameters (Table 2), in the potential's native units.
  double cutoff = 2.5;
  double skin = 0.3;
  double density = 0.8442;  ///< number density in native length^3
  double dt = 0.005;
  int neigh_every = 20;
  bool neigh_check = false;
  bool newton = true;
  /// Neighbor-shell count: 1 normally; 2 models the long-cutoff regime
  /// of Fig. 15 (62/124 neighbors).
  int shells = 1;
  /// Bytes per atom per forward/reverse message (3 doubles).
  double bytes_per_atom = 24.0;

  static Workload lj(double natoms, long nodes);
  static Workload eam(double natoms, long nodes);

  long ranks() const;
  double atoms_per_rank() const;
  /// Cubic sub-box side in native units.
  double sub_box_side() const;
};

/// Per-step modeled stage times (seconds), LAMMPS timer categories.
struct StepBreakdown {
  double pair = 0;
  double neigh = 0;
  double comm = 0;
  double modify = 0;
  double other = 0;

  double total() const { return pair + neigh + comm + modify + other; }
  double percent(double stage) const { return 100.0 * stage / total(); }
};

/// Full-timestep performance model: combines the network exchange model
/// with calibrated compute-kernel costs to produce the per-stage
/// breakdown for any (workload, comm variant, machine size) point — the
/// generator behind Figs. 12-15 and Table 3.
class StepModel {
 public:
  explicit StepModel(const Calibration& cal) : cal_(cal), net_(cal) {}

  /// Ghost-exchange message classes for one direction of communication.
  std::vector<MsgSpec> ghost_messages(const Workload& w, PatternKind pattern,
                                      double bytes_per_atom) const;

  /// Duration of one forward (or reverse) ghost exchange.
  double exchange_once(const Workload& w, const CommConfig& cfg,
                       double bytes_per_atom) const;

  /// Straggler amplification applied to communication at `ranks` scale.
  double comm_noise(long ranks) const;

  /// The full per-step breakdown.
  StepBreakdown step_time(const Workload& w, const CommConfig& cfg) const;

  const NetModel& net() const { return net_; }
  const Calibration& calibration() const { return cal_; }

 private:
  double pair_interaction_cost(PotKind pot) const;

  Calibration cal_;
  NetModel net_;
};

}  // namespace lmp::perf
