#include "minimpi/runtime.h"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace lmp::minimpi {

void run_ranks(int nranks, const std::function<void(int)>& fn) {
  if (nranks < 1) throw std::invalid_argument("nranks must be >= 1");
  if (nranks == 1) {
    fn(0);  // keep single-rank runs trivially debuggable
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::exception_ptr first_error;
  std::mutex error_mu;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace lmp::minimpi
