#pragma once

#include <functional>

namespace lmp::minimpi {

/// Run `fn(rank)` on `nranks` threads and join them all. The simulated
/// job's shared objects (World, tofu::Network, result sinks) are captured
/// by the callable. If any rank throws, the first exception is rethrown
/// on the caller's thread after every rank has been joined.
void run_ranks(int nranks, const std::function<void(int)>& fn);

}  // namespace lmp::minimpi
