#include "minimpi/world.h"

#include <algorithm>
#include <stdexcept>

namespace lmp::minimpi {

World::World(int nranks) : nranks_(nranks) {
  if (nranks < 1) throw std::invalid_argument("world size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
  red_d_.resize(static_cast<std::size_t>(nranks));
  red_i_.resize(static_cast<std::size_t>(nranks));
  red_b_.resize(static_cast<std::size_t>(nranks));
  gather_.resize(static_cast<std::size_t>(nranks));
}

void World::throw_poisoned() const {
  std::lock_guard lock(poison_mu_);
  throw PoisonedError("world poisoned: " + poison_reason_);
}

void World::poison(const std::string& reason) {
  {
    std::lock_guard lock(poison_mu_);
    if (poison_reason_.empty()) poison_reason_ = reason;
  }
  poisoned_.store(true, std::memory_order_release);
  // Wake every sleeper under its own lock so the store cannot race past
  // a waiter that checked the flag and is about to block.
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box->mu);
    box->cv.notify_all();
  }
  std::lock_guard lock(barrier_mu_);
  barrier_cv_.notify_all();
}

void World::send(int src, int dst, int tag, std::span<const std::byte> payload) {
  if (dst < 0 || dst >= nranks_) throw std::out_of_range("send dst");
  if (poisoned()) throw_poisoned();
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lock(box.mu);
    box.queue.push_back({src, tag, {payload.begin(), payload.end()}});
  }
  messages_.fetch_add(1, std::memory_order_relaxed);
  box.cv.notify_all();
}

std::vector<std::byte> World::recv(int dst, int src, int tag, int* actual_src) {
  if (dst < 0 || dst >= nranks_) throw std::out_of_range("recv dst");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock lock(box.mu);
  for (;;) {
    if (poisoned()) throw_poisoned();
    const auto it = std::find_if(box.queue.begin(), box.queue.end(),
                                 [&](const Envelope& e) {
                                   return e.tag == tag &&
                                          (src == kAnySource || e.src == src);
                                 });
    if (it != box.queue.end()) {
      std::vector<std::byte> payload = std::move(it->payload);
      if (actual_src != nullptr) *actual_src = it->src;
      box.queue.erase(it);
      return payload;
    }
    box.cv.wait(lock);
  }
}

std::vector<std::byte> World::sendrecv(int me, int dst, int src, int tag,
                                       std::span<const std::byte> payload) {
  // Sends are buffered (eager), so send-then-recv cannot deadlock.
  send(me, dst, tag, payload);
  return recv(me, src, tag);
}

void World::barrier(int rank) {
  (void)rank;
  std::unique_lock lock(barrier_mu_);
  if (poisoned()) throw_poisoned();
  const bool my_sense = barrier_sense_;
  if (++barrier_waiting_ == nranks_) {
    barrier_waiting_ = 0;
    barrier_sense_ = !barrier_sense_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(
        lock, [&] { return barrier_sense_ != my_sense || poisoned(); });
    if (barrier_sense_ == my_sense) throw_poisoned();
  }
}

template <typename T>
T World::allreduce_impl(int rank, T v,
                        const std::function<T(const std::vector<T>&)>& fold,
                        std::vector<T>& slots) {
  slots[static_cast<std::size_t>(rank)] = v;
  barrier(rank);
  const T result = fold(slots);
  barrier(rank);  // nobody re-deposits until everyone has read
  return result;
}

double World::allreduce_sum(int rank, double v) {
  return allreduce_impl<double>(rank, v,
                                [](const std::vector<double>& s) {
                                  double acc = 0;
                                  for (double x : s) acc += x;
                                  return acc;
                                },
                                red_d_);
}

double World::allreduce_max(int rank, double v) {
  return allreduce_impl<double>(
      rank, v,
      [](const std::vector<double>& s) {
        return *std::max_element(s.begin(), s.end());
      },
      red_d_);
}

std::int64_t World::allreduce_sum(int rank, std::int64_t v) {
  return allreduce_impl<std::int64_t>(rank, v,
                                      [](const std::vector<std::int64_t>& s) {
                                        std::int64_t acc = 0;
                                        for (auto x : s) acc += x;
                                        return acc;
                                      },
                                      red_i_);
}

bool World::allreduce_lor(int rank, bool v) {
  red_b_[static_cast<std::size_t>(rank)] = v ? 1 : 0;
  barrier(rank);
  bool any = false;
  for (int x : red_b_) any = any || (x != 0);
  barrier(rank);
  return any;
}

std::vector<double> World::allgather(int rank, double v) {
  gather_[static_cast<std::size_t>(rank)] = v;
  barrier(rank);
  std::vector<double> out = gather_;
  barrier(rank);
  return out;
}

std::uint64_t World::message_count() const {
  return messages_.load(std::memory_order_relaxed);
}

}  // namespace lmp::minimpi
