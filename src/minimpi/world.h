#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace lmp::minimpi {

/// Wildcard source for recv (MPI_ANY_SOURCE analogue).
inline constexpr int kAnySource = -1;

/// The world was poisoned (`World::poison`): a rank failed and the run
/// is being torn down, so blocking collectives/receives throw instead of
/// waiting forever for a peer that will never arrive.
class PoisonedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A two-sided, tag-matched message layer over shared memory — our stand-
/// in for the MPI stack that the paper's *baseline* LAMMPS communicates
/// through. It is deliberately "heavy" in structure (envelope queues, tag
/// matching, payload copies in and out of mailbox storage); the
/// performance model charges it the correspondingly larger per-message
/// software overhead T_inj that Fig. 6 measures.
///
/// One `World` is shared by every rank thread of a simulated job.
class World {
 public:
  explicit World(int nranks);

  int size() const { return nranks_; }

  /// Blocking tagged send (eager: copies the payload into the mailbox).
  void send(int src, int dst, int tag, std::span<const std::byte> payload);

  /// Blocking tagged receive; matches (src|any, tag) in posting order.
  std::vector<std::byte> recv(int dst, int src, int tag,
                              int* actual_src = nullptr);

  /// Combined exchange used by the 3-stage pattern: send to `dst` and
  /// receive from `src` with the same tag, deadlock-free.
  std::vector<std::byte> sendrecv(int me, int dst, int src, int tag,
                                  std::span<const std::byte> payload);

  /// Sense-reversing barrier over all ranks.
  void barrier(int rank);

  // --- reductions (all ranks must call with the same op sequence) -----
  double allreduce_sum(int rank, double v);
  double allreduce_max(int rank, double v);
  std::int64_t allreduce_sum(int rank, std::int64_t v);
  /// Logical-or reduction — the EAM neighbor-rebuild check (`check yes`
  /// in Table 2): "did any atom on any rank move beyond half the skin?"
  bool allreduce_lor(int rank, bool v);

  /// Gather doubles to every rank (small helper for thermo output).
  std::vector<double> allgather(int rank, double v);

  /// Messages sent so far (for tests).
  std::uint64_t message_count() const;

  /// Poison the world: every blocked and every future send/recv/barrier/
  /// reduction throws PoisonedError naming `reason`. Used by the failover
  /// path so one failing rank promptly unblocks its peers instead of
  /// deadlocking them in a collective. Idempotent (first reason wins) and
  /// permanent — barrier state may be mid-flight when the poison lands,
  /// so a poisoned World must be discarded, never reused.
  void poison(const std::string& reason);
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

 private:
  struct Envelope {
    int src;
    int tag;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Envelope> queue;
  };

  template <typename T>
  T allreduce_impl(int rank, T v, const std::function<T(const std::vector<T>&)>& fold,
                   std::vector<T>& slots);

  [[noreturn]] void throw_poisoned() const;

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Barrier state.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  bool barrier_sense_ = false;

  // Reduction scratch (guarded by the barrier around deposits).
  std::vector<double> red_d_;
  std::vector<std::int64_t> red_i_;
  std::vector<int> red_b_;
  std::vector<double> gather_;

  std::atomic<std::uint64_t> messages_{0};

  // Poison state.
  std::atomic<bool> poisoned_{false};
  mutable std::mutex poison_mu_;
  std::string poison_reason_;
};

}  // namespace lmp::minimpi
