#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tofu/topology.h"

namespace lmp::tofu {

/// Traffic carried by one directed 6D link, resolved to endpoint
/// coordinates for reporting ("hot link (0,0,0,0,1,0) -B-> (0,0,0,0,0,0)").
struct FabricLinkStat {
  long from_node = 0;
  long to_node = 0;
  Axis axis = Axis::kX;
  bool negative = false;  ///< the -1 (or wraparound) direction of the axis
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
};

/// Traffic injected per source TNI (which NIC the put left through).
struct FabricTniStat {
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
};

/// Immutable end-of-run picture of fabric traffic: per-link counters
/// (sorted hottest first), per-TNI injection counters, and the
/// hop-count histogram of every charged put.
struct FabricSnapshot {
  std::uint64_t total_bytes = 0;    ///< sum of bytes x hops over all puts
  std::uint64_t total_packets = 0;  ///< sum of packets x hops
  std::uint64_t puts_charged = 0;
  std::vector<FabricLinkStat> links;       ///< sorted by bytes desc
  std::vector<FabricTniStat> tnis;         ///< index = source TNI
  std::vector<std::uint64_t> hop_histogram;  ///< index = hop count

  std::uint64_t max_link_bytes() const;
  double mean_link_bytes() const;  ///< over links that carried traffic

  /// Merge another snapshot (failed failover attempts accumulate into
  /// the final report, like the health-counter carry).
  FabricSnapshot& operator+=(const FabricSnapshot& o);
};

/// Per-link transit accounting for the functional TofuD model.
///
/// Procs map linearly onto the nodes of `Topology::for_nodes(nprocs)` —
/// the same mapping `FaultInjector::map_procs` uses, so the fault model
/// and the telemetry agree on which wires a message crossed. Every
/// charged put walks the dimension-order route (axes in X,Y,Z,A,B,C
/// order, one hop at a time, taking the shorter way around torus axes)
/// and adds its bytes/packets to each directed link it traverses.
///
/// Thread-safe: `charge` takes an internal mutex — it is only called
/// when metrics collection is enabled, so the clean hot path never
/// contends here.
class LinkTelemetry {
 public:
  LinkTelemetry(long nprocs, int tnis);

  /// Charge one put of `bytes` payload from src_proc to dst_proc leaving
  /// through `src_tni`. `copies` > 1 accounts a fault-injected duplicate
  /// (two packets crossed every link). A self-put (src == dst node)
  /// traverses no links but still lands in the hop histogram at 0.
  void charge(int src_proc, int dst_proc, int src_tni, std::uint64_t bytes,
              int copies = 1);

  FabricSnapshot snapshot() const;
  void reset();

  const Topology& topology() const { return topo_; }

  /// The dimension-order route from u to v as directed (from, axis,
  /// negative) steps — exposed so tests can assert exactly which links a
  /// put is charged to.
  std::vector<FabricLinkStat> route(long u, long v) const;

 private:
  struct LinkCounters {
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
  };

  static std::uint64_t link_key(long from_node, Axis axis, bool negative) {
    return (static_cast<std::uint64_t>(from_node) * kAxisCount +
            static_cast<std::uint64_t>(axis)) *
               2 +
           (negative ? 1 : 0);
  }

  Topology topo_;
  int tnis_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, LinkCounters> links_;
  std::vector<LinkCounters> tni_;
  std::vector<std::uint64_t> hops_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_packets_ = 0;
  std::uint64_t puts_charged_ = 0;
};

/// Process-wide roll-up of fabric traffic across fabric lifetimes.
///
/// Fabrics are per-attempt: each job (and each failover attempt within a
/// job) builds a fresh `Network`, so any single `LinkTelemetry` only
/// covers one attempt's traffic. The telemetry sampler instead needs one
/// *monotonic* per-TNI byte/packet total it can delta against. Networks
/// register their telemetry here on construction and detach on
/// destruction; detaching folds the final snapshot into the retired
/// totals, so `tni_totals()` (retired + currently-live sums) never goes
/// backwards as fabrics come and go.
///
/// Like the metrics registry this is a process singleton — acceptable
/// because the sampler's CounterDelta tolerates resets, and per-server
/// attribution happens at the job level, not the fabric level.
class LiveFabricRegistry {
 public:
  static LiveFabricRegistry& instance();

  void attach(const LinkTelemetry* t);
  /// Folds `t`'s final snapshot into the retired totals and forgets it.
  /// Safe to call with a pointer that was never attached (no-op).
  void detach(const LinkTelemetry* t);

  /// Monotonic per-TNI injection totals (index = TNI), sized to the
  /// widest fabric seen so far. Empty until any fabric carried traffic.
  std::vector<FabricTniStat> tni_totals() const;
  /// Monotonic totals across all links of all fabrics, ever.
  std::uint64_t total_bytes() const;
  std::uint64_t total_packets() const;
  /// Fabrics currently alive (attached and not yet detached).
  std::size_t live_count() const;

 private:
  void fold_locked(const FabricSnapshot& s);

  mutable std::mutex mu_;
  std::vector<const LinkTelemetry*> live_;
  std::vector<FabricTniStat> retired_tnis_;
  std::uint64_t retired_bytes_ = 0;
  std::uint64_t retired_packets_ = 0;
};

/// Render the link-utilization summary as the standard table layout:
/// totals, max/mean link load, and the top-k hottest links with their
/// 6D endpoint coordinates. Empty string when nothing was charged.
std::string format_fabric_table(const Topology& topo, const FabricSnapshot& s,
                                std::size_t top_k = 10);

const char* axis_name(Axis ax);

}  // namespace lmp::tofu
