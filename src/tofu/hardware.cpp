#include "tofu/hardware.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace lmp::tofu {

std::int64_t probe_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long total_pages = 0;
  long long rss_pages = 0;
  const int n = std::fscanf(f, "%lld %lld", &total_pages, &rss_pages);
  std::fclose(f);
  if (n != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<std::int64_t>(rss_pages) *
         static_cast<std::int64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

}  // namespace lmp::tofu
