#include "tofu/coords.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace lmp::tofu {

std::string TofuCoord::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%d,%d,%d,%d,%d,%d)", v[0], v[1], v[2], v[3],
                v[4], v[5]);
  return buf;
}

int AxisShape::axis_hops(Axis ax, int u, int v) const {
  const int n = size_of(ax);
  int d = std::abs(u - v);
  if (is_torus(ax) && n > 1) {
    d = std::min(d, n - d);
  }
  return d;
}

}  // namespace lmp::tofu
