#include "tofu/network.h"

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace lmp::tofu {

namespace {

// Per-TNI instruments, cached once so the put hot path never touches the
// registry mutex. Names are static storage (TraceSpan keeps the pointer).
constexpr int kMaxInstrumentedTnis = 8;

const char* put_span_name(int tni) {
  static constexpr const char* kNames[kMaxInstrumentedTnis] = {
      "put.tni0", "put.tni1", "put.tni2", "put.tni3",
      "put.tni4", "put.tni5", "put.tni6", "put.tni7"};
  return tni >= 0 && tni < kMaxInstrumentedTnis ? kNames[tni] : "put.tni?";
}

obs::Histogram& put_latency_hist(int tni) {
  static obs::Histogram* hists[kMaxInstrumentedTnis] = {
      &obs::MetricsRegistry::instance().histogram("tofu.tni0.put_ns"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni1.put_ns"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni2.put_ns"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni3.put_ns"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni4.put_ns"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni5.put_ns"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni6.put_ns"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni7.put_ns")};
  return *hists[tni >= 0 && tni < kMaxInstrumentedTnis ? tni : 0];
}

obs::Histogram& mrq_depth_hist(int tni) {
  static obs::Histogram* hists[kMaxInstrumentedTnis] = {
      &obs::MetricsRegistry::instance().histogram("tofu.tni0.mrq_depth"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni1.mrq_depth"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni2.mrq_depth"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni3.mrq_depth"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni4.mrq_depth"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni5.mrq_depth"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni6.mrq_depth"),
      &obs::MetricsRegistry::instance().histogram("tofu.tni7.mrq_depth")};
  return *hists[tni >= 0 && tni < kMaxInstrumentedTnis ? tni : 0];
}

// Only referenced from LMP_TRACE_COUNTER sites, which compile out
// entirely under LMP_TRACE=OFF.
[[maybe_unused]] const char* mrq_depth_counter_name(int tni) {
  static constexpr const char* kNames[kMaxInstrumentedTnis] = {
      "mrq.tni0", "mrq.tni1", "mrq.tni2", "mrq.tni3",
      "mrq.tni4", "mrq.tni5", "mrq.tni6", "mrq.tni7"};
  return tni >= 0 && tni < kMaxInstrumentedTnis ? kNames[tni] : "mrq.tni?";
}

}  // namespace

Network::Network(int nprocs, int tnis, int cqs)
      // Clamp the telemetry shape so the explicit validation below owns
      // the error for a degenerate network shape.
    : nprocs_(nprocs),
      tnis_(tnis),
      cqs_(cqs),
      links_(nprocs > 0 ? nprocs : 1, tnis > 0 ? tnis : 1) {
  if (nprocs < 1 || tnis < 1 || cqs < 1) {
    throw std::invalid_argument("network shape must be >= 1 everywhere");
  }
  regions_.resize(static_cast<std::size_t>(nprocs));
  LiveFabricRegistry::instance().attach(&links_);
}

Network::~Network() {
  // Folds this fabric's traffic into the process-wide retired totals so
  // the telemetry sampler's per-TNI series stay monotonic across
  // per-attempt fabric lifetimes. Runs before members are destroyed.
  LiveFabricRegistry::instance().detach(&links_);
}

void Network::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  injector_ = std::move(injector);
  if (injector_) injector_->map_procs(nprocs_);
}

void Network::abort_fabric(const std::string& reason) {
  {
    std::lock_guard lock(abort_mu_);
    if (abort_reason_.empty()) abort_reason_ = reason;
  }
  aborted_.store(true, std::memory_order_release);
}

void Network::check_aborted() const {
  if (!aborted_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(abort_mu_);
  throw JobAbortedError("fabric aborted: " + abort_reason_);
}

void Network::check_route(int src_proc, int dst_proc) const {
  if (injector_ == nullptr) return;
  injector_->note_put();
  if (injector_->unreachable(src_proc, dst_proc)) {
    injector_->stats().unreachable_puts.fetch_add(1,
                                                  std::memory_order_relaxed);
    throw UnreachableError(
        injector_->unreachable_reason(src_proc, dst_proc));
  }
}

Stadd Network::reg_mem(int proc, void* base, std::size_t len) {
  if (proc < 0 || proc >= nprocs_) throw std::out_of_range("proc");
  if (base == nullptr || len == 0) throw std::invalid_argument("empty region");
  std::lock_guard lock(registry_mu_);
  const Stadd stadd = next_stadd_++;
  regions_[static_cast<std::size_t>(proc)][stadd] = {static_cast<std::byte*>(base), len};
  stats_.registrations.fetch_add(1, std::memory_order_relaxed);
  return stadd;
}

void Network::dereg_mem(int proc, Stadd stadd) {
  if (proc < 0 || proc >= nprocs_) throw std::out_of_range("proc");
  std::lock_guard lock(registry_mu_);
  if (regions_[static_cast<std::size_t>(proc)].erase(stadd) == 0) {
    throw std::invalid_argument("deregistering unknown stadd");
  }
  stats_.deregistrations.fetch_add(1, std::memory_order_relaxed);
}

std::byte* Network::window_checked(int proc, Stadd stadd, std::uint64_t offset,
                                   std::uint64_t length,
                                   const char* what) const {
  if (proc < 0 || proc >= nprocs_) throw std::out_of_range("proc");
  std::lock_guard lock(registry_mu_);
  const auto& map = regions_[static_cast<std::size_t>(proc)];
  const auto it = map.find(stadd);
  if (it == map.end()) {
    std::ostringstream os;
    os << what << ": unknown stadd " << stadd << " on proc " << proc;
    throw std::invalid_argument(os.str());
  }
  // Checked as two comparisons so offset + length cannot wrap around.
  const std::uint64_t region = it->second.len;
  if (offset > region || length > region - offset) {
    std::ostringstream os;
    os << what << ": window [" << offset << ", +" << length
       << ") leaves registered region of " << region << " bytes (stadd "
       << stadd << ", proc " << proc << ")";
    throw std::out_of_range(os.str());
  }
  return it->second.base + offset;
}

std::byte* Network::resolve(int proc, Stadd stadd, std::uint64_t offset,
                            std::uint64_t length) const {
  return window_checked(proc, stadd, offset, length, "RDMA access");
}

VcqId Network::create_vcq(int proc, int tni, int cq) {
  if (proc < 0 || proc >= nprocs_) throw std::out_of_range("proc");
  if (tni < 0 || tni >= tnis_) throw std::out_of_range("tni");
  if (cq < 0 || cq >= cqs_) throw std::out_of_range("cq");
  std::lock_guard lock(vcq_mu_);
  for (const auto& v : vcqs_) {
    if (v->active && v->proc == proc && v->tni == tni && v->cq == cq) {
      throw std::invalid_argument("CQ already bound to a VCQ");
    }
  }
  auto vcq = std::make_unique<Vcq>();
  vcq->proc = proc;
  vcq->tni = tni;
  vcq->cq = cq;
  vcq->active = true;
  vcqs_.push_back(std::move(vcq));
  return static_cast<VcqId>(vcqs_.size() - 1);
}

void Network::free_vcq(VcqId id) {
  std::lock_guard lock(vcq_mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= vcqs_.size() || !vcqs_[static_cast<std::size_t>(id)]->active) {
    throw std::invalid_argument("freeing unknown VCQ");
  }
  vcqs_[static_cast<std::size_t>(id)]->active = false;
}

Network::Vcq& Network::vcq_checked(VcqId id) {
  std::lock_guard lock(vcq_mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= vcqs_.size() || !vcqs_[static_cast<std::size_t>(id)]->active) {
    throw std::invalid_argument("unknown VCQ");
  }
  return *vcqs_[static_cast<std::size_t>(id)];
}

const Network::Vcq& Network::vcq_checked(VcqId id) const {
  return const_cast<Network*>(this)->vcq_checked(id);
}

int Network::proc_of(VcqId id) const { return vcq_checked(id).proc; }
int Network::tni_of(VcqId id) const { return vcq_checked(id).tni; }

void Network::put(VcqId src_vcq, VcqId dst_vcq, Stadd src_stadd,
                  std::uint64_t src_off, Stadd dst_stadd, std::uint64_t dst_off,
                  std::uint64_t length, std::uint64_t edata, PutMode mode,
                  std::uint64_t flow) {
  check_aborted();
  Vcq& src = vcq_checked(src_vcq);
  Vcq& dst = vcq_checked(dst_vcq);
  const obs::TraceSpan put_span(obs::TraceCat::kTofu, put_span_name(src.tni));
  const std::int64_t put_t0 = obs::metrics_enabled() ? obs::now_ns() : 0;
  // Permanent faults sever the route for every mode — retransmits and
  // control traffic ride the same wires, so the reliability protocol
  // cannot paper over them (that is the failover ladder's job).
  check_route(src.proc, dst.proc);

  // Validate both windows before touching any queue, even for length 0:
  // a put with a bogus STADD or offset is a programming error regardless
  // of how many bytes it would have moved.
  const std::byte* from =
      window_checked(src.proc, src_stadd, src_off, length, "put source");
  std::byte* to =
      window_checked(dst.proc, dst_stadd, dst_off, length, "put destination");

  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_put.fetch_add(length, std::memory_order_relaxed);
  if (mode == PutMode::kRetransmit) {
    stats_.retransmit_puts.fetch_add(1, std::memory_order_relaxed);
  } else if (mode == PutMode::kControl) {
    stats_.control_puts.fetch_add(1, std::memory_order_relaxed);
  }
  // Open (or extend, for a retransmit replaying the same id) the message
  // flow inside this put's span. Emitted before the fault gauntlet: the
  // sender considers the message injected either way.
  if (flow != 0) {
    LMP_TRACE_FLOW(obs::TraceCat::kComm, obs::kMsgFlowName, flow,
                   mode == PutMode::kRetransmit
                       ? obs::TraceEvent::kFlowStep
                       : obs::TraceEvent::kFlowStart);
  }

  FaultDecision fault;
  if (mode == PutMode::kData && injector_) {
    if (injector_->tni_down(src.tni) || injector_->tni_down(dst.tni)) {
      // The message never leaves the NIC; the sender still observes a
      // local completion (injection into a dead link is not detectable
      // from the TCQ on real hardware either). No link is charged.
      injector_->stats().tni_drops.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lock(src.mu);
      src.tcq.push_back({edata});
      return;
    }
    fault = injector_->decide(src.proc, dst.proc, edata);
  }

  // Dropped/corrupted/delayed puts still entered the fabric and crossed
  // every link on the route; a duplicate crossed each of them twice.
  if (obs::metrics_enabled()) {
    links_.charge(src.proc, dst.proc, src.tni, length,
                  fault.duplicate ? 2 : 1);
  }

  if (fault.drop) {
    std::lock_guard lock(src.mu);
    src.tcq.push_back({edata});
    return;
  }

  if (length > 0) {
    std::memcpy(to, from, length);
    if (fault.corrupt) {
      to[fault.corrupt_pos % length] ^= std::byte{0x5A};
    }
  }

  MrqEntry entry{dst_stadd, dst_off, length, edata, src.proc,
                 mode == PutMode::kControl, flow};
  std::size_t mrq_depth = 0;
  {
    std::lock_guard lock(dst.mu);
    if (fault.delay_polls > 0) {
      dst.delayed.push_back({entry, fault.delay_polls});
    } else {
      dst.mrq.push_back(entry);
    }
    // The duplicate races ahead of a delayed original: reordering is
    // exactly the hazard duplicates create on a real fabric.
    if (fault.duplicate) dst.mrq.push_back(entry);
    mrq_depth = dst.mrq.size();
  }
  if (obs::metrics_enabled()) {
    mrq_depth_hist(dst.tni).record(mrq_depth);
    put_latency_hist(src.tni).record(
        static_cast<std::uint64_t>(obs::now_ns() - put_t0));
  }
  LMP_TRACE_COUNTER(obs::TraceCat::kTofu, mrq_depth_counter_name(dst.tni),
                    static_cast<std::int64_t>(mrq_depth));
  if (mode == PutMode::kData) {
    std::lock_guard lock(src.mu);
    src.tcq.push_back({edata});
  }
}

void Network::put_piggyback(VcqId src_vcq, VcqId dst_vcq, std::uint64_t edata,
                            PutMode mode, std::uint64_t flow) {
  check_aborted();
  Vcq& src = vcq_checked(src_vcq);
  Vcq& dst = vcq_checked(dst_vcq);
  const obs::TraceSpan put_span(obs::TraceCat::kTofu, put_span_name(src.tni));
  const std::int64_t put_t0 = obs::metrics_enabled() ? obs::now_ns() : 0;
  check_route(src.proc, dst.proc);
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  if (mode == PutMode::kRetransmit) {
    stats_.retransmit_puts.fetch_add(1, std::memory_order_relaxed);
  } else if (mode == PutMode::kControl) {
    stats_.control_puts.fetch_add(1, std::memory_order_relaxed);
  }
  if (flow != 0) {
    LMP_TRACE_FLOW(obs::TraceCat::kComm, obs::kMsgFlowName, flow,
                   mode == PutMode::kRetransmit
                       ? obs::TraceEvent::kFlowStep
                       : obs::TraceEvent::kFlowStart);
  }

  FaultDecision fault;
  if (mode == PutMode::kData && injector_) {
    if (injector_->tni_down(src.tni) || injector_->tni_down(dst.tni)) {
      injector_->stats().tni_drops.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lock(src.mu);
      src.tcq.push_back({edata});
      return;
    }
    fault = injector_->decide(src.proc, dst.proc, edata);
  }

  // A piggyback put moves no payload but its descriptor packet still
  // crosses every link on the route.
  if (obs::metrics_enabled()) {
    links_.charge(src.proc, dst.proc, src.tni, 0, fault.duplicate ? 2 : 1);
  }

  if (fault.drop) {
    std::lock_guard lock(src.mu);
    src.tcq.push_back({edata});
    return;
  }

  std::uint64_t delivered = edata;
  if (fault.corrupt) {
    // No payload to damage — flip one bit of the piggyback value field
    // (low 32 bits) so the receiver's checksum over the value catches it.
    delivered ^= 1ULL << (fault.corrupt_pos % 32);
  }

  MrqEntry entry{0, 0, 0, delivered, src.proc, mode == PutMode::kControl, flow};
  std::size_t mrq_depth = 0;
  {
    std::lock_guard lock(dst.mu);
    if (fault.delay_polls > 0) {
      dst.delayed.push_back({entry, fault.delay_polls});
    } else {
      dst.mrq.push_back(entry);
    }
    if (fault.duplicate) dst.mrq.push_back(entry);
    mrq_depth = dst.mrq.size();
  }
  if (obs::metrics_enabled()) {
    mrq_depth_hist(dst.tni).record(mrq_depth);
    put_latency_hist(src.tni).record(
        static_cast<std::uint64_t>(obs::now_ns() - put_t0));
  }
  LMP_TRACE_COUNTER(obs::TraceCat::kTofu, mrq_depth_counter_name(dst.tni),
                    static_cast<std::int64_t>(mrq_depth));
  if (mode == PutMode::kData) {
    std::lock_guard lock(src.mu);
    src.tcq.push_back({edata});
  }
}

void Network::get(VcqId src_vcq, VcqId dst_vcq, Stadd remote_stadd,
                  std::uint64_t remote_off, Stadd local_stadd,
                  std::uint64_t local_off, std::uint64_t length) {
  check_aborted();
  Vcq& src = vcq_checked(src_vcq);
  Vcq& dst = vcq_checked(dst_vcq);
  check_route(src.proc, dst.proc);
  const std::byte* from = window_checked(dst.proc, remote_stadd, remote_off,
                                         length, "get source");
  std::byte* to =
      window_checked(src.proc, local_stadd, local_off, length, "get destination");
  if (length > 0) std::memcpy(to, from, length);
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_put.fetch_add(length, std::memory_order_relaxed);
  std::lock_guard lock(src.mu);
  src.tcq.push_back({0});
}

std::optional<TcqEntry> Network::poll_tcq(VcqId id) {
  Vcq& v = vcq_checked(id);
  std::lock_guard lock(v.mu);
  if (v.tcq.empty()) return std::nullopt;
  TcqEntry e = v.tcq.front();
  v.tcq.pop_front();
  return e;
}

void Network::advance_delayed(Vcq& v) {
  for (auto it = v.delayed.begin(); it != v.delayed.end();) {
    if (--it->polls_left <= 0) {
      v.mrq.push_back(it->entry);
      it = v.delayed.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<MrqEntry> Network::poll_mrq(VcqId id) {
  Vcq& v = vcq_checked(id);
  std::lock_guard lock(v.mu);
  advance_delayed(v);
  for (auto it = v.mrq.begin(); it != v.mrq.end(); ++it) {
    if (it->control) continue;
    MrqEntry e = *it;
    v.mrq.erase(it);
    return e;
  }
  return std::nullopt;
}

std::optional<MrqEntry> Network::poll_control(VcqId id) {
  Vcq& v = vcq_checked(id);
  std::lock_guard lock(v.mu);
  // No delayed-queue advance here: delay budgets are measured in *data*
  // polls by the owning thread, and a fast-spinning progress thread must
  // not burn them down.
  for (auto it = v.mrq.begin(); it != v.mrq.end(); ++it) {
    if (!it->control) continue;
    MrqEntry e = *it;
    v.mrq.erase(it);
    return e;
  }
  return std::nullopt;
}

namespace {

[[noreturn]] void throw_wait_timeout(const char* queue, VcqId id, int proc,
                                     int tni, std::chrono::milliseconds deadline) {
  std::ostringstream os;
  os << "timeout after " << deadline.count() << " ms waiting on " << queue
     << " of VCQ " << id << " (proc " << proc << ", tni " << tni << ")";
  throw CommTimeoutError(os.str());
}

}  // namespace

TcqEntry Network::wait_tcq(VcqId id, std::chrono::milliseconds deadline) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t spin = 0;; ++spin) {
    if (auto e = poll_tcq(id)) return *e;
    // Amortize the clock read: a syscall-free spin iteration is a few ns.
    if ((spin & 0x3FF) == 0) {
      check_aborted();
      if (std::chrono::steady_clock::now() - start >= deadline) {
        const Vcq& v = vcq_checked(id);
        throw_wait_timeout("TCQ", id, v.proc, v.tni, deadline);
      }
    }
    std::this_thread::yield();
  }
}

MrqEntry Network::wait_mrq(VcqId id, std::chrono::milliseconds deadline) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t spin = 0;; ++spin) {
    if (auto e = poll_mrq(id)) return *e;
    if ((spin & 0x3FF) == 0) {
      check_aborted();
      if (std::chrono::steady_clock::now() - start >= deadline) {
        const Vcq& v = vcq_checked(id);
        throw_wait_timeout("MRQ", id, v.proc, v.tni, deadline);
      }
    }
    std::this_thread::yield();
  }
}

void Network::reset_stats() {
  stats_.puts = 0;
  stats_.bytes_put = 0;
  stats_.registrations = 0;
  stats_.deregistrations = 0;
  stats_.retransmit_puts = 0;
  stats_.control_puts = 0;
}

}  // namespace lmp::tofu
