#include "tofu/network.h"

#include <cstring>
#include <stdexcept>
#include <thread>

namespace lmp::tofu {

Network::Network(int nprocs, int tnis, int cqs)
    : nprocs_(nprocs), tnis_(tnis), cqs_(cqs) {
  if (nprocs < 1 || tnis < 1 || cqs < 1) {
    throw std::invalid_argument("network shape must be >= 1 everywhere");
  }
  regions_.resize(static_cast<std::size_t>(nprocs));
}

Stadd Network::reg_mem(int proc, void* base, std::size_t len) {
  if (proc < 0 || proc >= nprocs_) throw std::out_of_range("proc");
  if (base == nullptr || len == 0) throw std::invalid_argument("empty region");
  std::lock_guard lock(registry_mu_);
  const Stadd stadd = next_stadd_++;
  regions_[static_cast<std::size_t>(proc)][stadd] = {static_cast<std::byte*>(base), len};
  stats_.registrations.fetch_add(1, std::memory_order_relaxed);
  return stadd;
}

void Network::dereg_mem(int proc, Stadd stadd) {
  if (proc < 0 || proc >= nprocs_) throw std::out_of_range("proc");
  std::lock_guard lock(registry_mu_);
  if (regions_[static_cast<std::size_t>(proc)].erase(stadd) == 0) {
    throw std::invalid_argument("deregistering unknown stadd");
  }
  stats_.deregistrations.fetch_add(1, std::memory_order_relaxed);
}

std::byte* Network::resolve(int proc, Stadd stadd, std::uint64_t offset,
                            std::uint64_t length) const {
  if (proc < 0 || proc >= nprocs_) throw std::out_of_range("proc");
  std::lock_guard lock(registry_mu_);
  const auto& map = regions_[static_cast<std::size_t>(proc)];
  const auto it = map.find(stadd);
  if (it == map.end()) throw std::invalid_argument("unknown stadd");
  if (offset + length > it->second.len) {
    throw std::out_of_range("RDMA access beyond registered region");
  }
  return it->second.base + offset;
}

VcqId Network::create_vcq(int proc, int tni, int cq) {
  if (proc < 0 || proc >= nprocs_) throw std::out_of_range("proc");
  if (tni < 0 || tni >= tnis_) throw std::out_of_range("tni");
  if (cq < 0 || cq >= cqs_) throw std::out_of_range("cq");
  std::lock_guard lock(vcq_mu_);
  for (const auto& v : vcqs_) {
    if (v->active && v->proc == proc && v->tni == tni && v->cq == cq) {
      throw std::invalid_argument("CQ already bound to a VCQ");
    }
  }
  auto vcq = std::make_unique<Vcq>();
  vcq->proc = proc;
  vcq->tni = tni;
  vcq->cq = cq;
  vcq->active = true;
  vcqs_.push_back(std::move(vcq));
  return static_cast<VcqId>(vcqs_.size() - 1);
}

void Network::free_vcq(VcqId id) {
  std::lock_guard lock(vcq_mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= vcqs_.size() || !vcqs_[static_cast<std::size_t>(id)]->active) {
    throw std::invalid_argument("freeing unknown VCQ");
  }
  vcqs_[static_cast<std::size_t>(id)]->active = false;
}

Network::Vcq& Network::vcq_checked(VcqId id) {
  std::lock_guard lock(vcq_mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= vcqs_.size() || !vcqs_[static_cast<std::size_t>(id)]->active) {
    throw std::invalid_argument("unknown VCQ");
  }
  return *vcqs_[static_cast<std::size_t>(id)];
}

const Network::Vcq& Network::vcq_checked(VcqId id) const {
  return const_cast<Network*>(this)->vcq_checked(id);
}

int Network::proc_of(VcqId id) const { return vcq_checked(id).proc; }
int Network::tni_of(VcqId id) const { return vcq_checked(id).tni; }

void Network::put(VcqId src_vcq, VcqId dst_vcq, Stadd src_stadd,
                  std::uint64_t src_off, Stadd dst_stadd, std::uint64_t dst_off,
                  std::uint64_t length, std::uint64_t edata) {
  Vcq& src = vcq_checked(src_vcq);
  Vcq& dst = vcq_checked(dst_vcq);

  if (length > 0) {
    const std::byte* from = resolve(src.proc, src_stadd, src_off, length);
    std::byte* to = resolve(dst.proc, dst_stadd, dst_off, length);
    std::memcpy(to, from, length);
  }
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_put.fetch_add(length, std::memory_order_relaxed);

  {
    std::lock_guard lock(dst.mu);
    dst.mrq.push_back({dst_stadd, dst_off, length, edata, src.proc});
  }
  {
    std::lock_guard lock(src.mu);
    src.tcq.push_back({edata});
  }
}

void Network::put_piggyback(VcqId src_vcq, VcqId dst_vcq, std::uint64_t edata) {
  Vcq& src = vcq_checked(src_vcq);
  Vcq& dst = vcq_checked(dst_vcq);
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(dst.mu);
    dst.mrq.push_back({0, 0, 0, edata, src.proc});
  }
  {
    std::lock_guard lock(src.mu);
    src.tcq.push_back({edata});
  }
}

void Network::get(VcqId src_vcq, VcqId dst_vcq, Stadd remote_stadd,
                  std::uint64_t remote_off, Stadd local_stadd,
                  std::uint64_t local_off, std::uint64_t length) {
  Vcq& src = vcq_checked(src_vcq);
  Vcq& dst = vcq_checked(dst_vcq);
  if (length > 0) {
    const std::byte* from = resolve(dst.proc, remote_stadd, remote_off, length);
    std::byte* to = resolve(src.proc, local_stadd, local_off, length);
    std::memcpy(to, from, length);
  }
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_put.fetch_add(length, std::memory_order_relaxed);
  std::lock_guard lock(src.mu);
  src.tcq.push_back({0});
}

std::optional<TcqEntry> Network::poll_tcq(VcqId id) {
  Vcq& v = vcq_checked(id);
  std::lock_guard lock(v.mu);
  if (v.tcq.empty()) return std::nullopt;
  TcqEntry e = v.tcq.front();
  v.tcq.pop_front();
  return e;
}

std::optional<MrqEntry> Network::poll_mrq(VcqId id) {
  Vcq& v = vcq_checked(id);
  std::lock_guard lock(v.mu);
  if (v.mrq.empty()) return std::nullopt;
  MrqEntry e = v.mrq.front();
  v.mrq.pop_front();
  return e;
}

TcqEntry Network::wait_tcq(VcqId id) {
  for (;;) {
    if (auto e = poll_tcq(id)) return *e;
    std::this_thread::yield();
  }
}

MrqEntry Network::wait_mrq(VcqId id) {
  for (;;) {
    if (auto e = poll_mrq(id)) return *e;
    std::this_thread::yield();
  }
}

void Network::reset_stats() {
  stats_.puts = 0;
  stats_.bytes_put = 0;
  stats_.registrations = 0;
  stats_.deregistrations = 0;
}

}  // namespace lmp::tofu
