#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace lmp::tofu {

/// Declarative description of the faults a run should experience.
///
/// Rates are per-message probabilities evaluated independently for every
/// data put; `dead_tnis` marks whole TNIs as down for the entire run
/// (link failure — puts addressing a VCQ on a dead TNI never arrive).
/// All stochastic choices derive from `seed` and the message identity
/// alone, so a given plan injects the *same* faults into the same
/// logical messages on every run: every failure is replayable.
struct FaultPlan {
  std::uint64_t seed = 0x5eedULL;
  double drop_rate = 0.0;       ///< notice and payload vanish in the fabric
  double delay_rate = 0.0;      ///< notice surfaces only on a later poll
  double duplicate_rate = 0.0;  ///< notice delivered twice
  double corrupt_rate = 0.0;    ///< payload byte (or piggyback value bit) flipped
  /// Delayed notices surface within [1, max_delay_polls] receive polls.
  int max_delay_polls = 16;
  std::vector<int> dead_tnis;

  bool message_faults() const {
    return drop_rate > 0 || delay_rate > 0 || duplicate_rate > 0 ||
           corrupt_rate > 0;
  }
  bool enabled() const { return message_faults() || !dead_tnis.empty(); }
};

/// What the injector decided for one message.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  int delay_polls = 0;          ///< 0 = deliver immediately
  std::uint64_t corrupt_pos = 0;  ///< payload byte index / value bit, pre-modulo
};

/// Counters of injected faults (fabric-side view of a chaos run).
struct FaultStats {
  std::atomic<std::uint64_t> decisions{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> tni_drops{0};
};

/// Deterministic, seeded fault source consulted by `Network::put` /
/// `put_piggyback` for every data-plane message.
///
/// Decisions are a pure hash of (seed, src proc, dst proc, edata): the
/// edata word carries the logical channel and sequence number, so the
/// same logical message draws the same fate in every run regardless of
/// thread interleaving. Retransmissions and control messages are issued
/// with `PutMode::kRetransmit` / `kControl` and bypass the injector —
/// they model the recovered path, and faulting them would only delay
/// convergence without adding coverage.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }
  bool tni_down(int tni) const {
    return tni >= 0 && tni < 64 && ((down_mask_ >> tni) & 1u) != 0;
  }

  /// Decide the fate of one data put. Thread-safe; deterministic in its
  /// arguments. Updates the fault counters for every non-clean decision.
  FaultDecision decide(int src_proc, int dst_proc, std::uint64_t edata) const;

  FaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  std::uint64_t down_mask_ = 0;
  mutable FaultStats stats_;
};

}  // namespace lmp::tofu
