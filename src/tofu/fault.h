#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "tofu/coords.h"

namespace lmp::tofu {

/// A route between two endpoints is permanently severed (a link on one
/// of the 6D axes is down, or the peer's NIC died). Unlike the
/// stochastic message faults, retransmission cannot recover this: the
/// fabric surfaces it as a typed error so the health monitor can
/// escalate to the next comm variant instead of spinning on NACKs.
class UnreachableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which per-rank SoA slab a memory fault lands in. `kGhostPos` is the
/// ghost block of the position array right after the forward exchange
/// landed — i.e. received data corrupted *after* the wire CRC passed,
/// the silent-corruption mode the reliability layer cannot see.
enum class MemTarget : int {
  kPos = 0,
  kVel = 1,
  kForce = 2,
  kGhostPos = 3,
};

/// One deliberately injected memory bit flip. `step` is the onset clock:
/// the flip fires when the owning rank's integration reaches that step
/// (mirroring `fault_onset_puts` for the fabric faults). A transient
/// flip fires exactly once for the injector's lifetime — a rollback +
/// recompute passes the step clean, so recovery can heal it. A
/// `persistent` flip is stuck-at: it re-fires on every visit of the
/// step, so a recompute diverges again and the guard layer can tell the
/// two apart.
struct MemFault {
  int step = 0;
  int rank = -1;                ///< owning rank; -1 = every rank
  int target = 0;               ///< MemTarget value
  std::uint64_t word = 0;       ///< word index into the slab, pre-modulo
  int bit = 62;                 ///< bit to flip (0..63); 62 explodes the exponent
  bool persistent = false;
};

/// Declarative description of the faults a run should experience.
///
/// Rates are per-message probabilities evaluated independently for every
/// data put; `dead_tnis` marks whole TNIs as down for the entire run
/// (link failure — puts addressing a VCQ on a dead TNI never arrive).
/// All stochastic choices derive from `seed` and the message identity
/// alone, so a given plan injects the *same* faults into the same
/// logical messages on every run: every failure is replayable.
///
/// `down_axes` / `crashed_ranks` are *permanent* faults: any route whose
/// endpoints differ along a downed 6D axis, or that touches a crashed
/// rank, raises UnreachableError from every put once the fault has
/// manifested (`fault_onset_puts` fabric puts into the run). They defeat
/// the retransmit protocol by design — recovery is the failover ladder's
/// job, not the reliability layer's.
struct FaultPlan {
  std::uint64_t seed = 0x5eedULL;
  double drop_rate = 0.0;       ///< notice and payload vanish in the fabric
  double delay_rate = 0.0;      ///< notice surfaces only on a later poll
  double duplicate_rate = 0.0;  ///< notice delivered twice
  double corrupt_rate = 0.0;    ///< payload byte (or piggyback value bit) flipped
  /// Delayed notices surface within [1, max_delay_polls] receive polls.
  int max_delay_polls = 16;
  std::vector<int> dead_tnis;

  // --- permanent faults -------------------------------------------------
  /// 6D axes (tofu::Axis values, 0..5) whose links are severed: a route
  /// is unreachable iff its endpoints' coordinates differ on a down axis.
  std::vector<int> down_axes;
  /// Ranks whose TofuD NIC died. The node itself still computes (and the
  /// MPI fallback still reaches it) — exactly the degradation the
  /// failover ladder exists for.
  std::vector<int> crashed_ranks;
  /// Permanent faults manifest only after this many fabric puts, so a
  /// test can model a link that dies mid-run. 0 = down from the start.
  std::uint64_t fault_onset_puts = 0;

  // --- silent memory corruption -----------------------------------------
  /// Targeted bit flips with per-fault onset steps (see MemFault).
  std::vector<MemFault> mem_faults;
  /// Stochastic flips: per (rank, step, slab) probability of one seeded
  /// exponent-bit flip. Like the message rates these derive from `seed`
  /// and the identity alone, so a chaos run replays the same flips.
  double mem_flip_rate = 0.0;
  /// Stochastic flips fire only after this step (onset clock). 0 = from
  /// the start.
  int mem_flip_onset_step = 0;

  bool message_faults() const {
    return drop_rate > 0 || delay_rate > 0 || duplicate_rate > 0 ||
           corrupt_rate > 0;
  }
  bool permanent_faults() const {
    return !down_axes.empty() || !crashed_ranks.empty();
  }
  bool memory_faults() const {
    return !mem_faults.empty() || mem_flip_rate > 0;
  }
  /// Fabric-side faults only — memory flips never touch the wire, so
  /// the network keeps its injector off unless this is true.
  bool enabled() const {
    return message_faults() || !dead_tnis.empty() || permanent_faults();
  }
  bool any_faults() const { return enabled() || memory_faults(); }
};

/// What the injector decided for one message.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  int delay_polls = 0;          ///< 0 = deliver immediately
  std::uint64_t corrupt_pos = 0;  ///< payload byte index / value bit, pre-modulo
};

/// Counters of injected faults (fabric-side view of a chaos run).
struct FaultStats {
  std::atomic<std::uint64_t> decisions{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> tni_drops{0};
  std::atomic<std::uint64_t> fabric_puts{0};       ///< all puts seen (onset clock)
  std::atomic<std::uint64_t> unreachable_puts{0};  ///< puts refused on severed routes
};

/// Deterministic, seeded fault source consulted by `Network::put` /
/// `put_piggyback` for every data-plane message.
///
/// Decisions are a pure hash of (seed, src proc, dst proc, edata): the
/// edata word carries the logical channel and sequence number, so the
/// same logical message draws the same fate in every run regardless of
/// thread interleaving. Retransmissions and control messages are issued
/// with `PutMode::kRetransmit` / `kControl` and bypass the *stochastic*
/// injector — they model the recovered path, and faulting them would
/// only delay convergence without adding coverage. Permanent faults
/// (`unreachable`) apply to every mode: a severed link carries nothing.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }
  bool tni_down(int tni) const {
    return tni >= 0 && tni < 64 && ((down_mask_ >> tni) & 1u) != 0;
  }

  /// Decide the fate of one data put. Thread-safe; deterministic in its
  /// arguments. Updates the fault counters for every non-clean decision.
  FaultDecision decide(int src_proc, int dst_proc, std::uint64_t edata) const;

  /// Resolve proc ids to 6D coordinates of a default (linear) allocation
  /// so `down_axes` can be evaluated per route. Called by
  /// `Network::set_fault_injector`; a no-op without permanent faults.
  void map_procs(int nprocs);

  /// Advance the onset clock — called once per fabric put (any mode).
  void note_put() const {
    stats_.fabric_puts.fetch_add(1, std::memory_order_relaxed);
  }

  /// True when the route src -> dst is permanently severed and the fault
  /// has manifested (see FaultPlan::fault_onset_puts).
  bool unreachable(int src_proc, int dst_proc) const;

  /// Human-readable diagnosis for a severed route, used as the
  /// UnreachableError message.
  std::string unreachable_reason(int src_proc, int dst_proc) const;

  FaultStats& stats() const { return stats_; }

 private:
  bool crashed(int proc) const;

  FaultPlan plan_;
  std::uint64_t down_mask_ = 0;        ///< dead TNIs
  std::uint64_t down_axis_mask_ = 0;   ///< severed 6D axes
  std::vector<TofuCoord> proc_coords_; ///< filled by map_procs
  mutable FaultStats stats_;
};

/// Counters of injected memory flips.
struct MemFaultStats {
  std::atomic<std::uint64_t> flips_injected{0};
  /// Transient flips whose (identity) already fired — the recompute
  /// after a rollback passing the flip step clean shows up here.
  std::atomic<std::uint64_t> flips_suppressed{0};
};

/// Seeded silent-corruption source: flips bits in the per-rank SoA slabs
/// (positions, velocities, forces, landed ghost positions) behind the
/// CRC's back. The simulation calls `apply` once per (rank, step, slab)
/// visit; flips due at that identity are XORed into the array in place.
///
/// The injector must OUTLIVE the rollback/recompute attempt loop: the
/// applied-state for transient flips is what makes a recomputed step run
/// clean, so a fresh injector per attempt would turn every transient
/// flip into an apparent stuck-at fault.
class MemFaultInjector {
 public:
  explicit MemFaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.memory_faults(); }

  /// Flip every bit due at (rank, step, target) into data[0..nwords).
  /// Thread-safe; deterministic in its arguments plus the fire history.
  /// Returns the number of flips applied on this visit.
  int apply(int rank, int step, MemTarget target, double* data,
            std::size_t nwords);

  MemFaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  std::vector<char> applied_;       ///< per plan_.mem_faults entry
  std::set<std::uint64_t> fired_;   ///< stochastic identities already fired
  std::mutex mu_;
  mutable MemFaultStats stats_;
};

}  // namespace lmp::tofu
