#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tofu/coords.h"

namespace lmp::tofu {

/// A route between two endpoints is permanently severed (a link on one
/// of the 6D axes is down, or the peer's NIC died). Unlike the
/// stochastic message faults, retransmission cannot recover this: the
/// fabric surfaces it as a typed error so the health monitor can
/// escalate to the next comm variant instead of spinning on NACKs.
class UnreachableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Declarative description of the faults a run should experience.
///
/// Rates are per-message probabilities evaluated independently for every
/// data put; `dead_tnis` marks whole TNIs as down for the entire run
/// (link failure — puts addressing a VCQ on a dead TNI never arrive).
/// All stochastic choices derive from `seed` and the message identity
/// alone, so a given plan injects the *same* faults into the same
/// logical messages on every run: every failure is replayable.
///
/// `down_axes` / `crashed_ranks` are *permanent* faults: any route whose
/// endpoints differ along a downed 6D axis, or that touches a crashed
/// rank, raises UnreachableError from every put once the fault has
/// manifested (`fault_onset_puts` fabric puts into the run). They defeat
/// the retransmit protocol by design — recovery is the failover ladder's
/// job, not the reliability layer's.
struct FaultPlan {
  std::uint64_t seed = 0x5eedULL;
  double drop_rate = 0.0;       ///< notice and payload vanish in the fabric
  double delay_rate = 0.0;      ///< notice surfaces only on a later poll
  double duplicate_rate = 0.0;  ///< notice delivered twice
  double corrupt_rate = 0.0;    ///< payload byte (or piggyback value bit) flipped
  /// Delayed notices surface within [1, max_delay_polls] receive polls.
  int max_delay_polls = 16;
  std::vector<int> dead_tnis;

  // --- permanent faults -------------------------------------------------
  /// 6D axes (tofu::Axis values, 0..5) whose links are severed: a route
  /// is unreachable iff its endpoints' coordinates differ on a down axis.
  std::vector<int> down_axes;
  /// Ranks whose TofuD NIC died. The node itself still computes (and the
  /// MPI fallback still reaches it) — exactly the degradation the
  /// failover ladder exists for.
  std::vector<int> crashed_ranks;
  /// Permanent faults manifest only after this many fabric puts, so a
  /// test can model a link that dies mid-run. 0 = down from the start.
  std::uint64_t fault_onset_puts = 0;

  bool message_faults() const {
    return drop_rate > 0 || delay_rate > 0 || duplicate_rate > 0 ||
           corrupt_rate > 0;
  }
  bool permanent_faults() const {
    return !down_axes.empty() || !crashed_ranks.empty();
  }
  bool enabled() const {
    return message_faults() || !dead_tnis.empty() || permanent_faults();
  }
};

/// What the injector decided for one message.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  int delay_polls = 0;          ///< 0 = deliver immediately
  std::uint64_t corrupt_pos = 0;  ///< payload byte index / value bit, pre-modulo
};

/// Counters of injected faults (fabric-side view of a chaos run).
struct FaultStats {
  std::atomic<std::uint64_t> decisions{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> tni_drops{0};
  std::atomic<std::uint64_t> fabric_puts{0};       ///< all puts seen (onset clock)
  std::atomic<std::uint64_t> unreachable_puts{0};  ///< puts refused on severed routes
};

/// Deterministic, seeded fault source consulted by `Network::put` /
/// `put_piggyback` for every data-plane message.
///
/// Decisions are a pure hash of (seed, src proc, dst proc, edata): the
/// edata word carries the logical channel and sequence number, so the
/// same logical message draws the same fate in every run regardless of
/// thread interleaving. Retransmissions and control messages are issued
/// with `PutMode::kRetransmit` / `kControl` and bypass the *stochastic*
/// injector — they model the recovered path, and faulting them would
/// only delay convergence without adding coverage. Permanent faults
/// (`unreachable`) apply to every mode: a severed link carries nothing.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }
  bool tni_down(int tni) const {
    return tni >= 0 && tni < 64 && ((down_mask_ >> tni) & 1u) != 0;
  }

  /// Decide the fate of one data put. Thread-safe; deterministic in its
  /// arguments. Updates the fault counters for every non-clean decision.
  FaultDecision decide(int src_proc, int dst_proc, std::uint64_t edata) const;

  /// Resolve proc ids to 6D coordinates of a default (linear) allocation
  /// so `down_axes` can be evaluated per route. Called by
  /// `Network::set_fault_injector`; a no-op without permanent faults.
  void map_procs(int nprocs);

  /// Advance the onset clock — called once per fabric put (any mode).
  void note_put() const {
    stats_.fabric_puts.fetch_add(1, std::memory_order_relaxed);
  }

  /// True when the route src -> dst is permanently severed and the fault
  /// has manifested (see FaultPlan::fault_onset_puts).
  bool unreachable(int src_proc, int dst_proc) const;

  /// Human-readable diagnosis for a severed route, used as the
  /// UnreachableError message.
  std::string unreachable_reason(int src_proc, int dst_proc) const;

  FaultStats& stats() const { return stats_; }

 private:
  bool crashed(int proc) const;

  FaultPlan plan_;
  std::uint64_t down_mask_ = 0;        ///< dead TNIs
  std::uint64_t down_axis_mask_ = 0;   ///< severed 6D axes
  std::vector<TofuCoord> proc_coords_; ///< filled by map_procs
  mutable FaultStats stats_;
};

}  // namespace lmp::tofu
