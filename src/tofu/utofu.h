#pragma once

#include <cstddef>
#include <vector>

#include "tofu/network.h"

namespace lmp::tofu {

/// RAII registered buffer: owns the storage *and* its STADD registration.
///
/// The paper's pre-registration optimization (Sec. 3.4) sizes these once
/// in the setup stage from the theoretical ghost-atom upper bound so the
/// whole simulation runs with a single registration syscall per buffer.
class RegisteredBuffer {
 public:
  RegisteredBuffer() = default;
  RegisteredBuffer(Network& net, int proc, std::size_t bytes);
  ~RegisteredBuffer();

  RegisteredBuffer(RegisteredBuffer&& o) noexcept;
  RegisteredBuffer& operator=(RegisteredBuffer&& o) noexcept;
  RegisteredBuffer(const RegisteredBuffer&) = delete;
  RegisteredBuffer& operator=(const RegisteredBuffer&) = delete;

  std::byte* data() { return storage_.data(); }
  const std::byte* data() const { return storage_.data(); }
  std::size_t size() const { return storage_.size(); }
  Stadd stadd() const { return stadd_; }
  bool valid() const { return net_ != nullptr; }

  /// Grow the buffer (re-registers — this is the *expensive* path the
  /// pre-registration optimization avoids; the dynamic baseline uses it).
  void grow(std::size_t new_bytes);

  double* as_doubles() { return reinterpret_cast<double*>(storage_.data()); }
  const double* as_doubles() const {
    return reinterpret_cast<const double*>(storage_.data());
  }

 private:
  void release();

  Network* net_ = nullptr;
  int proc_ = -1;
  std::vector<std::byte> storage_;
  Stadd stadd_ = 0;
};

/// Per-rank uTofu context: the handle through which the optimized comm
/// layer talks to the fabric. Mirrors the real uTofu usage pattern —
/// create VCQs on chosen (TNI, CQ) pairs, register memory, issue
/// one-sided puts, poll completions.
class UtofuContext {
 public:
  UtofuContext(Network& net, int proc) : net_(&net), proc_(proc) {}

  Network& network() { return *net_; }
  int proc() const { return proc_; }

  /// Create and remember a VCQ on (tni, cq); freed on destruction.
  VcqId create_vcq(int tni, int cq);

  /// Create one VCQ per TNI on CQ row `cq_row` — the fine-grained layout
  /// of Fig. 7 where rank r owns CQ_r of every TNI.
  std::vector<VcqId> create_vcq_per_tni(int cq_row);

  RegisteredBuffer make_buffer(std::size_t bytes) {
    return RegisteredBuffer(*net_, proc_, bytes);
  }

  ~UtofuContext();
  UtofuContext(const UtofuContext&) = delete;
  UtofuContext& operator=(const UtofuContext&) = delete;

 private:
  Network* net_;
  int proc_;
  std::vector<VcqId> owned_;
};

}  // namespace lmp::tofu
