#include "tofu/utofu.h"

#include <stdexcept>
#include <utility>

namespace lmp::tofu {

RegisteredBuffer::RegisteredBuffer(Network& net, int proc, std::size_t bytes)
    : net_(&net), proc_(proc), storage_(bytes) {
  if (bytes == 0) throw std::invalid_argument("zero-size registered buffer");
  stadd_ = net_->reg_mem(proc_, storage_.data(), storage_.size());
}

RegisteredBuffer::~RegisteredBuffer() { release(); }

RegisteredBuffer::RegisteredBuffer(RegisteredBuffer&& o) noexcept
    : net_(std::exchange(o.net_, nullptr)),
      proc_(o.proc_),
      storage_(std::move(o.storage_)),
      stadd_(std::exchange(o.stadd_, 0)) {}

RegisteredBuffer& RegisteredBuffer::operator=(RegisteredBuffer&& o) noexcept {
  if (this != &o) {
    release();
    net_ = std::exchange(o.net_, nullptr);
    proc_ = o.proc_;
    storage_ = std::move(o.storage_);
    stadd_ = std::exchange(o.stadd_, 0);
  }
  return *this;
}

void RegisteredBuffer::release() {
  if (net_ != nullptr && stadd_ != 0) {
    net_->dereg_mem(proc_, stadd_);
    stadd_ = 0;
    net_ = nullptr;
  }
}

void RegisteredBuffer::grow(std::size_t new_bytes) {
  if (!valid()) throw std::logic_error("grow on invalid buffer");
  if (new_bytes <= storage_.size()) return;
  Network& net = *net_;
  const int proc = proc_;
  net.dereg_mem(proc, stadd_);
  storage_.resize(new_bytes);
  stadd_ = net.reg_mem(proc, storage_.data(), storage_.size());
}

VcqId UtofuContext::create_vcq(int tni, int cq) {
  const VcqId id = net_->create_vcq(proc_, tni, cq);
  owned_.push_back(id);
  return id;
}

std::vector<VcqId> UtofuContext::create_vcq_per_tni(int cq_row) {
  std::vector<VcqId> ids;
  ids.reserve(static_cast<std::size_t>(net_->tnis()));
  for (int t = 0; t < net_->tnis(); ++t) {
    ids.push_back(create_vcq(t, cq_row));
  }
  return ids;
}

UtofuContext::~UtofuContext() {
  for (const VcqId id : owned_) {
    try {
      net_->free_vcq(id);
    } catch (...) {
      // Destructor must not throw; a double-free here indicates a test
      // tearing down the network first, which is harmless.
    }
  }
}

}  // namespace lmp::tofu
