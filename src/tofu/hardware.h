#pragma once

#include <cstdint>

namespace lmp::tofu {

/// Hardware constants of the Fugaku node and TofuD interconnect, as
/// published in the paper (Sec. 2.2) and the TofuD paper [Ajima et al.,
/// CLUSTER'18]. The functional transport uses the structural constants
/// (TNI/CQ counts); the performance model uses the timing constants.
struct Hardware {
  // --- A64FX node ---------------------------------------------------
  static constexpr int kCmgsPerNode = 4;        ///< core memory groups
  static constexpr int kComputeCoresPerCmg = 12;
  static constexpr int kAssistantCoresPerCmg = 1;
  static constexpr int kComputeCoresPerNode = kCmgsPerNode * kComputeCoresPerCmg;
  static constexpr double kHbmBandwidthPerCmg = 256e9;  ///< B/s
  static constexpr double kHbmCapacityPerCmg = 8e9;     ///< B
  /// 512-bit SVE, 32 DP flops per core per cycle at 2.2 GHz.
  static constexpr double kFlopsPerCorePerCycle = 32.0;
  static constexpr double kClockHz = 2.2e9;

  // --- TofuD interconnect -------------------------------------------
  static constexpr int kTnisPerNode = 6;   ///< independent network interfaces
  static constexpr int kCqsPerTni = 9;     ///< control queues per TNI
  static constexpr int kPortsPerNode = 10; ///< physical router ports
  static constexpr double kPortRate = 112e9 / 8;      ///< B/s bidirectional
  static constexpr double kLinkBandwidth = 6.8e9;     ///< B/s injection per link
  static constexpr double kPutLatency = 0.49e-6;      ///< s, minimal RDMA put
  static constexpr double kHopLatency = 0.10e-6;      ///< s per additional hop

  // --- Fugaku full-machine shape ------------------------------------
  /// 24 x 23 x 24 cells of 2 x 3 x 2 nodes = 158,976 nodes.
  static constexpr int kCellsX = 24;
  static constexpr int kCellsY = 23;
  static constexpr int kCellsZ = 24;
  static constexpr int kNodesPerCell = 12;
  static constexpr int kTotalNodes = kCellsX * kCellsY * kCellsZ * kNodesPerCell;

  /// The paper launches 4 MPI ranks per node (one per CMG, Sec. 3.2).
  static constexpr int kRanksPerNode = 4;
  static constexpr int kThreadsPerRank = 12;
};

/// Resident-set size of this process in bytes (Linux: /proc/self/statm
/// page count x page size), or 0 where the probe is unavailable. The
/// node-memory probe for the observability plane: HBM per CMG is 8 GB
/// (kHbmCapacityPerCmg), so one rank-per-CMG process watching its RSS
/// against that budget is the real Fugaku memory headroom question.
std::int64_t probe_rss_bytes();

}  // namespace lmp::tofu
