#include "tofu/topology.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tofu/hardware.h"

namespace lmp::tofu {

Topology::Topology(int cells_x, int cells_y, int cells_z)
    : cells_{cells_x, cells_y, cells_z} {
  if (cells_x < 1 || cells_y < 1 || cells_z < 1) {
    throw std::invalid_argument("cell counts must be >= 1");
  }
  if (cells_x > Hardware::kCellsX || cells_y > Hardware::kCellsY ||
      cells_z > Hardware::kCellsZ) {
    throw std::invalid_argument("allocation exceeds the Fugaku machine shape");
  }
  shape_.size = {cells_x, cells_y, cells_z, 2, 3, 2};
  // A sub-allocation smaller than the full machine does not wrap on the
  // cell axes (torus links exist only machine-wide); the intra-cell B axis
  // is always a 3-torus.
  shape_.torus = {cells_x == Hardware::kCellsX, cells_y == Hardware::kCellsY,
                  cells_z == Hardware::kCellsZ, false, true, false};
}

Topology Topology::for_nodes(long nodes) {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  // Grow a near-cubic cell allocation until it covers the request.
  int cx = 1, cy = 1, cz = 1;
  auto total = [&] { return static_cast<long>(cx) * cy * cz * Hardware::kNodesPerCell; };
  int turn = 0;
  while (total() < nodes) {
    switch (turn % 3) {
      case 0:
        if (cx < Hardware::kCellsX) ++cx;
        break;
      case 1:
        if (cy < Hardware::kCellsY) ++cy;
        break;
      default:
        if (cz < Hardware::kCellsZ) ++cz;
        break;
    }
    ++turn;
    if (turn > 3 * (Hardware::kCellsX + Hardware::kCellsY + Hardware::kCellsZ) &&
        total() < nodes) {
      throw std::invalid_argument("request exceeds the full machine");
    }
  }
  return Topology(cx, cy, cz);
}

TofuCoord Topology::coord_of(long node) const {
  if (node < 0 || node >= nnodes()) throw std::out_of_range("node id");
  TofuCoord c;
  long rest = node;
  // Order: c fastest, then b, a, x, y, z — matches node_of below.
  c[Axis::kC] = static_cast<int>(rest % 2);
  rest /= 2;
  c[Axis::kB] = static_cast<int>(rest % 3);
  rest /= 3;
  c[Axis::kA] = static_cast<int>(rest % 2);
  rest /= 2;
  c[Axis::kX] = static_cast<int>(rest % cells_.x);
  rest /= cells_.x;
  c[Axis::kY] = static_cast<int>(rest % cells_.y);
  rest /= cells_.y;
  c[Axis::kZ] = static_cast<int>(rest);
  return c;
}

long Topology::node_of(const TofuCoord& c) const {
  for (int ax = 0; ax < kAxisCount; ++ax) {
    if (c.v[ax] < 0 || c.v[ax] >= shape_.size[ax]) {
      throw std::out_of_range("tofu coordinate out of allocation");
    }
  }
  long id = c[Axis::kZ];
  id = id * cells_.y + c[Axis::kY];
  id = id * cells_.x + c[Axis::kX];
  id = id * 2 + c[Axis::kA];
  id = id * 3 + c[Axis::kB];
  id = id * 2 + c[Axis::kC];
  return id;
}

int Topology::hops(long u, long v) const {
  const TofuCoord cu = coord_of(u);
  const TofuCoord cv = coord_of(v);
  int h = 0;
  for (int ax = 0; ax < kAxisCount; ++ax) {
    h += shape_.axis_hops(static_cast<Axis>(ax), cu.v[ax], cv.v[ax]);
  }
  return h;
}

std::vector<long> Topology::map_md_grid(Int3 md) const {
  if (md.x < 1 || md.y < 1 || md.z < 1) {
    throw std::invalid_argument("MD grid must be >= 1 per axis");
  }
  if (md.x > 2 * cells_.x || md.y > 3 * cells_.y || md.z > 2 * cells_.z) {
    throw std::invalid_argument("MD grid does not fit the allocation");
  }
  std::vector<long> mapping(static_cast<std::size_t>(md.x) * md.y * md.z);
  for (int k = 0; k < md.z; ++k) {
    for (int j = 0; j < md.y; ++j) {
      for (int i = 0; i < md.x; ++i) {
        TofuCoord c;
        c[Axis::kX] = i / 2;
        c[Axis::kA] = i % 2;
        c[Axis::kY] = j / 3;
        c[Axis::kB] = j % 3;
        c[Axis::kZ] = k / 2;
        c[Axis::kC] = k % 2;
        mapping[static_cast<std::size_t>(i) +
                static_cast<std::size_t>(md.x) * (j + static_cast<std::size_t>(md.y) * k)] =
            node_of(c);
      }
    }
  }
  return mapping;
}

std::vector<long> Topology::map_linear(Int3 md) const {
  const long n = static_cast<long>(md.x) * md.y * md.z;
  if (n > nnodes()) throw std::invalid_argument("MD grid exceeds allocation");
  std::vector<long> mapping(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) mapping[static_cast<std::size_t>(i)] = i;
  return mapping;
}

MappingStats Topology::adjacency_stats(Int3 md,
                                       const std::vector<long>& mapping) const {
  const auto idx = [&](int i, int j, int k) {
    auto wrap = [](int v, int n) { return ((v % n) + n) % n; };
    return static_cast<std::size_t>(wrap(i, md.x)) +
           static_cast<std::size_t>(md.x) *
               (wrap(j, md.y) + static_cast<std::size_t>(md.y) * wrap(k, md.z));
  };
  MappingStats s;
  double hop_sum = 0.0;
  for (int k = 0; k < md.z; ++k) {
    for (int j = 0; j < md.y; ++j) {
      for (int i = 0; i < md.x; ++i) {
        const long u = mapping[idx(i, j, k)];
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const long v = mapping[idx(i + dx, j + dy, k + dz)];
              if (u == v) continue;  // wrapped onto itself on a tiny grid
              const int h = hops(u, v);
              hop_sum += h;
              s.max_hops_between_adjacent = std::max(s.max_hops_between_adjacent, h);
              ++s.pairs;
            }
          }
        }
      }
    }
  }
  if (s.pairs > 0) s.avg_hops_between_adjacent = hop_sum / static_cast<double>(s.pairs);
  return s;
}

}  // namespace lmp::tofu
