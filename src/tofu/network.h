#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace lmp::tofu {

/// STADD — a registered-memory handle, as in uTofu. Offsets into the
/// registered region address bytes within it.
using Stadd = std::uint64_t;

/// Globally unique VCQ identity. Senders address remote VCQs by id, the
/// ids having been exchanged out-of-band during setup (exactly as real
/// uTofu applications exchange `utofu_vcq_id_t`s).
using VcqId = std::int32_t;

inline constexpr VcqId kInvalidVcq = -1;

/// TCQ entry: local completion of a put issued from this VCQ.
struct TcqEntry {
  std::uint64_t edata = 0;
};

/// MRQ entry: remote-write notice at the destination VCQ, carrying the
/// 8-byte piggyback `edata` from the descriptor (paper Sec. 3.4 uses it
/// to ship ghost-offset values without a payload buffer).
struct MrqEntry {
  Stadd stadd = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t edata = 0;
  std::int32_t src_proc = -1;
};

/// Counters for ablation benches and tests (how many registrations did a
/// run perform? how many bytes crossed the fabric?).
struct NetworkStats {
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> bytes_put{0};
  std::atomic<std::uint64_t> registrations{0};
  std::atomic<std::uint64_t> deregistrations{0};
};

/// Functional in-process model of the TofuD fabric.
///
/// One `Network` is shared by all simulated ranks of a job. It really
/// moves bytes: `put` memcpys from the source registered region into the
/// destination registered region, then posts a TCQ completion at the
/// sender VCQ and an MRQ notice at the destination VCQ. All timing is
/// handled separately by the performance model — this class provides
/// *semantics* (and the registration/queue discipline the paper's
/// optimizations are built on).
///
/// Thread-safety: the registry is internally synchronized; each VCQ's
/// queues are mutex-protected so remote ranks can post concurrently.
/// Like real CQs, a single VCQ must only be *driven* (puts issued,
/// completions polled) by one thread at a time — the fine-grained comm
/// layer assigns disjoint VCQs to its pool threads for this reason.
class Network {
 public:
  /// `nprocs` communication endpoints ("ranks"). Each endpoint owns
  /// `tnis` TNIs with `cqs` control queues each (TofuD: 6 x 9).
  explicit Network(int nprocs, int tnis = 6, int cqs = 9);

  int nprocs() const { return nprocs_; }
  int tnis() const { return tnis_; }
  int cqs_per_tni() const { return cqs_; }

  // --- memory registration ------------------------------------------
  /// Register [base, base+len) of `proc` and return its STADD. Real
  /// registration pins pages via a syscall; the performance model charges
  /// `perf::Calibration::t_reg_per_call` for each of these events.
  Stadd reg_mem(int proc, void* base, std::size_t len);
  void dereg_mem(int proc, Stadd stadd);

  /// Resolve a proc-local STADD to host memory (bounds-checked).
  std::byte* resolve(int proc, Stadd stadd, std::uint64_t offset,
                     std::uint64_t length) const;

  // --- VCQ lifecycle --------------------------------------------------
  /// Create a VCQ on (proc, tni, cq). Throws if that CQ is already bound
  /// (hardware CQs are exclusive — paper Sec. 3.3).
  VcqId create_vcq(int proc, int tni, int cq);
  void free_vcq(VcqId id);
  int proc_of(VcqId id) const;
  int tni_of(VcqId id) const;

  // --- one-sided operations -------------------------------------------
  /// RDMA put: copy `length` bytes from (src_stadd+src_off) of the VCQ's
  /// proc into (dst_stadd+dst_off) of the destination VCQ's proc. Posts a
  /// TCQ entry locally and an MRQ entry (carrying `edata`) remotely.
  void put(VcqId src_vcq, VcqId dst_vcq, Stadd src_stadd, std::uint64_t src_off,
           Stadd dst_stadd, std::uint64_t dst_off, std::uint64_t length,
           std::uint64_t edata = 0);

  /// Piggyback-only put: delivers just the 8-byte `edata` through the MRQ
  /// descriptor, no buffer write (paper Sec. 3.4's offset exchange).
  void put_piggyback(VcqId src_vcq, VcqId dst_vcq, std::uint64_t edata);

  /// RDMA get: copy from the remote region into the local region; posts a
  /// TCQ entry locally when "complete" (no remote MRQ, as in TofuD gets).
  void get(VcqId src_vcq, VcqId dst_vcq, Stadd remote_stadd,
           std::uint64_t remote_off, Stadd local_stadd, std::uint64_t local_off,
           std::uint64_t length);

  // --- completion polling ----------------------------------------------
  std::optional<TcqEntry> poll_tcq(VcqId id);
  std::optional<MrqEntry> poll_mrq(VcqId id);

  /// Blocking variants (spin with yield — the host may have fewer cores
  /// than simulated ranks).
  TcqEntry wait_tcq(VcqId id);
  MrqEntry wait_mrq(VcqId id);

  const NetworkStats& stats() const { return stats_; }
  void reset_stats();

 private:
  struct Region {
    std::byte* base = nullptr;
    std::size_t len = 0;
  };
  struct Vcq {
    int proc = -1;
    int tni = -1;
    int cq = -1;
    bool active = false;
    std::mutex mu;
    std::deque<TcqEntry> tcq;
    std::deque<MrqEntry> mrq;
  };

  Vcq& vcq_checked(VcqId id);
  const Vcq& vcq_checked(VcqId id) const;

  int nprocs_;
  int tnis_;
  int cqs_;

  mutable std::mutex registry_mu_;
  std::vector<std::unordered_map<Stadd, Region>> regions_;  // per proc
  std::uint64_t next_stadd_ = 1;

  mutable std::mutex vcq_mu_;
  std::vector<std::unique_ptr<Vcq>> vcqs_;

  NetworkStats stats_;
};

}  // namespace lmp::tofu
