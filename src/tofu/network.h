#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "tofu/fault.h"
#include "tofu/link_telemetry.h"

namespace lmp::tofu {

/// STADD — a registered-memory handle, as in uTofu. Offsets into the
/// registered region address bytes within it.
using Stadd = std::uint64_t;

/// Globally unique VCQ identity. Senders address remote VCQs by id, the
/// ids having been exchanged out-of-band during setup (exactly as real
/// uTofu applications exchange `utofu_vcq_id_t`s).
using VcqId = std::int32_t;

inline constexpr VcqId kInvalidVcq = -1;

/// A wait on a completion queue exceeded its deadline. Real RDMA stacks
/// surface lost completions as errors rather than hanging; the message
/// names the queue (VCQ, direction, and — for the comm layer — the
/// logical channel) so a stuck run is diagnosable.
class CommTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The job was aborted (one rank hit an unrecoverable comm failure and
/// is rolling the run back). Blocking waits and new puts throw this so
/// every rank promptly unwinds to the failover path instead of spinning
/// out its full deadline against a torn-down peer.
class JobAbortedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Default ceiling on blocking completion waits. Generous — the host may
/// oversubscribe cores heavily — but finite, so a lost notice produces a
/// diagnostic instead of an infinite spin.
inline constexpr std::chrono::milliseconds kDefaultWaitDeadline{120000};

/// How a put participates in the fault model. Data puts are the normal
/// path and pass through the fault injector; retransmissions replay a
/// previously faulted message and bypass it (they model the recovered
/// path); control puts (retransmit requests) are the reliability
/// protocol's own traffic — fault-exempt and delivered on a separate
/// logical queue so a progress engine can service them out of band.
/// Retransmit and control puts post no TCQ completion (fire-and-forget).
enum class PutMode { kData, kRetransmit, kControl };

/// TCQ entry: local completion of a put issued from this VCQ.
struct TcqEntry {
  std::uint64_t edata = 0;
};

/// MRQ entry: remote-write notice at the destination VCQ, carrying the
/// 8-byte piggyback `edata` from the descriptor (paper Sec. 3.4 uses it
/// to ship ghost-offset values without a payload buffer).
struct MrqEntry {
  Stadd stadd = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t edata = 0;
  std::int32_t src_proc = -1;
  bool control = false;  ///< reliability-protocol message (PutMode::kControl)
  /// Causal-trace flow id the sender allocated for this message (0 = not
  /// traced). Rides next to `edata` exactly as a trace-side channel: the
  /// receiver's dispatcher closes the Perfetto flow with it.
  std::uint64_t flow_id = 0;
};

/// Counters for ablation benches and tests (how many registrations did a
/// run perform? how many bytes crossed the fabric?).
struct NetworkStats {
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> bytes_put{0};
  std::atomic<std::uint64_t> registrations{0};
  std::atomic<std::uint64_t> deregistrations{0};
  std::atomic<std::uint64_t> retransmit_puts{0};  ///< replays of faulted puts
  std::atomic<std::uint64_t> control_puts{0};     ///< retransmit requests
};

/// Functional in-process model of the TofuD fabric.
///
/// One `Network` is shared by all simulated ranks of a job. It really
/// moves bytes: `put` memcpys from the source registered region into the
/// destination registered region, then posts a TCQ completion at the
/// sender VCQ and an MRQ notice at the destination VCQ. All timing is
/// handled separately by the performance model — this class provides
/// *semantics* (and the registration/queue discipline the paper's
/// optimizations are built on).
///
/// An optional `FaultInjector` turns the perfectly reliable model into a
/// lossy one: data puts may be dropped, delayed (the notice surfaces only
/// on a later poll), duplicated, or corrupted, and whole TNIs can be
/// declared down. Local TCQ completions still fire for faulted data puts
/// — as on real hardware, where the sender's completion only certifies
/// injection into the fabric, not delivery.
///
/// Thread-safety: the registry is internally synchronized; each VCQ's
/// queues are mutex-protected so remote ranks can post concurrently.
/// Like real CQs, a single VCQ must only be *driven* (puts issued,
/// completions polled) by one thread at a time — the fine-grained comm
/// layer assigns disjoint VCQs to its pool threads for this reason. The
/// exception is the control queue: `poll_control` and retransmit puts
/// may be issued by a dedicated progress thread (modelling the A64FX
/// assistant cores that run communication progress on Fugaku).
class Network {
 public:
  /// `nprocs` communication endpoints ("ranks"). Each endpoint owns
  /// `tnis` TNIs with `cqs` control queues each (TofuD: 6 x 9).
  explicit Network(int nprocs, int tnis = 6, int cqs = 9);
  /// Detaches this fabric's LinkTelemetry from the LiveFabricRegistry,
  /// folding its traffic into the process-wide retired totals.
  ~Network();

  int nprocs() const { return nprocs_; }
  int tnis() const { return tnis_; }
  int cqs_per_tni() const { return cqs_; }

  // --- fault injection ------------------------------------------------
  /// Attach a fault injector; pass nullptr to restore perfect delivery.
  /// Must be called before traffic starts (not synchronized with puts).
  /// Resolves proc coordinates for the injector's permanent-fault model
  /// (FaultInjector::map_procs).
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);
  FaultInjector* fault_injector() const { return injector_.get(); }

  // --- job abort --------------------------------------------------------
  /// Mark the fabric as aborted: every subsequent put and every blocking
  /// wait (including ones already spinning) throws JobAbortedError naming
  /// `reason`. Idempotent (first reason wins); permanent for the lifetime
  /// of this Network — a failover attempt builds a fresh fabric.
  void abort_fabric(const std::string& reason);
  bool fabric_aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }
  /// Throws JobAbortedError when the fabric has been aborted.
  void check_aborted() const;

  // --- memory registration ------------------------------------------
  /// Register [base, base+len) of `proc` and return its STADD. Real
  /// registration pins pages via a syscall; the performance model charges
  /// `perf::Calibration::t_reg_per_call` for each of these events.
  Stadd reg_mem(int proc, void* base, std::size_t len);
  void dereg_mem(int proc, Stadd stadd);

  /// Resolve a proc-local STADD to host memory. Rejects unknown STADDs
  /// and any window that leaves the registered region (overflow-safe).
  std::byte* resolve(int proc, Stadd stadd, std::uint64_t offset,
                     std::uint64_t length) const;

  // --- VCQ lifecycle --------------------------------------------------
  /// Create a VCQ on (proc, tni, cq). Throws if that CQ is already bound
  /// (hardware CQs are exclusive — paper Sec. 3.3).
  VcqId create_vcq(int proc, int tni, int cq);
  void free_vcq(VcqId id);
  int proc_of(VcqId id) const;
  int tni_of(VcqId id) const;

  // --- one-sided operations -------------------------------------------
  /// RDMA put: copy `length` bytes from (src_stadd+src_off) of the VCQ's
  /// proc into (dst_stadd+dst_off) of the destination VCQ's proc. Posts a
  /// TCQ entry locally and an MRQ entry (carrying `edata`) remotely.
  /// Both windows are validated up front — even for length 0 — so an
  /// invalid STADD or an out-of-region offset is always a hard error.
  /// `flow` is the sender-allocated causal-trace id (0 = untraced); it is
  /// delivered in the MRQ notice and triggers a Perfetto flow-start (or
  /// flow-step for retransmits) inside this put's span.
  void put(VcqId src_vcq, VcqId dst_vcq, Stadd src_stadd, std::uint64_t src_off,
           Stadd dst_stadd, std::uint64_t dst_off, std::uint64_t length,
           std::uint64_t edata = 0, PutMode mode = PutMode::kData,
           std::uint64_t flow = 0);

  /// Piggyback-only put: delivers just the 8-byte `edata` through the MRQ
  /// descriptor, no buffer write (paper Sec. 3.4's offset exchange).
  void put_piggyback(VcqId src_vcq, VcqId dst_vcq, std::uint64_t edata,
                     PutMode mode = PutMode::kData, std::uint64_t flow = 0);

  /// RDMA get: copy from the remote region into the local region; posts a
  /// TCQ entry locally when "complete" (no remote MRQ, as in TofuD gets).
  /// Gets are not subject to fault injection (no user of the optimized
  /// comm path issues them).
  void get(VcqId src_vcq, VcqId dst_vcq, Stadd remote_stadd,
           std::uint64_t remote_off, Stadd local_stadd, std::uint64_t local_off,
           std::uint64_t length);

  // --- completion polling ----------------------------------------------
  /// Data-plane notices only; control messages are never returned here.
  std::optional<TcqEntry> poll_tcq(VcqId id);
  std::optional<MrqEntry> poll_mrq(VcqId id);

  /// Control-plane notices only (retransmit requests). May be called by
  /// a progress thread concurrently with the owner's data polls.
  std::optional<MrqEntry> poll_control(VcqId id);

  /// Blocking variants (spin with yield — the host may have fewer cores
  /// than simulated ranks). Throw CommTimeoutError past the deadline.
  TcqEntry wait_tcq(VcqId id,
                    std::chrono::milliseconds deadline = kDefaultWaitDeadline);
  MrqEntry wait_mrq(VcqId id,
                    std::chrono::milliseconds deadline = kDefaultWaitDeadline);

  const NetworkStats& stats() const { return stats_; }
  void reset_stats();

  /// Per-link / per-TNI transit accounting. Puts are charged only when
  /// `obs::metrics_enabled()`; a disabled run pays one branch per put.
  const LinkTelemetry& link_telemetry() const { return links_; }
  LinkTelemetry& link_telemetry() { return links_; }

 private:
  struct Region {
    std::byte* base = nullptr;
    std::size_t len = 0;
  };
  struct DelayedEntry {
    MrqEntry entry;
    int polls_left = 0;
  };
  struct Vcq {
    int proc = -1;
    int tni = -1;
    int cq = -1;
    bool active = false;
    std::mutex mu;
    std::deque<TcqEntry> tcq;
    std::deque<MrqEntry> mrq;
    std::deque<DelayedEntry> delayed;
  };

  Vcq& vcq_checked(VcqId id);
  const Vcq& vcq_checked(VcqId id) const;

  /// Locked lookup + overflow-safe window check; `what` names the access
  /// in the error message ("put source", "put destination", ...).
  std::byte* window_checked(int proc, Stadd stadd, std::uint64_t offset,
                            std::uint64_t length, const char* what) const;

  /// Move delayed notices whose poll budget expired into the MRQ.
  /// Caller holds v.mu.
  static void advance_delayed(Vcq& v);

  int nprocs_;
  int tnis_;
  int cqs_;

  mutable std::mutex registry_mu_;
  std::vector<std::unordered_map<Stadd, Region>> regions_;  // per proc
  std::uint64_t next_stadd_ = 1;

  mutable std::mutex vcq_mu_;
  std::vector<std::unique_ptr<Vcq>> vcqs_;

  /// Permanent-fault gate shared by put/put_piggyback/get: advances the
  /// injector's onset clock, then throws UnreachableError if the route
  /// is severed.
  void check_route(int src_proc, int dst_proc) const;

  std::shared_ptr<FaultInjector> injector_;
  NetworkStats stats_;
  LinkTelemetry links_;

  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mu_;
  std::string abort_reason_;
};

}  // namespace lmp::tofu
