#pragma once

#include <vector>

#include "tofu/coords.h"
#include "util/vec3.h"

namespace lmp::tofu {

using util::Int3;

/// Statistics of a rank-grid -> node mapping, used by the `topo map`
/// optimization (paper Sec. 3.5.3) and the topology_explorer example.
struct MappingStats {
  double avg_hops_between_adjacent = 0.0;  ///< over all 26-neighbor pairs
  int max_hops_between_adjacent = 0;
  long pairs = 0;
};

/// A (sub-)allocation of the TofuD 6D mesh/torus.
///
/// Node ids are dense in [0, total_nodes). The allocation is shaped as
/// `cells` x (2 x 3 x 2): the job scheduler hands out whole 2x3x2 cells
/// ("a shelf is 2x3x8 = 4 cells", paper Sec. 4.3.1).
class Topology {
 public:
  /// Build an allocation of cx*cy*cz cells. Throws if any count < 1 or
  /// the allocation exceeds the full machine shape.
  Topology(int cells_x, int cells_y, int cells_z);

  /// Allocation sized to cover at least `nodes` nodes with a near-cubic
  /// cell shape (how the paper requests "integral multiples of a shelf").
  static Topology for_nodes(long nodes);

  long nnodes() const { return shape_.total_nodes(); }
  const AxisShape& shape() const { return shape_; }

  TofuCoord coord_of(long node) const;
  long node_of(const TofuCoord& c) const;

  /// Dimension-order-routing hop count between two nodes: the sum of
  /// per-axis torus/mesh distances.
  int hops(long u, long v) const;

  /// "topo map": embed an MD node grid (mx, my, mz) into the 6D torus so
  /// that grid-adjacent MD nodes are network-adjacent. The MD X axis is
  /// folded over (cell X, A), Y over (cell Y, B), Z over (cell Z, C):
  /// grid position (i, j, k) -> (i/2, j/3, k/2, i%2, j%3, k%2).
  /// Requires mx <= 2*cells_x, my <= 3*cells_y, mz <= 2*cells_z.
  std::vector<long> map_md_grid(Int3 md_nodes) const;

  /// Naive mapping (rank order = node id order), the no-topo-map baseline.
  std::vector<long> map_linear(Int3 md_nodes) const;

  /// Evaluate how well `mapping` preserves MD adjacency: average and max
  /// network hops over every pair of 26-neighboring MD grid nodes.
  MappingStats adjacency_stats(Int3 md_nodes,
                               const std::vector<long>& mapping) const;

 private:
  Int3 cells_;
  AxisShape shape_;
};

}  // namespace lmp::tofu
