#pragma once

#include <array>
#include <string>

#include "util/vec3.h"

namespace lmp::tofu {

/// The six TofuD axes. X/Y/Z connect cells; A/B/C address the 2x3x2
/// nodes inside a cell. B is a torus of size 3; A and C are 2-node
/// meshes (each node pair is directly linked, so hop distance is |d|).
enum class Axis : int { kX = 0, kY, kZ, kA, kB, kC, kCount };

constexpr int kAxisCount = static_cast<int>(Axis::kCount);

/// 6D TofuD node coordinate (x, y, z, a, b, c).
struct TofuCoord {
  std::array<int, kAxisCount> v{};

  int& operator[](Axis ax) { return v[static_cast<int>(ax)]; }
  int operator[](Axis ax) const { return v[static_cast<int>(ax)]; }
  bool operator==(const TofuCoord&) const = default;

  std::string to_string() const;
};

/// Extent and wrap behaviour of the six axes for a (possibly partial)
/// TofuD allocation. X/Y/Z sizes come from the job allocation shape; the
/// intra-cell axes are fixed at 2 x 3 x 2.
struct AxisShape {
  std::array<int, kAxisCount> size{1, 1, 1, 2, 3, 2};
  /// Torus (wrap-around) per axis. On Fugaku X/Y/Z/B are tori, A/C are
  /// meshes; a mesh axis of size 2 still has hop distance <= 1.
  std::array<bool, kAxisCount> torus{true, true, true, false, true, false};

  int size_of(Axis ax) const { return size[static_cast<int>(ax)]; }
  bool is_torus(Axis ax) const { return torus[static_cast<int>(ax)]; }

  long total_nodes() const {
    long n = 1;
    for (int s : size) n *= s;
    return n;
  }

  /// Hop distance along one axis between coordinates u and v.
  int axis_hops(Axis ax, int u, int v) const;
};

}  // namespace lmp::tofu
