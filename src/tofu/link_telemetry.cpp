#include "tofu/link_telemetry.h"

#include <algorithm>
#include <stdexcept>

#include "util/table_printer.h"

namespace lmp::tofu {

const char* axis_name(Axis ax) {
  switch (ax) {
    case Axis::kX:
      return "X";
    case Axis::kY:
      return "Y";
    case Axis::kZ:
      return "Z";
    case Axis::kA:
      return "A";
    case Axis::kB:
      return "B";
    case Axis::kC:
      return "C";
    default:
      return "?";
  }
}

std::uint64_t FabricSnapshot::max_link_bytes() const {
  std::uint64_t m = 0;
  for (const auto& l : links) m = std::max(m, l.bytes);
  return m;
}

double FabricSnapshot::mean_link_bytes() const {
  if (links.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& l : links) sum += static_cast<double>(l.bytes);
  return sum / static_cast<double>(links.size());
}

FabricSnapshot& FabricSnapshot::operator+=(const FabricSnapshot& o) {
  total_bytes += o.total_bytes;
  total_packets += o.total_packets;
  puts_charged += o.puts_charged;
  // Merge per-link stats on (from, axis, negative) identity.
  for (const auto& ol : o.links) {
    auto it = std::find_if(links.begin(), links.end(), [&](const FabricLinkStat& l) {
      return l.from_node == ol.from_node && l.axis == ol.axis &&
             l.negative == ol.negative;
    });
    if (it == links.end()) {
      links.push_back(ol);
    } else {
      it->bytes += ol.bytes;
      it->packets += ol.packets;
    }
  }
  std::stable_sort(links.begin(), links.end(),
                   [](const FabricLinkStat& a, const FabricLinkStat& b) {
                     return a.bytes > b.bytes;
                   });
  if (tnis.size() < o.tnis.size()) tnis.resize(o.tnis.size());
  for (std::size_t i = 0; i < o.tnis.size(); ++i) {
    tnis[i].bytes += o.tnis[i].bytes;
    tnis[i].packets += o.tnis[i].packets;
  }
  if (hop_histogram.size() < o.hop_histogram.size()) {
    hop_histogram.resize(o.hop_histogram.size());
  }
  for (std::size_t i = 0; i < o.hop_histogram.size(); ++i) {
    hop_histogram[i] += o.hop_histogram[i];
  }
  return *this;
}

LinkTelemetry::LinkTelemetry(long nprocs, int tnis)
    : topo_(Topology::for_nodes(nprocs)),
      tnis_(tnis),
      tni_(static_cast<std::size_t>(tnis > 0 ? tnis : 1)) {}

std::vector<FabricLinkStat> LinkTelemetry::route(long u, long v) const {
  std::vector<FabricLinkStat> steps;
  TofuCoord cur = topo_.coord_of(u);
  const TofuCoord dst = topo_.coord_of(v);
  const AxisShape& shape = topo_.shape();
  for (int ai = 0; ai < kAxisCount; ++ai) {
    const Axis ax = static_cast<Axis>(ai);
    const int n = shape.size_of(ax);
    while (cur[ax] != dst[ax]) {
      int step;
      if (shape.is_torus(ax)) {
        // Shorter way around; ties break toward the positive direction.
        const int fwd = ((dst[ax] - cur[ax]) % n + n) % n;
        const int bwd = n - fwd;
        step = fwd <= bwd ? 1 : -1;
      } else {
        step = dst[ax] > cur[ax] ? 1 : -1;
      }
      FabricLinkStat link;
      link.from_node = topo_.node_of(cur);
      link.axis = ax;
      link.negative = step < 0;
      cur[ax] = ((cur[ax] + step) % n + n) % n;
      link.to_node = topo_.node_of(cur);
      steps.push_back(link);
    }
  }
  return steps;
}

void LinkTelemetry::charge(int src_proc, int dst_proc, int src_tni,
                           std::uint64_t bytes, int copies) {
  if (copies < 1) return;
  const long n = topo_.nnodes();
  const long u = static_cast<long>(src_proc) % n;
  const long v = static_cast<long>(dst_proc) % n;
  const auto steps = route(u, v);
  const std::uint64_t packets = static_cast<std::uint64_t>(copies);
  const std::uint64_t total = bytes * packets;

  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : steps) {
    LinkCounters& c = links_[link_key(s.from_node, s.axis, s.negative)];
    c.bytes += total;
    c.packets += packets;
    total_bytes_ += total;
    total_packets_ += packets;
  }
  if (src_tni >= 0 && static_cast<std::size_t>(src_tni) < tni_.size()) {
    tni_[static_cast<std::size_t>(src_tni)].bytes += total;
    tni_[static_cast<std::size_t>(src_tni)].packets += packets;
  }
  const std::size_t hops = steps.size();
  if (hops_.size() <= hops) hops_.resize(hops + 1);
  hops_[hops] += packets;
  puts_charged_ += packets;
}

FabricSnapshot LinkTelemetry::snapshot() const {
  FabricSnapshot s;
  std::lock_guard<std::mutex> lk(mu_);
  s.total_bytes = total_bytes_;
  s.total_packets = total_packets_;
  s.puts_charged = puts_charged_;
  s.links.reserve(links_.size());
  for (const auto& [key, c] : links_) {
    FabricLinkStat l;
    const bool negative = (key % 2) != 0;
    const std::uint64_t rest = key / 2;
    l.axis = static_cast<Axis>(rest % kAxisCount);
    l.from_node = static_cast<long>(rest / kAxisCount);
    l.negative = negative;
    // Re-walk one step to recover the destination node id.
    TofuCoord c6 = topo_.coord_of(l.from_node);
    const int n = topo_.shape().size_of(l.axis);
    const int step = negative ? -1 : 1;
    c6[l.axis] = ((c6[l.axis] + step) % n + n) % n;
    l.to_node = topo_.node_of(c6);
    l.bytes = c.bytes;
    l.packets = c.packets;
    s.links.push_back(l);
  }
  // Deterministic order: hottest first, then by (from, axis, dir) so
  // equal-load links don't reshuffle between runs.
  std::sort(s.links.begin(), s.links.end(),
            [](const FabricLinkStat& a, const FabricLinkStat& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              if (a.from_node != b.from_node) return a.from_node < b.from_node;
              if (a.axis != b.axis) return a.axis < b.axis;
              return a.negative < b.negative;
            });
  s.tnis.resize(tni_.size());
  for (std::size_t i = 0; i < tni_.size(); ++i) {
    s.tnis[i] = {tni_[i].bytes, tni_[i].packets};
  }
  s.hop_histogram = hops_;
  return s;
}

void LinkTelemetry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  links_.clear();
  for (auto& t : tni_) t = {};
  hops_.clear();
  total_bytes_ = 0;
  total_packets_ = 0;
  puts_charged_ = 0;
}

std::string format_fabric_table(const Topology& topo, const FabricSnapshot& s,
                                std::size_t top_k) {
  if (s.puts_charged == 0) return "";
  std::string out = "fabric link utilization\n";
  {
    util::TablePrinter t({"metric", "value"});
    t.add_row({"puts charged", std::to_string(s.puts_charged)});
    t.add_row({"link-bytes total", std::to_string(s.total_bytes)});
    t.add_row({"link-packets total", std::to_string(s.total_packets)});
    t.add_row({"links used", std::to_string(s.links.size())});
    t.add_row({"max link bytes", std::to_string(s.max_link_bytes())});
    t.add_row({"mean link bytes", util::TablePrinter::fmt(s.mean_link_bytes(), 1)});
    out += t.to_string();
  }
  {
    out += "hops:";
    for (std::size_t h = 0; h < s.hop_histogram.size(); ++h) {
      out += " ";
      out += std::to_string(h);
      out += "=";
      out += std::to_string(s.hop_histogram[h]);
    }
    out += "\n";
  }
  if (!s.links.empty()) {
    util::TablePrinter t({"link", "axis", "bytes", "packets"});
    const std::size_t k = std::min(top_k, s.links.size());
    for (std::size_t i = 0; i < k; ++i) {
      const auto& l = s.links[i];
      const std::string name = topo.coord_of(l.from_node).to_string() +
                               " -> " + topo.coord_of(l.to_node).to_string();
      t.add_row({name, std::string(axis_name(l.axis)) + (l.negative ? "-" : "+"),
                 std::to_string(l.bytes), std::to_string(l.packets)});
    }
    out += "top links (hottest first)\n";
    out += t.to_string();
  }
  bool any_tni = false;
  for (const auto& t : s.tnis) any_tni = any_tni || t.packets > 0;
  if (any_tni) {
    util::TablePrinter t({"tni", "bytes", "packets"});
    for (std::size_t i = 0; i < s.tnis.size(); ++i) {
      t.add_row({std::to_string(i), std::to_string(s.tnis[i].bytes),
                 std::to_string(s.tnis[i].packets)});
    }
    out += "per-TNI injection\n";
    out += t.to_string();
  }
  return out;
}

LiveFabricRegistry& LiveFabricRegistry::instance() {
  static LiveFabricRegistry r;
  return r;
}

void LiveFabricRegistry::attach(const LinkTelemetry* t) {
  std::lock_guard<std::mutex> lk(mu_);
  live_.push_back(t);
}

void LiveFabricRegistry::detach(const LinkTelemetry* t) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = std::find(live_.begin(), live_.end(), t);
  if (it == live_.end()) return;
  live_.erase(it);
  fold_locked(t->snapshot());
}

void LiveFabricRegistry::fold_locked(const FabricSnapshot& s) {
  if (s.tnis.size() > retired_tnis_.size()) retired_tnis_.resize(s.tnis.size());
  for (std::size_t i = 0; i < s.tnis.size(); ++i) {
    retired_tnis_[i].bytes += s.tnis[i].bytes;
    retired_tnis_[i].packets += s.tnis[i].packets;
  }
  retired_bytes_ += s.total_bytes;
  retired_packets_ += s.total_packets;
}

std::vector<FabricTniStat> LiveFabricRegistry::tni_totals() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<FabricTniStat> out = retired_tnis_;
  for (const LinkTelemetry* t : live_) {
    const FabricSnapshot s = t->snapshot();
    if (s.tnis.size() > out.size()) out.resize(s.tnis.size());
    for (std::size_t i = 0; i < s.tnis.size(); ++i) {
      out[i].bytes += s.tnis[i].bytes;
      out[i].packets += s.tnis[i].packets;
    }
  }
  return out;
}

std::uint64_t LiveFabricRegistry::total_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t out = retired_bytes_;
  for (const LinkTelemetry* t : live_) out += t->snapshot().total_bytes;
  return out;
}

std::uint64_t LiveFabricRegistry::total_packets() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t out = retired_packets_;
  for (const LinkTelemetry* t : live_) out += t->snapshot().total_packets;
  return out;
}

std::size_t LiveFabricRegistry::live_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_.size();
}

}  // namespace lmp::tofu
