#include "tofu/fault.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

#include "tofu/topology.h"

namespace lmp::tofu {

namespace {

/// splitmix64 finalizer — the same mixer util::Rng seeds with, used here
/// as a stateless hash so decisions need no shared mutable RNG state
/// (shared state would make the fault sequence depend on thread timing).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t v) {
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

constexpr char kAxisNames[kAxisCount] = {'X', 'Y', 'Z', 'a', 'b', 'c'};

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const double r : {plan_.drop_rate, plan_.delay_rate,
                         plan_.duplicate_rate, plan_.corrupt_rate}) {
    if (r < 0.0 || r > 1.0) {
      throw std::invalid_argument("fault rates must be in [0, 1]");
    }
  }
  if (plan_.max_delay_polls < 1) {
    throw std::invalid_argument("max_delay_polls must be >= 1");
  }
  for (const int t : plan_.dead_tnis) {
    if (t < 0 || t >= 64) throw std::invalid_argument("dead TNI out of range");
    down_mask_ |= 1ULL << t;
  }
  for (const int ax : plan_.down_axes) {
    if (ax < 0 || ax >= kAxisCount) {
      throw std::invalid_argument("down axis must be a tofu::Axis (0..5)");
    }
    down_axis_mask_ |= 1ULL << ax;
  }
  for (const int r : plan_.crashed_ranks) {
    if (r < 0) throw std::invalid_argument("crashed rank must be >= 0");
  }
}

void FaultInjector::map_procs(int nprocs) {
  if (!plan_.permanent_faults() || nprocs < 1) return;
  // Same default allocation the job itself would get: a near-cubic cell
  // block with proc i on node i (Topology::map_linear).
  const Topology topo = Topology::for_nodes(nprocs);
  proc_coords_.clear();
  proc_coords_.reserve(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    proc_coords_.push_back(topo.coord_of(p));
  }
}

bool FaultInjector::crashed(int proc) const {
  return std::find(plan_.crashed_ranks.begin(), plan_.crashed_ranks.end(),
                   proc) != plan_.crashed_ranks.end();
}

bool FaultInjector::unreachable(int src_proc, int dst_proc) const {
  if (!plan_.permanent_faults() || src_proc == dst_proc) return false;
  if (stats_.fabric_puts.load(std::memory_order_relaxed) <=
      plan_.fault_onset_puts) {
    return false;  // the link has not died yet
  }
  if (crashed(src_proc) || crashed(dst_proc)) return true;
  if (down_axis_mask_ != 0 &&
      static_cast<std::size_t>(src_proc) < proc_coords_.size() &&
      static_cast<std::size_t>(dst_proc) < proc_coords_.size()) {
    const TofuCoord& a = proc_coords_[static_cast<std::size_t>(src_proc)];
    const TofuCoord& b = proc_coords_[static_cast<std::size_t>(dst_proc)];
    for (int ax = 0; ax < kAxisCount; ++ax) {
      if (((down_axis_mask_ >> ax) & 1u) != 0 && a.v[ax] != b.v[ax]) {
        return true;  // the route must traverse a severed axis
      }
    }
  }
  return false;
}

std::string FaultInjector::unreachable_reason(int src_proc,
                                              int dst_proc) const {
  std::ostringstream os;
  os << "route rank " << src_proc << " -> rank " << dst_proc
     << " unreachable:";
  if (crashed(src_proc)) os << " rank " << src_proc << " crashed (NIC lost);";
  if (crashed(dst_proc)) os << " rank " << dst_proc << " crashed (NIC lost);";
  if (down_axis_mask_ != 0 &&
      static_cast<std::size_t>(src_proc) < proc_coords_.size() &&
      static_cast<std::size_t>(dst_proc) < proc_coords_.size()) {
    const TofuCoord& a = proc_coords_[static_cast<std::size_t>(src_proc)];
    const TofuCoord& b = proc_coords_[static_cast<std::size_t>(dst_proc)];
    for (int ax = 0; ax < kAxisCount; ++ax) {
      if (((down_axis_mask_ >> ax) & 1u) != 0 && a.v[ax] != b.v[ax]) {
        os << " link down on axis " << kAxisNames[ax] << ";";
      }
    }
  }
  os << " after "
     << stats_.fabric_puts.load(std::memory_order_relaxed) << " fabric puts";
  return os.str();
}

FaultDecision FaultInjector::decide(int src_proc, int dst_proc,
                                    std::uint64_t edata) const {
  FaultDecision d;
  if (!plan_.message_faults()) return d;
  stats_.decisions.fetch_add(1, std::memory_order_relaxed);

  std::uint64_t h = mix(plan_.seed);
  h = mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_proc))
               << 32 |
               static_cast<std::uint32_t>(dst_proc)));
  h = mix(h ^ edata);

  if (to_unit(mix(h + 1)) < plan_.drop_rate) {
    d.drop = true;
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return d;
  }
  if (to_unit(mix(h + 2)) < plan_.delay_rate) {
    d.delay_polls = 1 + static_cast<int>(
        mix(h + 3) % static_cast<std::uint64_t>(plan_.max_delay_polls));
    stats_.delayed.fetch_add(1, std::memory_order_relaxed);
  }
  if (to_unit(mix(h + 4)) < plan_.duplicate_rate) {
    d.duplicate = true;
    stats_.duplicated.fetch_add(1, std::memory_order_relaxed);
  }
  if (to_unit(mix(h + 5)) < plan_.corrupt_rate) {
    d.corrupt = true;
    d.corrupt_pos = mix(h + 6);
    stats_.corrupted.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

MemFaultInjector::MemFaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  if (plan_.mem_flip_rate < 0.0 || plan_.mem_flip_rate > 1.0) {
    throw std::invalid_argument("mem_flip_rate must be in [0, 1]");
  }
  if (plan_.mem_flip_onset_step < 0) {
    throw std::invalid_argument("mem_flip_onset_step must be >= 0");
  }
  for (const MemFault& f : plan_.mem_faults) {
    if (f.step < 0) throw std::invalid_argument("mem fault step must be >= 0");
    if (f.bit < 0 || f.bit > 63) {
      throw std::invalid_argument("mem fault bit must be in [0, 63]");
    }
    if (f.target < 0 || f.target > static_cast<int>(MemTarget::kGhostPos)) {
      throw std::invalid_argument("mem fault target must be a MemTarget");
    }
  }
  applied_.assign(plan_.mem_faults.size(), 0);
}

int MemFaultInjector::apply(int rank, int step, MemTarget target, double* data,
                            std::size_t nwords) {
  if (nwords == 0 || data == nullptr) return 0;
  int applied = 0;
  const auto flip = [&](std::size_t word, int bit) {
    std::uint64_t v = std::bit_cast<std::uint64_t>(data[word]);
    v ^= 1ULL << (bit & 63);
    data[word] = std::bit_cast<double>(v);
    ++applied;
    stats_.flips_injected.fetch_add(1, std::memory_order_relaxed);
  };

  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < plan_.mem_faults.size(); ++i) {
    const MemFault& f = plan_.mem_faults[i];
    if (f.step != step || f.target != static_cast<int>(target)) continue;
    if (f.rank >= 0 && f.rank != rank) continue;
    if (!f.persistent && applied_[i]) {
      stats_.flips_suppressed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    flip(static_cast<std::size_t>(f.word % nwords), f.bit);
    applied_[i] = 1;
  }

  if (plan_.mem_flip_rate > 0 && step > plan_.mem_flip_onset_step) {
    // Pure hash of (seed, rank, step, slab): the same chaos plan flips
    // the same words in every run. Restricted to high exponent bits so
    // every flip is a physics-visible explosion the guards must catch —
    // a mantissa-tail flip would "pass" trivially and test nothing.
    std::uint64_t h = mix(plan_.seed ^ 0x6d656d666c6970ULL);  // "memflip"
    h = mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank))
                 << 32 |
                 static_cast<std::uint32_t>(step)));
    h = mix(h ^ static_cast<std::uint64_t>(target));
    if (to_unit(mix(h + 1)) < plan_.mem_flip_rate && fired_.insert(h).second) {
      flip(static_cast<std::size_t>(mix(h + 2) % nwords),
           56 + static_cast<int>(mix(h + 3) % 7));  // bits 56..62
    }
  }
  return applied;
}

}  // namespace lmp::tofu
