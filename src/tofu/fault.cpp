#include "tofu/fault.h"

#include <stdexcept>

namespace lmp::tofu {

namespace {

/// splitmix64 finalizer — the same mixer util::Rng seeds with, used here
/// as a stateless hash so decisions need no shared mutable RNG state
/// (shared state would make the fault sequence depend on thread timing).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t v) {
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const double r : {plan_.drop_rate, plan_.delay_rate,
                         plan_.duplicate_rate, plan_.corrupt_rate}) {
    if (r < 0.0 || r > 1.0) {
      throw std::invalid_argument("fault rates must be in [0, 1]");
    }
  }
  if (plan_.max_delay_polls < 1) {
    throw std::invalid_argument("max_delay_polls must be >= 1");
  }
  for (const int t : plan_.dead_tnis) {
    if (t < 0 || t >= 64) throw std::invalid_argument("dead TNI out of range");
    down_mask_ |= 1ULL << t;
  }
}

FaultDecision FaultInjector::decide(int src_proc, int dst_proc,
                                    std::uint64_t edata) const {
  FaultDecision d;
  if (!plan_.message_faults()) return d;
  stats_.decisions.fetch_add(1, std::memory_order_relaxed);

  std::uint64_t h = mix(plan_.seed);
  h = mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_proc))
               << 32 |
               static_cast<std::uint32_t>(dst_proc)));
  h = mix(h ^ edata);

  if (to_unit(mix(h + 1)) < plan_.drop_rate) {
    d.drop = true;
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return d;
  }
  if (to_unit(mix(h + 2)) < plan_.delay_rate) {
    d.delay_polls = 1 + static_cast<int>(
        mix(h + 3) % static_cast<std::uint64_t>(plan_.max_delay_polls));
    stats_.delayed.fetch_add(1, std::memory_order_relaxed);
  }
  if (to_unit(mix(h + 4)) < plan_.duplicate_rate) {
    d.duplicate = true;
    stats_.duplicated.fetch_add(1, std::memory_order_relaxed);
  }
  if (to_unit(mix(h + 5)) < plan_.corrupt_rate) {
    d.corrupt = true;
    d.corrupt_pos = mix(h + 6);
    stats_.corrupted.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

}  // namespace lmp::tofu
