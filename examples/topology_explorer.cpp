// Explore the TofuD 6D mesh/torus and the paper's `topo map` (Sec. 3.5.3):
// request an allocation, embed an MD rank grid into it, and compare the
// network distance between MD-adjacent nodes with and without the
// topology-aware mapping.
//
//   ./topology_explorer [nodes]

#include <cstdio>
#include <cstdlib>

#include "geom/decomposition.h"
#include "tofu/hardware.h"
#include "tofu/topology.h"
#include "util/table_printer.h"

using namespace lmp;

int main(int argc, char** argv) {
  const long want = argc > 1 ? std::atol(argv[1]) : 768;

  const tofu::Topology topo = tofu::Topology::for_nodes(want);
  std::printf("requested %ld nodes -> allocated %ld (cells of 2x3x2, the "
              "scheduler's shelf units)\n",
              want, topo.nnodes());
  std::printf("full machine for scale: %d nodes = %dx%dx%d cells x 12\n\n",
              tofu::Hardware::kTotalNodes, tofu::Hardware::kCellsX,
              tofu::Hardware::kCellsY, tofu::Hardware::kCellsZ);

  // A few example routes.
  util::TablePrinter routes({"from", "to", "hops"});
  for (const long v : {1L, 5L, 11L, topo.nnodes() / 2, topo.nnodes() - 1}) {
    routes.add_row({topo.coord_of(0).to_string(), topo.coord_of(v).to_string(),
                    std::to_string(topo.hops(0, v))});
  }
  routes.print();

  // Embed an MD node grid: x folds over (cell X, A), y over (cell Y, B),
  // z over (cell Z, C) — the paper's Fig. 3.
  const util::Int3 md = geom::choose_grid(
      static_cast<int>(topo.nnodes()),
      {2.0 * topo.shape().size_of(tofu::Axis::kX),
       3.0 * topo.shape().size_of(tofu::Axis::kY),
       2.0 * topo.shape().size_of(tofu::Axis::kZ)});
  std::printf("\nMD node grid %dx%dx%d mapped into the allocation:\n", md.x,
              md.y, md.z);

  const auto mapped = topo.map_md_grid(md);
  const auto linear = topo.map_linear(md);
  const tofu::MappingStats with = topo.adjacency_stats(md, mapped);
  const tofu::MappingStats without = topo.adjacency_stats(md, linear);

  util::TablePrinter t({"mapping", "avg hops (26-neigh)", "max hops"});
  t.add_row({"topo map (Sec. 3.5.3)",
             util::TablePrinter::fmt(with.avg_hops_between_adjacent, 3),
             std::to_string(with.max_hops_between_adjacent)});
  t.add_row({"naive linear",
             util::TablePrinter::fmt(without.avg_hops_between_adjacent, 3),
             std::to_string(without.max_hops_between_adjacent)});
  t.print();

  std::printf("\ntopo map cuts the average neighbor distance %.1fx — fewer "
              "hops means lower\nlatency for every ghost exchange "
              "(T = base + hops * t_hop + bytes/bw).\n",
              without.avg_hops_between_adjacent /
                  with.avg_hops_between_adjacent);
  return 0;
}
