// Drive the uTofu-style one-sided API directly (no MD): a ring of ranks
// exchanges halo payloads with RDMA puts into pre-registered round-robin
// buffers, acknowledging with 8-byte piggyback descriptors — the exact
// primitives the optimized comm layer is built from (Secs. 3.2-3.4).
//
//   ./comm_patterns_demo [ranks]

#include <array>
#include <cstdio>
#include <deque>
#include <cstdlib>
#include <vector>

#include "comm/msg_codec.h"
#include "minimpi/runtime.h"
#include "minimpi/world.h"
#include "tofu/utofu.h"

using namespace lmp;

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  constexpr int kRounds = 5;
  constexpr int kDoubles = 8;

  tofu::Network net(nranks);

  // Published addresses, filled before anyone communicates.
  struct Published {
    tofu::VcqId vcq = tofu::kInvalidVcq;
    std::array<tofu::Stadd, 4> ring{};
  };
  std::vector<Published> book(static_cast<std::size_t>(nranks));

  minimpi::World world(nranks);

  minimpi::run_ranks(nranks, [&](int rank) {
    tofu::UtofuContext ctx(net, rank);
    const tofu::VcqId vcq = ctx.create_vcq(/*tni=*/0, /*cq=*/0);

    // Pre-register everything once (Sec. 3.4): 4 round-robin receive
    // buffers plus one send buffer.
    std::array<tofu::RegisteredBuffer, 4> rings;
    tofu::RegisteredBuffer send = ctx.make_buffer(kDoubles * sizeof(double));
    book[static_cast<std::size_t>(rank)].vcq = vcq;
    for (int s = 0; s < 4; ++s) {
      rings[static_cast<std::size_t>(s)] =
          ctx.make_buffer(kDoubles * sizeof(double));
      book[static_cast<std::size_t>(rank)].ring[static_cast<std::size_t>(s)] =
          rings[static_cast<std::size_t>(s)].stadd();
    }
    world.barrier(rank);  // addresses visible everywhere

    const int right = (rank + 1) % nranks;
    int slot_out = 0;
    double checksum = 0;

    // Notices interleave (the left neighbor's payload vs the right
    // neighbor's ack), so wait by kind and stash the other — the same
    // reordering the comm layer's NoticeDispatcher performs.
    std::array<std::deque<tofu::MrqEntry>, 2> stash;  // [0]=fwd [1]=ack
    auto wait_kind = [&](comm::MsgKind kind) {
      const auto want = static_cast<std::size_t>(
          kind == comm::MsgKind::kForward ? 0 : 1);
      if (!stash[want].empty()) {
        const tofu::MrqEntry e = stash[want].front();
        stash[want].pop_front();
        return e;
      }
      for (;;) {
        const tofu::MrqEntry e = net.wait_mrq(vcq);
        const comm::Edata ed = comm::Edata::decode(e.edata);
        const auto got = static_cast<std::size_t>(
            ed.kind == comm::MsgKind::kForward ? 0 : 1);
        if (got == want) return e;
        stash[got].push_back(e);
      }
    };

    for (int round = 0; round < kRounds; ++round) {
      // Fill the payload and put it into the right neighbor's ring.
      for (int i = 0; i < kDoubles; ++i) {
        send.as_doubles()[i] = rank * 100.0 + round + i * 0.01;
      }
      const int slot = slot_out++ % 4;
      const comm::Edata ed{comm::MsgKind::kForward, /*dir=*/0, slot,
                           static_cast<std::uint32_t>(kDoubles)};
      net.put(vcq, book[static_cast<std::size_t>(right)].vcq, send.stadd(), 0,
              book[static_cast<std::size_t>(right)].ring[static_cast<std::size_t>(slot)],
              0, kDoubles * sizeof(double), ed.encode());
      net.wait_tcq(vcq);  // sender-side completion

      // Receive from the left neighbor; the descriptor tells us which
      // ring slot to read — no size message needed (message combine).
      const tofu::MrqEntry notice = wait_kind(comm::MsgKind::kForward);
      const comm::Edata in = comm::Edata::decode(notice.edata);
      const double* payload =
          rings[static_cast<std::size_t>(in.slot)].as_doubles();
      for (std::uint32_t i = 0; i < in.value; ++i) checksum += payload[i];

      // Piggyback an 8-byte ack back to the sender (Sec. 3.4's
      // ghost-offset exchange uses exactly this).
      net.put_piggyback(vcq, book[static_cast<std::size_t>(notice.src_proc)].vcq,
                        comm::Edata{comm::MsgKind::kBorderAck, 0, 0,
                                    static_cast<std::uint32_t>(round)}
                            .encode());
      const tofu::MrqEntry ack = wait_kind(comm::MsgKind::kBorderAck);
      const comm::Edata ack_ed = comm::Edata::decode(ack.edata);
      if (ack_ed.kind != comm::MsgKind::kBorderAck ||
          static_cast<int>(ack_ed.value) != round) {
        std::fprintf(stderr, "rank %d: bad ack!\n", rank);
        std::exit(1);
      }
    }
    std::printf("rank %d: %d rounds complete, payload checksum %.2f\n", rank,
                kRounds, checksum);
    world.barrier(rank);
  });

  const auto& stats = net.stats();
  std::printf("\nfabric stats: %llu puts, %llu bytes, %llu registrations "
              "(one-time, per Sec. 3.4)\n",
              static_cast<unsigned long long>(stats.puts.load()),
              static_cast<unsigned long long>(stats.bytes_put.load()),
              static_cast<unsigned long long>(stats.registrations.load()));
  return 0;
}
