// A miniature `lmp` executable: runs a LAMMPS-style input script — the
// same interface the paper's artifact exposes (`lmp_threadpool` fed with
// in.threadpool.lj). Ships with examples/in.melt.lj and
// examples/in.eam.cu.
//
//   ./lmp_cli <input-script> [comm_variant_override]

#include <cstdio>
#include <cstring>

#include "comm/comm_factory.h"
#include "sim/input_script.h"
#include "util/table_printer.h"

using namespace lmp;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <input-script> [comm-variant]\n",
                 argv[0]);
    std::fprintf(stderr, "  comm-variant: %s\n",
                 comm::CommFactory::instance().catalog().c_str());
    return 1;
  }

  sim::ParsedScript script;
  try {
    script = sim::parse_input_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (argc > 2) {
    // Variant override, like swapping the artifact's project directory.
    if (!comm::CommFactory::instance().known(argv[2])) {
      std::fprintf(stderr, "unknown variant override '%s' (registered: %s)\n",
                   argv[2], comm::CommFactory::instance().catalog().c_str());
      return 1;
    }
    script.options.comm = argv[2];
  }

  const sim::SimOptions& o = script.options;
  std::printf("LAMMPS-mini (%s)\n", o.config.name.c_str());
  std::printf("  %d x %d x %d fcc cells = %d atoms, %d ranks (%dx%dx%d), "
              "comm=%s\n",
              o.cells.x, o.cells.y, o.cells.z,
              4 * o.cells.x * o.cells.y * o.cells.z,
              o.rank_grid.x * o.rank_grid.y * o.rank_grid.z, o.rank_grid.x,
              o.rank_grid.y, o.rank_grid.z, o.comm.c_str());
  std::printf("  cutoff %.3f skin %.2f dt %.4g newton %s neigh every %d "
              "check %s\n\n",
              o.config.cutoff, o.config.skin, o.config.dt,
              o.config.newton ? "on" : "off", o.config.neigh.every,
              o.config.neigh.check ? "yes" : "no");

  const sim::JobResult r = sim::run_simulation(o, script.run_steps);

  util::TablePrinter t({"Step", "Temp", "Press", "TotEng"});
  for (const auto& s : r.thermo) {
    t.add_row({std::to_string(s.step),
               util::TablePrinter::fmt(s.state.temperature, 5),
               util::TablePrinter::fmt(s.state.pressure, 5),
               util::TablePrinter::fmt(s.state.total(), 5)});
  }
  t.print();

  const util::StageTimer stages = r.total_stages();
  std::printf("\nMPI task timing breakdown:\n");
  for (const auto stage :
       {util::Stage::kPair, util::Stage::kNeigh, util::Stage::kComm,
        util::Stage::kModify, util::Stage::kOther}) {
    std::printf("  %-7s %8.4fs  %5.1f%%\n",
                std::string(util::stage_name(stage)).c_str(),
                stages.get(stage), stages.percent(stage));
  }
  return 0;
}
