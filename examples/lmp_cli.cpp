// A miniature `lmp` executable: runs a LAMMPS-style input script — the
// same interface the paper's artifact exposes (`lmp_threadpool` fed with
// in.threadpool.lj). Ships with examples/in.melt.lj and
// examples/in.eam.cu.
//
//   ./lmp_cli <input-script> [comm_variant_override] [flags]
//
// Flags (after the positional args, any order):
//   --executor <name>         step runtime: barrier (default) or async
//                             (task-DAG overlap of ghost exchange and
//                             interior force work; bitwise-identical)
//   --restart <file>          resume from a checkpoint file
//   --checkpoint-path <pfx>   write checkpoints as <pfx>.<step>
//   --checkpoint-keep <K>     keep only the newest K on-disk checkpoints
//   --integrity <N>           run silent-corruption guards every N steps
//   --flip <spec>             inject a seeded memory bit flip (repeatable);
//                             spec = step:rank:target:word:bit[:persistent]
//                             with target pos|vel|force|ghost, rank -1 =
//                             every rank
//   --dump-final <file>       write final per-atom state (tag x y z vx vy vz)
//   --trace <file>            write a Chrome/Perfetto trace JSON
//                             (load in chrome://tracing or ui.perfetto.dev)
//   --trace-alloc             also record one instant per heap allocation
//                             in the trace (high volume: floods the ring
//                             on long runs, so off by default)
//   --report <file>           write the machine-readable run report JSON
//   --metrics                 dump the full metrics registry + fabric
//                             link-utilization tables at end of run
//   --alloc-guard             steady-state zero-alloc guard: any step
//                             past the warmup window (default run/2)
//                             that heap-allocates fails the run (exit 3)
//                             with a per-scope attribution table
//   --alloc-warmup <N>        override the guard's warmup step count

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "comm/comm_factory.h"
#include "obs/critical_path.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "sim/input_script.h"
#include "tofu/link_telemetry.h"
#include "tofu/topology.h"
#include "util/stats.h"
#include "util/table_printer.h"

using namespace lmp;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <input-script> [comm-variant] "
               "[--executor barrier|async] [--restart <file>] "
               "[--checkpoint-path <prefix>] [--checkpoint-keep <K>] "
               "[--integrity <N>] "
               "[--flip step:rank:target:word:bit[:persistent]] "
               "[--dump-final <file>] "
               "[--trace <file>] [--trace-alloc] [--report <file>] "
               "[--metrics] [--alloc-guard] [--alloc-warmup <N>]\n",
               prog);
  std::fprintf(stderr, "  comm-variant: %s\n",
               comm::CommFactory::instance().catalog().c_str());
  return 1;
}

/// Text dump of the final sorted per-atom state at full double precision
/// (%.17g round-trips exactly) — what the kill-and-restart smoke diffs.
bool dump_final(const std::string& path, const sim::JobResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  for (const auto& a : r.atoms) {
    std::fprintf(f, "%lld %.17g %.17g %.17g %.17g %.17g %.17g\n",
                 static_cast<long long>(a.tag), a.pos.x, a.pos.y, a.pos.z,
                 a.vel.x, a.vel.y, a.vel.z);
  }
  std::fclose(f);
  return true;
}

/// Parse a --flip spec (step:rank:target:word:bit[:persistent]) into a
/// deterministic memory fault. Returns false on any malformed field.
bool parse_flip(const std::string& spec, tofu::MemFault* out) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(
        start, colon == std::string::npos ? std::string::npos : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 5 || parts.size() > 6) return false;
  try {
    std::size_t used = 0;
    out->step = std::stoi(parts[0], &used);
    if (used != parts[0].size() || out->step < 0) return false;
    out->rank = std::stoi(parts[1], &used);
    if (used != parts[1].size() || out->rank < -1) return false;
    if (parts[2] == "pos") {
      out->target = static_cast<int>(tofu::MemTarget::kPos);
    } else if (parts[2] == "vel") {
      out->target = static_cast<int>(tofu::MemTarget::kVel);
    } else if (parts[2] == "force") {
      out->target = static_cast<int>(tofu::MemTarget::kForce);
    } else if (parts[2] == "ghost") {
      out->target = static_cast<int>(tofu::MemTarget::kGhostPos);
    } else {
      return false;
    }
    out->word = std::stoull(parts[3], &used);
    if (used != parts[3].size()) return false;
    out->bit = std::stoi(parts[4], &used);
    if (used != parts[4].size() || out->bit < 0 || out->bit > 63) return false;
  } catch (const std::exception&) {
    return false;
  }
  if (parts.size() == 6) {
    if (parts[5] != "persistent") return false;
    out->persistent = true;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  sim::ParsedScript script;
  try {
    script = sim::parse_input_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::string dump_path;
  bool trace_alloc = false;
  for (int i = 2; i < argc; ++i) {
    const auto flag_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--executor") == 0) {
      const char* v = flag_value("--executor");
      if (!v) return 1;
      if (std::strcmp(v, "barrier") != 0 && std::strcmp(v, "async") != 0) {
        std::fprintf(stderr, "error: --executor wants barrier|async\n");
        return 1;
      }
      script.options.executor = v;
    } else if (std::strcmp(argv[i], "--restart") == 0) {
      const char* v = flag_value("--restart");
      if (!v) return 1;
      script.options.restart_file = v;
    } else if (std::strcmp(argv[i], "--checkpoint-path") == 0) {
      const char* v = flag_value("--checkpoint-path");
      if (!v) return 1;
      script.options.checkpoint_path = v;
    } else if (std::strcmp(argv[i], "--checkpoint-keep") == 0) {
      const char* v = flag_value("--checkpoint-keep");
      if (!v) return 1;
      script.options.checkpoint_keep = std::atoi(v);
      if (script.options.checkpoint_keep < 1) {
        std::fprintf(stderr, "error: --checkpoint-keep wants K >= 1\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--integrity") == 0) {
      const char* v = flag_value("--integrity");
      if (!v) return 1;
      script.options.integrity.cadence = std::atoi(v);
      if (script.options.integrity.cadence < 1) {
        std::fprintf(stderr, "error: --integrity wants a cadence >= 1\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--flip") == 0) {
      const char* v = flag_value("--flip");
      if (!v) return 1;
      tofu::MemFault flip;
      if (!parse_flip(v, &flip)) {
        std::fprintf(stderr,
                     "error: --flip wants step:rank:target:word:bit"
                     "[:persistent] with target pos|vel|force|ghost\n");
        return 1;
      }
      script.options.faults.mem_faults.push_back(flip);
    } else if (std::strcmp(argv[i], "--dump-final") == 0) {
      const char* v = flag_value("--dump-final");
      if (!v) return 1;
      dump_path = v;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      const char* v = flag_value("--trace");
      if (!v) return 1;
      script.trace_path = v;
    } else if (std::strcmp(argv[i], "--trace-alloc") == 0) {
      trace_alloc = true;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      const char* v = flag_value("--report");
      if (!v) return 1;
      script.report_path = v;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      script.dump_metrics = true;
    } else if (std::strcmp(argv[i], "--alloc-guard") == 0) {
      script.options.alloc_guard = true;
    } else if (std::strcmp(argv[i], "--alloc-warmup") == 0) {
      const char* v = flag_value("--alloc-warmup");
      if (!v) return 1;
      script.options.alloc_guard = true;
      script.options.alloc_guard_warmup = std::atoi(v);
      if (script.options.alloc_guard_warmup < 0) {
        std::fprintf(stderr, "error: --alloc-warmup wants N >= 0\n");
        return 1;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return usage(argv[0]);
    } else {
      // Variant override, like swapping the artifact's project directory.
      if (!comm::CommFactory::instance().known(argv[i])) {
        std::fprintf(stderr, "unknown variant override '%s' (registered: %s)\n",
                     argv[i], comm::CommFactory::instance().catalog().c_str());
        return 1;
      }
      script.options.comm = argv[i];
    }
  }

  const sim::SimOptions& o = script.options;
  std::printf("LAMMPS-mini (%s)\n", o.config.name.c_str());
  std::printf("  %d x %d x %d fcc cells = %d atoms, %d ranks (%dx%dx%d), "
              "comm=%s\n",
              o.cells.x, o.cells.y, o.cells.z,
              4 * o.cells.x * o.cells.y * o.cells.z,
              o.rank_grid.x * o.rank_grid.y * o.rank_grid.z, o.rank_grid.x,
              o.rank_grid.y, o.rank_grid.z, o.comm.c_str());
  if (o.executor != "barrier") {
    std::printf("  executor %s (%d workers/rank)\n", o.executor.c_str(),
                o.executor_threads);
  }
  std::printf("  cutoff %.3f skin %.2f dt %.4g newton %s neigh every %d "
              "check %s\n",
              o.config.cutoff, o.config.skin, o.config.dt,
              o.config.newton ? "on" : "off", o.config.neigh.every,
              o.config.neigh.check ? "yes" : "no");
  if (!o.restart_file.empty()) {
    std::printf("  restarting from %s\n", o.restart_file.c_str());
  }
  if (o.integrity.enabled()) {
    std::printf("  integrity guards every %d steps (energy tol %.3g)\n",
                o.integrity.cadence, o.integrity.energy_tol);
  }
  if (o.faults.memory_faults()) {
    std::printf("  memory fault plan: %zu deterministic flip(s), rate %.3g\n",
                o.faults.mem_faults.size(), o.faults.mem_flip_rate);
  }
  if (o.alloc_guard) {
    if (o.alloc_guard_warmup >= 0) {
      std::printf("  alloc guard armed (warmup %d steps)\n",
                  o.alloc_guard_warmup);
    } else {
      std::printf("  alloc guard armed (warmup %d steps)\n",
                  script.run_steps / 2);
    }
  }
  std::printf("\n");

  if (!script.trace_path.empty()) {
    if (!obs::trace_compiled_in()) {
      std::fprintf(stderr,
                   "error: --trace requires a build with LMP_TRACE=ON\n");
      return 1;
    }
    // Alloc instants are opt-in: one event per heap allocation would
    // flood the bounded rings and evict the flow/span events the
    // critical-path and flow-matching consumers need.
    obs::set_trace_categories(
        trace_alloc ? obs::kAllTraceCats : obs::kDefaultTraceCats);
  }
  if (!script.trace_path.empty() || !script.report_path.empty() ||
      script.dump_metrics) {
    obs::set_metrics_enabled(true);
  }

  sim::JobResult r;
  try {
    r = sim::run_simulation(o, script.run_steps);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (r.restart_step > 0) {
    std::printf("Resumed from step %d\n", r.restart_step);
  }
  if (r.final_comm != o.comm) {
    std::printf("Finished on comm=%s after %zu failover(s)\n",
                r.final_comm.c_str(), r.health.escalations.size());
  }

  util::TablePrinter t({"Step", "Temp", "Press", "TotEng"});
  for (const auto& s : r.thermo) {
    t.add_row({std::to_string(s.step),
               util::TablePrinter::fmt(s.state.temperature, 5),
               util::TablePrinter::fmt(s.state.pressure, 5),
               util::TablePrinter::fmt(s.state.total(), 5)});
  }
  t.print();

  if (!r.health.clean() || r.health.checkpoints_written > 0) {
    std::printf("\n%s", util::format_health_table(r.health).c_str());
  }
  const std::string latency = util::format_latency_table();
  if (!latency.empty()) std::printf("\n%s", latency.c_str());

  // Post-run analyses. The critical-path breakdown needs the tracer's
  // event snapshot, so it lives here (not in build_run_report).
  const int nranks = o.rank_grid.x * o.rank_grid.y * o.rank_grid.z;
  obs::CriticalPathReport cp;
  if (!script.trace_path.empty()) {
    cp = obs::analyze_critical_path(obs::Tracer::instance().snapshot_events());
    const std::string cpt = obs::format_critical_path_table(cp);
    if (!cpt.empty()) std::printf("\n%s", cpt.c_str());
  }
  if (script.dump_metrics) {
    const std::string fabric = tofu::format_fabric_table(
        tofu::Topology::for_nodes(std::max(1, nranks)), r.fabric);
    if (!fabric.empty()) std::printf("\n%s", fabric.c_str());
    const std::string metrics = util::format_metrics_table();
    if (!metrics.empty()) std::printf("\n%s", metrics.c_str());
  }

  const util::StageTimer stages = r.total_stages();
  const double total = stages.total();  // one denominator for all rows
  std::printf("\nMPI task timing breakdown:\n");
  for (const auto stage : util::all_stages()) {
    std::printf("  %-7s %8.4fs  %5.1f%%\n",
                std::string(util::stage_name(stage)).c_str(),
                stages.get(stage), stages.percent(stage, total));
  }
  if (r.health.checkpoints_written > 0) {
    std::printf("  Ckpt I/O %7.4fs  (%llu checkpoints)\n",
                r.health.checkpoint_io_seconds,
                static_cast<unsigned long long>(r.health.checkpoints_written));
  }

  if (!script.report_path.empty()) {
    obs::RunReport rep = sim::build_run_report(o, script.run_steps, r);
    if (!cp.empty()) {
      for (const obs::CriticalPathRow& row : cp.rows) {
        rep.critical_path.push_back({row.name, row.seconds, row.percent});
      }
      rep.critical_path_total_seconds = cp.step_seconds_total;
    }
    if (!obs::write_text_file(script.report_path, rep.to_json())) {
      std::fprintf(stderr, "error: cannot write report %s\n",
                   script.report_path.c_str());
      return 1;
    }
    std::printf("\nRun report written to %s\n", script.report_path.c_str());
  }
  if (!script.trace_path.empty()) {
    if (!obs::Tracer::instance().export_chrome_json_file(script.trace_path)) {
      std::fprintf(stderr, "error: cannot write trace %s\n",
                   script.trace_path.c_str());
      return 1;
    }
    std::printf("Trace written to %s (%llu events, %llu overwritten)\n",
                script.trace_path.c_str(),
                static_cast<unsigned long long>(
                    obs::Tracer::instance().events_recorded()),
                static_cast<unsigned long long>(
                    obs::Tracer::instance().events_dropped()));
  }

  if (!dump_path.empty() && !dump_final(dump_path, r)) return 1;

  // The guard verdict goes last so a failing run still prints its full
  // tables, trace, and dump — the attribution table below is the thing
  // the zero-alloc arc debugs from. Exit 3 distinguishes "the physics
  // ran fine but the step loop allocated" from hard errors (exit 1).
  if (o.alloc_guard) {
    const std::string guard = util::format_alloc_guard_table(r.alloc_guard);
    if (!guard.empty()) std::printf("\n%s", guard.c_str());
    if (!r.alloc_guard.passed()) return 3;
  }
  return 0;
}
