// lmp_top — live terminal dashboard over a job server's telemetry socket.
//
// Connects to the Unix socket an lmp_serve --listen PATH publishes, asks
// for telemetry snapshots ("lmp-telemetry-snapshot" JSON), and renders a
// refreshing dashboard: jobs table, per-tenant SLO windows, per-TNI link
// utilization with sparklines, the rolling server step rate, and the
// process memory row (heap live / high water / RSS with a sparkline of
// the heap-live series; heap numbers need LMP_ALLOC_TRACE).
//
//   lmp_top --connect /tmp/lmp.sock                # live, 1s refresh
//   lmp_top --connect /tmp/lmp.sock --interval-ms 250
//   lmp_top --connect /tmp/lmp.sock --once         # one dashboard, exit
//   lmp_top --connect /tmp/lmp.sock --once --json  # one raw snapshot, exit
//
// Live mode uses the `watch` verb (server pushes a frame every interval);
// --once uses the one-shot `stats` verb. --count N bounds a live session
// to N frames (scripts use it to capture a deterministic stream).

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "comm/msg_codec.h"
#include "serve/serve_protocol.h"
#include "util/json_mini.h"
#include "util/table_printer.h"

namespace {

using namespace lmp;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --connect PATH [options]\n"
      "  --connect PATH    telemetry socket (lmp_serve --listen PATH)\n"
      "  --once            one snapshot, then exit (stats verb)\n"
      "  --json            print raw JSON snapshots instead of the dashboard\n"
      "  --interval-ms N   refresh cadence in live mode (default 1000)\n"
      "  --count N         stop after N frames in live mode (default: until\n"
      "                    the server closes or this process is interrupted)\n",
      argv0);
  return 1;
}

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Eight-level unicode sparkline of a [[t, v], ...] series, newest at
/// the right, scaled to the window's max. At most `width` samples.
std::string sparkline(const util::JsonValue* series, std::size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (series == nullptr || !series->is_array() || series->items.empty()) {
    return "-";
  }
  const std::size_t n = series->items.size();
  const std::size_t first = n > width ? n - width : 0;
  double vmax = 0.0;
  for (std::size_t i = first; i < n; ++i) {
    const util::JsonValue& pt = series->items[i];
    if (pt.is_array() && pt.items.size() == 2) {
      vmax = std::max(vmax, pt.items[1].num_or(0.0));
    }
  }
  std::string out;
  for (std::size_t i = first; i < n; ++i) {
    const util::JsonValue& pt = series->items[i];
    const double v =
        (pt.is_array() && pt.items.size() == 2) ? pt.items[1].num_or(0.0) : 0.0;
    const int level =
        vmax > 0.0 ? std::min(7, static_cast<int>(v / vmax * 7.999)) : 0;
    out += kBlocks[level];
  }
  return out;
}

void render(const util::JsonValue& snap) {
  using util::TablePrinter;

  std::printf("lmp_top — telemetry snapshot (tick %lld, window %lld ms, "
              "interval %lld ms)\n",
              static_cast<long long>(snap.get_int("ticks")),
              static_cast<long long>(snap.get_int("window_ms")),
              static_cast<long long>(snap.get_int("interval_ms")));

  const util::JsonValue* server = snap.find("server");
  if (server != nullptr) {
    std::printf(
        "server: queue=%lld running=%lld fabrics=%lld  steps/s=%s  %s\n",
        static_cast<long long>(server->get_int("queue_depth")),
        static_cast<long long>(server->get_int("running")),
        static_cast<long long>(server->get_int("live_fabrics")),
        TablePrinter::fmt_si(server->get_num("step_rate_per_s")).c_str(),
        sparkline(server->find("step_series"), 48).c_str());
  }

  const util::JsonValue* memory = snap.find("memory");
  if (memory != nullptr) {
    std::printf(
        "memory: heap=%s hw=%s rss=%s  allocs/s=%s  %s\n",
        TablePrinter::fmt_si(memory->get_num("heap_live_bytes")).c_str(),
        TablePrinter::fmt_si(memory->get_num("heap_high_water_bytes")).c_str(),
        TablePrinter::fmt_si(memory->get_num("rss_bytes")).c_str(),
        TablePrinter::fmt_si(memory->get_num("allocs_per_s")).c_str(),
        sparkline(memory->find("heap_live_series"), 48).c_str());
  }

  const util::JsonValue* jobs = snap.find("jobs");
  if (jobs != nullptr && jobs->is_array() && !jobs->items.empty()) {
    TablePrinter t({"job", "tenant", "name", "state", "steps", "total",
                    "steps/s"});
    for (const util::JsonValue& j : jobs->items) {
      t.add_row({std::to_string(j.get_int("id")), j.get_str("tenant"),
                 j.get_str("name"), j.get_str("state"),
                 std::to_string(j.get_int("steps")),
                 std::to_string(j.get_int("total_steps")),
                 TablePrinter::fmt(j.get_num("rate_per_s"), 1)});
    }
    std::printf("\njobs:\n%s", t.to_string().c_str());
  }

  const util::JsonValue* tenants = snap.find("tenants");
  if (tenants != nullptr && tenants->is_array() && !tenants->items.empty()) {
    TablePrinter t({"tenant", "slo", "wait p99(ms)", "deadline", "hit-rate",
                    "steps/s", "rollbacks", "detail"});
    for (const util::JsonValue& x : tenants->items) {
      const bool breached = x.get_bool("breached");
      char deadline[32];
      std::snprintf(deadline, sizeof deadline, "%lld/%lld",
                    static_cast<long long>(x.get_int("deadline_hits")),
                    static_cast<long long>(x.get_int("deadline_hits") +
                                           x.get_int("deadline_misses")));
      t.add_row({x.get_str("tenant"), breached ? "[BREACH]" : "[OK]",
                 TablePrinter::fmt(x.get_num("queue_wait_p99_ms"), 1),
                 deadline, TablePrinter::fmt(x.get_num("deadline_hit_rate"), 3),
                 TablePrinter::fmt(x.get_num("steps_per_sec"), 1),
                 std::to_string(x.get_int("integrity_rollbacks")),
                 x.get_str("detail", "-")});
    }
    std::printf("\ntenants:\n%s", t.to_string().c_str());
  }

  const util::JsonValue* tnis = snap.find("tnis");
  if (tnis != nullptr && tnis->is_array() && !tnis->items.empty()) {
    TablePrinter t({"tni", "bytes", "MB/s", "pkts/s", "utilization"});
    for (const util::JsonValue& x : tnis->items) {
      t.add_row({std::to_string(x.get_int("tni")),
                 TablePrinter::fmt_si(x.get_num("bytes_total")),
                 TablePrinter::fmt(x.get_num("bytes_per_s") / 1e6, 2),
                 TablePrinter::fmt_si(x.get_num("packets_per_s"), 1),
                 sparkline(x.find("bytes_series"), 32)});
    }
    std::printf("\nlinks:\n%s", t.to_string().c_str());
  }

  const util::JsonValue* events = snap.find("slo_events");
  if (events != nullptr && events->is_array() && !events->items.empty()) {
    std::printf("\nslo events (newest last):\n");
    const std::size_t n = events->items.size();
    for (std::size_t i = n > 5 ? n - 5 : 0; i < n; ++i) {
      const util::JsonValue& e = events->items[i];
      std::printf("  [%lld ms] %s %s: %s\n",
                  static_cast<long long>(e.get_int("t_ms")),
                  e.get_str("tenant").c_str(),
                  e.get_bool("entered") ? "BREACH" : "recovered",
                  e.get_str("detail", "-").c_str());
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool once = false;
  bool raw_json = false;
  std::uint32_t interval_ms = 1000;
  std::uint32_t count = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--connect" && (v = next())) {
      path = v;
    } else if (a == "--once") {
      once = true;
    } else if (a == "--json") {
      raw_json = true;
    } else if (a == "--interval-ms" && (v = next())) {
      interval_ms = static_cast<std::uint32_t>(std::atol(v));
      if (interval_ms == 0) interval_ms = 1;
    } else if (a == "--count" && (v = next())) {
      count = static_cast<std::uint32_t>(std::atol(v));
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::signal(SIGPIPE, SIG_IGN);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "error: socket path too long: %s\n", path.c_str());
    return 1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    std::fprintf(stderr, "error: cannot connect to %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }

  // One request up front: `stats` for --once, `watch` for live mode (the
  // server then pushes a kStatsJsonReply every interval until we close).
  std::vector<char> req;
  if (once) {
    serve::encode_stats_json(req);
  } else {
    serve::WatchRequest w;
    w.interval_ms = interval_ms;
    w.max_frames = count;
    serve::encode_watch(req, w);
  }
  if (!write_all(fd, req.data(), req.size())) {
    std::fprintf(stderr, "error: write to %s failed: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }

  std::vector<char> buf;
  std::uint64_t frames = 0;
  int rc = 0;
  bool done = false;
  while (!done) {
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      if (frames == 0) {
        std::fprintf(stderr, "error: server closed before first snapshot\n");
        rc = 1;
      }
      break;
    }
    buf.insert(buf.end(), chunk, chunk + n);

    std::size_t off = 0;
    while (off < buf.size()) {
      const comm::FrameView f =
          comm::decode_frame(buf.data() + off, buf.size() - off);
      if (f.status == comm::FrameStatus::kNeedMore) break;
      if (!f.ok()) {
        std::fprintf(stderr, "error: bad frame from server (%s)\n",
                     comm::frame_status_name(f.status));
        rc = 1;
        done = true;
        break;
      }
      off += f.consumed;
      if (static_cast<serve::MsgType>(f.type) != serve::MsgType::kStatsJsonReply) {
        continue;  // ignore anything that is not a snapshot
      }
      std::string json;
      try {
        json = serve::decode_stats_json_reply(f.payload, f.payload_len);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        rc = 1;
        done = true;
        break;
      }
      ++frames;
      if (raw_json) {
        std::printf("%s\n", json.c_str());
        std::fflush(stdout);
      } else {
        try {
          const util::JsonValue snap = util::parse_json(json);
          if (!once) std::fputs("\x1b[H\x1b[2J", stdout);  // clear + home
          render(snap);
        } catch (const util::JsonParseError& e) {
          std::fprintf(stderr, "error: snapshot does not parse: %s\n",
                       e.what());
          rc = 1;
          done = true;
          break;
        }
      }
      if (once || (count > 0 && frames >= count)) {
        done = true;
        break;
      }
    }
    if (off > 0) buf.erase(buf.begin(), buf.begin() + static_cast<long>(off));
  }

  ::close(fd);
  return rc;
}
