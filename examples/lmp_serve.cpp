// Multi-tenant simulation job server driver.
//
// Reads a workload file (one job per line:
//   <tenant> <name> <script-file> [deadline_ms [max_attempts]]
// '#' comments), submits every job through the binary wire protocol
// (encode_submit -> JobServer::handle_frames -> decode reply, the same
// bytes a remote client would send), waits for the queue to drain, and
// prints per-job outcomes plus the server/health tables.
//
// The journal makes the whole thing crash-safe: kill -9 this process,
// rerun the same command, and completed jobs stay completed while
// in-flight jobs resume from their last durable checkpoint. Submissions
// are idempotent per (tenant, name), so replaying the workload file
// after a crash re-attaches to the existing jobs instead of duplicating
// them.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_server.h"
#include "serve/stream_endpoint.h"
#include "util/stats.h"

namespace {

using namespace lmp;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --journal FILE --workdir DIR --jobs FILE [options]\n"
      "  --journal FILE      durable job journal (created if absent)\n"
      "  --workdir DIR       checkpoints / reports / dumps directory\n"
      "  --jobs FILE         workload: tenant name script [deadline_ms "
      "[attempts]]\n"
      "  --workers N         worker lanes (default 1)\n"
      "  --queue N           admission queue capacity (default 32)\n"
      "  --quota T=Q,R       tenant T: max Q queued, R running (repeatable)\n"
      "  --default-quota Q,R default tenant quota (default 8,2)\n"
      "  --slice N           preferred checkpoint/slice cadence (default 10)\n"
      "  --keep N            keep only the newest N on-disk checkpoints per\n"
      "                      job (default: keep everything)\n"
      "  --integrity N       run silent-corruption guards every N steps\n"
      "  --deadline-ms N     default per-job deadline (default none)\n"
      "  --max-attempts N    default attempt budget (default 3)\n"
      "  --dumps             write job-<id>.dump final atoms\n"
      "  --chunks            print streamed thermo chunks for each job\n"
      "  --wait-ms N         drain timeout (default 600000)\n"
      "  --listen PATH       serve the wire protocol (and `watch` snapshot\n"
      "                      streams for lmp_top) on a Unix socket\n"
      "  --linger-ms N       keep serving N ms after the workload drains\n"
      "                      (so dashboards can attach; default 0)\n"
      "  --telemetry-ms N    telemetry sampling cadence (default 100)\n"
      "  --telemetry-window-ms N\n"
      "                      rolling aggregation/SLO window (default 10000)\n"
      "  --no-telemetry      disable the background sampler entirely\n"
      "  --slo-hit-rate X    per-tenant deadline hit-rate floor (default\n"
      "                      0.99; one miss in a small window breaches)\n"
      "  --slo-steps-min X   per-tenant steps/sec floor while running\n"
      "                      (default 0 = off)\n"
      "  --slo-queue-p99-ms N\n"
      "                      per-tenant queue-wait p99 ceiling (0 = off)\n",
      argv0);
  return 1;
}

struct WorkloadEntry {
  serve::SubmitRequest req;
  std::string script_path;
};

bool load_workload(const std::string& path, std::vector<WorkloadEntry>& out) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "error: cannot open workload file %s\n", path.c_str());
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    WorkloadEntry e;
    if (!(ls >> e.req.tenant)) continue;  // blank line
    if (!(ls >> e.req.name >> e.script_path)) {
      std::fprintf(stderr, "error: %s:%d: expected tenant name script\n",
                   path.c_str(), lineno);
      return false;
    }
    unsigned deadline = 0, attempts = 0;
    if (ls >> deadline) e.req.deadline_ms = deadline;
    if (ls >> attempts) e.req.max_attempts = static_cast<std::uint16_t>(attempts);
    std::ifstream sf(e.script_path);
    if (!sf) {
      std::fprintf(stderr, "error: %s:%d: cannot open script %s\n",
                   path.c_str(), lineno, e.script_path.c_str());
      return false;
    }
    std::ostringstream text;
    text << sf.rdbuf();
    e.req.script = text.str();
    out.push_back(std::move(e));
  }
  return true;
}

bool parse_quota(const std::string& spec, std::string* tenant,
                 serve::TenantQuota* q) {
  // "tenant=Q,R" (or "Q,R" when tenant is nullptr).
  std::string body = spec;
  if (tenant != nullptr) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos) return false;
    *tenant = spec.substr(0, eq);
    body = spec.substr(eq + 1);
  }
  return std::sscanf(body.c_str(), "%d,%d", &q->max_queued, &q->max_running) ==
         2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerConfig cfg;
  std::string jobs_path;
  std::string listen_path;
  bool print_chunks = false;
  std::uint64_t wait_ms = 600000;
  std::uint64_t linger_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--journal" && (v = next())) {
      cfg.journal_path = v;
    } else if (a == "--workdir" && (v = next())) {
      cfg.work_dir = v;
    } else if (a == "--jobs" && (v = next())) {
      jobs_path = v;
    } else if (a == "--workers" && (v = next())) {
      cfg.workers = std::atoi(v);
    } else if (a == "--queue" && (v = next())) {
      cfg.queue_capacity = std::atoi(v);
    } else if (a == "--slice" && (v = next())) {
      cfg.slice_steps = std::atoi(v);
    } else if (a == "--keep" && (v = next())) {
      cfg.checkpoint_keep = std::atoi(v);
      if (cfg.checkpoint_keep < 1) return usage(argv[0]);
    } else if (a == "--integrity" && (v = next())) {
      cfg.integrity_cadence = std::atoi(v);
      if (cfg.integrity_cadence < 1) return usage(argv[0]);
    } else if (a == "--deadline-ms" && (v = next())) {
      cfg.default_deadline_ms = static_cast<std::uint32_t>(std::atol(v));
    } else if (a == "--max-attempts" && (v = next())) {
      cfg.default_max_attempts = static_cast<std::uint16_t>(std::atoi(v));
    } else if (a == "--quota" && (v = next())) {
      std::string tenant;
      serve::TenantQuota q;
      if (!parse_quota(v, &tenant, &q)) return usage(argv[0]);
      cfg.tenant_quotas[tenant] = q;
    } else if (a == "--default-quota" && (v = next())) {
      if (!parse_quota(v, nullptr, &cfg.default_quota)) return usage(argv[0]);
    } else if (a == "--dumps") {
      cfg.write_dumps = true;
    } else if (a == "--chunks") {
      print_chunks = true;
    } else if (a == "--wait-ms" && (v = next())) {
      wait_ms = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--listen" && (v = next())) {
      listen_path = v;
    } else if (a == "--linger-ms" && (v = next())) {
      linger_ms = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--telemetry-ms" && (v = next())) {
      cfg.telemetry.interval_ms = static_cast<std::uint32_t>(std::atol(v));
    } else if (a == "--telemetry-window-ms" && (v = next())) {
      cfg.telemetry.window_ms = std::atoll(v);
    } else if (a == "--no-telemetry") {
      cfg.telemetry.enabled = false;
    } else if (a == "--slo-hit-rate" && (v = next())) {
      cfg.telemetry.default_slo.deadline_hit_rate_min = std::atof(v);
    } else if (a == "--slo-steps-min" && (v = next())) {
      cfg.telemetry.default_slo.steps_per_sec_min = std::atof(v);
    } else if (a == "--slo-queue-p99-ms" && (v = next())) {
      cfg.telemetry.default_slo.queue_wait_p99_ms = std::atof(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (cfg.journal_path.empty() || cfg.work_dir.empty() || jobs_path.empty()) {
    return usage(argv[0]);
  }

  std::vector<WorkloadEntry> workload;
  if (!load_workload(jobs_path, workload)) return 1;

  serve::JobServer server(cfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const serve::RecoveryInfo& rec = server.recovery();
  std::printf("journal: %llu jobs, %llu requeued, %llu torn bytes%s\n",
              static_cast<unsigned long long>(rec.jobs_seen),
              static_cast<unsigned long long>(rec.requeued),
              static_cast<unsigned long long>(rec.torn_bytes),
              rec.compacted ? " (compacted)" : "");

  std::unique_ptr<serve::StreamEndpoint> endpoint;
  if (!listen_path.empty()) {
    endpoint = std::make_unique<serve::StreamEndpoint>(server, listen_path);
    try {
      endpoint->start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      server.stop(serve::StopMode::kDrain);
      return 1;
    }
    std::printf("listening on %s\n", listen_path.c_str());
    std::fflush(stdout);
  }

  // Submit through the wire: the exact bytes a remote client would send.
  std::vector<char> frames;
  for (const WorkloadEntry& e : workload) {
    serve::encode_submit(frames, e.req);
  }
  const std::vector<char> replies =
      server.handle_frames(frames.data(), frames.size());
  std::size_t off = 0, idx = 0;
  while (off < replies.size() && idx < workload.size()) {
    const comm::FrameView f =
        comm::decode_frame(replies.data() + off, replies.size() - off);
    if (!f.ok()) break;
    const WorkloadEntry& e = workload[idx++];
    if (static_cast<serve::MsgType>(f.type) == serve::MsgType::kSubmitReply) {
      const serve::SubmitReply r =
          serve::decode_submit_reply(f.payload, f.payload_len);
      if (r.accepted) {
        std::printf("submit %s/%s: job %llu %s%s\n", e.req.tenant.c_str(),
                    e.req.name.c_str(),
                    static_cast<unsigned long long>(r.job_id),
                    serve::job_state_name(r.state),
                    r.already_known ? " (already known)" : "");
      } else {
        std::printf("submit %s/%s: rejected reason=%s detail=%s\n",
                    e.req.tenant.c_str(), e.req.name.c_str(),
                    serve::reject_reason_name(r.reject), r.detail.c_str());
      }
    } else {
      const serve::ErrorReply r = serve::decode_error(f.payload, f.payload_len);
      std::printf("submit %s/%s: error %s\n", e.req.tenant.c_str(),
                  e.req.name.c_str(), r.detail.c_str());
    }
    off += f.consumed;
  }

  const bool drained = server.wait_all_terminal(wait_ms);
  if (!drained) {
    std::fprintf(stderr, "error: queue not drained after %llu ms\n",
                 static_cast<unsigned long long>(wait_ms));
  }

  for (const serve::JobStatus& s : server.jobs()) {
    std::printf("job %llu %s/%s state=%s attempts=%u steps=%d/%d detail=%s\n",
                static_cast<unsigned long long>(s.job_id), s.tenant.c_str(),
                s.name.c_str(), serve::job_state_name(s.state), s.attempts,
                s.completed_steps, s.total_steps, s.detail.c_str());
    if (print_chunks && s.chunks_available > 0) {
      serve::FetchRequest fr;
      fr.job_id = s.job_id;
      fr.max_chunks = s.chunks_available;
      const serve::ChunksReply cr = server.fetch(fr);
      for (const std::string& c : cr.chunks) std::fputs(c.c_str(), stdout);
    }
  }

  // One forced sampling pass so the final table reflects the present
  // (terminal SLO outcomes land between sampler ticks otherwise).
  if (server.telemetry() != nullptr) server.telemetry()->tick();
  std::fputs(util::format_server_table(server.stats()).c_str(), stdout);

  // Give dashboards a window to attach (or finish streaming) before the
  // server and its telemetry socket go away.
  if (linger_ms > 0) {
    std::printf("lingering %llu ms for telemetry clients\n",
                static_cast<unsigned long long>(linger_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  if (endpoint) endpoint->stop();
  server.stop(serve::StopMode::kDrain);
  return drained ? 0 : 1;
}
