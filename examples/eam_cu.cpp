// EAM copper (the paper's second workload): generates the Cu-like funcfl
// table, writes it to disk, reads it back exactly as LAMMPS reads
// Cu_u3.eam, and integrates an fcc crystal under NVE, printing the
// pressure trace and the mid-pair-stage communication counters that make
// EAM's communication profile different from L-J's.
//
//   ./eam_cu [cells] [steps]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "md/eam_table.h"
#include "sim/simulation.h"
#include "util/table_printer.h"

using namespace lmp;

int main(int argc, char** argv) {
  const int cells = argc > 1 ? std::atoi(argv[1]) : 5;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 100;

  // Show the funcfl round trip explicitly (the simulation does the same
  // internally).
  const md::EamTable table = md::make_cu_like_table(2000, 2000, 4.95);
  {
    std::ofstream out("/tmp/Cu_like.eam");
    out << md::to_funcfl(table);
  }
  std::stringstream buf;
  buf << std::ifstream("/tmp/Cu_like.eam").rdbuf();
  const md::EamTable reread = md::parse_funcfl(buf.str());
  std::printf("funcfl table: nr=%d dr=%.5f A, nrho=%d, cutoff=%.2f A "
              "(wrote + reread /tmp/Cu_like.eam)\n",
              reread.nr, reread.dr, reread.nrho, reread.cutoff);

  sim::SimOptions options;
  options.config = md::SimConfig::eam_copper();
  options.cells = {cells, cells, cells};
  options.rank_grid = {2, 1, 1};
  options.comm = "opt";
  options.thermo_every = std::max(1, steps / 10);

  std::printf("\nEAM copper: %d atoms at a0 = 3.615 A, T0 = %.0f K, "
              "%d steps, dt = %.3f ps\n\n",
              4 * cells * cells * cells, options.config.t_init, steps,
              options.config.dt);

  const sim::JobResult r = sim::run_simulation(options, steps);

  util::TablePrinter t({"Step", "Temp(K)", "Press(bar)", "TotEng(eV)"});
  for (const auto& s : r.thermo) {
    t.add_row({std::to_string(s.step),
               util::TablePrinter::fmt(s.state.temperature, 2),
               util::TablePrinter::fmt(s.state.pressure, 1),
               util::TablePrinter::fmt(s.state.total(), 5)});
  }
  t.print();

  std::uint64_t scalar = 0;
  for (const auto& rank : r.ranks) scalar += rank.comm.scalar_msgs;
  std::printf("\nEAM mid-pair-stage communication: %llu scalar messages "
              "(rho reverse-add + fp forward,\nthe 'two additional "
              "communications during the pair stage' of Sec. 4) across "
              "%zu ranks.\n",
              static_cast<unsigned long long>(scalar), r.ranks.size());
  std::printf("neigh_modify every 5 check yes: the displacement allreduce "
              "ran every 5 steps.\n");
  return 0;
}
