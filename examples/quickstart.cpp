// Quickstart: run the LAMMPS melt benchmark on 8 simulated ranks with
// the paper's optimized communication (fine-grained p2p over uTofu) and
// print a LAMMPS-style thermo log plus the stage breakdown.
//
//   ./quickstart

#include <cstdio>

#include "sim/simulation.h"
#include "util/table_printer.h"

int main() {
  using namespace lmp;

  sim::SimOptions options;
  options.config = md::SimConfig::lj_melt();  // Table 2, L-J column
  options.cells = {6, 6, 6};                  // 864 atoms
  options.rank_grid = {2, 2, 2};              // 8 MPI ranks (threads here)
  options.comm = "opt";  // the paper's fine-grained p2p variant
  options.thermo_every = 20;

  std::printf("mini-LAMMPS quickstart: %s, %d ranks, comm=%s\n",
              options.config.name.c_str(),
              options.rank_grid.x * options.rank_grid.y * options.rank_grid.z,
              options.comm.c_str());

  const sim::JobResult result = sim::run_simulation(options, 100);

  util::TablePrinter thermo({"Step", "Temp", "Press", "KinEng", "PotEng",
                             "TotEng"});
  for (const auto& s : result.thermo) {
    thermo.add_row({std::to_string(s.step),
                    util::TablePrinter::fmt(s.state.temperature, 6),
                    util::TablePrinter::fmt(s.state.pressure, 6),
                    util::TablePrinter::fmt(s.state.kinetic, 4),
                    util::TablePrinter::fmt(s.state.potential, 4),
                    util::TablePrinter::fmt(s.state.total(), 4)});
  }
  thermo.print();

  // LAMMPS-style "MPI task timing breakdown".
  const util::StageTimer stages = result.total_stages();
  const double total = stages.total();  // one denominator for all rows
  std::printf("\nMPI task timing breakdown (summed over ranks):\n");
  util::TablePrinter t({"Section", "time(s)", "%total"});
  for (const auto stage : util::all_stages()) {
    t.add_row({std::string(util::stage_name(stage)),
               util::TablePrinter::fmt(stages.get(stage), 4),
               util::TablePrinter::fmt(stages.percent(stage, total), 1)});
  }
  t.print();

  std::printf("\n%ld atoms, energy drift %.2e relative — NVE holds.\n",
              result.natoms,
              (result.thermo.back().state.total() -
               result.thermo.front().state.total()) /
                  std::abs(result.thermo.front().state.total()));
  return 0;
}
