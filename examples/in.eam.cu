# Scaled-down analogue of the artifact's in.threadpool.eam
# (Cu_u3.eam is replaced by the generated Cu-like funcfl table)

units           metal
lattice         fcc 3.615
region          box block 0 5 0 5 0 5
create_box      1 box
create_atoms    1 box
mass            1 63.550

velocity        all create 800.0 376847

pair_style      eam
pair_coeff      * * Cu_u3.eam

neighbor        1.0 bin
neigh_modify    every 5 check yes
newton          on

fix             1 all nve

timestep        0.005
thermo          10
processors      2 1 1
comm_variant    opt

run             50
