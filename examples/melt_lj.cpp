// The LAMMPS `melt` benchmark (in.lj) with a selectable communication
// variant — the closest analogue of the artifact's run scripts:
//
//   ./melt_lj [variant] [cells] [steps] [px py pz]
//
//   variant: ref | utofu_3stage | 4tni_p2p | 6tni_p2p | opt   (default opt)
//   cells:   fcc cells per axis (4 atoms each, default 6)
//   steps:   timesteps (default 100)
//   px py pz: rank grid (default 2 2 2)
//
// Compares the chosen variant against `ref` and reports the comm-stage
// improvement, mirroring the paper's Fig. 12 procedure on a laptop scale.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "comm/comm_factory.h"
#include "sim/simulation.h"
#include "util/table_printer.h"

using namespace lmp;

namespace {

std::string parse_variant(const char* name) {
  if (comm::CommFactory::instance().known(name)) return name;
  std::fprintf(stderr, "unknown variant '%s' (registered: %s)\n", name,
               comm::CommFactory::instance().catalog().c_str());
  std::exit(1);
}

void report(const char* label, const sim::JobResult& r) {
  const util::StageTimer t = r.total_stages();
  std::printf("%-14s total=%7.3fs  Pair=%6.3f Neigh=%6.3f Comm=%6.3f "
              "Modify=%6.3f Other=%6.3f  (T=%.3f P=%.3f)\n",
              label, t.total(), t.get(util::Stage::kPair),
              t.get(util::Stage::kNeigh), t.get(util::Stage::kComm),
              t.get(util::Stage::kModify), t.get(util::Stage::kOther),
              r.thermo.back().state.temperature,
              r.thermo.back().state.pressure);
}

}  // namespace

int main(int argc, char** argv) {
  sim::SimOptions options;
  options.config = md::SimConfig::lj_melt();
  options.comm = argc > 1 ? parse_variant(argv[1]) : "opt";
  const int cells = argc > 2 ? std::atoi(argv[2]) : 6;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 100;
  options.cells = {cells, cells, cells};
  if (argc > 6) {
    options.rank_grid = {std::atoi(argv[4]), std::atoi(argv[5]),
                         std::atoi(argv[6])};
  } else {
    options.rank_grid = {2, 2, 2};
  }
  options.thermo_every = std::max(1, steps / 5);

  std::printf("melt: %d^3 cells = %d atoms, %d steps, grid %dx%dx%d\n\n",
              cells, 4 * cells * cells * cells, steps, options.rank_grid.x,
              options.rank_grid.y, options.rank_grid.z);

  const sim::JobResult chosen = sim::run_simulation(options, steps);
  report(options.comm.c_str(), chosen);

  if (options.comm != "ref") {
    sim::SimOptions ref_options = options;
    ref_options.comm = "ref";
    const sim::JobResult ref = sim::run_simulation(ref_options, steps);
    report("ref", ref);

    const double comm_new = chosen.total_stages().get(util::Stage::kComm);
    const double comm_ref = ref.total_stages().get(util::Stage::kComm);
    std::printf("\ncomm wall time vs ref: %.2fx", comm_ref / comm_new);
    std::printf("  (trajectory agreement: dP = %.2e)\n",
                std::abs(chosen.thermo.back().state.pressure -
                         ref.thermo.back().state.pressure));
    std::printf("(on this host ranks are threads sharing cores, so wall "
                "times measure overhead\nstructure, not Fugaku speedups — "
                "see bench/fig12_step_by_step for the model)\n");
  }
  return 0;
}
