// Micro-benchmarks (google-benchmark) for the paper's Sec. 3.3 / 3.4
// primitives on this host:
//   - spin-pool dispatch vs fork-join dispatch (paper: 1.1 us vs 5.8 us
//     on A64FX; absolute numbers differ per host, the *gap* is the point)
//   - one-sided put through the functional TofuD fabric
//   - piggyback-only put (the 8-byte ghost-offset ack)
//   - memory registration (what pre-registration amortizes away)

#include <benchmark/benchmark.h>

#include "threadpool/forkjoin.h"
#include "threadpool/spin_pool.h"
#include "tofu/utofu.h"

using namespace lmp;

namespace {

void BM_SpinPoolDispatch(benchmark::State& state) {
  pool::SpinThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pool.parallel_static([](int) {});
  }
}
BENCHMARK(BM_SpinPoolDispatch)->Arg(2)->Arg(6);

void BM_ForkJoinDispatch(benchmark::State& state) {
  pool::ForkJoinPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pool.parallel([](int) {});
  }
}
BENCHMARK(BM_ForkJoinDispatch)->Arg(2)->Arg(6);

void BM_SpinPoolParallelFor(benchmark::State& state) {
  pool::SpinThreadPool pool(4);
  std::vector<double> data(static_cast<std::size_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    pool.parallel(static_cast<int>(data.size()),
                  [&](int i) { data[static_cast<std::size_t>(i)] *= 1.0000001; });
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_SpinPoolParallelFor)->Arg(64)->Arg(1024);

void BM_UtofuPut(benchmark::State& state) {
  tofu::Network net(2);
  tofu::UtofuContext a(net, 0), b(net, 1);
  tofu::RegisteredBuffer src = a.make_buffer(1 << 20);
  tofu::RegisteredBuffer dst = b.make_buffer(1 << 20);
  const tofu::VcqId va = a.create_vcq(0, 0);
  const tofu::VcqId vb = b.create_vcq(0, 0);
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    net.put(va, vb, src.stadd(), 0, dst.stadd(), 0, bytes);
    net.wait_tcq(va);
    net.wait_mrq(vb);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_UtofuPut)->Arg(64)->Arg(528)->Arg(4096)->Arg(65536);

void BM_UtofuPiggyback(benchmark::State& state) {
  tofu::Network net(2);
  tofu::UtofuContext a(net, 0), b(net, 1);
  const tofu::VcqId va = a.create_vcq(0, 0);
  const tofu::VcqId vb = b.create_vcq(0, 0);
  std::uint64_t edata = 0;
  for (auto _ : state) {
    net.put_piggyback(va, vb, edata++);
    net.wait_tcq(va);
    net.wait_mrq(vb);
  }
}
BENCHMARK(BM_UtofuPiggyback);

void BM_MemoryRegistration(benchmark::State& state) {
  tofu::Network net(1);
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const tofu::Stadd s = net.reg_mem(0, buf.data(), buf.size());
    net.dereg_mem(0, s);
  }
}
BENCHMARK(BM_MemoryRegistration)->Arg(4096)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
