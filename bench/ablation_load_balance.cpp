// Ablation for Fig. 10's thread load balancing: size+hop-aware LPT
// assignment of the 13/26 neighbor messages to 6 comm threads versus
// plain round-robin, across workload sizes — plus its effect on the
// modeled exchange time.

#include "bench/bench_common.h"
#include "comm/directions.h"
#include "comm/load_balance.h"
#include "perf/stepmodel.h"

using namespace lmp;

namespace {

std::vector<comm::CommTask> tasks_for(const perf::Workload& w, bool newton) {
  const double a = w.sub_box_side();
  const double r = w.cutoff + w.skin;
  std::vector<comm::CommTask> tasks;
  for (int d = 0; d < comm::kNumDirs; ++d) {
    if (newton && comm::is_upper(d)) continue;  // send half only
    const int order = comm::dir_order(d);
    const double vol =
        order == 1 ? a * a * r : (order == 2 ? a * r * r : r * r * r);
    tasks.push_back({d, vol * w.density * 24.0, order});
  }
  return tasks;
}

}  // namespace

int main() {
  bench::banner("Ablation — comm-thread load balancing (Fig. 10)",
                "messages are assigned to the 6 comm threads by size and "
                "hop count; LPT beats round-robin on makespan");

  bench::TablePrinter t({"workload", "msgs", "ideal(B)", "balanced(B)",
                         "round-robin(B)", "rr penalty(%)"});
  for (const double natoms : {65536.0, 1.7e6, 4194304.0}) {
    for (const bool newton : {true, false}) {
      const perf::Workload w = perf::Workload::lj(natoms, 768);
      const auto tasks = tasks_for(w, newton);
      double total = 0;
      for (const auto& task : tasks) total += task.bytes + 256.0 * task.hops;
      const double ideal = total / 6.0;
      const double bal =
          comm::makespan(tasks, comm::balance_tasks(tasks, 6), 6);
      const double rr = comm::makespan(tasks, comm::round_robin(tasks, 6), 6);
      t.add_row({bench::TablePrinter::fmt_si(natoms, 1) +
                     (newton ? " newton" : " full"),
                 std::to_string(tasks.size()),
                 bench::TablePrinter::fmt(ideal, 0),
                 bench::TablePrinter::fmt(bal, 0),
                 bench::TablePrinter::fmt(rr, 0), bench::pct(rr / bal - 1.0)});
    }
  }
  t.print();

  std::printf("\nThe imbalance translates into exchange time through the "
              "per-thread injection\nserialization of the network model; "
              "face messages dominate bytes while corner\nmessages dominate "
              "hops, which is why the paper splits load on both (Fig. 10).\n");
  return 0;
}
